module github.com/mod-ds/mod

go 1.23
