package mod_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), plus per-workload benchmarks for the three
// engines. Times reported by testing.B are host wall-clock and mostly
// reflect simulator speed; the paper-relevant numbers are the simulated
// metrics attached via b.ReportMetric (sim-ns/op, fences/op, flushes/op)
// and the tables printed by cmd/modbench.
//
// Run everything:  go test -bench=. -benchmem .
// Full-scale run:  go run ./cmd/modbench -scale full

import (
	"io"
	"testing"

	"github.com/mod-ds/mod/internal/harness"
	"github.com/mod-ds/mod/internal/workloads"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	scale := harness.SmallScale()
	for i := 0; i < b.N; i++ {
		tab, err := harness.Run(name, scale)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			tab.Render(io.Discard)
		}
	}
}

// BenchmarkTable1 regenerates the machine-model table.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2 regenerates the workload registry table.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig2 regenerates the PM-STM time-breakdown figure.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig4 regenerates the flush-latency-vs-concurrency figure.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig9 regenerates the cross-engine execution-time figure.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates the fences/flushes-per-operation figure.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates the L1D miss-ratio figure.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkTable3 regenerates the memory-doubling table.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkSpaceOverhead regenerates the §6.5 shadow-space measurement.
func BenchmarkSpaceOverhead(b *testing.B) { benchExperiment(b, "spaceoverhead") }

// BenchmarkAblationFlushConcurrency sweeps the flush concurrency cap.
func BenchmarkAblationFlushConcurrency(b *testing.B) { benchExperiment(b, "ablation-conc") }

// BenchmarkAblationNaiveShadow compares structural sharing against naive
// whole-structure shadow paging.
func BenchmarkAblationNaiveShadow(b *testing.B) { benchExperiment(b, "ablation-naive") }

// BenchmarkConcurrent runs the reader-scaling sweep (snapshot readers
// against committing writers over sharded maps).
func BenchmarkConcurrent(b *testing.B) { benchExperiment(b, "concurrent") }

// benchWorkload runs one Table 2 workload on one engine, reporting the
// simulated per-operation cost and ordering behaviour.
func benchWorkload(b *testing.B, name string, engine workloads.Engine) {
	b.Helper()
	const ops = 2_000
	workloads.SetVectorPreload(ops)
	var last workloads.Result
	for i := 0; i < b.N; i++ {
		res, err := workloads.Run(name, engine, workloads.Config{Ops: ops, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SimNs/float64(last.Ops), "sim-ns/op")
	b.ReportMetric(last.FencesPerOp(), "fences/op")
	b.ReportMetric(last.FlushesPerOp(), "flushes/op")
	b.ReportMetric(last.FlushFrac(), "flush-frac")
}

// Per-workload benchmarks, MOD vs the PMDK v1.5 baseline (Fig. 9 slices).

func BenchmarkWorkloadMapMOD(b *testing.B)  { benchWorkload(b, "map", workloads.EngineMOD) }
func BenchmarkWorkloadMapPMDK(b *testing.B) { benchWorkload(b, "map", workloads.EnginePMDK15) }

func BenchmarkWorkloadSetMOD(b *testing.B)  { benchWorkload(b, "set", workloads.EngineMOD) }
func BenchmarkWorkloadSetPMDK(b *testing.B) { benchWorkload(b, "set", workloads.EnginePMDK15) }

func BenchmarkWorkloadQueueMOD(b *testing.B)  { benchWorkload(b, "queue", workloads.EngineMOD) }
func BenchmarkWorkloadQueuePMDK(b *testing.B) { benchWorkload(b, "queue", workloads.EnginePMDK15) }

func BenchmarkWorkloadStackMOD(b *testing.B)  { benchWorkload(b, "stack", workloads.EngineMOD) }
func BenchmarkWorkloadStackPMDK(b *testing.B) { benchWorkload(b, "stack", workloads.EnginePMDK15) }

func BenchmarkWorkloadVectorMOD(b *testing.B)  { benchWorkload(b, "vector", workloads.EngineMOD) }
func BenchmarkWorkloadVectorPMDK(b *testing.B) { benchWorkload(b, "vector", workloads.EnginePMDK15) }

func BenchmarkWorkloadVecSwapMOD(b *testing.B)  { benchWorkload(b, "vec-swap", workloads.EngineMOD) }
func BenchmarkWorkloadVecSwapPMDK(b *testing.B) { benchWorkload(b, "vec-swap", workloads.EnginePMDK15) }

func BenchmarkWorkloadBFSMOD(b *testing.B)  { benchWorkload(b, "bfs", workloads.EngineMOD) }
func BenchmarkWorkloadBFSPMDK(b *testing.B) { benchWorkload(b, "bfs", workloads.EnginePMDK15) }

func BenchmarkWorkloadVacationMOD(b *testing.B) { benchWorkload(b, "vacation", workloads.EngineMOD) }
func BenchmarkWorkloadVacationPMDK(b *testing.B) {
	benchWorkload(b, "vacation", workloads.EnginePMDK15)
}

func BenchmarkWorkloadMemcachedMOD(b *testing.B) {
	benchWorkload(b, "memcached", workloads.EngineMOD)
}
func BenchmarkWorkloadMemcachedPMDK(b *testing.B) {
	benchWorkload(b, "memcached", workloads.EnginePMDK15)
}
