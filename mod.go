// Package mod is the public API of this reproduction of "MOD: Minimally
// Ordered Durable Datastructures for Persistent Memory" (Haria, Hill &
// Swift, ASPLOS 2020): a library of recoverable map, set, vector, stack,
// and queue datastructures for (simulated) persistent memory whose
// failure-atomic updates need a single ordering point in the common case.
//
// # Quickstart
//
//	dev := mod.NewDevice(mod.DefaultDeviceConfig(256 << 20))
//	store, _ := mod.NewStore(dev)
//	m, _ := store.Map("users")
//	m.Set([]byte("ada"), []byte("lovelace"))   // one FASE, one fence
//	v, ok := m.Get([]byte("ada"))
//
// Reopening after a crash recovers committed state and sweeps leaks:
//
//	store, stats, _ := mod.OpenStore(mod.NewDeviceFromImage(cfg, image))
//
// # Basic vs Composition interfaces
//
// Handle methods such as Map.Set and Vector.Push are the Basic interface
// (§4.3.1): each is a self-contained failure-atomic section. For FASEs
// spanning several updates or several datastructures, use the Composition
// interface (§4.3.2): Pure* methods return shadow versions, and
// Store.CommitSingle, Store.CommitSiblings (for structures under one
// Parent), or Store.CommitUnrelated install them atomically.
//
// # Concurrency
//
// A Store is safe for concurrent use. Give each goroutine its own view
// with Store.Fork so its simulated time is tracked independently;
// handles bound through any view share the same persistent state.
// Writers serialize per root (writers to different roots commit in
// parallel); readers take lock-free Snapshots that pin an immutable
// committed version — they never block on a committing writer:
//
//	rs := store.Fork()            // per-goroutine view
//	rm, _ := rs.Map("users")
//	snap := rm.Snapshot()
//	defer snap.Close()
//	v, ok := snap.Get([]byte("ada"))
//
// The persistent memory substrate is simulated (see DESIGN.md): Device
// models Optane DCPMM cacheline-flush semantics with the paper's measured
// latencies, so all performance figures are in simulated nanoseconds.
package mod

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Device is a simulated persistent memory module with clwb/sfence
// semantics and a simulated-time clock.
type Device = pmem.Device

// DeviceConfig holds device geometry and the latency model.
type DeviceConfig = pmem.Config

// Addr is a persistent address (byte offset into the device arena).
type Addr = pmem.Addr

// Store is a persistent heap hosting MOD datastructures, located across
// process lifetimes by named roots.
type Store = core.Store

// RecoveryStats reports what post-crash recovery found and reclaimed.
type RecoveryStats = alloc.RecoveryStats

// Datastructure handles (Basic interface) and shadow versions
// (Composition interface).
type (
	// Map is a recoverable hash map (CHAMP trie).
	Map = core.Map
	// Set is a recoverable hash set.
	Set = core.Set
	// Vector is a recoverable vector (32-way trie).
	Vector = core.Vector
	// Stack is a recoverable LIFO stack (cons list).
	Stack = core.Stack
	// Queue is a recoverable FIFO queue (banker's queue).
	Queue = core.Queue
	// Parent is a persistent object whose fields anchor sibling
	// datastructures for CommitSiblings.
	Parent = core.Parent

	// Version is one immutable shadow version of a datastructure.
	Version = core.Version
	// Update pairs a datastructure with a shadow chain for the multi-
	// structure commits.
	Update = core.Update
	// MapVersion is a shadow map version.
	MapVersion = core.MapVersion
	// SetVersion is a shadow set version.
	SetVersion = core.SetVersion
	// VectorVersion is a shadow vector version.
	VectorVersion = core.VectorVersion
	// StackVersion is a shadow stack version.
	StackVersion = core.StackVersion
	// QueueVersion is a shadow queue version.
	QueueVersion = core.QueueVersion

	// MapSnapshot is a pinned immutable view of a map's latest
	// committed version (lock-free; Close when done).
	MapSnapshot = core.MapSnapshot
	// SetSnapshot is a pinned immutable view of a set version.
	SetSnapshot = core.SetSnapshot
	// VectorSnapshot is a pinned immutable view of a vector version.
	VectorSnapshot = core.VectorSnapshot
	// StackSnapshot is a pinned immutable view of a stack version.
	StackSnapshot = core.StackSnapshot
	// QueueSnapshot is a pinned immutable view of a queue version.
	QueueSnapshot = core.QueueSnapshot
)

// DefaultDeviceConfig returns the paper's machine model (Table 1) with
// the given arena size in bytes.
func DefaultDeviceConfig(size int64) DeviceConfig { return pmem.DefaultConfig(size) }

// NewDevice creates a simulated PM device.
func NewDevice(cfg DeviceConfig) *Device { return pmem.New(cfg) }

// NewDeviceFromImage creates a device initialized from a crash image.
func NewDeviceFromImage(cfg DeviceConfig, image []byte) *Device {
	return pmem.NewFromImage(cfg, image)
}

// NewStore formats the device and returns an empty store.
func NewStore(dev *Device) (*Store, error) { return core.NewStore(dev) }

// OpenStore attaches to a previously formatted device, rolling back any
// interrupted commit and garbage-collecting unreachable blocks (§5.3).
func OpenStore(dev *Device) (*Store, RecoveryStats, error) { return core.OpenStore(dev) }
