// Package mod is the public API of this reproduction of "MOD: Minimally
// Ordered Durable Datastructures for Persistent Memory" (Haria, Hill &
// Swift, ASPLOS 2020): a library of recoverable map, set, vector, stack,
// and queue datastructures for (simulated) persistent memory whose
// failure-atomic updates need a single ordering point in the common case.
//
// # Quickstart
//
//	db, _, _ := mod.Open(mod.DefaultDeviceConfig(256 << 20))
//	defer db.Close()
//	m, _ := db.Map("users")
//	m.Set([]byte("ada"), []byte("lovelace"))   // one FASE, one fence
//	v, ok := m.Get([]byte("ada"))
//
// Reopening after a crash recovers committed state and sweeps leaks:
//
//	db, info, _ := mod.Open(cfg, mod.WithExistingImages(images))
//
// Open takes functional options — mod.WithShards(n) partitions the
// store across independent heaps, mod.WithCommitter(0) starts the
// background group committer, mod.WithSelective(0) selects the
// selectively persisted structure flavors, mod.WithNodeCache() caches
// committed nodes in DRAM. The returned DB satisfies the KV interface,
// as do Store and ShardedStore directly.
//
// # Basic vs Composition interfaces
//
// Handle methods such as Map.Set and Vector.Push are the Basic interface
// (§4.3.1): each is a self-contained failure-atomic section. For FASEs
// spanning several updates or several datastructures, use the Composition
// interface (§4.3.2): Pure* methods return shadow versions, and
// Store.CommitSingle, Store.CommitSiblings (for structures under one
// Parent), or Store.CommitUnrelated install them atomically.
//
// # Concurrency
//
// A Store is safe for concurrent use. Give each goroutine its own view
// with Store.Fork so its simulated time is tracked independently;
// handles bound through any view share the same persistent state.
// Writers serialize per root (writers to different roots commit in
// parallel); readers take lock-free Snapshots that pin an immutable
// committed version — they never block on a committing writer:
//
//	rs := store.Fork()            // per-goroutine view
//	rm, _ := rs.Map("users")
//	snap := rm.Snapshot()
//	defer snap.Close()
//	v, ok := snap.Get([]byte("ada"))
//
// The persistent memory substrate is simulated (see DESIGN.md): Device
// models Optane DCPMM cacheline-flush semantics with the paper's measured
// latencies, so all performance figures are in simulated nanoseconds.
package mod

import (
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Device is a simulated persistent memory module with clwb/sfence
// semantics and a simulated-time clock.
type Device = pmem.Device

// DeviceConfig holds device geometry and the latency model.
type DeviceConfig = pmem.Config

// Addr is a persistent address (byte offset into the device arena).
type Addr = pmem.Addr

// Store is a persistent heap hosting MOD datastructures, located across
// process lifetimes by named roots.
type Store = core.Store

// ShardedStore partitions a store across independent heap regions.
type ShardedStore = core.ShardedStore

// DB is the handle Open returns, wrapping a Store or ShardedStore.
type DB = core.DB

// KV is the store-shape-agnostic interface satisfied by Store,
// ShardedStore, and DB.
type KV = core.KV

// Batcher is the common group-commit batch interface.
type Batcher = core.Batcher

// Ticket tracks one asynchronous commit's durability.
type Ticket = core.Ticket

// Option configures Open.
type Option = core.Option

// RecoveryInfo reports what Open recovered when reopening from images.
type RecoveryInfo = core.RecoveryInfo

// RecoveryStats reports what post-crash recovery found and reclaimed.
type RecoveryStats = alloc.RecoveryStats

// Sentinel errors for errors.Is dispatch.
var (
	// ErrReservedRootName is returned when binding a root under the
	// store-internal name prefix.
	ErrReservedRootName = core.ErrReservedRootName
	// ErrWrongRootKind is returned when binding a root that holds a
	// different structure kind.
	ErrWrongRootKind = core.ErrWrongRootKind
	// ErrStoreClosed is returned by operations on a closed store.
	ErrStoreClosed = core.ErrStoreClosed
	// ErrShardCount is returned for invalid shard counts.
	ErrShardCount = core.ErrShardCount
	// ErrCorrupted is returned (wrapped in a *CorruptionError) when an
	// image fails recovery, a root fails verification, or a bind targets
	// a quarantined root (DESIGN.md §13).
	ErrCorrupted = core.ErrCorrupted
)

// CorruptionError wraps ErrCorrupted with the shard, root slot, and
// detailed cause of detected media damage.
type CorruptionError = core.CorruptionError

// DamagedRoot reports one root that failed verification at open or
// during a Scrub, and whether salvage repaired it.
type DamagedRoot = core.DamagedRoot

// Datastructure handles (Basic interface) and shadow versions
// (Composition interface).
type (
	// Map is a recoverable hash map (CHAMP trie).
	Map = core.Map
	// Set is a recoverable hash set.
	Set = core.Set
	// Vector is a recoverable vector (32-way trie).
	Vector = core.Vector
	// Stack is a recoverable LIFO stack (cons list).
	Stack = core.Stack
	// Queue is a recoverable FIFO queue (banker's queue).
	Queue = core.Queue
	// Parent is a persistent object whose fields anchor sibling
	// datastructures for CommitSiblings.
	Parent = core.Parent

	// Version is one immutable shadow version of a datastructure.
	Version = core.Version
	// Update pairs a datastructure with a shadow chain for the multi-
	// structure commits.
	Update = core.Update
	// MapVersion is a shadow map version.
	MapVersion = core.MapVersion
	// SetVersion is a shadow set version.
	SetVersion = core.SetVersion
	// VectorVersion is a shadow vector version.
	VectorVersion = core.VectorVersion
	// StackVersion is a shadow stack version.
	StackVersion = core.StackVersion
	// QueueVersion is a shadow queue version.
	QueueVersion = core.QueueVersion

	// MapSnapshot is a pinned immutable view of a map's latest
	// committed version (lock-free; Close when done).
	MapSnapshot = core.MapSnapshot
	// SetSnapshot is a pinned immutable view of a set version.
	SetSnapshot = core.SetSnapshot
	// VectorSnapshot is a pinned immutable view of a vector version.
	VectorSnapshot = core.VectorSnapshot
	// StackSnapshot is a pinned immutable view of a stack version.
	StackSnapshot = core.StackSnapshot
	// QueueSnapshot is a pinned immutable view of a queue version.
	QueueSnapshot = core.QueueSnapshot
)

// DefaultDeviceConfig returns the paper's machine model (Table 1) with
// the given arena size in bytes.
func DefaultDeviceConfig(size int64) DeviceConfig { return pmem.DefaultConfig(size) }

// NewDevice creates a simulated PM device.
func NewDevice(cfg DeviceConfig) *Device { return pmem.New(cfg) }

// NewDeviceFromImage creates a device initialized from a crash image.
func NewDeviceFromImage(cfg DeviceConfig, image []byte) *Device {
	return pmem.NewFromImage(cfg, image)
}

// Open formats (or, with WithExistingImages, recovers) a MOD store.
func Open(cfg DeviceConfig, opts ...Option) (*DB, RecoveryInfo, error) {
	return core.Open(cfg, opts...)
}

// WithShards partitions the store across n independent heap regions.
func WithShards(n int) Option { return core.WithShards(n) }

// WithSelective selects the selectively persisted structure flavors;
// checkpointEvery sets the record-chain folding interval (0 = default).
func WithSelective(checkpointEvery int) Option { return core.WithSelective(checkpointEvery) }

// WithNodeCache enables the DRAM cache for committed nodes.
func WithNodeCache() Option { return core.WithNodeCache() }

// WithExistingImages reopens a store from post-crash region images.
func WithExistingImages(imgs [][]byte) Option { return core.WithExistingImages(imgs) }

// WithCommitter starts the background group committer(s) (maxOps 0 uses
// the default epoch cap).
func WithCommitter(maxOps int) Option { return core.WithCommitter(maxOps) }

// WithCommitterLinger sets the committers' settle-fence collection
// window, letting request/response-paced concurrent clients share
// fence epochs (DESIGN.md §11).
func WithCommitterLinger(d time.Duration) Option { return core.WithCommitterLinger(d) }

// WithVerify walks every root at open, verifying node checksums, and
// quarantines damaged roots: the store opens degraded, with the damage
// reported in RecoveryInfo.Damaged (DESIGN.md §13).
func WithVerify() Option { return core.WithVerify() }

// WithSalvage implies WithVerify and additionally rolls a damaged
// selective root back to its last verified checkpoint instead of
// quarantining it, reporting the dropped operations.
func WithSalvage() Option { return core.WithSalvage() }

// WithDevices builds the store over caller-supplied backends (one for a
// single-heap store, N+1 for N shards plus metadata) instead of fresh
// simulator devices — e.g. mmapdev devices over a real file.
func WithDevices(devs ...pmem.Backend) Option { return core.WithDevices(devs...) }

// WithAttach recovers the store already present on the WithDevices
// backends instead of formatting them.
func WithAttach() Option { return core.WithAttach() }
