// Crashtest fuzzes crash consistency: it runs a MOD workload, injects a
// power failure at a random point under the most adversarial cache-
// eviction policy, recovers, and validates that the store contains
// exactly the committed prefix of operations and no leaks (§5.2, §5.3).
//
// Usage:
//
//	crashtest [-runs N] [-ops N] [-seed S] [-v]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

func main() {
	runs := flag.Int("runs", 50, "number of crash-inject-recover rounds")
	ops := flag.Int("ops", 200, "committed operations before the interrupted one")
	seed := flag.Uint64("seed", 1, "base random seed")
	verbose := flag.Bool("v", false, "log each round")
	flag.Parse()

	failures := 0
	for round := 0; round < *runs; round++ {
		if err := oneRound(*seed+uint64(round), *ops, *verbose); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "crashtest: round %d FAILED: %v\n", round, err)
		}
	}
	fmt.Printf("crashtest: %d rounds, %d failures\n", *runs, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func oneRound(seed uint64, ops int, verbose bool) error {
	cfg := pmem.DefaultConfig(128 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	store, err := core.NewStore(dev)
	if err != nil {
		return err
	}
	m, err := store.Map("fuzz")
	if err != nil {
		return err
	}
	q, err := store.Queue("fuzz-q")
	if err != nil {
		return err
	}

	committed := int(seed % uint64(ops))
	for i := 0; i < committed; i++ {
		m.Set(key(i), key(i*3))
		q.Enqueue(uint64(i))
	}
	store.Sync()

	// Interrupted FASE: shadows built and flushed, commit never reached.
	m.PureSet(key(999_999), []byte("never committed"))
	q.PureEnqueue(888_888)

	img := dev.CrashImage(pmem.CrashEvictRandom, seed)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(128<<20), img)
	store2, rs, err := core.OpenStore(dev2)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	m2, err := store2.Map("fuzz")
	if err != nil {
		return err
	}
	q2, err := store2.Queue("fuzz-q")
	if err != nil {
		return err
	}
	if got := int(m2.Len()); got != committed {
		return fmt.Errorf("map has %d entries, want %d", got, committed)
	}
	if got := int(q2.Len()); got != committed {
		return fmt.Errorf("queue has %d entries, want %d", got, committed)
	}
	for i := 0; i < committed; i++ {
		v, ok := m2.Get(key(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
			return fmt.Errorf("map key %d lost or corrupt after recovery", i)
		}
	}
	if _, ok := m2.Get(key(999_999)); ok {
		return fmt.Errorf("uncommitted update visible after crash")
	}
	// The store must stay fully usable after recovery.
	m2.Set(key(424242), []byte("post-recovery"))
	if _, ok := m2.Get(key(424242)); !ok {
		return fmt.Errorf("store unusable after recovery")
	}
	if verbose {
		fmt.Printf("round seed=%d: committed=%d leaked-blocks=%d leaked-bytes=%d ok\n",
			seed, committed, rs.LeakedBlocks, rs.LeakedBytes)
	}
	return nil
}
