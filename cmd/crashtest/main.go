// Crashtest fuzzes crash consistency: it runs a MOD workload, injects a
// power failure at a random point under the most adversarial cache-
// eviction policy, recovers, and validates that the store contains
// exactly the committed prefix of operations and no leaks (§5.2, §5.3).
//
// Each round runs in three flavors: the classic interrupted-FASE round
// (shadows built, commit never reached), a group-commit round that
// injects the failure at a pseudorandom PM-write inside a multi-root
// Batch.Commit, and a sharded round that injects it inside a
// cross-shard ShardedBatch — while shadows build on the shard regions,
// between the shard manifest's intent and commit-point fences, or
// mid-way through the per-shard redo swaps — and checks the batch
// recovers all-or-nothing across every shard.
//
// Recovered state is verified in full against a model (every key, every
// value, queue order included), and any mismatch is fatal: the process
// reports the failing round and exits nonzero immediately.
//
// Usage:
//
//	crashtest [-runs N] [-ops N] [-seed S] [-shards N] [-mode all|fase|batch|shard] [-v]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

func main() {
	runs := flag.Int("runs", 50, "number of crash-inject-recover rounds")
	ops := flag.Int("ops", 200, "committed operations before the interrupted one")
	seed := flag.Uint64("seed", 1, "base random seed")
	shards := flag.Int("shards", 4, "shard count for -mode shard rounds")
	mode := flag.String("mode", "all", "all | fase (interrupted FASE) | batch (mid-batch injection) | shard (mid-manifest injection)")
	verbose := flag.Bool("v", false, "log each round")
	flag.Parse()

	doFASE := *mode == "all" || *mode == "fase"
	doBatch := *mode == "all" || *mode == "batch"
	doShard := *mode == "all" || *mode == "shard"
	if !doFASE && !doBatch && !doShard {
		fmt.Fprintf(os.Stderr, "crashtest: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// Any mismatch is fatal: report and exit nonzero on the first
	// failing round rather than accumulating a count that a reporting
	// bug could fail to act on.
	fatal := func(kind string, round int, err error) {
		if err == nil {
			return
		}
		fmt.Fprintf(os.Stderr, "crashtest: %s round %d FAILED: %v\n", kind, round, err)
		os.Exit(1)
	}
	for round := 0; round < *runs; round++ {
		s := *seed + uint64(round)
		if doFASE {
			fatal("fase", round, faseRound(s, *ops, *verbose))
		}
		if doBatch {
			fatal("batch", round, batchRound(s, *ops, *verbose))
		}
		if doShard {
			fatal("shard", round, shardRound(s, *ops, *shards, *verbose))
		}
	}
	fmt.Printf("crashtest: %d rounds ok\n", *runs)
}

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func faseRound(seed uint64, ops int, verbose bool) error {
	cfg := pmem.DefaultConfig(128 << 20)
	cfg.TrackDurable = true
	db, _, err := core.Open(cfg)
	if err != nil {
		return err
	}
	dev, store := db.Store().Device(), db.Store()
	m, err := store.Map("fuzz")
	if err != nil {
		return err
	}
	q, err := store.Queue("fuzz-q")
	if err != nil {
		return err
	}

	committed := int(seed % uint64(ops))
	wantMap := make(map[string]string, committed)
	var wantQueue []uint64
	for i := 0; i < committed; i++ {
		m.Set(key(i), key(i*3))
		q.Enqueue(uint64(i))
		wantMap[string(key(i))] = string(key(i * 3))
		wantQueue = append(wantQueue, uint64(i))
	}
	store.Sync()

	// Interrupted FASE: shadows built and flushed, commit never reached.
	m.PureSet(key(999_999), []byte("never committed"))
	q.PureEnqueue(888_888)

	img := dev.CrashImage(pmem.CrashEvictRandom, seed)
	db2, info, err := core.Open(pmem.DefaultConfig(128<<20), core.WithExistingImages([][]byte{img}))
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rs := info.Stats
	store2 := db2.Store()
	m2, err := store2.Map("fuzz")
	if err != nil {
		return err
	}
	q2, err := store2.Queue("fuzz-q")
	if err != nil {
		return err
	}
	if err := verifyMap(m2, wantMap); err != nil {
		return err
	}
	if err := verifyQueue(q2, wantQueue); err != nil {
		return err
	}
	// The store must stay fully usable after recovery.
	m2.Set(key(424242), []byte("post-recovery"))
	if _, ok := m2.Get(key(424242)); !ok {
		return fmt.Errorf("store unusable after recovery")
	}
	if verbose {
		fmt.Printf("fase round seed=%d: committed=%d leaked-blocks=%d leaked-bytes=%d ok\n",
			seed, committed, rs.LeakedBlocks, rs.LeakedBytes)
	}
	return nil
}

// batchRound commits a prefix of group commits, then injects a power
// failure a pseudorandom number of PM writes into one final multi-root
// batch and verifies all-or-nothing recovery against the full model.
func batchRound(seed uint64, ops int, verbose bool) error {
	cfg := pmem.DefaultConfig(128 << 20)
	cfg.TrackDurable = true
	db, _, err := core.Open(cfg)
	if err != nil {
		return err
	}
	dev, store := db.Store().Device(), db.Store()
	m, err := store.Map("fuzz")
	if err != nil {
		return err
	}
	q, err := store.Queue("fuzz-q")
	if err != nil {
		return err
	}

	const batchLen = 4
	committed := int(seed % uint64(ops))
	wantMap := make(map[string]string, committed)
	var wantQueue []uint64
	for i := 0; i < committed; i += batchLen {
		b := store.NewBatch()
		for j := i; j < i+batchLen && j < committed; j++ {
			b.MapSet(m, key(j), key(j*3))
			b.QueueEnqueue(q, uint64(j))
			wantMap[string(key(j))] = string(key(j * 3))
			wantQueue = append(wantQueue, uint64(j))
		}
		b.Commit()
	}
	store.Sync()

	// The interrupted batch: 8 map updates and 4 enqueues across two
	// roots, with the crash landing anywhere from the first shadow write
	// to just past the final root swap.
	tr := pmem.NewCrashCountdown(dev, 1+int(seed*31%400), pmem.CrashEvictRandom, seed)
	dev.SetTracer(tr)
	b := store.NewBatch()
	wantMapFull := make(map[string]string, len(wantMap)+2*batchLen)
	for k, v := range wantMap {
		wantMapFull[k] = v
	}
	wantQueueFull := append([]uint64{}, wantQueue...)
	for j := 0; j < batchLen; j++ {
		b.MapSet(m, key(700_000+j), key(j))
		b.MapSet(m, key(800_000+j), key(j*5))
		b.QueueEnqueue(q, uint64(900_000+j))
		wantMapFull[string(key(700_000+j))] = string(key(j))
		wantMapFull[string(key(800_000+j))] = string(key(j * 5))
		wantQueueFull = append(wantQueueFull, uint64(900_000+j))
	}
	b.Commit()
	dev.SetTracer(nil)
	img := tr.Image()
	if img == nil {
		img = dev.CrashImage(pmem.CrashEvictRandom, seed)
	}

	db2, info, err := core.Open(pmem.DefaultConfig(128<<20), core.WithExistingImages([][]byte{img}))
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	rs := info.Stats
	store2 := db2.Store()
	m2, err := store2.Map("fuzz")
	if err != nil {
		return err
	}
	q2, err := store2.Queue("fuzz-q")
	if err != nil {
		return err
	}

	// The batch is in or out as a whole: the recovered contents must
	// match the pre-batch model or the post-batch model exactly, with
	// map and queue agreeing on which.
	_, batchInMap := m2.Get(key(700_000))
	if batchInMap {
		if err := verifyMap(m2, wantMapFull); err != nil {
			return fmt.Errorf("batch committed but %w", err)
		}
		if err := verifyQueue(q2, wantQueueFull); err != nil {
			return fmt.Errorf("batch torn across roots: in map but %w", err)
		}
	} else {
		if err := verifyMap(m2, wantMap); err != nil {
			return fmt.Errorf("batch discarded but %w", err)
		}
		if err := verifyQueue(q2, wantQueue); err != nil {
			return fmt.Errorf("batch torn across roots: not in map but %w", err)
		}
	}
	// The recovered store must keep committing batches.
	nb := store2.NewBatch()
	nb.MapSet(m2, key(424242), []byte("post-recovery"))
	nb.QueueEnqueue(q2, 424242)
	nb.Commit()
	if _, ok := m2.Get(key(424242)); !ok {
		return fmt.Errorf("store unusable after batch recovery")
	}
	if verbose {
		fmt.Printf("batch round seed=%d: committed=%d batch-recovered=%v leaked-blocks=%d ok\n",
			seed, committed, batchInMap, rs.LeakedBlocks)
	}
	return nil
}

// shardRound commits a prefix of cross-shard batches on a sharded
// store, then injects a power failure a pseudorandom number of PM
// writes into one final cross-shard batch — anywhere from the first
// shadow write, through the shard manifest's intent and commit-point
// windows, to mid-way through the per-shard redo swaps — and verifies
// the batch recovers on every shard or on none, with all committed
// contents intact.
func shardRound(seed uint64, ops, shards int, verbose bool) error {
	if shards < 2 {
		return fmt.Errorf("shard rounds need at least 2 shards, got %d", shards)
	}
	cfg := pmem.DefaultConfig(32 << 20)
	cfg.TrackDurable = true
	db, _, err := core.Open(cfg, core.WithShards(shards))
	if err != nil {
		return err
	}
	ss := db.Sharded()
	maps := make([]*core.Map, shards)
	wantMaps := make([]map[string]string, shards)
	for i := range maps {
		m, err := ss.Shard(i).Map(fmt.Sprintf("fuzz-%d", i))
		if err != nil {
			return err
		}
		maps[i] = m
		wantMaps[i] = make(map[string]string)
	}

	committed := int(seed % uint64(ops))
	const batchLen = 2 // ops per shard per batch
	for i := 0; i < committed; i += batchLen * shards {
		b := ss.NewBatch()
		for si := 0; si < shards; si++ {
			for j := 0; j < batchLen; j++ {
				k, v := key(i+si*batchLen+j), key((i+si*batchLen+j)*3)
				b.MapSet(maps[si], k, v)
				wantMaps[si][string(k)] = string(v)
			}
		}
		b.Commit()
	}
	ss.Sync()

	// The interrupted cross-shard batch: two updates per shard.
	tr := pmem.NewMultiCrashCountdown(ss.Regions().Devices(), 1+int(seed*31%600), pmem.CrashEvictRandom, seed)
	tr.Install()
	b := ss.NewBatch()
	wantMapsFull := make([]map[string]string, shards)
	for si := range wantMapsFull {
		wantMapsFull[si] = make(map[string]string, len(wantMaps[si])+2)
		for k, v := range wantMaps[si] {
			wantMapsFull[si][k] = v
		}
		for j := 0; j < 2; j++ {
			k, v := key(700_000+si*10+j), key(si*100+j)
			b.MapSet(maps[si], k, v)
			wantMapsFull[si][string(k)] = string(v)
		}
	}
	b.Commit()
	tr.Uninstall()
	imgs := tr.Images()
	if imgs == nil {
		imgs = ss.CrashImages(pmem.CrashEvictRandom, seed)
	}

	db2, info, err := core.Open(cfg, core.WithExistingImages(imgs))
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	ss2 := db2.Sharded()
	maps2 := make([]*core.Map, shards)
	inShard := make([]bool, shards)
	for si := range maps2 {
		m, err := ss2.Shard(si).Map(fmt.Sprintf("fuzz-%d", si))
		if err != nil {
			return err
		}
		maps2[si] = m
		_, inShard[si] = m.Get(key(700_000 + si*10))
	}
	for si := 1; si < shards; si++ {
		if inShard[si] != inShard[0] {
			return fmt.Errorf("batch torn across shards: %v", inShard)
		}
	}
	for si := range maps2 {
		want := wantMaps[si]
		if inShard[0] {
			want = wantMapsFull[si]
		}
		if err := verifyMap(maps2[si], want); err != nil {
			return fmt.Errorf("shard %d (batch recovered=%v): %w", si, inShard[0], err)
		}
	}
	// The recovered store must keep committing cross-shard batches.
	nb := ss2.NewBatch()
	for si, m := range maps2 {
		nb.MapSet(m, key(424242+si), []byte("post-recovery"))
	}
	nb.Commit()
	for si, m := range maps2 {
		if _, ok := m.Get(key(424242 + si)); !ok {
			return fmt.Errorf("store unusable after manifest recovery (shard %d)", si)
		}
	}
	if verbose {
		fmt.Printf("shard round seed=%d: shards=%d committed=%d batch-recovered=%v manifest-replayed=%v leaked-blocks=%d ok\n",
			seed, shards, committed, inShard[0], info.ManifestReplayed, info.Stats.LeakedBlocks)
	}
	return nil
}
