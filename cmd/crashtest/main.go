// Crashtest fuzzes crash consistency: it runs a MOD workload, injects a
// power failure at a random point under the most adversarial cache-
// eviction policy, recovers, and validates that the store contains
// exactly the committed prefix of operations and no leaks (§5.2, §5.3).
//
// Each round runs in two flavors: the classic interrupted-FASE round
// (shadows built, commit never reached) and a group-commit round that
// injects the failure at a pseudorandom PM-write inside a multi-root
// Batch.Commit — while shadows build, between the batch record's
// fences, or mid root-swap — and checks the batch recovers atomically:
// the map and the queue both contain it, or neither does.
//
// Usage:
//
//	crashtest [-runs N] [-ops N] [-seed S] [-mode all|fase|batch] [-v]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

func main() {
	runs := flag.Int("runs", 50, "number of crash-inject-recover rounds")
	ops := flag.Int("ops", 200, "committed operations before the interrupted one")
	seed := flag.Uint64("seed", 1, "base random seed")
	mode := flag.String("mode", "all", "all | fase (interrupted FASE) | batch (mid-batch injection)")
	verbose := flag.Bool("v", false, "log each round")
	flag.Parse()

	doFASE := *mode == "all" || *mode == "fase"
	doBatch := *mode == "all" || *mode == "batch"
	if !doFASE && !doBatch {
		fmt.Fprintf(os.Stderr, "crashtest: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	failures := 0
	for round := 0; round < *runs; round++ {
		s := *seed + uint64(round)
		if doFASE {
			if err := faseRound(s, *ops, *verbose); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "crashtest: fase round %d FAILED: %v\n", round, err)
			}
		}
		if doBatch {
			if err := batchRound(s, *ops, *verbose); err != nil {
				failures++
				fmt.Fprintf(os.Stderr, "crashtest: batch round %d FAILED: %v\n", round, err)
			}
		}
	}
	fmt.Printf("crashtest: %d rounds, %d failures\n", *runs, failures)
	if failures > 0 {
		os.Exit(1)
	}
}

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func faseRound(seed uint64, ops int, verbose bool) error {
	cfg := pmem.DefaultConfig(128 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	store, err := core.NewStore(dev)
	if err != nil {
		return err
	}
	m, err := store.Map("fuzz")
	if err != nil {
		return err
	}
	q, err := store.Queue("fuzz-q")
	if err != nil {
		return err
	}

	committed := int(seed % uint64(ops))
	for i := 0; i < committed; i++ {
		m.Set(key(i), key(i*3))
		q.Enqueue(uint64(i))
	}
	store.Sync()

	// Interrupted FASE: shadows built and flushed, commit never reached.
	m.PureSet(key(999_999), []byte("never committed"))
	q.PureEnqueue(888_888)

	img := dev.CrashImage(pmem.CrashEvictRandom, seed)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(128<<20), img)
	store2, rs, err := core.OpenStore(dev2)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	m2, err := store2.Map("fuzz")
	if err != nil {
		return err
	}
	q2, err := store2.Queue("fuzz-q")
	if err != nil {
		return err
	}
	if got := int(m2.Len()); got != committed {
		return fmt.Errorf("map has %d entries, want %d", got, committed)
	}
	if got := int(q2.Len()); got != committed {
		return fmt.Errorf("queue has %d entries, want %d", got, committed)
	}
	for i := 0; i < committed; i++ {
		v, ok := m2.Get(key(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
			return fmt.Errorf("map key %d lost or corrupt after recovery", i)
		}
	}
	if _, ok := m2.Get(key(999_999)); ok {
		return fmt.Errorf("uncommitted update visible after crash")
	}
	// The store must stay fully usable after recovery.
	m2.Set(key(424242), []byte("post-recovery"))
	if _, ok := m2.Get(key(424242)); !ok {
		return fmt.Errorf("store unusable after recovery")
	}
	if verbose {
		fmt.Printf("fase round seed=%d: committed=%d leaked-blocks=%d leaked-bytes=%d ok\n",
			seed, committed, rs.LeakedBlocks, rs.LeakedBytes)
	}
	return nil
}

// batchRound commits a prefix of group commits, then injects a power
// failure a pseudorandom number of PM writes into one final multi-root
// batch and verifies all-or-nothing recovery.
func batchRound(seed uint64, ops int, verbose bool) error {
	cfg := pmem.DefaultConfig(128 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	store, err := core.NewStore(dev)
	if err != nil {
		return err
	}
	m, err := store.Map("fuzz")
	if err != nil {
		return err
	}
	q, err := store.Queue("fuzz-q")
	if err != nil {
		return err
	}

	const batchLen = 4
	committed := int(seed % uint64(ops))
	for i := 0; i < committed; i += batchLen {
		b := store.NewBatch()
		for j := i; j < i+batchLen && j < committed; j++ {
			b.MapSet(m, key(j), key(j*3))
			b.QueueEnqueue(q, uint64(j))
		}
		b.Commit()
	}
	store.Sync()

	// The interrupted batch: 8 map updates and 4 enqueues across two
	// roots, with the crash landing anywhere from the first shadow write
	// to just past the final root swap.
	tr := pmem.NewCrashCountdown(dev, 1+int(seed*31%400), pmem.CrashEvictRandom, seed)
	dev.SetTracer(tr)
	b := store.NewBatch()
	for j := 0; j < batchLen; j++ {
		b.MapSet(m, key(700_000+j), key(j))
		b.MapSet(m, key(800_000+j), key(j*5))
		b.QueueEnqueue(q, uint64(900_000+j))
	}
	b.Commit()
	dev.SetTracer(nil)
	img := tr.Image()
	if img == nil {
		img = dev.CrashImage(pmem.CrashEvictRandom, seed)
	}

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(128<<20), img)
	store2, rs, err := core.OpenStore(dev2)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	m2, err := store2.Map("fuzz")
	if err != nil {
		return err
	}
	q2, err := store2.Queue("fuzz-q")
	if err != nil {
		return err
	}

	_, batchInMap := m2.Get(key(700_000))
	batchInQueue := int(q2.Len()) == committed+batchLen
	if !batchInQueue && int(q2.Len()) != committed {
		return fmt.Errorf("queue has %d entries, want %d or %d", q2.Len(), committed, committed+batchLen)
	}
	if batchInMap != batchInQueue {
		return fmt.Errorf("batch torn across roots: in map=%v, in queue=%v", batchInMap, batchInQueue)
	}
	wantMap := committed
	if batchInMap {
		wantMap += 2 * batchLen
	}
	if got := int(m2.Len()); got != wantMap {
		return fmt.Errorf("map has %d entries, want %d (batch committed=%v)", got, wantMap, batchInMap)
	}
	if batchInMap {
		for j := 0; j < batchLen; j++ {
			if _, ok := m2.Get(key(800_000 + j)); !ok {
				return fmt.Errorf("batch committed but key %d missing (torn within root)", 800_000+j)
			}
		}
	}
	for i := 0; i < committed; i++ {
		v, ok := m2.Get(key(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
			return fmt.Errorf("pre-batch key %d lost or corrupt after recovery", i)
		}
	}
	// The recovered store must keep committing batches.
	nb := store2.NewBatch()
	nb.MapSet(m2, key(424242), []byte("post-recovery"))
	nb.QueueEnqueue(q2, 424242)
	nb.Commit()
	if _, ok := m2.Get(key(424242)); !ok {
		return fmt.Errorf("store unusable after batch recovery")
	}
	if verbose {
		fmt.Printf("batch round seed=%d: committed=%d batch-recovered=%v leaked-blocks=%d ok\n",
			seed, committed, batchInMap, rs.LeakedBlocks)
	}
	return nil
}
