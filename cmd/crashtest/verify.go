package main

import (
	"fmt"

	"github.com/mod-ds/mod/internal/core"
)

// Full-content verification. Earlier crashtest revisions checked the
// queue only by length and the map partly by sampled keys, so a
// recovery that permuted or corrupted surviving values could pass and
// the process exit 0 despite a real mismatch. Every round now compares
// the complete recovered contents against the model; any divergence is
// an error, and main treats every error as fatal.

// verifyMap checks that m's committed contents equal want exactly —
// same keys, same values, nothing missing, nothing extra.
func verifyMap(m *core.Map, want map[string]string) error {
	seen := 0
	var err error
	m.Range(func(k, v []byte) bool {
		seen++
		wv, ok := want[string(k)]
		if !ok {
			err = fmt.Errorf("map has unexpected key %q", k)
			return false
		}
		if string(v) != wv {
			err = fmt.Errorf("map key %q = %q, want %q", k, v, wv)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	if seen != len(want) {
		return fmt.Errorf("map has %d entries, want %d", seen, len(want))
	}
	return nil
}

// verifyQueue checks that q's committed contents equal want exactly,
// in order.
func verifyQueue(q *core.Queue, want []uint64) error {
	snap := q.Snapshot()
	defer snap.Close()
	got := snap.Version().Elements()
	if len(got) != len(want) {
		return fmt.Errorf("queue has %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("queue[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}
