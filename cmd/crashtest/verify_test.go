package main

import (
	"testing"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Regression tests for the verification hole that let crashtest exit 0
// on real recovery mismatches: queue contents were compared only by
// length and map contents only by sampled keys, so a store whose
// surviving values were wrong (or whose queue order was scrambled)
// passed. The helpers must reject every such divergence.

func testStore(t *testing.T) *core.Store {
	t.Helper()
	db, _, err := core.Open(pmem.DefaultConfig(4 << 20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db.Store()
}

func TestVerifyQueueDetectsWrongValues(t *testing.T) {
	s := testStore(t)
	q, err := s.Queue("q")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint64{1, 2, 3} {
		q.Enqueue(v)
	}
	if err := verifyQueue(q, []uint64{1, 2, 3}); err != nil {
		t.Fatalf("matching queue rejected: %v", err)
	}
	// Same length, wrong value — the case the old length-only check
	// waved through.
	if err := verifyQueue(q, []uint64{1, 2, 999}); err == nil {
		t.Fatal("queue value mismatch not detected")
	}
	// Same multiset, wrong order.
	if err := verifyQueue(q, []uint64{3, 2, 1}); err == nil {
		t.Fatal("queue order mismatch not detected")
	}
	if err := verifyQueue(q, []uint64{1, 2}); err == nil {
		t.Fatal("queue length mismatch not detected")
	}
}

func TestVerifyMapDetectsDivergence(t *testing.T) {
	s := testStore(t)
	m, err := s.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	m.Set([]byte("a"), []byte("1"))
	m.Set([]byte("b"), []byte("2"))
	if err := verifyMap(m, map[string]string{"a": "1", "b": "2"}); err != nil {
		t.Fatalf("matching map rejected: %v", err)
	}
	// Same key set, wrong value — the case sampled-key checks missed.
	if err := verifyMap(m, map[string]string{"a": "1", "b": "wrong"}); err == nil {
		t.Fatal("map value mismatch not detected")
	}
	if err := verifyMap(m, map[string]string{"a": "1"}); err == nil {
		t.Fatal("extra map key not detected")
	}
	if err := verifyMap(m, map[string]string{"a": "1", "b": "2", "c": "3"}); err == nil {
		t.Fatal("missing map key not detected")
	}
}

// TestRoundsPassOnHealthyStore runs each round type end to end at a
// small size: with a correct implementation every seed must verify.
func TestRoundsPassOnHealthyStore(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		if err := faseRound(seed, 40, false); err != nil {
			t.Errorf("fase round seed=%d: %v", seed, err)
		}
		if err := batchRound(seed, 40, false); err != nil {
			t.Errorf("batch round seed=%d: %v", seed, err)
		}
		if err := shardRound(seed, 40, 3, false); err != nil {
			t.Errorf("shard round seed=%d: %v", seed, err)
		}
	}
}
