// Modcheck verifies a recorded persistent-memory event trace against the
// MOD correctness invariants (§5.4): out-of-place updates only, every
// write flushed before the next fence, atomic commit writes, and no
// reuse of freed memory before an ordering point.
//
// Usage:
//
//	modcheck [-demo] [trace.bin]
//
// With -demo it records a fresh trace from a mixed MOD workload and
// checks it (writing it to the optional file argument). Otherwise it
// reads a binary trace previously written with trace.Recorder.WriteTo.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/trace"
)

func main() {
	demo := flag.Bool("demo", false, "record and check a built-in demo workload trace")
	flag.Parse()

	var events []trace.Event
	var cfg trace.CheckerConfig
	switch {
	case *demo:
		var err error
		events, cfg, err = recordDemo(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events, err = trace.ReadTrace(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		cfg = trace.CheckerConfig{AllowUnflushedTail: true}
	default:
		flag.Usage()
		os.Exit(2)
	}

	violations := trace.Check(events, cfg)
	fmt.Printf("modcheck: %d events, %d violations\n", len(events), len(violations))
	for i, v := range violations {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(violations)-20)
			break
		}
		fmt.Println("  " + v.Error())
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// recordDemo traces a mixed MOD workload covering all five structures and
// every commit flavor.
func recordDemo(outPath string) ([]trace.Event, trace.CheckerConfig, error) {
	rec := trace.NewRecorder()
	devCfg := pmem.DefaultConfig(128 << 20)
	devCfg.Tracer = rec
	db, _, err := core.Open(devCfg)
	if err != nil {
		return nil, trace.CheckerConfig{}, err
	}
	defer db.Close()
	store := db.Store()
	m, _ := store.Map("m")
	v, _ := store.Vector("v")
	q, _ := store.Queue("q")
	st, _ := store.Stack("s")
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		m.Set(key, []byte("value"))
		v.Push(uint64(i))
		q.Enqueue(uint64(i))
		st.Push(uint64(i))
	}
	for i := 0; i < 250; i++ {
		q.Dequeue()
		st.Pop()
		v.Swap(uint64(i), uint64(499-i))
		m.Delete([]byte(fmt.Sprintf("key-%d", i)))
	}
	// Group commits: single-root batches (one fence per epoch) and
	// multi-root batches (publication through the batch record).
	for i := 0; i < 50; i++ {
		b := store.NewBatch()
		for j := 0; j < 8; j++ {
			b.MapSet(m, []byte(fmt.Sprintf("batch-%d-%d", i, j)), []byte("bv"))
		}
		b.Commit()
		b = store.NewBatch()
		b.MapDelete(m, []byte(fmt.Sprintf("batch-%d-0", i)))
		b.QueueEnqueue(q, uint64(i))
		b.VectorPush(v, uint64(i))
		b.StackPush(st, uint64(i))
		b.Commit()
	}
	store.Sync()
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		defer f.Close()
		if _, err := rec.WriteTo(f); err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		fmt.Printf("modcheck: wrote trace to %s\n", outPath)
	}
	return rec.Events(), store.CheckerConfig(), nil
}
