// Modcheck verifies a recorded persistent-memory event trace against the
// MOD correctness invariants (§5.4): out-of-place updates only, every
// write flushed before the next fence, atomic commit writes, and no
// reuse of freed memory before an ordering point.
//
// Usage:
//
//	modcheck [-demo] [-durable] [trace.bin]
//
// With -demo it records a fresh trace from a mixed MOD workload and
// checks it (writing it to the optional file argument). With -durable
// it runs a durable-linearizability smoke instead: a sequential update
// history is crash-injected at PM-write granularity, and every
// recovered image must be an exact committed prefix of the history
// that contains at least every operation whose commit fence preceded
// the crash cut. Otherwise it reads a binary trace previously written
// with trace.Recorder.WriteTo.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/trace"
)

func main() {
	demo := flag.Bool("demo", false, "record and check a built-in demo workload trace")
	durable := flag.Bool("durable", false, "run the durable-linearizability crash-injection smoke")
	durOps := flag.Int("ops", 32, "operation count for the -durable history")
	durStride := flag.Int("stride", 7, "inject a crash every Nth PM write in -durable mode")
	flag.Parse()

	if *durable {
		if err := runDurable(*durOps, *durStride); err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var events []trace.Event
	var cfg trace.CheckerConfig
	switch {
	case *demo:
		var err error
		events, cfg, err = recordDemo(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events, err = trace.ReadTrace(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		cfg = trace.CheckerConfig{AllowUnflushedTail: true}
	default:
		flag.Usage()
		os.Exit(2)
	}

	violations := trace.Check(events, cfg)
	fmt.Printf("modcheck: %d events, %d violations\n", len(events), len(violations))
	for i, v := range violations {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(violations)-20)
			break
		}
		fmt.Println("  " + v.Error())
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// recordDemo traces a mixed MOD workload covering all five structures and
// every commit flavor.
func recordDemo(outPath string) ([]trace.Event, trace.CheckerConfig, error) {
	rec := trace.NewRecorder()
	devCfg := pmem.DefaultConfig(128 << 20)
	devCfg.Tracer = rec
	db, _, err := core.Open(devCfg)
	if err != nil {
		return nil, trace.CheckerConfig{}, err
	}
	defer db.Close()
	store := db.Store()
	m, _ := store.Map("m")
	v, _ := store.Vector("v")
	q, _ := store.Queue("q")
	st, _ := store.Stack("s")
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		m.Set(key, []byte("value"))
		v.Push(uint64(i))
		q.Enqueue(uint64(i))
		st.Push(uint64(i))
	}
	for i := 0; i < 250; i++ {
		q.Dequeue()
		st.Pop()
		v.Swap(uint64(i), uint64(499-i))
		m.Delete([]byte(fmt.Sprintf("key-%d", i)))
	}
	// Group commits: single-root batches (one fence per epoch) and
	// multi-root batches (publication through the batch record).
	for i := 0; i < 50; i++ {
		b := store.NewBatch()
		for j := 0; j < 8; j++ {
			b.MapSet(m, []byte(fmt.Sprintf("batch-%d-%d", i, j)), []byte("bv"))
		}
		b.Commit()
		b = store.NewBatch()
		b.MapDelete(m, []byte(fmt.Sprintf("batch-%d-0", i)))
		b.QueueEnqueue(q, uint64(i))
		b.VectorPush(v, uint64(i))
		b.StackPush(st, uint64(i))
		b.Commit()
	}
	store.Sync()
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		defer f.Close()
		if _, err := rec.WriteTo(f); err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		fmt.Printf("modcheck: wrote trace to %s\n", outPath)
	}
	return rec.Events(), store.CheckerConfig(), nil
}

// durKey and durVal are the deterministic op-i key/value of the
// -durable history.
func durKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func durVal(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// durBuild opens a fresh store, creates (and syncs) the target map, and
// returns both. PM writes observed by a tracer installed after this
// point index only the measured history.
func durBuild() (*pmem.Device, *core.Store, *core.Map, error) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	st, err := core.NewStore(dev)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := st.Map("durable")
	if err != nil {
		return nil, nil, nil, err
	}
	st.Sync()
	return dev, st, m, nil
}

// runDurable is the durable-linearizability smoke: run a sequential
// history of ops map updates, crash at every stride-th PM-write index,
// recover, and check two properties against each image:
//
//  1. Safety — the recovered map is an *exact* committed prefix of the
//     history: keys 0..k-1 present with their final values, nothing
//     else, for some k. No torn or reordered state is ever visible.
//  2. Durable linearizability — k covers every operation whose commit
//     fence preceded the crash cut. Operation i's root swap is made
//     durable by the next fence, which executes before op i+1's last
//     PM write; so once op i+1 has fully executed, op i must survive
//     any crash. The floor is therefore (completed ops at the cut) - 1.
func runDurable(ops, stride int) error {
	if ops < 2 {
		ops = 2
	}
	if stride < 1 {
		stride = 1
	}

	// Dry run: record the cumulative PM-write index at the end of each op.
	dev, _, m, err := durBuild()
	if err != nil {
		return err
	}
	base := dev.Stats().Writes
	wEnd := make([]uint64, ops)
	for i := 0; i < ops; i++ {
		m.Set(durKey(i), durVal(i))
		wEnd[i] = dev.Stats().Writes - base
	}
	total := wEnd[ops-1]

	injections := 0
	for inj := 1; inj <= int(total); inj += stride {
		injections++
		dev, _, m, err := durBuild()
		if err != nil {
			return err
		}
		tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, 0xD00D^uint64(inj))
		dev.SetTracer(tr)
		for i := 0; i < ops; i++ {
			m.Set(durKey(i), durVal(i))
		}
		dev.SetTracer(nil)

		cfg2 := pmem.DefaultConfig(64 << 20)
		dev2 := pmem.NewFromImage(cfg2, tr.Image())
		st2, _, err := core.OpenStore(dev2)
		if err != nil {
			return fmt.Errorf("inj %d: recovery failed: %w", inj, err)
		}
		m2, err := st2.Map("durable")
		if err != nil {
			return fmt.Errorf("inj %d: rebind failed: %w", inj, err)
		}

		// Exact-prefix check: presence must be monotone and values final.
		k := 0
		for i := 0; i < ops; i++ {
			got, ok := m2.Get(durKey(i))
			if ok && i == k {
				if string(got) != string(durVal(i)) {
					return fmt.Errorf("inj %d: key %d recovered with value %q, want %q",
						inj, i, got, durVal(i))
				}
				k++
			} else if ok {
				return fmt.Errorf("inj %d: non-prefix state: key %d present but key %d missing",
					inj, i, k)
			}
		}
		if got := m2.Len(); got != uint64(k) {
			return fmt.Errorf("inj %d: recovered Len = %d, want prefix length %d", inj, got, k)
		}

		// Fence-coverage floor.
		completed := 0
		for i := 0; i < ops && wEnd[i] <= uint64(inj); i++ {
			completed++
		}
		floor := completed - 1
		if floor < 0 {
			floor = 0
		}
		if k < floor {
			return fmt.Errorf("inj %d: recovered prefix %d ops, but %d ops were fence-covered before the cut",
				inj, k, floor)
		}

		// The recovered store must remain writable.
		m2.Set([]byte("post-crash"), []byte("ok"))
		if got, ok := m2.Get([]byte("post-crash")); !ok || string(got) != "ok" {
			return fmt.Errorf("inj %d: recovered store lost a post-crash write", inj)
		}
		st2.Sync()
	}
	fmt.Printf("modcheck: durable-linearizability smoke: %d ops, %d PM writes, %d injections (stride %d), all recovered states exact fence-covered prefixes\n",
		ops, total, injections, stride)
	return nil
}
