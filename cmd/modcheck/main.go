// Modcheck verifies a recorded persistent-memory event trace against the
// MOD correctness invariants (§5.4): out-of-place updates only, every
// write flushed before the next fence, atomic commit writes, and no
// reuse of freed memory before an ordering point.
//
// Usage:
//
//	modcheck [-demo] [-durable] [-corrupt] [trace.bin]
//
// With -demo it records a fresh trace from a mixed MOD workload and
// checks it (writing it to the optional file argument). With -durable
// it runs a durable-linearizability smoke instead: a sequential update
// history is crash-injected at PM-write granularity, and every
// recovered image must be an exact committed prefix of the history
// that contains at least every operation whose commit fence preceded
// the crash cut. With -corrupt it runs the media-fault smoke: random
// bit flips, torn stores, and dead lines are injected into a committed
// image, which is reopened with verify-on-open — every trial must end
// in typed detection, an exact-prefix salvage, or a byte-exact clean
// state; a silent wrong read fails the run. Otherwise it reads a
// binary trace previously written with trace.Recorder.WriteTo.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/trace"
)

func main() {
	demo := flag.Bool("demo", false, "record and check a built-in demo workload trace")
	durable := flag.Bool("durable", false, "run the durable-linearizability crash-injection smoke")
	durOps := flag.Int("ops", 32, "operation count for the -durable history")
	durStride := flag.Int("stride", 7, "inject a crash every Nth PM write in -durable mode")
	corrupt := flag.Bool("corrupt", false, "run the media-fault corruption smoke")
	trials := flag.Int("trials", 64, "fault-injection trials in -corrupt mode")
	flag.Parse()

	if *durable {
		if err := runDurable(*durOps, *durStride); err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *corrupt {
		if err := runCorrupt(*durOps, *trials); err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var events []trace.Event
	var cfg trace.CheckerConfig
	switch {
	case *demo:
		var err error
		events, cfg, err = recordDemo(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
	case flag.NArg() == 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		events, err = trace.ReadTrace(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modcheck: %v\n", err)
			os.Exit(1)
		}
		cfg = trace.CheckerConfig{AllowUnflushedTail: true}
	default:
		flag.Usage()
		os.Exit(2)
	}

	violations := trace.Check(events, cfg)
	fmt.Printf("modcheck: %d events, %d violations\n", len(events), len(violations))
	for i, v := range violations {
		if i == 20 {
			fmt.Printf("... and %d more\n", len(violations)-20)
			break
		}
		fmt.Println("  " + v.Error())
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}

// recordDemo traces a mixed MOD workload covering all five structures and
// every commit flavor.
func recordDemo(outPath string) ([]trace.Event, trace.CheckerConfig, error) {
	rec := trace.NewRecorder()
	devCfg := pmem.DefaultConfig(128 << 20)
	devCfg.Tracer = rec
	db, _, err := core.Open(devCfg)
	if err != nil {
		return nil, trace.CheckerConfig{}, err
	}
	defer db.Close()
	store := db.Store()
	m, _ := store.Map("m")
	v, _ := store.Vector("v")
	q, _ := store.Queue("q")
	st, _ := store.Stack("s")
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		m.Set(key, []byte("value"))
		v.Push(uint64(i))
		q.Enqueue(uint64(i))
		st.Push(uint64(i))
	}
	for i := 0; i < 250; i++ {
		q.Dequeue()
		st.Pop()
		v.Swap(uint64(i), uint64(499-i))
		m.Delete([]byte(fmt.Sprintf("key-%d", i)))
	}
	// Group commits: single-root batches (one fence per epoch) and
	// multi-root batches (publication through the batch record).
	for i := 0; i < 50; i++ {
		b := store.NewBatch()
		for j := 0; j < 8; j++ {
			b.MapSet(m, []byte(fmt.Sprintf("batch-%d-%d", i, j)), []byte("bv"))
		}
		b.Commit()
		b = store.NewBatch()
		b.MapDelete(m, []byte(fmt.Sprintf("batch-%d-0", i)))
		b.QueueEnqueue(q, uint64(i))
		b.VectorPush(v, uint64(i))
		b.StackPush(st, uint64(i))
		b.Commit()
	}
	store.Sync()
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		defer f.Close()
		if _, err := rec.WriteTo(f); err != nil {
			return nil, trace.CheckerConfig{}, err
		}
		fmt.Printf("modcheck: wrote trace to %s\n", outPath)
	}
	return rec.Events(), store.CheckerConfig(), nil
}

// durKey and durVal are the deterministic op-i key/value of the
// -durable history.
func durKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func durVal(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

// durBuild opens a fresh store, creates (and syncs) the target map, and
// returns both. PM writes observed by a tracer installed after this
// point index only the measured history.
func durBuild() (*pmem.Device, *core.DB, *core.Map, error) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	db, _, err := core.Open(cfg, core.WithDevices(dev))
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := db.Map("durable")
	if err != nil {
		return nil, nil, nil, err
	}
	db.Sync()
	return dev, db, m, nil
}

// runDurable is the durable-linearizability smoke: run a sequential
// history of ops map updates, crash at every stride-th PM-write index,
// recover, and check two properties against each image:
//
//  1. Safety — the recovered map is an *exact* committed prefix of the
//     history: keys 0..k-1 present with their final values, nothing
//     else, for some k. No torn or reordered state is ever visible.
//  2. Durable linearizability — k covers every operation whose commit
//     fence preceded the crash cut. Operation i's root swap is made
//     durable by the next fence, which executes before op i+1's last
//     PM write; so once op i+1 has fully executed, op i must survive
//     any crash. The floor is therefore (completed ops at the cut) - 1.
func runDurable(ops, stride int) error {
	if ops < 2 {
		ops = 2
	}
	if stride < 1 {
		stride = 1
	}

	// Dry run: record the cumulative PM-write index at the end of each op.
	dev, _, m, err := durBuild()
	if err != nil {
		return err
	}
	base := dev.Stats().Writes
	wEnd := make([]uint64, ops)
	for i := 0; i < ops; i++ {
		m.Set(durKey(i), durVal(i))
		wEnd[i] = dev.Stats().Writes - base
	}
	total := wEnd[ops-1]

	injections := 0
	for inj := 1; inj <= int(total); inj += stride {
		injections++
		dev, _, m, err := durBuild()
		if err != nil {
			return err
		}
		tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, 0xD00D^uint64(inj))
		dev.SetTracer(tr)
		for i := 0; i < ops; i++ {
			m.Set(durKey(i), durVal(i))
		}
		dev.SetTracer(nil)

		cfg2 := pmem.DefaultConfig(64 << 20)
		dev2 := pmem.NewFromImage(cfg2, tr.Image())
		st2, _, err := core.Open(cfg2, core.WithDevices(dev2), core.WithAttach())
		if err != nil {
			return fmt.Errorf("inj %d: recovery failed: %w", inj, err)
		}
		m2, err := st2.Map("durable")
		if err != nil {
			return fmt.Errorf("inj %d: rebind failed: %w", inj, err)
		}

		// Exact-prefix check: presence must be monotone and values final.
		k := 0
		for i := 0; i < ops; i++ {
			got, ok := m2.Get(durKey(i))
			if ok && i == k {
				if string(got) != string(durVal(i)) {
					return fmt.Errorf("inj %d: key %d recovered with value %q, want %q",
						inj, i, got, durVal(i))
				}
				k++
			} else if ok {
				return fmt.Errorf("inj %d: non-prefix state: key %d present but key %d missing",
					inj, i, k)
			}
		}
		if got := m2.Len(); got != uint64(k) {
			return fmt.Errorf("inj %d: recovered Len = %d, want prefix length %d", inj, got, k)
		}

		// Fence-coverage floor.
		completed := 0
		for i := 0; i < ops && wEnd[i] <= uint64(inj); i++ {
			completed++
		}
		floor := completed - 1
		if floor < 0 {
			floor = 0
		}
		if k < floor {
			return fmt.Errorf("inj %d: recovered prefix %d ops, but %d ops were fence-covered before the cut",
				inj, k, floor)
		}

		// The recovered store must remain writable.
		m2.Set([]byte("post-crash"), []byte("ok"))
		if got, ok := m2.Get([]byte("post-crash")); !ok || string(got) != "ok" {
			return fmt.Errorf("inj %d: recovered store lost a post-crash write", inj)
		}
		st2.Sync()
	}
	fmt.Printf("modcheck: durable-linearizability smoke: %d ops, %d PM writes, %d injections (stride %d), all recovered states exact fence-covered prefixes\n",
		ops, total, injections, stride)
	return nil
}

// runCorrupt is the media-fault smoke (DESIGN.md §13): build a
// committed selective-map history, snapshot the durable image, and for
// each trial inject a media fault — 1–3 random bit flips, a torn
// 8-byte store, or a scrambled (dead) line — into a fresh copy of the
// image, then reopen it with verify-on-open and salvage enabled. Every
// trial must end in one of:
//
//   - detection: the open fails with ErrCorrupted, the damage report
//     names an unsalvaged (quarantined) root, or a read trips a typed
//     corruption panic;
//   - salvage: the damaged root is rolled back to its checkpoint and the
//     surviving state is an exact value-correct prefix of the history;
//   - clean: the fault landed in dead heap space and every operation
//     reads back byte-exact.
//
// A recovered store serving a wrong value without any of the above is a
// silent wrong read and fails the run.
func runCorrupt(ops, trials int) error {
	if ops < 4 {
		ops = 4
	}
	if trials < 1 {
		trials = 1
	}
	openOpts := func(imgs [][]byte) []core.Option {
		return []core.Option{
			core.WithSelective(4), core.WithNodeCache(),
			core.WithExistingImages(imgs), core.WithVerify(), core.WithSalvage(),
		}
	}

	// Build the committed history once. base is the pristine formatted
	// image torn stores revert to; img is the committed image each trial
	// damages a copy of.
	cfg := pmem.DefaultConfig(16 << 20)
	db, _, err := core.Open(cfg, core.WithSelective(4), core.WithNodeCache())
	if err != nil {
		return err
	}
	snap := func() []byte { return db.Store().Device().Snapshot() }
	m, err := db.Map("corrupt")
	if err != nil {
		return err
	}
	db.Sync()
	base := snap()
	if ops%4 == 0 {
		ops++ // leave a pending record past the last checkpoint fold
	}
	for i := 0; i < ops; i++ {
		m.Set(durKey(i), durVal(i))
	}
	db.Sync()
	img := snap()
	lo, hi := db.Store().Heap().DataBounds()
	st := db.Store()
	slot, err := st.Heap().RootSlot("corrupt")
	if err != nil {
		return err
	}
	_, recHead, recCount := funcds.SelectiveExt(st.Heap(), st.Heap().Root(slot))
	db.Close()

	// Deterministic salvage trial first: damage a covered, non-pointer
	// byte of the pending record chain. Verification must flag the root
	// and salvage must roll it back to the checkpoint — random faults
	// below almost never land here, so aim one on purpose.
	if recCount == 0 {
		return fmt.Errorf("no pending record to aim the salvage trial at")
	}
	dmg := append([]byte(nil), img...)
	dmg[recHead+15] ^= 0x08
	db2, info, err := core.Open(cfg, openOpts([][]byte{dmg})...)
	if err != nil {
		return fmt.Errorf("salvage trial: open failed entirely: %w", err)
	}
	outcome, err := corruptProbe(db2, ops, info)
	db2.Close()
	if err != nil {
		return fmt.Errorf("salvage trial: %w", err)
	}
	if outcome != "salvaged" {
		return fmt.Errorf("salvage trial: outcome %q, want salvaged", outcome)
	}

	detected, salvaged, clean := 0, 1, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)*1_000_003 + 0xC0FFEE))
		addr := func() pmem.Addr { return lo + pmem.Addr(rng.Int63n(int64(hi-lo))) }
		var plan pmem.FaultPlan
		var class string
		switch trial % 3 {
		case 0:
			class = "bit-flip"
			for n := 1 + rng.Intn(3); n > 0; n-- {
				plan.FlipBit(addr(), uint8(rng.Intn(8)))
			}
		case 1:
			class = "torn-store"
			plan.TearStore(addr())
		default:
			class = "dead-line"
			plan.KillLine(addr())
		}
		dmg := append([]byte(nil), img...)
		plan.ApplyToImage(dmg, base)

		db2, info, err := core.Open(cfg, openOpts([][]byte{dmg})...)
		if err != nil {
			if !errors.Is(err, core.ErrCorrupted) {
				return fmt.Errorf("trial %d (%s): open failed untyped: %w", trial, class, err)
			}
			detected++
			continue
		}
		outcome, err := corruptProbe(db2, ops, info)
		db2.Close()
		if err != nil {
			return fmt.Errorf("trial %d (%s): %w", trial, class, err)
		}
		switch outcome {
		case "detected":
			detected++
		case "salvaged":
			salvaged++
		default:
			clean++
		}
	}
	fmt.Printf("modcheck: media-fault smoke: %d ops, %d trials: %d detected, %d salvaged, %d clean, 0 silent wrong reads\n",
		ops, trials+1, detected, salvaged, clean)
	return nil
}

// corruptProbe classifies one reopened trial: "detected" (quarantine or
// a typed corruption panic on read), "salvaged" (exact-prefix rollback),
// or "clean" (byte-exact full state). Any other observable state is an
// error — a silent wrong read.
func corruptProbe(db *core.DB, ops int, info core.RecoveryInfo) (outcome string, err error) {
	defer func() {
		if r := recover(); r != nil {
			switch r.(type) {
			case *alloc.CorruptionPanic, *pmem.MediaError:
				outcome, err = "detected", nil
			default:
				panic(r)
			}
		}
	}()
	wantSalvaged := false
	for _, d := range info.Damaged {
		if d.Salvaged {
			wantSalvaged = true
		}
	}
	m, err := db.Map("corrupt")
	if errors.Is(err, core.ErrCorrupted) {
		return "detected", nil
	}
	if err != nil {
		return "", fmt.Errorf("rebind failed untyped: %w", err)
	}
	// Presence must be an exact value-correct prefix of the history.
	k := 0
	for i := 0; i < ops; i++ {
		got, ok := m.Get(durKey(i))
		if ok && i == k {
			if string(got) != string(durVal(i)) {
				return "", fmt.Errorf("silent wrong read: key %d = %q, want %q", i, got, durVal(i))
			}
			k++
		} else if ok {
			return "", fmt.Errorf("non-prefix state: key %d present but key %d missing", i, k)
		}
	}
	if k < ops {
		if !wantSalvaged {
			return "", fmt.Errorf("clean open lost %d committed ops without a salvage report", ops-k)
		}
		return "salvaged", nil
	}
	if wantSalvaged {
		return "salvaged", nil
	}
	return "clean", nil
}
