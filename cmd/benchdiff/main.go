// Benchdiff is the CI performance-regression gate. It compares a fresh
// BENCH.json (written by modbench -bench) against the committed baseline
// and exits nonzero if any deterministic row's ops/sec dropped — or its
// fences/op, flushes/op, or (transient rows) copies/op rose — by more
// than the tolerance, naming the offending rows in the failure output.
//
// Usage:
//
//	benchdiff [-baseline BENCH_baseline.json] [-current BENCH.json] [-tolerance 0.15]
//
// The single-threaded workload suite, the synchronous group-commit and
// transient sweeps, and the sharded sweep (sequential execution with a
// critical-path elapsed metric) are fully deterministic in simulated time, so any
// drift beyond the tolerance is a real code-path change, not measurement
// noise. The concurrent reader-scaling rows depend on goroutine
// interleaving and are reported but never gated.
//
// After an intentional performance change, regenerate the baseline with
//
//	go run ./cmd/modbench -scale small -bench BENCH_baseline.json
//
// and commit it alongside the change.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mod-ds/mod/internal/harness"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH.json", "freshly generated report")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	flag.Parse()

	base, err := harness.ReadBenchDoc(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := harness.ReadBenchDoc(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}
	if base.Scale != cur.Scale || base.Ops != cur.Ops {
		fmt.Fprintf(os.Stderr, "benchdiff: scale mismatch: baseline %s/%d ops vs current %s/%d ops\n",
			base.Scale, base.Ops, cur.Scale, cur.Ops)
		os.Exit(2)
	}

	regressions := harness.CompareBenchDocs(base, cur, *tolerance)
	gated := len(base.Workloads) + len(base.GroupCommit) + len(base.Transient) + len(base.Sharded)
	if len(regressions) == 0 {
		fmt.Printf("benchdiff: OK — %d gated rows within %.0f%% of baseline\n", gated, *tolerance*100)
		return
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(regressions), *baseline)
	for _, r := range regressions {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	fmt.Fprintf(os.Stderr, "offending rows: %s\n", strings.Join(offendingRows(regressions), ", "))
	os.Exit(1)
}

// offendingRows extracts the distinct row keys (the "workload/engine" or
// "sweep/bN" prefix of each regression message), preserving order.
func offendingRows(regressions []string) []string {
	var rows []string
	seen := map[string]bool{}
	for _, r := range regressions {
		row := r
		if i := strings.Index(r, ": "); i > 0 {
			row = r[:i]
		}
		if !seen[row] {
			seen[row] = true
			rows = append(rows, row)
		}
	}
	return rows
}
