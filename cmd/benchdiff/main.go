// Benchdiff is the CI performance-regression gate. It compares a fresh
// BENCH.json (written by modbench -bench) against the committed baseline
// and exits nonzero if any deterministic row's ops/sec dropped — or its
// fences/op, flushes/op, (transient/selective rows) copies/op, or
// (recovery rows) recovery_ns rose — by more than the tolerance, naming
// the offending rows in the failure output. Rows present in the current
// report but absent from the baseline also fail: a new row carries no
// gate until the baseline is regenerated. Pass -allow-new to downgrade
// that failure to a warning (e.g. on the PR that introduces the row).
//
// Usage:
//
//	benchdiff [-baseline BENCH_baseline.json] [-current BENCH.json] [-tolerance 0.15] [-allow-new] [-exact-ordering]
//
// -exact-ordering additionally enforces the DESIGN.md §13 neutrality
// contract: raw fence and flush counts of every single-threaded
// deterministic sweep must be bit-identical to the baseline. Node
// checksums ride inside each FASE's existing flush+fence envelope, so
// any count drift — even inside the tolerance — is an ordering-path
// change that must be intentional (and re-baselined).
//
// The single-threaded workload suite, the synchronous group-commit,
// transient, and selective sweeps, and the sharded sweep (sequential
// execution with a critical-path elapsed metric) are fully deterministic
// in simulated time, so any drift beyond the tolerance is a real
// code-path change, not measurement noise. The concurrent reader-scaling
// rows depend on goroutine interleaving and are reported but never
// gated; the server sweep runs on the wall clock, so its rows are
// presence-checked but its values are never gated either.
//
// After an intentional performance change, regenerate the baseline with
//
//	go run ./cmd/modbench -scale small -bench BENCH_baseline.json
//
// and commit it alongside the change.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/mod-ds/mod/internal/harness"
)

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed baseline report")
	current := flag.String("current", "BENCH.json", "freshly generated report")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional regression before failing")
	allowNew := flag.Bool("allow-new", false, "warn instead of failing on rows missing from the baseline")
	exactOrdering := flag.Bool("exact-ordering", false,
		"require bit-identical fence/flush counts on deterministic sweeps (checksum neutrality gate)")
	flag.Parse()

	base, err := harness.ReadBenchDoc(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := harness.ReadBenchDoc(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: current: %v\n", err)
		os.Exit(2)
	}
	if base.Scale != cur.Scale || base.Ops != cur.Ops {
		fmt.Fprintf(os.Stderr, "benchdiff: scale mismatch: baseline %s/%d ops vs current %s/%d ops\n",
			base.Scale, base.Ops, cur.Scale, cur.Ops)
		os.Exit(2)
	}

	regressions := harness.CompareBenchDocs(base, cur, *tolerance)
	if *exactOrdering {
		regressions = append(regressions, harness.CompareBenchOrdering(base, cur)...)
	}
	fresh := harness.BenchNewRows(base, cur)
	if len(fresh) > 0 && *allowNew {
		fmt.Fprintf(os.Stderr, "benchdiff: warning: %d row(s) not in baseline (ungated until it is regenerated): %s\n",
			len(fresh), strings.Join(fresh, ", "))
		fresh = nil
	}
	gated := len(base.Workloads) + len(base.GroupCommit) + len(base.Transient) +
		len(base.Sharded) + len(base.Selective) + len(base.Recovery)
	if len(regressions) == 0 && len(fresh) == 0 {
		fmt.Printf("benchdiff: OK — %d gated rows within %.0f%% of baseline\n", gated, *tolerance*100)
		return
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(regressions), *baseline)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "offending rows: %s\n", strings.Join(offendingRows(regressions), ", "))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d row(s) in current report but not in %s: %s\n",
			len(fresh), *baseline, strings.Join(fresh, ", "))
		fmt.Fprintln(os.Stderr, "new rows are ungated; regenerate the baseline or rerun with -allow-new")
	}
	os.Exit(1)
}

// offendingRows extracts the distinct row keys (the "workload/engine" or
// "sweep/bN" prefix of each regression message), preserving order.
func offendingRows(regressions []string) []string {
	var rows []string
	seen := map[string]bool{}
	for _, r := range regressions {
		row := r
		if i := strings.Index(r, ": "); i > 0 {
			row = r[:i]
		}
		if !seen[row] {
			seen[row] = true
			rows = append(rows, row)
		}
	}
	return rows
}
