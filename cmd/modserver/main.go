// Command modserver serves a MOD store over TCP as a RESP-subset KV
// server (GET/SET/DEL/LEN/MGET/MULTI·EXEC/PING/SHUTDOWN). Every write
// is acknowledged only after its group-commit ticket resolves, so +OK
// means fenced-durable; concurrent clients share fence epochs through
// the background committer.
//
// With -loadgen it instead runs an in-process smoke: server on a pipe
// listener, open-loop Zipfian load against it, latency percentiles and
// fences/op printed at the end — the configuration CI uses.
//
// By default the store lives in the PM simulator and vanishes on exit.
// With -data DIR it instead mmaps files under DIR (the mmapdev
// backend): the first run formats them, later runs attach and recover,
// so SET survives a restart. Linux-only.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/pmem/mmapdev"
	"github.com/mod-ds/mod/internal/server"
	"github.com/mod-ds/mod/internal/server/loadgen"
)

func main() {
	var (
		addr      = flag.String("addr", "localhost:6380", "TCP listen address")
		size      = flag.Int64("size", 256<<20, "PM arena bytes (per shard)")
		data      = flag.String("data", "", "file-backed store directory (mmapdev backend; empty = simulator)")
		shards    = flag.Int("shards", 1, "heap shards (1 = single heap)")
		roots     = flag.Int("roots", server.DefaultRoots, "map roots keys spread across")
		committer = flag.Int("committer", core.DefaultCommitterMaxOps, "group committer epoch cap (0 = default)")
		linger    = flag.Duration("linger", 50*time.Microsecond, "committer settle-fence collection window")
		selective = flag.Bool("selective", false, "selectively persisted structures")
		nodecache = flag.Bool("nodecache", false, "DRAM node cache")
		verbose   = flag.Bool("v", false, "log every command")
		opTimeout = flag.Duration("op-timeout", 0, "per-op timeout middleware (0 = off)")
		maxConns  = flag.Int("max-conns", 0, "connection limit middleware (0 = off)")

		runLoad   = flag.Bool("loadgen", false, "run in-process server + load generator and exit")
		clients   = flag.Int("clients", 32, "loadgen: concurrent clients")
		rate      = flag.Float64("rate", 0, "loadgen: aggregate ops/sec (0 = closed loop)")
		duration  = flag.Duration("duration", 5*time.Second, "loadgen: run length")
		valueSize = flag.Int("value-size", 64, "loadgen: SET payload bytes")
		readFrac  = flag.Float64("read-frac", 0.5, "loadgen: GET fraction")
		multiEv   = flag.Int("multi-every", 0, "loadgen: every Nth write is a MULTI (0 = off)")
		multiSize = flag.Int("multi-size", 4, "loadgen: SETs per MULTI")
		seed      = flag.Int64("seed", 1, "loadgen: rng seed")
	)
	flag.Parse()

	opts := []core.Option{core.WithCommitter(*committer), core.WithCommitterLinger(*linger)}
	if *shards > 1 {
		opts = append(opts, core.WithShards(*shards))
	}
	if *selective {
		opts = append(opts, core.WithSelective(0))
	}
	if *nodecache {
		opts = append(opts, core.WithNodeCache())
	}
	var (
		db   *core.DB
		info core.RecoveryInfo
		err  error
	)
	if *data != "" {
		db, info, err = openFileBacked(*data, *size, *shards, opts)
	} else {
		cfg := pmem.DefaultConfig(*size)
		cfg.TrackDurable = true
		db, info, err = core.Open(cfg, opts...)
	}
	if err != nil {
		log.Fatalf("open store: %v", err)
	}
	if info.Recovered {
		log.Printf("attached to existing store in %s (%d live blocks, %d roots)", *data, info.Stats.LiveBlocks, info.Stats.Roots)
	}

	scfg := server.Config{
		KV:    db,
		Roots: *roots,
		Logf:  log.Printf,
	}
	scfg.Middleware = append(scfg.Middleware, server.Recover())
	if *verbose {
		scfg.Middleware = append(scfg.Middleware, server.Logging(log.Printf))
	}
	if *opTimeout > 0 {
		scfg.Middleware = append(scfg.Middleware, server.Timeout(*opTimeout))
	}
	if *maxConns > 0 {
		scfg.ConnMiddleware = append(scfg.ConnMiddleware, server.LimitConns(*maxConns))
	}
	srv, err := server.New(scfg)
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	if *runLoad {
		runLoadgen(srv, db, loadgen.Config{
			Clients:    *clients,
			Rate:       *rate,
			Duration:   *duration,
			ValueSize:  *valueSize,
			ReadFrac:   *readFrac,
			MultiEvery: *multiEv,
			MultiSize:  *multiSize,
			Seed:       *seed,
		})
		return
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("signal received, draining")
		srv.Shutdown(context.Background())
	}()
	if err := srv.ListenAndServe(*addr); err != nil {
		log.Fatalf("serve: %v", err)
	}
	<-srv.Done()
}

// openFileBacked opens the store over mmapdev files under dir:
// store.pm for a single heap, or shard0.pm..shardN-1.pm plus meta.pm
// when sharded. If the first file already exists the store attaches
// (runs recovery) instead of formatting, so data survives restarts.
// The layout is fixed per directory — reopen with the same -shards.
func openFileBacked(dir string, size int64, shards int, opts []core.Option) (*core.DB, core.RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, core.RecoveryInfo{}, err
	}
	var paths []string
	if shards <= 1 {
		paths = []string{filepath.Join(dir, "store.pm")}
	} else {
		for i := 0; i < shards; i++ {
			paths = append(paths, filepath.Join(dir, fmt.Sprintf("shard%d.pm", i)))
		}
		paths = append(paths, filepath.Join(dir, "meta.pm"))
	}
	_, statErr := os.Stat(paths[0])
	attach := statErr == nil

	devs := make([]pmem.Backend, len(paths))
	for i, p := range paths {
		var (
			d   *mmapdev.Device
			err error
		)
		if attach {
			d, err = mmapdev.Open(p)
		} else {
			sz := size
			if shards > 1 && i == len(paths)-1 {
				sz = 1 << 20 // shard metadata: magic + shard count
			}
			d, err = mmapdev.Create(p, sz)
		}
		if err != nil {
			return nil, core.RecoveryInfo{}, fmt.Errorf("%s: %w", p, err)
		}
		devs[i] = d
	}
	opts = append(opts, core.WithDevices(devs...))
	if attach {
		opts = append(opts, core.WithAttach())
	}
	return core.Open(pmem.Config{}, opts...)
}

// runLoadgen serves on an in-process pipe listener, drives the load,
// and prints the latency/throughput/fence summary.
func runLoadgen(srv *server.Server, db *core.DB, lcfg loadgen.Config) {
	pl := server.NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	before := db.Stats()
	res, err := loadgen.Run(pl.Dial, lcfg, nil)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	pl.Close()
	if err := <-serveErr; err != nil {
		log.Fatalf("serve: %v", err)
	}
	after := db.Stats()

	fencesPerOp := 0.0
	if res.Ops > 0 {
		fencesPerOp = float64(after.Fences-before.Fences) / float64(res.Ops)
	}
	fmt.Printf("clients=%d ops=%d errors=%d elapsed=%s\n", lcfg.Clients, res.Ops, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput=%.0f ops/s p50=%s p99=%s p999=%s fences/op=%.3f\n",
		res.Throughput, res.P50, res.P99, res.P999, fencesPerOp)
	if res.Errors > 0 {
		os.Exit(1)
	}
}
