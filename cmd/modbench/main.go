// Modbench regenerates the tables and figures of the MOD paper's
// evaluation (§6) from the simulated system.
//
// Usage:
//
//	modbench [-experiment name] [-scale default|full|small] [-ops N] [-csv dir] [-bench file]
//
// Without -experiment it runs everything. Experiment names: table1,
// table2, fig2, fig4, fig9, fig10, fig11, table3, spaceoverhead,
// ablation-conc, ablation-naive, concurrent.
//
// With -bench FILE, modbench instead runs the Table 2 workload suite on
// every engine plus the concurrent reader-scaling sweep and writes a
// machine-readable JSON report (simulated ns and ops per simulated
// second, per workload), so the performance trajectory can be tracked
// across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/mod-ds/mod/internal/harness"
	"github.com/mod-ds/mod/internal/workloads"
)

func main() {
	experiment := flag.String("experiment", "", "experiment to run (default: all)")
	scaleName := flag.String("scale", "default", "default | full (paper scale, minutes) | small")
	ops := flag.Int("ops", 0, "override operations per workload")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	benchFile := flag.String("bench", "", "write a machine-readable BENCH.json to this path instead of rendering tables")
	flag.Parse()

	var scale harness.Scale
	switch *scaleName {
	case "default":
		scale = harness.DefaultScale()
	case "full":
		scale = harness.FullScale()
	case "small":
		scale = harness.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "modbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *ops > 0 {
		scale.Ops = *ops
		scale.VectorPreload = *ops
		scale.Table3N = *ops
	}

	if *benchFile != "" {
		if err := writeBench(*benchFile, *scaleName, scale); err != nil {
			fmt.Fprintf(os.Stderr, "modbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := harness.Experiments
	if *experiment != "" {
		names = []string{*experiment}
	}
	for _, name := range names {
		tab, err := harness.Run(name, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "modbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, tab *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	tab.CSV(f)
	return nil
}

// benchWorkload is one workload × engine measurement in BENCH.json.
type benchWorkload struct {
	Workload  string  `json:"workload"`
	Engine    string  `json:"engine"`
	Ops       int     `json:"ops"`
	SimNs     float64 `json:"sim_ns"`
	OpsPerSec float64 `json:"ops_per_sec"` // per simulated second
	Fences    uint64  `json:"fences"`
	Flushes   uint64  `json:"flushes"`
}

// benchConcurrent is one point of the reader-scaling sweep.
type benchConcurrent struct {
	Readers      int     `json:"readers"`
	Writers      int     `json:"writers"`
	ReadOps      int     `json:"read_ops"`
	WriteOps     int     `json:"write_ops"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	BusyNs       float64 `json:"busy_ns"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// benchDoc is the BENCH.json schema.
type benchDoc struct {
	Schema     int               `json:"schema"`
	Scale      string            `json:"scale"`
	Ops        int               `json:"ops"`
	Workloads  []benchWorkload   `json:"workloads"`
	Concurrent []benchConcurrent `json:"concurrent"`
}

func writeBench(path, scaleName string, scale harness.Scale) error {
	workloads.SetVectorPreload(scale.VectorPreload)
	doc := benchDoc{Schema: 1, Scale: scaleName, Ops: scale.Ops}
	for _, name := range workloads.Names {
		for _, engine := range workloads.Engines {
			res, err := workloads.Run(name, engine, workloads.Config{Ops: scale.Ops})
			if err != nil {
				return fmt.Errorf("bench %s/%s: %w", name, engine, err)
			}
			doc.Workloads = append(doc.Workloads, benchWorkload{
				Workload:  name,
				Engine:    res.Engine,
				Ops:       res.Ops,
				SimNs:     res.SimNs,
				OpsPerSec: float64(res.Ops) / (res.SimNs / 1e9),
				Fences:    res.Fences,
				Flushes:   res.Flushes,
			})
		}
	}
	for _, readers := range harness.ConcurrentReaderCounts {
		res, err := workloads.RunConcurrent(harness.ConcurrentBenchConfig(scale, readers))
		if err != nil {
			return fmt.Errorf("bench concurrent r=%d: %w", readers, err)
		}
		doc.Concurrent = append(doc.Concurrent, benchConcurrent{
			Readers:      res.Readers,
			Writers:      res.Writers,
			ReadOps:      res.ReadOps,
			WriteOps:     res.WriteOps,
			ElapsedNs:    res.ElapsedNs,
			BusyNs:       res.BusyNs,
			ReadsPerSec:  res.ReadsPerSec,
			WritesPerSec: res.WritesPerSec,
			OpsPerSec:    res.OpsPerSec,
		})
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workload rows, %d concurrent rows)\n", path, len(doc.Workloads), len(doc.Concurrent))
	return nil
}
