// Modbench regenerates the tables and figures of the MOD paper's
// evaluation (§6) from the simulated system.
//
// Usage:
//
//	modbench [-experiment name] [-scale default|full|small] [-ops N] [-shards N] [-csv dir] [-bench file] [-backend sim|mmap]
//
// Without -experiment it runs everything. Experiment names: table1,
// table2, fig2, fig4, fig9, fig10, fig11, table3, spaceoverhead,
// ablation-conc, ablation-naive, concurrent, groupcommit, transient,
// sharded, selective, server, contention.
//
// -shards N restricts the sharded experiment's shard sweep to the
// single given count (the full sweep is S ∈ {1,2,4,8}).
//
// With -bench FILE, modbench instead runs the Table 2 workload suite on
// every engine plus the concurrent reader-scaling, group-commit, and
// transient sweeps and writes a machine-readable JSON report (simulated
// ns, ops per simulated second, fences and flushes per workload), so the
// performance trajectory can be tracked across commits; cmd/benchdiff
// gates CI on it.
//
// -backend mmap additionally runs the wall-clock mmapdev sweep (the
// same structures over a file-backed store) and appends its rows to the
// report; benchdiff tracks those rows' presence but never gates their
// values.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/mod-ds/mod/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "", "experiment to run (default: all)")
	scaleName := flag.String("scale", "default", "default | full (paper scale, minutes) | small")
	ops := flag.Int("ops", 0, "override operations per workload")
	shards := flag.Int("shards", 0, "restrict the sharded experiment's sweep to this shard count")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	benchFile := flag.String("bench", "", "write a machine-readable BENCH.json to this path instead of rendering tables")
	backend := flag.String("backend", "sim", "sim | mmap (with -bench: also run the wall-clock mmapdev sweep; rows are presence-tracked, never value-gated)")
	flag.Parse()

	switch *backend {
	case "sim", "mmap":
		harness.BenchBackend = *backend
	default:
		fmt.Fprintf(os.Stderr, "modbench: unknown backend %q\n", *backend)
		os.Exit(2)
	}

	var scale harness.Scale
	switch *scaleName {
	case "default":
		scale = harness.DefaultScale()
	case "full":
		scale = harness.FullScale()
	case "small":
		scale = harness.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "modbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *ops > 0 {
		scale.Ops = *ops
		scale.VectorPreload = *ops
		scale.Table3N = *ops
	}
	if *shards > 0 {
		harness.ShardedShardCounts = []int{*shards}
		if *shards > 1 {
			harness.ShardedCrossShardCounts = []int{*shards}
		} else {
			harness.ShardedCrossShardCounts = nil
		}
	}

	if *benchFile != "" {
		if err := writeBench(*benchFile, *scaleName, scale); err != nil {
			fmt.Fprintf(os.Stderr, "modbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	names := harness.Experiments
	if *experiment != "" {
		names = []string{*experiment}
	}
	for _, name := range names {
		tab, err := harness.Run(name, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "modbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tab); err != nil {
				fmt.Fprintf(os.Stderr, "modbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir string, tab *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tab.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	tab.CSV(f)
	return nil
}

func writeBench(path, scaleName string, scale harness.Scale) error {
	doc, err := harness.BuildBenchDoc(scaleName, scale)
	if err != nil {
		return err
	}
	if err := harness.WriteBenchDoc(doc, path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d workload rows, %d concurrent rows, %d transient rows, %d groupcommit rows, %d sharded rows, %d selective rows, %d recovery rows, %d server rows, %d contention rows, %d mmap rows)\n",
		path, len(doc.Workloads), len(doc.Concurrent), len(doc.Transient), len(doc.GroupCommit), len(doc.Sharded),
		len(doc.Selective), len(doc.Recovery), len(doc.Server), len(doc.Contention), len(doc.Mmap))
	return nil
}
