package pmem

// FlushSet is a deferred, deduplicating flush recorder. Instead of issuing
// a clwb the moment a range is written, callers record dirty ranges with
// Add; Flush then issues exactly one clwb per distinct cacheline, in
// recording order, before the publishing fence. Two sources of redundancy
// disappear:
//
//   - a node rewritten several times inside one FASE (an edit-context
//     in-place mutation) is flushed once, not once per rewrite;
//   - ranges that straddle shared lines — a block header and the payload
//     that begins on the same line, or two adjacent packed blocks — are
//     flushed once, not once per range.
//
// The gap between lines recorded and lines flushed is accumulated in
// Stats.FlushesSaved.
//
// Deferring flushes to the ordering point is exactly as crash-consistent
// as issuing them eagerly: MOD's shadow updates are unreachable until the
// commit's root swap, and the swap is ordered after the fence that retires
// these flushes, so no recovery path can observe the deferred lines early.
//
// A FlushSet is not safe for concurrent use; it belongs to a single FASE
// on a single handle, like the edit context that owns it.
type FlushSet struct {
	d        Backend
	set      map[uint64]struct{}
	order    []uint64
	recorded uint64 // line records including duplicates
}

// NewFlushSet returns an empty deferred flush set bound to the given
// backend handle. The dedup works over any backend: on the simulator a
// saved clwb is saved issue time, on mmapdev a saved note is a smaller
// msync set.
func NewFlushSet(b Backend) *FlushSet {
	return &FlushSet{d: b, set: make(map[uint64]struct{})}
}

// NewFlushSet returns an empty deferred flush set bound to this handle.
func (d *Device) NewFlushSet() *FlushSet { return NewFlushSet(d) }

// Add records every line overlapping [addr, addr+n) as needing a flush.
// Lines already recorded are deduplicated and counted as saved flushes.
func (f *FlushSet) Add(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	for ln := first; ln <= last; ln++ {
		f.recorded++
		if _, ok := f.set[ln]; !ok {
			f.set[ln] = struct{}{}
			f.order = append(f.order, ln)
		}
	}
}

// Pending returns the number of distinct lines awaiting the sweep.
func (f *FlushSet) Pending() int { return len(f.order) }

// Flush issues one clwb per recorded line and resets the set, crediting
// the deduplicated lines to Stats.FlushesSaved. Call it immediately before
// the FASE's ordering point.
func (f *FlushSet) Flush() {
	for _, ln := range f.order {
		f.d.Clwb(Addr(ln << LineShift))
	}
	if saved := f.recorded - uint64(len(f.order)); saved > 0 {
		f.d.NoteFlushesSaved(saved)
	}
	f.order = f.order[:0]
	f.recorded = 0
	clear(f.set)
}

// NoteFlushesSaved credits n flushes avoided by deduplication.
func (d *Device) NoteFlushesSaved(n uint64) {
	d.s.mu.Lock()
	d.s.stats.FlushesSaved += n
	d.s.mu.Unlock()
}

// NoteCopiesElided credits n node copies avoided by in-place mutation of
// edit-owned nodes (the copy-elision counter of the transient experiment).
// The edit-context layer records them when it seals.
func (d *Device) NoteCopiesElided(n uint64) {
	if n == 0 {
		return
	}
	d.s.mu.Lock()
	d.s.stats.CopiesElided += n
	d.s.mu.Unlock()
}
