// Package pmem simulates a byte-addressable persistent memory device with
// the cacheline flush and ordering semantics of Intel Optane DCPMM as
// described in §3 of the MOD paper (Haria et al., ASPLOS 2020).
//
// The device models three line states. A store marks a line dirty in the
// (volatile) cache. Clwb moves a line from dirty to inflight: the writeback
// is launched but the CPU does not wait. Sfence stalls until every inflight
// writeback completes, at which point those lines are durable. On a crash,
// only durable lines survive (plus, under adversarial policies, an arbitrary
// subset of inflight or dirty lines, modeling cache evictions).
//
// Time is simulated: every access advances a nanosecond clock using the
// latency constants in Config. The flush-latency model is the paper's own
// Amdahl/Karp–Flatt fit (Fig. 4): overlapped flushes behave 82% parallel and
// 18% serial relative to a 353 ns un-overlapped flush.
//
// All datastructure state lives in the device arena and is referenced by
// Addr offsets, the simulator's stand-in for pointers into mapped PM.
package pmem

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/cachesim"
)

// Addr is a byte offset into the persistent arena. Addr 0 is the null
// address and is never returned by the allocator.
type Addr uint64

// Nil is the null persistent address.
const Nil Addr = 0

// Cacheline geometry, matching x86-64.
const (
	LineSize  = 64
	LineShift = 6
)

// Category labels simulated time for the execution-time breakdowns of
// Figs. 2 and 9.
type Category uint8

const (
	// CatOther is ordinary execution: reads, stores, compute.
	CatOther Category = iota
	// CatFlush is time spent issuing flushes and stalled at fences.
	// Following the paper, flushes of log entries also land here.
	CatFlush
	// CatLog is CPU time spent constructing and bookkeeping log entries
	// in PM-STM implementations.
	CatLog

	numCategories
)

// String returns the category name used in reports.
func (c Category) String() string {
	switch c {
	case CatOther:
		return "other"
	case CatFlush:
		return "flush"
	case CatLog:
		return "log"
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Config holds the device geometry and timing model. The zero value is not
// usable; call DefaultConfig and adjust.
type Config struct {
	// Size is the arena size in bytes, rounded up to a full line.
	Size int64

	// TrackDurable maintains a second image holding only fenced state so
	// that CrashImage can produce post-crash views. Doubles memory.
	TrackDurable bool

	// DisableCache turns off the L1D model (accesses then cost L1HitNs).
	DisableCache bool

	// Tracer, if non-nil, observes every PM event (see Tracer).
	Tracer Tracer

	// FlushLatencyNs is the latency of one clwb immediately ordered by an
	// sfence, measured at 353 ns on Optane DCPMM (§3).
	FlushLatencyNs float64
	// FlushParallelFrac is the Amdahl parallel fraction of concurrent
	// flushes, fitted at 0.82 via the Karp–Flatt metric (Fig. 4).
	FlushParallelFrac float64
	// FlushMaxConcurrency caps useful flush overlap; beyond 32 concurrent
	// flushes the paper observes no further improvement.
	FlushMaxConcurrency int

	// ClwbIssueNs is the CPU cost of issuing one clwb (commits instantly,
	// Fig. 3).
	ClwbIssueNs float64
	// SfenceBaseNs is the cost of an sfence with no inflight flushes.
	SfenceBaseNs float64

	// L1HitNs is the cost of a load or store that hits in L1D.
	L1HitNs float64
	// L2HitNs and L3HitNs are the costs of hits in the outer cache
	// levels of Table 1 (1 MB L2, 33 MB shared L3).
	L2HitNs float64
	L3HitNs float64
	// PMReadNs is the cost of a full cache miss served from PM (Table 1:
	// 302 ns random 8-byte read).
	PMReadNs float64
}

// DefaultConfig returns the Table 1 / §3 machine model with the given arena
// size.
func DefaultConfig(size int64) Config {
	return Config{
		Size:                size,
		FlushLatencyNs:      353,
		FlushParallelFrac:   0.82,
		FlushMaxConcurrency: 32,
		ClwbIssueNs:         5,
		SfenceBaseNs:        10,
		L1HitNs:             1.2,
		L2HitNs:             4,
		L3HitNs:             40,
		PMReadNs:            302,
	}
}

// Stats is a snapshot of device counters. Times are simulated nanoseconds.
type Stats struct {
	TotalNs float64
	CatNs   [3]float64 // indexed by Category

	Flushes      uint64 // clwb count
	Fences       uint64 // sfence count
	Reads        uint64 // read calls
	Writes       uint64 // write calls
	BytesRead    uint64
	BytesWritten uint64

	// FlushedPerFence accumulates the number of inflight flushes retired
	// by each fence, for flush-concurrency reporting.
	FlushedPerFence uint64

	// Cache holds the L1D counters (the Fig. 11 metric); CacheLevels
	// breaks accesses down by serving level.
	Cache       cachesim.Stats
	CacheLevels cachesim.HierarchyStats
}

// Sub returns s - base, counter-wise, for interval measurements.
func (s Stats) Sub(base Stats) Stats {
	r := s
	r.TotalNs -= base.TotalNs
	for i := range r.CatNs {
		r.CatNs[i] -= base.CatNs[i]
	}
	r.Flushes -= base.Flushes
	r.Fences -= base.Fences
	r.Reads -= base.Reads
	r.Writes -= base.Writes
	r.BytesRead -= base.BytesRead
	r.BytesWritten -= base.BytesWritten
	r.FlushedPerFence -= base.FlushedPerFence
	r.Cache = s.Cache.Sub(base.Cache)
	r.CacheLevels = s.CacheLevels.Sub(base.CacheLevels)
	return r
}

// Device is a simulated persistent memory module. It is not safe for
// concurrent use; the paper's workloads are single-threaded.
type Device struct {
	cfg   Config
	mem   []byte
	dur   []byte // durable image; nil unless cfg.TrackDurable
	lines uint64

	dirty    bitset   // written since last clwb of the line
	everDirt bitset   // written and not yet durable (dirty ∪ inflight)
	inflight []uint64 // line indices clwb'd since last fence
	infSet   bitset

	cache  *cachesim.Hierarchy
	tracer Tracer

	clock float64
	cat   Category
	stats Stats
}

// New creates a device per cfg. The arena starts zeroed and durable.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: config Size must be positive")
	}
	size := (cfg.Size + LineSize - 1) &^ (LineSize - 1)
	d := &Device{
		cfg:   cfg,
		mem:   make([]byte, size),
		lines: uint64(size) >> LineShift,
	}
	d.dirty = newBitset(d.lines)
	d.everDirt = newBitset(d.lines)
	d.infSet = newBitset(d.lines)
	if cfg.TrackDurable {
		d.dur = make([]byte, size)
	}
	if !cfg.DisableCache {
		d.cache = cachesim.NewHierarchy()
	}
	d.tracer = cfg.Tracer
	return d
}

// NewFromImage creates a device whose initial (durable) contents are img,
// as after a crash and restart. The image length must not exceed cfg.Size.
func NewFromImage(cfg Config, img []byte) *Device {
	if int64(len(img)) > cfg.Size {
		cfg.Size = int64(len(img))
	}
	d := New(cfg)
	copy(d.mem, img)
	if d.dur != nil {
		copy(d.dur, img)
	}
	return d
}

// Size returns the arena size in bytes.
func (d *Device) Size() int64 { return int64(len(d.mem)) }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Tracer returns the tracer hook, or nil.
func (d *Device) Tracer() Tracer { return d.tracer }

// SetTracer replaces the tracer hook (nil disables tracing).
func (d *Device) SetTracer(t Tracer) { d.tracer = t }

// Clock returns the simulated time in nanoseconds since device creation.
func (d *Device) Clock() float64 { return d.clock }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	s := d.stats
	s.TotalNs = d.clock
	if d.cache != nil {
		s.Cache = d.cache.L1Stats()
		s.CacheLevels = d.cache.Stats()
	}
	return s
}

// Category returns the current accounting category.
func (d *Device) Category() Category { return d.cat }

// SetCategory switches the accounting category for subsequent time charges
// and returns the previous category.
func (d *Device) SetCategory(c Category) Category {
	old := d.cat
	d.cat = c
	return old
}

// charge advances the clock, attributing ns to category c.
func (d *Device) charge(c Category, ns float64) {
	d.clock += ns
	d.stats.CatNs[c] += ns
}

// ChargeCompute adds ns of CPU time to the current category. Used by
// higher layers to account for work with no PM access (e.g. building a log
// entry in registers).
func (d *Device) ChargeCompute(ns float64) { d.charge(d.cat, ns) }

func (d *Device) checkRange(addr Addr, n int) {
	if n < 0 || uint64(addr) >= uint64(len(d.mem)) || uint64(addr)+uint64(n) > uint64(len(d.mem)) {
		panic(fmt.Sprintf("pmem: access [%#x, %#x) outside arena of %d bytes", uint64(addr), uint64(addr)+uint64(n), len(d.mem)))
	}
}

// access charges the cache/latency cost of touching every line in
// [addr, addr+n) and returns nothing. write selects store vs load cost.
//
// Writes made under the Log category model PMDK's non-temporal log
// stores: they stream past the L1D (no allocation, no miss charge) at a
// fixed per-line cost, so a cycling log region does not thrash the cache.
func (d *Device) access(addr Addr, n int, write bool) {
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	streaming := write && d.cat == CatLog
	for ln := first; ln <= last; ln++ {
		if streaming || d.cache == nil {
			d.charge(d.cat, d.cfg.L1HitNs)
		} else {
			switch d.cache.Access(ln, write) {
			case cachesim.InL1:
				d.charge(d.cat, d.cfg.L1HitNs)
			case cachesim.InL2:
				d.charge(d.cat, d.cfg.L2HitNs)
			case cachesim.InL3:
				d.charge(d.cat, d.cfg.L3HitNs)
			default:
				d.charge(d.cat, d.cfg.PMReadNs)
			}
		}
		if write {
			d.dirty.set(ln)
			d.everDirt.set(ln)
		}
	}
}

// Read copies n = len(p) bytes at addr into p.
func (d *Device) Read(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(addr, len(p))
	d.access(addr, len(p), false)
	copy(p, d.mem[addr:])
	d.stats.Reads++
	d.stats.BytesRead += uint64(len(p))
}

// Write stores p at addr, marking the touched lines dirty.
func (d *Device) Write(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(addr, len(p))
	d.access(addr, len(p), true)
	copy(d.mem[addr:], p)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(len(p))
	if d.tracer != nil {
		d.tracer.Write(addr, len(p))
	}
}

// Zero writes n zero bytes at addr.
func (d *Device) Zero(addr Addr, n int) {
	if n == 0 {
		return
	}
	d.checkRange(addr, n)
	d.access(addr, n, true)
	clear(d.mem[addr : addr+Addr(n)])
	d.stats.Writes++
	d.stats.BytesWritten += uint64(n)
	if d.tracer != nil {
		d.tracer.Write(addr, n)
	}
}

// ReadU64 reads a little-endian uint64 at addr.
func (d *Device) ReadU64(addr Addr) uint64 {
	d.checkRange(addr, 8)
	d.access(addr, 8, false)
	d.stats.Reads++
	d.stats.BytesRead += 8
	return binary.LittleEndian.Uint64(d.mem[addr:])
}

// WriteU64 stores a little-endian uint64 at addr.
func (d *Device) WriteU64(addr Addr, v uint64) {
	d.checkRange(addr, 8)
	d.access(addr, 8, true)
	binary.LittleEndian.PutUint64(d.mem[addr:], v)
	d.stats.Writes++
	d.stats.BytesWritten += 8
	if d.tracer != nil {
		d.tracer.Write(addr, 8)
	}
}

// ReadAddr reads a persistent pointer stored at addr.
func (d *Device) ReadAddr(addr Addr) Addr { return Addr(d.ReadU64(addr)) }

// WriteAddr stores a persistent pointer at addr. The write is 8-byte
// aligned and therefore atomic with respect to failure, the property the
// MOD Commit step relies on (§5.2).
func (d *Device) WriteAddr(addr Addr, v Addr) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("pmem: unaligned pointer write at %#x", uint64(addr)))
	}
	d.WriteU64(addr, uint64(v))
}

// ReadU32 reads a little-endian uint32 at addr.
func (d *Device) ReadU32(addr Addr) uint32 {
	d.checkRange(addr, 4)
	d.access(addr, 4, false)
	d.stats.Reads++
	d.stats.BytesRead += 4
	return binary.LittleEndian.Uint32(d.mem[addr:])
}

// WriteU32 stores a little-endian uint32 at addr.
func (d *Device) WriteU32(addr Addr, v uint32) {
	d.checkRange(addr, 4)
	d.access(addr, 4, true)
	binary.LittleEndian.PutUint32(d.mem[addr:], v)
	d.stats.Writes++
	d.stats.BytesWritten += 4
	if d.tracer != nil {
		d.tracer.Write(addr, 4)
	}
}

// Bytes returns a read-only view of [addr, addr+n) without charging
// simulated time. It is intended for checkers, recovery scans, and tests;
// workload code must use Read.
func (d *Device) Bytes(addr Addr, n int) []byte {
	d.checkRange(addr, n)
	return d.mem[addr : addr+Addr(n) : addr+Addr(n)]
}

// Clwb initiates a writeback of the line containing addr. It commits
// instantly (Fig. 3); the writeback completes at the next Sfence. Flushing
// a clean line still costs issue time but does not join the inflight set
// twice.
func (d *Device) Clwb(addr Addr) {
	d.checkRange(addr, 1)
	ln := uint64(addr) >> LineShift
	d.charge(CatFlush, d.cfg.ClwbIssueNs)
	d.stats.Flushes++
	d.dirty.clear(ln)
	if !d.infSet.get(ln) {
		d.infSet.set(ln)
		d.inflight = append(d.inflight, ln)
	}
	if d.tracer != nil {
		d.tracer.Flush(ln)
	}
}

// FlushRange issues Clwb for every line overlapping [addr, addr+n).
func (d *Device) FlushRange(addr Addr, n int) {
	if n <= 0 {
		return
	}
	d.checkRange(addr, n)
	first := uint64(addr) &^ (LineSize - 1)
	last := (uint64(addr) + uint64(n) - 1) &^ (LineSize - 1)
	for ln := first; ln <= last; ln += LineSize {
		d.Clwb(Addr(ln))
	}
}

// FenceStallNs returns the modeled sfence stall for n inflight flushes:
// n × T1 × ((1−f) + f/min(n, cap)), the Amdahl fit of Fig. 4.
func (d *Device) FenceStallNs(n int) float64 {
	if n <= 0 {
		return d.cfg.SfenceBaseNs
	}
	eff := n
	if d.cfg.FlushMaxConcurrency > 0 && eff > d.cfg.FlushMaxConcurrency {
		eff = d.cfg.FlushMaxConcurrency
	}
	f := d.cfg.FlushParallelFrac
	perFlush := d.cfg.FlushLatencyNs * ((1 - f) + f/float64(eff))
	return perFlush * float64(n)
}

// Sfence stalls until all inflight writebacks complete, making them
// durable. This is the only operation that adds lines to the durable image.
func (d *Device) Sfence() {
	n := len(d.inflight)
	d.charge(CatFlush, d.FenceStallNs(n))
	d.stats.Fences++
	d.stats.FlushedPerFence += uint64(n)
	if d.dur != nil {
		for _, ln := range d.inflight {
			off := ln << LineShift
			copy(d.dur[off:off+LineSize], d.mem[off:off+LineSize])
		}
	}
	for _, ln := range d.inflight {
		d.infSet.clear(ln)
		if !d.dirty.get(ln) {
			d.everDirt.clear(ln)
		}
	}
	d.inflight = d.inflight[:0]
	if d.tracer != nil {
		d.tracer.Fence(n)
	}
}

// InflightLines returns the number of lines flushed but not yet fenced.
func (d *Device) InflightLines() int { return len(d.inflight) }

// DirtyLines returns the number of lines written but not yet flushed.
func (d *Device) DirtyLines() int { return d.dirty.count() }

// LineDirty reports whether the line containing addr has been written
// since it was last flushed.
func (d *Device) LineDirty(addr Addr) bool {
	d.checkRange(addr, 1)
	return d.dirty.get(uint64(addr) >> LineShift)
}

// bitset is a fixed-size bit vector over line indices.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(bits uint64) bitset {
	return bitset{words: make([]uint64, (bits+63)/64)}
}

func (b *bitset) set(i uint64) {
	w := &b.words[i>>6]
	m := uint64(1) << (i & 63)
	if *w&m == 0 {
		*w |= m
		b.n++
	}
}

func (b *bitset) clear(i uint64) {
	w := &b.words[i>>6]
	m := uint64(1) << (i & 63)
	if *w&m != 0 {
		*w &^= m
		b.n--
	}
}

func (b *bitset) get(i uint64) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

func (b *bitset) count() int { return b.n }
