// Package pmem simulates a byte-addressable persistent memory device with
// the cacheline flush and ordering semantics of Intel Optane DCPMM as
// described in §3 of the MOD paper (Haria et al., ASPLOS 2020).
//
// The device models three line states. A store marks a line dirty in the
// (volatile) cache. Clwb moves a line from dirty to inflight: the writeback
// is launched but the CPU does not wait. Sfence stalls until every inflight
// writeback completes, at which point those lines are durable. On a crash,
// only durable lines survive (plus, under adversarial policies, an arbitrary
// subset of inflight or dirty lines, modeling cache evictions).
//
// Time is simulated: every access advances a nanosecond clock using the
// latency constants in Config. The flush-latency model is the paper's own
// Amdahl/Karp–Flatt fit (Fig. 4): overlapped flushes behave 82% parallel and
// 18% serial relative to a 353 ns un-overlapped flush.
//
// All datastructure state lives in the device arena and is referenced by
// Addr offsets, the simulator's stand-in for pointers into mapped PM.
//
// # Concurrency
//
// A Device value is a handle onto shared device state. Memory, line
// states, and the cache hierarchy are guarded by an internal mutex, so
// any number of goroutines may access the arena through their own
// handles. Time, however, is per handle: each handle owns a LocalClock
// (see clock.go), created by Fork, so a goroutine's simulated time is its
// own critical path while Clock() reports the atomic aggregate of busy
// nanoseconds across all handles. The accounting Category is also
// per-handle state. Handles are cheap; create one per goroutine with
// Fork rather than sharing one (sharing is race-free but merges the
// goroutines' timelines).
package pmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/cachesim"
)

// Addr is a byte offset into the persistent arena. Addr 0 is the null
// address and is never returned by the allocator.
type Addr uint64

// Nil is the null persistent address.
const Nil Addr = 0

// Cacheline geometry, matching x86-64.
const (
	LineSize  = 64
	LineShift = 6
)

// Category labels simulated time for the execution-time breakdowns of
// Figs. 2 and 9.
type Category uint8

const (
	// CatOther is ordinary execution: reads, stores, compute.
	CatOther Category = iota
	// CatFlush is time spent issuing flushes and stalled at fences.
	// Following the paper, flushes of log entries also land here.
	CatFlush
	// CatLog is CPU time spent constructing and bookkeeping log entries
	// in PM-STM implementations.
	CatLog

	numCategories
)

// String returns the category name used in reports.
func (c Category) String() string {
	switch c {
	case CatOther:
		return "other"
	case CatFlush:
		return "flush"
	case CatLog:
		return "log"
	}
	return fmt.Sprintf("category(%d)", uint8(c))
}

// Config holds the device geometry and timing model. The zero value is not
// usable; call DefaultConfig and adjust.
type Config struct {
	// Size is the arena size in bytes, rounded up to a full line.
	Size int64

	// TrackDurable maintains a second image holding only fenced state so
	// that CrashImage can produce post-crash views. Doubles memory.
	TrackDurable bool

	// DisableCache turns off the L1D model (accesses then cost L1HitNs).
	DisableCache bool

	// Tracer, if non-nil, observes every PM event (see Tracer).
	Tracer Tracer

	// FlushLatencyNs is the latency of one clwb immediately ordered by an
	// sfence, measured at 353 ns on Optane DCPMM (§3).
	FlushLatencyNs float64
	// FlushParallelFrac is the Amdahl parallel fraction of concurrent
	// flushes, fitted at 0.82 via the Karp–Flatt metric (Fig. 4).
	FlushParallelFrac float64
	// FlushMaxConcurrency caps useful flush overlap; beyond 32 concurrent
	// flushes the paper observes no further improvement.
	FlushMaxConcurrency int

	// ClwbIssueNs is the CPU cost of issuing one clwb (commits instantly,
	// Fig. 3).
	ClwbIssueNs float64
	// SfenceBaseNs is the cost of an sfence with no inflight flushes.
	SfenceBaseNs float64

	// L1HitNs is the cost of a load or store that hits in L1D.
	L1HitNs float64
	// L2HitNs and L3HitNs are the costs of hits in the outer cache
	// levels of Table 1 (1 MB L2, 33 MB shared L3).
	L2HitNs float64
	L3HitNs float64
	// PMReadNs is the cost of a full cache miss served from PM (Table 1:
	// 302 ns random 8-byte read).
	PMReadNs float64
	// DRAMReadNs is the cost of serving a node line from the volatile
	// DRAM node cache (alloc.Heap's selective-persistence read path)
	// instead of the PM media — DRAM random-access latency, well under
	// PMReadNs but above an on-chip cache hit.
	DRAMReadNs float64
}

// DefaultConfig returns the Table 1 / §3 machine model with the given arena
// size.
func DefaultConfig(size int64) Config {
	return Config{
		Size:                size,
		FlushLatencyNs:      353,
		FlushParallelFrac:   0.82,
		FlushMaxConcurrency: 32,
		ClwbIssueNs:         5,
		SfenceBaseNs:        10,
		L1HitNs:             1.2,
		L2HitNs:             4,
		L3HitNs:             40,
		PMReadNs:            302,
		DRAMReadNs:          80,
	}
}

// Stats is a snapshot of device counters. Times are simulated nanoseconds;
// under concurrency TotalNs is aggregate busy time across all handles, not
// elapsed time (see LocalNs for a handle's own timeline).
type Stats struct {
	TotalNs float64
	CatNs   [3]float64 // indexed by Category

	Flushes      uint64 // clwb count
	Fences       uint64 // sfence count
	Reads        uint64 // read calls
	Writes       uint64 // write calls
	BytesRead    uint64
	BytesWritten uint64

	// FlushedPerFence accumulates the number of inflight flushes retired
	// by each fence, for flush-concurrency reporting.
	FlushedPerFence uint64

	// FlushesSaved counts clwbs avoided by deferred-flush deduplication
	// (FlushSet): lines recorded more than once per sweep — re-written
	// edit-owned nodes, shared header/payload lines — are flushed once.
	FlushesSaved uint64
	// CopiesElided counts shadow node copies avoided by edit-context
	// in-place mutation (alloc.Edit): nodes allocated within the current
	// FASE are mutated instead of re-copied on subsequent operations.
	CopiesElided uint64

	// Batches counts group commits executed against the device and
	// BatchedOps the operations they coalesced, so reports can derive
	// fences per batched operation (DESIGN.md §7). The commit layer
	// records them via NoteBatch.
	Batches    uint64
	BatchedOps uint64

	// DRAMReads counts node lines served from the volatile DRAM node
	// cache instead of the PM media (selective persistence, DESIGN.md
	// §10). The allocator records them via ReadDRAM.
	DRAMReads uint64

	// RebuiltNodes counts navigation nodes reconstructed from recovery
	// records during open, and RecoveryNs the simulated time the whole
	// post-crash recovery pass took (reachability scan plus selective
	// rebuild). The recovery layer records them via NoteRecovery.
	RebuiltNodes uint64
	RecoveryNs   float64

	// Cache holds the L1D counters (the Fig. 11 metric); CacheLevels
	// breaks accesses down by serving level.
	Cache       cachesim.Stats
	CacheLevels cachesim.HierarchyStats
}

// Add returns s + o, counter-wise, for aggregating the per-region
// devices of a region-split (sharded) store into one view. Summing every
// region exactly once is the invariant the shard-stats property test
// pins: a flush or fence executed on one shard device must appear in the
// aggregate exactly once.
func (s Stats) Add(o Stats) Stats {
	r := s
	r.TotalNs += o.TotalNs
	for i := range r.CatNs {
		r.CatNs[i] += o.CatNs[i]
	}
	r.Flushes += o.Flushes
	r.Fences += o.Fences
	r.Reads += o.Reads
	r.Writes += o.Writes
	r.BytesRead += o.BytesRead
	r.BytesWritten += o.BytesWritten
	r.FlushedPerFence += o.FlushedPerFence
	r.FlushesSaved += o.FlushesSaved
	r.CopiesElided += o.CopiesElided
	r.Batches += o.Batches
	r.BatchedOps += o.BatchedOps
	r.DRAMReads += o.DRAMReads
	r.RebuiltNodes += o.RebuiltNodes
	r.RecoveryNs += o.RecoveryNs
	r.Cache = s.Cache.Add(o.Cache)
	r.CacheLevels = s.CacheLevels.Add(o.CacheLevels)
	return r
}

// Sub returns s - base, counter-wise, for interval measurements.
func (s Stats) Sub(base Stats) Stats {
	r := s
	r.TotalNs -= base.TotalNs
	for i := range r.CatNs {
		r.CatNs[i] -= base.CatNs[i]
	}
	r.Flushes -= base.Flushes
	r.Fences -= base.Fences
	r.Reads -= base.Reads
	r.Writes -= base.Writes
	r.BytesRead -= base.BytesRead
	r.BytesWritten -= base.BytesWritten
	r.FlushedPerFence -= base.FlushedPerFence
	r.FlushesSaved -= base.FlushesSaved
	r.CopiesElided -= base.CopiesElided
	r.Batches -= base.Batches
	r.BatchedOps -= base.BatchedOps
	r.DRAMReads -= base.DRAMReads
	r.RebuiltNodes -= base.RebuiltNodes
	r.RecoveryNs -= base.RecoveryNs
	r.Cache = s.Cache.Sub(base.Cache)
	r.CacheLevels = s.CacheLevels.Sub(base.CacheLevels)
	return r
}

// tracerBox wraps a Tracer for atomic.Value storage (interface values of
// differing dynamic types cannot be stored in one atomic.Value directly).
type tracerBox struct{ t Tracer }

// devState is the shared device: arena contents, line states, cache model,
// counters. One mutex guards it all; simulated PM accesses are short, so a
// single lock keeps the memory image and line-state transitions atomic
// without a fine-grained protocol the paper never depends on.
type devState struct {
	cfg   Config
	lines uint64

	mu  sync.Mutex
	mem []byte
	dur []byte // durable image; nil unless cfg.TrackDurable

	dirty    bitset   // written since last clwb of the line
	everDirt bitset   // written and not yet durable (dirty ∪ inflight)
	inflight []uint64 // line indices clwb'd since last fence
	infSet   bitset

	cache *cachesim.Hierarchy

	dead      bitset // unreadable lines (media faults, fault.go); nil when none
	deadLines int

	tracer atomic.Value // tracerBox
	stats  Stats        // counter fields only; times live in agg
	fences atomic.Uint64
	scans  atomic.Int32 // open BeginRecovery brackets gating raw Bytes views
	agg    aggClock
}

// Device is a handle onto a simulated persistent memory module. See the
// package comment for the concurrency model: share the module by giving
// each goroutine its own handle via Fork.
type Device struct {
	s   *devState
	clk *LocalClock
	cat Category // per-handle accounting category
}

// New creates a device per cfg. The arena starts zeroed and durable.
func New(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: config Size must be positive")
	}
	size := (cfg.Size + LineSize - 1) &^ (LineSize - 1)
	s := &devState{
		cfg:   cfg,
		mem:   make([]byte, size),
		lines: uint64(size) >> LineShift,
	}
	s.dirty = newBitset(s.lines)
	s.everDirt = newBitset(s.lines)
	s.infSet = newBitset(s.lines)
	if cfg.TrackDurable {
		s.dur = make([]byte, size)
	}
	if !cfg.DisableCache {
		s.cache = cachesim.NewHierarchy()
	}
	s.tracer.Store(tracerBox{cfg.Tracer})
	return &Device{s: s, clk: newLocalClock(&s.agg)}
}

// NewFromImage creates a device whose initial (durable) contents are img,
// as after a crash and restart. The image length must not exceed cfg.Size.
func NewFromImage(cfg Config, img []byte) *Device {
	if int64(len(img)) > cfg.Size {
		cfg.Size = int64(len(img))
	}
	d := New(cfg)
	copy(d.s.mem, img)
	if d.s.dur != nil {
		copy(d.s.dur, img)
	}
	return d
}

// Fork returns a new handle onto the same device with a fresh LocalClock
// (starting at zero) and the same accounting category. Each concurrent
// goroutine should work through its own forked handle so its simulated
// time is tracked independently.
func (d *Device) Fork() Backend {
	return &Device{s: d.s, clk: newLocalClock(&d.s.agg), cat: d.cat}
}

// Size returns the arena size in bytes.
func (d *Device) Size() int64 { return int64(len(d.s.mem)) }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.s.cfg }

// Tracer returns the tracer hook, or nil.
func (d *Device) Tracer() Tracer { return d.s.tracer.Load().(tracerBox).t }

// SetTracer replaces the tracer hook (nil disables tracing).
func (d *Device) SetTracer(t Tracer) { d.s.tracer.Store(tracerBox{t}) }

// Clock returns the aggregate simulated busy time in nanoseconds across
// all handles since device creation. With a single handle this is the
// familiar single-threaded simulated clock.
func (d *Device) Clock() float64 { return d.s.agg.total.load() }

// LocalNs returns the simulated time accumulated on this handle's own
// clock — the critical path of the goroutine using it.
func (d *Device) LocalNs() float64 { return d.clk.Now() }

// LocalClock returns this handle's clock for fine-grained inspection.
func (d *Device) LocalClock() Clock { return d.clk }

// FenceSeq returns the number of sfences executed on the device, a
// monotonic sequence the allocator uses to order reclamation after the
// fence that made an orphaning commit durable.
func (d *Device) FenceSeq() uint64 { return d.s.fences.Load() }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	d.s.mu.Lock()
	s := d.s.stats
	if d.s.cache != nil {
		s.Cache = d.s.cache.L1Stats()
		s.CacheLevels = d.s.cache.Stats()
	}
	d.s.mu.Unlock()
	s.TotalNs = d.s.agg.total.load()
	for c := Category(0); c < numCategories; c++ {
		s.CatNs[c] = d.s.agg.cat[c].load()
	}
	return s
}

// Category returns the current accounting category of this handle.
func (d *Device) Category() Category { return d.cat }

// SetCategory switches this handle's accounting category for subsequent
// time charges and returns the previous category.
func (d *Device) SetCategory(c Category) Category {
	old := d.cat
	d.cat = c
	return old
}

// ChargeCompute adds ns of CPU time to the current category. Used by
// higher layers to account for work with no PM access (e.g. building a log
// entry in registers).
func (d *Device) ChargeCompute(ns float64) { d.clk.Charge(d.cat, ns) }

// NoteBatch records a group commit that coalesced ops operations into
// one fence epoch, feeding the Batches/BatchedOps counters that reports
// use to derive fences per batched operation.
func (d *Device) NoteBatch(ops int) {
	if ops <= 0 {
		return
	}
	d.s.mu.Lock()
	d.s.stats.Batches++
	d.s.stats.BatchedOps += uint64(ops)
	d.s.mu.Unlock()
}

// ReadDRAM times a node read of [addr, addr+n) served from the volatile
// DRAM node cache (alloc.Heap's selective-persistence read path) instead
// of the PM media. The lines walk the same on-chip hierarchy — a hot
// cached node still hits L1 — but a full miss is a DRAM access
// (DRAMReadNs) rather than a PM one (PMReadNs). No bytes move: the
// caller already holds the cached snapshot; this charges its latency and
// counts the lines.
func (d *Device) ReadDRAM(addr Addr, n int) {
	if n <= 0 {
		return
	}
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, n)
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	var ns float64
	for ln := first; ln <= last; ln++ {
		if s.cache == nil {
			ns += s.cfg.L1HitNs
		} else {
			switch s.cache.Access(ln, false) {
			case cachesim.InL1:
				ns += s.cfg.L1HitNs
			case cachesim.InL2:
				ns += s.cfg.L2HitNs
			case cachesim.InL3:
				ns += s.cfg.L3HitNs
			default:
				ns += s.cfg.DRAMReadNs
			}
		}
	}
	s.stats.DRAMReads += last - first + 1
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
}

// NoteRecovery records a completed post-crash recovery pass: rebuilt
// navigation nodes reconstructed from recovery records, and the simulated
// nanoseconds the pass took on the recovering handle's clock.
func (d *Device) NoteRecovery(rebuilt uint64, ns float64) {
	d.s.mu.Lock()
	d.s.stats.RebuiltNodes += rebuilt
	d.s.stats.RecoveryNs += ns
	d.s.mu.Unlock()
}

func (s *devState) checkRange(addr Addr, n int) {
	if n < 0 || uint64(addr) >= uint64(len(s.mem)) || uint64(addr)+uint64(n) > uint64(len(s.mem)) {
		panic(fmt.Sprintf("pmem: access [%#x, %#x) outside arena of %d bytes", uint64(addr), uint64(addr)+uint64(n), len(s.mem)))
	}
}

// accessLocked computes the cache/latency cost of touching every line in
// [addr, addr+n) and updates line states. The caller holds s.mu; the
// returned nanoseconds are charged to the handle's clock after unlocking.
//
// Writes made under the Log category model PMDK's non-temporal log
// stores: they stream past the L1D (no allocation, no miss charge) at a
// fixed per-line cost, so a cycling log region does not thrash the cache.
func (d *Device) accessLocked(addr Addr, n int, write bool) float64 {
	s := d.s
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	streaming := write && d.cat == CatLog
	var ns float64
	for ln := first; ln <= last; ln++ {
		if streaming || s.cache == nil {
			ns += s.cfg.L1HitNs
		} else {
			switch s.cache.Access(ln, write) {
			case cachesim.InL1:
				ns += s.cfg.L1HitNs
			case cachesim.InL2:
				ns += s.cfg.L2HitNs
			case cachesim.InL3:
				ns += s.cfg.L3HitNs
			default:
				ns += s.cfg.PMReadNs
			}
		}
		if write {
			s.dirty.set(ln)
			s.everDirt.set(ln)
		}
	}
	return ns
}

// Read copies n = len(p) bytes at addr into p.
func (d *Device) Read(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, len(p))
	s.checkDeadLocked(addr, len(p))
	ns := d.accessLocked(addr, len(p), false)
	copy(p, s.mem[addr:])
	s.stats.Reads++
	s.stats.BytesRead += uint64(len(p))
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
}

// Write stores p at addr, marking the touched lines dirty.
func (d *Device) Write(addr Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, len(p))
	ns := d.accessLocked(addr, len(p), true)
	copy(s.mem[addr:], p)
	s.stats.Writes++
	s.stats.BytesWritten += uint64(len(p))
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	if t := d.Tracer(); t != nil {
		t.Write(addr, len(p))
	}
}

// Zero writes n zero bytes at addr.
func (d *Device) Zero(addr Addr, n int) {
	if n == 0 {
		return
	}
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, n)
	ns := d.accessLocked(addr, n, true)
	clear(s.mem[addr : addr+Addr(n)])
	s.stats.Writes++
	s.stats.BytesWritten += uint64(n)
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	if t := d.Tracer(); t != nil {
		t.Write(addr, n)
	}
}

// ReadU64 reads a little-endian uint64 at addr.
func (d *Device) ReadU64(addr Addr) uint64 {
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 8)
	s.checkDeadLocked(addr, 8)
	ns := d.accessLocked(addr, 8, false)
	v := binary.LittleEndian.Uint64(s.mem[addr:])
	s.stats.Reads++
	s.stats.BytesRead += 8
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	return v
}

// WriteU64 stores a little-endian uint64 at addr.
func (d *Device) WriteU64(addr Addr, v uint64) {
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 8)
	ns := d.accessLocked(addr, 8, true)
	binary.LittleEndian.PutUint64(s.mem[addr:], v)
	s.stats.Writes++
	s.stats.BytesWritten += 8
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 8)
	}
}

// ReadAddr reads a persistent pointer stored at addr.
func (d *Device) ReadAddr(addr Addr) Addr { return Addr(d.ReadU64(addr)) }

// WriteAddr stores a persistent pointer at addr. The write is 8-byte
// aligned and therefore atomic with respect to failure, the property the
// MOD Commit step relies on (§5.2). Under the device mutex it is also
// atomic with respect to concurrent readers, which is what makes the
// commit step's version publication an atomic pointer swap.
func (d *Device) WriteAddr(addr Addr, v Addr) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("pmem: unaligned pointer write at %#x", uint64(addr)))
	}
	d.WriteU64(addr, uint64(v))
}

// CasAddr atomically compares the pointer at addr against old and, if it
// matches, stores v. Like WriteAddr the cell must be 8-byte aligned, so
// the store is failure-atomic; under the device mutex the compare and the
// store are one indivisible step with respect to concurrent readers and
// writers — the primitive the optimistic commit path publishes through.
// A failed CAS costs (and counts) a read; a successful one costs a read
// plus a write.
func (d *Device) CasAddr(addr, old, v Addr) bool {
	if addr&7 != 0 {
		panic(fmt.Sprintf("pmem: unaligned pointer CAS at %#x", uint64(addr)))
	}
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 8)
	s.checkDeadLocked(addr, 8)
	ns := d.accessLocked(addr, 8, false)
	cur := Addr(binary.LittleEndian.Uint64(s.mem[addr:]))
	s.stats.Reads++
	s.stats.BytesRead += 8
	if cur != old {
		s.mu.Unlock()
		d.clk.Charge(d.cat, ns)
		return false
	}
	ns += d.accessLocked(addr, 8, true)
	binary.LittleEndian.PutUint64(s.mem[addr:], uint64(v))
	s.stats.Writes++
	s.stats.BytesWritten += 8
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 8)
	}
	return true
}

// ReadU32 reads a little-endian uint32 at addr.
func (d *Device) ReadU32(addr Addr) uint32 {
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 4)
	s.checkDeadLocked(addr, 4)
	ns := d.accessLocked(addr, 4, false)
	v := binary.LittleEndian.Uint32(s.mem[addr:])
	s.stats.Reads++
	s.stats.BytesRead += 4
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	return v
}

// WriteU32 stores a little-endian uint32 at addr.
func (d *Device) WriteU32(addr Addr, v uint32) {
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 4)
	ns := d.accessLocked(addr, 4, true)
	binary.LittleEndian.PutUint32(s.mem[addr:], v)
	s.stats.Writes++
	s.stats.BytesWritten += 4
	s.mu.Unlock()
	d.clk.Charge(d.cat, ns)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 4)
	}
}

// BeginRecovery opens a recovery/verification bracket on the device and
// returns the function that closes it. Raw Bytes views — which read
// around the dead-line (media fault) machinery and charge no simulated
// time — are only legal inside an open bracket; everywhere else they
// would let steady-state code dodge MediaError and checksum
// verification. Brackets nest and may be held concurrently; the counter
// is device-wide.
func (d *Device) BeginRecovery() func() {
	d.s.scans.Add(1)
	return func() { d.s.scans.Add(-1) }
}

// Bytes returns a read-only view of [addr, addr+n) without charging
// simulated time. It is exempt from dead-line poisoning (it models scrub
// machinery reading around the ECC), so it is only legal inside a
// BeginRecovery bracket — recovery scans, verification, checkers — and
// panics outside one. Workload code must use Read. The view aliases live
// memory and is not synchronized against concurrent writers.
func (d *Device) Bytes(addr Addr, n int) []byte {
	if d.s.scans.Load() == 0 {
		panic(fmt.Sprintf("pmem: Bytes(%#x, %d) outside a BeginRecovery bracket; steady-state reads must use Read/ReadU64 (checked against media faults)", uint64(addr), n))
	}
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	d.s.checkRange(addr, n)
	return d.s.mem[addr : addr+Addr(n) : addr+Addr(n)]
}

// Snapshot returns a fresh copy of the entire arena's current contents —
// every write, durable or not — taken under the device mutex. It is the
// whole-image checkpoint corruption tests and checkers capture before
// injecting damage; unlike Bytes it copies, so it needs no recovery
// bracket and cannot alias later writes.
func (d *Device) Snapshot() []byte {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return append([]byte(nil), d.s.mem...)
}

// Clwb initiates a writeback of the line containing addr. It commits
// instantly (Fig. 3); the writeback completes at the next Sfence. Flushing
// a clean line still costs issue time but does not join the inflight set
// twice.
func (d *Device) Clwb(addr Addr) {
	s := d.s
	s.mu.Lock()
	s.checkRange(addr, 1)
	ln := uint64(addr) >> LineShift
	s.stats.Flushes++
	s.dirty.clear(ln)
	if !s.infSet.get(ln) {
		s.infSet.set(ln)
		s.inflight = append(s.inflight, ln)
	}
	s.mu.Unlock()
	d.clk.Charge(CatFlush, s.cfg.ClwbIssueNs)
	if t := d.Tracer(); t != nil {
		t.Flush(ln)
	}
}

// FlushRange issues Clwb for every line overlapping [addr, addr+n).
func (d *Device) FlushRange(addr Addr, n int) {
	if n <= 0 {
		return
	}
	d.s.mu.Lock()
	d.s.checkRange(addr, n)
	d.s.mu.Unlock()
	first := uint64(addr) &^ (LineSize - 1)
	last := (uint64(addr) + uint64(n) - 1) &^ (LineSize - 1)
	for ln := first; ln <= last; ln += LineSize {
		d.Clwb(Addr(ln))
	}
}

// FenceStallNs returns the modeled sfence stall for n inflight flushes:
// n × T1 × ((1−f) + f/min(n, cap)), the Amdahl fit of Fig. 4.
func (d *Device) FenceStallNs(n int) float64 {
	if n <= 0 {
		return d.s.cfg.SfenceBaseNs
	}
	eff := n
	if d.s.cfg.FlushMaxConcurrency > 0 && eff > d.s.cfg.FlushMaxConcurrency {
		eff = d.s.cfg.FlushMaxConcurrency
	}
	f := d.s.cfg.FlushParallelFrac
	perFlush := d.s.cfg.FlushLatencyNs * ((1 - f) + f/float64(eff))
	return perFlush * float64(n)
}

// Sfence stalls until all inflight writebacks complete, making them
// durable. This is the only operation that adds lines to the durable
// image. The inflight set is device-wide: a fence issued through any
// handle retires every outstanding writeback, which is conservative for
// the fencing goroutine (it may pay for others' flushes) and sound for
// crash consistency (writebacks only become durable earlier, never
// later, than a per-core model would allow).
func (d *Device) Sfence() {
	s := d.s
	s.mu.Lock()
	n := len(s.inflight)
	s.stats.Fences++
	s.stats.FlushedPerFence += uint64(n)
	if s.dur != nil {
		for _, ln := range s.inflight {
			off := ln << LineShift
			copy(s.dur[off:off+LineSize], s.mem[off:off+LineSize])
		}
	}
	for _, ln := range s.inflight {
		s.infSet.clear(ln)
		if !s.dirty.get(ln) {
			s.everDirt.clear(ln)
		}
	}
	s.inflight = s.inflight[:0]
	// The sequence must advance inside the critical section: a commit on
	// another handle that runs after this fence's durable copy must read
	// a FenceSeq that includes it, or the allocator could tag a retired
	// block as already fence-covered and free it one fence early.
	s.fences.Add(1)
	s.mu.Unlock()
	d.clk.Charge(CatFlush, d.FenceStallNs(n))
	if t := d.Tracer(); t != nil {
		t.Fence(n)
	}
}

// InflightLines returns the number of lines flushed but not yet fenced.
func (d *Device) InflightLines() int {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return len(d.s.inflight)
}

// DirtyLines returns the number of lines written but not yet flushed.
func (d *Device) DirtyLines() int {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return d.s.dirty.count()
}

// LineDirty reports whether the line containing addr has been written
// since it was last flushed.
func (d *Device) LineDirty(addr Addr) bool {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	d.s.checkRange(addr, 1)
	return d.s.dirty.get(uint64(addr) >> LineShift)
}

// bitset is a fixed-size bit vector over line indices.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(bits uint64) bitset {
	return bitset{words: make([]uint64, (bits+63)/64)}
}

func (b *bitset) set(i uint64) {
	w := &b.words[i>>6]
	m := uint64(1) << (i & 63)
	if *w&m == 0 {
		*w |= m
		b.n++
	}
}

func (b *bitset) clear(i uint64) {
	w := &b.words[i>>6]
	m := uint64(1) << (i & 63)
	if *w&m != 0 {
		*w &^= m
		b.n--
	}
}

func (b *bitset) get(i uint64) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

func (b *bitset) count() int { return b.n }
