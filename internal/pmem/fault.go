package pmem

import "fmt"

// Media faults. The crash machinery in crash.go models power loss: every
// recovered image is an intact prefix of fenced writes. Real PM devices
// additionally deliver media faults — a bit flips in a line that was
// durable, an 8-byte store tears inside a line whose neighbors persisted,
// or a line's ECC gives up and reads of it fail. A FaultPlan describes a
// set of such faults; ApplyToImage damages a crash image before reopen,
// and Apply installs the unreadable-line state on the reopened device.
// The two compose with CrashImage/CrashCountdown: capture the power-loss
// image first, then corrupt it.

// MediaError is the panic value raised by a device read that touches a
// line marked unreadable (an uncorrectable media fault, the simulated
// equivalent of a machine-check on a poisoned line). Recovery and
// verification paths catch it and surface the damage as a corruption
// error instead of serving garbage.
type MediaError struct {
	Addr Addr // first unreadable line touched (line-aligned)
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("pmem: media error reading line %#x", uint64(e.Addr))
}

// FaultKind classifies one injected media fault.
type FaultKind uint8

const (
	// FaultBitFlip flips one bit of the image: silent corruption that
	// only an end-to-end checksum can catch.
	FaultBitFlip FaultKind = 1 + iota
	// FaultTornStore reverts one 8-byte word to its pre-crash durable
	// value (or zero without a reference image) while the rest of its
	// line persists — a store torn below the 8-byte atomicity grain the
	// commit protocol assumes.
	FaultTornStore
	// FaultDeadLine marks a whole line unreadable: reads panic with a
	// MediaError, and the line's image contents are scrambled so that
	// paths reading around the poisoning (raw Bytes views) still fail
	// checksum verification rather than seeing stale plausible data.
	FaultDeadLine
)

func (k FaultKind) String() string {
	switch k {
	case FaultBitFlip:
		return "bit-flip"
	case FaultTornStore:
		return "torn-store"
	case FaultDeadLine:
		return "dead-line"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault is one injected media fault.
type Fault struct {
	Kind FaultKind
	Addr Addr  // bit-flip: byte address; torn store: 8-byte-aligned word; dead line: any address in the line
	Bit  uint8 // bit index within the byte, bit flips only
}

// FaultPlan is an ordered set of media faults to inject into a recovered
// image. The zero value is an empty plan.
type FaultPlan struct {
	faults []Fault
}

// FlipBit schedules a single-bit flip of the byte at addr.
func (p *FaultPlan) FlipBit(addr Addr, bit uint8) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultBitFlip, Addr: addr, Bit: bit & 7})
	return p
}

// TearStore schedules an 8-byte torn store at addr (rounded down to
// 8-byte alignment): the word reverts to the reference image's value
// while the rest of its line keeps the crashed contents.
func (p *FaultPlan) TearStore(addr Addr) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultTornStore, Addr: addr &^ 7})
	return p
}

// KillLine schedules an unreadable line covering addr.
func (p *FaultPlan) KillLine(addr Addr) *FaultPlan {
	p.faults = append(p.faults, Fault{Kind: FaultDeadLine, Addr: addr &^ (LineSize - 1)})
	return p
}

// Len returns the number of scheduled faults.
func (p *FaultPlan) Len() int { return len(p.faults) }

// Faults returns the scheduled faults in injection order.
func (p *FaultPlan) Faults() []Fault { return p.faults }

// DeadLines returns the line-aligned addresses of every scheduled
// dead-line fault.
func (p *FaultPlan) DeadLines() []Addr {
	var out []Addr
	for _, f := range p.faults {
		if f.Kind == FaultDeadLine {
			out = append(out, f.Addr)
		}
	}
	return out
}

// ApplyToImage mutates img in place per the plan. base, when non-nil, is
// the reference image a torn store reverts to (typically the durable
// image from before the measured history, or the pristine formatted
// image); torn words beyond base, or with base nil, revert to zero.
// Faults aimed beyond img are ignored — a plan built against a larger
// arena stays usable on a truncated image.
func (p *FaultPlan) ApplyToImage(img, base []byte) {
	for _, f := range p.faults {
		switch f.Kind {
		case FaultBitFlip:
			if int(f.Addr) < len(img) {
				img[f.Addr] ^= 1 << f.Bit
			}
		case FaultTornStore:
			if int(f.Addr)+8 > len(img) {
				continue
			}
			for i := 0; i < 8; i++ {
				b := byte(0)
				if int(f.Addr)+i < len(base) {
					b = base[int(f.Addr)+i]
				}
				img[int(f.Addr)+i] = b
			}
		case FaultDeadLine:
			end := int(f.Addr) + LineSize
			if end > len(img) {
				end = len(img)
			}
			// Scramble, don't zero: zeroed lines parse as never-written
			// heap tail and would be silently truncated instead of
			// detected. The XOR pattern guarantees a checksum mismatch
			// while keeping the damage deterministic.
			for i := int(f.Addr); i < end; i++ {
				img[i] ^= 0xA5
			}
		}
	}
}

// Apply installs the plan's persistent-media state on a device reopened
// from a damaged image: every dead line is marked unreadable. Image
// damage itself must already have been applied (ApplyToImage before
// NewFromImage).
func (p *FaultPlan) Apply(d *Device) {
	for _, f := range p.faults {
		if f.Kind == FaultDeadLine {
			d.MarkLineDead(f.Addr)
		}
	}
}

// MarkLineDead marks the line containing addr unreadable: subsequent
// Read/ReadU64/ReadU32/CasAddr calls touching it panic with a
// *MediaError. Raw Bytes views are exempt (they model reading around the
// ECC machinery; checksum verification catches the scrambled contents)
// and writes still land — overwriting a poisoned line is how real
// devices clear poison, but the simulation keeps the line dead until
// ClearDeadLines so tests can exercise persistent faults.
func (d *Device) MarkLineDead(addr Addr) {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checkRange(addr, 1)
	if s.dead.words == nil {
		s.dead = newBitset(s.lines)
	}
	s.dead.set(uint64(addr) >> LineShift)
	s.deadLines++
}

// LineDead reports whether the line containing addr is marked unreadable.
func (d *Device) LineDead(addr Addr) bool {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead.words != nil && s.dead.get(uint64(addr)>>LineShift)
}

// RangeDead returns the address of the first unreadable line overlapping
// [addr, addr+n), or (Nil, false) when the range is fully readable.
func (d *Device) RangeDead(addr Addr, n int) (Addr, bool) {
	if n <= 0 {
		return Nil, false
	}
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead.words == nil {
		return Nil, false
	}
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	for ln := first; ln <= last; ln++ {
		if s.dead.get(ln) {
			return Addr(ln << LineShift), true
		}
	}
	return Nil, false
}

// DeadLineCount returns the number of lines marked unreadable.
func (d *Device) DeadLineCount() int {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadLines
}

// ClearDeadLines clears all unreadable-line state, as after a scrub
// rewrites the poisoned lines.
func (d *Device) ClearDeadLines() {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dead = bitset{}
	s.deadLines = 0
}

// checkDeadLocked panics with a *MediaError if any line in [addr,
// addr+n) is marked unreadable. Caller holds s.mu; the lock is released
// before panicking so recovering callers do not deadlock the device.
func (s *devState) checkDeadLocked(addr Addr, n int) {
	if s.dead.words == nil || n <= 0 {
		return
	}
	first := uint64(addr) >> LineShift
	last := (uint64(addr) + uint64(n) - 1) >> LineShift
	for ln := first; ln <= last; ln++ {
		if s.dead.get(ln) {
			s.mu.Unlock()
			panic(&MediaError{Addr: Addr(ln << LineShift)})
		}
	}
}
