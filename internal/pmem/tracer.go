package pmem

// Tracer observes persistent-memory events for the automated testing
// framework of §5.4. The device reports writes, flushes, and fences;
// the allocator reports allocations and frees; the MOD core reports FASE
// and commit boundaries. A nil Tracer disables tracing.
//
// Tracer methods must not call back into the Device. One exception is
// sanctioned: the Write hook is invoked after the device has released
// its internal mutex, so a Write implementation may take crash images
// (CrashCountdown in crash.go relies on this).
type Tracer interface {
	// Alloc records that a block [addr, addr+size) was allocated with
	// the given node type tag.
	Alloc(addr Addr, size uint64, tag uint8)
	// Free records that the block at addr was released to the allocator.
	Free(addr Addr, size uint64)
	// Write records a PM store of size bytes at addr.
	Write(addr Addr, size int)
	// Flush records a clwb of the given line index.
	Flush(line uint64)
	// Fence records an sfence that retired n inflight flushes.
	Fence(n int)
	// FASEBegin and FASEEnd bracket a failure-atomic section.
	FASEBegin()
	FASEEnd()
	// CommitBegin and CommitEnd bracket the commit step of a FASE, the
	// only region in which writes to existing PM data are permitted.
	CommitBegin()
	CommitEnd()
}
