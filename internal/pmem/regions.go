package pmem

// Region-split devices. A sharded store partitions its persistent arena
// into independent regions — one backend per shard plus, typically, a
// small metadata region — so that allocation, flushing, and above all
// fencing on one shard never order or stall another: each backend owns
// its inflight set and fence sequence, which is exactly what lets
// unrelated FASEs on different shards commit without sharing an
// ordering point.
//
// Regions bundles those backends for the operations that genuinely span
// the split: aggregate statistics (per-region counters sum; see
// Stats.Add), whole-set crash images for failure injection, and the
// critical-path clock (the slowest region bounds a perfectly parallel
// execution).

// Regions is an ordered set of independently fenced device regions.
type Regions struct {
	devs []Backend
}

// NewRegions bundles the given backends into a region set. The set
// aliases the handles; it does not copy or own them.
func NewRegions(devs ...Backend) *Regions {
	r := &Regions{devs: make([]Backend, len(devs))}
	copy(r.devs, devs)
	return r
}

// Len returns the number of regions.
func (r *Regions) Len() int { return len(r.devs) }

// Device returns the i-th region's backend handle.
func (r *Regions) Device(i int) Backend { return r.devs[i] }

// Devices returns the region backends in order, in a fresh slice — the
// shape NewMultiCrashCountdown takes.
func (r *Regions) Devices() []Backend {
	devs := make([]Backend, len(r.devs))
	copy(devs, r.devs)
	return devs
}

// Stats returns the aggregate counters across every region: each
// region's snapshot is taken once and summed counter-wise.
func (r *Regions) Stats() Stats {
	var agg Stats
	for _, d := range r.devs {
		agg = agg.Add(d.Stats())
	}
	return agg
}

// Clock returns the total simulated busy nanoseconds across all regions.
func (r *Regions) Clock() float64 {
	var total float64
	for _, d := range r.devs {
		total += d.Clock()
	}
	return total
}

// MaxClock returns the largest per-region busy time — the critical path
// of an execution whose regions proceed in parallel.
func (r *Regions) MaxClock() float64 {
	var m float64
	for _, d := range r.devs {
		if c := d.Clock(); c > m {
			m = c
		}
	}
	return m
}

// CrashImages returns a post-power-failure view of every region under
// the given policy, one image per region in region order. Each region's
// pseudorandom line subset is derived from seed and the region index so
// a single seed reproduces the whole multi-region failure.
//
// When every region is a simulator device the capture is simultaneous:
// every region's mutex is held (acquired in region order — no other
// path locks two devices at once, so the ordering cannot deadlock)
// while the images are taken, as a real power failure hits all DIMMs at
// one instant. A per-region sequential capture would let commits that
// ran between two snapshots appear on a later region but not an earlier
// one, which under load manifests as a cross-shard transaction
// "partially applied" by a failure mode real hardware cannot produce.
// Mixed or non-simulator region sets fall back to sequential capture —
// such sets are not driven by the deterministic crash matrix, so the
// simultaneity guarantee is not load-bearing there.
func (r *Regions) CrashImages(policy CrashPolicy, seed uint64) [][]byte {
	sims := make([]*Device, len(r.devs))
	allSim := true
	for i, b := range r.devs {
		d, ok := b.(*Device)
		if !ok {
			allSim = false
			break
		}
		sims[i] = d
	}
	imgs := make([][]byte, len(r.devs))
	if !allSim {
		for i, b := range r.devs {
			imgs[i] = b.CrashImage(policy, seed+uint64(i)*0x9e3779b97f4a7c15)
		}
		return imgs
	}
	for _, d := range sims {
		d.s.mu.Lock()
	}
	defer func() {
		for _, d := range sims {
			d.s.mu.Unlock()
		}
	}()
	for i, d := range sims {
		imgs[i] = d.crashImageLocked(policy, seed+uint64(i)*0x9e3779b97f4a7c15)
	}
	return imgs
}

// MultiCrashCountdown lands one simulated power failure across a region
// set: a shared countdown of PM write events, decremented by a
// per-region tracer, that on expiry captures a crash image of every
// region at the same instant. This is how failure injection reaches the
// middle of a cross-shard commit — between the manifest's fences, after
// some shards' root swaps but not others'.
//
// Like CrashCountdown it is driven from the device Write hook (invoked
// after the device mutex is released); the shared counter is not
// synchronized, so install it only around single-goroutine operation
// sequences, which is what crash tests run.
type MultiCrashCountdown struct {
	devs      []Backend
	countdown int
	policy    CrashPolicy
	seed      uint64
	imgs      [][]byte
	prev      []Tracer
}

// NewMultiCrashCountdown returns a countdown that captures all-region
// crash images at the afterWrites-th PM write across the set. Every
// simulator device must track durability.
func NewMultiCrashCountdown(devs []Backend, afterWrites int, policy CrashPolicy, seed uint64) *MultiCrashCountdown {
	return &MultiCrashCountdown{devs: devs, countdown: afterWrites, policy: policy, seed: seed}
}

// Install sets a counting tracer on every device, remembering the
// tracers it displaces for Uninstall.
func (c *MultiCrashCountdown) Install() {
	c.prev = make([]Tracer, len(c.devs))
	for i, d := range c.devs {
		c.prev[i] = d.Tracer()
		d.SetTracer(&multiCrashSub{c: c})
	}
}

// Uninstall restores each device's previous tracer.
func (c *MultiCrashCountdown) Uninstall() {
	for i, d := range c.devs {
		d.SetTracer(c.prev[i])
	}
	c.prev = nil
}

// Images returns the captured per-region crash images in region order,
// or nil if the countdown has not expired.
func (c *MultiCrashCountdown) Images() [][]byte { return c.imgs }

func (c *MultiCrashCountdown) noteWrite() {
	if c.imgs != nil {
		return
	}
	c.countdown--
	if c.countdown <= 0 {
		imgs := make([][]byte, len(c.devs))
		for i, d := range c.devs {
			imgs[i] = d.CrashImage(c.policy, c.seed+uint64(i)*0x9e3779b97f4a7c15)
		}
		c.imgs = imgs
	}
}

// multiCrashSub is the per-device tracer feeding a shared countdown.
type multiCrashSub struct{ c *MultiCrashCountdown }

func (t *multiCrashSub) Write(addr Addr, size int)             { t.c.noteWrite() }
func (t *multiCrashSub) Alloc(addr Addr, size uint64, u uint8) {}
func (t *multiCrashSub) Free(addr Addr, size uint64)           {}
func (t *multiCrashSub) Flush(line uint64)                     {}
func (t *multiCrashSub) Fence(n int)                           {}
func (t *multiCrashSub) FASEBegin()                            {}
func (t *multiCrashSub) FASEEnd()                              {}
func (t *multiCrashSub) CommitBegin()                          {}
func (t *multiCrashSub) CommitEnd()                            {}
