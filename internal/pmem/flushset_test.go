package pmem

import "testing"

func TestFlushSetDedupesLines(t *testing.T) {
	d := New(DefaultConfig(1 << 20))
	fs := d.NewFlushSet()

	// Three overlapping ranges over two lines: 4 line records, 2 distinct.
	d.Write(0x100, make([]byte, 65)) // lines 4 and 5
	fs.Add(0x100, 65)
	fs.Add(0x100, 64)
	fs.Add(0x120, 8)
	if fs.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", fs.Pending())
	}
	base := d.Stats()
	fs.Flush()
	st := d.Stats().Sub(base)
	if st.Flushes != 2 {
		t.Errorf("Flushes = %d, want 2", st.Flushes)
	}
	if st.FlushesSaved != 2 {
		t.Errorf("FlushesSaved = %d, want 2 (4 records, 2 distinct)", st.FlushesSaved)
	}
	if fs.Pending() != 0 {
		t.Errorf("Pending after Flush = %d, want 0", fs.Pending())
	}
	if d.DirtyLines() != 0 {
		t.Errorf("DirtyLines = %d, want 0 after the sweep", d.DirtyLines())
	}
	if d.InflightLines() != 2 {
		t.Errorf("InflightLines = %d, want 2", d.InflightLines())
	}
}

func TestFlushSetDeferredLinesSurviveFenceAfterSweep(t *testing.T) {
	d := New(Config{Size: 1 << 20, TrackDurable: true,
		FlushLatencyNs: 353, FlushParallelFrac: 0.82, FlushMaxConcurrency: 32,
		ClwbIssueNs: 5, SfenceBaseNs: 10, L1HitNs: 1.2, L2HitNs: 4, L3HitNs: 40, PMReadNs: 302})
	fs := d.NewFlushSet()
	d.WriteU64(0x200, 0xdead)
	fs.Add(0x200, 8)

	// Before the sweep the write is dirty, not inflight: a crash under the
	// fenced-only policy loses it.
	img := d.CrashImage(CrashFencedOnly, 1)
	if got := le64(img[0x200:]); got != 0 {
		t.Fatalf("deferred write durable before sweep: %#x", got)
	}
	fs.Flush()
	d.Sfence()
	img = d.CrashImage(CrashFencedOnly, 1)
	if got := le64(img[0x200:]); got != 0xdead {
		t.Fatalf("swept+fenced write not durable: %#x", got)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestNoteCopiesElided(t *testing.T) {
	d := New(DefaultConfig(1 << 20))
	d.NoteCopiesElided(0)
	d.NoteCopiesElided(7)
	if got := d.Stats().CopiesElided; got != 7 {
		t.Errorf("CopiesElided = %d, want 7", got)
	}
}
