package pmem

import (
	"sync"
	"testing"
)

// TestForkClocksIndependent: each forked handle accumulates its own
// simulated time while the device aggregate sums all handles.
func TestForkClocksIndependent(t *testing.T) {
	d := New(DefaultConfig(1 << 20))
	base := d.Clock()

	h1 := d.Fork()
	h2 := d.Fork()
	if h1.LocalNs() != 0 || h2.LocalNs() != 0 {
		t.Fatal("forked clocks must start at zero")
	}
	h1.ChargeCompute(100)
	h2.ChargeCompute(250)
	h2.ChargeCompute(50)
	if got := h1.LocalNs(); got != 100 {
		t.Fatalf("h1 local = %v, want 100", got)
	}
	if got := h2.LocalNs(); got != 300 {
		t.Fatalf("h2 local = %v, want 300", got)
	}
	if got := d.Clock() - base; got != 400 {
		t.Fatalf("aggregate delta = %v, want 400", got)
	}
	if d.LocalNs() != 0 {
		t.Fatal("primary handle's local clock must be untouched by forks")
	}
}

// TestForkCategoryIndependent: SetCategory on one handle must not leak
// into another (the category is per-handle execution context).
func TestForkCategoryIndependent(t *testing.T) {
	d := New(DefaultConfig(1 << 20))
	h := d.Fork()
	h.SetCategory(CatLog)
	if d.Category() != CatOther {
		t.Fatal("fork's SetCategory leaked into the primary handle")
	}
	h.ChargeCompute(10)
	if got := h.(*Device).LocalClock().CategoryNs(CatLog); got != 10 {
		t.Fatalf("fork CatLog ns = %v, want 10", got)
	}
}

// TestConcurrentHandlesRaceFree drives reads, writes, flushes, and fences
// from several forked handles at once; run with -race. Counter totals
// must equal the sum of the per-handle work.
func TestConcurrentHandlesRaceFree(t *testing.T) {
	d := New(DefaultConfig(4 << 20))
	const (
		workers = 8
		ops     = 500
	)
	before := d.Stats()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := d.Fork()
			addr := Addr(4096 + w*8192)
			buf := make([]byte, 64)
			for i := 0; i < ops; i++ {
				h.Write(addr, buf)
				h.Read(addr, buf)
				h.Clwb(addr)
				if i%50 == 0 {
					h.Sfence()
				}
			}
		}(w)
	}
	wg.Wait()
	d.Sfence()
	delta := d.Stats().Sub(before)
	if delta.Writes != workers*ops || delta.Reads != workers*ops {
		t.Fatalf("writes=%d reads=%d, want %d each", delta.Writes, delta.Reads, workers*ops)
	}
	if delta.Flushes != workers*ops {
		t.Fatalf("flushes=%d, want %d", delta.Flushes, workers*ops)
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("%d dirty lines after final flush+fence", d.DirtyLines())
	}
	// Aggregate time is the sum of every handle's charges: it must be at
	// least any single handle's critical path and strictly positive.
	if delta.TotalNs <= 0 {
		t.Fatal("no aggregate time charged")
	}
	sum := delta.CatNs[CatOther] + delta.CatNs[CatFlush] + delta.CatNs[CatLog]
	if diff := sum - delta.TotalNs; diff > 1e-3 || diff < -1e-3 {
		t.Fatalf("category sum %.3f != total %.3f", sum, delta.TotalNs)
	}
}
