package pmem

// Backend abstracts the persistent-memory device under the MOD stack so
// the identical allocator / functional-datastructure / store / server
// layers run over more than one medium:
//
//   - the simulator (*Device in this package): deterministic line-state
//     machine with a simulated nanosecond clock — the measurement
//     instrument and the CI crash-consistency gate;
//   - mmapdev (package pmem/mmapdev): a plain mmap'd file where Clwb is
//     a dirty-line note, Sfence is msync(MS_SYNC) over the noted lines,
//     and the clock is wall time — the deployable engine, a seam for a
//     future DAX/clwb path.
//
// The interface is exactly the surface the data path and recovery use.
// Simulator-only machinery — crash policies beyond a whole-arena copy,
// media-fault injection, durable-image views, per-line dirty/inflight
// introspection with real meaning — stays on *Device; callers that need
// it consult Caps first or type-assert.
type Backend interface {
	// Geometry and capability flags.
	Size() int64
	Config() Config
	Caps() Caps

	// Data path. All offsets are Addr byte offsets into the arena.
	Read(addr Addr, p []byte)
	Write(addr Addr, p []byte)
	Zero(addr Addr, n int)
	ReadU64(addr Addr) uint64
	WriteU64(addr Addr, v uint64)
	ReadU32(addr Addr) uint32
	WriteU32(addr Addr, v uint32)
	ReadAddr(addr Addr) Addr
	WriteAddr(addr Addr, v Addr)
	CasAddr(addr, old, v Addr) bool

	// Persistence ordering. FenceSeq is a monotonic sfence count the
	// allocator orders reclamation against on every backend.
	Clwb(addr Addr)
	FlushRange(addr Addr, n int)
	Sfence()
	FenceSeq() uint64

	// Line-state introspection. On backends without a line-state machine
	// these are best-effort: DirtyLines may report 0 (unflushed writes
	// are not tracked per line) while InflightLines reports the noted
	// flush set.
	InflightLines() int
	DirtyLines() int
	LineDirty(addr Addr) bool

	// Accounting. Clock/LocalNs are simulated nanoseconds when
	// CapSimClock is set, wall-clock nanoseconds since open otherwise —
	// which is why mmap bench rows are wall-clock-only and never
	// value-gated.
	Stats() Stats
	Clock() float64
	LocalNs() float64
	ChargeCompute(ns float64)
	Category() Category
	SetCategory(c Category) Category
	NoteBatch(ops int)
	NoteRecovery(rebuilt uint64, ns float64)
	NoteFlushesSaved(n uint64)
	NoteCopiesElided(n uint64)
	ReadDRAM(addr Addr, n int)

	// Concurrency: a handle per goroutine, sharing the arena.
	Fork() Backend
	Tracer() Tracer
	SetTracer(t Tracer)

	// Recovery-scan surface. Bytes returns a raw, time-free view of the
	// arena for recovery and verification scans ONLY: it reads around
	// the media-fault (dead line) machinery, so outside a BeginRecovery
	// bracket it panics rather than let steady-state callers dodge
	// MediaError/checksum verification. RangeDead classifies poisoned
	// lines for scans that must report rather than crash; backends
	// without fault injection always return (Nil, false).
	BeginRecovery() func()
	Bytes(addr Addr, n int) []byte
	RangeDead(addr Addr, n int) (Addr, bool)

	// Snapshot returns a fresh copy of the whole arena's current
	// contents (every write, durable or not) under the backend's lock —
	// the checkpoint shape corruption tests and checkers diff against.
	Snapshot() []byte

	// CrashImage returns a post-power-failure view of the arena. With
	// CapCrashPolicies the policy and seed select a reproducible subset
	// of non-durable lines; without it the backend returns its best
	// approximation (mmapdev: a copy of the mapping, i.e. every write
	// issued so far — the CrashEvictRandom image with every coin true).
	CrashImage(policy CrashPolicy, seed uint64) []byte
}

// Caps is a bitmask of optional backend capabilities.
type Caps uint32

const (
	// CapSimClock: Clock/LocalNs are deterministic simulated time, so
	// fence/flush counts and nanoseconds are reproducible bit-for-bit
	// and may be value-gated by benchdiff.
	CapSimClock Caps = 1 << iota
	// CapCrashPolicies: CrashImage honors CrashPolicy + seed over a
	// tracked durable/inflight/dirty line-state machine.
	CapCrashPolicies
	// CapFaultInjection: the backend supports dead-line poisoning
	// (MarkLineDead) and raises MediaError on reads of poisoned lines.
	CapFaultInjection
	// CapDurableImage: a fenced-only durable image is tracked
	// (Config.TrackDurable), so CrashFencedOnly views are exact.
	CapDurableImage
)

// Has reports whether every capability in want is present.
func (c Caps) Has(want Caps) bool { return c&want == want }

// Caps reports the simulator's capabilities. The line-state machine and
// fault injection are always present; the durable image only when the
// device was created with Config.TrackDurable.
func (d *Device) Caps() Caps {
	c := CapSimClock | CapCrashPolicies | CapFaultInjection
	if d.s.dur != nil {
		c |= CapDurableImage
	}
	return c
}

// Compile-time check: the simulator implements the full Backend surface.
var _ Backend = (*Device)(nil)
