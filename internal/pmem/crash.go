package pmem

import "math/bits"

// Crash-image generation for failure-injection testing (§5.2, §5.4).
//
// On a real machine, a power failure preserves exactly the lines that
// reached the DIMM: everything fenced, an arbitrary subset of inflight
// writebacks, and — because write-back caches may evict at any time — an
// arbitrary subset of dirty lines. CrashImage materializes such a view.

// CrashPolicy selects which non-durable lines a simulated crash persists.
type CrashPolicy int

const (
	// CrashFencedOnly persists only lines made durable by an sfence: the
	// most conservative (least state survives) failure.
	CrashFencedOnly CrashPolicy = iota
	// CrashInflightRandom additionally persists a pseudorandom subset of
	// inflight (clwb'd but unfenced) lines, modeling writebacks that
	// completed before power was lost.
	CrashInflightRandom
	// CrashEvictRandom additionally persists a pseudorandom subset of all
	// non-durable lines (inflight and dirty), modeling cache evictions.
	// This is the most adversarial policy: correct recoverable code must
	// tolerate any dirty line becoming durable at any time.
	CrashEvictRandom
	// CrashAllInflight persists every inflight line but no dirty ones.
	CrashAllInflight
)

// CrashImage returns a copy of the arena as it would appear after a power
// failure under the given policy. The seed drives the pseudorandom subset
// choices so failures are reproducible. The device must have been created
// with TrackDurable.
func (d *Device) CrashImage(policy CrashPolicy, seed uint64) []byte {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return d.crashImageLocked(policy, seed)
}

// crashImageLocked is CrashImage with the device mutex already held, so
// Regions.CrashImages can freeze several regions at one instant.
func (d *Device) crashImageLocked(policy CrashPolicy, seed uint64) []byte {
	s := d.s
	if s.dur == nil {
		panic("pmem: CrashImage requires Config.TrackDurable")
	}
	img := make([]byte, len(s.dur))
	copy(img, s.dur)
	rng := seed
	persistLine := func(ln uint64) {
		off := ln << LineShift
		copy(img[off:off+LineSize], s.mem[off:off+LineSize])
	}
	coin := func() bool {
		rng = splitmix64(&rng)
		return rng&1 == 0
	}
	switch policy {
	case CrashFencedOnly:
	case CrashAllInflight:
		for _, ln := range s.inflight {
			persistLine(ln)
		}
	case CrashInflightRandom:
		for _, ln := range s.inflight {
			if coin() {
				persistLine(ln)
			}
		}
	case CrashEvictRandom:
		for _, ln := range s.inflight {
			if coin() {
				persistLine(ln)
			}
		}
		for w, word := range s.dirty.words {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				if coin() {
					persistLine(uint64(w)*64 + uint64(bits.TrailingZeros64(bit)))
				}
			}
		}
	}
	return img
}

// DurableBytes returns a read-only view of the durable image for
// inspection in tests. The device must track durability.
func (d *Device) DurableBytes(addr Addr, n int) []byte {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	if d.s.dur == nil {
		panic("pmem: DurableBytes requires Config.TrackDurable")
	}
	d.s.checkRange(addr, n)
	return d.s.dur[addr : addr+Addr(n) : addr+Addr(n)]
}

// CrashCountdown is a Tracer that captures a crash image after a given
// number of PM write events, landing a simulated power failure at an
// arbitrary point inside an operation in progress — the middle of a
// commit's publication, between its fences, wherever the countdown
// expires. Install with SetTracer around the operation under test, then
// read Image.
//
// The capture runs inside the Write hook, which the device invokes
// after releasing its internal mutex; CrashCountdown is the sanctioned
// way to take mid-operation crash images (see the Tracer contract).
type CrashCountdown struct {
	dev       Backend
	countdown int
	policy    CrashPolicy
	seed      uint64
	img       []byte
}

// NewCrashCountdown returns a tracer that captures the crash image at
// the afterWrites-th PM write event. A simulator device must track
// durability; backends without crash policies capture their best
// whole-arena approximation (see Backend.CrashImage).
func NewCrashCountdown(dev Backend, afterWrites int, policy CrashPolicy, seed uint64) *CrashCountdown {
	return &CrashCountdown{dev: dev, countdown: afterWrites, policy: policy, seed: seed}
}

// Image returns the captured crash image, or nil if the countdown has
// not expired yet (the failure point landed past the traced region).
func (c *CrashCountdown) Image() []byte { return c.img }

// Write counts down PM write events and captures the image at zero.
func (c *CrashCountdown) Write(addr Addr, size int) {
	if c.img != nil {
		return
	}
	c.countdown--
	if c.countdown <= 0 {
		c.img = c.dev.CrashImage(c.policy, c.seed)
	}
}

// Alloc implements Tracer.
func (c *CrashCountdown) Alloc(addr Addr, size uint64, tag uint8) {}

// Free implements Tracer.
func (c *CrashCountdown) Free(addr Addr, size uint64) {}

// Flush implements Tracer.
func (c *CrashCountdown) Flush(line uint64) {}

// Fence implements Tracer.
func (c *CrashCountdown) Fence(n int) {}

// FASEBegin implements Tracer.
func (c *CrashCountdown) FASEBegin() {}

// FASEEnd implements Tracer.
func (c *CrashCountdown) FASEEnd() {}

// CommitBegin implements Tracer.
func (c *CrashCountdown) CommitBegin() {}

// CommitEnd implements Tracer.
func (c *CrashCountdown) CommitEnd() {}

// splitmix64 advances the state and returns the next pseudorandom value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
