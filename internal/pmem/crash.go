package pmem

import "math/bits"

// Crash-image generation for failure-injection testing (§5.2, §5.4).
//
// On a real machine, a power failure preserves exactly the lines that
// reached the DIMM: everything fenced, an arbitrary subset of inflight
// writebacks, and — because write-back caches may evict at any time — an
// arbitrary subset of dirty lines. CrashImage materializes such a view.

// CrashPolicy selects which non-durable lines a simulated crash persists.
type CrashPolicy int

const (
	// CrashFencedOnly persists only lines made durable by an sfence: the
	// most conservative (least state survives) failure.
	CrashFencedOnly CrashPolicy = iota
	// CrashInflightRandom additionally persists a pseudorandom subset of
	// inflight (clwb'd but unfenced) lines, modeling writebacks that
	// completed before power was lost.
	CrashInflightRandom
	// CrashEvictRandom additionally persists a pseudorandom subset of all
	// non-durable lines (inflight and dirty), modeling cache evictions.
	// This is the most adversarial policy: correct recoverable code must
	// tolerate any dirty line becoming durable at any time.
	CrashEvictRandom
	// CrashAllInflight persists every inflight line but no dirty ones.
	CrashAllInflight
)

// CrashImage returns a copy of the arena as it would appear after a power
// failure under the given policy. The seed drives the pseudorandom subset
// choices so failures are reproducible. The device must have been created
// with TrackDurable.
func (d *Device) CrashImage(policy CrashPolicy, seed uint64) []byte {
	s := d.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dur == nil {
		panic("pmem: CrashImage requires Config.TrackDurable")
	}
	img := make([]byte, len(s.dur))
	copy(img, s.dur)
	rng := seed
	persistLine := func(ln uint64) {
		off := ln << LineShift
		copy(img[off:off+LineSize], s.mem[off:off+LineSize])
	}
	coin := func() bool {
		rng = splitmix64(&rng)
		return rng&1 == 0
	}
	switch policy {
	case CrashFencedOnly:
	case CrashAllInflight:
		for _, ln := range s.inflight {
			persistLine(ln)
		}
	case CrashInflightRandom:
		for _, ln := range s.inflight {
			if coin() {
				persistLine(ln)
			}
		}
	case CrashEvictRandom:
		for _, ln := range s.inflight {
			if coin() {
				persistLine(ln)
			}
		}
		for w, word := range s.dirty.words {
			for word != 0 {
				bit := word & (-word)
				word &^= bit
				if coin() {
					persistLine(uint64(w)*64 + uint64(bits.TrailingZeros64(bit)))
				}
			}
		}
	}
	return img
}

// DurableBytes returns a read-only view of the durable image for
// inspection in tests. The device must track durability.
func (d *Device) DurableBytes(addr Addr, n int) []byte {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	if d.s.dur == nil {
		panic("pmem: DurableBytes requires Config.TrackDurable")
	}
	d.s.checkRange(addr, n)
	return d.s.dur[addr : addr+Addr(n) : addr+Addr(n)]
}

// splitmix64 advances the state and returns the next pseudorandom value.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
