//go:build !(linux && (amd64 || arm64))

package mmapdev

import (
	"encoding/binary"

	"github.com/mod-ds/mod/internal/pmem"
)

func mapFile(path string, size int64, create bool) ([]byte, error) {
	return nil, ErrUnsupported
}

func unmapFile(data []byte) error { return nil }

func syncRange(data []byte, startLn, endLn uint64) error { return nil }

// Plain little-endian word ops keep the stub compiling; no device is
// ever constructed on these platforms.

func loadU64(data []byte, addr pmem.Addr) uint64 { return binary.LittleEndian.Uint64(data[addr:]) }

func storeU64(data []byte, addr pmem.Addr, v uint64) { binary.LittleEndian.PutUint64(data[addr:], v) }

func casU64(data []byte, addr pmem.Addr, old, v uint64) bool {
	if binary.LittleEndian.Uint64(data[addr:]) != old {
		return false
	}
	binary.LittleEndian.PutUint64(data[addr:], v)
	return true
}

func loadU32(data []byte, addr pmem.Addr) uint32 { return binary.LittleEndian.Uint32(data[addr:]) }

func storeU32(data []byte, addr pmem.Addr, v uint32) { binary.LittleEndian.PutUint32(data[addr:], v) }
