// Package mmapdev is a persistent-memory backend over a plain mmap'd
// file: the deployable counterpart of the pmem simulator, exposing the
// identical pmem.Backend surface so the whole MOD stack — allocator,
// functional datastructures, store, server — runs unchanged on a real
// file.
//
// The persistence mapping is deliberately simple, leaving a seam for a
// future DAX/clwb path:
//
//   - Clwb is a no-op range note: the touched line joins a deduplicated
//     dirty-line set (the FlushSet idiom, device-side).
//   - Sfence is msync(MS_SYNC) over the page-aligned runs covering the
//     noted lines, then clears the set. After Sfence returns, every
//     previously noted line is on stable storage — the same
//     "fence makes prior flushes durable" contract the simulator
//     models, at page rather than line granularity.
//   - CasAddr (and all 8-byte reads/writes of aligned cells) uses real
//     sync/atomic on the mapping, so the root-pointer publication race
//     the optimistic commit path relies on is decided by the CPU, not
//     a device mutex.
//
// There is no line-state machine, no simulated clock, no fault
// injection: Caps() reports none of the simulator's capability flags,
// Clock/LocalNs are wall-clock nanoseconds since open (which is why
// mmap bench rows are wall-clock-only and never value-gated), and
// CrashImage is a copy of the mapping — every write issued so far,
// i.e. the most permissive "any dirty line may persist" image.
//
// The on-file layout is the arena verbatim; multi-byte cells are
// little-endian, matching the simulator's images on the little-endian
// platforms the backend builds for.
package mmapdev

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mod-ds/mod/internal/pmem"
)

// ErrUnsupported is returned by Create/Open on platforms without the
// mmap backend (only little-endian Linux builds carry it). Callers and
// tests skip the backend when they see it.
var ErrUnsupported = errors.New("mmapdev: not supported on this platform")

// tracerBox wraps a pmem.Tracer for atomic.Value storage.
type tracerBox struct{ t pmem.Tracer }

// devState is the shared mapping state behind every forked handle.
type devState struct {
	data []byte // the live mapping (or heap arena when file-less)
	path string

	mu    sync.Mutex
	noted map[uint64]struct{} // lines Clwb'd since the last Sfence
	order []uint64

	stats struct {
		flushes      atomic.Uint64
		fences       atomic.Uint64
		reads        atomic.Uint64
		writes       atomic.Uint64
		bytesRead    atomic.Uint64
		bytesWritten atomic.Uint64
		flushedPer   atomic.Uint64
		flushesSaved atomic.Uint64
		copiesElided atomic.Uint64
		batches      atomic.Uint64
		batchedOps   atomic.Uint64
		dramReads    atomic.Uint64
		rebuiltNodes atomic.Uint64
		recoveryNs   atomic.Uint64 // float64 bits
	}
	scans  atomic.Int32
	fences atomic.Uint64 // fence sequence (duplicated from stats for clarity)
	tracer atomic.Value  // tracerBox
	opened time.Time

	closeOnce sync.Once
	closeErr  error
}

// Device is a handle onto an mmap-backed persistent arena. Like the
// simulator, handles are cheap and per-goroutine (Fork); the mapping is
// shared.
type Device struct {
	s   *devState
	cat pmem.Category
}

// Create creates (or truncates) the file at path, sizes it to size
// bytes rounded up to a full line, and maps it. The arena starts
// zeroed. On platforms without mmap support it returns an error.
func Create(path string, size int64) (*Device, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mmapdev: size must be positive, got %d", size)
	}
	size = (size + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
	data, err := mapFile(path, size, true)
	if err != nil {
		return nil, err
	}
	return newDevice(data, path), nil
}

// Open maps the existing file at path, attaching to whatever state a
// previous incarnation persisted. The file size must be a multiple of
// the line size (Create guarantees it).
func Open(path string) (*Device, error) {
	data, err := mapFile(path, -1, false)
	if err != nil {
		return nil, err
	}
	if len(data)%pmem.LineSize != 0 {
		unmapFile(data)
		return nil, fmt.Errorf("mmapdev: %s size %d is not line-aligned", path, len(data))
	}
	return newDevice(data, path), nil
}

func newDevice(data []byte, path string) *Device {
	s := &devState{
		data:   data,
		path:   path,
		noted:  make(map[uint64]struct{}),
		opened: time.Now(),
	}
	s.tracer.Store(tracerBox{})
	return &Device{s: s}
}

// Close syncs the mapping and unmaps it. The device (and every forked
// handle) must not be used afterwards.
func (d *Device) Close() error {
	d.s.closeOnce.Do(func() {
		d.Sfence()
		d.s.closeErr = unmapFile(d.s.data)
		d.s.data = nil
	})
	return d.s.closeErr
}

// Path returns the backing file's path.
func (d *Device) Path() string { return d.s.path }

// Size returns the arena size in bytes.
func (d *Device) Size() int64 { return int64(len(d.s.data)) }

// Config returns a minimal configuration: only the geometry is
// meaningful, the simulator's latency model does not apply.
func (d *Device) Config() pmem.Config { return pmem.Config{Size: int64(len(d.s.data))} }

// Caps reports no simulator capabilities: wall clock, whole-arena crash
// images, no fault injection, no durable-image tracking.
func (d *Device) Caps() pmem.Caps { return 0 }

// Fork returns a new handle onto the same mapping with its own
// accounting category.
func (d *Device) Fork() pmem.Backend { return &Device{s: d.s, cat: d.cat} }

// Tracer returns the tracer hook, or nil.
func (d *Device) Tracer() pmem.Tracer { return d.s.tracer.Load().(tracerBox).t }

// SetTracer replaces the tracer hook (nil disables tracing).
func (d *Device) SetTracer(t pmem.Tracer) { d.s.tracer.Store(tracerBox{t}) }

func (d *Device) checkRange(addr pmem.Addr, n int) {
	if n < 0 || uint64(addr) >= uint64(len(d.s.data)) || uint64(addr)+uint64(n) > uint64(len(d.s.data)) {
		panic(fmt.Sprintf("mmapdev: access [%#x, %#x) outside arena of %d bytes", uint64(addr), uint64(addr)+uint64(n), len(d.s.data)))
	}
}

// Read copies n = len(p) bytes at addr into p.
func (d *Device) Read(addr pmem.Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(addr, len(p))
	copy(p, d.s.data[addr:])
	d.s.stats.reads.Add(1)
	d.s.stats.bytesRead.Add(uint64(len(p)))
}

// Write stores p at addr.
func (d *Device) Write(addr pmem.Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	d.checkRange(addr, len(p))
	copy(d.s.data[addr:], p)
	d.s.stats.writes.Add(1)
	d.s.stats.bytesWritten.Add(uint64(len(p)))
	if t := d.Tracer(); t != nil {
		t.Write(addr, len(p))
	}
}

// Zero writes n zero bytes at addr.
func (d *Device) Zero(addr pmem.Addr, n int) {
	if n == 0 {
		return
	}
	d.checkRange(addr, n)
	clear(d.s.data[addr : addr+pmem.Addr(n)])
	d.s.stats.writes.Add(1)
	d.s.stats.bytesWritten.Add(uint64(n))
	if t := d.Tracer(); t != nil {
		t.Write(addr, n)
	}
}

// ReadU64 reads a little-endian uint64 at addr. Aligned cells are read
// with a real atomic load, so root-pointer cells race correctly against
// concurrent CasAddr publication.
func (d *Device) ReadU64(addr pmem.Addr) uint64 {
	d.checkRange(addr, 8)
	d.s.stats.reads.Add(1)
	d.s.stats.bytesRead.Add(8)
	return loadU64(d.s.data, addr)
}

// WriteU64 stores a little-endian uint64 at addr (atomically when
// aligned).
func (d *Device) WriteU64(addr pmem.Addr, v uint64) {
	d.checkRange(addr, 8)
	storeU64(d.s.data, addr, v)
	d.s.stats.writes.Add(1)
	d.s.stats.bytesWritten.Add(8)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 8)
	}
}

// ReadU32 reads a little-endian uint32 at addr.
func (d *Device) ReadU32(addr pmem.Addr) uint32 {
	d.checkRange(addr, 4)
	d.s.stats.reads.Add(1)
	d.s.stats.bytesRead.Add(4)
	return loadU32(d.s.data, addr)
}

// WriteU32 stores a little-endian uint32 at addr.
func (d *Device) WriteU32(addr pmem.Addr, v uint32) {
	d.checkRange(addr, 4)
	storeU32(d.s.data, addr, v)
	d.s.stats.writes.Add(1)
	d.s.stats.bytesWritten.Add(4)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 4)
	}
}

// ReadAddr reads a persistent pointer stored at addr.
func (d *Device) ReadAddr(addr pmem.Addr) pmem.Addr { return pmem.Addr(d.ReadU64(addr)) }

// WriteAddr stores a persistent pointer at addr. The cell must be
// 8-byte aligned so the store is both failure-atomic and a real atomic
// store with respect to concurrent readers.
func (d *Device) WriteAddr(addr pmem.Addr, v pmem.Addr) {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mmapdev: unaligned pointer write at %#x", uint64(addr)))
	}
	d.WriteU64(addr, uint64(v))
}

// CasAddr atomically compares the pointer at addr against old and, if
// it matches, stores v — a real compare-and-swap on the mapping.
func (d *Device) CasAddr(addr, old, v pmem.Addr) bool {
	if addr&7 != 0 {
		panic(fmt.Sprintf("mmapdev: unaligned pointer CAS at %#x", uint64(addr)))
	}
	d.checkRange(addr, 8)
	d.s.stats.reads.Add(1)
	d.s.stats.bytesRead.Add(8)
	ok := casU64(d.s.data, addr, uint64(old), uint64(v))
	if !ok {
		return false
	}
	d.s.stats.writes.Add(1)
	d.s.stats.bytesWritten.Add(8)
	if t := d.Tracer(); t != nil {
		t.Write(addr, 8)
	}
	return true
}

// Clwb notes the line containing addr as needing writeback at the next
// Sfence. No I/O happens here — the note set is the device-side
// FlushSet: deduplicated, in first-note order.
func (d *Device) Clwb(addr pmem.Addr) {
	d.checkRange(addr, 1)
	ln := uint64(addr) >> pmem.LineShift
	d.s.stats.flushes.Add(1)
	d.s.mu.Lock()
	if _, ok := d.s.noted[ln]; !ok {
		d.s.noted[ln] = struct{}{}
		d.s.order = append(d.s.order, ln)
	}
	d.s.mu.Unlock()
	if t := d.Tracer(); t != nil {
		t.Flush(ln)
	}
}

// FlushRange notes every line overlapping [addr, addr+n).
func (d *Device) FlushRange(addr pmem.Addr, n int) {
	if n <= 0 {
		return
	}
	d.checkRange(addr, n)
	first := uint64(addr) &^ (pmem.LineSize - 1)
	last := (uint64(addr) + uint64(n) - 1) &^ (pmem.LineSize - 1)
	for ln := first; ln <= last; ln += pmem.LineSize {
		d.Clwb(pmem.Addr(ln))
	}
}

// Sfence makes every noted line durable: msync(MS_SYNC) over the
// page-aligned runs covering the noted set, then the note set clears.
// Lines never noted are not synced — matching the clwb/sfence contract,
// where an unflushed store may or may not survive a crash.
func (d *Device) Sfence() {
	d.s.mu.Lock()
	n := len(d.s.order)
	runs := lineRuns(d.s.order)
	d.s.order = d.s.order[:0]
	clear(d.s.noted)
	d.s.mu.Unlock()

	d.s.stats.fences.Add(1)
	d.s.stats.flushedPer.Add(uint64(n))
	if d.s.data != nil {
		for _, run := range runs {
			// A failed msync means the durability ack about to be issued
			// would be a lie; there is no error channel in the Sfence
			// contract, so fail loudly.
			if err := syncRange(d.s.data, run[0], run[1]); err != nil {
				panic(err)
			}
		}
	}
	d.s.fences.Add(1)
	if t := d.Tracer(); t != nil {
		t.Fence(n)
	}
}

// lineRuns merges sorted-after-the-fact line indices into [startLine,
// endLine) runs so one msync covers each contiguous stretch.
func lineRuns(order []uint64) [][2]uint64 {
	if len(order) == 0 {
		return nil
	}
	sorted := append([]uint64(nil), order...)
	// Small sets; insertion sort avoids pulling in sort for a hot path.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var runs [][2]uint64
	start, end := sorted[0], sorted[0]+1
	for _, ln := range sorted[1:] {
		if ln == end || ln == end-1 {
			if ln == end {
				end++
			}
			continue
		}
		runs = append(runs, [2]uint64{start, end})
		start, end = ln, ln+1
	}
	return append(runs, [2]uint64{start, end})
}

// FenceSeq returns the number of Sfence calls executed on the device.
func (d *Device) FenceSeq() uint64 { return d.s.fences.Load() }

// InflightLines returns the size of the noted (unfenced) flush set.
func (d *Device) InflightLines() int {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return len(d.s.order)
}

// DirtyLines always reports 0: the mmap backend does not track
// unflushed writes per line (see Backend's line-state contract).
func (d *Device) DirtyLines() int { return 0 }

// LineDirty always reports false (no per-line write tracking).
func (d *Device) LineDirty(addr pmem.Addr) bool {
	d.checkRange(addr, 1)
	return false
}

// Stats returns a snapshot of the counters. Times are wall-clock.
func (d *Device) Stats() pmem.Stats {
	var s pmem.Stats
	s.TotalNs = d.Clock()
	s.Flushes = d.s.stats.flushes.Load()
	s.Fences = d.s.stats.fences.Load()
	s.Reads = d.s.stats.reads.Load()
	s.Writes = d.s.stats.writes.Load()
	s.BytesRead = d.s.stats.bytesRead.Load()
	s.BytesWritten = d.s.stats.bytesWritten.Load()
	s.FlushedPerFence = d.s.stats.flushedPer.Load()
	s.FlushesSaved = d.s.stats.flushesSaved.Load()
	s.CopiesElided = d.s.stats.copiesElided.Load()
	s.Batches = d.s.stats.batches.Load()
	s.BatchedOps = d.s.stats.batchedOps.Load()
	s.DRAMReads = d.s.stats.dramReads.Load()
	s.RebuiltNodes = d.s.stats.rebuiltNodes.Load()
	s.RecoveryNs = math.Float64frombits(d.s.stats.recoveryNs.Load())
	return s
}

// Clock returns wall-clock nanoseconds since the device was opened.
func (d *Device) Clock() float64 { return float64(time.Since(d.s.opened).Nanoseconds()) }

// LocalNs returns wall-clock nanoseconds since open. There is no
// per-handle simulated clock on this backend.
func (d *Device) LocalNs() float64 { return d.Clock() }

// ChargeCompute is a no-op: time is real here.
func (d *Device) ChargeCompute(ns float64) {}

// Category returns the handle's accounting category.
func (d *Device) Category() pmem.Category { return d.cat }

// SetCategory switches the handle's category and returns the previous
// one. Categories have no latency effect on this backend.
func (d *Device) SetCategory(c pmem.Category) pmem.Category {
	old := d.cat
	d.cat = c
	return old
}

// NoteBatch records a group commit for the Batches/BatchedOps counters.
func (d *Device) NoteBatch(ops int) {
	if ops <= 0 {
		return
	}
	d.s.stats.batches.Add(1)
	d.s.stats.batchedOps.Add(uint64(ops))
}

// NoteRecovery records a completed recovery pass (ns are wall-clock).
func (d *Device) NoteRecovery(rebuilt uint64, ns float64) {
	d.s.stats.rebuiltNodes.Add(rebuilt)
	for {
		old := d.s.stats.recoveryNs.Load()
		if d.s.stats.recoveryNs.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+ns)) {
			return
		}
	}
}

// NoteFlushesSaved credits flushes avoided by FlushSet deduplication.
func (d *Device) NoteFlushesSaved(n uint64) { d.s.stats.flushesSaved.Add(n) }

// NoteCopiesElided credits node copies avoided by in-place mutation.
func (d *Device) NoteCopiesElided(n uint64) {
	if n != 0 {
		d.s.stats.copiesElided.Add(n)
	}
}

// ReadDRAM counts node lines served from the DRAM node cache. No
// latency is charged (time is real); the counter keeps reports honest.
func (d *Device) ReadDRAM(addr pmem.Addr, n int) {
	if n <= 0 {
		return
	}
	d.checkRange(addr, n)
	first := uint64(addr) >> pmem.LineShift
	last := (uint64(addr) + uint64(n) - 1) >> pmem.LineShift
	d.s.stats.dramReads.Add(last - first + 1)
}

// BeginRecovery opens a recovery/verification bracket gating raw Bytes
// views, mirroring the simulator's guard so recovery code is portable.
func (d *Device) BeginRecovery() func() {
	d.s.scans.Add(1)
	return func() { d.s.scans.Add(-1) }
}

// Bytes returns a raw view of [addr, addr+n) for recovery scans inside
// a BeginRecovery bracket; outside one it panics, exactly like the
// simulator.
func (d *Device) Bytes(addr pmem.Addr, n int) []byte {
	if d.s.scans.Load() == 0 {
		panic(fmt.Sprintf("mmapdev: Bytes(%#x, %d) outside a BeginRecovery bracket", uint64(addr), n))
	}
	d.checkRange(addr, n)
	return d.s.data[addr : addr+pmem.Addr(n) : addr+pmem.Addr(n)]
}

// RangeDead always reports no dead lines: the mmap backend has no
// media-fault injection (reads of a genuinely failing medium surface as
// SIGBUS, outside this model).
func (d *Device) RangeDead(addr pmem.Addr, n int) (pmem.Addr, bool) { return pmem.Nil, false }

// Snapshot returns a fresh copy of the whole mapping.
func (d *Device) Snapshot() []byte {
	d.s.mu.Lock()
	defer d.s.mu.Unlock()
	return append([]byte(nil), d.s.data...)
}

// CrashImage returns a copy of the mapping: every write issued so far,
// regardless of fencing. Without a line-state machine this is the one
// honest post-crash view — it equals CrashEvictRandom with every coin
// landing true, the most permissive outcome recovery must already
// tolerate. The policy and seed are ignored.
func (d *Device) CrashImage(policy pmem.CrashPolicy, seed uint64) []byte { return d.Snapshot() }

// Compile-time check: mmapdev implements the full Backend surface.
var _ pmem.Backend = (*Device)(nil)
