//go:build linux && (amd64 || arm64)

package mmapdev

import (
	"encoding/binary"
	"fmt"
	"os"
	"sync/atomic"
	"syscall"
	"unsafe"

	"github.com/mod-ds/mod/internal/pmem"
)

// mapFile opens (creating and sizing when create is true) and maps the
// file shared read-write. With create false the existing file's size is
// used; size is ignored.
func mapFile(path string, size int64, create bool) ([]byte, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if create {
		if err := f.Truncate(size); err != nil {
			return nil, fmt.Errorf("mmapdev: sizing %s to %d bytes: %w", path, size, err)
		}
	} else {
		st, err := f.Stat()
		if err != nil {
			return nil, err
		}
		size = st.Size()
		if size == 0 {
			return nil, fmt.Errorf("mmapdev: %s is empty", path)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapdev: mmap %s: %w", path, err)
	}
	return data, nil
}

// unmapFile fully syncs and unmaps the mapping (clean shutdown: every
// write persists, noted or not).
func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if err := msync(data, 0, uintptr(len(data))); err != nil {
		syscall.Munmap(data)
		return err
	}
	return syscall.Munmap(data)
}

// syncRange msyncs the page-aligned byte range covering lines
// [startLn, endLn).
func syncRange(data []byte, startLn, endLn uint64) error {
	ps := uint64(syscall.Getpagesize())
	lo := (startLn << pmem.LineShift) &^ (ps - 1)
	hi := ((endLn << pmem.LineShift) + ps - 1) &^ (ps - 1)
	if hi > uint64(len(data)) {
		hi = uint64(len(data))
	}
	if lo >= hi {
		return nil
	}
	return msync(data, uintptr(lo), uintptr(hi-lo))
}

func msync(data []byte, off, n uintptr) error {
	addr := uintptr(unsafe.Pointer(&data[0])) + off
	if _, _, errno := syscall.Syscall(syscall.SYS_MSYNC, addr, n, uintptr(syscall.MS_SYNC)); errno != 0 {
		return fmt.Errorf("mmapdev: msync: %w", errno)
	}
	return nil
}

// Aligned multi-byte cells are accessed with real atomics directly on
// the mapping; the builds this file covers are little-endian, so the
// native word layout matches the arena's little-endian format.

func loadU64(data []byte, addr pmem.Addr) uint64 {
	if addr&7 == 0 {
		return atomic.LoadUint64((*uint64)(unsafe.Pointer(&data[addr])))
	}
	return binary.LittleEndian.Uint64(data[addr:])
}

func storeU64(data []byte, addr pmem.Addr, v uint64) {
	if addr&7 == 0 {
		atomic.StoreUint64((*uint64)(unsafe.Pointer(&data[addr])), v)
		return
	}
	binary.LittleEndian.PutUint64(data[addr:], v)
}

func casU64(data []byte, addr pmem.Addr, old, v uint64) bool {
	return atomic.CompareAndSwapUint64((*uint64)(unsafe.Pointer(&data[addr])), old, v)
}

func loadU32(data []byte, addr pmem.Addr) uint32 {
	if addr&3 == 0 {
		return atomic.LoadUint32((*uint32)(unsafe.Pointer(&data[addr])))
	}
	return binary.LittleEndian.Uint32(data[addr:])
}

func storeU32(data []byte, addr pmem.Addr, v uint32) {
	if addr&3 == 0 {
		atomic.StoreUint32((*uint32)(unsafe.Pointer(&data[addr])), v)
		return
	}
	binary.LittleEndian.PutUint32(data[addr:], v)
}
