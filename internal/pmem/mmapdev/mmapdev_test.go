package mmapdev

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// devFor creates a temp-file-backed device, skipping the test on
// platforms without the backend.
func devFor(t *testing.T, size int64) (*Device, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "arena.pm")
	d, err := Create(path, size)
	if errors.Is(err, ErrUnsupported) {
		t.Skip("mmap backend unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, path
}

func TestWordRoundtrip(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	if got := d.Size(); got != 1<<16 {
		t.Fatalf("Size = %d", got)
	}

	d.WriteU64(0, 0x1122334455667788)
	if got := d.ReadU64(0); got != 0x1122334455667788 {
		t.Fatalf("ReadU64 = %#x", got)
	}
	// Unaligned 8-byte cells still round-trip (non-atomic path).
	d.WriteU64(3, 0xCAFEBABE)
	if got := d.ReadU64(3); got != 0xCAFEBABE {
		t.Fatalf("unaligned ReadU64 = %#x", got)
	}
	d.WriteU32(64, 0xA5A5A5A5)
	if got := d.ReadU32(64); got != 0xA5A5A5A5 {
		t.Fatalf("ReadU32 = %#x", got)
	}
	d.WriteAddr(128, pmem.Addr(4096))
	if got := d.ReadAddr(128); got != 4096 {
		t.Fatalf("ReadAddr = %d", got)
	}

	src := []byte("minimally ordered durable")
	d.Write(256, src)
	got := make([]byte, len(src))
	d.Read(256, got)
	if !bytes.Equal(got, src) {
		t.Fatalf("Read = %q", got)
	}
	d.Zero(256, 4)
	d.Read(256, got)
	if !bytes.Equal(got[:4], []byte{0, 0, 0, 0}) || !bytes.Equal(got[4:], src[4:]) {
		t.Fatalf("Zero left %q", got)
	}

	// Little-endian on the file: the low byte of a word lands first.
	d.WriteU64(512, 0x01)
	end := d.BeginRecovery()
	if raw := d.Bytes(512, 8); raw[0] != 1 || raw[7] != 0 {
		t.Fatalf("layout not little-endian: % x", raw)
	}
	end()
}

func TestClwbSfenceNoteSet(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	d.WriteU64(0, 1)
	d.WriteU64(pmem.LineSize, 2)

	// Duplicate Clwbs of one line dedup in the note set but count as
	// issued flushes.
	d.Clwb(0)
	d.Clwb(8) // same line
	d.Clwb(pmem.LineSize)
	if got := d.InflightLines(); got != 2 {
		t.Fatalf("InflightLines = %d, want 2", got)
	}
	if got := d.Stats().Flushes; got != 3 {
		t.Fatalf("Flushes = %d, want 3", got)
	}

	seq := d.FenceSeq()
	d.Sfence()
	if got := d.InflightLines(); got != 0 {
		t.Fatalf("InflightLines after Sfence = %d", got)
	}
	if got := d.FenceSeq(); got != seq+1 {
		t.Fatalf("FenceSeq = %d, want %d", got, seq+1)
	}
	if s := d.Stats(); s.Fences != 1 || s.FlushedPerFence != 2 {
		t.Fatalf("Fences=%d FlushedPerFence=%d", s.Fences, s.FlushedPerFence)
	}

	// FlushRange notes every overlapping line.
	d.FlushRange(pmem.LineSize-8, 16)
	if got := d.InflightLines(); got != 2 {
		t.Fatalf("FlushRange noted %d lines, want 2", got)
	}
	d.Sfence()
}

func TestLineRuns(t *testing.T) {
	for _, tc := range []struct {
		in   []uint64
		want [][2]uint64
	}{
		{nil, nil},
		{[]uint64{5}, [][2]uint64{{5, 6}}},
		{[]uint64{7, 5, 6}, [][2]uint64{{5, 8}}},
		{[]uint64{9, 2, 3, 8}, [][2]uint64{{2, 4}, {8, 10}}},
	} {
		got := lineRuns(tc.in)
		if len(got) != len(tc.want) {
			t.Fatalf("lineRuns(%v) = %v, want %v", tc.in, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("lineRuns(%v) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestCasAddrPublication(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	d.WriteAddr(0, pmem.Nil)
	if d.CasAddr(0, pmem.Addr(7), pmem.Addr(8)) {
		t.Fatal("CAS with wrong expected value succeeded")
	}
	if !d.CasAddr(0, pmem.Nil, pmem.Addr(64)) {
		t.Fatal("CAS with matching expected value failed")
	}
	if got := d.ReadAddr(0); got != 64 {
		t.Fatalf("root after CAS = %d", got)
	}

	// Racing publishers: exactly one CAS per round wins, each from its
	// own forked handle, as in the optimistic commit path.
	const racers = 8
	d.WriteAddr(8, pmem.Nil)
	var wg sync.WaitGroup
	wins := make([]int, racers)
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := d.Fork().(*Device)
			for {
				if h.CasAddr(8, pmem.Nil, pmem.Addr((r+1)*pmem.LineSize)) {
					wins[r] = 1
					return
				}
				if h.ReadAddr(8) != pmem.Nil {
					return
				}
			}
		}(r)
	}
	wg.Wait()
	total := 0
	for _, w := range wins {
		total += w
	}
	if total != 1 {
		t.Fatalf("%d racers won the publication CAS, want exactly 1", total)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	d, path := devFor(t, 1<<16)
	d.WriteU64(0, 0xD00DFEED)
	d.WriteU64(pmem.LineSize, 42)
	d.FlushRange(0, pmem.LineSize*2)
	d.Sfence()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := d2.Size(); got != 1<<16 {
		t.Fatalf("reopened size = %d", got)
	}
	if got := d2.ReadU64(0); got != 0xD00DFEED {
		t.Fatalf("word 0 after reopen = %#x", got)
	}
	if got := d2.ReadU64(pmem.LineSize); got != 42 {
		t.Fatalf("word at line 1 after reopen = %d", got)
	}
}

func TestSnapshotAndCrashImageCopy(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	d.WriteU64(128, 7)
	img := d.CrashImage(pmem.CrashFencedOnly, 1) // policy ignored: full copy
	snap := d.Snapshot()
	d.WriteU64(128, 9)
	for name, b := range map[string][]byte{"CrashImage": img, "Snapshot": snap} {
		if len(b) != 1<<16 {
			t.Fatalf("%s length %d", name, len(b))
		}
		if b[128] != 7 {
			t.Fatalf("%s aliased a later write: %d", name, b[128])
		}
	}
}

func TestBytesRequiresRecoveryBracket(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	d.WriteU64(64, 5)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bytes outside a BeginRecovery bracket did not panic")
			}
		}()
		_ = d.Bytes(64, 8)
	}()
	end := d.BeginRecovery()
	if raw := d.Bytes(64, 8); raw[0] != 5 {
		t.Fatalf("bracketed raw read = %d", raw[0])
	}
	end()
}

func TestCapsAndDegenerateLineState(t *testing.T) {
	d, _ := devFor(t, 1<<16)
	if caps := d.Caps(); caps != 0 {
		t.Fatalf("Caps = %b, want none", caps)
	}
	d.WriteU64(0, 1)
	if d.DirtyLines() != 0 || d.LineDirty(0) {
		t.Fatal("mmap backend claims per-line dirty tracking")
	}
	if a, dead := d.RangeDead(0, pmem.LineSize); dead || a != pmem.Nil {
		t.Fatal("mmap backend claims dead lines")
	}
}
