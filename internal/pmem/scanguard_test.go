package pmem

import "testing"

// Regression test for the raw-view guard: Device.Bytes is exempt from
// dead-line poisoning so recovery scans can classify damage, which
// means a steady-state caller could use it to dodge MediaError and
// checksum verification. The guard closes that hole: outside a
// BeginRecovery bracket, Bytes panics.
func TestBytesRequiresRecoveryBracket(t *testing.T) {
	dev := New(DefaultConfig(1 << 16))
	dev.WriteU64(64, 0xABCD)

	// Outside any bracket: panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bytes outside a BeginRecovery bracket did not panic")
			}
		}()
		_ = dev.Bytes(64, 8)
	}()

	// Inside a bracket: the raw view works, dead lines and all.
	end := dev.BeginRecovery()
	dev.MarkLineDead(64)
	if got := leRaw(dev.Bytes(64, 8)); got != 0xABCD {
		t.Fatalf("bracketed raw read = %#x, want 0xABCD", got)
	}
	// Brackets nest: an inner bracket closing must not end the outer.
	inner := dev.BeginRecovery()
	inner()
	_ = dev.Bytes(64, 8)
	end()

	// After the last bracket closes the guard re-arms.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Bytes after bracket close did not panic")
			}
		}()
		_ = dev.Bytes(64, 8)
	}()

	// Checked reads still see the media fault regardless of brackets.
	func() {
		defer func() {
			if _, ok := recover().(*MediaError); !ok {
				t.Fatal("checked read of dead line did not raise *MediaError")
			}
		}()
		dev.ReadU64(64)
	}()
}

func leRaw(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Snapshot must copy — not alias — the arena, and needs no bracket.
func TestSnapshotCopies(t *testing.T) {
	dev := New(DefaultConfig(1 << 16))
	dev.WriteU64(128, 7)
	img := dev.Snapshot()
	dev.WriteU64(128, 9)
	if got := leRaw(img[128:136]); got != 7 {
		t.Fatalf("snapshot aliased a later write: %d", got)
	}
	if int64(len(img)) != dev.Size() {
		t.Fatalf("snapshot length %d, arena %d", len(img), dev.Size())
	}
}
