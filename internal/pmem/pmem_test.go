package pmem

import (
	"math"
	"testing"
	"testing/quick"
)

func newTestDevice(t *testing.T, size int64) *Device {
	t.Helper()
	cfg := DefaultConfig(size)
	cfg.TrackDurable = true
	return New(cfg)
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newTestDevice(t, 4096)
	data := []byte("minimally ordered durable")
	d.Write(128, data)
	got := make([]byte, len(data))
	d.Read(128, got)
	if string(got) != string(data) {
		t.Fatalf("Read = %q, want %q", got, data)
	}
}

func TestU64RoundTrip(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(64, 0xdeadbeefcafef00d)
	if got := d.ReadU64(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x", got)
	}
	d.WriteU32(80, 0x1234abcd)
	if got := d.ReadU32(80); got != 0x1234abcd {
		t.Fatalf("ReadU32 = %#x", got)
	}
}

func TestWriteMarksDirtyFlushFenceDurable(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(256, 42)
	if !d.LineDirty(256) {
		t.Fatal("line should be dirty after write")
	}
	if got := d.DurableBytes(256, 8); got[0] != 0 {
		t.Fatal("write must not be durable before flush+fence")
	}
	d.Clwb(256)
	if d.LineDirty(256) {
		t.Fatal("clwb should clear dirty")
	}
	if d.InflightLines() != 1 {
		t.Fatalf("InflightLines = %d, want 1", d.InflightLines())
	}
	if got := d.DurableBytes(256, 8); got[0] != 0 {
		t.Fatal("clwb alone must not make data durable")
	}
	d.Sfence()
	if d.InflightLines() != 0 {
		t.Fatal("fence should retire inflight flushes")
	}
	if got := d.DurableBytes(256, 8); got[0] != 42 {
		t.Fatalf("after fence durable byte = %d, want 42", got[0])
	}
}

func TestRewriteAfterClwbIsDirtyAgain(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(0, 1)
	d.Clwb(0)
	d.WriteU64(0, 2)
	if !d.LineDirty(0) {
		t.Fatal("store after clwb must re-dirty the line")
	}
}

func TestFlushRangeCoversAllLines(t *testing.T) {
	d := newTestDevice(t, 4096)
	// 100 bytes starting at offset 60 spans lines 0, 1, 2.
	d.Write(60, make([]byte, 100))
	d.FlushRange(60, 100)
	if got := d.InflightLines(); got != 3 {
		t.Fatalf("InflightLines = %d, want 3", got)
	}
	if d.DirtyLines() != 0 {
		t.Fatalf("DirtyLines = %d, want 0", d.DirtyLines())
	}
}

func TestClwbDedupesInflight(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(0, 7)
	d.Clwb(0)
	d.Clwb(8) // same line
	if got := d.InflightLines(); got != 1 {
		t.Fatalf("InflightLines = %d, want 1", got)
	}
	s := d.Stats()
	if s.Flushes != 2 {
		t.Fatalf("Flushes = %d, want 2 (both clwbs counted)", s.Flushes)
	}
}

func TestFenceStallMatchesAmdahlModel(t *testing.T) {
	d := newTestDevice(t, 4096)
	cfg := d.Config()
	// Single flush: exactly the measured 353 ns.
	if got := d.FenceStallNs(1); math.Abs(got-cfg.FlushLatencyNs) > 1e-9 {
		t.Fatalf("FenceStallNs(1) = %v, want %v", got, cfg.FlushLatencyNs)
	}
	// 16 concurrent flushes: average latency drops by ~75% (paper §3).
	avg16 := d.FenceStallNs(16) / 16
	reduction := 1 - avg16/cfg.FlushLatencyNs
	if reduction < 0.70 || reduction > 0.80 {
		t.Fatalf("16-flush average reduction = %.2f, want ≈0.75", reduction)
	}
	// Beyond the concurrency cap, per-flush latency stops improving.
	avg32 := d.FenceStallNs(32) / 32
	avg64 := d.FenceStallNs(64) / 64
	if math.Abs(avg64-avg32) > 1e-9 {
		t.Fatalf("per-flush latency should plateau past cap: %v vs %v", avg32, avg64)
	}
	// Stall is monotonically nondecreasing in flush count.
	prev := 0.0
	for n := 1; n <= 64; n++ {
		s := d.FenceStallNs(n)
		if s < prev {
			t.Fatalf("FenceStallNs not monotonic at n=%d: %v < %v", n, s, prev)
		}
		prev = s
	}
}

func TestEightFlushesOneFenceVsEightFences(t *testing.T) {
	// §1: "8 clwbs can be performed 75% faster when they are ordered
	// jointly by a single sfence than when each clwb is individually
	// ordered by an sfence."
	run := func(batched bool) float64 {
		d := newTestDevice(t, 4096)
		for i := 0; i < 8; i++ {
			d.WriteU64(Addr(i*LineSize), uint64(i))
		}
		start := d.Clock()
		for i := 0; i < 8; i++ {
			d.Clwb(Addr(i * LineSize))
			if !batched {
				d.Sfence()
			}
		}
		if batched {
			d.Sfence()
		}
		return d.Clock() - start
	}
	sep := run(false)
	joint := run(true)
	speedup := 1 - joint/sep
	if speedup < 0.60 || speedup > 0.85 {
		t.Fatalf("batched fence speedup = %.2f, want ≈0.75", speedup)
	}
}

func TestCategoryAccounting(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.SetCategory(CatLog)
	d.WriteU64(0, 1)
	d.SetCategory(CatOther)
	d.WriteU64(64, 2)
	d.Clwb(0)
	d.Sfence()
	s := d.Stats()
	if s.CatNs[CatLog] <= 0 {
		t.Fatal("log category should have accumulated time")
	}
	if s.CatNs[CatFlush] <= 0 {
		t.Fatal("flush category should have accumulated time")
	}
	sum := s.CatNs[CatOther] + s.CatNs[CatFlush] + s.CatNs[CatLog]
	if math.Abs(sum-s.TotalNs) > 1e-6 {
		t.Fatalf("category times %v do not sum to total %v", sum, s.TotalNs)
	}
}

func TestStatsSub(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(0, 1)
	base := d.Stats()
	d.WriteU64(64, 2)
	d.Clwb(64)
	d.Sfence()
	delta := d.Stats().Sub(base)
	if delta.Writes != 1 || delta.Flushes != 1 || delta.Fences != 1 {
		t.Fatalf("delta = %+v, want 1 write / 1 flush / 1 fence", delta)
	}
	if delta.TotalNs <= 0 {
		t.Fatal("delta time must be positive")
	}
}

func TestCrashImageFencedOnly(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(0, 11)
	d.Clwb(0)
	d.Sfence()
	d.WriteU64(64, 22) // dirty, never flushed
	d.WriteU64(128, 33)
	d.Clwb(128) // inflight, never fenced
	img := d.CrashImage(CrashFencedOnly, 1)
	r := NewFromImage(DefaultConfig(4096), img)
	if got := r.ReadU64(0); got != 11 {
		t.Fatalf("fenced data lost: %d", got)
	}
	if got := r.ReadU64(64); got != 0 {
		t.Fatalf("dirty data survived fenced-only crash: %d", got)
	}
	if got := r.ReadU64(128); got != 0 {
		t.Fatalf("inflight data survived fenced-only crash: %d", got)
	}
}

func TestCrashImageAllInflight(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.WriteU64(128, 33)
	d.Clwb(128)
	img := d.CrashImage(CrashAllInflight, 1)
	r := NewFromImage(DefaultConfig(4096), img)
	if got := r.ReadU64(128); got != 33 {
		t.Fatalf("inflight data lost under CrashAllInflight: %d", got)
	}
}

func TestCrashImageDeterministicPerSeed(t *testing.T) {
	build := func() *Device {
		d := newTestDevice(t, 1<<16)
		for i := 0; i < 200; i++ {
			d.WriteU64(Addr(i*64), uint64(i))
			if i%2 == 0 {
				d.Clwb(Addr(i * 64))
			}
		}
		return d
	}
	a := build().CrashImage(CrashEvictRandom, 42)
	b := build().CrashImage(CrashEvictRandom, 42)
	if string(a) != string(b) {
		t.Fatal("crash image must be deterministic for a fixed seed")
	}
}

func TestWriteAddrRequiresAlignment(t *testing.T) {
	d := newTestDevice(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned WriteAddr should panic")
		}
	}()
	d.WriteAddr(3, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	d := newTestDevice(t, 4096)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access should panic")
		}
	}()
	d.ReadU64(4095)
}

func TestZero(t *testing.T) {
	d := newTestDevice(t, 4096)
	d.Write(0, []byte{1, 2, 3, 4})
	d.Zero(0, 4)
	got := make([]byte, 4)
	d.Read(0, got)
	for _, b := range got {
		if b != 0 {
			t.Fatalf("Zero left %v", got)
		}
	}
}

func TestQuickWriteReadAnywhere(t *testing.T) {
	d := newTestDevice(t, 1<<16)
	f := func(off uint16, v uint64) bool {
		a := Addr(off) &^ 7
		if int(a)+8 > int(d.Size()) {
			a = Addr(d.Size() - 8)
		}
		d.WriteU64(a, v)
		return d.ReadU64(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashValuesComeFromWriteHistory(t *testing.T) {
	// Property: under any crash policy, every surviving 8-byte word equals
	// either zero (initial state) or some value previously written to that
	// address — never garbage from elsewhere.
	d := newTestDevice(t, 1<<14)
	var seed uint64 = 7
	history := map[Addr]map[uint64]bool{}
	for i := 0; i < 500; i++ {
		r := splitmix64(&seed)
		a := Addr(r%(1<<14-8)) &^ 7
		v := splitmix64(&seed)
		d.WriteU64(a, v)
		if history[a] == nil {
			history[a] = map[uint64]bool{}
		}
		history[a][v] = true
		switch r % 3 {
		case 0:
			d.Clwb(a)
		case 1:
			d.Clwb(a)
			d.Sfence()
		}
	}
	for _, pol := range []CrashPolicy{CrashFencedOnly, CrashAllInflight, CrashInflightRandom, CrashEvictRandom} {
		img := d.CrashImage(pol, 99)
		r := NewFromImage(DefaultConfig(1<<14), img)
		for a, vals := range history {
			got := r.ReadU64(a)
			if got != 0 && !vals[got] {
				t.Fatalf("policy %d: addr %#x has value %#x never written there", pol, uint64(a), got)
			}
		}
	}
}
