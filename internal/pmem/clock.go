package pmem

import (
	"math"
	"sync/atomic"
)

// Simulated-time accounting. A single-threaded simulation can keep one
// float64 clock, but concurrent goroutines each have their own critical
// path: reader A performing a lookup does not wait for reader B's lookup
// on real hardware, so their simulated times must advance independently.
//
// Every Device handle therefore carries a LocalClock: charges land on the
// handle's own timeline (the goroutine's critical path) and, atomically,
// on a device-wide aggregate (total busy nanoseconds across all
// goroutines). Elapsed time of a parallel phase is the maximum of the
// participating handles' local clocks; aggregate throughput is total
// operations divided by that maximum.

// Clock accounts simulated time for one execution context.
type Clock interface {
	// Charge advances the clock by ns, attributed to category c.
	Charge(c Category, ns float64)
	// Now returns the accumulated simulated nanoseconds.
	Now() float64
	// CategoryNs returns the accumulated nanoseconds of one category.
	CategoryNs(c Category) float64
}

// atomicNs is a float64 nanosecond accumulator updated lock-free.
type atomicNs struct{ bits atomic.Uint64 }

func (a *atomicNs) add(ns float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+ns)) {
			return
		}
	}
}

func (a *atomicNs) load() float64 { return math.Float64frombits(a.bits.Load()) }

// aggClock is the device-wide aggregate: total busy simulated time across
// every handle, by category. All updates are atomic.
type aggClock struct {
	total atomicNs
	cat   [numCategories]atomicNs
}

// LocalClock is the per-handle simulated clock. Charges accumulate both
// locally and on the shared aggregate, so a handle's Now() is the critical
// path of the goroutine using it while Device.Clock() remains the total
// busy time. LocalClock is safe for concurrent use, but sharing one across
// goroutines merges their timelines; Fork the device instead.
type LocalClock struct {
	agg *aggClock
	ns  atomicNs
	cat [numCategories]atomicNs
}

func newLocalClock(agg *aggClock) *LocalClock { return &LocalClock{agg: agg} }

// Charge advances this clock and the device aggregate by ns.
func (c *LocalClock) Charge(cat Category, ns float64) {
	c.ns.add(ns)
	c.cat[cat].add(ns)
	c.agg.total.add(ns)
	c.agg.cat[cat].add(ns)
}

// Now returns the simulated nanoseconds accumulated on this clock.
func (c *LocalClock) Now() float64 { return c.ns.load() }

// CategoryNs returns this clock's accumulated time in one category.
func (c *LocalClock) CategoryNs(cat Category) float64 { return c.cat[cat].load() }
