package pmem

import (
	"bytes"
	"testing"
)

func TestFaultPlanApplyToImage(t *testing.T) {
	img := make([]byte, 4*LineSize)
	for i := range img {
		img[i] = byte(i)
	}
	base := make([]byte, len(img))
	for i := range base {
		base[i] = 0xEE
	}
	orig := append([]byte(nil), img...)

	plan := &FaultPlan{}
	plan.FlipBit(3, 2)
	plan.TearStore(Addr(LineSize + 5)) // rounds down to LineSize
	plan.KillLine(Addr(2*LineSize + 7))
	if plan.Len() != 3 {
		t.Fatalf("Len = %d, want 3", plan.Len())
	}
	plan.ApplyToImage(img, base)

	if img[3] != orig[3]^(1<<2) {
		t.Errorf("bit flip: %#x, want %#x", img[3], orig[3]^(1<<2))
	}
	for i := LineSize; i < LineSize+8; i++ {
		if img[i] != 0xEE {
			t.Errorf("torn word byte %d = %#x, want base 0xEE", i, img[i])
		}
	}
	if img[LineSize+8] != orig[LineSize+8] {
		t.Error("torn store spilled past its 8-byte word")
	}
	for i := 2 * LineSize; i < 3*LineSize; i++ {
		if img[i] != orig[i]^0xA5 {
			t.Fatalf("dead line byte %d not scrambled", i)
		}
	}
	if !bytes.Equal(img[3*LineSize:], orig[3*LineSize:]) {
		t.Error("fault plan touched bytes outside its targets")
	}
	if got := plan.DeadLines(); len(got) != 1 || got[0] != Addr(2*LineSize) {
		t.Errorf("DeadLines = %v", got)
	}
}

func TestFaultPlanTornStoreZeroWithoutBase(t *testing.T) {
	img := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	(&FaultPlan{}).TearStore(0).ApplyToImage(img, nil)
	for i := 0; i < 8; i++ {
		if img[i] != 0 {
			t.Fatalf("byte %d = %d, want 0 (no reference image)", i, img[i])
		}
	}
	if img[8] != 9 {
		t.Error("tear spilled")
	}
}

func TestFaultPlanIgnoresOutOfRange(t *testing.T) {
	img := make([]byte, 16)
	plan := (&FaultPlan{}).FlipBit(100, 0).TearStore(12).KillLine(Addr(5 * LineSize))
	plan.ApplyToImage(img, nil) // must not panic; truncated targets skipped
	for i, b := range img {
		if b != 0 {
			t.Fatalf("byte %d damaged by out-of-range fault", i)
		}
	}
}

func TestDeadLineReadsPanic(t *testing.T) {
	dev := New(DefaultConfig(1 << 16))
	dev.WriteU64(0, 0xDEAD)
	dev.WriteU64(LineSize, 0xBEEF)
	dev.MarkLineDead(LineSize)

	if !dev.LineDead(Addr(LineSize + 7)) {
		t.Fatal("LineDead false for poisoned line")
	}
	if dev.LineDead(0) {
		t.Fatal("LineDead true for healthy line")
	}
	if got := dev.DeadLineCount(); got != 1 {
		t.Fatalf("DeadLineCount = %d", got)
	}
	if a, dead := dev.RangeDead(0, 2*LineSize); !dead || a != Addr(LineSize) {
		t.Fatalf("RangeDead = %#x, %v", uint64(a), dead)
	}
	if _, dead := dev.RangeDead(0, LineSize); dead {
		t.Fatal("RangeDead flagged a healthy range")
	}

	// Healthy lines still read.
	if got := dev.ReadU64(0); got != 0xDEAD {
		t.Fatalf("healthy read = %#x", got)
	}
	// Poisoned reads panic with the typed error.
	func() {
		defer func() {
			me, ok := recover().(*MediaError)
			if !ok {
				t.Fatal("read of dead line did not raise *MediaError")
			}
			if me.Addr != Addr(LineSize) {
				t.Fatalf("MediaError.Addr = %#x", uint64(me.Addr))
			}
		}()
		dev.ReadU64(Addr(LineSize))
	}()
	// A read spanning into the poisoned line panics too.
	func() {
		defer func() {
			if _, ok := recover().(*MediaError); !ok {
				t.Fatal("spanning read did not raise *MediaError")
			}
		}()
		buf := make([]byte, 16)
		dev.Read(Addr(LineSize-8), buf)
	}()

	// Raw Bytes views inside a recovery bracket are exempt: they model
	// scrub machinery reading around the ECC, and checksums catch the
	// scrambled contents.
	endScan := dev.BeginRecovery()
	_ = dev.Bytes(Addr(LineSize), 8)
	endScan()

	// Writes still land, and the line stays dead until cleared.
	dev.WriteU64(Addr(LineSize), 1)
	if !dev.LineDead(Addr(LineSize)) {
		t.Fatal("write cleared poison implicitly")
	}
	dev.ClearDeadLines()
	if dev.DeadLineCount() != 0 || dev.LineDead(Addr(LineSize)) {
		t.Fatal("ClearDeadLines left state behind")
	}
	if got := dev.ReadU64(Addr(LineSize)); got != 1 {
		t.Fatalf("post-clear read = %d", got)
	}
}

func TestFaultPlanApplyMarksDeadLines(t *testing.T) {
	dev := New(DefaultConfig(1 << 16))
	plan := (&FaultPlan{}).FlipBit(0, 0).KillLine(Addr(3 * LineSize))
	plan.Apply(dev)
	if dev.DeadLineCount() != 1 {
		t.Fatalf("DeadLineCount = %d, want 1 (bit flips are image-only)", dev.DeadLineCount())
	}
	if !dev.LineDead(Addr(3 * LineSize)) {
		t.Fatal("scheduled dead line not installed")
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultBitFlip:   "bit-flip",
		FaultTornStore: "torn-store",
		FaultDeadLine:  "dead-line",
		FaultKind(9):   "FaultKind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", uint8(k), got, want)
		}
	}
}
