package graph

import "testing"

func TestFromEdgesCSR(t *testing.T) {
	g := FromEdges(4, []int32{0, 0, 1, 2}, []int32{1, 2, 2, 3})
	if g.Edges() != 4 {
		t.Fatalf("Edges = %d", g.Edges())
	}
	if got := g.Neighbors(0); len(got) != 2 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.OutDegree(3) != 0 {
		t.Fatal("node 3 should have no out-edges")
	}
}

func TestRMATDeterministicAndInRange(t *testing.T) {
	g1 := RMAT(1000, 12000, 42)
	g2 := RMAT(1000, 12000, 42)
	if g1.Edges() != 12000 || g2.Edges() != 12000 {
		t.Fatal("edge count wrong")
	}
	for u := int32(0); u < 1000; u++ {
		n1, n2 := g1.Neighbors(u), g2.Neighbors(u)
		if len(n1) != len(n2) {
			t.Fatal("RMAT not deterministic")
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatal("RMAT not deterministic")
			}
			if n1[i] < 0 || n1[i] >= 1000 {
				t.Fatalf("edge target %d out of range", n1[i])
			}
		}
	}
}

func TestRMATDegreeSkew(t *testing.T) {
	g := RMAT(10000, 120000, 7)
	maxDeg := g.OutDegree(g.MaxDegreeNode())
	avg := float64(g.Edges()) / float64(g.N)
	if float64(maxDeg) < 5*avg {
		t.Fatalf("max degree %d vs average %.1f: R-MAT should be heavy-tailed", maxDeg, avg)
	}
}

func TestBFSLevels(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, 0 -> 2, 4 isolated.
	g := FromEdges(5, []int32{0, 1, 2, 0}, []int32{1, 2, 3, 2})
	levels, visited := BFS(g, 0)
	want := []int32{0, 1, 1, 2, -1}
	if visited != 4 {
		t.Fatalf("visited = %d, want 4", visited)
	}
	for i, w := range want {
		if levels[i] != w {
			t.Fatalf("level[%d] = %d, want %d", i, levels[i], w)
		}
	}
}

func TestBFSCoversRMATComponent(t *testing.T) {
	g := RMAT(5000, 60000, 3)
	src := g.MaxDegreeNode()
	_, visited := BFS(g, src)
	if visited < 100 {
		t.Fatalf("BFS from hub visited only %d nodes", visited)
	}
}
