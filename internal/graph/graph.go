// Package graph provides the graph substrate for the bfs workload. The
// paper runs breadth-first search over the Flickr crawl (0.82M nodes,
// 9.84M edges, Table 2), which is not redistributable; this package
// generates R-MAT graphs with the same scale and a Flickr-like skewed
// degree distribution (DESIGN.md §1). The graph itself is volatile — the
// paper reconstructs it from the dataset on each run — while the BFS
// frontier queue is the recoverable structure under test.
package graph

// Flickr-scale defaults (Table 2).
const (
	FlickrNodes = 820_000
	FlickrEdges = 9_840_000
)

// Graph is a directed graph in compressed sparse row form.
type Graph struct {
	N       int
	offsets []int32 // len N+1
	targets []int32 // len = edge count
}

// RMAT generates a directed R-MAT graph with the classic Graph500
// partition probabilities (a=0.57, b=0.19, c=0.19, d=0.05), which yield
// the heavy-tailed degree distribution of social-media graphs like Flickr.
func RMAT(nodes, edges int, seed uint64) *Graph {
	if nodes <= 0 || edges < 0 {
		panic("graph: non-positive dimensions")
	}
	// scale = ceil(log2(nodes))
	scale := 0
	for 1<<scale < nodes {
		scale++
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	srcs := make([]int32, 0, edges)
	dsts := make([]int32, 0, edges)
	for e := 0; e < edges; e++ {
		var u, v int
		for {
			u, v = 0, 0
			for bit := 0; bit < scale; bit++ {
				r := next() % 100
				// Quadrant probabilities 57/19/19/5.
				switch {
				case r < 57:
					// top-left: no bits set
				case r < 76:
					v |= 1 << bit
				case r < 95:
					u |= 1 << bit
				default:
					u |= 1 << bit
					v |= 1 << bit
				}
			}
			if u < nodes && v < nodes {
				break
			}
		}
		srcs = append(srcs, int32(u))
		dsts = append(dsts, int32(v))
	}
	return FromEdges(nodes, srcs, dsts)
}

// FromEdges builds a CSR graph from parallel edge lists.
func FromEdges(nodes int, srcs, dsts []int32) *Graph {
	if len(srcs) != len(dsts) {
		panic("graph: mismatched edge lists")
	}
	deg := make([]int32, nodes+1)
	for _, s := range srcs {
		deg[s+1]++
	}
	for i := 1; i <= nodes; i++ {
		deg[i] += deg[i-1]
	}
	targets := make([]int32, len(srcs))
	cursor := make([]int32, nodes)
	for i, s := range srcs {
		targets[deg[s]+cursor[s]] = dsts[i]
		cursor[s]++
	}
	return &Graph{N: nodes, offsets: deg, targets: targets}
}

// Edges returns the number of directed edges.
func (g *Graph) Edges() int { return len(g.targets) }

// Neighbors returns the out-neighbors of node u (shared slice; do not
// modify).
func (g *Graph) Neighbors(u int32) []int32 {
	return g.targets[g.offsets[u]:g.offsets[u+1]]
}

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u int32) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// MaxDegreeNode returns the node with the largest out-degree — a natural
// BFS source in a skewed graph.
func (g *Graph) MaxDegreeNode() int32 {
	best, bestDeg := int32(0), -1
	for u := int32(0); int(u) < g.N; u++ {
		if d := g.OutDegree(u); d > bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// BFS performs a volatile reference breadth-first search and returns the
// level of each node (-1 if unreachable) and the number of visited nodes.
// Workload code runs the same traversal over a recoverable queue and
// validates against this.
func BFS(g *Graph, src int32) (levels []int32, visited int) {
	levels = make([]int32, g.N)
	for i := range levels {
		levels[i] = -1
	}
	queue := make([]int32, 0, g.N)
	levels[src] = 0
	queue = append(queue, src)
	visited = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if levels[v] < 0 {
				levels[v] = levels[u] + 1
				visited++
				queue = append(queue, v)
			}
		}
	}
	return levels, visited
}
