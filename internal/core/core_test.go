package core

import (
	"encoding/binary"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/trace"
)

func newTestStore(t testing.TB) *Store {
	t.Helper()
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	s, err := newStore(pmem.New(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func key64(i uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func TestBasicMapOneFencePerOp(t *testing.T) {
	s := newTestStore(t)
	m, err := s.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	dev := s.Device()
	for i := uint64(0); i < 100; i++ {
		before := dev.Stats()
		m.Set(key64(i), []byte("value"))
		delta := dev.Stats().Sub(before)
		if delta.Fences != 1 {
			t.Fatalf("op %d used %d fences, want exactly 1 (§5.1)", i, delta.Fences)
		}
	}
	for i := uint64(0); i < 100; i++ {
		if _, ok := m.Get(key64(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestBasicLookupNoFlushNoFence(t *testing.T) {
	s := newTestStore(t)
	m, _ := s.Map("m")
	m.Set([]byte("k"), []byte("v"))
	dev := s.Device()
	before := dev.Stats()
	for i := 0; i < 50; i++ {
		m.Get([]byte("k"))
	}
	delta := dev.Stats().Sub(before)
	if delta.Flushes != 0 || delta.Fences != 0 {
		t.Fatalf("lookups used %d flushes / %d fences, want 0/0 (§6.4)", delta.Flushes, delta.Fences)
	}
}

func TestAllBasicHandles(t *testing.T) {
	s := newTestStore(t)

	st, _ := s.Stack("stack")
	st.Push(1)
	st.Push(2)
	if v, ok := st.Pop(); !ok || v != 2 {
		t.Fatalf("stack Pop = %d,%v", v, ok)
	}
	if v, ok := st.Peek(); !ok || v != 1 {
		t.Fatalf("stack Peek = %d,%v", v, ok)
	}

	q, _ := s.Queue("queue")
	q.Enqueue(10)
	q.Enqueue(20)
	if v, ok := q.Dequeue(); !ok || v != 10 {
		t.Fatalf("queue Dequeue = %d,%v", v, ok)
	}

	vec, _ := s.Vector("vec")
	for i := uint64(0); i < 100; i++ {
		vec.Push(i)
	}
	vec.Update(5, 500)
	if got := vec.Get(5); got != 500 {
		t.Fatalf("vector Get(5) = %d", got)
	}
	vec.Swap(0, 99)
	if vec.Get(0) != 99 || vec.Get(99) != 0 {
		t.Fatal("vector Swap failed")
	}

	set, _ := s.Set("set")
	set.Insert([]byte("x"))
	if !set.Contains([]byte("x")) || set.Contains([]byte("y")) {
		t.Fatal("set membership wrong")
	}
	if !set.Delete([]byte("x")) || set.Contains([]byte("x")) {
		t.Fatal("set delete failed")
	}

	m, _ := s.Map("map")
	m.Set([]byte("a"), []byte("1"))
	if !m.Delete([]byte("a")) || m.Len() != 0 {
		t.Fatal("map delete failed")
	}
}

func TestHandleRebindAfterReopen(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, err := newStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.Map("m")
	for i := uint64(0); i < 500; i++ {
		m.Set(key64(i), key64(i*2))
	}
	s.Sync() // make the final root swap durable
	img := dev.CrashImage(pmem.CrashFencedOnly, 1)

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2, _, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s2.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 500 {
		t.Fatalf("recovered Len = %d, want 500", m2.Len())
	}
	for i := uint64(0); i < 500; i += 41 {
		got, ok := m2.Get(key64(i))
		if !ok || binary.LittleEndian.Uint64(got) != i*2 {
			t.Fatalf("recovered key %d wrong", i)
		}
	}
}

func TestCrashMidFASEKeepsOldVersionAndReclaimsLeaks(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, _ := newStore(dev)
	m, _ := s.Map("m")
	for i := uint64(0); i < 100; i++ {
		m.Set(key64(i), []byte("stable"))
	}
	s.Sync()
	// Start an update but crash before commit: build the shadow only.
	shadow, _ := m.PureSet(key64(555), []byte("doomed"))
	_ = shadow
	img := dev.CrashImage(pmem.CrashEvictRandom, 7)

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2, rs, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LeakedBlocks == 0 {
		t.Fatal("interrupted FASE should leak blocks for recovery to sweep")
	}
	m2, _ := s2.Map("m")
	if m2.Len() != 100 {
		t.Fatalf("recovered Len = %d, want 100 (shadow must not be visible)", m2.Len())
	}
	if _, ok := m2.Get(key64(555)); ok {
		t.Fatal("uncommitted key visible after crash")
	}
}

func TestCrashAtEveryPointMapIsAtomic(t *testing.T) {
	// Failure injection: run N committed ops, then start op N+1 and crash
	// under the most adversarial eviction policy. Recovery must observe
	// either all of ops 1..N (commit durable) — never a partial op.
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := pmem.DefaultConfig(32 << 20)
		cfg.TrackDurable = true
		dev := pmem.New(cfg)
		s, _ := newStore(dev)
		m, _ := s.Map("m")
		committed := int(seed % 7)
		for i := 0; i < committed; i++ {
			m.Set(key64(uint64(i)), key64(uint64(i)))
		}
		s.Sync()
		// Interrupted operation: pure update flushed but not committed,
		// with a random subset of lines evicted.
		m.PureSet(key64(999), key64(999))
		img := dev.CrashImage(pmem.CrashEvictRandom, seed)

		dev2 := pmem.NewFromImage(pmem.DefaultConfig(32<<20), img)
		s2, _, err := openStore(dev2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m2, _ := s2.Map("m")
		if got := int(m2.Len()); got != committed {
			t.Fatalf("seed %d: recovered %d entries, want %d", seed, got, committed)
		}
		for i := 0; i < committed; i++ {
			if _, ok := m2.Get(key64(uint64(i))); !ok {
				t.Fatalf("seed %d: committed key %d lost", seed, i)
			}
		}
		// The recovered store must remain fully usable.
		m2.Set(key64(12345), []byte("post-recovery"))
		if _, ok := m2.Get(key64(12345)); !ok {
			t.Fatalf("seed %d: store unusable after recovery", seed)
		}
	}
}

func TestCompositionCommitSingleMultiUpdate(t *testing.T) {
	s := newTestStore(t)
	v, _ := s.Vector("v")
	for i := uint64(0); i < 50; i++ {
		v.Push(i)
	}
	dev := s.Device()
	before := dev.Stats()
	// Fig. 7b: swap via two pure updates and one commit.
	s.BeginFASE()
	a, b := v.Get(3), v.Get(44)
	s1 := v.PureUpdate(3, b)
	s2 := s1.Update(44, a)
	s.CommitSingle(v, s1, s2)
	s.EndFASE()
	delta := dev.Stats().Sub(before)
	if delta.Fences != 1 {
		t.Fatalf("multi-update FASE used %d fences, want 1", delta.Fences)
	}
	if v.Get(3) != b || v.Get(44) != a {
		t.Fatal("swap not applied")
	}
}

func TestCommitSiblingsAtomicAcrossMaps(t *testing.T) {
	s := newTestStore(t)
	p, err := s.Parent("manager", "cars", "flights", "rooms", "customers")
	if err != nil {
		t.Fatal(err)
	}
	cars, _ := p.Map("cars")
	customers, _ := p.Map("customers")

	dev := s.Device()
	before := dev.Stats()
	s.BeginFASE()
	carShadow, _ := cars.PureSet([]byte("car-1"), []byte("reserved"))
	custShadow, _ := customers.PureSet([]byte("alice"), []byte("car-1"))
	s.CommitSiblings(p,
		Update{DS: cars, Shadows: []Version{carShadow}},
		Update{DS: customers, Shadows: []Version{custShadow}},
	)
	s.EndFASE()
	delta := dev.Stats().Sub(before)
	if delta.Fences != 1 {
		t.Fatalf("CommitSiblings used %d fences, want 1 (Fig. 8c)", delta.Fences)
	}
	if _, ok := cars.Get([]byte("car-1")); !ok {
		t.Fatal("cars update lost")
	}
	if _, ok := customers.Get([]byte("alice")); !ok {
		t.Fatal("customers update lost")
	}
}

func TestCommitSiblingsCrashAtomicity(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, _ := newStore(dev)
	p, _ := s.Parent("mgr", "a", "b")
	ma, _ := p.Map("a")
	mb, _ := p.Map("b")
	ma.Set([]byte("k"), []byte("old-a"))
	mb.Set([]byte("k"), []byte("old-b"))
	s.Sync()

	// Crash after building both shadows but before the sibling commit.
	sa, _ := ma.PureSet([]byte("k"), []byte("new-a"))
	sb, _ := mb.PureSet([]byte("k"), []byte("new-b"))
	_, _ = sa, sb
	img := dev.CrashImage(pmem.CrashEvictRandom, 3)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2, _, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s2.Parent("mgr", "a", "b")
	ma2, _ := p2.Map("a")
	mb2, _ := p2.Map("b")
	va, _ := ma2.Get([]byte("k"))
	vb, _ := mb2.Get([]byte("k"))
	if string(va) != "old-a" || string(vb) != "old-b" {
		t.Fatalf("uncommitted sibling update visible: a=%q b=%q", va, vb)
	}
}

func TestCommitUnrelatedAtomic(t *testing.T) {
	s := newTestStore(t)
	v1, _ := s.Vector("v1")
	v2, _ := s.Vector("v2")
	for i := uint64(0); i < 10; i++ {
		v1.Push(i)
		v2.Push(100 + i)
	}
	// Fig. 7c: swap elements across two unrelated vectors.
	dev := s.Device()
	before := dev.Stats()
	s.BeginFASE()
	a, b := v1.Get(2), v2.Get(7)
	s1 := v1.PureUpdate(2, b)
	s2 := v2.PureUpdate(7, a)
	s.CommitUnrelated(
		Update{DS: v1, Shadows: []Version{s1}},
		Update{DS: v2, Shadows: []Version{s2}},
	)
	s.EndFASE()
	delta := dev.Stats().Sub(before)
	if v1.Get(2) != b || v2.Get(7) != a {
		t.Fatal("cross-structure swap not applied")
	}
	// The uncommon case pays extra ordering points (§5.1).
	if delta.Fences < 2 {
		t.Fatalf("CommitUnrelated used %d fences; expected the transaction's extra ordering", delta.Fences)
	}
}

func TestCommitUnrelatedCrashRollsBackPointerTx(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, _ := newStore(dev)
	v1, _ := s.Vector("v1")
	v2, _ := s.Vector("v2")
	v1.Push(1)
	v2.Push(2)

	// Simulate a crash in the middle of the pointer transaction: snapshot
	// the roots, write one pointer, then crash with everything persisted.
	s1 := v1.PurePush(10)
	_ = v2.PurePush(20)
	dev.Sfence()
	tx := s.tx
	tx.Begin()
	cell1 := s.heap.RootCellAddr(v1.location().slot)
	cell2 := s.heap.RootCellAddr(v2.location().slot)
	tx.Add(cell1, 8)
	tx.Add(cell2, 8)
	tx.WriteU64(cell1, uint64(s1.Addr()))
	// crash before writing cell2 / committing
	dev.FlushRange(cell1, 8)
	img := dev.CrashImage(pmem.CrashAllInflight, 5)

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2nd, _, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	v1b, _ := s2nd.Vector("v1")
	v2b, _ := s2nd.Vector("v2")
	if v1b.Len() != 1 || v2b.Len() != 1 {
		t.Fatalf("partial pointer tx visible: v1=%d v2=%d, want 1/1", v1b.Len(), v2b.Len())
	}
}

func TestParentFieldValidation(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Parent("p"); err == nil {
		t.Fatal("parent with no fields must fail")
	}
	p, err := s.Parent("p", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map("zzz"); err == nil {
		t.Fatal("unknown field must fail")
	}
	if _, err := s.Parent("p", "x"); err == nil {
		t.Fatal("field-count mismatch on reopen must fail")
	}
}

func TestTraceInvariantsHoldAcrossWorkout(t *testing.T) {
	// §5.4: record a full trace of a mixed MOD workload and verify the
	// checker finds no violations.
	rec := trace.NewRecorder()
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.Tracer = rec
	dev := pmem.New(cfg)
	s, err := newStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := s.Map("m")
	v, _ := s.Vector("v")
	q, _ := s.Queue("q")
	st, _ := s.Stack("st")
	for i := uint64(0); i < 200; i++ {
		m.Set(key64(i), key64(i))
		v.Push(i)
		q.Enqueue(i)
		st.Push(i)
	}
	for i := uint64(0); i < 100; i++ {
		q.Dequeue()
		st.Pop()
		v.Update(i, i+1)
		m.Delete(key64(i))
	}
	s.BeginFASE()
	s1 := v.PureUpdate(0, 42)
	s2 := s1.Update(1, 43)
	s.CommitSingle(v, s1, s2)
	s.EndFASE()

	violations := trace.Check(rec.Events(), s.CheckerConfig())
	if len(violations) != 0 {
		for i, viol := range violations {
			if i > 10 {
				break
			}
			t.Log(viol.Error())
		}
		t.Fatalf("%d trace invariant violations", len(violations))
	}
}

func TestRecoveryReclaimsAllLeaksToZeroWaste(t *testing.T) {
	// Leak-freedom (§5.3): after a crash with many half-built shadows,
	// recovery's live bytes must equal a freshly built store's live bytes.
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, _ := newStore(dev)
	m, _ := s.Map("m")
	for i := uint64(0); i < 300; i++ {
		m.Set(key64(i), key64(i))
	}
	s.Sync() // drain the reclamation quarantine before measuring
	liveBefore := s.Heap().Stats().LiveBytes

	for i := uint64(0); i < 10; i++ {
		m.PureSet(key64(1000+i), key64(i)) // abandoned shadows
	}
	img := dev.CrashImage(pmem.CrashEvictRandom, 11)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2, rs, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LeakedBlocks == 0 {
		t.Fatal("expected leaked blocks from abandoned shadows")
	}
	liveAfter := s2.Heap().Stats().LiveBytes
	if liveAfter != liveBefore {
		t.Fatalf("recovered live bytes %d != pre-crash committed live bytes %d", liveAfter, liveBefore)
	}
}
