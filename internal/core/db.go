package core

import (
	"fmt"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Unified open API. NewStore/OpenStore/NewShardedStore/OpenShardedStore
// grew up as four divergent entrypoints with incompatible signatures;
// anything generic — a server, an app, a test — had to care whether its
// store was sharded before it could bind a root. Open collapses them
// into one constructor configured by functional options, and the KV
// interface is the store-shape-agnostic surface both Store and
// ShardedStore (and the DB wrapper) satisfy: bind roots, batch, commit
// asynchronously, sync, close, read stats. cmd/modserver is written
// against KV and runs unchanged over one heap or sixteen.

// KV is the store-shape-agnostic interface over a MOD store: named-root
// binding for the five structures, group-commit batching, durability
// draining, shutdown, and device counters. *Store, *ShardedStore, and
// *DB all satisfy it.
type KV interface {
	// Map binds (creating on first use) a recoverable map under a named
	// root; Set, Vector, Stack, and Queue bind the other structures.
	Map(name string) (*Map, error)
	Set(name string) (*Set, error)
	Vector(name string) (*Vector, error)
	Stack(name string) (*Stack, error)
	Queue(name string) (*Queue, error)
	// Batch returns an empty group-commit batch; its CommitAsync
	// submits to the background committer and returns a durability
	// Ticket.
	Batch() Batcher
	// Sync drains every outstanding commit and fences: everything
	// acknowledged so far is durable on return.
	Sync()
	// Close shuts the store down idempotently (see Store.Close).
	Close() error
	// Stats returns the aggregate device counters.
	Stats() pmem.Stats
	// ForkKV derives a handle with its own simulated clock for a worker
	// goroutine, sharing all store state.
	ForkKV() KV
}

// Batcher is the common surface of *Batch and *ShardedBatch: deferred
// updates accumulated for one group commit, published synchronously
// (Commit) or through the background committer (CommitAsync). A Batcher
// is not safe for concurrent use.
type Batcher interface {
	MapSet(m *Map, key, val []byte)
	MapDelete(m *Map, key []byte)
	SetInsert(s *Set, key []byte)
	SetDelete(s *Set, key []byte)
	VectorPush(v *Vector, val uint64)
	VectorUpdate(v *Vector, i uint64, val uint64)
	StackPush(s *Stack, val uint64)
	StackPop(s *Stack)
	QueueEnqueue(q *Queue, val uint64)
	QueueDequeue(q *Queue)
	// Len returns the number of operations accumulated.
	Len() int
	// Commit publishes synchronously; CommitAsync submits to the
	// background committer and returns a durability ticket.
	Commit()
	CommitAsync() *Ticket
}

// Batch returns an empty group-commit batch as a Batcher.
func (s *Store) Batch() Batcher { return s.NewBatch() }

// Batch returns an empty cross-shard batch as a Batcher.
func (ss *ShardedStore) Batch() Batcher { return ss.NewBatch() }

// ForkKV derives a per-goroutine handle (see Fork) as a KV.
func (s *Store) ForkKV() KV { return s.Fork() }

// ForkKV derives a per-goroutine handle set (see Fork) as a KV.
func (ss *ShardedStore) ForkKV() KV { return ss.Fork() }

var (
	_ KV      = (*Store)(nil)
	_ KV      = (*ShardedStore)(nil)
	_ KV      = (*DB)(nil)
	_ Batcher = (*Batch)(nil)
	_ Batcher = (*ShardedBatch)(nil)
)

// options collects the Open configuration.
type options struct {
	shards          int  // 0 = unset (single-heap store)
	shardsSet       bool // WithShards was passed (even with a bad count)
	selective       bool
	checkpointEvery int
	nodeCache       bool
	images          [][]byte
	devices         []pmem.Backend
	attach          bool
	committer       bool
	committerMaxOps int
	committerLinger time.Duration
	verify          bool
	salvage         bool
}

// Option configures Open.
type Option func(*options)

// WithShards partitions the store across n fully independent heap
// regions (plus a small cross-shard metadata region). Without this
// option Open builds a single-heap store with no metadata region and
// exactly the plain Store's fence economy; WithShards(1) is a genuine
// one-shard ShardedStore (metadata region included), which is what a
// shard-count sweep's baseline point wants.
func WithShards(n int) Option {
	return func(o *options) {
		o.shards = n
		o.shardsSet = true
	}
}

// WithSelective makes the DB's binders create the selectively persisted
// flavor of each structure (DESIGN.md §10): DRAM-resident navigation
// over a minimal persistent core. checkpointEvery sets the record-chain
// folding interval (0 keeps the current process-wide default). Existing
// roots keep the flavor they were created with.
func WithSelective(checkpointEvery int) Option {
	return func(o *options) {
		o.selective = true
		o.checkpointEvery = checkpointEvery
	}
}

// WithNodeCache enables the DRAM node cache on every heap: committed
// navigation nodes are served at DRAM latency instead of PM read
// latency.
func WithNodeCache() Option { return func(o *options) { o.nodeCache = true } }

// WithExistingImages reopens a store from post-crash region images
// instead of formatting a fresh one: a single image reopens a
// single-heap store, and S+1 images (shards in order, metadata last —
// the layout DB.CrashImages produces) reopen a sharded store.
func WithExistingImages(imgs [][]byte) Option { return func(o *options) { o.images = imgs } }

// WithDevices builds the store over caller-supplied backends instead of
// fresh simulator devices from cfg: one backend gives a single-heap
// store, and N+1 backends give N shards plus the cross-shard metadata
// region (last, matching the WithExistingImages layout). This is how a
// store lands on a real medium — pass mmapdev devices and the identical
// stack runs over a file. The devices are formatted; combine with
// WithAttach to recover what is already on them instead. Mutually
// exclusive with WithExistingImages.
func WithDevices(devs ...pmem.Backend) Option {
	return func(o *options) { o.devices = devs }
}

// WithAttach makes Open recover the store already present on the
// WithDevices backends — reachability scan, manifest replay, optional
// verification — instead of formatting them. It is the device-handle
// analog of WithExistingImages and requires WithDevices.
func WithAttach() Option { return func(o *options) { o.attach = true } }

// WithVerify makes a recovered open walk every root eagerly, checking
// node checksums and line readability before the store serves anything
// (corrupt.go). Damaged roots are quarantined — binds to them return
// ErrCorrupted — and reported in RecoveryInfo.Damaged; healthy roots
// serve normally. Without this option a recovered store arms lazy
// verification instead: each checksummed node is re-verified on its
// first post-recovery read.
func WithVerify() Option { return func(o *options) { o.verify = true } }

// WithSalvage implies WithVerify and additionally repairs damaged
// selective roots before quarantining: the record chain is replayed
// when it verifies, or the root rolls back to its last verifying
// checkpoint (the dropped record count is reported per root in
// RecoveryInfo.Damaged). Roots that cannot be salvaged are quarantined
// as under WithVerify.
func WithSalvage() Option {
	return func(o *options) {
		o.verify = true
		o.salvage = true
	}
}

// WithCommitter starts the background group committer(s) immediately,
// so CommitAsync submissions from concurrent goroutines coalesce into
// shared fence epochs. maxOps caps the operations per epoch (0 uses
// DefaultCommitterMaxOps). Close stops them.
func WithCommitter(maxOps int) Option {
	return func(o *options) {
		o.committer = true
		o.committerMaxOps = maxOps
	}
}

// WithCommitterLinger sets the committers' settle-fence collection
// window (see Store.SetCommitterLinger): under request/response-paced
// load a few tens of microseconds of linger is what lets concurrent
// clients share fence epochs. Implies nothing unless a committer runs.
func WithCommitterLinger(d time.Duration) Option {
	return func(o *options) { o.committerLinger = d }
}

// RecoveryInfo reports what Open recovered. Zero-valued (Recovered
// false) for a freshly formatted store.
type RecoveryInfo struct {
	// Recovered is true when the store was reopened from images.
	Recovered bool
	// Stats totals the reachability recovery across all shards.
	Stats alloc.RecoveryStats
	// PerShard holds each shard's recovery stats in shard order (one
	// entry for a single-heap store).
	PerShard []alloc.RecoveryStats
	// ManifestReplayed reports whether a committed cross-shard manifest
	// was found and its root swaps re-executed.
	ManifestReplayed bool
	// Damaged lists the roots that failed verification when the store
	// was opened WithVerify/WithSalvage: salvaged roots serve normally
	// (minus any DroppedOps), unsalvaged ones are quarantined.
	Damaged []DamagedRoot
}

// DB is the handle Open returns: a KV over either a single-heap Store
// or a ShardedStore, with option-aware binders (WithSelective routes
// Map/Set/... to the Selective* flavors). Exactly one of Store() and
// Sharded() is non-nil, for callers that need the concrete API
// (Composition-interface commits, explicit shard placement, trace
// checking).
type DB struct {
	kv        KV // the wrapped *Store or *ShardedStore
	store     *Store
	sharded   *ShardedStore
	selective bool
}

// Open formats (or, with WithExistingImages, recovers) a MOD store and
// returns it wrapped as a DB. The zero option set gives a single-heap
// store on a fresh device built from cfg; WithShards(n) partitions it;
// WithExistingImages reopens a crashed one, with the recovery reported
// in the RecoveryInfo. The returned DB (and any nil DB from a failed
// open) is safe to Close and Sync in all cases.
func Open(cfg pmem.Config, opts ...Option) (*DB, RecoveryInfo, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	var info RecoveryInfo
	if o.shardsSet && o.shards < 1 {
		return nil, info, fmt.Errorf("core: open with %d shards: %w", o.shards, ErrShardCount)
	}
	if o.checkpointEvery > 0 {
		funcds.SetCheckpointEvery(uint64(o.checkpointEvery))
	}
	if len(o.devices) > 0 && o.images != nil {
		return nil, info, fmt.Errorf("core: WithDevices and WithExistingImages are mutually exclusive")
	}
	if o.attach && len(o.devices) == 0 {
		return nil, info, fmt.Errorf("core: WithAttach requires WithDevices")
	}
	db := &DB{selective: o.selective}
	switch {
	case len(o.devices) > 0:
		if err := openDevices(db, &info, &o); err != nil {
			return nil, info, err
		}
	case o.images == nil && o.shards == 0:
		s, err := newStore(pmem.New(cfg))
		if err != nil {
			return nil, info, err
		}
		db.store = s
	case o.images == nil:
		ss, err := newShardedStore(cfg, o.shards)
		if err != nil {
			return nil, info, err
		}
		db.sharded = ss
	case len(o.images) == 1:
		if o.shards > 1 {
			return nil, info, fmt.Errorf("core: open with %d shards from a single image: %w", o.shards, ErrShardCount)
		}
		vc := verifyConfig{verify: o.verify, salvage: o.salvage}
		var (
			s       *Store
			rs      alloc.RecoveryStats
			damaged []DamagedRoot
		)
		err := guardImageOpen(func() error {
			var oerr error
			s, rs, damaged, oerr = openStoreVerify(pmem.NewFromImage(cfg, o.images[0]), vc)
			return oerr
		})
		if err != nil {
			return nil, info, err
		}
		db.store = s
		info = RecoveryInfo{Recovered: true, Stats: rs, PerShard: []alloc.RecoveryStats{rs}, Damaged: damaged}
	default:
		if want := len(o.images) - 1; o.shards != 0 && o.shards != want {
			return nil, info, fmt.Errorf("core: open with %d shards from %d images (want %d shards): %w",
				o.shards, len(o.images), want, ErrShardCount)
		}
		vc := verifyConfig{verify: o.verify, salvage: o.salvage}
		var (
			ss      *ShardedStore
			srs     ShardedRecoveryStats
			damaged []DamagedRoot
		)
		err := guardImageOpen(func() error {
			var oerr error
			ss, srs, damaged, oerr = openShardedVerify(cfg, o.images, vc)
			return oerr
		})
		if err != nil {
			return nil, info, err
		}
		db.sharded = ss
		info = RecoveryInfo{
			Recovered:        true,
			Stats:            srs.Total(),
			PerShard:         srs.PerShard,
			ManifestReplayed: srs.ManifestReplayed,
			Damaged:          damaged,
		}
	}
	if db.store != nil {
		db.kv = db.store
	} else {
		db.kv = db.sharded
	}
	if o.nodeCache {
		db.EnableNodeCache()
	}
	if o.committer {
		if db.store != nil {
			db.store.StartGroupCommitter(o.committerMaxOps)
		} else {
			db.sharded.StartGroupCommitters(o.committerMaxOps)
		}
	}
	if o.committerLinger > 0 {
		db.SetCommitterLinger(o.committerLinger)
	}
	return db, info, nil
}

// openDevices handles the WithDevices arm of Open: format or attach,
// single-heap or sharded, over the caller's backends.
func openDevices(db *DB, info *RecoveryInfo, o *options) error {
	n := len(o.devices)
	if want := n - 1; o.shards != 0 && o.shards != want {
		return fmt.Errorf("core: open with %d shards over %d devices (want %d shards plus metadata): %w",
			o.shards, n, want, ErrShardCount)
	}
	vc := verifyConfig{verify: o.verify, salvage: o.salvage}
	switch {
	case !o.attach && n == 1:
		s, err := newStore(o.devices[0])
		if err != nil {
			return err
		}
		db.store = s
	case !o.attach:
		ss, err := newShardedDevices(o.devices[:n-1], o.devices[n-1])
		if err != nil {
			return err
		}
		db.sharded = ss
	case n == 1:
		var (
			s       *Store
			rs      alloc.RecoveryStats
			damaged []DamagedRoot
		)
		err := guardImageOpen(func() error {
			var oerr error
			s, rs, damaged, oerr = openStoreVerify(o.devices[0], vc)
			return oerr
		})
		if err != nil {
			return err
		}
		db.store = s
		*info = RecoveryInfo{Recovered: true, Stats: rs, PerShard: []alloc.RecoveryStats{rs}, Damaged: damaged}
	default:
		var (
			ss      *ShardedStore
			srs     ShardedRecoveryStats
			damaged []DamagedRoot
		)
		err := guardImageOpen(func() error {
			var oerr error
			ss, srs, damaged, oerr = openShardedDevices(o.devices[:n-1], o.devices[n-1], vc)
			return oerr
		})
		if err != nil {
			return err
		}
		db.sharded = ss
		*info = RecoveryInfo{
			Recovered:        true,
			Stats:            srs.Total(),
			PerShard:         srs.PerShard,
			ManifestReplayed: srs.ManifestReplayed,
			Damaged:          damaged,
		}
	}
	return nil
}

// SetCommitterLinger sets the settle-fence collection window on every
// committer (see Store.SetCommitterLinger).
func (db *DB) SetCommitterLinger(d time.Duration) {
	if db.store != nil {
		db.store.SetCommitterLinger(d)
		return
	}
	db.sharded.SetCommitterLinger(d)
}

// Store returns the wrapped single-heap store, or nil for a sharded DB.
func (db *DB) Store() *Store { return db.store }

// Sharded returns the wrapped sharded store, or nil for a single-heap
// DB.
func (db *DB) Sharded() *ShardedStore { return db.sharded }

// ShardCount returns the number of heap regions (1 for a single-heap
// store).
func (db *DB) ShardCount() int {
	if db.sharded != nil {
		return db.sharded.ShardCount()
	}
	return 1
}

// Fork derives a DB handle with per-goroutine clocks, sharing all store
// state.
func (db *DB) Fork() *DB {
	out := &DB{selective: db.selective}
	if db.store != nil {
		out.store = db.store.Fork()
		out.kv = out.store
	} else {
		out.sharded = db.sharded.Fork()
		out.kv = out.sharded
	}
	return out
}

// ForkKV derives a per-goroutine handle as a KV.
func (db *DB) ForkKV() KV { return db.Fork() }

// Map binds (creating on first use) a recoverable map — the selectively
// persisted flavor when the DB was opened WithSelective.
func (db *DB) Map(name string) (*Map, error) {
	if db.selective {
		if db.store != nil {
			return db.store.SelectiveMap(name)
		}
		return db.sharded.SelectiveMap(name)
	}
	return db.kv.Map(name)
}

// Set binds a recoverable set (selective flavor under WithSelective).
func (db *DB) Set(name string) (*Set, error) {
	if db.selective {
		if db.store != nil {
			return db.store.SelectiveSet(name)
		}
		return db.sharded.SelectiveSet(name)
	}
	return db.kv.Set(name)
}

// Vector binds a recoverable vector (selective flavor under
// WithSelective).
func (db *DB) Vector(name string) (*Vector, error) {
	if db.selective {
		if db.store != nil {
			return db.store.SelectiveVector(name)
		}
		return db.sharded.SelectiveVector(name)
	}
	return db.kv.Vector(name)
}

// Stack binds a recoverable stack (selective flavor under
// WithSelective).
func (db *DB) Stack(name string) (*Stack, error) {
	if db.selective {
		if db.store != nil {
			return db.store.SelectiveStack(name)
		}
		return db.sharded.SelectiveStack(name)
	}
	return db.kv.Stack(name)
}

// Queue binds a recoverable queue (selective flavor under
// WithSelective).
func (db *DB) Queue(name string) (*Queue, error) {
	if db.selective {
		if db.store != nil {
			return db.store.SelectiveQueue(name)
		}
		return db.sharded.SelectiveQueue(name)
	}
	return db.kv.Queue(name)
}

// Batch returns an empty group-commit batch.
func (db *DB) Batch() Batcher { return db.kv.Batch() }

// Sync drains every outstanding commit and fences. Nil-safe, so a
// deferred Sync after a failed Open is harmless.
func (db *DB) Sync() {
	if db == nil {
		return
	}
	db.kv.Sync()
}

// Close shuts the store down. Idempotent and nil-safe, so a deferred
// Close after a failed Open is harmless.
func (db *DB) Close() error {
	if db == nil {
		return nil
	}
	return db.kv.Close()
}

// Stats returns the aggregate device counters (summed across regions
// for a sharded DB).
func (db *DB) Stats() pmem.Stats { return db.kv.Stats() }

// EnableNodeCache turns on the DRAM node cache on every heap.
func (db *DB) EnableNodeCache() {
	if db.store != nil {
		db.store.EnableNodeCache()
		return
	}
	for i := 0; i < db.sharded.ShardCount(); i++ {
		db.sharded.Shard(i).EnableNodeCache()
	}
}

// CrashImages returns post-power-failure images of every region, in the
// layout WithExistingImages expects: one image for a single-heap DB,
// shard images in order plus the metadata region for a sharded DB.
// Requires Config.TrackDurable.
func (db *DB) CrashImages(policy pmem.CrashPolicy, seed uint64) [][]byte {
	if db.store != nil {
		return [][]byte{db.store.Device().CrashImage(policy, seed)}
	}
	return db.sharded.CrashImages(policy, seed)
}
