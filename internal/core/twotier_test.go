package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Tests for the two-tier commit path (optimistic.go): the typed
// concurrent-writer error, race-detector coverage of mixed Basic/Batch
// traffic on one root with exact fence accounting, and a crash-matrix
// sweep over both commit tiers' publication windows.

// TestErrConcurrentWriterTyped pins the Composition-interface contract:
// a commit whose base version went stale returns a wrapped
// ErrConcurrentWriter (errors.Is-able, not a panic), publishes nothing,
// and a rebound handle can rebuild and retry successfully.
func TestErrConcurrentWriterTyped(t *testing.T) {
	s := newTestStore(t)
	m, err := s.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	m.Set([]byte("k0"), []byte("v0"))

	s.BeginFASE()
	shadow, _ := m.PureSet([]byte("stale"), []byte("never-committed"))

	// A second logical writer moves the root between Pure* and Commit*.
	other := s.Fork()
	om, err := other.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	om.Set([]byte("intruder"), []byte("vi"))

	err = s.CommitSingle(m, shadow)
	s.EndFASE()
	if err == nil {
		t.Fatal("CommitSingle with a stale base succeeded, want ErrConcurrentWriter")
	}
	if !errors.Is(err, ErrConcurrentWriter) {
		t.Fatalf("errors.Is(err, ErrConcurrentWriter) = false for %v", err)
	}
	if _, ok := m.Get([]byte("stale")); ok {
		t.Fatal("failed commit leaked its shadow into the committed state")
	}
	if _, ok := m.Get([]byte("intruder")); !ok {
		t.Fatal("interfering writer's committed update lost")
	}

	// Recovery recipe from the error docs: rebind (adopting the current
	// committed version), rebuild the shadow, retry.
	m2, err := s.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	s.BeginFASE()
	shadow2, _ := m2.PureSet([]byte("stale"), []byte("retried"))
	if err := s.CommitSingle(m2, shadow2); err != nil {
		t.Fatalf("retry after rebind failed: %v", err)
	}
	s.EndFASE()
	if got, ok := m2.Get([]byte("stale")); !ok || string(got) != "retried" {
		t.Fatalf("retried commit not visible: %q, %v", got, ok)
	}
}

func subCommitStats(a, b CommitStats) CommitStats {
	return CommitStats{
		FastWins:       a.FastWins - b.FastWins,
		FastAborts:     a.FastAborts - b.FastAborts,
		FastLosses:     a.FastLosses - b.FastLosses,
		Combines:       a.Combines - b.Combines,
		CombineRetries: a.CombineRetries - b.CombineRetries,
		CombinedOps:    a.CombinedOps - b.CombinedOps,
		LockedCommits:  a.LockedCommits - b.LockedCommits,
	}
}

// TestConcurrentRootHammerFenceAccounting drives G goroutines at ONE
// shared map root through both write interfaces at once — Basic Sets
// (two-tier commit path) interleaved with explicit Batches (locked
// group-commit path) — and checks, exactly:
//
//   - no update is lost: every key written by any goroutine is present
//     with its last-written value (keys are per-goroutine, so last
//     writer is well defined);
//   - every Basic op committed through exactly one tier:
//     FastWins + CombinedOps + LockedCommits == total Basic ops;
//   - the device fence count equals the sum of paid-for ordering
//     points: one per CAS win, one per post-fence CAS loss, one per
//     combining round (a combined commit fences ONCE for all its ops),
//     one per lost-and-retried combining round, one per locked commit,
//     and one per batch. Pre-fence aborts are free by construction.
//
// Run under -race this is also the data-race certificate for the
// lock-free publication path.
func TestConcurrentRootHammerFenceAccounting(t *testing.T) {
	const (
		G  = 8  // goroutines
		M  = 40 // Basic Sets per goroutine
		B  = 6  // batches per goroutine
		BO = 4  // ops per batch
	)
	s := newTestStore(t)
	m, err := s.Map("hammer")
	if err != nil {
		t.Fatal(err)
	}
	s.Sync()
	dev := s.Device()
	statsBase := dev.Stats()
	commitBase := s.CommitStats()

	bkey := func(g, i int) []byte { return []byte(fmt.Sprintf("g%02d-basic-%04d", g, i)) }
	bval := func(g, i int) []byte { return []byte(fmt.Sprintf("bv-%02d-%04d", g, i)) }
	tkey := func(g, b, j int) []byte { return []byte(fmt.Sprintf("g%02d-batch-%02d-%02d", g, b, j)) }
	tval := func(g, b, j int) []byte { return []byte(fmt.Sprintf("tv-%02d-%02d-%02d", g, b, j)) }

	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			st := s.Fork()
			hm, err := st.Map("hammer")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < M; i++ {
				hm.Set(bkey(g, i), bval(g, i))
				// Overwrite the same key once in three to exercise
				// last-writer-wins on replacement, not just insertion.
				if i%3 == 0 {
					hm.Set(bkey(g, i), bval(g, i+1000))
				}
			}
			for b := 0; b < B; b++ {
				bt := st.NewBatch()
				for j := 0; j < BO; j++ {
					bt.MapSet(hm, tkey(g, b, j), tval(g, b, j))
				}
				bt.Commit()
			}
		}(g)
	}
	wg.Wait()

	delta := dev.Stats().Sub(statsBase)
	cs := subCommitStats(s.CommitStats(), commitBase)
	basicOps := uint64(G * (M + M/3 + 1)) // +1: i=0,3,...,39 is 14 overwrites per goroutine
	// Recompute exactly rather than trusting the comment arithmetic.
	basicOps = 0
	for i := 0; i < M; i++ {
		basicOps++
		if i%3 == 0 {
			basicOps++
		}
	}
	basicOps *= G

	if got := cs.FastWins + cs.CombinedOps + cs.LockedCommits; got != basicOps {
		t.Fatalf("commit tiers account for %d Basic ops (wins %d + combined %d + locked %d), want %d",
			got, cs.FastWins, cs.CombinedOps, cs.LockedCommits, basicOps)
	}
	wantFences := cs.FastWins + cs.FastLosses + cs.Combines + cs.CombineRetries +
		cs.LockedCommits + uint64(G*B)
	if delta.Fences != wantFences {
		t.Fatalf("device fences = %d, want %d (wins %d + losses %d + combines %d + combine-retries %d + locked %d + batches %d); aborts %d should be fence-free",
			delta.Fences, wantFences, cs.FastWins, cs.FastLosses, cs.Combines,
			cs.CombineRetries, cs.LockedCommits, G*B, cs.FastAborts)
	}

	for g := 0; g < G; g++ {
		for i := 0; i < M; i++ {
			want := bval(g, i)
			if i%3 == 0 {
				want = bval(g, i+1000)
			}
			if got, ok := m.Get(bkey(g, i)); !ok || string(got) != string(want) {
				t.Fatalf("g%d basic key %d: got %q, %v; want %q", g, i, got, ok, want)
			}
		}
		for b := 0; b < B; b++ {
			for j := 0; j < BO; j++ {
				if got, ok := m.Get(tkey(g, b, j)); !ok || string(got) != string(tval(g, b, j)) {
					t.Fatalf("g%d batch %d op %d: got %q, %v", g, b, j, got, ok)
				}
			}
		}
	}
	s.Sync()
}

// ---------------------------------------------------------------------
// Crash matrix over the two commit tiers.

func tierKey(i int) []byte { return []byte(fmt.Sprintf("tier-%03d", i)) }
func tierVal(i int) []byte { return []byte(fmt.Sprintf("val-%03d", i)) }

func tierDump(m *Map) string {
	var out []string
	m.Range(func(k, v []byte) bool {
		out = append(out, string(k)+"="+string(v))
		return true
	})
	sort.Strings(out)
	return strings.Join(out, ",")
}

// tierBuild opens a fresh store with mxPrefix committed entries, synced
// so a tracer installed afterwards indexes only the probed window.
func tierBuild(t *testing.T) (*pmem.Device, *Store, *Map) {
	t.Helper()
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, err := newStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Map("tier")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mxPrefix; i++ {
		m.Set(tierKey(i), tierVal(i))
	}
	s.Sync()
	return dev, s, m
}

// probeFast replays the window as mxProbe Basic Sets — uncontended, so
// every one publishes through the tier-1 optimistic CAS.
func probeFast(s *Store, m *Map) {
	for i := 0; i < mxProbe; i++ {
		m.Set(tierKey(mxPrefix+i), tierVal(mxPrefix+i))
	}
}

// probeCombined replays the window as one flat-combining round: mxProbe
// ops enrolled in the root's queue and drained by a single combiner, so
// all of them publish atomically under tier 2's single fence.
func probeCombined(t *testing.T, s *Store, m *Map) {
	t.Helper()
	fc := &s.sh.fc[m.loc.slot]
	var ops []*fcOp
	for i := 0; i < mxProbe; i++ {
		k, v := tierKey(mxPrefix+i), tierVal(mxPrefix+i)
		ops = append(ops, &fcOp{
			ds: m,
			apply: func(st *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
				next, _ := funcds.MapAt(st.heap, cur).WithEdit(ed).Set(k, v)
				return next.Addr()
			},
			ticket: &Ticket{done: make(chan struct{})},
		})
	}
	fc.mu.Lock()
	fc.pending = append(fc.pending, ops...)
	fc.mu.Unlock()
	if !fc.combining.CompareAndSwap(false, true) {
		t.Fatal("combining flag already set on a fresh store")
	}
	s.combine(fc)
	fc.combining.Store(false)
	for _, op := range ops {
		if !op.ticket.Done() {
			t.Fatal("combine returned with an unresolved ticket")
		}
	}
}

// TestCrashMatrixCommitTiers injects a crash at every PM-write index
// inside both commit tiers' publication windows and asserts recovery
// lands on a committed prefix. The fast-path rows may recover any
// per-op prefix of the window; the combined rows are all-or-nothing —
// one CAS publishes the whole merged version, so nothing between the
// old state and all mxProbe ops may ever be visible.
func TestCrashMatrixCommitTiers(t *testing.T) {
	tiers := []struct {
		name    string
		probe   func(t *testing.T, s *Store, m *Map)
		allowed func(prefixDump string, opDumps []string) map[string]bool
	}{
		{
			name:  "fastpath",
			probe: func(t *testing.T, s *Store, m *Map) { probeFast(s, m) },
			allowed: func(prefixDump string, opDumps []string) map[string]bool {
				ok := map[string]bool{prefixDump: true}
				for _, d := range opDumps {
					ok[d] = true
				}
				return ok
			},
		},
		{
			name:  "combined",
			probe: probeCombined,
			allowed: func(prefixDump string, opDumps []string) map[string]bool {
				return map[string]bool{
					prefixDump:              true,
					opDumps[len(opDumps)-1]: true,
				}
			},
		},
	}
	for _, tier := range tiers {
		t.Run(tier.name, func(t *testing.T) {
			// Dry run: count the window's PM writes and collect the
			// committed state after each op for the allowed set.
			dev, s, m := tierBuild(t)
			prefixDump := tierDump(m)
			var opDumps []string
			{
				// Per-op dumps come from a fast-path replay; the combined
				// tier reuses only the final one (all-or-nothing).
				_, s2, m2 := tierBuild(t)
				for i := 0; i < mxProbe; i++ {
					m2.Set(tierKey(mxPrefix+i), tierVal(mxPrefix+i))
					opDumps = append(opDumps, tierDump(m2))
				}
				_ = s2
			}
			writesBase := dev.Stats().Writes
			tier.probe(t, s, m)
			total := int(dev.Stats().Writes - writesBase)
			if total == 0 {
				t.Fatal("probe produced no PM writes")
			}
			allowed := tier.allowed(prefixDump, opDumps)

			for inj := 1; inj <= total; inj += mxInjectionStride() {
				dev, s, m := tierBuild(t)
				tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, 0xBEEF^uint64(inj))
				dev.SetTracer(tr)
				tier.probe(t, s, m)
				dev.SetTracer(nil)

				dev2 := pmem.NewFromImage(pmem.DefaultConfig(4<<20), tr.Image())
				s2, _, err := openStore(dev2)
				if err != nil {
					t.Fatalf("inj %d: recovery: %v", inj, err)
				}
				m2, err := s2.Map("tier")
				if err != nil {
					t.Fatalf("inj %d: rebind: %v", inj, err)
				}
				got := tierDump(m2)
				if !allowed[got] {
					t.Fatalf("inj %d/%d: recovered state is not a committed prefix:\n  got %q", inj, total, got)
				}
				// The recovered store must keep accepting both tiers.
				m2.Set([]byte("post"), []byte("ok"))
				if v, ok := m2.Get([]byte("post")); !ok || string(v) != "ok" {
					t.Fatalf("inj %d: recovered store lost a post-crash write", inj)
				}
				s2.Sync()
			}
		})
	}
}
