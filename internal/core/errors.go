package core

import "errors"

// Sentinel errors. Store operations wrap these with context via
// fmt.Errorf("...: %w", ...), so callers dispatch with errors.Is — the
// server layer (internal/server) maps them onto protocol error replies
// without string matching.
var (
	// ErrReservedRootName is returned when binding a datastructure under
	// a root name with the reserved "__mod_" prefix, which anchors the
	// store's own recovery machinery.
	ErrReservedRootName = errors.New("reserved root name")

	// ErrWrongRootKind is returned when binding a datastructure over a
	// root that already holds a different structure kind (e.g. a Vector
	// binder on a root created as a Map). Map and Set share the CHAMP
	// header layout and are interchangeable at this level.
	ErrWrongRootKind = errors.New("root holds a different structure kind")

	// ErrStoreClosed is returned by operations on a closed store: binds
	// after Close, and CommitAsync tickets submitted after Close resolve
	// with it instead of hanging.
	ErrStoreClosed = errors.New("store is closed")

	// ErrShardCount is returned for an invalid shard count (< 1), or
	// when reopening a sharded store from an image set whose region
	// count contradicts the requested shard count.
	ErrShardCount = errors.New("invalid shard count")

	// ErrCorrupted is returned (wrapped, usually inside a
	// *CorruptionError carrying the damaged root's coordinates) when
	// media damage is detected: a checksum mismatch, an unreadable line,
	// a malformed block header, or a truncated image. Operations on a
	// quarantined root keep returning it until the damage is repaired.
	ErrCorrupted = errors.New("corrupted data detected")

	// ErrConcurrentWriter is returned by Commit* when the base version a
	// shadow chain was built on is no longer the committed version — the
	// signature of two logical writers racing on one root through the
	// Composition interface, which requires one writer per root between
	// Pure* and Commit*. The commit publishes nothing; the caller should
	// rebuild its shadows from the current version and retry. (The Basic
	// interface never returns this: its optimistic commit path retries
	// internally.)
	ErrConcurrentWriter = errors.New("concurrent writer: base version is stale")
)
