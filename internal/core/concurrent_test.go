package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// TestConcurrentSnapshotsDuringCommits is the headline concurrency test:
// four reader goroutines continuously snapshot a map while one writer
// commits over a thousand FASEs. Snapshots must always observe a fully
// committed version — every preloaded key present, values never torn —
// and the run must be race-clean under -race.
func TestConcurrentSnapshotsDuringCommits(t *testing.T) {
	const (
		readers  = 4
		commits  = 1200
		preload  = 64
		perCheck = 8
	)
	s := newTestStore(t)
	m, err := s.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < preload; i++ {
		m.Set(key64(i), key64(i*3))
	}
	s.Sync()

	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		snapshot atomic.Int64 // snapshots taken, for the log line
		errs     = make(chan error, readers+1)
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			st := s.Fork()
			rm, err := st.Map("m")
			if err != nil {
				errs <- err
				return
			}
			var k uint64
			for !stop.Load() {
				snap := rm.Snapshot()
				if n := snap.Len(); n < preload {
					snap.Close()
					errs <- fmt.Errorf("reader %d: snapshot len %d < preload %d", r, n, preload)
					return
				}
				for j := 0; j < perCheck; j++ {
					k = (k + 7) % preload
					v, ok := snap.Get(key64(k))
					if !ok {
						snap.Close()
						errs <- fmt.Errorf("reader %d: preloaded key %d missing", r, k)
						return
					}
					// Preloaded keys are never overwritten by the writer
					// (it writes keys >= preload), so the value must be
					// exactly the preloaded one in every version.
					if len(v) != 8 {
						snap.Close()
						errs <- fmt.Errorf("reader %d: torn value for key %d: %x", r, k, v)
						return
					}
				}
				snap.Close()
				snapshot.Add(1)
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		st := s.Fork()
		wm, err := st.Map("m")
		if err != nil {
			errs <- err
			return
		}
		for i := uint64(0); i < commits; i++ {
			wm.Set(key64(preload+i%512), key64(i))
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	t.Logf("%d snapshots observed across %d commits", snapshot.Load(), commits)

	// After the storm: all preloaded keys intact, retired versions
	// reclaimable once the readers have unpinned.
	s.Sync()
	for i := uint64(0); i < preload; i++ {
		if _, ok := m.Get(key64(i)); !ok {
			t.Fatalf("preloaded key %d lost", i)
		}
	}
	if q := s.Heap().Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after Sync with no pinned readers, want 0", q)
	}
}

// TestParallelWritersDistinctRoots checks that writers to different roots
// commit in parallel without corrupting each other: every written key is
// present afterwards and the heap's view survives recovery.
func TestParallelWritersDistinctRoots(t *testing.T) {
	const (
		writers = 4
		ops     = 300
	)
	s := newTestStore(t)
	// Bind all roots up front so the test exercises commits, not binds.
	for w := 0; w < writers; w++ {
		if _, err := s.Map(fmt.Sprintf("root-%d", w)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := s.Fork()
			m, err := st.Map(fmt.Sprintf("root-%d", w))
			if err != nil {
				errs <- err
				return
			}
			for i := uint64(0); i < ops; i++ {
				m.Set(key64(i), key64(uint64(w)<<32|i))
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Sync()
	for w := 0; w < writers; w++ {
		m, _ := s.Map(fmt.Sprintf("root-%d", w))
		if m.Len() != ops {
			t.Fatalf("root-%d has %d entries, want %d", w, m.Len(), ops)
		}
		for i := uint64(0); i < ops; i++ {
			if _, ok := m.Get(key64(i)); !ok {
				t.Fatalf("root-%d key %d missing", w, i)
			}
		}
	}
}

// TestConcurrentWritersSameRootSerialize checks the per-root commit mutex:
// Basic-interface writers racing on one root must not lose updates,
// because each update reloads the committed version under the lock.
func TestConcurrentWritersSameRootSerialize(t *testing.T) {
	const (
		writers = 4
		ops     = 200
	)
	s := newTestStore(t)
	if _, err := s.Map("shared"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := s.Fork()
			m, err := st.Map("shared")
			if err != nil {
				t.Error(err)
				return
			}
			for i := uint64(0); i < ops; i++ {
				// Disjoint key ranges: a lost update would show as a
				// missing key.
				m.Set(key64(uint64(w)*ops+i), key64(i))
			}
		}(w)
	}
	wg.Wait()
	s.Sync()
	m, _ := s.Map("shared")
	if m.Len() != writers*ops {
		t.Fatalf("shared map has %d entries, want %d (lost updates)", m.Len(), writers*ops)
	}
}

// TestConcurrentBindSameRoot races first-time binds of one name; exactly
// one create must win and all handles must observe the same structure.
func TestConcurrentBindSameRoot(t *testing.T) {
	s := newTestStore(t)
	const n = 8
	var wg sync.WaitGroup
	maps := make([]*Map, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := s.Fork()
			m, err := st.Map("contended")
			if err != nil {
				t.Error(err)
				return
			}
			maps[i] = m
		}(i)
	}
	wg.Wait()
	s.Sync()
	maps[0].Set([]byte("k"), []byte("v"))
	for i := 1; i < n; i++ {
		snap := maps[i].Snapshot()
		if _, ok := snap.Get([]byte("k")); !ok {
			t.Fatalf("handle %d bound to a different structure", i)
		}
		snap.Close()
	}
}

// TestSnapshotSurvivesReclaim pins a snapshot, then commits enough FASEs
// to recycle the snapshot's version many times over were it not pinned;
// the snapshot must stay fully readable throughout.
func TestSnapshotSurvivesReclaim(t *testing.T) {
	s := newTestStore(t)
	m, _ := s.Map("m")
	const preload = 32
	for i := uint64(0); i < preload; i++ {
		m.Set(key64(i), key64(i+1000))
	}
	s.Sync()

	snap := m.Snapshot()
	for i := uint64(0); i < 500; i++ {
		m.Set(key64(i%preload), key64(i)) // overwrite the snapshot's entries
	}
	s.Sync()
	// The pinned snapshot still sees the old values.
	for i := uint64(0); i < preload; i++ {
		v, ok := snap.Get(key64(i))
		if !ok {
			t.Fatalf("pinned snapshot lost key %d", i)
		}
		var want [8]byte
		copy(want[:], key64(i+1000))
		if string(v) != string(want[:]) {
			t.Fatalf("pinned snapshot key %d changed: got %x", i, v)
		}
	}
	pinned := s.Heap().Stats().Quarantine
	if pinned == 0 {
		t.Fatal("expected retired blocks held by the pinned snapshot")
	}
	snap.Close()
	s.Sync()
	if q := s.Heap().Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after Close+Sync, want 0", q)
	}
}

// TestCommitUnrelatedCrashAtomicAcrossSeeds interrupts the
// CommitUnrelated pointer transaction mid-flight and crashes with
// adversarial line eviction across many seeds; recovery must always roll
// the transaction back so neither root shows the new version.
func TestCommitUnrelatedCrashAtomicAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := pmem.DefaultConfig(16 << 20)
		cfg.TrackDurable = true
		dev := pmem.New(cfg)
		s, err := newStore(dev)
		if err != nil {
			t.Fatal(err)
		}
		v1, _ := s.Vector("v1")
		v2, _ := s.Vector("v2")
		v1.Push(1)
		v2.Push(2)

		// Build both shadows, then hand-run the pointer transaction and
		// crash after the first root write but before commit — the
		// interruption window of Fig. 8d.
		s1 := v1.PurePush(10)
		s2 := v2.PurePush(20)
		dev.Sfence()
		tx := s.tx
		tx.Begin()
		cell1 := s.heap.RootCellAddr(v1.location().slot)
		cell2 := s.heap.RootCellAddr(v2.location().slot)
		tx.Add(cell1, 8)
		tx.Add(cell2, 8)
		tx.WriteU64(cell1, uint64(s1.Addr()))
		_ = s2
		dev.FlushRange(cell1, 8)
		img := dev.CrashImage(pmem.CrashEvictRandom, seed)

		dev2 := pmem.NewFromImage(pmem.DefaultConfig(16<<20), img)
		s2nd, _, err := openStore(dev2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		v1b, _ := s2nd.Vector("v1")
		v2b, _ := s2nd.Vector("v2")
		if v1b.Len() != 1 || v2b.Len() != 1 {
			t.Fatalf("seed %d: partial pointer tx visible after recovery: v1=%d v2=%d, want 1/1",
				seed, v1b.Len(), v2b.Len())
		}
		if v1b.Get(0) != 1 || v2b.Get(0) != 2 {
			t.Fatalf("seed %d: recovered values corrupted", seed)
		}
	}
}

// TestCommitUnrelatedCompletedSurvivesCrash is the other half: once the
// transaction has committed, a crash must preserve both new versions.
func TestCommitUnrelatedCompletedSurvivesCrash(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, _ := newStore(dev)
	v1, _ := s.Vector("v1")
	v2, _ := s.Vector("v2")
	v1.Push(1)
	v2.Push(2)
	s.BeginFASE()
	s1 := v1.PurePush(10)
	s2 := v2.PurePush(20)
	s.CommitUnrelated(Update{DS: v1, Shadows: []Version{s1}}, Update{DS: v2, Shadows: []Version{s2}})
	s.EndFASE()

	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	s2nd, _, err := openStore(dev2)
	if err != nil {
		t.Fatal(err)
	}
	v1b, _ := s2nd.Vector("v1")
	v2b, _ := s2nd.Vector("v2")
	if v1b.Len() != 2 || v2b.Len() != 2 {
		t.Fatalf("committed tx lost: v1=%d v2=%d, want 2/2", v1b.Len(), v2b.Len())
	}
}

// TestConcurrentMixedStructures runs writers over all five structure
// kinds at once with readers snapshotting each, as a broad race sweep.
func TestConcurrentMixedStructures(t *testing.T) {
	s := newTestStore(t)
	m, _ := s.Map("m")
	vec, _ := s.Vector("vec")
	st, _ := s.Stack("st")
	q, _ := s.Queue("q")
	set, _ := s.Set("set")
	m.Set([]byte("seed"), []byte("x"))
	vec.Push(1)
	st.Push(1)
	q.Enqueue(1)
	set.Insert([]byte("seed"))
	s.Sync()

	const ops = 150
	var writerWG, readerWG sync.WaitGroup
	run := func(wg *sync.WaitGroup, fn func(st *Store)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(s.Fork())
		}()
	}
	run(&writerWG, func(fs *Store) {
		m, _ := fs.Map("m")
		for i := uint64(0); i < ops; i++ {
			m.Set(key64(i), key64(i))
		}
	})
	run(&writerWG, func(fs *Store) {
		v, _ := fs.Vector("vec")
		for i := uint64(0); i < ops; i++ {
			v.Push(i)
		}
	})
	run(&writerWG, func(fs *Store) {
		st, _ := fs.Stack("st")
		for i := uint64(0); i < ops; i++ {
			st.Push(i)
			if i%3 == 0 {
				st.Pop()
			}
		}
	})
	run(&writerWG, func(fs *Store) {
		q, _ := fs.Queue("q")
		for i := uint64(0); i < ops; i++ {
			q.Enqueue(i)
			if i%3 == 0 {
				q.Dequeue()
			}
		}
	})
	run(&writerWG, func(fs *Store) {
		set, _ := fs.Set("set")
		for i := uint64(0); i < ops; i++ {
			set.Insert(key64(i))
		}
	})
	// One reader cycling over every structure kind.
	var stop atomic.Bool
	run(&readerWG, func(fs *Store) {
		m, _ := fs.Map("m")
		vec, _ := fs.Vector("vec")
		st, _ := fs.Stack("st")
		q, _ := fs.Queue("q")
		set, _ := fs.Set("set")
		for !stop.Load() {
			ms := m.Snapshot()
			ms.Get([]byte("seed"))
			ms.Close()
			vs := vec.Snapshot()
			if vs.Len() > 0 {
				vs.Get(0)
			}
			vs.Close()
			ss := st.Snapshot()
			ss.Peek()
			ss.Close()
			qs := q.Snapshot()
			qs.Peek()
			qs.Close()
			es := set.Snapshot()
			es.Contains([]byte("seed"))
			es.Close()
		}
	})
	writerWG.Wait()
	stop.Store(true)
	readerWG.Wait()
	s.Sync()
	if m2, _ := s.Map("m"); m2.Len() < ops {
		t.Fatalf("map lost entries: %d < %d", m2.Len(), ops)
	}
}
