package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func newBatchTestStore(t *testing.T) (*pmem.Device, *Store) {
	t.Helper()
	dev := pmem.New(pmem.DefaultConfig(64 << 20))
	st, err := newStore(dev)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	return dev, st
}

func bkey(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestBatchSingleRootOneFence(t *testing.T) {
	dev, st := newBatchTestStore(t)
	m, err := st.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	st.Sync()

	const n = 64
	base := dev.Stats()
	b := st.NewBatch()
	for i := 0; i < n; i++ {
		b.MapSet(m, bkey(i), bkey(i*7))
	}
	if b.Len() != n {
		t.Fatalf("batch len = %d, want %d", b.Len(), n)
	}
	b.Commit()
	d := dev.Stats().Sub(base)

	if d.Fences != 1 {
		t.Errorf("single-root batch of %d ops used %d fences, want 1", n, d.Fences)
	}
	if d.Batches != 1 || d.BatchedOps != n {
		t.Errorf("batch accounting = %d batches / %d ops, want 1 / %d", d.Batches, d.BatchedOps, n)
	}
	if got := m.Len(); got != n {
		t.Fatalf("map has %d entries after batch, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := m.Get(bkey(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*7) {
			t.Fatalf("key %d lost or corrupt after batch commit", i)
		}
	}
	if b.Len() != 0 {
		t.Errorf("batch not emptied by Commit")
	}
}

func TestBatchMultiRootThreeFences(t *testing.T) {
	dev, st := newBatchTestStore(t)
	m, _ := st.Map("m")
	q, _ := st.Queue("q")
	v, _ := st.Vector("v")
	st.Sync()

	base := dev.Stats()
	b := st.NewBatch()
	for i := 0; i < 30; i++ {
		switch i % 3 {
		case 0:
			b.MapSet(m, bkey(i), bkey(i))
		case 1:
			b.QueueEnqueue(q, uint64(i))
		case 2:
			b.VectorPush(v, uint64(i))
		}
	}
	b.Commit()
	d := dev.Stats().Sub(base)

	if d.Fences != 3 {
		t.Errorf("multi-root batch used %d fences, want 3", d.Fences)
	}
	if m.Len() != 10 || q.Len() != 10 || v.Len() != 10 {
		t.Fatalf("batch results: map=%d queue=%d vector=%d, want 10 each", m.Len(), q.Len(), v.Len())
	}
}

func TestBatchNoOpAndChaining(t *testing.T) {
	dev, st := newBatchTestStore(t)
	m, _ := st.Map("m")
	m.Set(bkey(1), []byte("one"))
	st.Sync()

	// A batch of pure no-ops publishes nothing and needs no fence.
	base := dev.Stats()
	b := st.NewBatch()
	b.MapDelete(m, bkey(404))
	b.Commit()
	if d := dev.Stats().Sub(base); d.Fences != 0 {
		t.Errorf("no-op batch used %d fences, want 0", d.Fences)
	}

	// Chained updates to one key within a batch: last write wins, the
	// intermediate shadows are retired.
	b = st.NewBatch()
	b.MapSet(m, bkey(2), []byte("a"))
	b.MapSet(m, bkey(2), []byte("b"))
	b.MapDelete(m, bkey(1))
	b.Commit()
	if v, ok := m.Get(bkey(2)); !ok || string(v) != "b" {
		t.Fatalf("chained batch: key 2 = %q, %v; want \"b\"", v, ok)
	}
	if _, ok := m.Get(bkey(1)); ok {
		t.Fatalf("chained batch: key 1 still present after batched delete")
	}
}

func TestBatchParentBoundPanics(t *testing.T) {
	_, st := newBatchTestStore(t)
	p, err := st.Parent("p", "left", "right")
	if err != nil {
		t.Fatal(err)
	}
	m, err := p.Map("left")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("batched update of a parent-bound structure did not panic")
		}
	}()
	st.NewBatch().MapSet(m, bkey(1), bkey(1))
}

// TestBatchConcurrentWriters drives many goroutines committing batches —
// some to private roots, some to a shared root — interleaved with
// Basic-interface writers, and checks nothing is lost (run with -race).
func TestBatchConcurrentWriters(t *testing.T) {
	_, st := newBatchTestStore(t)
	const (
		writers  = 4
		batches  = 30
		batchLen = 8
	)
	shared, err := st.Map("shared")
	if err != nil {
		t.Fatal(err)
	}
	st.Sync()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := st.Fork()
			own, err := h.Map(fmt.Sprintf("own-%d", w))
			if err != nil {
				t.Error(err)
				return
			}
			sh, err := h.Map("shared")
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < batches; i++ {
				b := h.NewBatch()
				for j := 0; j < batchLen; j++ {
					k := i*batchLen + j
					b.MapSet(own, bkey(k), bkey(k))
					b.MapSet(sh, bkey(w*1_000_000+k), bkey(k))
				}
				b.Commit()
				// Interleave a Basic-interface FASE on the shared root.
				sh.Set(bkey(w*1_000_000+500_000+i), bkey(i))
			}
		}(w)
	}
	wg.Wait()
	st.Sync()

	wantOwn := uint64(batches * batchLen)
	for w := 0; w < writers; w++ {
		m, err := st.Map(fmt.Sprintf("own-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Len(); got != wantOwn {
			t.Errorf("own-%d has %d entries, want %d", w, got, wantOwn)
		}
	}
	wantShared := uint64(writers * (batches*batchLen + batches))
	if got := shared.Len(); got != wantShared {
		t.Errorf("shared map has %d entries, want %d", got, wantShared)
	}
}

// TestBatchAsyncCommitter exercises the background pipeline: concurrent
// producers submit batches, tickets resolve durable, Sync drains.
func TestBatchAsyncCommitter(t *testing.T) {
	dev, st := newBatchTestStore(t)
	cfgMaps := make([]*Map, 3)
	for i := range cfgMaps {
		m, err := st.Map(fmt.Sprintf("async-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		cfgMaps[i] = m
	}
	st.Sync()
	st.StartGroupCommitter(64)
	defer st.StopGroupCommitter()

	const producers = 3
	const perProducer = 40
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := st.Fork()
			m, err := h.Map(fmt.Sprintf("async-%d", p))
			if err != nil {
				t.Error(err)
				return
			}
			var last *Ticket
			for i := 0; i < perProducer; i++ {
				b := h.NewBatch()
				b.MapSet(m, bkey(i), bkey(i*3))
				b.MapSet(m, bkey(100_000+i), bkey(i))
				last = b.CommitAsync()
			}
			last.Wait()
			if !last.Done() {
				t.Error("ticket Wait returned but Done is false")
			}
		}(p)
	}
	wg.Wait()
	st.Sync()

	for p, m := range cfgMaps {
		if got := m.Len(); got != 2*perProducer {
			t.Errorf("async-%d has %d entries, want %d", p, got, 2*perProducer)
		}
	}
	if s := dev.Stats(); s.Batches == 0 || s.BatchedOps < producers*perProducer*2 {
		t.Errorf("committer accounting: %d batches / %d ops", s.Batches, s.BatchedOps)
	}

	// A stopped committer degrades CommitAsync to sync-with-fence.
	st.StopGroupCommitter()
	b := st.NewBatch()
	b.MapSet(cfgMaps[0], bkey(999), bkey(999))
	tk := b.CommitAsync()
	tk.Wait()
	if _, ok := cfgMaps[0].Get(bkey(999)); !ok {
		t.Error("CommitAsync without committer lost the update")
	}
}

// TestBatchCrashAllOrNothing injects power failures at every stage of a
// multi-root batch commit — while shadows build, between the record
// fences, mid root-swap — across many seeds, and checks recovery sees
// the batch atomically: the map and queue both have it, or neither does.
func TestBatchCrashAllOrNothing(t *testing.T) {
	sawCommitted, sawDropped := false, false
	for seed := uint64(1); seed <= 60; seed++ {
		committed, err := runBatchCrashRound(t, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if committed {
			sawCommitted = true
		} else {
			sawDropped = true
		}
	}
	if !sawCommitted || !sawDropped {
		t.Errorf("crash points not diverse: committed=%v dropped=%v", sawCommitted, sawDropped)
	}
}

func runBatchCrashRound(t *testing.T, seed uint64) (batchCommitted bool, err error) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	st, err := newStore(dev)
	if err != nil {
		return false, err
	}
	m, _ := st.Map("m")
	q, _ := st.Queue("q")

	pre := int(seed % 20)
	for i := 0; i < pre; i++ {
		b := st.NewBatch()
		b.MapSet(m, bkey(i), bkey(i*3))
		b.QueueEnqueue(q, uint64(i))
		b.Commit()
	}
	st.Sync()

	// Inject the crash a pseudorandom number of PM writes into the final
	// batch (shadow building + publication together are a few hundred
	// writes; the modulus spreads crash points across all stages).
	tr := pmem.NewCrashCountdown(dev, 1+int(seed*37%240), pmem.CrashEvictRandom, seed)
	dev.SetTracer(tr)
	b := st.NewBatch()
	b.MapSet(m, bkey(7777), []byte("batched"))
	b.QueueEnqueue(q, 7777)
	b.MapSet(m, bkey(7778), []byte("batched2"))
	b.Commit()
	dev.SetTracer(nil)
	img := tr.Image()
	if img == nil {
		// Commit finished before the countdown: crash right after.
		img = dev.CrashImage(pmem.CrashEvictRandom, seed)
	}

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	st2, _, err := openStore(dev2)
	if err != nil {
		return false, fmt.Errorf("recovery: %w", err)
	}
	m2, _ := st2.Map("m")
	q2, _ := st2.Queue("q")

	_, mapHas := m2.Get(bkey(7777))
	_, mapHas2 := m2.Get(bkey(7778))
	if mapHas != mapHas2 {
		return false, fmt.Errorf("batch torn within map root: key 7777=%v 7778=%v", mapHas, mapHas2)
	}
	queueHas := int(q2.Len()) == pre+1
	if !queueHas && int(q2.Len()) != pre {
		return false, fmt.Errorf("queue has %d entries, want %d or %d", q2.Len(), pre, pre+1)
	}
	if mapHas != queueHas {
		return false, fmt.Errorf("batch torn across roots: map committed=%v queue committed=%v", mapHas, queueHas)
	}
	wantMap := uint64(pre)
	if mapHas {
		wantMap += 2
	}
	if got := m2.Len(); got != wantMap {
		return false, fmt.Errorf("map has %d entries, want %d", got, wantMap)
	}
	for i := 0; i < pre; i++ {
		v, ok := m2.Get(bkey(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
			return false, fmt.Errorf("pre-batch key %d lost or corrupt", i)
		}
	}
	// The recovered store must stay fully usable, including batching.
	nb := st2.NewBatch()
	nb.MapSet(m2, bkey(424242), []byte("post"))
	nb.QueueEnqueue(q2, 424242)
	nb.Commit()
	if _, ok := m2.Get(bkey(424242)); !ok {
		return false, fmt.Errorf("store unusable after recovery")
	}
	return mapHas, nil
}

// TestBatchRecordStaleStatusRejected forges the record-reuse hazard: a
// stale committed status word durable over a body checksummed for a
// different sequence number. Recovery must refuse to replay — the body's
// root swaps belong to a batch that already completed, and replaying
// them would roll back a later commit onto a released version.
func TestBatchRecordStaleStatusRejected(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	st, err := newStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := st.Map("a")
	q, _ := st.Queue("b")
	b := st.NewBatch()
	b.MapSet(m, bkey(1), []byte("v1"))
	b.QueueEnqueue(q, 1)
	b.Commit() // multi-root: fills the record body under sequence 1
	st.Sync()
	m.Set(bkey(1), []byte("v2")) // supersedes (and releases) the batch's map version
	st.Sync()

	// Forge a durable committed status that does not match the retired
	// body's checksummed sequence number.
	dev.WriteU64(st.batchRec, 4242)
	dev.Clwb(st.batchRec)
	dev.Sfence()

	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	st2, _, err := openStore(dev2)
	if err != nil {
		t.Fatalf("recovery after stale status: %v", err)
	}
	m2, _ := st2.Map("a")
	if v, ok := m2.Get(bkey(1)); !ok || string(v) != "v2" {
		t.Fatalf("stale batch record replayed: key 1 = %q, %v; want \"v2\"", v, ok)
	}
	q2, _ := st2.Queue("b")
	if q2.Len() != 1 {
		t.Fatalf("queue has %d entries after recovery, want 1", q2.Len())
	}
}

// TestBatchSyncBarrier: Sync with an active committer must drain queued
// batches before returning.
func TestBatchSyncBarrier(t *testing.T) {
	_, st := newBatchTestStore(t)
	m, _ := st.Map("m")
	st.StartGroupCommitter(0)
	defer st.StopGroupCommitter()
	for i := 0; i < 100; i++ {
		b := st.NewBatch()
		b.MapSet(m, bkey(i), bkey(i))
		b.CommitAsync()
	}
	st.Sync()
	if got := m.Len(); got != 100 {
		t.Fatalf("after Sync map has %d entries, want 100", got)
	}
}
