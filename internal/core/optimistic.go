package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Two-tier commit path for Basic-interface updates (DESIGN.md §12).
//
// Tier 1 — optimistic CAS publication. A writer snapshots the committed
// root pointer without locking, builds its shadow version in its own
// edit run, fences, and publishes with an 8-byte compare-and-swap on the
// root cell. Writers on one root build their shadows in parallel; only
// the CAS itself serializes. A loser retires its shadow chain through
// the existing EBR and retries.
//
// Tier 2 — flat combining. A writer that keeps losing the CAS (or that
// sees a combiner already active) enrolls its pending operation in the
// root's combining queue. One writer elects itself combiner, drains the
// queue, applies every pending op on one shared edit context against one
// base version, and commits the merged version with a single flush+
// sfence epoch — contention amortizes fences (fences/op = 1/B for a
// B-op combine) instead of queueing them.
//
// Safety against the lock-based commit paths (Commit*, Batch, binds,
// sharded manifests): those hold the root's mutex from base-version read
// to publication, and the CAS here briefly takes the same mutex, so a
// CAS can never land between a locked path's read and its SetRoot.
//
// Reclamation: a winner releases the version it replaced with
// Heap.ReleaseDeferred — the decrement-and-cascade runs only after the
// EBR grace period, because a concurrent optimistic builder may have
// based its shadow on that version and still be retaining children out
// of it. Losing shadow chains were never published and are released
// eagerly.

// rootOp applies one deferred Basic-interface update against a root's
// then-current version inside the given edit context, returning the new
// version's address (cur itself for a no-op). It must be replayable: a
// CAS retry or a flat combiner may apply it several times, each time
// against a fresh base; only the final application's captured results
// survive. This is the same shape as batchOp.apply.
type rootOp func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr

// addrVersion adapts a bare version address to the Version interface for
// the locked commit path.
type addrVersion pmem.Addr

func (a addrVersion) Addr() pmem.Addr { return pmem.Addr(a) }

// casAttempts is K, the number of optimistic publication attempts before
// a writer enrolls in the root's flat-combining queue. Failed pre-checks
// (root moved before the fence was paid) count as attempts.
const casAttempts = 2

// fcOp is one enrolled operation awaiting a combiner. Its Ticket resolves
// once a combiner has applied and published the op.
type fcOp struct {
	ds     Datastructure
	apply  rootOp
	ticket *Ticket
}

// fcRoot is one root's flat-combining state.
type fcRoot struct {
	mu        sync.Mutex
	pending   []*fcOp
	combining atomic.Bool
	busyUntil float64 // combiner sim-time watermark; guarded by combining ownership
}

// commitCounters tracks which tier commits take, for the fence-accounting
// tests and the contention sweep's BENCH columns.
type commitCounters struct {
	fastWins       atomic.Uint64 // optimistic CAS publications
	fastAborts     atomic.Uint64 // pre-fence aborts: root moved before the fence was paid
	fastLosses     atomic.Uint64 // post-fence CAS failures
	combines       atomic.Uint64 // combining rounds that published (or merged to a no-op)
	combineRetries atomic.Uint64 // combining rounds that lost their CAS and re-applied
	combinedOps    atomic.Uint64 // operations drained by combiners
	lockedCommits  atomic.Uint64 // mutex-path Basic commits (baseline mode, parent-bound)
}

// CommitStats is a snapshot of the two-tier commit path's counters.
type CommitStats struct {
	// FastWins counts updates published by a first- or second-try CAS.
	FastWins uint64
	// FastAborts counts optimistic attempts abandoned before paying the
	// commit fence because the root had already moved.
	FastAborts uint64
	// FastLosses counts optimistic attempts that paid the commit fence
	// and then lost the CAS.
	FastLosses uint64
	// Combines counts flat-combining rounds that committed.
	Combines uint64
	// CombineRetries counts combining rounds that lost their publication
	// CAS to a racing lock-path commit and re-applied.
	CombineRetries uint64
	// CombinedOps counts operations drained and applied by combiners;
	// CombinedOps/Combines is the achieved fence amortization.
	CombinedOps uint64
	// LockedCommits counts Basic updates committed under the per-root
	// mutex: every update in mutex-commit (baseline) mode, and all
	// parent-bound updates.
	LockedCommits uint64
}

// CommitStats returns a snapshot of the commit-tier counters, shared by
// all handles of the store.
func (s *Store) CommitStats() CommitStats {
	c := &s.sh.cstats
	return CommitStats{
		FastWins:       c.fastWins.Load(),
		FastAborts:     c.fastAborts.Load(),
		FastLosses:     c.fastLosses.Load(),
		Combines:       c.combines.Load(),
		CombineRetries: c.combineRetries.Load(),
		CombinedOps:    c.combinedOps.Load(),
		LockedCommits:  c.lockedCommits.Load(),
	}
}

// SetMutexCommit switches every Basic-interface update onto the legacy
// per-root-mutex commit path (true) or the two-tier optimistic path
// (false, the default). The mutex path is kept as the measurable
// baseline for the contention sweep; both paths are linearizable.
func (s *Store) SetMutexCommit(on bool) { s.sh.mutexCommit.Store(on) }

// chargeSerial models a mutually exclusive critical section in simulated
// time. Simulated clocks are per-goroutine and a Go mutex wait costs no
// simulated nanoseconds, so back-to-back critical sections on different
// handles would otherwise overlap in simulated time — a serialized
// baseline would appear to scale. The caller (holding whatever real lock
// protects until) advances its clock to the watermark left by the
// previous holder, and the returned closure records its own exit time.
func (s *Store) chargeSerial(until *float64) func() {
	if now := s.dev.LocalNs(); now < *until {
		s.dev.ChargeCompute(*until - now)
	}
	return func() {
		if now := s.dev.LocalNs(); now > *until {
			*until = now
		}
	}
}

// update routes one Basic-interface operation through the two-tier
// commit path: optimistic CAS publication, then flat-combining fallback.
// Parent-bound structures and mutex-commit (baseline) mode keep the
// serialized locked path.
func (s *Store) update(ds Datastructure, apply rootOp) {
	loc := ds.location()
	if loc.parent != nil || s.sh.mutexCommit.Load() {
		s.updateLocked(ds, apply)
		return
	}
	fc := &s.sh.fc[loc.slot]
	for i := 0; i < casAttempts; i++ {
		if fc.combining.Load() {
			break // a combiner is active: join it instead of fighting the CAS
		}
		if s.tryOptimistic(loc.slot, ds, apply) {
			return
		}
	}
	s.enroll(fc, ds, apply)
}

// updateLocked is the legacy tier: lock the root, reload the committed
// version, apply, commit. Kept for parent-bound structures (sibling
// fields share one committed pointer, so per-field CAS would race the
// parent shadow build) and as the contention baseline.
func (s *Store) updateLocked(ds Datastructure, apply rootOp) {
	loc := ds.location()
	mu := s.lockFor(loc)
	mu.Lock()
	defer mu.Unlock()
	wslot := loc.slot
	if loc.parent != nil {
		wslot = loc.parent.slot
	}
	defer s.chargeSerial(&s.sh.serial[wslot])()
	cur := s.resolveLocked(loc)
	ds.adopt(cur)
	s.BeginFASE()
	ed := s.heap.BeginEdit()
	final := apply(s, ed, cur)
	ed.Seal()
	if final != cur {
		if err := s.commitSingleLocked(ds, []Version{addrVersion(final)}); err != nil {
			// The root is locked and the base was just reloaded: a stale
			// base here is a bookkeeping bug, not a user race.
			panic(err)
		}
		s.sh.cstats.lockedCommits.Add(1)
	}
	s.EndFASE()
}

// tryOptimistic is one tier-1 attempt: build the shadow against an
// unlocked snapshot of the root, fence, CAS-publish. Returns false if
// the attempt lost (shadow retired, caller retries or enrolls). The
// epoch pin brackets the whole attempt, so the base version — even once
// superseded and release-deferred by a winner — cannot be cascaded or
// recycled while this builder still retains children out of it.
func (s *Store) tryOptimistic(slot int, ds Datastructure, apply rootOp) bool {
	g := s.heap.Enter()
	defer g.Exit()
	old := s.heap.Root(slot)
	s.BeginFASE()
	ed := s.heap.BeginEdit()
	final := apply(s, ed, old)
	ed.Seal()
	if final == old {
		s.EndFASE()
		ds.adopt(old)
		return true // no-op update: nothing to publish, no fence
	}
	if s.heap.Root(slot) != old {
		// The root already moved: the CAS is doomed, so abort before
		// paying the fence. Keeping doomed fences off the device is what
		// holds fences/op at W>1 to the W=1 level.
		s.EndFASE()
		s.heap.Release(final)
		s.sh.cstats.fastAborts.Add(1)
		return false
	}
	crown := s.maybeCheckpoint(final)
	s.commitBegin()
	s.heap.Fence() // the FASE's single ordering point
	s.clearCrown(crown)
	won := s.casPublish(slot, old, final)
	s.commitEnd()
	s.EndFASE()
	if !won {
		s.heap.Release(final) // never published: eager retire is safe
		s.sh.cstats.fastLosses.Add(1)
		return false
	}
	s.sh.cstats.fastWins.Add(1)
	s.heap.ReleaseDeferred(old)
	ds.adopt(final)
	return true
}

// casPublish performs the publication CAS under the root's commit mutex.
// The lock is held only for the 8-byte compare-and-swap — shadow builds
// stay lock-free — but it orders the CAS against lock-based commit paths
// that hold the mutex from base read to SetRoot, so neither tier can
// publish inside the other's read-to-publish window.
func (s *Store) casPublish(slot int, old, final pmem.Addr) bool {
	mu := &s.sh.rootMu[slot]
	mu.Lock()
	won := s.heap.CasRoot(slot, old, final)
	mu.Unlock()
	return won
}

// enroll is tier 2: queue the op on the root's flat-combining list, then
// either become the combiner or wait for one to apply the op.
func (s *Store) enroll(fc *fcRoot, ds Datastructure, apply rootOp) {
	op := &fcOp{ds: ds, apply: apply, ticket: &Ticket{done: make(chan struct{})}}
	fc.mu.Lock()
	fc.pending = append(fc.pending, op)
	fc.mu.Unlock()
	for {
		if op.ticket.Done() {
			return
		}
		if fc.combining.CompareAndSwap(false, true) {
			s.combine(fc)
			fc.combining.Store(false)
			if op.ticket.Done() {
				return
			}
			continue // enqueued after the drain cut: combine again
		}
		runtime.Gosched()
	}
}

// combine drains the pending queue and commits every drained op in one
// merged publication. Exactly one goroutine runs combine per root at a
// time (the combining flag); its simulated time is serialized through
// the root's watermark so combining rounds never overlap in sim time.
func (s *Store) combine(fc *fcRoot) {
	fc.mu.Lock()
	batch := fc.pending
	fc.pending = nil
	fc.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	defer s.chargeSerial(&fc.busyUntil)()
	slot := batch[0].ds.location().slot
	for !s.combineAttempt(slot, batch) {
		s.sh.cstats.combineRetries.Add(1)
	}
	s.sh.cstats.combines.Add(1)
	s.sh.cstats.combinedOps.Add(uint64(len(batch)))
	for _, op := range batch {
		close(op.ticket.done)
	}
}

// combineAttempt applies every drained op against one base version on
// one shared edit context and publishes the merged final with a single
// flush+sfence epoch — the same fence amortization as a Batch, earned
// from contention instead of from the caller batching explicitly. A lost
// CAS (a racing lock-path commit; other optimistic writers are enrolled
// here while combining is set) retires the merged chain and reports
// false for a retry against the new base.
func (s *Store) combineAttempt(slot int, batch []*fcOp) bool {
	g := s.heap.Enter()
	defer g.Exit()
	old := s.heap.Root(slot)
	s.BeginFASE()
	ed := s.heap.BeginEdit()
	cur := old
	var intermediates []pmem.Addr
	for _, op := range batch {
		next := op.apply(s, ed, cur)
		if next == cur {
			continue // no-op, or in-place update on the edit-owned shadow
		}
		if cur != old {
			intermediates = append(intermediates, cur)
		}
		cur = next
	}
	ed.Seal()
	if cur == old {
		// Every op merged to a no-op: nothing to publish, no fence.
		s.EndFASE()
		for _, op := range batch {
			op.ds.adopt(old)
		}
		return true
	}
	crown := s.maybeCheckpoint(cur)
	s.commitBegin()
	s.heap.Fence() // one ordering point for the whole combined epoch
	s.clearCrown(crown)
	won := s.casPublish(slot, old, cur)
	s.commitEnd()
	s.EndFASE()
	if !won {
		for _, a := range intermediates {
			s.heap.Release(a)
		}
		s.heap.Release(cur)
		return false
	}
	for _, a := range intermediates {
		s.heap.Release(a) // never published: eager retire is safe
	}
	s.heap.ReleaseDeferred(old)
	s.dev.NoteBatch(len(batch))
	for _, op := range batch {
		op.ds.adopt(cur)
	}
	return true
}
