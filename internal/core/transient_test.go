package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// Tests for the edit-context (transient) path through the store: batched
// FASEs build one in-place-mutable shadow per root (DESIGN.md §8), so
// these pin (a) end-to-end correctness against a volatile model, (b) the
// copy/flush elision the path exists for, and (c) that unpublished edit
// nodes never leak into recovered state when a crash lands mid-edit.

func TestTransientBatchMatchesModel(t *testing.T) {
	_, st := newBatchTestStore(t)
	m, err := st.Map("model-map")
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Vector("model-vec")
	if err != nil {
		t.Fatal(err)
	}

	model := map[string]string{}
	var vec []uint64
	seed := uint64(0xfeed)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for _, batchSize := range []int{1, 3, 17, 64} {
		b := st.NewBatch()
		for i := 0; i < 200; i++ {
			switch next() % 4 {
			case 0, 1:
				k := fmt.Sprintf("k%03d", next()%100)
				val := fmt.Sprintf("v%x", next())
				b.MapSet(m, []byte(k), []byte(val))
				model[k] = val
			case 2:
				k := fmt.Sprintf("k%03d", next()%100)
				b.MapDelete(m, []byte(k))
				delete(model, k)
			case 3:
				x := next()
				b.VectorPush(v, x)
				vec = append(vec, x)
			}
			if b.Len() >= batchSize {
				b.Commit()
			}
		}
		b.Commit()

		if got := int(m.Len()); got != len(model) {
			t.Fatalf("batch=%d: map len %d, model %d", batchSize, got, len(model))
		}
		for k, want := range model {
			got, ok := m.Get([]byte(k))
			if !ok || string(got) != want {
				t.Fatalf("batch=%d: key %q = %q/%v, want %q", batchSize, k, got, ok, want)
			}
		}
		if got := int(v.Len()); got != len(vec) {
			t.Fatalf("batch=%d: vector len %d, model %d", batchSize, got, len(vec))
		}
		for i, want := range vec {
			if got := v.Get(uint64(i)); got != want {
				t.Fatalf("batch=%d: vec[%d] = %d, want %d", batchSize, i, got, want)
			}
		}
	}
}

// TestTransientBatchElidesWork pins the perf mechanism end to end: the
// same 128 updates cost >= 2x fewer flushes and node copies through one
// 64-op-per-FASE batch than as per-op FASEs, and the elision counters
// move.
func TestTransientBatchElidesWork(t *testing.T) {
	run := func(batchSize int) (flushes, copies, elided uint64) {
		dev, st := newBatchTestStore(t)
		m, err := st.Map("m")
		if err != nil {
			t.Fatal(err)
		}
		v, err := st.Vector("v")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			m.Set(bkey(i), bkey(i))
			v.Push(uint64(i))
		}
		st.Sync()
		s0 := dev.Stats()
		a0 := st.Heap().Stats().Allocs
		b := st.NewBatch()
		for i := 0; i < 128; i++ {
			if i&1 == 0 {
				b.MapSet(m, bkey(i%96), bkey(i*7))
			} else {
				b.VectorPush(v, uint64(i))
			}
			if b.Len() >= batchSize {
				b.Commit()
			}
		}
		b.Commit()
		d := dev.Stats().Sub(s0)
		return d.Flushes, st.Heap().Stats().Allocs - a0, d.CopiesElided
	}
	perOpFlushes, perOpCopies, _ := run(1)
	batchFlushes, batchCopies, batchElided := run(64)
	if batchFlushes*2 > perOpFlushes {
		t.Errorf("flushes: batch %d vs per-op %d, want >= 2x elision", batchFlushes, perOpFlushes)
	}
	if batchCopies*2 > perOpCopies {
		t.Errorf("copies: batch %d vs per-op %d, want >= 2x elision", batchCopies, perOpCopies)
	}
	if batchElided == 0 {
		t.Error("CopiesElided did not move under a 64-op batch")
	}
}

// TestTransientCrashMidEditNeverLeaks lands crashes at every early write
// of a batched FASE — squarely inside the edit, before the publish fence
// can run — and proves recovery returns exactly the pre-batch state with
// the edit's unpublished nodes swept as leaks, never reachable.
func TestTransientCrashMidEditNeverLeaks(t *testing.T) {
	sawLeaks := false
	for countdown := 1; countdown <= 120; countdown += 7 {
		cfg := pmem.DefaultConfig(64 << 20)
		cfg.TrackDurable = true
		dev := pmem.New(cfg)
		st, err := newStore(dev)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := st.Map("m")
		v, _ := st.Vector("v")
		for i := 0; i < 10; i++ {
			b := st.NewBatch()
			b.MapSet(m, bkey(i), bkey(i*3))
			b.VectorPush(v, uint64(i))
			b.Commit()
		}
		st.Sync()

		tr := pmem.NewCrashCountdown(dev, countdown, pmem.CrashEvictRandom, uint64(countdown))
		dev.SetTracer(tr)
		b := st.NewBatch()
		for i := 0; i < 32; i++ {
			b.MapSet(m, bkey(1000+i), []byte("edit"))
			b.VectorPush(v, uint64(2000+i))
		}
		b.Commit()
		dev.SetTracer(nil)
		img := tr.Image()
		if img == nil {
			t.Fatalf("countdown %d: crash landed past the batch", countdown)
		}

		dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
		st2, rs, err := openStore(dev2)
		if err != nil {
			t.Fatalf("countdown %d: recovery: %v", countdown, err)
		}
		m2, _ := st2.Map("m")
		v2, _ := st2.Vector("v")

		// All-or-nothing per batch; with the crash inside the edit (well
		// before publication) the batch must be entirely absent.
		committed := false
		if _, ok := m2.Get(bkey(1000)); ok {
			committed = true
		}
		if committed {
			t.Fatalf("countdown %d: batch visible after a mid-edit crash", countdown)
		}
		if got := m2.Len(); got != 10 {
			t.Fatalf("countdown %d: map len %d, want 10", countdown, got)
		}
		if got := v2.Len(); got != 10 {
			t.Fatalf("countdown %d: vector len %d, want 10", countdown, got)
		}
		for i := 0; i < 10; i++ {
			if _, ok := m2.Get(bkey(i)); !ok {
				t.Fatalf("countdown %d: pre-batch key %d lost", countdown, i)
			}
			if got := v2.Get(uint64(i)); got != uint64(i) {
				t.Fatalf("countdown %d: pre-batch vec[%d] = %d", countdown, i, got)
			}
		}
		if rs.LeakedBlocks > 0 {
			sawLeaks = true
		}
		// The recovered store stays usable through the edit path.
		nb := st2.NewBatch()
		for i := 0; i < 8; i++ {
			nb.MapSet(m2, bkey(500+i), []byte("post"))
		}
		nb.Commit()
		if _, ok := m2.Get(bkey(507)); !ok {
			t.Fatalf("countdown %d: store unusable after recovery", countdown)
		}
	}
	if !sawLeaks {
		t.Error("no crash point left edit allocations to sweep — countdowns too late?")
	}
}

// TestTransientConcurrentReadersDuringEdits runs snapshot readers against
// a writer committing batched edits; under -race this doubles as the
// proof that in-place edit mutation never touches published state.
func TestTransientConcurrentReadersDuringEdits(t *testing.T) {
	_, st := newBatchTestStore(t)
	m, err := st.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		m.Set(bkey(i), bkey(i))
	}
	st.Sync()

	const rounds = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			h := st.Fork()
			mr, err := h.Map("m")
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := mr.Snapshot()
				n := uint64(0)
				snap.Range(func(k, v []byte) bool { n++; return true })
				if n != snap.Len() {
					t.Errorf("reader %d: snapshot Range saw %d, Len %d", r, n, snap.Len())
					snap.Close()
					return
				}
				snap.Close()
			}
		}(r)
	}

	w := st.Fork()
	mw, err := w.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		b := w.NewBatch()
		for j := 0; j < 16; j++ {
			b.MapSet(mw, bkey((i*16+j)%64), bkey(i))
		}
		b.Commit()
	}
	close(stop)
	wg.Wait()
	if got := m.Len(); got < 32 {
		t.Errorf("map shrank to %d", got)
	}
}
