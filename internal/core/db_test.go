package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func dbConfig() pmem.Config {
	cfg := pmem.DefaultConfig(16 << 20)
	cfg.TrackDurable = true
	return cfg
}

// TestOpenSingleRoundtrip covers the single-heap Open path: fresh open,
// writes, crash, reopen via WithExistingImages.
func TestOpenSingleRoundtrip(t *testing.T) {
	db, info, err := Open(dbConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info.Recovered {
		t.Fatal("fresh open reported Recovered")
	}
	if db.Store() == nil || db.Sharded() != nil || db.ShardCount() != 1 {
		t.Fatal("single open did not wrap a plain Store")
	}
	m, err := db.Map("users")
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	m.Set([]byte("ada"), []byte("lovelace"))
	db.Sync()
	imgs := db.CrashImages(pmem.CrashFencedOnly, 1)
	if len(imgs) != 1 {
		t.Fatalf("single CrashImages returned %d images", len(imgs))
	}

	db2, info2, err := Open(dbConfig(), WithExistingImages(imgs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !info2.Recovered || len(info2.PerShard) != 1 {
		t.Fatalf("reopen info = %+v, want Recovered with 1 shard entry", info2)
	}
	m2, err := db2.Map("users")
	if err != nil {
		t.Fatalf("map after reopen: %v", err)
	}
	if v, ok := m2.Get([]byte("ada")); !ok || string(v) != "lovelace" {
		t.Fatalf("lost committed write: %q %v", v, ok)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestOpenShardedRoundtrip covers the sharded Open path, including the
// image-count-driven shard inference on reopen.
func TestOpenShardedRoundtrip(t *testing.T) {
	db, _, err := Open(dbConfig(), WithShards(4), WithCommitter(0))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if db.Sharded() == nil || db.ShardCount() != 4 {
		t.Fatal("sharded open did not wrap a ShardedStore")
	}
	maps := make([]*Map, 8)
	for i := range maps {
		m, err := db.Map(fmt.Sprintf("kv:%d", i))
		if err != nil {
			t.Fatalf("map %d: %v", i, err)
		}
		maps[i] = m
	}
	b := db.Batch()
	for i, m := range maps {
		b.MapSet(m, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	tk := b.CommitAsync()
	tk.Wait()
	if err := tk.Err(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	imgs := db.CrashImages(pmem.CrashFencedOnly, 1)
	if len(imgs) != 5 {
		t.Fatalf("sharded CrashImages returned %d images, want 5", len(imgs))
	}

	db2, info, err := Open(dbConfig(), WithExistingImages(imgs))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	if !info.Recovered || len(info.PerShard) != 4 || db2.ShardCount() != 4 {
		t.Fatalf("reopen info = %+v shards = %d", info, db2.ShardCount())
	}
	for i := 0; i < 8; i++ {
		m, err := db2.Map(fmt.Sprintf("kv:%d", i))
		if err != nil {
			t.Fatalf("map %d after reopen: %v", i, err)
		}
		if _, ok := m.Get([]byte(fmt.Sprintf("k%d", i))); !ok {
			t.Fatalf("lost acked batch write k%d", i)
		}
	}
	db.Close()
}

// TestOpenOptionsSmoke exercises WithSelective and WithNodeCache through
// a crash roundtrip: selective structures must rebuild their volatile
// navigation on reopen.
func TestOpenOptionsSmoke(t *testing.T) {
	db, _, err := Open(dbConfig(), WithSelective(8), WithNodeCache())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	v, err := db.Vector("log")
	if err != nil {
		t.Fatalf("vector: %v", err)
	}
	for i := uint64(0); i < 50; i++ {
		v.Push(i)
	}
	db.Sync()
	imgs := db.CrashImages(pmem.CrashFencedOnly, 7)

	db2, _, err := Open(dbConfig(), WithExistingImages(imgs), WithSelective(8))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	v2, err := db2.Vector("log")
	if err != nil {
		t.Fatalf("vector after reopen: %v", err)
	}
	if v2.Len() != 50 {
		t.Fatalf("selective vector lost entries: len %d", v2.Len())
	}
	db.Close()
}

// TestOpenShardCountErrors pins the ErrShardCount cases.
func TestOpenShardCountErrors(t *testing.T) {
	if _, _, err := Open(dbConfig(), WithShards(0)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("WithShards(0): %v, want ErrShardCount", err)
	}
	db, _, err := Open(dbConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	imgs := db.CrashImages(pmem.CrashFencedOnly, 1)
	db.Close()
	if _, _, err := Open(dbConfig(), WithExistingImages(imgs), WithShards(4)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("4 shards from one image: %v, want ErrShardCount", err)
	}

	sdb, _, err := Open(dbConfig(), WithShards(2))
	if err != nil {
		t.Fatalf("sharded open: %v", err)
	}
	simgs := sdb.CrashImages(pmem.CrashFencedOnly, 1)
	sdb.Close()
	if _, _, err := Open(dbConfig(), WithExistingImages(simgs), WithShards(3)); !errors.Is(err, ErrShardCount) {
		t.Fatalf("3 shards from 2-shard images: %v, want ErrShardCount", err)
	}
	if db2, _, err := Open(dbConfig(), WithExistingImages(simgs)); err != nil {
		t.Fatalf("shard inference from images failed: %v", err)
	} else {
		if db2.ShardCount() != 2 {
			t.Fatalf("inferred %d shards, want 2", db2.ShardCount())
		}
		db2.Close()
	}
}

// TestSentinelErrors pins errors.Is dispatch for the root-binding
// failures the server layer maps onto protocol errors.
func TestSentinelErrors(t *testing.T) {
	db, _, err := Open(dbConfig())
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer db.Close()
	if _, err := db.Map("__mod_internal"); !errors.Is(err, ErrReservedRootName) {
		t.Fatalf("reserved name: %v, want ErrReservedRootName", err)
	}
	if _, err := db.Map("things"); err != nil {
		t.Fatalf("map: %v", err)
	}
	if _, err := db.Vector("things"); !errors.Is(err, ErrWrongRootKind) {
		t.Fatalf("rebinding map root as vector: %v, want ErrWrongRootKind", err)
	}
	if _, err := db.Stack("things"); !errors.Is(err, ErrWrongRootKind) {
		t.Fatalf("rebinding map root as stack: %v, want ErrWrongRootKind", err)
	}
	// Map and Set share the CHAMP header, so rebinding across those two
	// is allowed by construction; a queue root must still reject both.
	if _, err := db.Queue("q"); err != nil {
		t.Fatalf("queue: %v", err)
	}
	if _, err := db.Set("q"); !errors.Is(err, ErrWrongRootKind) {
		t.Fatalf("rebinding queue root as set: %v, want ErrWrongRootKind", err)
	}
	if _, err := db.Store().Parent("things", "a"); !errors.Is(err, ErrWrongRootKind) {
		t.Fatalf("rebinding map root as parent: %v, want ErrWrongRootKind", err)
	}
}

// TestCloseIdempotent checks Close/Sync safety: twice, after Sync,
// after a failed open, and binding/committing after Close.
func TestCloseIdempotent(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, _, err := Open(dbConfig(), WithShards(shards), WithCommitter(0))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			m, err := db.Map("kv:0")
			if err != nil {
				t.Fatalf("map: %v", err)
			}
			m.Set([]byte("k"), []byte("v"))
			if err := db.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("second close: %v", err)
			}
			db.Sync() // must not deadlock or panic after close

			if _, err := db.Map("late"); !errors.Is(err, ErrStoreClosed) {
				t.Fatalf("bind after close: %v, want ErrStoreClosed", err)
			}
			b := db.Batch()
			b.MapSet(m, []byte("k2"), []byte("v2"))
			tk := b.CommitAsync()
			tk.Wait() // must resolve, not hang on a stopped committer
			if !errors.Is(tk.Err(), ErrStoreClosed) {
				t.Fatalf("CommitAsync after close: %v, want ErrStoreClosed", tk.Err())
			}
		})
	}

	// A failed open returns a nil DB; deferred Close/Sync must not panic.
	db, _, err := Open(dbConfig(), WithShards(0))
	if err == nil {
		t.Fatal("expected open failure")
	}
	db.Close()
	db.Sync()
}

// TestKVInterface drives the same workload through every KV
// implementation to pin the interface contract.
func TestKVInterface(t *testing.T) {
	open := map[string]func(t *testing.T) KV{
		"store": func(t *testing.T) KV {
			db, _, err := Open(dbConfig())
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return db.Store()
		},
		"sharded": func(t *testing.T) KV {
			db, _, err := Open(dbConfig(), WithShards(2))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return db.Sharded()
		},
		"db": func(t *testing.T) KV {
			db, _, err := Open(dbConfig(), WithShards(2))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			return db
		},
	}
	for name, mk := range open {
		t.Run(name, func(t *testing.T) {
			kv := mk(t)
			defer kv.Close()
			w := kv.ForkKV()
			m, err := w.Map("m")
			if err != nil {
				t.Fatalf("map: %v", err)
			}
			q, err := w.Queue("q")
			if err != nil {
				t.Fatalf("queue: %v", err)
			}
			b := w.Batch()
			b.MapSet(m, []byte("k"), []byte("v"))
			b.QueueEnqueue(q, 42)
			if b.Len() != 2 {
				t.Fatalf("batch len %d", b.Len())
			}
			tk := b.CommitAsync()
			tk.Wait()
			if err := tk.Err(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			w.Sync()
			if _, ok := m.Get([]byte("k")); !ok {
				t.Fatal("map write lost")
			}
			if v, ok := q.Peek(); !ok || v != 42 {
				t.Fatal("queue write lost")
			}
			if kv.Stats().Fences == 0 {
				t.Fatal("stats not wired")
			}
		})
	}
}
