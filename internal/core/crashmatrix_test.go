package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Crash-matrix sweep: for every structure (vector, CHAMP map, CHAMP
// set, stack, queue) × every commit discipline (per-op FASEs, a
// multi-op edit FASE, a multi-root batch through the batch record, and
// a cross-shard batch through the shard manifest), inject a power
// failure at *every* PM-write index of the probed window under the
// most adversarial eviction policy, recover, and assert the recovered
// state equals a committed prefix — and, for the atomic modes, that the
// paired root moved with the structure or not at all. This replaces
// hand-picked crash windows with exhaustive ones: each injection point
// is between two PM writes, which subdivides every flush and fence
// interval of the window.

const (
	mxPrefix = 3 // committed ops before the probed window
	mxProbe  = 3 // ops inside the probed window
)

// matrixOps drives one structure through the sweep.
type matrixOps struct {
	basic  func(i int)                  // apply op i as its own Basic FASE
	batch  func(b *Batch, i int)        // queue op i into a single-store batch
	sbatch func(b *ShardedBatch, i int) // queue op i into a cross-shard batch
	dump   func() []string              // canonical full state
}

type matrixStructure struct {
	name string
	bind func(t *testing.T, s *Store, nm string) matrixOps
}

func mxVal(i int) uint64 { return uint64(i*31 + 7) }

func matrixStructures() []matrixStructure {
	return []matrixStructure{
		{name: "vector", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			v, err := s.Vector(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { v.Push(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.VectorPush(v, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.VectorPush(v, mxVal(i)) },
				dump: func() []string {
					n := v.Len()
					out := make([]string, n)
					for i := uint64(0); i < n; i++ {
						out[i] = fmt.Sprint(v.Get(i))
					}
					return out
				},
			}
		}},
		{name: "map", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			m, err := s.Map(nm)
			if err != nil {
				t.Fatal(err)
			}
			key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
			val := func(i int) []byte { return []byte(fmt.Sprintf("v%03d", i*3)) }
			return matrixOps{
				basic:  func(i int) { m.Set(key(i), val(i)) },
				batch:  func(b *Batch, i int) { b.MapSet(m, key(i), val(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.MapSet(m, key(i), val(i)) },
				dump: func() []string {
					var out []string
					m.Range(func(k, v []byte) bool {
						out = append(out, string(k)+"="+string(v))
						return true
					})
					sort.Strings(out)
					return out
				},
			}
		}},
		{name: "set", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			st, err := s.Set(nm)
			if err != nil {
				t.Fatal(err)
			}
			key := func(i int) []byte { return []byte(fmt.Sprintf("m%03d", i)) }
			return matrixOps{
				basic:  func(i int) { st.Insert(key(i)) },
				batch:  func(b *Batch, i int) { b.SetInsert(st, key(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.SetInsert(st, key(i)) },
				dump: func() []string {
					var out []string
					st.Range(func(k []byte) bool {
						out = append(out, string(k))
						return true
					})
					sort.Strings(out)
					return out
				},
			}
		}},
		{name: "stack", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			st, err := s.Stack(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { st.Push(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.StackPush(st, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.StackPush(st, mxVal(i)) },
				dump: func() []string {
					snap := st.Snapshot()
					defer snap.Close()
					els := snap.Version().Elements()
					out := make([]string, len(els))
					for i, e := range els {
						out[i] = fmt.Sprint(e)
					}
					return out
				},
			}
		}},
		{name: "queue", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			q, err := s.Queue(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { q.Enqueue(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.QueueEnqueue(q, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.QueueEnqueue(q, mxVal(i)) },
				dump: func() []string {
					snap := q.Snapshot()
					defer snap.Close()
					els := snap.Version().Elements()
					out := make([]string, len(els))
					for i, e := range els {
						out[i] = fmt.Sprint(e)
					}
					return out
				},
			}
		}},
		// Selective-persistence variants: volatile navigation nodes, a
		// durable record chain, and (with checkpointEvery forced low by the
		// sweep) checkpoint folds with their volatile-bit clears landing
		// inside the probed injection windows. The DRAM node cache is on so
		// cached reads and invalidation are exercised across the crash too.
		{name: "vector-sel", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			s.EnableNodeCache()
			v, err := s.SelectiveVector(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { v.Push(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.VectorPush(v, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.VectorPush(v, mxVal(i)) },
				dump: func() []string {
					n := v.Len()
					out := make([]string, n)
					for i := uint64(0); i < n; i++ {
						out[i] = fmt.Sprint(v.Get(i))
					}
					return out
				},
			}
		}},
		{name: "map-sel", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			s.EnableNodeCache()
			m, err := s.SelectiveMap(nm)
			if err != nil {
				t.Fatal(err)
			}
			key := func(i int) []byte { return []byte(fmt.Sprintf("k%03d", i)) }
			val := func(i int) []byte { return []byte(fmt.Sprintf("v%03d", i*3)) }
			return matrixOps{
				basic:  func(i int) { m.Set(key(i), val(i)) },
				batch:  func(b *Batch, i int) { b.MapSet(m, key(i), val(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.MapSet(m, key(i), val(i)) },
				dump: func() []string {
					var out []string
					m.Range(func(k, v []byte) bool {
						out = append(out, string(k)+"="+string(v))
						return true
					})
					sort.Strings(out)
					return out
				},
			}
		}},
		{name: "set-sel", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			s.EnableNodeCache()
			st, err := s.SelectiveSet(nm)
			if err != nil {
				t.Fatal(err)
			}
			key := func(i int) []byte { return []byte(fmt.Sprintf("m%03d", i)) }
			return matrixOps{
				basic:  func(i int) { st.Insert(key(i)) },
				batch:  func(b *Batch, i int) { b.SetInsert(st, key(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.SetInsert(st, key(i)) },
				dump: func() []string {
					var out []string
					st.Range(func(k []byte) bool {
						out = append(out, string(k))
						return true
					})
					sort.Strings(out)
					return out
				},
			}
		}},
		{name: "stack-sel", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			s.EnableNodeCache()
			st, err := s.SelectiveStack(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { st.Push(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.StackPush(st, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.StackPush(st, mxVal(i)) },
				dump: func() []string {
					snap := st.Snapshot()
					defer snap.Close()
					els := snap.Version().Elements()
					out := make([]string, len(els))
					for i, e := range els {
						out[i] = fmt.Sprint(e)
					}
					return out
				},
			}
		}},
		{name: "queue-sel", bind: func(t *testing.T, s *Store, nm string) matrixOps {
			s.EnableNodeCache()
			q, err := s.SelectiveQueue(nm)
			if err != nil {
				t.Fatal(err)
			}
			return matrixOps{
				basic:  func(i int) { q.Enqueue(mxVal(i)) },
				batch:  func(b *Batch, i int) { b.QueueEnqueue(q, mxVal(i)) },
				sbatch: func(b *ShardedBatch, i int) { b.QueueEnqueue(q, mxVal(i)) },
				dump: func() []string {
					snap := q.Snapshot()
					defer snap.Close()
					els := snap.Version().Elements()
					out := make([]string, len(els))
					for i, e := range els {
						out[i] = fmt.Sprint(e)
					}
					return out
				},
			}
		}},
	}
}

func mxJoin(dump []string) string { return strings.Join(dump, "\n") }

var mxMarkerKey = []byte("marker")

// mxInjectionStride returns how densely to sweep injection points:
// every write normally, every third under -short.
func mxInjectionStride() int {
	if testing.Short() {
		return 3
	}
	return 1
}

// TestCrashMatrixSingleStore sweeps the per-op, edit-FASE, and
// multi-root-batch disciplines on a single store.
func TestCrashMatrixSingleStore(t *testing.T) {
	// Checkpoint every 2 records so the selective variants fold a
	// checkpoint — crown flushes, ext rewrite, volatile-bit clears —
	// inside the probed injection windows.
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	for _, st := range matrixStructures() {
		for _, mode := range []string{"perop", "edit", "batch"} {
			t.Run(st.name+"/"+mode, func(t *testing.T) {
				build := func() (*Store, matrixOps, *Map, *pmem.Device) {
					dev := pmem.New(cfg)
					s, err := newStore(dev)
					if err != nil {
						t.Fatal(err)
					}
					ops := st.bind(t, s, "mx")
					marker, err := s.Map("mx-marker")
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < mxPrefix; i++ {
						ops.basic(i)
					}
					s.Sync()
					return s, ops, marker, dev
				}
				probe := func(s *Store, ops matrixOps, marker *Map) {
					switch mode {
					case "perop":
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.basic(i)
						}
					case "edit":
						// One multi-op FASE: all ops share an edit context
						// and publish with a single atomic root swap.
						b := s.NewBatch()
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.batch(b, i)
						}
						b.Commit()
					case "batch":
						// Structure + marker roots change together through
						// the persistent batch record.
						b := s.NewBatch()
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.batch(b, i)
						}
						b.MapSet(marker, mxMarkerKey, []byte("present"))
						b.Commit()
					}
				}

				// Dry run: collect the allowed committed-prefix states and
				// count the window's PM writes.
				s, ops, marker, dev := build()
				allowed := map[string]bool{}
				prefixState := mxJoin(ops.dump())
				allowed[prefixState] = true
				writesBase := dev.Stats().Writes
				if mode == "perop" {
					for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
						ops.basic(i)
						allowed[mxJoin(ops.dump())] = true
					}
				} else {
					probe(s, ops, marker)
				}
				finalState := mxJoin(ops.dump())
				allowed[finalState] = true
				if finalState == prefixState {
					t.Fatal("degenerate ops: probe did not change state")
				}
				totalWrites := int(dev.Stats().Writes - writesBase)
				if totalWrites < mxProbe {
					t.Fatalf("implausibly few writes in window: %d", totalWrites)
				}

				for inj := 1; inj <= totalWrites; inj += mxInjectionStride() {
					s, ops, marker, dev := build()
					_ = ops
					tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, uint64(inj)*1048573+11)
					dev.SetTracer(tr)
					probe(s, ops, marker)
					dev.SetTracer(nil)
					img := tr.Image()
					if img == nil {
						t.Fatalf("inj %d/%d: countdown never expired", inj, totalWrites)
					}
					dev2 := pmem.NewFromImage(pmem.DefaultConfig(4<<20), img)
					s2, _, err := openStore(dev2)
					if err != nil {
						t.Fatalf("inj %d: recovery: %v", inj, err)
					}
					ops2 := st.bind(t, s2, "mx")
					got := mxJoin(ops2.dump())
					if !allowed[got] {
						t.Fatalf("inj %d/%d: recovered state is not a committed prefix:\n%q", inj, totalWrites, got)
					}
					if mode == "batch" {
						marker2, err := s2.Map("mx-marker")
						if err != nil {
							t.Fatal(err)
						}
						_, markerIn := marker2.Get(mxMarkerKey)
						structIn := got == finalState
						if markerIn != structIn {
							t.Fatalf("inj %d: batch torn across roots: struct=%v marker=%v", inj, structIn, markerIn)
						}
					}
					// The store must stay writable after recovery.
					ops2.basic(900 + inj)
					if after := mxJoin(ops2.dump()); after == got {
						t.Fatalf("inj %d: store inert after recovery", inj)
					}
				}
			})
		}
	}
}

// TestCrashMatrixCrossShard sweeps the cross-shard-batch discipline:
// the structure lives on shard 0, a marker map on shard 1, and the
// batch commits through the shard manifest. Every injection point —
// including inside the manifest's intent, commit-point, and redo
// windows — must recover all of the batch on both shards or none.
func TestCrashMatrixCrossShard(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	for _, st := range matrixStructures() {
		t.Run(st.name+"/cross", func(t *testing.T) {
			build := func() (*ShardedStore, matrixOps, *Map) {
				ss, err := newShardedStore(cfg, 2)
				if err != nil {
					t.Fatal(err)
				}
				ops := st.bind(t, ss.Shard(0), "mx")
				marker, err := ss.Shard(1).Map("mx-marker")
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < mxPrefix; i++ {
					ops.basic(i)
				}
				ss.Sync()
				return ss, ops, marker
			}
			probe := func(ss *ShardedStore, ops matrixOps, marker *Map) {
				b := ss.NewBatch()
				for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
					ops.sbatch(b, i)
				}
				b.MapSet(marker, mxMarkerKey, []byte("present"))
				b.Commit()
			}

			ss, ops, marker := build()
			prefixState := mxJoin(ops.dump())
			writesBase := ss.Stats().Writes
			probe(ss, ops, marker)
			finalState := mxJoin(ops.dump())
			if finalState == prefixState {
				t.Fatal("degenerate ops: probe did not change state")
			}
			totalWrites := int(ss.Stats().Writes - writesBase)

			for inj := 1; inj <= totalWrites; inj += mxInjectionStride() {
				ss, ops, marker := build()
				tr := pmem.NewMultiCrashCountdown(ss.Regions().Devices(), inj, pmem.CrashEvictRandom, uint64(inj)*2654435761+13)
				tr.Install()
				probe(ss, ops, marker)
				tr.Uninstall()
				imgs := tr.Images()
				if imgs == nil {
					t.Fatalf("inj %d/%d: countdown never expired", inj, totalWrites)
				}
				ss2, _, err := openShardedStore(cfg, imgs)
				if err != nil {
					t.Fatalf("inj %d: recovery: %v", inj, err)
				}
				ops2 := st.bind(t, ss2.Shard(0), "mx")
				marker2, err := ss2.Shard(1).Map("mx-marker")
				if err != nil {
					t.Fatal(err)
				}
				got := mxJoin(ops2.dump())
				switch got {
				case prefixState, finalState:
				default:
					t.Fatalf("inj %d/%d: recovered state is not a committed prefix:\n%q", inj, totalWrites, got)
				}
				_, markerIn := marker2.Get(mxMarkerKey)
				if structIn := got == finalState; markerIn != structIn {
					t.Fatalf("inj %d: batch torn across shards: struct=%v marker=%v", inj, structIn, markerIn)
				}
				ops2.basic(900 + inj)
				if after := mxJoin(ops2.dump()); after == got {
					t.Fatalf("inj %d: store inert after recovery", inj)
				}
			}
		})
	}
}
