package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/pmem/mmapdev"
)

// The designated backend-portability subset: the identical core/funcds
// stack, built through core.Open(WithDevices), over the mmap backend —
// a real file instead of the simulator. These tests skip on platforms
// without the backend.

// mmapDevFor creates a file-backed device under the test's temp dir.
func mmapDevFor(t *testing.T, name string, size int64) (*mmapdev.Device, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	d, err := mmapdev.Create(path, size)
	if errors.Is(err, mmapdev.ErrUnsupported) {
		t.Skip("mmap backend unsupported on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	return d, path
}

// TestMmapBackendStructures drives all five recoverable structures over
// a file-backed store, closes it cleanly, and recovers from the file
// with WithAttach.
func TestMmapBackendStructures(t *testing.T) {
	dev, path := mmapDevFor(t, "store.pm", 16<<20)
	db, info, err := Open(pmem.Config{}, WithDevices(dev))
	if err != nil {
		t.Fatalf("open over mmap: %v", err)
	}
	if info.Recovered {
		t.Fatal("fresh device open reported Recovered")
	}

	m, err := db.Map("m")
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.Set("s")
	if err != nil {
		t.Fatal(err)
	}
	v, err := db.Vector("v")
	if err != nil {
		t.Fatal(err)
	}
	st, err := db.Stack("st")
	if err != nil {
		t.Fatal(err)
	}
	q, err := db.Queue("q")
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		m.Set([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
		s.Insert([]byte(fmt.Sprintf("e%03d", i)))
		v.Push(uint64(i) * 3)
		st.Push(uint64(i))
		q.Enqueue(uint64(i))
	}
	m.Delete([]byte("k001"))
	s.Delete([]byte("e001"))
	st.Pop()
	q.Dequeue()
	db.Sync()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Reattach to the file: everything committed must be there.
	dev2, err := mmapdev.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	db2, info2, err := Open(pmem.Config{}, WithDevices(dev2), WithAttach())
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer db2.Close()
	if !info2.Recovered {
		t.Fatal("attach did not report Recovered")
	}

	m2, _ := db2.Map("m")
	s2, _ := db2.Set("s")
	v2, _ := db2.Vector("v")
	st2, _ := db2.Stack("st")
	q2, _ := db2.Queue("q")
	for i := 0; i < n; i++ {
		want, wantOK := fmt.Sprintf("v%03d", i), i != 1
		got, ok := m2.Get([]byte(fmt.Sprintf("k%03d", i)))
		if ok != wantOK || (ok && string(got) != want) {
			t.Fatalf("map key %d after attach: %q %v", i, got, ok)
		}
		if s2.Contains([]byte(fmt.Sprintf("e%03d", i))) != wantOK {
			t.Fatalf("set element %d after attach: presence != %v", i, wantOK)
		}
		if got := v2.Get(uint64(i)); got != uint64(i)*3 {
			t.Fatalf("vector[%d] after attach = %d", i, got)
		}
	}
	if got := v2.Len(); got != n {
		t.Fatalf("vector len after attach = %d", got)
	}
	if top, ok := st2.Peek(); !ok || top != n-2 {
		t.Fatalf("stack top after attach = %d, %v", top, ok)
	}
	if front, ok := q2.Peek(); !ok || front != 1 {
		t.Fatalf("queue front after attach = %d, %v", front, ok)
	}

	// The recovered store must stay writable on the same file.
	m2.Set([]byte("post"), []byte("attach"))
	db2.Sync()
	if got, ok := m2.Get([]byte("post")); !ok || string(got) != "attach" {
		t.Fatalf("post-attach write lost: %q %v", got, ok)
	}
}

// TestMmapBackendSharded formats a sharded store over one file per
// shard plus a metadata file, then reattaches the whole set.
func TestMmapBackendSharded(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	var devs []pmem.Backend
	var paths []string
	for i := 0; i <= shards; i++ {
		name := fmt.Sprintf("shard%d.pm", i)
		if i == shards {
			name = "meta.pm"
		}
		path := filepath.Join(dir, name)
		d, err := mmapdev.Create(path, 8<<20)
		if errors.Is(err, mmapdev.ErrUnsupported) {
			t.Skip("mmap backend unsupported on this platform")
		}
		if err != nil {
			t.Fatal(err)
		}
		devs = append(devs, d)
		paths = append(paths, path)
	}
	db, _, err := Open(pmem.Config{}, WithDevices(devs...))
	if err != nil {
		t.Fatalf("sharded open over mmap: %v", err)
	}
	if db.ShardCount() != shards {
		t.Fatalf("ShardCount = %d", db.ShardCount())
	}
	m, err := db.Map("users")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.Set([]byte(fmt.Sprintf("u%03d", i)), []byte(fmt.Sprintf("x%03d", i)))
	}
	db.Sync()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		if err := d.(*mmapdev.Device).Close(); err != nil {
			t.Fatal(err)
		}
	}

	var devs2 []pmem.Backend
	for _, path := range paths {
		d, err := mmapdev.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		devs2 = append(devs2, d)
	}
	db2, info, err := Open(pmem.Config{}, WithDevices(devs2...), WithAttach())
	if err != nil {
		t.Fatalf("sharded attach: %v", err)
	}
	defer db2.Close()
	if !info.Recovered || len(info.PerShard) != shards {
		t.Fatalf("attach info = %+v", info)
	}
	m2, err := db2.Map("users")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got, ok := m2.Get([]byte(fmt.Sprintf("u%03d", i))); !ok || string(got) != fmt.Sprintf("x%03d", i) {
			t.Fatalf("shard-distributed key %d after attach: %q %v", i, got, ok)
		}
	}
}

// TestMmapBackendCrashSmoke is the crash-matrix smoke over the mmap
// backend: cut the write stream at several points with a countdown
// tracer (the image is a full copy — the backend's most permissive
// crash view), dump each image to a file, attach, and require an exact
// committed prefix plus writability. Mirrors cmd/crashtest semantics
// without the policy sweep the backend cannot express.
func TestMmapBackendCrashSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("crash smoke is not short")
	}
	const ops = 24
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("val-%03d", i)) }

	// Dry run to learn the total write count.
	dev, _ := mmapDevFor(t, "dry.pm", 16<<20)
	db, _, err := Open(pmem.Config{}, WithDevices(dev))
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Map("crash")
	if err != nil {
		t.Fatal(err)
	}
	db.Sync()
	base := dev.Stats().Writes
	for i := 0; i < ops; i++ {
		m.Set(key(i), val(i))
	}
	total := int(dev.Stats().Writes - base)
	db.Close()
	dev.Close()
	if total < ops {
		t.Fatalf("dry run recorded only %d writes", total)
	}

	stride := total / 16
	if stride < 1 {
		stride = 1
	}
	for inj := 1; inj <= total; inj += stride {
		dev, _ := mmapDevFor(t, fmt.Sprintf("run%d.pm", inj), 16<<20)
		db, _, err := Open(pmem.Config{}, WithDevices(dev))
		if err != nil {
			t.Fatal(err)
		}
		m, err := db.Map("crash")
		if err != nil {
			t.Fatal(err)
		}
		db.Sync()
		tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, 7)
		dev.SetTracer(tr)
		for i := 0; i < ops; i++ {
			m.Set(key(i), val(i))
		}
		dev.SetTracer(nil)
		img := tr.Image()
		db.Close()
		dev.Close()
		if img == nil {
			t.Fatalf("inj %d: countdown never expired", inj)
		}

		// The crash image becomes a file of its own; attach to it.
		imgPath := filepath.Join(t.TempDir(), "crashed.pm")
		if err := os.WriteFile(imgPath, img, 0o644); err != nil {
			t.Fatal(err)
		}
		dev2, err := mmapdev.Open(imgPath)
		if err != nil {
			t.Fatal(err)
		}
		db2, info, err := Open(pmem.Config{}, WithDevices(dev2), WithAttach())
		if err != nil {
			t.Fatalf("inj %d: attach to crash image: %v", inj, err)
		}
		if !info.Recovered {
			t.Fatalf("inj %d: no recovery reported", inj)
		}
		m2, err := db2.Map("crash")
		if err != nil {
			t.Fatalf("inj %d: rebind: %v", inj, err)
		}
		// Exact-prefix check: presence monotone, values final.
		k := 0
		for i := 0; i < ops; i++ {
			got, ok := m2.Get(key(i))
			switch {
			case ok && i == k:
				if string(got) != string(val(i)) {
					t.Fatalf("inj %d: key %d = %q, want %q", inj, i, got, val(i))
				}
				k++
			case ok:
				t.Fatalf("inj %d: non-prefix state: key %d present, key %d missing", inj, i, k)
			}
		}
		// Recovered store stays writable.
		m2.Set([]byte("post"), []byte("ok"))
		db2.Sync()
		if got, ok := m2.Get([]byte("post")); !ok || string(got) != "ok" {
			t.Fatalf("inj %d: post-crash write lost", inj)
		}
		db2.Close()
		dev2.Close()
	}
}
