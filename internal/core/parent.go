package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Parent is a persistent object whose fields point at MOD datastructures,
// enabling CommitSiblings (§5.1, Fig. 8c): updates to several sibling
// structures commit atomically by shadowing the parent itself and swapping
// one pointer. The paper's vacation port anchors its four maps under such
// a manager object.
//
// Layout (TagParent): [nFields u64][field addr u64 × n].
//
// A Parent handle may be shared across goroutines: its current block
// address is atomic, and every commit through it serializes on the
// parent's root mutex.
type Parent struct {
	s      *Store
	name   string
	slot   int
	addr   atomic.Uint64 // current parent block address
	fields []string
}

// maxParentFields bounds field counts for corruption detection.
const maxParentFields = 1 << 16

// Parent binds (creating on first use) a parent object under a named root
// with the given ordered field names. Reopening must pass the same fields.
func (s *Store) Parent(name string, fields ...string) (*Parent, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("core: parent %q needs at least one field", name)
	}
	if strings.HasPrefix(name, reservedRootPrefix) {
		return nil, fmt.Errorf("core: root name %q uses the reserved prefix %q: %w", name, reservedRootPrefix, ErrReservedRootName)
	}
	if s.sh.closed.Load() {
		return nil, fmt.Errorf("core: binding %q: %w", name, ErrStoreClosed)
	}
	slot, err := s.heap.RootSlot(name)
	if err != nil {
		return nil, err
	}
	p := &Parent{s: s, name: name, slot: slot, fields: fields}
	mu := &s.sh.rootMu[slot]
	mu.Lock()
	defer mu.Unlock()
	if root := s.heap.Root(slot); root != pmem.Nil {
		if err := s.checkKind(name, root, kindParent); err != nil {
			return nil, err
		}
		n := s.dev.ReadU64(root)
		if n != uint64(len(fields)) {
			return nil, fmt.Errorf("core: parent %q has %d fields, expected %d", name, n, len(fields))
		}
		p.adopt(root)
		return p, nil
	}
	s.BeginFASE()
	addr := newParentBlock(s.heap, make([]pmem.Addr, len(fields)))
	if err := s.commitRoot(slot, pmem.Nil, addr); err != nil {
		s.EndFASE()
		return nil, err
	}
	s.EndFASE()
	p.adopt(addr)
	return p, nil
}

// newParentBlock allocates and flushes a parent block with the given field
// pointers. Reference transfers are the caller's responsibility.
func newParentBlock(h *alloc.Heap, fields []pmem.Addr) pmem.Addr {
	size := 8 + len(fields)*8
	a := h.Alloc(size, funcds.TagParent)
	dev := h.Device()
	dev.WriteU64(a, uint64(len(fields)))
	for i, f := range fields {
		dev.WriteU64(a+8+pmem.Addr(i*8), uint64(f))
	}
	// The block header's line was flushed by Alloc; [a, size) re-covers it
	// only when payload and header share a line (i.e. when it was re-dirtied).
	dev.FlushRange(a, size)
	return a
}

// Name returns the parent's root name.
func (p *Parent) Name() string { return p.name }

// Addr returns the current parent block address.
func (p *Parent) Addr() pmem.Addr { return pmem.Addr(p.addr.Load()) }

// adopt records a newly committed parent block address.
func (p *Parent) adopt(a pmem.Addr) { p.addr.Store(uint64(a)) }

// refreshLocked reloads the parent block pointer from its root cell.
// Caller holds the parent's root mutex.
func (p *Parent) refreshLocked() { p.adopt(p.s.heap.Root(p.slot)) }

// Fields returns the ordered field names.
func (p *Parent) Fields() []string { return p.fields }

func (p *Parent) fieldIndex(name string) (int, error) {
	for i, f := range p.fields {
		if f == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: parent %q has no field %q", p.name, name)
}

// fieldAddr reads the current pointer of field i.
func (p *Parent) fieldAddr(i int) pmem.Addr {
	return pmem.Addr(p.s.dev.ReadU64(p.Addr() + 8 + pmem.Addr(i*8)))
}

// installField publishes a freshly created datastructure under field i via
// a single-field CommitSiblings. Caller holds the parent's root mutex.
func (p *Parent) installField(i int, addr pmem.Addr) error {
	old := p.Addr()
	if err := p.s.checkCurrent(p.slot, old, "installField"); err != nil {
		return err
	}
	newFields := make([]pmem.Addr, len(p.fields))
	for j := range p.fields {
		newFields[j] = p.fieldAddr(j)
	}
	newFields[i] = addr
	shadow := newParentBlock(p.s.heap, newFields)
	for j, f := range newFields {
		if j != i && f != pmem.Nil {
			p.s.heap.Retain(f)
		}
	}
	p.s.commitBegin()
	p.s.heap.Fence()
	p.s.heap.SetRoot(p.slot, shadow)
	p.s.commitEnd()
	p.s.heap.Release(old)
	p.adopt(shadow)
	return nil
}

func walkParent(h *alloc.Heap, a pmem.Addr, visit func(pmem.Addr)) {
	dev := h.Device()
	n := dev.ReadU64(a)
	if n > maxParentFields {
		return // corrupt block; recovery will sweep it as unreachable
	}
	for i := uint64(0); i < n; i++ {
		if f := pmem.Addr(dev.ReadU64(a + 8 + pmem.Addr(i*8))); f != pmem.Nil {
			visit(f)
		}
	}
}
