// Package core implements MOD — Minimally Ordered Durable datastructures —
// the primary contribution of Haria, Hill & Swift (ASPLOS 2020). It layers
// failure atomicity on the purely functional datastructures of package
// funcds using Functional Shadowing (§4.1): every update builds a durable
// shadow with unordered, overlapped flushes, and a Commit step with a
// single ordering point atomically swaps an 8-byte persistent pointer from
// the original version to the shadow.
//
// Two interfaces are exposed, following §4.3:
//
//   - The Basic interface: handles (Map, Set, Vector, Stack, Queue) whose
//     update methods look mutable and are each a self-contained FASE with
//     one fence.
//
//   - The Composition interface: Pure* methods return shadow versions
//     without committing; CommitSingle, CommitSiblings, and
//     CommitUnrelated (§5.1, Fig. 8) atomically install one or more
//     shadows with one fence in the common cases.
//
// Recovery (§5.3) is a reachability pass over the heap from the named
// roots: interrupted-FASE allocations are swept, reference counts rebuilt.
package core

import (
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
	"github.com/mod-ds/mod/internal/trace"
)

// commitLogRoot names the root slot anchoring the short-transaction log
// used by CommitUnrelated.
const commitLogRoot = "__mod_commitlog"

// Store is a persistent heap hosting MOD datastructures, located across
// process lifetimes by named roots.
type Store struct {
	dev  *pmem.Device
	heap *alloc.Heap
	tx   *stm.TX // short transactions for CommitUnrelated (Fig. 8d)
}

// NewStore formats dev and returns an empty store.
func NewStore(dev *pmem.Device) (*Store, error) {
	heap := alloc.Format(dev)
	registerWalkers(heap)
	tx := stm.New(dev, heap, stm.ModeV15)
	slot, err := heap.RootSlot(commitLogRoot)
	if err != nil {
		return nil, fmt.Errorf("core: anchoring commit log: %w", err)
	}
	heap.SetRoot(slot, tx.LogAddr())
	dev.Sfence()
	return &Store{dev: dev, heap: heap, tx: tx}, nil
}

// OpenStore attaches to a previously formatted device, rolling back any
// interrupted commit transaction and garbage-collecting unreachable blocks
// (recovery per §5.3). The reported stats include leak reclamation counts.
func OpenStore(dev *pmem.Device) (*Store, alloc.RecoveryStats, error) {
	heap, err := alloc.Open(dev)
	if err != nil {
		return nil, alloc.RecoveryStats{}, err
	}
	registerWalkers(heap)
	slot, err := heap.RootSlot(commitLogRoot)
	if err != nil {
		return nil, alloc.RecoveryStats{}, err
	}
	logAddr := heap.Root(slot)
	if logAddr == pmem.Nil {
		return nil, alloc.RecoveryStats{}, fmt.Errorf("core: store has no commit log root")
	}
	// Roll back an interrupted CommitUnrelated before tracing reachability.
	stm.Recover(dev, logAddr)
	rs, err := heap.Recover()
	if err != nil {
		return nil, rs, err
	}
	tx := stm.Attach(dev, heap, stm.ModeV15, logAddr, stm.DefaultLogSize)
	return &Store{dev: dev, heap: heap, tx: tx}, rs, nil
}

func registerWalkers(heap *alloc.Heap) {
	funcds.RegisterWalkers(heap)
	heap.RegisterWalker(funcds.TagParent, walkParent)
}

// Device returns the underlying persistent memory device.
func (s *Store) Device() *pmem.Device { return s.dev }

// Heap returns the persistent allocator.
func (s *Store) Heap() *alloc.Heap { return s.heap }

// CheckerConfig returns the trace-checker configuration for this store:
// the allocator superblock and the commit transaction log are updated in
// place by design and are exempt from the out-of-place invariant.
func (s *Store) CheckerConfig() trace.CheckerConfig {
	logStart := s.tx.LogAddr() - 8 // include the block header
	return trace.CheckerConfig{
		ExemptRanges: [][2]pmem.Addr{
			alloc.SuperblockRange(),
			{logStart, s.tx.LogAddr() + pmem.Addr(stm.DefaultLogSize)},
		},
		AllowUnflushedTail: true,
	}
}

// Sync orders every outstanding flush — including the most recent
// commit's root-pointer write, whose durability is otherwise guaranteed
// only by the next FASE's fence — and drains the reclamation quarantine.
// Call it before planned shutdown or when an operation must be durable on
// return.
func (s *Store) Sync() { s.heap.Fence() }

// BeginFASE marks the start of a failure-atomic section for trace-based
// verification (§5.4). The Basic interface brackets its operations
// automatically; Composition-interface users bracket manually or use FASE.
func (s *Store) BeginFASE() {
	if t := s.dev.Tracer(); t != nil {
		t.FASEBegin()
	}
}

// EndFASE marks the end of a failure-atomic section.
func (s *Store) EndFASE() {
	if t := s.dev.Tracer(); t != nil {
		t.FASEEnd()
	}
}

// FASE runs fn bracketed as one failure-atomic section.
func (s *Store) FASE(fn func()) {
	s.BeginFASE()
	fn()
	s.EndFASE()
}

func (s *Store) commitBegin() {
	if t := s.dev.Tracer(); t != nil {
		t.CommitBegin()
	}
}

func (s *Store) commitEnd() {
	if t := s.dev.Tracer(); t != nil {
		t.CommitEnd()
	}
}

// Version is one shadow version of a MOD datastructure, produced by the
// Pure* update operations.
type Version interface {
	// Addr returns the persistent address of the version's header.
	Addr() pmem.Addr
}

// Datastructure is a MOD handle that can be the target of a Commit. Only
// types in this package implement it.
type Datastructure interface {
	// Name returns the root or field name the handle is bound to.
	Name() string
	currentAddr() pmem.Addr
	adopt(addr pmem.Addr)
	location() location
	store() *Store
}

// location identifies where a datastructure's current-version pointer
// lives: a named root slot, or a field of a parent object.
type location struct {
	parent *Parent
	slot   int // root slot index, or parent field index
}

// commitRoot is the common-case CommitSingle step (Fig. 8b): one fence to
// make every outstanding shadow flush durable, then an 8-byte atomic
// pointer write to publish the new version, then reclamation of the old.
func (s *Store) commitRoot(slot int, old, final pmem.Addr) {
	s.commitBegin()
	s.heap.Fence() // the FASE's single ordering point; drains quarantine
	s.heap.SetRoot(slot, final)
	s.commitEnd()
	s.heap.Release(old)
}

// CommitSingle atomically replaces ds's current version with the last
// shadow in the chain, reclaiming the original and all intermediate
// shadows (Fig. 7a/b, Fig. 8b). The datastructure must be root-bound;
// parent-bound structures commit through CommitSiblings.
func (s *Store) CommitSingle(ds Datastructure, shadows ...Version) {
	if len(shadows) == 0 {
		return
	}
	loc := ds.location()
	if loc.parent != nil {
		s.CommitSiblings(loc.parent, Update{DS: ds, Shadows: shadows})
		return
	}
	old := ds.currentAddr()
	final := shadows[len(shadows)-1].Addr()
	s.commitRoot(loc.slot, old, final)
	for _, sh := range shadows[:len(shadows)-1] {
		s.heap.Release(sh.Addr())
	}
	ds.adopt(final)
}

// Update pairs a datastructure with the shadow chain to install, for
// CommitSiblings and CommitUnrelated.
type Update struct {
	DS      Datastructure
	Shadows []Version
}

func (u Update) final() pmem.Addr { return u.Shadows[len(u.Shadows)-1].Addr() }

// CommitSiblings atomically installs updates to datastructures that are
// fields of one parent object (Fig. 8c): a shadow of the parent pointing
// at the new versions is built and flushed, one fence orders everything,
// and the parent's root pointer is swapped. Reclaiming the old parent
// cascades to the replaced versions.
func (s *Store) CommitSiblings(p *Parent, updates ...Update) {
	if len(updates) == 0 {
		return
	}
	newFields := make([]pmem.Addr, len(p.fields))
	changed := make([]bool, len(p.fields))
	for i := range p.fields {
		newFields[i] = p.fieldAddr(i)
	}
	for _, u := range updates {
		loc := u.DS.location()
		if loc.parent != p {
			panic("core: CommitSiblings update does not belong to this parent")
		}
		if len(u.Shadows) == 0 {
			panic("core: CommitSiblings update with no shadows")
		}
		newFields[loc.slot] = u.final()
		changed[loc.slot] = true
	}
	// Build and flush the parent shadow; unchanged fields gain a parent.
	shadow := newParentBlock(s.heap, newFields)
	for i, f := range newFields {
		if !changed[i] && f != pmem.Nil {
			s.heap.Retain(f)
		}
	}
	oldParent := p.addr
	s.commitBegin()
	s.heap.Fence()
	s.heap.SetRoot(p.slot, shadow)
	s.commitEnd()
	s.heap.Release(oldParent) // cascades into replaced field versions
	for _, u := range updates {
		for _, sh := range u.Shadows[:len(u.Shadows)-1] {
			s.heap.Release(sh.Addr())
		}
	}
	p.addr = shadow
	for _, u := range updates {
		u.DS.adopt(u.final())
	}
}

// CommitUnrelated atomically installs updates to multiple unrelated
// root-bound datastructures (Fig. 8d): the shadows are made durable by one
// fence, then a very short transaction updates the root pointers together.
// This is the uncommon case and carries the transaction's extra ordering
// points.
func (s *Store) CommitUnrelated(updates ...Update) {
	if len(updates) == 0 {
		return
	}
	s.heap.Device().Sfence() // shadows durable before the pointer tx
	s.heap.Drain()
	s.commitBegin()
	s.tx.Begin()
	for _, u := range updates {
		loc := u.DS.location()
		if loc.parent != nil {
			panic("core: CommitUnrelated requires root-bound datastructures")
		}
		cell := s.heap.RootCellAddr(loc.slot)
		s.tx.Add(cell, 8)
	}
	for _, u := range updates {
		cell := s.heap.RootCellAddr(u.DS.location().slot)
		s.tx.WriteU64(cell, uint64(u.final()))
	}
	s.tx.Commit()
	s.commitEnd()
	for _, u := range updates {
		s.heap.Release(u.DS.currentAddr())
		for _, sh := range u.Shadows[:len(u.Shadows)-1] {
			s.heap.Release(sh.Addr())
		}
	}
	for _, u := range updates {
		u.DS.adopt(u.final())
	}
}
