// Package core implements MOD — Minimally Ordered Durable datastructures —
// the primary contribution of Haria, Hill & Swift (ASPLOS 2020). It layers
// failure atomicity on the purely functional datastructures of package
// funcds using Functional Shadowing (§4.1): every update builds a durable
// shadow with unordered, overlapped flushes, and a Commit step with a
// single ordering point atomically swaps an 8-byte persistent pointer from
// the original version to the shadow.
//
// Two interfaces are exposed, following §4.3:
//
//   - The Basic interface: handles (Map, Set, Vector, Stack, Queue) whose
//     update methods look mutable and are each a self-contained FASE with
//     one fence.
//
//   - The Composition interface: Pure* methods return shadow versions
//     without committing; CommitSingle, CommitSiblings, and
//     CommitUnrelated (§5.1, Fig. 8) atomically install one or more
//     shadows with one fence in the common cases.
//
// Recovery (§5.3) is a reachability pass over the heap from the named
// roots: interrupted-FASE allocations are swept, reference counts rebuilt.
//
// # Concurrency
//
// A Store value is a handle onto shared store state; Fork derives a
// handle with its own simulated clock for a worker goroutine. Committed
// versions are immutable, which makes concurrency natural:
//
//   - Basic-interface writers publish optimistically (optimistic.go): an
//     update snapshots the committed root pointer without locking, builds
//     its shadow in its own edit run, fences, and CAS-publishes the root.
//     A writer that keeps losing the CAS enrolls in a per-root flat-
//     combining queue; one writer drains all pending ops on one edit and
//     commits the merged version under a single fence. Updates remain
//     linearizable across handles and goroutines, and same-root writers
//     scale instead of queueing on a mutex. Composition-interface users
//     must keep a single logical writer per root between Pure* and
//     Commit*; the commit step returns ErrConcurrentWriter if it detects
//     a stale base version. Lock-based paths (Commit*, Batch, binds)
//     still serialize on per-root mutexes, which the optimistic paths'
//     publication CAS also briefly takes, so the two tiers interleave
//     safely.
//
//   - Readers never take root mutexes. Snapshot() pins a reclamation
//     epoch (alloc/epoch.go), atomically reads the root pointer, and
//     returns an immutable version that remains valid — never reclaimed,
//     never torn — until Close, regardless of concurrent commits.
//
// Version publication itself is the 8-byte root-pointer store of the
// paper's commit step, atomic for readers and for crashes alike.
package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
	"github.com/mod-ds/mod/internal/trace"
)

// commitLogRoot names the root slot anchoring the short-transaction log
// used by CommitUnrelated.
const commitLogRoot = "__mod_commitlog"

// storeShared is the state common to all handles of one store: one commit
// mutex per root slot, the transaction/batch-record lock shared by
// CommitUnrelated and multi-root group commits, the background
// group committer (batch.go), the per-root flat-combining state and
// commit-path counters (optimistic.go), and the closed flag every handle
// observes.
type storeShared struct {
	rootMu   [alloc.RootSlots]sync.Mutex
	txMu     sync.Mutex
	batchSeq uint64 // last batch-record sequence number; guarded by txMu
	com      committer
	closed   atomic.Bool

	// Two-tier Basic-interface commit path (optimistic.go).
	fc          [alloc.RootSlots]fcRoot
	serial      [alloc.RootSlots]float64 // mutex-path sim-time watermark; guarded by rootMu
	mutexCommit atomic.Bool              // force the legacy mutex path (baseline mode)
	cstats      commitCounters

	// Quarantined root slots (corrupt.go): damage found by open-time
	// verification or a Scrub. quarCount's atomic load keeps the
	// healthy-store bind path lock-free.
	quarMu    sync.Mutex
	quar      map[int]error
	quarCount atomic.Int32
}

// Store is a handle onto a persistent heap hosting MOD datastructures,
// located across process lifetimes by named roots. Derive one handle per
// goroutine with Fork; handles share all store state but carry their own
// simulated clock.
type Store struct {
	dev      pmem.Backend
	heap     *alloc.Heap
	tx       *stm.TX   // short transactions for CommitUnrelated (Fig. 8d)
	batchRec pmem.Addr // persistent batch record for group commits (batch.go)
	sh       *storeShared
}

// newStore formats dev and returns an empty store. External callers go
// through Open (optionally with WithDevices to supply the backend); the
// wrapped single-heap store stays reachable via DB.Store.
func newStore(dev pmem.Backend) (*Store, error) {
	heap := alloc.Format(dev)
	registerWalkers(heap)
	tx := stm.New(dev, heap, stm.ModeV15)
	slot, err := heap.RootSlot(commitLogRoot)
	if err != nil {
		return nil, fmt.Errorf("core: anchoring commit log: %w", err)
	}
	heap.SetRoot(slot, tx.LogAddr())
	rec, err := newBatchRecord(dev, heap)
	if err != nil {
		return nil, err
	}
	dev.Sfence()
	return &Store{dev: dev, heap: heap, tx: tx, batchRec: rec, sh: &storeShared{}}, nil
}

// newBatchRecord allocates the group-commit batch record and anchors it
// under its named root. The caller fences.
func newBatchRecord(dev pmem.Backend, heap *alloc.Heap) (pmem.Addr, error) {
	slot, err := heap.RootSlot(batchLogRoot)
	if err != nil {
		return pmem.Nil, fmt.Errorf("core: anchoring batch record: %w", err)
	}
	rec := heap.Alloc(batchRecSize, 0)
	dev.WriteU64(rec, batchStatusIdle)
	dev.WriteU64(rec+8, 0)
	dev.WriteU64(rec+16, 0)
	dev.FlushRange(rec, batchRecHdrSize)
	heap.SetRoot(slot, rec)
	return rec, nil
}

// storeAttachment carries a store between the phases of an open: the
// cheap replay of the durable commit machinery (attachStore), the
// expensive reachability recovery (heap.Recover, which a sharded open
// runs in parallel across shards), and the final handle construction
// (finishOpen).
type storeAttachment struct {
	dev     pmem.Backend
	heap    *alloc.Heap
	logAddr pmem.Addr
	rec     pmem.Addr
}

// attachStore opens the heap on dev and replays the durable commit
// machinery: a group commit interrupted mid-publication (all-or-nothing:
// a committed batch record completes every root swap; an uncommitted one
// is discarded) and an interrupted CommitUnrelated transaction, both
// before reachability tracing so recovery sees the final roots. The
// reachability scan itself is left to the caller.
func attachStore(dev pmem.Backend) (*storeAttachment, error) {
	heap, err := alloc.Open(dev)
	if err != nil {
		return nil, err
	}
	registerWalkers(heap)
	slot, err := heap.RootSlot(commitLogRoot)
	if err != nil {
		return nil, err
	}
	logAddr := heap.Root(slot)
	if logAddr == pmem.Nil {
		return nil, fmt.Errorf("core: store has no commit log root")
	}
	rec := pmem.Nil
	if recSlot, err := heap.RootSlot(batchLogRoot); err == nil {
		rec = heap.Root(recSlot)
	}
	if rec != pmem.Nil {
		recoverBatchRecord(dev, rec)
	}
	stm.Recover(dev, logAddr)
	return &storeAttachment{dev: dev, heap: heap, logAddr: logAddr, rec: rec}, nil
}

// finishOpen builds the Store handle once recovery has rebuilt the
// heap's volatile state, creating the batch record if the image
// predates group commit.
func (a *storeAttachment) finishOpen() (*Store, error) {
	if a.rec == pmem.Nil {
		rec, err := newBatchRecord(a.dev, a.heap)
		if err != nil {
			return nil, err
		}
		a.dev.Sfence()
		a.rec = rec
	}
	tx := stm.Attach(a.dev, a.heap, stm.ModeV15, a.logAddr, stm.DefaultLogSize)
	return &Store{dev: a.dev, heap: a.heap, tx: tx, batchRec: a.rec, sh: &storeShared{}}, nil
}

// openStore attaches to a previously formatted device, rolling back any
// interrupted commit transaction and garbage-collecting unreachable blocks
// (recovery per §5.3). The reported stats include leak reclamation counts.
// External callers go through Open with WithExistingImages (or
// WithDevices plus WithAttach), which recovers the same way and reports
// the result in a RecoveryInfo.
func openStore(dev pmem.Backend) (*Store, alloc.RecoveryStats, error) {
	s, rs, _, err := openStoreVerify(dev, verifyConfig{})
	return s, rs, err
}

// openStoreVerify is OpenStore with the corruption-resilience phases
// wired in (corrupt.go): verification runs after the reachability scan
// and before selective navigation is rebuilt, so replay never runs over
// a record chain that no longer verifies; without eager verification
// the heap arms lazy on-read checks instead.
func openStoreVerify(dev pmem.Backend, vc verifyConfig) (*Store, alloc.RecoveryStats, []DamagedRoot, error) {
	a, err := attachStore(dev)
	if err != nil {
		return nil, alloc.RecoveryStats{}, nil, err
	}
	start := dev.LocalNs()
	rs, err := a.heap.Recover()
	if err != nil {
		return nil, rs, nil, err
	}
	var (
		damaged []DamagedRoot
		skip    map[int]bool
	)
	if vc.verify {
		damaged, skip = verifyHeap(a.heap, 0, vc.salvage)
	}
	replayed, err := rebuildSelectiveRoots(a.heap, skip)
	if err != nil {
		return nil, rs, damaged, err
	}
	if !vc.verify {
		a.heap.ArmLazyVerify()
	}
	dev.NoteRecovery(replayed, dev.LocalNs()-start)
	s, err := a.finishOpen()
	if err != nil {
		return nil, rs, damaged, err
	}
	quarantineDamage([]*Store{s}, damaged)
	return s, rs, damaged, nil
}

func registerWalkers(heap *alloc.Heap) {
	funcds.RegisterWalkers(heap)
	heap.RegisterWalker(funcds.TagParent, walkParent)
}

// Fork returns a new handle onto the same store whose device and heap
// handles carry a fresh per-goroutine clock. Handles bound through the
// forked store account their simulated time to that goroutine.
func (s *Store) Fork() *Store {
	h := s.heap.Fork()
	return &Store{dev: h.Device(), heap: h, tx: s.tx, batchRec: s.batchRec, sh: s.sh}
}

// Device returns this handle's underlying persistent memory device handle.
func (s *Store) Device() pmem.Backend { return s.dev }

// Heap returns this handle's persistent allocator handle.
func (s *Store) Heap() *alloc.Heap { return s.heap }

// Stats returns the device counters accumulated so far.
func (s *Store) Stats() pmem.Stats { return s.dev.Stats() }

// Closed reports whether Close has been called on any handle of this
// store.
func (s *Store) Closed() bool { return s.sh.closed.Load() }

// Close makes everything committed so far durable and shuts the store
// down: the background committer (if running) drains and stops, a final
// fence covers the last publication, and every subsequent bind returns
// ErrStoreClosed while CommitAsync resolves its ticket with
// ErrStoreClosed instead of hanging. Close is idempotent — second and
// later calls (from any handle) return nil without re-running shutdown —
// and safe on a store whose open failed partway.
func (s *Store) Close() error {
	if s == nil || !s.sh.closed.CompareAndSwap(false, true) {
		return nil
	}
	// Marking closed first fails fast for new CommitAsync submissions;
	// batches already queued are drained durably by the Stop below.
	s.StopGroupCommitter()
	s.heap.Fence()
	return nil
}

// CheckerConfig returns the trace-checker configuration for this store:
// the allocator superblock and the commit transaction log are updated in
// place by design and are exempt from the out-of-place invariant.
func (s *Store) CheckerConfig() trace.CheckerConfig {
	logStart := s.tx.LogAddr() - alloc.HeaderSize // include the block header
	return trace.CheckerConfig{
		ExemptRanges: [][2]pmem.Addr{
			alloc.SuperblockRange(),
			{logStart, s.tx.LogAddr() + pmem.Addr(stm.DefaultLogSize)},
			{s.batchRec - alloc.HeaderSize, s.batchRec + pmem.Addr(batchRecSize)},
		},
		AllowUnflushedTail: true,
	}
}

// Sync orders every outstanding flush — including the most recent
// commit's root-pointer write, whose durability is otherwise guaranteed
// only by the next FASE's fence — and reclaims every retired block no
// pinned reader can reach. With a background group committer running it
// first drains every batch submitted before the call, so Sync remains
// the single "everything so far is durable" point. Call it before
// planned shutdown or when an operation must be durable on return. On a
// closed store Sync is a no-op: Close already fenced everything.
func (s *Store) Sync() {
	if s == nil || s.sh.closed.Load() {
		return
	}
	if t := s.asyncBarrier(); t != nil {
		t.Wait()
	}
	s.heap.Fence()
	// Fence reclaims deferred releases incrementally; Sync is the
	// "everything reclaimable is reclaimed" point, so drain the rest.
	s.heap.Drain()
}

// lockFor returns the commit mutex guarding a datastructure location:
// the root's own mutex, or the parent's root mutex for parent-bound
// structures (sibling fields share one committed pointer).
func (s *Store) lockFor(loc location) *sync.Mutex {
	if loc.parent != nil {
		return &s.sh.rootMu[loc.parent.slot]
	}
	return &s.sh.rootMu[loc.slot]
}

// resolveLocked reads a location's current committed version pointer from
// persistent memory. Caller holds the location's commit mutex.
func (s *Store) resolveLocked(loc location) pmem.Addr {
	if loc.parent != nil {
		loc.parent.refreshLocked()
		return loc.parent.fieldAddr(loc.slot)
	}
	return s.heap.Root(loc.slot)
}

// resolveForRead reads a location's current committed version pointer
// without locks, for snapshotting. The caller must have pinned the
// reclamation epoch first so the version cannot be recycled between the
// pointer load and the traversal.
func (s *Store) resolveForRead(loc location) pmem.Addr {
	if loc.parent != nil {
		paddr := s.heap.Root(loc.parent.slot)
		return pmem.Addr(s.dev.ReadU64(paddr + 8 + pmem.Addr(loc.slot*8)))
	}
	return s.heap.Root(loc.slot)
}

// BeginFASE marks the start of a failure-atomic section for trace-based
// verification (§5.4). The Basic interface brackets its operations
// automatically; Composition-interface users bracket manually or use FASE.
func (s *Store) BeginFASE() {
	if t := s.dev.Tracer(); t != nil {
		t.FASEBegin()
	}
}

// EndFASE marks the end of a failure-atomic section.
func (s *Store) EndFASE() {
	if t := s.dev.Tracer(); t != nil {
		t.FASEEnd()
	}
}

// FASE runs fn bracketed as one failure-atomic section.
func (s *Store) FASE(fn func()) {
	s.BeginFASE()
	fn()
	s.EndFASE()
}

func (s *Store) commitBegin() {
	if t := s.dev.Tracer(); t != nil {
		t.CommitBegin()
	}
}

func (s *Store) commitEnd() {
	if t := s.dev.Tracer(); t != nil {
		t.CommitEnd()
	}
}

// Version is one shadow version of a MOD datastructure, produced by the
// Pure* update operations.
type Version interface {
	// Addr returns the persistent address of the version's header.
	Addr() pmem.Addr
}

// Datastructure is a MOD handle that can be the target of a Commit. Only
// types in this package implement it.
type Datastructure interface {
	// Name returns the root or field name the handle is bound to.
	Name() string
	currentAddr() pmem.Addr
	adopt(addr pmem.Addr)
	location() location
	store() *Store
}

// location identifies where a datastructure's current-version pointer
// lives: a named root slot, or a field of a parent object.
type location struct {
	parent *Parent
	slot   int // root slot index, or parent field index
}

// checkCurrent returns ErrConcurrentWriter (wrapped with context) if the
// committed pointer in PM does not match the version a commit is about
// to replace — the signature of two logical writers racing on one root
// without coordination (the Composition interface requires one writer
// per root between Pure* and Commit*).
func (s *Store) checkCurrent(slot int, old pmem.Addr, what string) error {
	if cur := s.heap.Root(slot); cur != old {
		return fmt.Errorf("core: %s: base version %#x is stale (committed is %#x); one writer per root required between Pure* and Commit*: %w", what, uint64(old), uint64(cur), ErrConcurrentWriter)
	}
	return nil
}

// commitRoot is the common-case CommitSingle step (Fig. 8b): one fence to
// make every outstanding shadow flush durable, then an 8-byte atomic
// pointer write to publish the new version, then retirement of the old.
// A selective structure whose record chain has grown past the checkpoint
// threshold folds the chain into a fresh checkpoint here, adding a second
// fence for that rare commit (DESIGN.md §10). Caller holds the root's
// commit mutex. The old version's release is deferred past the epoch
// grace period: an optimistic writer may have based its shadow on it
// lock-free and still be retaining children out of it (DESIGN.md §12).
func (s *Store) commitRoot(slot int, old, final pmem.Addr) error {
	if err := s.checkCurrent(slot, old, "commit"); err != nil {
		return err
	}
	crown := s.maybeCheckpoint(final)
	s.commitBegin()
	s.heap.Fence() // the FASE's single ordering point; reclaims retired blocks
	s.clearCrown(crown)
	s.heap.SetRoot(slot, final)
	s.commitEnd()
	s.heap.ReleaseDeferred(old)
	return nil
}

// maybeCheckpoint folds a selective structure's record chain into a fresh
// checkpoint when it has grown past funcds.CheckpointEvery, returning the
// volatile crown of navigation nodes the commit step must then mark
// durable (clearCrown). It runs before the commit bracket: the crown
// flushes and the checkpoint clone are ordinary shadow work, made durable
// by the commit fence. Non-selective finals return nil at the cost of one
// tag read.
func (s *Store) maybeCheckpoint(final pmem.Addr) []pmem.Addr {
	if final == pmem.Nil || !funcds.NeedsCheckpoint(s.heap, final) {
		return nil
	}
	return funcds.PrepareCheckpoint(s.heap, final)
}

// clearCrown marks a checkpoint's crown of navigation nodes durable: each
// header rewrite is an 8-byte commit-legal write, fenced as a group before
// the publication write can become durable. Both orderings matter
// (DESIGN.md §10): the crown payloads were made durable by the commit
// fence before any clear is issued — a durable clear over a not-yet-
// durable payload would let recovery trace garbage — and the clears are
// fenced before the publication write, so recovery can never zero
// navigation nodes a durably published root depends on.
func (s *Store) clearCrown(crown []pmem.Addr) {
	if len(crown) == 0 {
		return
	}
	for _, a := range crown {
		s.heap.ClearVolatile(a)
	}
	s.dev.Sfence()
}

// rebuildSelectiveRoots reconstructs the DRAM-resident navigation of every
// selective structure root after a crash: each root's record chain is
// replayed on top of its durable checkpoint (funcds.RebuildSelective) and
// the rebuilt header republished. The swap is fenced on both sides so the
// old header retires only once the replacement is durably published.
// Slots in skip — quarantined or already salvaged by verifyHeap — are
// left untouched. Returns the number of record operations replayed.
func rebuildSelectiveRoots(heap *alloc.Heap, skip map[int]bool) (uint64, error) {
	var total uint64
	for slot := 0; slot < alloc.RootSlots; slot++ {
		if skip[slot] {
			continue
		}
		root := heap.Root(slot)
		if !funcds.IsSelective(heap, root) {
			continue
		}
		newHdr, replayed, rebuilt, err := funcds.RebuildSelective(heap, root)
		if err != nil {
			return total, fmt.Errorf("core: rebuilding selective root (slot %d): %w", slot, err)
		}
		total += uint64(replayed)
		if !rebuilt {
			continue
		}
		heap.Fence()
		heap.SetRoot(slot, newHdr)
		heap.Fence()
		heap.Release(root)
	}
	return total, nil
}

// CommitSingle atomically replaces ds's current version with the last
// shadow in the chain, reclaiming the original and all intermediate
// shadows (Fig. 7a/b, Fig. 8b). The datastructure must be root-bound;
// parent-bound structures commit through CommitSiblings. Returns
// ErrConcurrentWriter (and publishes nothing) if ds's base version is no
// longer the committed one — two uncoordinated writers raced on the
// root; the caller should rebuild from Current and retry.
func (s *Store) CommitSingle(ds Datastructure, shadows ...Version) error {
	if len(shadows) == 0 {
		return nil
	}
	loc := ds.location()
	mu := s.lockFor(loc)
	mu.Lock()
	defer mu.Unlock()
	return s.commitSingleLocked(ds, shadows)
}

// commitSingleLocked is CommitSingle with the location's commit mutex
// already held (the locked Basic path acquires it before building
// shadows).
func (s *Store) commitSingleLocked(ds Datastructure, shadows []Version) error {
	loc := ds.location()
	if loc.parent != nil {
		return s.commitSiblingsLocked(loc.parent, []Update{{DS: ds, Shadows: shadows}})
	}
	old := ds.currentAddr()
	final := shadows[len(shadows)-1].Addr()
	if err := s.commitRoot(loc.slot, old, final); err != nil {
		return err
	}
	s.releaseIntermediates(shadows, final)
	ds.adopt(final)
	return nil
}

// releaseIntermediates retires the non-final shadows of a chain. Under an
// edit context successive operations mutate one owned version in place,
// so the chain repeats a single address: dedupe, and never release the
// published final version.
func (s *Store) releaseIntermediates(shadows []Version, final pmem.Addr) {
	var seen []pmem.Addr
outer:
	for _, sh := range shadows[:len(shadows)-1] {
		a := sh.Addr()
		if a == final {
			continue
		}
		for _, b := range seen {
			if a == b {
				continue outer
			}
		}
		seen = append(seen, a)
		s.heap.Release(a)
	}
}

// Update pairs a datastructure with the shadow chain to install, for
// CommitSiblings and CommitUnrelated.
type Update struct {
	DS      Datastructure
	Shadows []Version
}

func (u Update) final() pmem.Addr { return u.Shadows[len(u.Shadows)-1].Addr() }

// CommitSiblings atomically installs updates to datastructures that are
// fields of one parent object (Fig. 8c): a shadow of the parent pointing
// at the new versions is built and flushed, one fence orders everything,
// and the parent's root pointer is swapped. Reclaiming the old parent
// cascades to the replaced versions. Returns ErrConcurrentWriter (and
// publishes nothing) if the parent moved under the caller.
func (s *Store) CommitSiblings(p *Parent, updates ...Update) error {
	if len(updates) == 0 {
		return nil
	}
	mu := &s.sh.rootMu[p.slot]
	mu.Lock()
	defer mu.Unlock()
	return s.commitSiblingsLocked(p, updates)
}

func (s *Store) commitSiblingsLocked(p *Parent, updates []Update) error {
	newFields := make([]pmem.Addr, len(p.fields))
	changed := make([]bool, len(p.fields))
	for i := range p.fields {
		newFields[i] = p.fieldAddr(i)
	}
	for _, u := range updates {
		loc := u.DS.location()
		if loc.parent != p {
			panic("core: CommitSiblings update does not belong to this parent")
		}
		if len(u.Shadows) == 0 {
			panic("core: CommitSiblings update with no shadows")
		}
		newFields[loc.slot] = u.final()
		changed[loc.slot] = true
	}
	oldParent := p.Addr()
	if err := s.checkCurrent(p.slot, oldParent, "CommitSiblings"); err != nil {
		return err
	}
	// Build and flush the parent shadow; unchanged fields gain a parent.
	shadow := newParentBlock(s.heap, newFields)
	for i, f := range newFields {
		if !changed[i] && f != pmem.Nil {
			s.heap.Retain(f)
		}
	}
	s.commitBegin()
	s.heap.Fence()
	s.heap.SetRoot(p.slot, shadow)
	s.commitEnd()
	// Parent roots never take the optimistic commit path (parent-bound
	// updates stay mutex-serialized), so no lock-free builder can be
	// retaining out of the old parent: the eager cascade is safe here.
	s.heap.Release(oldParent) // cascades into replaced field versions
	for _, u := range updates {
		s.releaseIntermediates(u.Shadows, u.final())
	}
	p.adopt(shadow)
	for _, u := range updates {
		u.DS.adopt(u.final())
	}
	return nil
}

// CommitUnrelated atomically installs updates to multiple unrelated
// root-bound datastructures (Fig. 8d): the shadows are made durable by one
// fence, then a very short transaction updates the root pointers together.
// This is the uncommon case and carries the transaction's extra ordering
// points. The commit locks every target root (in slot order, so
// overlapping multi-root commits cannot deadlock) plus the shared
// transaction log. Returns ErrConcurrentWriter (and publishes nothing)
// if any update's base version is stale.
func (s *Store) CommitUnrelated(updates ...Update) error {
	if len(updates) == 0 {
		return nil
	}
	slots := make([]int, 0, len(updates))
	for _, u := range updates {
		loc := u.DS.location()
		if loc.parent != nil {
			panic("core: CommitUnrelated requires root-bound datastructures")
		}
		slots = append(slots, loc.slot)
	}
	sort.Ints(slots)
	slots = slices.Compact(slots)
	for _, slot := range slots {
		s.sh.rootMu[slot].Lock()
	}
	s.sh.txMu.Lock()
	defer func() {
		s.sh.txMu.Unlock()
		for i := len(slots) - 1; i >= 0; i-- {
			s.sh.rootMu[slots[i]].Unlock()
		}
	}()
	for _, u := range updates {
		if err := s.checkCurrent(u.DS.location().slot, u.DS.currentAddr(), "CommitUnrelated"); err != nil {
			return err
		}
	}
	var crown []pmem.Addr
	for _, u := range updates {
		crown = append(crown, s.maybeCheckpoint(u.final())...)
	}
	s.dev.Sfence() // shadows durable before the pointer tx
	s.heap.Drain()
	s.commitBegin()
	s.clearCrown(crown) // fenced before the tx's commit point
	s.tx.Begin()
	for _, u := range updates {
		cell := s.heap.RootCellAddr(u.DS.location().slot)
		s.tx.Add(cell, 8)
	}
	for _, u := range updates {
		cell := s.heap.RootCellAddr(u.DS.location().slot)
		s.tx.WriteU64(cell, uint64(u.final()))
	}
	s.tx.Commit()
	s.commitEnd()
	for _, u := range updates {
		// Root-bound versions may have lock-free builders based on them:
		// defer the replaced versions' cascades past the epoch grace.
		s.heap.ReleaseDeferred(u.DS.currentAddr())
		s.releaseIntermediates(u.Shadows, u.final())
	}
	for _, u := range updates {
		u.DS.adopt(u.final())
	}
	return nil
}
