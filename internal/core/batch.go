package core

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Group commit (DESIGN.md §7). A Batch coalesces many shadow updates —
// across datastructures, across roots, and (through the background
// committer) across goroutines — into a single flush+sfence epoch. Every
// operation in the batch builds its shadow with unordered overlapped
// flushes; one shared fence then makes the whole epoch durable and the
// new versions are published together, so the per-FASE ordering point of
// the Basic interface is amortized over the batch:
//
//	fences/op = 1/B         (batch touches one root)
//	fences/op = 3/B         (batch touches many roots)
//
// against 1 fence per operation unbatched.
//
// Batched operations are applied at commit time against the then-current
// committed versions, under the root commit mutexes, so batches from
// concurrent goroutines interleave linearizably with each other and with
// Basic-interface updates. Operations do not return values; use the
// Basic interface when an update's result is needed immediately.
//
// # Crash atomicity
//
// A batch is all-or-nothing. When one root changed, publication is the
// usual 8-byte atomic pointer swap. When several changed, the store
// writes a persistent batch record — the (cell, new version) pairs plus
// a checksum — makes it durable with the shadows, sets a committed flag
// (the batch's atomic commit point, one 8-byte write), and only then
// overwrites the root cells. OpenStore replays a committed record whose
// checksum validates, so a crash anywhere inside publication recovers
// either every root swap or none of them; a crash before the commit
// point recovers none, and the batch's shadows are swept as leaks.
//
// # Async durability
//
// Commit applies and publishes the batch synchronously. CommitAsync
// hands it to the store's background committer (StartGroupCommitter),
// which coalesces submissions from any number of goroutines into shared
// fence epochs and returns a Ticket; Ticket.Wait blocks until the
// batch's publication is fence-covered, i.e. fully durable. Under load
// the pipeline needs no extra fences — a group's publication becomes
// durable under the next group's fence — and an idle committer issues
// one closing fence.

// batchLogRoot names the root slot anchoring the persistent batch
// record used for multi-root publication.
const batchLogRoot = "__mod_batchlog"

// Batch record layout (payload offsets):
//
//	+0   status   (0 idle; a nonzero batch sequence number = committed —
//	              the 8-byte status write is the atomic commit point)
//	+8   count    (number of entries)
//	+16  checksum (fnv1a over the sequence number, count, and entries)
//	+24  entries: count × {root cell addr u64, new version addr u64}
//
// The checksum binds the body to one specific commit: it covers the
// sequence number that the commit point will write into the status
// word, so recovery replays only when the durable status, count, and
// entries all belong to the same batch — independent of how the
// record's fields straddle cache lines under partial eviction.
const (
	batchStatusIdle   = 0
	batchRecHdrSize   = 24
	batchRecEntrySize = 16
)

// MaxBatchRoots is the most distinct roots one batch commit can change,
// bounded by the capacity of the persistent batch record.
const MaxBatchRoots = 62

const batchRecSize = batchRecHdrSize + MaxBatchRoots*batchRecEntrySize

// batchChecksum hashes the record body (count then the entry words) so
// recovery can reject a torn record: the checksum is durable before the
// committed flag, so a record that validates is exactly the one the
// crashed commit wrote.
func batchChecksum(words []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range words {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	return h
}

// recoverBatchRecord replays a committed batch record left by a crash
// mid-publication, completing the batch's root swaps. Run before the
// reachability scan so recovery traces the post-batch roots. Returns
// whether a replay happened.
func recoverBatchRecord(dev pmem.Backend, rec pmem.Addr) bool {
	seq := dev.ReadU64(rec)
	if seq == batchStatusIdle {
		return false
	}
	count := dev.ReadU64(rec + 8)
	sum := dev.ReadU64(rec + 16)
	replayed := false
	if count >= 1 && count <= MaxBatchRoots {
		words := make([]uint64, 0, 2+2*count)
		words = append(words, seq, count)
		for i := uint64(0); i < count; i++ {
			e := rec + batchRecHdrSize + pmem.Addr(i*batchRecEntrySize)
			words = append(words, dev.ReadU64(e), dev.ReadU64(e+8))
		}
		if batchChecksum(words) == sum {
			// A validating checksum proves the durable body belongs to
			// this very status (both were durable before the commit
			// point could be): redo every root swap — idempotent 8-byte
			// writes. A mismatch means the status is a stale leftover of
			// a batch that already completed its swaps, torn against a
			// later batch's partially durable refill — discard it.
			for i := uint64(0); i < count; i++ {
				cell := pmem.Addr(words[2+2*i])
				val := pmem.Addr(words[3+2*i])
				dev.WriteAddr(cell, val)
				dev.Clwb(cell)
			}
			replayed = true
		}
	}
	dev.Sfence() // replayed cells durable before the record is retired
	dev.WriteU64(rec, batchStatusIdle)
	dev.Clwb(rec)
	dev.Sfence()
	return replayed
}

// batchOp is one deferred update: applied at commit time against the
// root's then-current version inside the batch's shared edit context,
// returning the new version's address. Operations after the first on a
// root mutate the edit-owned shadow in place, so apply commonly returns
// cur itself.
type batchOp struct {
	ds    Datastructure
	apply func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr
}

// Batch accumulates updates for one group commit. A Batch is not safe
// for concurrent use; goroutines build their own batches and the commit
// layer interleaves them. Commit (or CommitAsync) consumes the batch,
// leaving it empty for reuse.
type Batch struct {
	st  *Store
	ops []batchOp
}

// NewBatch returns an empty batch bound to this store handle.
func (s *Store) NewBatch() *Batch { return &Batch{st: s} }

// Len returns the number of operations accumulated.
func (b *Batch) Len() int { return len(b.ops) }

func (b *Batch) addOp(op batchOp) {
	if op.ds.location().parent != nil {
		panic(fmt.Sprintf("core: batched update of parent-bound %q (batches require root-bound datastructures; use CommitSiblings)", op.ds.Name()))
	}
	b.ops = append(b.ops, op)
}

// The op builders below are shared with ShardedBatch (sharded.go),
// which routes the same deferred updates across shard stores.

func mapSetOp(m *Map, key, val []byte) batchOp {
	k, v := slices.Clone(key), slices.Clone(val)
	return batchOp{ds: m, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _ := funcds.MapAt(s.heap, cur).WithEdit(ed).Set(k, v)
		return next.Addr()
	}}
}

func mapDeleteOp(m *Map, key []byte) batchOp {
	k := slices.Clone(key)
	return batchOp{ds: m, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _ := funcds.MapAt(s.heap, cur).WithEdit(ed).Delete(k)
		return next.Addr()
	}}
}

func setInsertOp(st *Set, key []byte) batchOp {
	k := slices.Clone(key)
	return batchOp{ds: st, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _ := funcds.SetDSAt(s.heap, cur).WithEdit(ed).Insert(k)
		return next.Addr()
	}}
}

func setDeleteOp(st *Set, key []byte) batchOp {
	k := slices.Clone(key)
	return batchOp{ds: st, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _ := funcds.SetDSAt(s.heap, cur).WithEdit(ed).Delete(k)
		return next.Addr()
	}}
}

func vectorPushOp(v *Vector, val uint64) batchOp {
	return batchOp{ds: v, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.VectorAt(s.heap, cur).WithEdit(ed).Push(val).Addr()
	}}
}

func vectorUpdateOp(v *Vector, i uint64, val uint64) batchOp {
	return batchOp{ds: v, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.VectorAt(s.heap, cur).WithEdit(ed).Update(i, val).Addr()
	}}
}

func stackPushOp(st *Stack, val uint64) batchOp {
	return batchOp{ds: st, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.StackAt(s.heap, cur).WithEdit(ed).Push(val).Addr()
	}}
}

func stackPopOp(st *Stack) batchOp {
	return batchOp{ds: st, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _, _ := funcds.StackAt(s.heap, cur).WithEdit(ed).Pop()
		return next.Addr()
	}}
}

func queueEnqueueOp(q *Queue, val uint64) batchOp {
	return batchOp{ds: q, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.QueueAt(s.heap, cur).WithEdit(ed).Push(val).Addr()
	}}
}

func queueDequeueOp(q *Queue) batchOp {
	return batchOp{ds: q, apply: func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, _, _ := funcds.QueueAt(s.heap, cur).WithEdit(ed).Pop()
		return next.Addr()
	}}
}

// MapSet queues binding key to val in m. Key and value are copied, so
// the caller may reuse its buffers immediately.
func (b *Batch) MapSet(m *Map, key, val []byte) { b.addOp(mapSetOp(m, key, val)) }

// MapDelete queues removing key from m.
func (b *Batch) MapDelete(m *Map, key []byte) { b.addOp(mapDeleteOp(m, key)) }

// SetInsert queues adding key to st.
func (b *Batch) SetInsert(st *Set, key []byte) { b.addOp(setInsertOp(st, key)) }

// SetDelete queues removing key from st.
func (b *Batch) SetDelete(st *Set, key []byte) { b.addOp(setDeleteOp(st, key)) }

// VectorPush queues appending val to v.
func (b *Batch) VectorPush(v *Vector, val uint64) { b.addOp(vectorPushOp(v, val)) }

// VectorUpdate queues replacing element i of v with val.
func (b *Batch) VectorUpdate(v *Vector, i uint64, val uint64) { b.addOp(vectorUpdateOp(v, i, val)) }

// StackPush queues pushing val onto st.
func (b *Batch) StackPush(st *Stack, val uint64) { b.addOp(stackPushOp(st, val)) }

// StackPop queues removing the top element of st (no-op on empty).
func (b *Batch) StackPop(st *Stack) { b.addOp(stackPopOp(st)) }

// QueueEnqueue queues appending val at the tail of q.
func (b *Batch) QueueEnqueue(q *Queue, val uint64) { b.addOp(queueEnqueueOp(q, val)) }

// QueueDequeue queues removing the head element of q (no-op on empty).
func (b *Batch) QueueDequeue(q *Queue) { b.addOp(queueDequeueOp(q)) }

// Commit applies every queued operation and publishes the results under
// one shared fence epoch, leaving the batch empty. Like a Basic-interface
// FASE, the final root-pointer swap's durability rides on the next fence
// (Sync forces it); the batch is nonetheless crash-atomic — recovery sees
// all of it or none of it.
func (b *Batch) Commit() {
	ops := b.ops
	b.ops = nil
	b.st.commitBatch(ops)
}

// CommitAsync submits the batch to the store's background committer and
// returns a ticket that resolves when the batch is durable. Without a
// running committer it degrades to a synchronous Commit plus one fence.
// On a closed store the batch is dropped and the ticket resolves
// immediately with ErrStoreClosed.
func (b *Batch) CommitAsync() *Ticket {
	ops := b.ops
	b.ops = nil
	return b.st.commitAsyncOps(ops)
}

// commitAsyncOps routes deferred ops through the background committer
// (shared with ShardedBatch.CommitAsync for single-shard submissions).
func (s *Store) commitAsyncOps(ops []batchOp) *Ticket {
	t := &Ticket{done: make(chan struct{})}
	c := &s.sh.com
	c.mu.Lock()
	if s.sh.closed.Load() {
		// Rejecting under c.mu orders the check against Close: a Close
		// that won the flag has not yet drained, so anything enqueued
		// before the flag was set is still serviced, and anything after
		// is refused here rather than stranded on a dead queue.
		c.mu.Unlock()
		return failedTicket(ErrStoreClosed)
	}
	if !c.running || c.quit {
		// Not running, or a Stop is draining the queue: committing here
		// keeps the batch from landing on a queue no worker will service.
		c.mu.Unlock()
		s.commitBatch(ops)
		s.heap.Fence()
		close(t.done)
		return t
	}
	c.queue = append(c.queue, submission{ops: ops, ticket: t})
	c.cond.Signal()
	c.mu.Unlock()
	return t
}

// rootChange records one root's pending publication: the committed
// version a batch applied against and the final shadow to install.
type rootChange struct {
	slot       int
	old, final pmem.Addr
}

// preparedBatch is an applied-but-unpublished batch on one store: root
// commit mutexes held, shadow chains built and sealed, publication
// pending. The single-store commit path publishes locally
// (publishLocal); the cross-shard path (sharded.go) publishes several
// prepared batches through one shard manifest. Either way the caller
// must call finish afterwards to retire superseded versions, adopt the
// new ones, and release the locks.
type preparedBatch struct {
	s        *Store
	ops      []batchOp
	locked   []int
	changed  []rootChange
	finals   map[int]pmem.Addr
	releases []pmem.Addr // intermediate shadows: never published, retired eagerly
}

// prepareBatch locks every root the ops touch (ascending slot order, so
// overlapping batches cannot deadlock), applies each op against the
// root's then-current committed version inside one shared edit context,
// and seals the edit so every dirtied line is inflight, ready for the
// publication fence. The first operation on a root copies its path;
// subsequent operations mutate the edit-owned shadow in place, so an
// N-op batch copies each path node at most once.
func (s *Store) prepareBatch(ops []batchOp) *preparedBatch {
	// Group ops by root slot, preserving submission order within a root.
	perSlot := make(map[int][]batchOp)
	var slots []int
	for _, op := range ops {
		slot := op.ds.location().slot
		if _, ok := perSlot[slot]; !ok {
			slots = append(slots, slot)
		}
		perSlot[slot] = append(perSlot[slot], op)
	}
	if len(slots) > MaxBatchRoots {
		panic(fmt.Sprintf("core: batch touches %d roots (max %d)", len(slots), MaxBatchRoots))
	}
	locked := slices.Clone(slots)
	sort.Ints(locked)
	for _, slot := range locked {
		s.sh.rootMu[slot].Lock()
	}

	s.BeginFASE()
	ed := s.heap.BeginEdit()
	p := &preparedBatch{s: s, ops: ops, locked: locked, finals: make(map[int]pmem.Addr, len(slots))}
	for _, slot := range slots {
		old := s.heap.Root(slot)
		cur := old
		for _, op := range perSlot[slot] {
			next := op.apply(s, ed, cur)
			if next == cur {
				continue // no-op or in-place update on the owned shadow
			}
			if cur != old {
				p.releases = append(p.releases, cur) // intermediate shadow
			}
			cur = next
		}
		p.finals[slot] = cur
		if cur != old {
			p.changed = append(p.changed, rootChange{slot: slot, old: old, final: cur})
		}
	}
	ed.Seal() // coalesced flush sweep, ahead of the publish fence
	return p
}

// publishLocal installs the prepared batch's root changes on its own
// store: one root changed needs only the atomic pointer swap after the
// shared fence; several changed go through the persistent batch record
// so recovery replays all swaps or none.
func (p *preparedBatch) publishLocal() {
	s := p.s
	switch {
	case len(p.changed) == 0:
		// Nothing to publish or order.
	case len(p.changed) == 1:
		c := p.changed[0]
		crown := s.maybeCheckpoint(c.final)
		s.commitBegin()
		s.heap.Fence() // the batch's single ordering point
		s.clearCrown(crown)
		s.heap.SetRoot(c.slot, c.final)
		s.commitEnd()
	default:
		var crown []pmem.Addr
		for _, c := range p.changed {
			crown = append(crown, s.maybeCheckpoint(c.final)...)
		}
		s.sh.txMu.Lock()
		s.commitBegin()
		s.sh.batchSeq++ // serialized by txMu; 0 is reserved for idle
		seq := s.sh.batchSeq
		words := make([]uint64, 0, 2+2*len(p.changed))
		words = append(words, seq, uint64(len(p.changed)))
		for i, c := range p.changed {
			cell := s.heap.RootCellAddr(c.slot)
			e := s.batchRec + batchRecHdrSize + pmem.Addr(i*batchRecEntrySize)
			s.dev.WriteU64(e, uint64(cell))
			s.dev.WriteU64(e+8, uint64(c.final))
			words = append(words, uint64(cell), uint64(c.final))
		}
		s.dev.WriteU64(s.batchRec+8, uint64(len(p.changed)))
		s.dev.WriteU64(s.batchRec+16, batchChecksum(words))
		s.dev.FlushRange(s.batchRec+8, 16+len(p.changed)*batchRecEntrySize)
		// Fence A: shadows, record body, and any previous batch's record
		// retirement are durable. The status word is still idle, so a
		// crash here recovers none of the batch.
		s.heap.Fence()
		// Checkpoint crowns clear (and fence) between A and B: the crown
		// payloads are durable after fence A, and the clears are durable
		// before the commit point, so a replayed swap can never point at
		// a structure whose navigation recovery would zero.
		s.clearCrown(crown)
		s.dev.WriteU64(s.batchRec, seq)
		s.dev.Clwb(s.batchRec)
		s.dev.Sfence() // fence B: the status write is the commit point
		for _, c := range p.changed {
			s.heap.SetRoot(c.slot, c.final)
		}
		s.dev.Sfence() // fence C: swaps durable before the record retires
		s.dev.WriteU64(s.batchRec, batchStatusIdle)
		s.dev.Clwb(s.batchRec) // durability rides to the next fence
		s.commitEnd()
		s.sh.txMu.Unlock()
	}
}

// finish retires every superseded version in one batch, adopts the new
// versions into the handles, closes the FASE, and releases the root
// locks. Must run after publication. Replaced root versions release
// deferred (an optimistic builder may still be retaining out of them);
// intermediate shadows were never published and retire eagerly.
func (p *preparedBatch) finish() {
	s := p.s
	s.heap.ReleaseBatch(p.releases)
	for _, c := range p.changed {
		s.heap.ReleaseDeferred(c.old)
	}
	for _, op := range p.ops {
		op.ds.adopt(p.finals[op.ds.location().slot])
	}
	s.EndFASE()
	s.dev.NoteBatch(len(p.ops))
	for i := len(p.locked) - 1; i >= 0; i-- {
		s.sh.rootMu[p.locked[i]].Unlock()
	}
}

// commitBatch is the group-commit step: apply every op against the
// current committed versions under the root locks, fence once for the
// whole epoch, publish all changed roots, and retire every superseded
// version in one batch.
func (s *Store) commitBatch(ops []batchOp) {
	if len(ops) == 0 {
		return
	}
	p := s.prepareBatch(ops)
	p.publishLocal()
	p.finish()
}

// Ticket tracks an asynchronously submitted batch. Wait returns once the
// batch is published and its publication fence-covered (durable), or the
// submission was rejected — Err distinguishes the two.
type Ticket struct {
	done chan struct{}
	err  error
}

// failedTicket returns an already-resolved ticket carrying err, for
// submissions rejected outright (e.g. ErrStoreClosed).
func failedTicket(err error) *Ticket {
	t := &Ticket{done: make(chan struct{}), err: err}
	close(t.done)
	return t
}

// FailedTicket returns an already-resolved ticket carrying err. Serving
// layers use it from KV fakes to inject commit failures into their
// retry paths without reaching into the store.
func FailedTicket(err error) *Ticket { return failedTicket(err) }

// Wait blocks until the batch is durable or rejected.
func (t *Ticket) Wait() { <-t.done }

// Err returns nil once Wait has returned and the batch is durable, or
// the rejection reason (ErrStoreClosed) if the submission was refused.
// Only valid after Wait (or a true Done).
func (t *Ticket) Err() error { return t.err }

// Done reports without blocking whether the batch is durable.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// submission is one queued batch awaiting the background committer.
type submission struct {
	ops    []batchOp
	ticket *Ticket
}

// committer is the background group-commit pipeline shared by all
// handles of a store.
type committer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []submission
	running bool
	quit    bool
	maxOps  int
	linger  atomic.Int64 // ns to wait for stragglers before a settle fence
	wg      sync.WaitGroup
}

// lingerWait polls the queue for up to d, yielding between polls
// (time.Sleep rounds tens-of-µs windows up to the timer tick, which
// would put milliseconds on the settle path). Returns true as soon as
// there is work to fold into the next group.
func (c *committer) lingerWait(d time.Duration) bool {
	deadline := time.Now().Add(d)
	for {
		runtime.Gosched()
		c.mu.Lock()
		busy := len(c.queue) > 0 || c.quit
		c.mu.Unlock()
		if busy {
			return true
		}
		if !time.Now().Before(deadline) {
			return false
		}
	}
}

// SetCommitterLinger sets a collection window for the background
// committer: when its queue drains with tickets still awaiting a fence,
// it waits up to d for new submissions before paying the settling
// fence. Zero (the default) settles immediately — lowest latency, but
// under network-paced open-loop load arrivals rarely overlap, so every
// batch gets a private fence epoch. A linger of a few tens of
// microseconds lets concurrent clients' submissions pile into shared
// epochs, which is what makes fences/op fall as client concurrency
// rises. Takes effect immediately, even on a running committer.
func (s *Store) SetCommitterLinger(d time.Duration) {
	s.sh.com.linger.Store(int64(d))
}

// DefaultCommitterMaxOps caps how many operations the background
// committer coalesces into one fence epoch.
const DefaultCommitterMaxOps = 256

// StartGroupCommitter launches the store's background committer, which
// coalesces CommitAsync submissions from any number of goroutines into
// shared fence epochs. maxOps caps the operations per epoch (0 uses
// DefaultCommitterMaxOps). Starting an already-running committer is a
// no-op.
func (s *Store) StartGroupCommitter(maxOps int) {
	if maxOps <= 0 {
		maxOps = DefaultCommitterMaxOps
	}
	c := &s.sh.com
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
	if c.running {
		return
	}
	c.running = true
	c.quit = false
	c.maxOps = maxOps
	c.wg.Add(1)
	worker := s.Fork() // its own clock: committer time is its own critical path
	go worker.committerLoop()
}

// StopGroupCommitter drains the queue, makes every submitted batch
// durable, and stops the background committer. Safe to call when not
// running.
func (s *Store) StopGroupCommitter() {
	c := &s.sh.com
	c.mu.Lock()
	if !c.running {
		c.mu.Unlock()
		return
	}
	c.quit = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
	c.mu.Lock()
	c.running = false
	c.mu.Unlock()
}

// asyncBarrier submits an empty batch and returns its ticket, or nil if
// the committer is not running. Waiting on the ticket guarantees every
// batch submitted before it is durable.
func (s *Store) asyncBarrier() *Ticket {
	c := &s.sh.com
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.running || c.quit {
		return nil
	}
	t := &Ticket{done: make(chan struct{})}
	c.queue = append(c.queue, submission{ticket: t})
	c.cond.Signal()
	return t
}

// committerLoop coalesces queued submissions into group commits. A
// group's root-pointer swaps become durable under the next group's
// fence, so tickets close one group late while the pipeline is busy;
// when the queue drains, one closing fence settles the stragglers.
func (s *Store) committerLoop() {
	c := &s.sh.com
	defer c.wg.Done()
	var pending []*Ticket // published, awaiting a covering fence
	settle := func() {
		if len(pending) == 0 {
			return
		}
		s.heap.Fence()
		for _, t := range pending {
			close(t.done)
		}
		pending = nil
	}
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.quit {
			if len(pending) > 0 {
				// Settle stragglers before sleeping so an idle pipeline
				// never strands a ticket — but first give imminent
				// submissions a linger window to ride the next group's
				// fence instead of forcing a dedicated settle fence.
				c.mu.Unlock()
				if d := c.linger.Load(); d > 0 && c.lingerWait(time.Duration(d)) {
					c.mu.Lock()
					continue
				}
				settle()
				c.mu.Lock()
				continue
			}
			c.cond.Wait()
		}
		if len(c.queue) == 0 && c.quit {
			c.mu.Unlock()
			settle()
			return
		}
		take, total := 0, 0
		for take < len(c.queue) {
			n := len(c.queue[take].ops)
			if take > 0 && total+n > c.maxOps {
				break
			}
			take++
			total += n
		}
		subs := slices.Clone(c.queue[:take])
		c.queue = c.queue[take:]
		c.mu.Unlock()

		var ops []batchOp
		for _, sub := range subs {
			ops = append(ops, sub.ops...)
		}
		// The group's fence covers the previous group's root swaps. A
		// group that never fenced (a bare barrier, or all no-op updates)
		// leaves the previous tickets pending until a later fence.
		f0 := s.dev.FenceSeq()
		s.commitBatch(ops)
		if s.dev.FenceSeq() > f0 {
			for _, t := range pending {
				close(t.done)
			}
			pending = pending[:0]
		}
		for _, sub := range subs {
			pending = append(pending, sub.ticket)
		}
	}
}
