package core

import (
	"fmt"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Corruption-resilient open and degraded-mode serving (DESIGN.md §13).
// Power-loss recovery (§5.3) trusts the durable image byte for byte;
// media faults — bit flips, torn internal stores, unreadable lines —
// break that trust. This file is the store-level response:
//
//   - WithVerify walks every root eagerly at open (verify-before-
//     descend, alloc.VerifyRoot) and quarantines the damaged ones: the
//     store opens degraded, healthy roots serve normally, and binds to a
//     quarantined root return ErrCorrupted instead of the open crashing
//     or silently serving garbage.
//   - WithSalvage additionally tries to repair before quarantining.
//     Selective roots (DESIGN.md §10) carry their own redundancy — a
//     verified checkpoint plus a record chain — so salvage replays the
//     chain when it verifies, or rolls back to the checkpoint (dropping
//     the records, a bounded, reported data loss) when it does not.
//   - Without WithVerify, a recovered store arms lazy verification
//     (alloc.ArmLazyVerify): the first post-recovery read of each
//     checksummed node re-verifies it, raising a typed CorruptionPanic
//     the serving layer converts into an error reply.
//   - Scrub re-verifies a live store's roots with bounded pacing, for
//     background media scrubbing between opens.

// CorruptionError wraps ErrCorrupted with the coordinates of the
// damage: the shard (0 on a single-heap store) and root slot it was
// found under, and the detailed cause (usually an *alloc.BlockError).
// Test with errors.Is(err, ErrCorrupted).
type CorruptionError struct {
	Shard int
	Slot  int // root slot, or -1 when the damage is not root-specific
	Err   error
}

func (e *CorruptionError) Error() string {
	if e.Slot < 0 {
		return fmt.Sprintf("corrupted store (shard %d): %v", e.Shard, e.Err)
	}
	return fmt.Sprintf("corrupted root (shard %d, slot %d): %v", e.Shard, e.Slot, e.Err)
}

func (e *CorruptionError) Unwrap() []error { return []error{ErrCorrupted, e.Err} }

// DamagedRoot reports one root that failed verification at open (or
// during a Scrub). A salvaged root serves normally afterwards — at the
// cost of DroppedOps record operations if salvage had to roll back to
// the checkpoint — while an unsalvaged one is quarantined: binds to it
// return ErrCorrupted until the store is repaired offline.
type DamagedRoot struct {
	Shard int
	Slot  int
	Err   error // the *CorruptionError found by verification
	// Salvaged is true when a rollback or replay produced a verifying
	// version that was re-published; the root is NOT quarantined.
	Salvaged bool
	// DroppedOps counts record-chain operations lost by a
	// checkpoint rollback (zero when the chain replayed cleanly).
	DroppedOps uint64
}

// verifyConfig selects the open-time integrity work.
type verifyConfig struct {
	verify  bool
	salvage bool
}

// verifyHeap verifies every claimed root of a recovered heap, after the
// reachability scan and before selective navigation is rebuilt (replay
// must not run over a record chain that no longer verifies). Damaged
// selective roots are salvaged when asked; everything else lands in the
// skip set so rebuildSelectiveRoots and the caller's quarantine step
// leave it alone. The damaged version itself is intentionally leaked —
// releasing it would cascade reference counts through blocks whose
// contents can no longer be trusted.
func verifyHeap(heap *alloc.Heap, shard int, salvage bool) (damaged []DamagedRoot, skip map[int]bool) {
	skip = make(map[int]bool)
	for slot := 0; slot < alloc.RootSlots; slot++ {
		verr := heap.VerifyRoot(slot)
		if verr == nil {
			continue
		}
		d := DamagedRoot{Shard: shard, Slot: slot, Err: &CorruptionError{Shard: shard, Slot: slot, Err: verr}}
		root := heap.Root(slot)
		// Salvage only when the root header itself verifies (so its tag
		// and selective extension are trustworthy) and the structure is
		// selective: its checkpoint + record chain are the redundancy a
		// rollback needs. Plain structures have a single copy — nothing
		// to rebuild from.
		if salvage && heap.VerifyBlock(root) == nil && funcds.IsSelective(heap, root) {
			if newHdr, _, dropped, serr := funcds.SalvageSelective(heap, root); serr == nil {
				heap.Fence()
				heap.SetRoot(slot, newHdr)
				heap.Fence()
				if heap.VerifyRoot(slot) == nil {
					d.Salvaged, d.DroppedOps = true, dropped
					skip[slot] = true // already rebuilt; no replay needed
					damaged = append(damaged, d)
					continue
				}
			}
		}
		skip[slot] = true
		damaged = append(damaged, d)
	}
	return damaged, skip
}

// guardImageOpen runs an open-from-images and converts any failure —
// a panic from recovery walking a truncated or scrambled image into
// out-of-range addresses, malformed block headers, or poisoned lines,
// or a clean recovery error on such an image — into a wrapped
// ErrCorrupted, so a damaged image fails the Open with a typed error
// instead of crashing the process. The original cause stays reachable
// through errors.Is/As.
func guardImageOpen(open func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			inner, ok := r.(error)
			if !ok {
				inner = fmt.Errorf("%v", r)
			}
			err = &CorruptionError{Shard: 0, Slot: -1, Err: fmt.Errorf("open from image: %w", inner)}
		}
	}()
	if oerr := open(); oerr != nil {
		return &CorruptionError{Shard: 0, Slot: -1, Err: fmt.Errorf("open from image: %w", oerr)}
	}
	return nil
}

// verifyBindLazy funnels a root's header block through the lazy
// post-recovery check at bind time. Structure headers are read through
// raw field loads, not the verified node-read funnels, so without this
// hook header damage on a lazily opened store would go unchecked. The
// steady state (no tainted blocks) is one atomic load; damage is
// quarantined and surfaces as an ErrCorrupted bind error.
func (s *Store) verifyBindLazy(name string, slot int, root pmem.Addr) (err error) {
	defer func() {
		if r := recover(); r != nil {
			cp, ok := r.(*alloc.CorruptionPanic)
			if !ok {
				panic(r)
			}
			cerr := &CorruptionError{Shard: 0, Slot: slot, Err: cp}
			s.quarantine(slot, cerr)
			err = fmt.Errorf("core: binding %q: %w", name, cerr)
		}
	}()
	s.heap.VerifyOnRead(root)
	return nil
}

// quarantine marks a root slot damaged: binds return ErrCorrupted until
// the store is repaired and reopened.
func (s *Store) quarantine(slot int, err error) {
	s.sh.quarMu.Lock()
	if s.sh.quar == nil {
		s.sh.quar = make(map[int]error)
	}
	if _, dup := s.sh.quar[slot]; !dup {
		s.sh.quar[slot] = err
		s.sh.quarCount.Add(1)
	}
	s.sh.quarMu.Unlock()
}

// quarantineErr returns the corruption error quarantining slot, or nil.
// The healthy-store fast path is one atomic load.
func (s *Store) quarantineErr(slot int) error {
	if s.sh.quarCount.Load() == 0 {
		return nil
	}
	s.sh.quarMu.Lock()
	defer s.sh.quarMu.Unlock()
	return s.sh.quar[slot]
}

// Quarantined returns a copy of the quarantined slots and their
// corruption errors (empty for a healthy store).
func (s *Store) Quarantined() map[int]error {
	out := make(map[int]error)
	if s.sh.quarCount.Load() == 0 {
		return out
	}
	s.sh.quarMu.Lock()
	defer s.sh.quarMu.Unlock()
	for slot, err := range s.sh.quar {
		out[slot] = err
	}
	return out
}

// quarantineDamage installs the unsalvaged entries of a damage report
// into the owning stores' quarantine sets.
func quarantineDamage(stores []*Store, damaged []DamagedRoot) {
	for _, d := range damaged {
		if !d.Salvaged {
			stores[d.Shard].quarantine(d.Slot, d.Err)
		}
	}
}

// scrubStore re-verifies every claimed root of one live store,
// quarantining new damage. The reclamation epoch is pinned around each
// root's walk so a concurrent commit cannot recycle the version under
// the verifier; pace sleeps between roots bound the scrub's read
// amplification against foreground traffic.
func scrubStore(s *Store, shard int, pace time.Duration) []DamagedRoot {
	var damaged []DamagedRoot
	first := true
	for slot := 0; slot < alloc.RootSlots; slot++ {
		if s.heap.Root(slot) == pmem.Nil {
			continue
		}
		if !first && pace > 0 {
			time.Sleep(pace)
		}
		first = false
		g := s.heap.Enter()
		verr := s.heap.VerifyRoot(slot)
		g.Exit()
		if verr == nil {
			continue
		}
		cerr := &CorruptionError{Shard: shard, Slot: slot, Err: verr}
		s.quarantine(slot, cerr)
		damaged = append(damaged, DamagedRoot{Shard: shard, Slot: slot, Err: cerr})
	}
	return damaged
}

// Scrub re-verifies every claimed root across all shards with bounded
// pacing (pace sleep between roots; 0 scrubs flat out), quarantining
// any damage found and returning it. Healthy stores return nil. Safe to
// run in the background against a serving store: each root's walk pins
// the reclamation epoch, and already-quarantined roots simply fail
// verification again without double-reporting to the quarantine set.
func (db *DB) Scrub(pace time.Duration) []DamagedRoot {
	var damaged []DamagedRoot
	if db.store != nil {
		return scrubStore(db.store, 0, pace)
	}
	for i := 0; i < db.sharded.ShardCount(); i++ {
		damaged = append(damaged, scrubStore(db.sharded.Shard(i), i, pace)...)
	}
	return damaged
}
