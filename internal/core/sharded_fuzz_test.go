package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// Native fuzz targets for the sharded store. Run continuously in CI
// (non-blocking) with:
//
//	go test -run='^$' -fuzz=FuzzShardRouting  -fuzztime=30s ./internal/core
//	go test -run='^$' -fuzz=FuzzBatchManifest -fuzztime=30s ./internal/core
//
// The seed corpus doubles as ordinary regression tests on every
// `go test` run.

// FuzzShardRouting checks name-based shard routing over arbitrary root
// names and shard counts: routing is total, stable, in range, and a
// handle bound by name round-trips its data through the routed shard.
func FuzzShardRouting(f *testing.F) {
	// Seeds drawn from the workloads' naming schemes.
	f.Add("gc-shard-00", uint8(1))
	f.Add("sh-w03", uint8(4))
	f.Add("fuzz-q", uint8(8))
	f.Add("", uint8(2))
	f.Add("key-000042", uint8(3))
	f.Add("__mod_batchlog", uint8(5))
	f.Fuzz(func(t *testing.T, name string, shards uint8) {
		s := int(shards)%8 + 1
		cfg := pmem.DefaultConfig(1 << 20)
		ss, err := newShardedStore(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		si := ss.ShardFor(name)
		if si < 0 || si >= s {
			t.Fatalf("ShardFor(%q) = %d with %d shards", name, si, s)
		}
		if again := ss.ShardFor(name); again != si {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", name, si, again)
		}
		m, err := ss.Map(name)
		if strings.HasPrefix(name, "__mod_") {
			// Reserved names guard the internal anchor roots; binding
			// them must fail rather than clobber the recovery machinery.
			if err == nil {
				t.Fatalf("Map(%q) bound a reserved root", name)
			}
			return
		}
		if err != nil {
			t.Fatalf("Map(%q): %v", name, err)
		}
		m.Set([]byte(name), []byte("v"))
		if !ss.Shard(si).Heap().HasRoot(name) {
			t.Fatalf("root %q missing from routed shard %d", name, si)
		}
		for i := 0; i < s; i++ {
			if i != si && ss.Shard(i).Heap().HasRoot(name) {
				t.Fatalf("root %q duplicated on shard %d (routed %d)", name, i, si)
			}
		}
		m2, err := ss.Map(name)
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := m2.Get([]byte(name)); !ok || string(v) != "v" {
			t.Fatalf("rebound handle lost data for %q", name)
		}
	})
}

// FuzzBatchManifest feeds arbitrary op streams and crash points into a
// cross-shard batch commit: the ops route across shards from the fuzz
// data, a power failure lands after a data-chosen number of PM writes,
// and recovery must be all-or-nothing with the committed prefix intact.
func FuzzBatchManifest(f *testing.F) {
	// Seeds shaped like the sharded workload's op streams.
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, uint16(40), uint8(2))
	f.Add([]byte{9, 9, 9, 1}, uint16(120), uint8(3))
	f.Add([]byte{255, 0, 128, 64, 32}, uint16(300), uint8(4))
	f.Add([]byte{1}, uint16(1), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, crashAfter uint16, shardsRaw uint8) {
		if len(data) == 0 {
			return
		}
		if len(data) > 24 {
			data = data[:24]
		}
		shards := int(shardsRaw)%3 + 2 // 2..4
		cfg := pmem.DefaultConfig(2 << 20)
		cfg.TrackDurable = true
		ss, err := newShardedStore(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		maps := make([]*Map, shards)
		for i := range maps {
			m, err := ss.Shard(i).Map(fmt.Sprintf("fz-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			maps[i] = m
			m.Set([]byte("seed"), []byte{byte(i)}) // committed prefix
		}
		ss.Sync()

		// The probed batch: each data byte is one op, routed by value.
		tr := pmem.NewMultiCrashCountdown(ss.Regions().Devices(), int(crashAfter)%1024+1, pmem.CrashEvictRandom, uint64(crashAfter)+uint64(len(data)))
		tr.Install()
		b := ss.NewBatch()
		touched := map[int]bool{}
		for i, by := range data {
			si := int(by) % shards
			touched[si] = true
			b.MapSet(maps[si], []byte(fmt.Sprintf("k%02d", i)), []byte{by})
		}
		b.Commit()
		tr.Uninstall()
		imgs := tr.Images()
		if imgs == nil {
			imgs = ss.CrashImages(pmem.CrashEvictRandom, uint64(crashAfter))
		}

		ss2, _, err := openShardedStore(cfg, imgs)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		maps2 := make([]*Map, shards)
		for i := range maps2 {
			m, err := ss2.Shard(i).Map(fmt.Sprintf("fz-%d", i))
			if err != nil {
				t.Fatal(err)
			}
			maps2[i] = m
			if v, ok := m.Get([]byte("seed")); !ok || len(v) != 1 || v[0] != byte(i) {
				t.Fatalf("shard %d: committed prefix lost", i)
			}
		}
		// All-or-nothing: either every op of the batch is present with
		// its exact value, or none is.
		present, absent := 0, 0
		for i, by := range data {
			si := int(by) % shards
			v, ok := maps2[si].Get([]byte(fmt.Sprintf("k%02d", i)))
			if ok {
				if len(v) != 1 || v[0] != by {
					t.Fatalf("op %d: value corrupt after recovery", i)
				}
				present++
			} else {
				absent++
			}
		}
		if present > 0 && absent > 0 {
			t.Fatalf("batch torn: %d ops present, %d absent (shards touched: %d)", present, absent, len(touched))
		}
		// The recovered store must keep committing.
		maps2[0].Set([]byte("post"), []byte("ok"))
		if _, ok := maps2[0].Get([]byte("post")); !ok {
			t.Fatal("store unusable after recovery")
		}
	})
}
