package core

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Corruption matrix (DESIGN.md §13): the media-fault counterpart of the
// crash matrix. Each cell commits a workload, damages the durable image
// with one fault class — bit flips, torn 8-byte stores, unreadable
// lines — and reopens with verification and salvage enabled. The single
// acceptable outcomes are:
//
//   - the open fails with a clean error (damage hit recovery metadata),
//   - the open reports the damage and quarantines the root,
//   - a selective root is salvaged and serves a consistent earlier state
//     with the dropped operations reported, or
//   - the fault missed everything reachable and reads serve exactly a
//     committed state.
//
// What must NEVER happen is a silent wrong read: a clean open, no damage
// report, and a state that was never committed.

var cmFaultClasses = []string{"bitflip", "torn", "deadline"}

func cmTrials() int {
	if testing.Short() {
		return 3
	}
	return 6
}

// cmOpen opens a damaged single-heap device with verification and
// salvage, converting recovery panics (scrambled block chains, poisoned
// lines) into errors the way the public image-open path does.
func cmOpen(dev *pmem.Device) (s *Store, damaged []DamagedRoot, err error) {
	err = guardImageOpen(func() error {
		var oerr error
		s, _, damaged, oerr = openStoreVerify(dev, verifyConfig{verify: true, salvage: true})
		return oerr
	})
	return
}

// cmPlan builds one deterministic fault plan of the given class aimed at
// the heap block area [lo, hi).
func cmPlan(fc string, rng *rand.Rand, lo, hi pmem.Addr) *pmem.FaultPlan {
	plan := &pmem.FaultPlan{}
	span := int64(hi - lo)
	pick := func() pmem.Addr { return lo + pmem.Addr(rng.Int63n(span)) }
	switch fc {
	case "bitflip":
		for k, n := 0, 1+rng.Intn(3); k < n; k++ {
			plan.FlipBit(pick(), uint8(rng.Intn(8)))
		}
	case "torn":
		plan.TearStore(pick())
	case "deadline":
		plan.KillLine(pick())
	}
	return plan
}

// cmExpect carries the dry-run state sets a reopen is checked against.
type cmExpect struct {
	// allowed holds the committed-prefix states: the only states a clean,
	// undamaged reopen may serve.
	allowed map[string]bool
	// intermediates additionally holds every per-op state inside the
	// probed window: a salvage rollback lands on a fold checkpoint, which
	// is a consistent per-op state but (in edit/batch modes) not
	// necessarily a committed one.
	intermediates map[string]bool
	final         string
}

// cmCheckReopen reopens the damaged device and classifies the outcome.
// It fails the test on the one forbidden outcome: serving a state that
// is neither committed nor a reported salvage rollback.
func cmCheckReopen(t *testing.T, st matrixStructure, dev2 *pmem.Device, exp cmExpect, label string) {
	t.Helper()
	s2, damaged, err := cmOpen(dev2)
	if err != nil {
		return // detected: damaged image failed the open cleanly
	}
	salvaged := false
	var dropped uint64
	for _, d := range damaged {
		if !d.Salvaged {
			return // detected: root quarantined, binds answer ErrCorrupted
		}
		salvaged = true
		dropped += d.DroppedOps
	}
	ops2 := st.bind(t, s2, "mx")
	got := mxJoin(ops2.dump())
	if salvaged {
		if !exp.intermediates[got] {
			t.Fatalf("%s: salvaged root serves a state that never existed:\n%q", label, got)
		}
		if got != exp.final && dropped == 0 {
			t.Fatalf("%s: salvage rolled back state without reporting dropped ops", label)
		}
	} else if !exp.allowed[got] {
		t.Fatalf("%s: silent wrong read — clean open, no damage report, uncommitted state:\n%q", label, got)
	}
	// The store must stay usable. A poisoned line handed back out by the
	// allocator may surface as a typed media/corruption panic — degraded
	// but detected, never silent.
	func() {
		defer func() {
			switch r := recover(); r.(type) {
			case nil, *pmem.MediaError, *alloc.CorruptionPanic:
			default:
				panic(r)
			}
		}()
		ops2.basic(900)
		if after := mxJoin(ops2.dump()); after == got {
			t.Fatalf("%s: store inert after damaged reopen", label)
		}
	}()
}

// TestCorruptionMatrixSingleStore sweeps structure x commit discipline x
// fault class on a fully committed image: random faults aimed at the
// heap block area, reopened with verify+salvage.
func TestCorruptionMatrixSingleStore(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	for _, st := range matrixStructures() {
		for _, mode := range []string{"perop", "edit", "batch"} {
			for _, fc := range cmFaultClasses {
				st, mode, fc := st, mode, fc
				t.Run(st.name+"/"+mode+"/"+fc, func(t *testing.T) {
					build := func() (*Store, matrixOps, *Map, *pmem.Device) {
						dev := pmem.New(cfg)
						s, err := newStore(dev)
						if err != nil {
							t.Fatal(err)
						}
						ops := st.bind(t, s, "mx")
						marker, err := s.Map("mx-marker")
						if err != nil {
							t.Fatal(err)
						}
						for i := 0; i < mxPrefix; i++ {
							ops.basic(i)
						}
						s.Sync()
						return s, ops, marker, dev
					}

					// Dry run 1, always per-op: collects every intermediate
					// state a salvage rollback may legally land on.
					s, ops, _, _ := build()
					intermediates := map[string]bool{mxJoin(ops.dump()): true}
					for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
						ops.basic(i)
						intermediates[mxJoin(ops.dump())] = true
					}
					perOpFinal := mxJoin(ops.dump())

					// Dry run 2, in the actual mode: produces the committed
					// image the faults are injected into and the committed-
					// prefix states a clean reopen may serve.
					s, ops, marker, dev := build()
					allowed := map[string]bool{mxJoin(ops.dump()): true}
					switch mode {
					case "perop":
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.basic(i)
							allowed[mxJoin(ops.dump())] = true
						}
					case "edit":
						b := s.NewBatch()
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.batch(b, i)
						}
						b.Commit()
					case "batch":
						b := s.NewBatch()
						for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
							ops.batch(b, i)
						}
						b.MapSet(marker, mxMarkerKey, []byte("present"))
						b.Commit()
					}
					final := mxJoin(ops.dump())
					allowed[final] = true
					if final != perOpFinal {
						t.Fatalf("mode %q final state diverges from per-op application", mode)
					}
					s.Sync()
					exp := cmExpect{allowed: allowed, intermediates: intermediates, final: final}
					lo, hi := s.heap.DataBounds()
					img := dev.Snapshot()

					for trial := 0; trial < cmTrials(); trial++ {
						seed := int64(trial)*1_000_003 + int64(len(st.name))*7919 + int64(len(mode))*131 + int64(len(fc))
						plan := cmPlan(fc, rand.New(rand.NewSource(seed)), lo, hi)
						dimg := append([]byte(nil), img...)
						plan.ApplyToImage(dimg, nil)
						dev2 := pmem.NewFromImage(pmem.DefaultConfig(4<<20), dimg)
						plan.Apply(dev2)
						cmCheckReopen(t, st, dev2, exp, st.name+"/"+mode+"/"+fc)
					}
				})
			}
		}
	}
}

// TestCorruptionAfterCrashImage composes the two failure models: a power
// loss mid-FASE (crash countdown at the window midpoint) followed by a
// media fault in the captured image. The reopen must detect the damage
// or serve a committed prefix — never a blend.
func TestCorruptionAfterCrashImage(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	for _, st := range matrixStructures() {
		if st.name != "map" && st.name != "map-sel" && st.name != "vector" {
			continue
		}
		for _, fc := range cmFaultClasses {
			st, fc := st, fc
			t.Run(st.name+"/crash+"+fc, func(t *testing.T) {
				build := func() (*Store, matrixOps, *pmem.Device) {
					dev := pmem.New(cfg)
					s, err := newStore(dev)
					if err != nil {
						t.Fatal(err)
					}
					ops := st.bind(t, s, "mx")
					for i := 0; i < mxPrefix; i++ {
						ops.basic(i)
					}
					s.Sync()
					return s, ops, dev
				}
				probe := func(ops matrixOps) {
					for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
						ops.basic(i)
					}
				}

				// Dry run: committed per-op states and the window's write count.
				s, ops, dev := build()
				exp := cmExpect{
					allowed:       map[string]bool{mxJoin(ops.dump()): true},
					intermediates: map[string]bool{mxJoin(ops.dump()): true},
				}
				writesBase := dev.Stats().Writes
				for i := mxPrefix; i < mxPrefix+mxProbe; i++ {
					ops.basic(i)
					exp.allowed[mxJoin(ops.dump())] = true
					exp.intermediates[mxJoin(ops.dump())] = true
				}
				exp.final = mxJoin(ops.dump())
				totalWrites := int(dev.Stats().Writes - writesBase)
				lo, hi := s.heap.DataBounds()

				for trial := 0; trial < cmTrials(); trial++ {
					inj := 1 + (trial*totalWrites)/cmTrials() // spread through the window
					s, ops, dev := build()
					_ = s
					tr := pmem.NewCrashCountdown(dev, inj, pmem.CrashEvictRandom, uint64(inj)*1048573+11)
					dev.SetTracer(tr)
					probe(ops)
					dev.SetTracer(nil)
					img := tr.Image()
					if img == nil {
						t.Fatalf("inj %d: countdown never expired", inj)
					}
					seed := int64(trial)*2654435761 + int64(len(fc))
					plan := cmPlan(fc, rand.New(rand.NewSource(seed)), lo, hi)
					plan.ApplyToImage(img, nil)
					dev2 := pmem.NewFromImage(pmem.DefaultConfig(4<<20), img)
					plan.Apply(dev2)
					cmCheckReopen(t, st, dev2, exp, st.name+"/crash+"+fc)
				}
			})
		}
	}
}

// TestCorruptionShardedDegradedOpen damages the structure root on shard
// 0 of a two-shard store — a guaranteed-reachable, checksummed target —
// and verifies the degraded-open contract: the healthy shard serves, the
// damaged root is either quarantined (plain structure) or salvaged
// (selective), and the damage report names the right shard.
func TestCorruptionShardedDegradedOpen(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	for _, st := range matrixStructures() {
		if st.name != "map" && st.name != "map-sel" {
			continue
		}
		st := st
		t.Run(st.name, func(t *testing.T) {
			ss, err := newShardedStore(cfg, 2)
			if err != nil {
				t.Fatal(err)
			}
			ops := st.bind(t, ss.Shard(0), "mx")
			marker, err := ss.Shard(1).Map("mx-marker")
			if err != nil {
				t.Fatal(err)
			}
			marker.Set(mxMarkerKey, []byte("present"))
			exp := map[string]bool{}
			// One op past the probe window leaves a selective structure
			// with a pending record (checkpointEvery=2 folds on even
			// counts) — the chain a salvage rollback must drop.
			for i := 0; i < mxPrefix+mxProbe+1; i++ {
				ops.basic(i)
				exp[mxJoin(ops.dump())] = true
			}
			ss.Sync()

			h0 := ss.Shard(0).heap
			slot, err := h0.RootSlot("mx")
			if err != nil {
				t.Fatal(err)
			}
			root := h0.Root(slot)
			if root == pmem.Nil {
				t.Fatal("structure root not claimed")
			}
			plan := &pmem.FaultPlan{}
			if st.name == "map-sel" {
				// Damage a pending record cell: the root header stays
				// trustworthy, so salvage can roll back to the checkpoint.
				_, recHead, recCount := funcds.SelectiveExt(h0, root)
				if recHead == pmem.Nil || recCount == 0 {
					t.Fatal("no pending record to damage")
				}
				// Flip in the kind word's high byte: CRC-covered, but not a
				// pointer the recovery mark pass would chase into the weeds.
				plan.FlipBit(recHead+15, 3)
			} else {
				// Damage the root header's covered payload: nothing to
				// salvage from, the root must quarantine.
				plan.FlipBit(root, 3)
			}

			devs := ss.Regions().Devices()
			imgs := make([][]byte, len(devs))
			for i, d := range devs {
				imgs[i] = d.Snapshot()
			}
			plan.ApplyToImage(imgs[0], nil)

			ss2, _, damaged, err := openShardedVerify(cfg, imgs, verifyConfig{verify: true, salvage: true})
			if err != nil {
				t.Fatalf("degraded open failed entirely: %v", err)
			}
			if len(damaged) == 0 {
				t.Fatal("flipped root payload bit went undetected")
			}
			for _, d := range damaged {
				if d.Shard != 0 {
					t.Fatalf("damage misattributed to shard %d", d.Shard)
				}
			}
			// The healthy shard serves regardless of shard 0's damage.
			marker2, err := ss2.Shard(1).Map("mx-marker")
			if err != nil {
				t.Fatalf("healthy shard refused bind: %v", err)
			}
			if v, ok := marker2.Get(mxMarkerKey); !ok || string(v) != "present" {
				t.Fatalf("healthy shard lost data: %q %v", v, ok)
			}
			if st.name == "map-sel" {
				// Selective root: salvage must have repaired it in place.
				if !damaged[0].Salvaged {
					t.Fatalf("selective root not salvaged: %v", damaged[0].Err)
				}
				if damaged[0].DroppedOps == 0 {
					t.Fatal("rollback salvage reported zero dropped ops")
				}
				ops2 := st.bind(t, ss2.Shard(0), "mx")
				if got := mxJoin(ops2.dump()); !exp[got] {
					t.Fatalf("salvaged root serves uncommitted state:\n%q", got)
				}
			} else {
				// Plain root: quarantined, bind answers ErrCorrupted.
				if damaged[0].Salvaged {
					t.Fatal("plain structure claims salvage")
				}
				if _, err := ss2.Shard(0).Map("mx"); err == nil {
					t.Fatal("bind to quarantined root succeeded")
				} else if !errors.Is(err, ErrCorrupted) {
					t.Fatalf("bind error not ErrCorrupted: %v", err)
				}
			}
		})
	}
}
