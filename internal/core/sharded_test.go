package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func newTestSharded(t testing.TB, shards int) *ShardedStore {
	t.Helper()
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	ss, err := newShardedStore(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return ss
}

func sKey(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestShardedRoutingDeterministic(t *testing.T) {
	ss := newTestSharded(t, 4)
	names := []string{"users", "orders", "inventory", "sessions", "", "a", "aa"}
	for _, nm := range names {
		si := ss.ShardFor(nm)
		if si < 0 || si >= ss.ShardCount() {
			t.Fatalf("ShardFor(%q) = %d out of range", nm, si)
		}
		if again := ss.ShardFor(nm); again != si {
			t.Fatalf("ShardFor(%q) unstable: %d then %d", nm, si, again)
		}
		m, err := ss.Map(nm + "-m")
		if err != nil {
			t.Fatal(err)
		}
		m.Set([]byte(nm+"-k"), []byte(nm+"-v"))
		// The data must live on exactly the routed shard's heap.
		owner := ss.ShardFor(nm + "-m")
		if !ss.Shard(owner).Heap().HasRoot(nm + "-m") {
			t.Errorf("root %q-m not on routed shard %d", nm, owner)
		}
		for i := 0; i < ss.ShardCount(); i++ {
			if i != owner && ss.Shard(i).Heap().HasRoot(nm+"-m") {
				t.Errorf("root %q-m also on shard %d (owner %d)", nm, i, owner)
			}
		}
	}
	// Rebinding resolves to the same shard and sees the data.
	m, err := ss.Map("users-m")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get([]byte("users-k")); !ok || string(v) != "users-v" {
		t.Fatalf("rebound handle lost data: %q %v", v, ok)
	}
}

// TestShardedSingleShardFences pins the headline property: sharding
// leaves the single-shard cost untouched. A Basic update on a sharded
// store is one FASE with exactly one fence, on the owning shard's
// device only.
func TestShardedSingleShardFences(t *testing.T) {
	ss := newTestSharded(t, 4)
	m, err := ss.Map("fences")
	if err != nil {
		t.Fatal(err)
	}
	owner := ss.ShardFor("fences")
	ss.Sync()
	base := make([]pmem.Stats, ss.ShardCount())
	for i := range base {
		base[i] = ss.ShardStats(i)
	}
	metaBase := ss.MetaStats()

	const ops = 50
	for i := 0; i < ops; i++ {
		m.Set(sKey(i), sKey(i*7))
	}
	for i := 0; i < ss.ShardCount(); i++ {
		d := ss.ShardStats(i).Sub(base[i])
		want := uint64(0)
		if i == owner {
			want = ops
		}
		if d.Fences != want {
			t.Errorf("shard %d: %d fences for %d ops, want %d", i, d.Fences, ops, want)
		}
	}
	if d := ss.MetaStats().Sub(metaBase); d.Fences != 0 || d.Writes != 0 {
		t.Errorf("metadata region touched by single-shard ops: %+v", d)
	}
}

// TestShardedBatchSingleShardDelegates checks a ShardedBatch whose ops
// land on one shard uses that shard's 1-fence publication, not the
// manifest.
func TestShardedBatchSingleShardDelegates(t *testing.T) {
	ss := newTestSharded(t, 2)
	m, err := ss.Map("one-shard")
	if err != nil {
		t.Fatal(err)
	}
	ss.Sync()
	metaBase := ss.MetaStats()
	ownerBase := ss.ShardStats(ss.ShardFor("one-shard"))

	b := ss.NewBatch()
	for i := 0; i < 16; i++ {
		b.MapSet(m, sKey(i), sKey(i))
	}
	b.Commit()

	if d := ss.MetaStats().Sub(metaBase); d.Writes != 0 {
		t.Errorf("single-shard batch wrote the manifest: %+v", d)
	}
	if d := ss.ShardStats(ss.ShardFor("one-shard")).Sub(ownerBase); d.Fences != 1 {
		t.Errorf("single-shard 16-op batch used %d fences, want 1", d.Fences)
	}
	if got := int(m.Len()); got != 16 {
		t.Fatalf("map has %d entries, want 16", got)
	}
}

// bindOnShards returns one map per shard, bound by explicit placement.
func bindOnShards(t testing.TB, ss *ShardedStore) []*Map {
	t.Helper()
	maps := make([]*Map, ss.ShardCount())
	for i := range maps {
		m, err := ss.Shard(i).Map(fmt.Sprintf("xmap-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		maps[i] = m
	}
	return maps
}

// TestShardedCrossShardBatch commits batches spanning every shard and
// checks contents plus the manifest fence economy (2k+3 for k shards).
func TestShardedCrossShardBatch(t *testing.T) {
	ss := newTestSharded(t, 4)
	maps := bindOnShards(t, ss)
	ss.Sync()
	statsBase := ss.Stats()

	const rounds = 10
	for r := 0; r < rounds; r++ {
		b := ss.NewBatch()
		for si, m := range maps {
			b.MapSet(m, sKey(r), sKey(r*10+si))
		}
		b.Commit()
	}
	for si, m := range maps {
		if got := int(m.Len()); got != rounds {
			t.Fatalf("shard %d map has %d entries, want %d", si, got, rounds)
		}
		for r := 0; r < rounds; r++ {
			v, ok := m.Get(sKey(r))
			if !ok || binary.LittleEndian.Uint64(v) != uint64(r*10+si) {
				t.Fatalf("shard %d round %d: got %v %v", si, r, v, ok)
			}
		}
	}
	// k = 4 changed shards: 2k+3 = 11 fences per cross-shard commit
	// (k shadow + 2 manifest + k redo + 1 manifest retirement).
	d := ss.Stats().Sub(statsBase)
	if want := uint64(rounds * (2*len(maps) + 3)); d.Fences != want {
		t.Errorf("cross-shard commits used %d fences, want %d (2k+3 per round)", d.Fences, want)
	}
}

// TestShardedStatsSumProperty is the per-region accounting property:
// the aggregate Stats must equal the counter-wise sum of every shard's
// stats plus the metadata region's — no region dropped, none counted
// twice — across a workload that exercises per-op, single-shard batch,
// and cross-shard manifest paths.
func TestShardedStatsSumProperty(t *testing.T) {
	ss := newTestSharded(t, 3)
	maps := bindOnShards(t, ss)
	ss.Sync()
	aggBase := ss.Stats()

	for i := 0; i < 40; i++ {
		maps[i%3].Set(sKey(i), sKey(i))
	}
	b := ss.NewBatch()
	for i := 0; i < 8; i++ {
		b.MapSet(maps[0], sKey(100+i), sKey(i))
	}
	b.Commit() // single shard
	cross := ss.NewBatch()
	for i := 0; i < 6; i++ {
		cross.MapSet(maps[i%3], sKey(200+i), sKey(i))
	}
	cross.Commit() // manifest path
	ss.Sync()

	agg := ss.Stats()
	var sum pmem.Stats
	for i := 0; i < ss.ShardCount(); i++ {
		sum = sum.Add(ss.ShardStats(i))
	}
	sum = sum.Add(ss.MetaStats())

	type pair struct {
		name     string
		agg, sum uint64
	}
	for _, p := range []pair{
		{"flushes", agg.Flushes, sum.Flushes},
		{"fences", agg.Fences, sum.Fences},
		{"reads", agg.Reads, sum.Reads},
		{"writes", agg.Writes, sum.Writes},
		{"bytes-read", agg.BytesRead, sum.BytesRead},
		{"bytes-written", agg.BytesWritten, sum.BytesWritten},
		{"batches", agg.Batches, sum.Batches},
		{"batched-ops", agg.BatchedOps, sum.BatchedOps},
		{"flushes-saved", agg.FlushesSaved, sum.FlushesSaved},
		{"copies-elided", agg.CopiesElided, sum.CopiesElided},
	} {
		if p.agg != p.sum {
			t.Errorf("%s: aggregate %d != per-region sum %d", p.name, p.agg, p.sum)
		}
	}
	if agg.Fences == 0 || agg.Flushes == 0 {
		t.Fatal("degenerate workload: no fences/flushes recorded")
	}
	// Independent cross-check against the known op mix since the
	// baseline: 40 basic ops at 1 fence each + 1 single-shard batch
	// (1 fence) + 1 cross-shard batch over 3 shards (2*3+3) + the final
	// Sync. Sync is two fences per shard here — Fence, then the Drain
	// fence that frees the cascade-stamped deferred backlog every
	// commit's superseded root left behind — plus one on the metadata
	// region, whose heap has no deferred releases. A double-counted
	// region would break this exact count.
	sync := uint64(2*ss.ShardCount() + 1)
	if d, want := agg.Sub(aggBase), 40+1+uint64(2*ss.ShardCount()+3)+sync; d.Fences != want {
		t.Errorf("aggregate fence delta = %d, want %d", d.Fences, want)
	}
}

// TestShardedCleanReopen round-trips a sharded store through crash
// images with no in-flight commit: every shard's contents survive and
// parallel recovery reports per-shard stats.
func TestShardedCleanReopen(t *testing.T) {
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	ss, err := newShardedStore(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	maps := bindOnShards(t, ss)
	for i := 0; i < 30; i++ {
		maps[i%4].Set(sKey(i), sKey(i*3))
	}
	ss.Sync()

	imgs := ss.CrashImages(pmem.CrashFencedOnly, 1)
	ss2, rs, err := openShardedStore(cfg, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.PerShard) != 4 {
		t.Fatalf("got %d per-shard stats, want 4", len(rs.PerShard))
	}
	if rs.ManifestReplayed {
		t.Error("clean image replayed a manifest")
	}
	if rs.Total().Roots == 0 {
		t.Error("recovery found no roots")
	}
	maps2 := bindOnShards(t, ss2)
	for i := 0; i < 30; i++ {
		v, ok := maps2[i%4].Get(sKey(i))
		if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
			t.Fatalf("key %d lost after reopen", i)
		}
	}
	// The reopened store must keep committing, including cross-shard.
	b := ss2.NewBatch()
	for si, m := range maps2 {
		b.MapSet(m, sKey(1000+si), sKey(si))
	}
	b.Commit()
	for si, m := range maps2 {
		if _, ok := m.Get(sKey(1000 + si)); !ok {
			t.Fatalf("post-recovery cross-shard commit lost shard %d", si)
		}
	}
}

// TestShardedMidManifestCrashSweep injects a power failure at every PM
// write of one cross-shard commit — while shadows build, inside the
// manifest's intent and commit-point windows, and between the per-shard
// redo swaps — and checks recovery is all-or-nothing across shards.
func TestShardedMidManifestCrashSweep(t *testing.T) {
	const shards = 3
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true

	// Dry run: count the PM writes one cross-shard commit performs.
	prep := func() (*ShardedStore, []*Map) {
		ss, err := newShardedStore(cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		maps := bindOnShards(t, ss)
		for i := 0; i < 6; i++ {
			maps[i%shards].Set(sKey(i), sKey(i*3))
		}
		ss.Sync()
		return ss, maps
	}
	commit := func(ss *ShardedStore, maps []*Map) {
		b := ss.NewBatch()
		for si, m := range maps {
			b.MapSet(m, sKey(500+si), sKey(si*11))
		}
		b.Commit()
	}
	ss, maps := prep()
	counter := pmem.NewMultiCrashCountdown(ss.Regions().Devices(), 1<<30, pmem.CrashFencedOnly, 0)
	counter.Install()
	base := ss.Stats().Writes
	commit(ss, maps)
	counter.Uninstall()
	totalWrites := int(ss.Stats().Writes - base)
	if totalWrites < 10 {
		t.Fatalf("implausibly few writes in a cross-shard commit: %d", totalWrites)
	}

	sawReplay := false
	for inj := 1; inj <= totalWrites; inj++ {
		ss, maps := prep()
		tr := pmem.NewMultiCrashCountdown(ss.Regions().Devices(), inj, pmem.CrashEvictRandom, uint64(inj)*77+1)
		tr.Install()
		commit(ss, maps)
		tr.Uninstall()
		imgs := tr.Images()
		if imgs == nil {
			t.Fatalf("inj %d: countdown never expired (%d writes)", inj, totalWrites)
		}
		ss2, rs, err := openShardedStore(cfg, imgs)
		if err != nil {
			t.Fatalf("inj %d: recovery: %v", inj, err)
		}
		sawReplay = sawReplay || rs.ManifestReplayed
		maps2 := bindOnShards(t, ss2)
		inShard := make([]bool, shards)
		for si, m := range maps2 {
			_, inShard[si] = m.Get(sKey(500 + si))
		}
		for si := 1; si < shards; si++ {
			if inShard[si] != inShard[0] {
				t.Fatalf("inj %d: batch torn across shards: %v", inj, inShard)
			}
		}
		// The committed prefix must always survive.
		for i := 0; i < 6; i++ {
			v, ok := maps2[i%shards].Get(sKey(i))
			if !ok || binary.LittleEndian.Uint64(v) != uint64(i*3) {
				t.Fatalf("inj %d: committed key %d lost", inj, i)
			}
		}
		// And the recovered store must still commit cross-shard batches.
		b := ss2.NewBatch()
		for si, m := range maps2 {
			b.MapSet(m, sKey(900+si), sKey(si))
		}
		b.Commit()
		for si, m := range maps2 {
			if _, ok := m.Get(sKey(900 + si)); !ok {
				t.Fatalf("inj %d: store unusable after recovery (shard %d)", inj, si)
			}
		}
	}
	if !sawReplay {
		t.Error("no injection point exercised manifest replay")
	}
}

// TestShardedManifestRetirementDurable is the regression test for a
// stale-manifest rollback: the manifest's idle mark must be durable
// before the cross-shard commit returns, because no later single-shard
// commit ever fences the metadata region. Without the retirement fence,
// a later durably-committed single-shard update followed by a crash
// would find the old manifest still committed and replay it, rolling
// the root back to the batch's version.
func TestShardedManifestRetirementDurable(t *testing.T) {
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	ss, err := newShardedStore(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	maps := bindOnShards(t, ss)
	ss.Sync()

	// A completed cross-shard batch writes key "a" = "old" on shard 0.
	b := ss.NewBatch()
	b.MapSet(maps[0], []byte("a"), []byte("old"))
	b.MapSet(maps[1], []byte("b"), []byte("old"))
	b.Commit()

	// A later durable single-shard commit supersedes it — note no
	// cross-shard commit and no ss.Sync() ever fences the meta region
	// between here and the crash.
	maps[0].Set([]byte("a"), []byte("new"))
	ss.Shard(0).Sync()

	imgs := ss.CrashImages(pmem.CrashFencedOnly, 1)
	ss2, rs, err := openShardedStore(cfg, imgs)
	if err != nil {
		t.Fatal(err)
	}
	if rs.ManifestReplayed {
		t.Error("retired manifest replayed after a later commit")
	}
	maps2 := bindOnShards(t, ss2)
	v, ok := maps2[0].Get([]byte("a"))
	if !ok || string(v) != "new" {
		t.Fatalf("later durable commit rolled back: a = %q (ok=%v), want \"new\"", v, ok)
	}
}

// TestShardedConcurrentWriters drives writers on all shards through
// forked handles under -race: per-shard Basic ops plus periodic
// cross-shard batches.
func TestShardedConcurrentWriters(t *testing.T) {
	ss := newTestSharded(t, 4)
	maps := bindOnShards(t, ss)
	ss.StartGroupCommitters(0)
	defer ss.StopGroupCommitters()

	const writers = 4
	const ops = 80
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := ss.Fork()
			m, err := h.Shard(w % h.ShardCount()).Map(fmt.Sprintf("xmap-%d", w%h.ShardCount()))
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < ops; i++ {
				m.Set(sKey(w*1000+i), sKey(i))
				if i%16 == 15 {
					b := h.NewBatch()
					for si := 0; si < h.ShardCount(); si++ {
						mm, err := h.Shard(si).Map(fmt.Sprintf("xmap-%d", si))
						if err != nil {
							t.Error(err)
							return
						}
						b.MapSet(mm, sKey(w*10000+i), sKey(i))
					}
					b.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	ss.Sync()
	for w := 0; w < writers; w++ {
		m := maps[w%4]
		for i := 0; i < ops; i++ {
			if _, ok := m.Get(sKey(w*1000 + i)); !ok {
				t.Fatalf("writer %d op %d lost", w, i)
			}
		}
	}
}

// TestOpenShardedStoreRejectsBadInput checks shape validation.
func TestOpenShardedStoreRejectsBadInput(t *testing.T) {
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	ss, err := newShardedStore(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss.Sync()
	imgs := ss.CrashImages(pmem.CrashFencedOnly, 1)
	if _, _, err := openShardedStore(cfg, imgs[:1]); err == nil {
		t.Error("open with too few images must fail")
	}
	if _, _, err := openShardedStore(cfg, [][]byte{imgs[0], imgs[1], imgs[0], imgs[2]}); err == nil {
		t.Error("open with wrong shard count must fail")
	}
	if _, _, err := openShardedStore(cfg, [][]byte{imgs[0], imgs[1]}); err == nil {
		t.Error("open with a shard image as metadata must fail")
	}
}
