package core

import (
	"errors"
	"fmt"
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// snapshot returns a copy of the store's full durable image.
func snapshot(s *Store) []byte {
	return s.dev.Snapshot()
}

// corruptStoredCRC flips a bit of the stored checksum word of the block
// behind the named root: the payload (and the pointers recovery chases)
// stay intact, but verification must flag the mismatch.
func corruptStoredCRC(t *testing.T, s *Store, name string, img []byte) {
	t.Helper()
	slot, err := s.heap.RootSlot(name)
	if err != nil {
		t.Fatal(err)
	}
	root := s.heap.Root(slot)
	if root == pmem.Nil {
		t.Fatalf("root %q not claimed", name)
	}
	img[root-alloc.HeaderSize+8] ^= 0x04
}

// TestOpenTruncatedImage is the regression test for the pre-§13
// behavior: a short image (half the configured arena) used to panic
// deep inside recovery. It must now fail the Open with a wrapped
// ErrCorrupted.
func TestOpenTruncatedImage(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	db, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Map("mx")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		m.Set([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	db.Sync()
	img := snapshot(db.Store())

	// Cut inside the live block area — the newest versions (including the
	// published root) sit near the bump top, so the truncation severs
	// committed reachable data, not just empty arena.
	lo, hi := db.Store().heap.DataBounds()
	half := img[:int(lo)+int(hi-lo)/2]
	db2, _, err := Open(cfg, WithExistingImages([][]byte{half}))
	if err == nil {
		db2.Close()
		t.Fatal("truncated image opened cleanly")
	}
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("truncated image error not ErrCorrupted: %v", err)
	}
	var cerr *CorruptionError
	if !errors.As(err, &cerr) {
		t.Fatalf("error not a *CorruptionError: %v", err)
	}
}

// TestOpenVerifyQuarantinesDamagedRoot: a store with one damaged and
// one healthy root opens degraded — the damage is reported, binds to
// the damaged root answer ErrCorrupted, and the healthy root serves
// reads and writes untouched.
func TestOpenVerifyQuarantinesDamagedRoot(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	db, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := db.Map("bad")
	good, _ := db.Map("good")
	bad.Set([]byte("k"), []byte("doomed"))
	good.Set([]byte("k"), []byte("fine"))
	db.Sync()
	img := snapshot(db.Store())
	corruptStoredCRC(t, db.Store(), "bad", img)

	db2, info, err := Open(cfg, WithExistingImages([][]byte{img}), WithVerify())
	if err != nil {
		t.Fatalf("degraded open failed entirely: %v", err)
	}
	if len(info.Damaged) != 1 || info.Damaged[0].Salvaged {
		t.Fatalf("Damaged = %+v, want one unsalvaged root", info.Damaged)
	}
	if !errors.Is(info.Damaged[0].Err, ErrCorrupted) {
		t.Fatalf("damage error not ErrCorrupted: %v", info.Damaged[0].Err)
	}
	if _, err := db2.Map("bad"); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("bind to quarantined root: %v, want ErrCorrupted", err)
	}
	if q := db2.Store().Quarantined(); len(q) != 1 {
		t.Fatalf("Quarantined() = %v", q)
	}
	g2, err := db2.Map("good")
	if err != nil {
		t.Fatalf("healthy root refused bind: %v", err)
	}
	if v, ok := g2.Get([]byte("k")); !ok || string(v) != "fine" {
		t.Fatalf("healthy root lost data: %q %v", v, ok)
	}
	g2.Set([]byte("k2"), []byte("more"))
	if v, ok := g2.Get([]byte("k2")); !ok || string(v) != "more" {
		t.Fatal("write to healthy root lost on a degraded store")
	}
}

// TestOpenLazyVerifyDetectsHeaderDamage: without WithVerify the open
// stays cheap; damage to a structure header surfaces typed at first
// bind (the bind-time lazy check), quarantining the root instead of
// serving through a corrupt header.
func TestOpenLazyVerifyDetectsHeaderDamage(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	db, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := db.Map("mx")
	m.Set([]byte("k"), []byte("v"))
	db.Sync()
	img := snapshot(db.Store())
	corruptStoredCRC(t, db.Store(), "mx", img)

	db2, info, err := Open(cfg, WithExistingImages([][]byte{img}))
	if err != nil {
		t.Fatalf("lazy open: %v", err)
	}
	if len(info.Damaged) != 0 {
		t.Fatalf("lazy open reported damage eagerly: %+v", info.Damaged)
	}
	if _, err := db2.Map("mx"); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("bind to damaged header: %v, want ErrCorrupted", err)
	}
	// The damage is now quarantined: rebinding fails the same way.
	if q := db2.Store().Quarantined(); len(q) != 1 {
		t.Fatalf("Quarantined() = %v", q)
	}
}

// TestScrubFindsDamage: a lazily opened store with a damaged root is
// scrubbed in the background; the scrub quarantines the root so later
// binds fail typed instead of panicking mid-read.
func TestScrubFindsDamage(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	db, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := db.Map("mx")
	m.Set([]byte("k"), []byte("v"))
	db.Sync()
	img := snapshot(db.Store())
	corruptStoredCRC(t, db.Store(), "mx", img)

	db2, _, err := Open(cfg, WithExistingImages([][]byte{img}))
	if err != nil {
		t.Fatal(err)
	}
	damaged := db2.Scrub(0)
	if len(damaged) != 1 {
		t.Fatalf("Scrub found %d damaged roots, want 1", len(damaged))
	}
	if _, err := db2.Map("mx"); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("bind after scrub: %v, want ErrCorrupted", err)
	}
	// A healthy store scrubs clean.
	db3, _, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m3, _ := db3.Map("mx")
	m3.Set([]byte("k"), []byte("v"))
	db3.Sync()
	if d := db3.Scrub(0); len(d) != 0 {
		t.Fatalf("healthy scrub reported damage: %+v", d)
	}
}

// TestOpenSalvageRollsBackSelectiveRoot: a damaged record cell under a
// selective root is salvaged by rolling back to the checkpoint; the
// dropped operations are reported and everything the checkpoint covers
// still serves.
func TestOpenSalvageRollsBackSelectiveRoot(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(2))
	cfg := pmem.DefaultConfig(1 << 20)
	db, _, err := Open(cfg, WithSelective(2), WithNodeCache())
	if err != nil {
		t.Fatal(err)
	}
	m, err := db.Map("mx")
	if err != nil {
		t.Fatal(err)
	}
	m.Set([]byte("a"), []byte("1"))
	m.Set([]byte("b"), []byte("2"))
	m.Set([]byte("c"), []byte("3")) // pending record past the last fold
	db.Sync()
	s := db.Store()
	slot, err := s.heap.RootSlot("mx")
	if err != nil {
		t.Fatal(err)
	}
	_, recHead, recCount := funcds.SelectiveExt(s.heap, s.heap.Root(slot))
	if recHead == pmem.Nil || recCount == 0 {
		t.Fatal("no pending record to damage")
	}
	img := snapshot(s)
	img[recHead+15] ^= 0x08 // kind word high byte: covered, not a pointer

	db2, info, err := Open(cfg, WithExistingImages([][]byte{img}), WithSalvage())
	if err != nil {
		t.Fatalf("salvage open failed entirely: %v", err)
	}
	if len(info.Damaged) != 1 || !info.Damaged[0].Salvaged {
		t.Fatalf("Damaged = %+v, want one salvaged root", info.Damaged)
	}
	if info.Damaged[0].DroppedOps == 0 {
		t.Fatal("rollback reported zero dropped ops")
	}
	m2, err := db2.Map("mx")
	if err != nil {
		t.Fatalf("salvaged root refused bind: %v", err)
	}
	for _, k := range []string{"a", "b"} {
		if _, ok := m2.Get([]byte(k)); !ok {
			t.Fatalf("checkpoint-covered key %q lost by salvage", k)
		}
	}
	if _, ok := m2.Get([]byte("c")); ok {
		t.Fatal("dropped record's key still visible after rollback")
	}
	// The salvaged root accepts new writes.
	m2.Set([]byte("d"), []byte("4"))
	if v, ok := m2.Get([]byte("d")); !ok || string(v) != "4" {
		t.Fatalf("post-salvage write lost: %q %v", v, ok)
	}
}
