package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// newSelTestStore builds a store on a durability-tracked device so the
// tests can crash it, with the DRAM node cache on.
func newSelTestStore(t testing.TB) (*Store, *pmem.Device) {
	t.Helper()
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	s, err := newStore(dev)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableNodeCache()
	return s, dev
}

// selCrashReopen takes an adversarial crash image of dev and reopens it,
// returning the recovered store and its device.
func selCrashReopen(t *testing.T, dev *pmem.Device, seed uint64) (*Store, *pmem.Device) {
	t.Helper()
	img := dev.CrashImage(pmem.CrashEvictRandom, seed)
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev2 := pmem.NewFromImage(cfg, img)
	s2, _, err := openStore(dev2)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	return s2, dev2
}

// TestSelectiveMapRebuild drives a selective map through interleaved sets
// and deletes — crossing several checkpoints — crashes, and checks the
// rebuilt state, the recovery-stats counters, and that the store stays
// writable.
func TestSelectiveMapRebuild(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(8))
	s, dev := newSelTestStore(t)
	m, err := s.SelectiveMap("sm")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{}
	key := func(i int) string { return fmt.Sprintf("key-%04d", i) }
	for i := 0; i < 200; i++ {
		k := key(i % 60)
		if i%7 == 3 {
			m.Delete([]byte(k))
			delete(want, k)
			continue
		}
		v := fmt.Sprintf("val-%05d", i)
		m.Set([]byte(k), []byte(v))
		want[k] = v
	}
	s.Sync()

	s2, dev2 := selCrashReopen(t, dev, 42)
	m2, err := s2.SelectiveMap("sm")
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Len(); got != uint64(len(want)) {
		t.Fatalf("recovered len %d, want %d", got, len(want))
	}
	for k, v := range want {
		got, ok := m2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("recovered %q = %q,%v, want %q", k, got, ok, v)
		}
	}
	st := dev2.Stats()
	if st.RecoveryNs <= 0 {
		t.Fatalf("RecoveryNs = %v, want > 0", st.RecoveryNs)
	}
	if st.RebuiltNodes == 0 {
		t.Fatal("RebuiltNodes = 0, want > 0 (record chain was non-empty at crash)")
	}
	// Still writable, and a second crash/reopen holds the new write.
	m2.Set([]byte("after"), []byte("crash"))
	s2.Sync()
	s3, _ := selCrashReopen(t, dev2, 43)
	m3, err := s3.SelectiveMap("sm")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m3.Get([]byte("after")); !ok || string(v) != "crash" {
		t.Fatalf("post-recovery write lost: %q,%v", v, ok)
	}
}

// TestSelectiveVectorStackQueueRebuild covers the other three structures
// end to end across a crash, including pops (whose records carry no
// operands) and the queue's reversal path.
func TestSelectiveVectorStackQueueRebuild(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(8))
	s, dev := newSelTestStore(t)

	v, err := s.SelectiveVector("sv")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		v.Push(i * 3)
	}
	for i := uint64(0); i < 100; i += 5 {
		v.Update(i, i*1000)
	}

	st, err := s.SelectiveStack("ss")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 50; i++ {
		st.Push(i)
	}
	for i := 0; i < 20; i++ {
		st.Pop()
	}

	q, err := s.SelectiveQueue("sq")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 30; i++ {
		q.Enqueue(i + 100)
	}
	for i := 0; i < 12; i++ {
		q.Dequeue() // exhausts the front list, forcing reversals
	}
	for i := uint64(30); i < 40; i++ {
		q.Enqueue(i + 100)
	}
	s.Sync()

	s2, _ := selCrashReopen(t, dev, 7)
	v2, err := s2.SelectiveVector("sv")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Len() != 100 {
		t.Fatalf("vector len %d, want 100", v2.Len())
	}
	for i := uint64(0); i < 100; i++ {
		want := i * 3
		if i%5 == 0 {
			want = i * 1000
		}
		if got := v2.Get(i); got != want {
			t.Fatalf("vector[%d] = %d, want %d", i, got, want)
		}
	}
	st2, err := s2.SelectiveStack("ss")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 30 {
		t.Fatalf("stack len %d, want 30", st2.Len())
	}
	if top, ok := st2.Peek(); !ok || top != 29 {
		t.Fatalf("stack top = %d,%v, want 29", top, ok)
	}
	q2, err := s2.SelectiveQueue("sq")
	if err != nil {
		t.Fatal(err)
	}
	if q2.Len() != 28 {
		t.Fatalf("queue len %d, want 28", q2.Len())
	}
	if head, ok := q2.Peek(); !ok || head != 112 {
		t.Fatalf("queue head = %d,%v, want 112", head, ok)
	}
}

// TestSelectiveCheckpointEveryCommit forces a checkpoint fold on every
// commit (the worst case for the two-fence clear protocol) and checks
// state across a crash taken right after a fold.
func TestSelectiveCheckpointEveryCommit(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(0))
	s, dev := newSelTestStore(t)
	set, err := s.SelectiveSet("st")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		set.Insert([]byte(fmt.Sprintf("member-%03d", i)))
	}
	s.Sync()
	s2, _ := selCrashReopen(t, dev, 99)
	set2, err := s2.SelectiveSet("st")
	if err != nil {
		t.Fatal(err)
	}
	if set2.Len() != 40 {
		t.Fatalf("recovered set len %d, want 40", set2.Len())
	}
	for i := 0; i < 40; i++ {
		if !set2.Contains([]byte(fmt.Sprintf("member-%03d", i))) {
			t.Fatalf("member %d missing after recovery", i)
		}
	}
}

// TestSelectiveConcurrentSnapshotsNodeCache mirrors the headline
// concurrency test on the selective flavor: reader goroutines continuously
// snapshot — hitting the DRAM node cache — while a writer commits FASEs
// that append records, fold checkpoints, and free superseded nodes (which
// invalidates cache entries). Must be race-clean under -race and never
// observe a torn or missing preloaded key.
func TestSelectiveConcurrentSnapshotsNodeCache(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(16))
	const (
		readers = 4
		commits = 600
		preload = 64
	)
	s, _ := newSelTestStore(t)
	m, err := s.SelectiveMap("m")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < preload; i++ {
		m.Set(key64(i), key64(i*3))
	}
	s.Sync()

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		errs = make(chan error, readers+1)
	)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			st := s.Fork()
			rm, err := st.Map("m")
			if err != nil {
				errs <- err
				return
			}
			var k uint64
			for !stop.Load() {
				snap := rm.Snapshot()
				for j := 0; j < 8; j++ {
					k = (k + 7) % preload
					v, ok := snap.Get(key64(k))
					if !ok || len(v) != 8 {
						snap.Close()
						errs <- fmt.Errorf("reader %d: key %d = %x,%v", r, k, v, ok)
						return
					}
				}
				snap.Close()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		st := s.Fork()
		wm, err := st.Map("m")
		if err != nil {
			errs <- err
			return
		}
		for i := uint64(0); i < commits; i++ {
			wm.Set(key64(preload+i%256), key64(i))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s.Sync()
	for i := uint64(0); i < preload; i++ {
		if _, ok := m.Get(key64(i)); !ok {
			t.Fatalf("preloaded key %d lost", i)
		}
	}
}

// TestSelectiveShardedParallelRebuild puts a selective root on every
// shard, crashes the sharded store, and reopens it: the per-shard record
// chains replay in parallel goroutines (race-clean under -race), each
// shard's device reports its own recovery stats, and readers across all
// shards see the rebuilt state.
func TestSelectiveShardedParallelRebuild(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(8))
	const shards = 4
	cfg := pmem.DefaultConfig(4 << 20)
	cfg.TrackDurable = true
	ss, err := newShardedStore(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		ss.Shard(i).EnableNodeCache()
		m, err := ss.Shard(i).SelectiveMap("m")
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 40; j++ {
			m.Set([]byte(fmt.Sprintf("s%d-k%03d", i, j)), []byte(fmt.Sprintf("v%03d", j)))
		}
	}
	ss.Sync()

	imgs := ss.CrashImages(pmem.CrashEvictRandom, 1234)
	ss2, rs, err := openShardedStore(cfg, imgs)
	if err != nil {
		t.Fatalf("sharded recovery: %v", err)
	}
	if len(rs.PerShard) != shards {
		t.Fatalf("PerShard stats for %d shards, want %d", len(rs.PerShard), shards)
	}
	for i := 0; i < shards; i++ {
		m, err := ss2.Shard(i).SelectiveMap("m")
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != 40 {
			t.Fatalf("shard %d: recovered len %d, want 40", i, m.Len())
		}
		for j := 0; j < 40; j++ {
			v, ok := m.Get([]byte(fmt.Sprintf("s%d-k%03d", i, j)))
			if !ok || string(v) != fmt.Sprintf("v%03d", j) {
				t.Fatalf("shard %d key %d: %q,%v", i, j, v, ok)
			}
		}
		if st := ss2.ShardStats(i); st.RecoveryNs <= 0 {
			t.Fatalf("shard %d: RecoveryNs = %v, want > 0", i, st.RecoveryNs)
		}
	}
}

// TestSelectiveBatchAndUnrelatedCommits routes selective updates through
// the group-commit batch record and CommitUnrelated, the two multi-root
// publication paths whose checkpoint clears ride different fences than
// the single-root commit.
func TestSelectiveBatchAndUnrelatedCommits(t *testing.T) {
	defer funcds.SetCheckpointEvery(funcds.SetCheckpointEvery(0)) // fold on every commit
	s, dev := newSelTestStore(t)
	m, err := s.SelectiveMap("bm")
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.SelectiveVector("bv")
	if err != nil {
		t.Fatal(err)
	}
	// Multi-root batch: both selective roots change through the batch
	// record's 3-fence path, folding checkpoints each commit.
	for i := 0; i < 10; i++ {
		b := s.NewBatch()
		b.MapSet(m, []byte(fmt.Sprintf("k%02d", i)), []byte("batched"))
		b.VectorPush(v, uint64(i))
		b.Commit()
	}
	// CommitUnrelated: selective shadows through the short-transaction path.
	mv, _ := m.PureSet([]byte("via-tx"), []byte("yes"))
	vv := v.PurePush(999)
	s.CommitUnrelated(Update{DS: m, Shadows: []Version{mv}}, Update{DS: v, Shadows: []Version{vv}})
	s.Sync()

	s2, _ := selCrashReopen(t, dev, 5)
	m2, err := s2.SelectiveMap("bm")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s2.SelectiveVector("bv")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 11 || v2.Len() != 11 {
		t.Fatalf("recovered lens map=%d vec=%d, want 11,11", m2.Len(), v2.Len())
	}
	if got, ok := m2.Get([]byte("via-tx")); !ok || string(got) != "yes" {
		t.Fatalf("CommitUnrelated write lost: %q,%v", got, ok)
	}
	if got := v2.Get(10); got != 999 {
		t.Fatalf("vector[10] = %d, want 999", got)
	}
}
