package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Sharded store (DESIGN.md §9). A single MOD heap serializes three
// things through one arena: allocation (the bump pointer and free
// lists), commit ordering (every FASE's fence drains one device-wide
// inflight set), and recovery (one reachability scan). ShardedStore
// partitions the root namespace across S fully independent stores —
// each with its own pmem.Device region, its own heap, open-run table,
// epoch reclaimer, commit log, batch record, and background committer —
// so unrelated FASEs on different shards never share a fence, never
// contend on an allocator lock, and recover in parallel.
//
// Root names route to shards by hash (ShardFor); a handle bound through
// the sharded store is an ordinary single-store handle on its shard, so
// single-shard operations keep today's cost exactly: a Basic update is
// one FASE with one fence, a single-shard batch commits through its
// shard's 1-fence (single root) or 3-fence (batch record) path.
//
// # Cross-shard atomicity: the shard manifest
//
// A ShardedBatch whose updates span shards cannot ride any one shard's
// batch record — each record orders only its own device. Instead the
// store commits through a two-phase checksummed manifest in a small
// dedicated metadata region:
//
//	phase 0  apply: each involved shard prepares its updates (shadow
//	         chains built and sealed under its root locks) and fences,
//	         so every shadow is durable; nothing is published.
//	phase 1  intent: the manifest body — (shard, root cell, new
//	         version) triples plus a checksum binding them to this
//	         commit's sequence number — is written and fenced, then the
//	         status word is set to the sequence number and fenced. That
//	         8-byte status write is the batch's atomic commit point.
//	phase 2  per-shard redo: each shard's root cells are overwritten
//	         (idempotent 8-byte swaps) and fenced.
//	phase 3  mark durable: the status word returns to idle and is
//	         fenced. The idle write is issued only after the redo
//	         fences, so it can never become durable while a swap is
//	         not; it is fenced eagerly because no later single-shard
//	         commit ever fences the metadata region, and a manifest
//	         left committed-but-retired could otherwise be replayed
//	         after its roots had durably moved on, rolling them back.
//
// OpenShardedStore replays a committed manifest before any shard's
// reachability scan: a crash before the commit point recovers none of
// the batch (the shadows are swept as leaks), a crash at or after it
// recovers all of it. A cross-shard commit touching k shards costs
// 2k+3 fences — the uncommon, explicitly cross-shard case; everything
// else keeps its single ordering point.

// shardMagic identifies the metadata region of a sharded store.
const shardMagic = 0x4d4f442d53484152 // "MOD-SHAR"

// Manifest layout within the metadata region (offsets from
// manifestBase):
//
//	+0   status   (0 idle; a nonzero sequence number = committed)
//	+8   count    (number of entries)
//	+16  checksum (fnv1a over the sequence number, count, and entries)
//	+24  entries: count × {shard u64, root cell addr u64, version u64}
const (
	metaRegionBytes    = 4096
	manifestBase       = pmem.Addr(64)
	manifestStatusIdle = 0
	manifestHdrSize    = 24
	manifestEntrySize  = 24
)

// MaxManifestEntries bounds how many root cells one cross-shard batch
// can change, by the capacity of the metadata region.
const MaxManifestEntries = (metaRegionBytes - int(manifestBase) - manifestHdrSize) / manifestEntrySize

// shardedShared is the cross-shard state common to all handles of one
// sharded store: the manifest lock serializing cross-shard commits, the
// manifest sequence counter, and the closed flag.
type shardedShared struct {
	mu     sync.Mutex
	seq    uint64 // last manifest sequence number; guarded by mu
	closed atomic.Bool
}

// ShardedStore is a handle onto a persistent store partitioned across
// independent per-shard heaps. Derive one handle per goroutine with
// Fork; handles share all store state but carry their own clocks.
type ShardedStore struct {
	shards   []*Store
	meta     pmem.Backend
	regions  *pmem.Regions
	sh       *shardedShared
	byShared map[*storeShared]int // shard store identity -> shard index
}

// metaConfig derives the metadata region's device configuration.
func metaConfig(cfg pmem.Config) pmem.Config {
	cfg.Size = metaRegionBytes
	cfg.Tracer = nil
	return cfg
}

func newSharded(stores []*Store, meta pmem.Backend) *ShardedStore {
	devs := make([]pmem.Backend, 0, len(stores)+1)
	byShared := make(map[*storeShared]int, len(stores))
	for i, s := range stores {
		devs = append(devs, s.Device())
		byShared[s.sh] = i
	}
	devs = append(devs, meta)
	return &ShardedStore{
		shards:   stores,
		meta:     meta,
		regions:  pmem.NewRegions(devs...),
		sh:       &shardedShared{},
		byShared: byShared,
	}
}

// newShardedStore formats shards independent device regions of cfg.Size
// bytes each, plus a small metadata region, and returns the empty store.
// External callers go through Open with WithShards; the wrapped sharded
// store stays reachable via DB.Sharded.
func newShardedStore(cfg pmem.Config, shards int) (*ShardedStore, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d < 1: %w", shards, ErrShardCount)
	}
	stores := make([]*Store, shards)
	for i := range stores {
		s, err := newStore(pmem.New(cfg))
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		stores[i] = s
	}
	meta := pmem.New(metaConfig(cfg))
	formatShardMeta(meta, shards)
	return newSharded(stores, meta), nil
}

// newShardedDevices formats a sharded store over caller-supplied
// backends — one region per shard plus the metadata region — the
// WithDevices path that puts each shard on its own mmap'd file.
func newShardedDevices(devs []pmem.Backend, meta pmem.Backend) (*ShardedStore, error) {
	if len(devs) < 1 {
		return nil, fmt.Errorf("core: shard count %d < 1: %w", len(devs), ErrShardCount)
	}
	stores := make([]*Store, len(devs))
	for i, d := range devs {
		s, err := newStore(d)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		stores[i] = s
	}
	formatShardMeta(meta, len(devs))
	return newSharded(stores, meta), nil
}

// formatShardMeta writes and fences the metadata region's magic and
// shard count.
func formatShardMeta(meta pmem.Backend, shards int) {
	meta.WriteU64(0, shardMagic)
	meta.WriteU64(8, uint64(shards))
	meta.FlushRange(0, 16)
	meta.Sfence()
}

// ShardedRecoveryStats reports a sharded store's post-crash recovery.
type ShardedRecoveryStats struct {
	// PerShard holds each shard's recovery stats, in shard order.
	PerShard []alloc.RecoveryStats
	// ManifestReplayed reports whether a committed cross-shard manifest
	// was found and its root swaps re-executed.
	ManifestReplayed bool
}

// Total returns the recovery stats summed across shards.
func (rs ShardedRecoveryStats) Total() alloc.RecoveryStats {
	var t alloc.RecoveryStats
	for _, s := range rs.PerShard {
		t.LiveBlocks += s.LiveBlocks
		t.LiveBytes += s.LiveBytes
		t.LeakedBlocks += s.LeakedBlocks
		t.LeakedBytes += s.LeakedBytes
		t.Roots += s.Roots
	}
	return t
}

// manifestEntry is one decoded manifest triple.
type manifestEntry struct {
	shard int
	cell  pmem.Addr
	final pmem.Addr
}

// readManifest decodes the metadata region's manifest. It returns the
// entries to replay (nil unless the status word holds a committed
// sequence number whose checksum validates the body) and whether the
// status word needs clearing.
func readManifest(meta pmem.Backend) (entries []manifestEntry, dirty bool) {
	seq := meta.ReadU64(manifestBase)
	if seq == manifestStatusIdle {
		return nil, false
	}
	count := meta.ReadU64(manifestBase + 8)
	sum := meta.ReadU64(manifestBase + 16)
	if count < 1 || count > uint64(MaxManifestEntries) {
		return nil, true
	}
	words := make([]uint64, 0, 2+3*count)
	words = append(words, seq, count)
	for i := uint64(0); i < count; i++ {
		e := manifestBase + manifestHdrSize + pmem.Addr(i*manifestEntrySize)
		words = append(words, meta.ReadU64(e), meta.ReadU64(e+8), meta.ReadU64(e+16))
	}
	if batchChecksum(words) != sum {
		// A stale status torn against a later manifest's partially
		// durable body: the earlier batch already completed its swaps
		// (or never reached its commit point); discard.
		return nil, true
	}
	entries = make([]manifestEntry, count)
	for i := range entries {
		entries[i] = manifestEntry{
			shard: int(words[2+3*i]),
			cell:  pmem.Addr(words[3+3*i]),
			final: pmem.Addr(words[4+3*i]),
		}
	}
	return entries, true
}

// openShardedStore attaches to a previously formatted sharded store from
// per-region crash images (shard regions in order, metadata region
// last — the layout CrashImages produces). It replays a committed
// cross-shard manifest all-or-nothing, then recovers every shard's heap
// in parallel goroutines: total recovery time is the slowest shard's
// reachability scan, not the sum. External callers go through Open with
// WithExistingImages, which recovers the same way and reports the
// result in a RecoveryInfo.
func openShardedStore(cfg pmem.Config, images [][]byte) (*ShardedStore, ShardedRecoveryStats, error) {
	ss, rs, _, err := openShardedVerify(cfg, images, verifyConfig{})
	return ss, rs, err
}

// openShardedVerify is openShardedStore with the corruption-resilience
// phases wired in (corrupt.go): it constructs one simulator device per
// region image and hands them to the device-based open.
func openShardedVerify(cfg pmem.Config, images [][]byte, vc verifyConfig) (*ShardedStore, ShardedRecoveryStats, []DamagedRoot, error) {
	if len(images) < 2 {
		return nil, ShardedRecoveryStats{}, nil, fmt.Errorf("core: sharded store needs at least 1 shard image + metadata image, got %d", len(images))
	}
	shards := len(images) - 1
	meta := pmem.NewFromImage(metaConfig(cfg), images[shards])
	devs := make([]pmem.Backend, shards)
	for i := 0; i < shards; i++ {
		devs[i] = pmem.NewFromImage(cfg, images[i])
	}
	return openShardedDevices(devs, meta, vc)
}

// openShardedDevices attaches to a previously formatted sharded store
// whose shard regions (and metadata region) are already open as
// backends — images on the simulator, mmap'd files on mmapdev. Each
// shard verifies (and optionally salvages) its roots between its
// reachability scan and its selective rebuild, in per-shard goroutines,
// so degraded opens keep the parallel-recovery property. Damage is
// reported per shard; unsalvaged roots are quarantined on their shard's
// store.
func openShardedDevices(devs []pmem.Backend, meta pmem.Backend, vc verifyConfig) (*ShardedStore, ShardedRecoveryStats, []DamagedRoot, error) {
	var rs ShardedRecoveryStats
	shards := len(devs)
	if got := meta.ReadU64(0); got != shardMagic {
		return nil, rs, nil, fmt.Errorf("core: bad shard metadata magic %#x", got)
	}
	if got := meta.ReadU64(8); got != uint64(shards) {
		return nil, rs, nil, fmt.Errorf("core: store has %d shards, got %d shard regions", got, shards)
	}

	// Phase 0: attach each shard — replay its own batch record and
	// commit log, cheap work that must precede reachability.
	atts := make([]*storeAttachment, shards)
	heaps := make([]*alloc.Heap, shards)
	for i := 0; i < shards; i++ {
		a, err := attachStore(devs[i])
		if err != nil {
			return nil, rs, nil, fmt.Errorf("core: shard %d: %w", i, err)
		}
		atts[i] = a
		heaps[i] = a.heap
	}

	// Phase 1: replay a committed manifest before any reachability scan,
	// so every shard's recovery traces the post-batch roots. The redo
	// writes are idempotent 8-byte swaps; they are fenced per shard
	// before the status clears, so a second crash replays again.
	entries, dirty := readManifest(meta)
	if len(entries) > 0 {
		touched := make(map[int]bool)
		for _, e := range entries {
			if e.shard < 0 || e.shard >= shards {
				return nil, rs, nil, fmt.Errorf("core: manifest entry names shard %d of %d", e.shard, shards)
			}
			devs[e.shard].WriteAddr(e.cell, e.final)
			devs[e.shard].Clwb(e.cell)
			touched[e.shard] = true
		}
		for i := range touched {
			devs[i].Sfence()
		}
		rs.ManifestReplayed = true
	}

	// Phase 2: parallel reachability recovery, one goroutine per shard.
	starts := make([]float64, shards)
	for i, d := range devs {
		starts[i] = d.LocalNs()
	}
	stats, err := alloc.RecoverAll(heaps)
	rs.PerShard = stats
	if err != nil {
		return nil, rs, nil, err
	}

	// Phase 2.5: verify/salvage (when asked) and rebuild selective
	// navigation, in parallel like the reachability scan — each shard
	// verifies and replays its own roots on its own heap, so degraded
	// opens keep total recovery time at the slowest shard's. Without
	// eager verification each shard arms lazy on-read checks instead.
	rebuildErrs := make([]error, shards)
	perShardDamage := make([][]DamagedRoot, shards)
	var wg sync.WaitGroup
	for i := range heaps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var skip map[int]bool
			if vc.verify {
				perShardDamage[i], skip = verifyHeap(heaps[i], i, vc.salvage)
			}
			replayed, rerr := rebuildSelectiveRoots(heaps[i], skip)
			rebuildErrs[i] = rerr
			if !vc.verify {
				heaps[i].ArmLazyVerify()
			}
			devs[i].NoteRecovery(replayed, devs[i].LocalNs()-starts[i])
		}(i)
	}
	wg.Wait()
	var damaged []DamagedRoot
	for _, d := range perShardDamage {
		damaged = append(damaged, d...)
	}
	for i, rerr := range rebuildErrs {
		if rerr != nil {
			return nil, rs, damaged, fmt.Errorf("core: shard %d: %w", i, rerr)
		}
	}

	// Phase 3: build the handles and retire the manifest.
	stores := make([]*Store, shards)
	for i, a := range atts {
		s, err := a.finishOpen()
		if err != nil {
			return nil, rs, damaged, fmt.Errorf("core: shard %d: %w", i, err)
		}
		stores[i] = s
	}
	quarantineDamage(stores, damaged)
	if dirty {
		meta.WriteU64(manifestBase, manifestStatusIdle)
		meta.Clwb(manifestBase)
		meta.Sfence()
	}
	return newSharded(stores, meta), rs, damaged, nil
}

// Fork returns a new handle set onto the same sharded store whose
// per-shard device and heap handles carry fresh per-goroutine clocks.
func (ss *ShardedStore) Fork() *ShardedStore {
	shards := make([]*Store, len(ss.shards))
	for i, s := range ss.shards {
		shards[i] = s.Fork()
	}
	return &ShardedStore{
		shards:   shards,
		meta:     ss.meta.Fork(),
		regions:  ss.regions,
		sh:       ss.sh,
		byShared: ss.byShared,
	}
}

// ShardCount returns the number of shards.
func (ss *ShardedStore) ShardCount() int { return len(ss.shards) }

// Shard returns the store handle of shard i, for explicit placement
// (binding a root on a chosen shard rather than by name hash).
func (ss *ShardedStore) Shard(i int) *Store { return ss.shards[i] }

// Meta returns the metadata region's device handle.
func (ss *ShardedStore) Meta() pmem.Backend { return ss.meta }

// Regions returns the store's device regions: the shard regions in
// shard order, then the metadata region.
func (ss *ShardedStore) Regions() *pmem.Regions { return ss.regions }

// hashRoot is fnv1a over the root name, the shard routing hash.
func hashRoot(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// ShardFor returns the shard index a root name routes to.
func (ss *ShardedStore) ShardFor(name string) int {
	return int(hashRoot(name) % uint64(len(ss.shards)))
}

// StoreFor returns the shard store a root name routes to.
func (ss *ShardedStore) StoreFor(name string) *Store {
	return ss.shards[ss.ShardFor(name)]
}

// Map binds (creating on first use) a recoverable map under a named
// root on the shard the name routes to.
func (ss *ShardedStore) Map(name string) (*Map, error) { return ss.StoreFor(name).Map(name) }

// Set binds a recoverable set on the shard the name routes to.
func (ss *ShardedStore) Set(name string) (*Set, error) { return ss.StoreFor(name).Set(name) }

// Vector binds a recoverable vector on the shard the name routes to.
func (ss *ShardedStore) Vector(name string) (*Vector, error) { return ss.StoreFor(name).Vector(name) }

// Stack binds a recoverable stack on the shard the name routes to.
func (ss *ShardedStore) Stack(name string) (*Stack, error) { return ss.StoreFor(name).Stack(name) }

// Queue binds a recoverable queue on the shard the name routes to.
func (ss *ShardedStore) Queue(name string) (*Queue, error) { return ss.StoreFor(name).Queue(name) }

// SelectiveMap binds a selectively persisted map (DESIGN.md §10) on the
// shard the name routes to.
func (ss *ShardedStore) SelectiveMap(name string) (*Map, error) {
	return ss.StoreFor(name).SelectiveMap(name)
}

// SelectiveSet binds a selectively persisted set on the shard the name
// routes to.
func (ss *ShardedStore) SelectiveSet(name string) (*Set, error) {
	return ss.StoreFor(name).SelectiveSet(name)
}

// SelectiveVector binds a selectively persisted vector on the shard the
// name routes to.
func (ss *ShardedStore) SelectiveVector(name string) (*Vector, error) {
	return ss.StoreFor(name).SelectiveVector(name)
}

// SelectiveStack binds a selectively persisted stack on the shard the
// name routes to.
func (ss *ShardedStore) SelectiveStack(name string) (*Stack, error) {
	return ss.StoreFor(name).SelectiveStack(name)
}

// SelectiveQueue binds a selectively persisted queue on the shard the
// name routes to.
func (ss *ShardedStore) SelectiveQueue(name string) (*Queue, error) {
	return ss.StoreFor(name).SelectiveQueue(name)
}

// Sync makes everything committed so far durable on every shard and
// reclaims retired blocks shard by shard. On a closed store Sync is a
// no-op: Close already fenced everything.
func (ss *ShardedStore) Sync() {
	if ss == nil || ss.sh.closed.Load() {
		return
	}
	for _, s := range ss.shards {
		s.Sync()
	}
	ss.meta.Sfence() // defense in depth; manifest retirement is fenced inline
}

// Closed reports whether Close has been called on any handle of this
// sharded store.
func (ss *ShardedStore) Closed() bool { return ss.sh.closed.Load() }

// Close drains and stops every shard's background committer, fences each
// shard and the metadata region, and marks the store closed: subsequent
// binds return ErrStoreClosed, and CommitAsync tickets resolve with
// ErrStoreClosed instead of hanging. Idempotent, and safe on a store
// whose open failed partway.
func (ss *ShardedStore) Close() error {
	if ss == nil || !ss.sh.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, s := range ss.shards {
		s.Close()
	}
	ss.meta.Sfence()
	return nil
}

// StartGroupCommitters launches one background group committer per
// shard. Batches submitted on different shards coalesce into separate
// fence epochs on their own devices, so shards never share a fence.
func (ss *ShardedStore) StartGroupCommitters(maxOps int) {
	for _, s := range ss.shards {
		s.StartGroupCommitter(maxOps)
	}
}

// StopGroupCommitters drains and stops every shard's committer.
func (ss *ShardedStore) StopGroupCommitters() {
	for _, s := range ss.shards {
		s.StopGroupCommitter()
	}
}

// SetCommitterLinger sets every shard committer's settle-fence
// collection window (see Store.SetCommitterLinger).
func (ss *ShardedStore) SetCommitterLinger(d time.Duration) {
	for _, s := range ss.shards {
		s.SetCommitterLinger(d)
	}
}

// SetMutexCommit switches every shard's Basic-interface updates between
// the legacy per-root-mutex commit path (true) and the two-tier
// optimistic path (false, the default). See Store.SetMutexCommit.
func (ss *ShardedStore) SetMutexCommit(on bool) {
	for _, s := range ss.shards {
		s.SetMutexCommit(on)
	}
}

// CommitStats returns the commit-tier counters summed across shards.
func (ss *ShardedStore) CommitStats() CommitStats {
	var t CommitStats
	for _, s := range ss.shards {
		c := s.CommitStats()
		t.FastWins += c.FastWins
		t.FastAborts += c.FastAborts
		t.FastLosses += c.FastLosses
		t.Combines += c.Combines
		t.CombineRetries += c.CombineRetries
		t.CombinedOps += c.CombinedOps
		t.LockedCommits += c.LockedCommits
	}
	return t
}

// Stats returns the aggregate device counters across every region
// (shards plus metadata). Per-region breakdowns are available through
// ShardStats and MetaStats; the aggregate is their exact counter-wise
// sum, a property the test suite pins.
func (ss *ShardedStore) Stats() pmem.Stats { return ss.regions.Stats() }

// ShardStats returns shard i's device counters.
func (ss *ShardedStore) ShardStats(i int) pmem.Stats { return ss.shards[i].Device().Stats() }

// MetaStats returns the metadata region's device counters.
func (ss *ShardedStore) MetaStats() pmem.Stats { return ss.meta.Stats() }

// CrashImages returns post-power-failure images of every region (shards
// in order, metadata last), the input OpenShardedStore expects.
func (ss *ShardedStore) CrashImages(policy pmem.CrashPolicy, seed uint64) [][]byte {
	return ss.regions.CrashImages(policy, seed)
}

// shardOf resolves the shard index owning a datastructure's store.
func (ss *ShardedStore) shardOf(ds Datastructure) int {
	if i, ok := ss.byShared[ds.store().sh]; ok {
		return i
	}
	panic(fmt.Sprintf("core: datastructure %q does not belong to this sharded store", ds.Name()))
}

// ShardedBatch accumulates updates for one commit across any number of
// shards. Updates that land on a single shard commit through that
// shard's ordinary group-commit paths (1 fence single-root, 3 fences
// multi-root); updates spanning shards commit atomically through the
// shard manifest. A ShardedBatch is not safe for concurrent use.
type ShardedBatch struct {
	ss  *ShardedStore
	per map[int][]batchOp // shard index -> ops, submission order kept
	n   int
}

// NewBatch returns an empty cross-shard batch bound to this handle.
func (ss *ShardedStore) NewBatch() *ShardedBatch { return &ShardedBatch{ss: ss} }

// Len returns the number of operations accumulated.
func (b *ShardedBatch) Len() int { return b.n }

func (b *ShardedBatch) addOp(op batchOp) {
	if op.ds.location().parent != nil {
		panic(fmt.Sprintf("core: batched update of parent-bound %q (batches require root-bound datastructures)", op.ds.Name()))
	}
	si := b.ss.shardOf(op.ds)
	if b.per == nil {
		b.per = make(map[int][]batchOp)
	}
	b.per[si] = append(b.per[si], op)
	b.n++
}

// MapSet queues binding key to val in m. Key and value are copied.
func (b *ShardedBatch) MapSet(m *Map, key, val []byte) { b.addOp(mapSetOp(m, key, val)) }

// MapDelete queues removing key from m.
func (b *ShardedBatch) MapDelete(m *Map, key []byte) { b.addOp(mapDeleteOp(m, key)) }

// SetInsert queues adding key to st.
func (b *ShardedBatch) SetInsert(st *Set, key []byte) { b.addOp(setInsertOp(st, key)) }

// SetDelete queues removing key from st.
func (b *ShardedBatch) SetDelete(st *Set, key []byte) { b.addOp(setDeleteOp(st, key)) }

// VectorPush queues appending val to v.
func (b *ShardedBatch) VectorPush(v *Vector, val uint64) { b.addOp(vectorPushOp(v, val)) }

// VectorUpdate queues replacing element i of v with val.
func (b *ShardedBatch) VectorUpdate(v *Vector, i uint64, val uint64) {
	b.addOp(vectorUpdateOp(v, i, val))
}

// StackPush queues pushing val onto st.
func (b *ShardedBatch) StackPush(st *Stack, val uint64) { b.addOp(stackPushOp(st, val)) }

// StackPop queues removing the top element of st (no-op on empty).
func (b *ShardedBatch) StackPop(st *Stack) { b.addOp(stackPopOp(st)) }

// QueueEnqueue queues appending val at the tail of q.
func (b *ShardedBatch) QueueEnqueue(q *Queue, val uint64) { b.addOp(queueEnqueueOp(q, val)) }

// QueueDequeue queues removing the head element of q (no-op on empty).
func (b *ShardedBatch) QueueDequeue(q *Queue) { b.addOp(queueDequeueOp(q)) }

// Commit applies every queued operation and publishes the results,
// leaving the batch empty. Single-shard batches keep their shard's
// usual fence economy; cross-shard batches are made crash-atomic by the
// shard manifest — recovery sees all of the batch or none of it.
func (b *ShardedBatch) Commit() {
	per := b.per
	b.per = nil
	b.n = 0
	b.ss.commitSharded(per)
}

// CommitAsync publishes the batch and returns a ticket that resolves
// when it is durable. A batch confined to one shard rides that shard's
// background committer, coalescing with other goroutines' submissions
// into shared fence epochs; a cross-shard batch publishes synchronously
// through the shard manifest and the ticket resolves on return. On a
// closed store the batch is dropped and the ticket resolves immediately
// with ErrStoreClosed.
func (b *ShardedBatch) CommitAsync() *Ticket {
	per := b.per
	b.per = nil
	b.n = 0
	if b.ss.sh.closed.Load() {
		return failedTicket(ErrStoreClosed)
	}
	if len(per) == 1 {
		for si, ops := range per {
			return b.ss.shards[si].commitAsyncOps(ops)
		}
	}
	b.ss.commitSharded(per)
	// The manifest path fences each involved shard after its redo swaps,
	// but a batch that collapsed to one shard's local publication leaves
	// its final swap riding the next fence — settle each involved shard
	// so the ticket's durability contract holds in every case.
	for si := range per {
		b.ss.shards[si].heap.Fence()
	}
	t := &Ticket{done: make(chan struct{})}
	close(t.done)
	return t
}

// commitSharded is the cross-shard group-commit step. Shards are
// prepared in ascending index order (and each shard locks its roots in
// ascending slot order), so overlapping cross-shard commits cannot
// deadlock; the manifest lock then serializes publication.
func (ss *ShardedStore) commitSharded(per map[int][]batchOp) {
	order := make([]int, 0, len(per))
	for si, ops := range per {
		if len(ops) > 0 {
			order = append(order, si)
		}
	}
	if len(order) == 0 {
		return
	}
	sort.Ints(order)
	if len(order) == 1 {
		// Everything on one shard: the shard's own publication paths
		// already give batch atomicity at 1 or 3 fences.
		ss.shards[order[0]].commitBatch(per[order[0]])
		return
	}

	// Phase 0: apply on every involved shard. Each prepare holds its
	// shard's root locks until finish, and seals its edit so all shadow
	// lines are inflight on the shard's device.
	preps := make([]*preparedBatch, len(order))
	for i, si := range order {
		preps[i] = ss.shards[si].prepareBatch(per[si])
	}
	var entries []manifestEntry
	changed := make([]bool, len(order))
	for i, p := range preps {
		for _, c := range p.changed {
			entries = append(entries, manifestEntry{
				shard: order[i],
				cell:  p.s.heap.RootCellAddr(c.slot),
				final: c.final,
			})
		}
		changed[i] = len(p.changed) > 0
	}
	if len(entries) > MaxManifestEntries {
		panic(fmt.Sprintf("core: cross-shard batch changes %d roots (max %d)", len(entries), MaxManifestEntries))
	}

	single := -1
	for i := range preps {
		if changed[i] {
			if single >= 0 {
				single = -2 // two or more shards changed
				break
			}
			single = i
		}
	}
	switch {
	case single == -1:
		// No root changed anywhere: nothing to publish or order.
	case single >= 0:
		// Only one shard actually changed: its local publication paths
		// are already all-or-nothing, skip the manifest.
		preps[single].publishLocal()
	default:
		// Shadow durability: one fence per changed shard, before the
		// commit point can be written. Selective structures due for a
		// checkpoint prepare it first (crown flushes ride the shard's
		// fence) and clear their crown durable behind it — program order
		// puts every clear fence before the manifest's commit point, so
		// a replayed swap can never publish a structure whose navigation
		// recovery would zero.
		for i, p := range preps {
			if changed[i] {
				var crown []pmem.Addr
				for _, c := range p.changed {
					crown = append(crown, p.s.maybeCheckpoint(c.final)...)
				}
				p.s.heap.Fence()
				p.s.clearCrown(crown)
			}
		}
		meta := ss.meta
		ss.sh.mu.Lock()
		ss.sh.seq++ // serialized by the manifest lock; 0 is reserved for idle
		seq := ss.sh.seq
		words := make([]uint64, 0, 2+3*len(entries))
		words = append(words, seq, uint64(len(entries)))
		for i, e := range entries {
			a := manifestBase + manifestHdrSize + pmem.Addr(i*manifestEntrySize)
			meta.WriteU64(a, uint64(e.shard))
			meta.WriteU64(a+8, uint64(e.cell))
			meta.WriteU64(a+16, uint64(e.final))
			words = append(words, uint64(e.shard), uint64(e.cell), uint64(e.final))
		}
		meta.WriteU64(manifestBase+8, uint64(len(entries)))
		meta.WriteU64(manifestBase+16, batchChecksum(words))
		meta.FlushRange(manifestBase+8, 16+len(entries)*manifestEntrySize)
		// Intent fence: the body — and any previous manifest's
		// retirement — is durable while the status is still idle, so a
		// crash here recovers none of the batch.
		meta.Sfence()
		meta.WriteU64(manifestBase, seq)
		meta.Clwb(manifestBase)
		meta.Sfence() // the status write is the batch's atomic commit point
		// Per-shard redo: overwrite the root cells, fencing each shard so
		// every swap is durable before the manifest retires.
		for i, p := range preps {
			if !changed[i] {
				continue
			}
			p.s.commitBegin()
			for _, c := range p.changed {
				p.s.heap.SetRoot(c.slot, c.final)
			}
			p.s.commitEnd()
			p.s.heap.Fence()
		}
		// Mark durable: idle status issued only now, after the redo
		// fences, so it can never become durable while a swap is not —
		// and fenced immediately. Unlike the single-device batch record,
		// whose retirement rides its own device's next commit fence, the
		// metadata region is fenced by no ordinary commit: deferring this
		// fence would let a crash resurrect the manifest after touched
		// roots had durably moved on, and the replay would roll them back.
		meta.WriteU64(manifestBase, manifestStatusIdle)
		meta.Clwb(manifestBase)
		meta.Sfence()
		ss.sh.mu.Unlock()
	}

	for _, p := range preps {
		p.finish()
	}
}
