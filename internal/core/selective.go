package core

import (
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Selective persistence binders (DESIGN.md §10, "Don't Persist All").
//
// A Selective* binder is the root-bound counterpart of the plain binder:
// on first use it creates the selectively persisted flavor of the
// structure — interior navigation nodes stay volatile-clean in the
// allocator's view, every update appends one durable record cell, and the
// commit path periodically folds the record chain into a durable
// checkpoint. The handle type is the same as the plain binder's: every
// operation, batch op, and snapshot tag-detects the flavor through
// funcds.MapAt and friends, so a selective root is usable everywhere a
// normal one is (except under a Parent — selective structures are
// root-bound only, because checkpoint folding hooks the root commit
// paths).
//
// The flavor is decided at creation: binding an existing root returns it
// with whatever flavor it was created with, regardless of which binder is
// used.

// SelectiveMap binds (creating on first use) a selectively persisted
// recoverable map under a named root.
func (s *Store) SelectiveMap(name string) (*Map, error) {
	loc, addr, err := bindRoot(s, name, kindChamp, func() pmem.Addr { return funcds.NewMapSelective(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	m := &Map{st: s, name: name, loc: loc}
	m.adopt(addr)
	return m, nil
}

// SelectiveSet binds (creating on first use) a selectively persisted
// recoverable set under a named root.
func (s *Store) SelectiveSet(name string) (*Set, error) {
	loc, addr, err := bindRoot(s, name, kindChamp, func() pmem.Addr { return funcds.NewSetSelective(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Set{st: s, name: name, loc: loc}
	st.adopt(addr)
	return st, nil
}

// SelectiveVector binds (creating on first use) a selectively persisted
// recoverable vector under a named root.
func (s *Store) SelectiveVector(name string) (*Vector, error) {
	loc, addr, err := bindRoot(s, name, kindVector, func() pmem.Addr { return funcds.NewVectorSelective(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	v := &Vector{st: s, name: name, loc: loc}
	v.adopt(addr)
	return v, nil
}

// SelectiveStack binds (creating on first use) a selectively persisted
// recoverable stack under a named root.
func (s *Store) SelectiveStack(name string) (*Stack, error) {
	loc, addr, err := bindRoot(s, name, kindStack, func() pmem.Addr { return funcds.NewStackSelective(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Stack{st: s, name: name, loc: loc}
	st.adopt(addr)
	return st, nil
}

// SelectiveQueue binds (creating on first use) a selectively persisted
// recoverable queue under a named root.
func (s *Store) SelectiveQueue(name string) (*Queue, error) {
	loc, addr, err := bindRoot(s, name, kindQueue, func() pmem.Addr { return funcds.NewQueueSelective(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	q := &Queue{st: s, name: name, loc: loc}
	q.adopt(addr)
	return q, nil
}

// EnableNodeCache turns on the heap's DRAM node cache: committed
// navigation nodes are served from a volatile map keyed by PM address
// instead of paying the device's read latency. Safe to enable at any
// time; it applies to every handle forked from this store.
func (s *Store) EnableNodeCache() { s.heap.EnableNodeCache() }
