package core

import (
	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Snapshots: the lock-free read path. A snapshot pins the allocator's
// reclamation epoch, loads the structure's committed version pointer with
// one atomic read, and hands back the immutable version. Because every
// committed version is immutable (Functional Shadowing, §4.1) and the
// epoch pin keeps its nodes from being recycled, the snapshot can be
// traversed freely while any number of writers commit new versions — the
// reader never blocks a committing writer and is never blocked by one.
//
// A snapshot must be Closed when done; holding one open delays
// reclamation of every version retired after it was taken (it does not
// block writers, only memory reuse).
//
// Snapshots observe the version committed at the moment of the pointer
// load: the 8-byte root swap is atomic, so a snapshot taken mid-commit
// sees either the old or the new version in full, never a mixture.

// snap pins the epoch and resolves the location's committed pointer, in
// that order — the pin must cover the pointer load, or the version could
// be retired and recycled between load and traversal.
func snap(s *Store, loc location) (pmem.Addr, *alloc.EpochGuard) {
	g := s.heap.Enter()
	return s.resolveForRead(loc), g
}

// MapSnapshot is an immutable view of a map's latest committed version.
type MapSnapshot struct {
	v funcds.Map
	g *alloc.EpochGuard
}

// Snapshot returns the latest committed version of the map, pinned
// against reclamation until Close.
func (m *Map) Snapshot() MapSnapshot {
	addr, g := snap(m.st, m.loc)
	return MapSnapshot{v: funcds.MapAt(m.st.heap, addr), g: g}
}

// Close releases the snapshot's reclamation pin. Idempotent.
func (s MapSnapshot) Close() { s.g.Exit() }

// Len returns the number of entries.
func (s MapSnapshot) Len() uint64 { return s.v.Len() }

// Get returns the value bound to key in this version.
func (s MapSnapshot) Get(key []byte) ([]byte, bool) { return s.v.Get(key) }

// Contains reports whether key is bound in this version.
func (s MapSnapshot) Contains(key []byte) bool { return s.v.Contains(key) }

// Range iterates over this version's entries.
func (s MapSnapshot) Range(f func(key, val []byte) bool) { s.v.Range(f) }

// Version returns the underlying immutable version for composition. It
// is valid only until Close.
func (s MapSnapshot) Version() MapVersion { return s.v }

// SetSnapshot is an immutable view of a set's latest committed version.
type SetSnapshot struct {
	v funcds.Set
	g *alloc.EpochGuard
}

// Snapshot returns the latest committed version of the set, pinned
// against reclamation until Close.
func (s *Set) Snapshot() SetSnapshot {
	addr, g := snap(s.st, s.loc)
	return SetSnapshot{v: funcds.SetDSAt(s.st.heap, addr), g: g}
}

// Close releases the snapshot's reclamation pin. Idempotent.
func (s SetSnapshot) Close() { s.g.Exit() }

// Len returns the number of members.
func (s SetSnapshot) Len() uint64 { return s.v.Len() }

// Contains reports membership in this version.
func (s SetSnapshot) Contains(key []byte) bool { return s.v.Contains(key) }

// Range iterates over this version's members.
func (s SetSnapshot) Range(f func(key []byte) bool) { s.v.Range(f) }

// Version returns the underlying immutable version for composition. It
// is valid only until Close.
func (s SetSnapshot) Version() SetVersion { return s.v }

// VectorSnapshot is an immutable view of a vector's latest committed
// version.
type VectorSnapshot struct {
	v funcds.Vector
	g *alloc.EpochGuard
}

// Snapshot returns the latest committed version of the vector, pinned
// against reclamation until Close.
func (v *Vector) Snapshot() VectorSnapshot {
	addr, g := snap(v.st, v.loc)
	return VectorSnapshot{v: funcds.VectorAt(v.st.heap, addr), g: g}
}

// Close releases the snapshot's reclamation pin. Idempotent.
func (s VectorSnapshot) Close() { s.g.Exit() }

// Len returns the number of elements.
func (s VectorSnapshot) Len() uint64 { return s.v.Len() }

// Get returns the element at index i in this version.
func (s VectorSnapshot) Get(i uint64) uint64 { return s.v.Get(i) }

// Version returns the underlying immutable version for composition. It
// is valid only until Close.
func (s VectorSnapshot) Version() VectorVersion { return s.v }

// StackSnapshot is an immutable view of a stack's latest committed
// version.
type StackSnapshot struct {
	v funcds.Stack
	g *alloc.EpochGuard
}

// Snapshot returns the latest committed version of the stack, pinned
// against reclamation until Close.
func (s *Stack) Snapshot() StackSnapshot {
	addr, g := snap(s.st, s.loc)
	return StackSnapshot{v: funcds.StackAt(s.st.heap, addr), g: g}
}

// Close releases the snapshot's reclamation pin. Idempotent.
func (s StackSnapshot) Close() { s.g.Exit() }

// Len returns the number of elements.
func (s StackSnapshot) Len() uint64 { return s.v.Len() }

// Peek returns the top element of this version.
func (s StackSnapshot) Peek() (uint64, bool) { return s.v.Peek() }

// Version returns the underlying immutable version for composition. It
// is valid only until Close.
func (s StackSnapshot) Version() StackVersion { return s.v }

// QueueSnapshot is an immutable view of a queue's latest committed
// version.
type QueueSnapshot struct {
	v funcds.Queue
	g *alloc.EpochGuard
}

// Snapshot returns the latest committed version of the queue, pinned
// against reclamation until Close.
func (q *Queue) Snapshot() QueueSnapshot {
	addr, g := snap(q.st, q.loc)
	return QueueSnapshot{v: funcds.QueueAt(q.st.heap, addr), g: g}
}

// Close releases the snapshot's reclamation pin. Idempotent.
func (s QueueSnapshot) Close() { s.g.Exit() }

// Len returns the number of elements.
func (s QueueSnapshot) Len() uint64 { return s.v.Len() }

// Peek returns the head element of this version.
func (s QueueSnapshot) Peek() (uint64, bool) { return s.v.Peek() }

// Version returns the underlying immutable version for composition. It
// is valid only until Close.
func (s QueueSnapshot) Version() QueueVersion { return s.v }
