package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Version aliases: the Pure* operations of the Composition interface
// return shadow versions of the underlying functional datastructures;
// further pure updates can be chained on them directly (Fig. 7b) before
// committing with CommitSingle/CommitSiblings/CommitUnrelated.
type (
	// MapVersion is one immutable version of a MOD map.
	MapVersion = funcds.Map
	// SetVersion is one immutable version of a MOD set.
	SetVersion = funcds.Set
	// VectorVersion is one immutable version of a MOD vector.
	VectorVersion = funcds.Vector
	// StackVersion is one immutable version of a MOD stack.
	StackVersion = funcds.Stack
	// QueueVersion is one immutable version of a MOD queue.
	QueueVersion = funcds.Queue
)

// Handle concurrency. A handle may be shared across goroutines: its
// bookkeeping word (the version its last commit adopted) is atomic, and
// every operation resolves the live committed version from PM rather
// than trusting a cached one that another handle's commit may have
// superseded and reclaimed. Basic-interface updates commit through the
// two-tier optimistic path (optimistic.go): each attempt applies against
// a fresh snapshot of the committed version and publishes with a CAS, so
// concurrent writers through different handles stay linearizable per
// root and never lose updates — without serializing their shadow builds.
// Read methods pin the reclamation epoch for the duration of one call;
// for repeated reads of one consistent version, Snapshot amortizes the
// pin and fixes the version (snapshot.go).
// Composition-interface methods (Current, Pure*) resolve the committed
// version without pinning: they are writer-side operations, and the
// required single-writer-per-root discipline means no concurrent commit
// can retire the version under them.

// reservedRootPrefix guards the store's internal anchor roots (the
// commit log and the batch record): binding a datastructure over one of
// them would let user commits clobber the recovery machinery.
const reservedRootPrefix = "__mod_"

// rootKind names a structure family and the header tags it may bind
// over, for the ErrWrongRootKind check. Map and Set share the CHAMP
// header and are one kind; each kind accepts both the plain and the
// selective flavor of its header.
type rootKind struct {
	name string
	tags []uint8
}

var (
	kindChamp  = rootKind{"map/set", []uint8{funcds.TagMapHdr, funcds.TagMapHdrSel}}
	kindVector = rootKind{"vector", []uint8{funcds.TagVecHdr, funcds.TagVecHdrSel}}
	kindStack  = rootKind{"stack", []uint8{funcds.TagStackHdr, funcds.TagStackHdrSel}}
	kindQueue  = rootKind{"queue", []uint8{funcds.TagQueueHdr, funcds.TagQueueHdrSel}}
	kindParent = rootKind{"parent", []uint8{funcds.TagParent}}
)

// checkKind verifies an existing header's tag belongs to the kind a
// binder expects.
func (s *Store) checkKind(name string, addr pmem.Addr, want rootKind) error {
	tag := s.heap.Tag(addr)
	for _, t := range want.tags {
		if tag == t {
			return nil
		}
	}
	return fmt.Errorf("core: binding %q as %s: %w (header tag %d)", name, want.name, ErrWrongRootKind, tag)
}

// bindRoot resolves a handle's location and current address, creating the
// structure via create (which must allocate and flush a new empty header)
// when absent. The root's commit mutex serializes concurrent first binds.
func bindRoot(s *Store, name string, want rootKind, create func() pmem.Addr) (location, pmem.Addr, error) {
	if strings.HasPrefix(name, reservedRootPrefix) {
		return location{}, pmem.Nil, fmt.Errorf("core: root name %q uses the reserved prefix %q: %w", name, reservedRootPrefix, ErrReservedRootName)
	}
	if s.sh.closed.Load() {
		return location{}, pmem.Nil, fmt.Errorf("core: binding %q: %w", name, ErrStoreClosed)
	}
	slot, err := s.heap.RootSlot(name)
	if err != nil {
		return location{}, pmem.Nil, err
	}
	if qerr := s.quarantineErr(slot); qerr != nil {
		return location{}, pmem.Nil, fmt.Errorf("core: binding %q: %w", name, qerr)
	}
	mu := &s.sh.rootMu[slot]
	mu.Lock()
	defer mu.Unlock()
	if root := s.heap.Root(slot); root != pmem.Nil {
		if err := s.verifyBindLazy(name, slot, root); err != nil {
			return location{}, pmem.Nil, err
		}
		if err := s.checkKind(name, root, want); err != nil {
			return location{}, pmem.Nil, err
		}
		return location{slot: slot}, root, nil
	}
	s.BeginFASE()
	addr := create()
	if err := s.commitRoot(slot, pmem.Nil, addr); err != nil {
		s.EndFASE()
		return location{}, pmem.Nil, err
	}
	s.EndFASE()
	return location{slot: slot}, addr, nil
}

func bindField(p *Parent, field string, want rootKind, create func() pmem.Addr) (location, pmem.Addr, error) {
	i, err := p.fieldIndex(field)
	if err != nil {
		return location{}, pmem.Nil, err
	}
	if p.s.sh.closed.Load() {
		return location{}, pmem.Nil, fmt.Errorf("core: binding field %q: %w", field, ErrStoreClosed)
	}
	mu := &p.s.sh.rootMu[p.slot]
	mu.Lock()
	defer mu.Unlock()
	p.refreshLocked()
	if f := p.fieldAddr(i); f != pmem.Nil {
		if err := p.s.checkKind(field, f, want); err != nil {
			return location{}, pmem.Nil, err
		}
		return location{parent: p, slot: i}, f, nil
	}
	p.s.BeginFASE()
	addr := create()
	if err := p.installField(i, addr); err != nil {
		p.s.EndFASE()
		return location{}, pmem.Nil, err
	}
	p.s.EndFASE()
	return location{parent: p, slot: i}, addr, nil
}

// ---------------------------------------------------------------- Map --

// Map is a recoverable hash map with STL-like failure-atomic operations
// (Basic interface) and Pure* shadow operations (Composition interface).
type Map struct {
	st   *Store
	name string
	loc  location
	cur  atomic.Uint64 // address of the handle's adopted version
}

// Map binds (creating on first use) a recoverable map under a named root.
func (s *Store) Map(name string) (*Map, error) {
	loc, addr, err := bindRoot(s, name, kindChamp, func() pmem.Addr { return funcds.NewMap(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	m := &Map{st: s, name: name, loc: loc}
	m.adopt(addr)
	return m, nil
}

// Map binds (creating on first use) a recoverable map under a parent field.
func (p *Parent) Map(field string) (*Map, error) {
	loc, addr, err := bindField(p, field, kindChamp, func() pmem.Addr { return funcds.NewMap(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	m := &Map{st: p.s, name: field, loc: loc}
	m.adopt(addr)
	return m, nil
}

// Name returns the bound root or field name.
func (m *Map) Name() string { return m.name }

func (m *Map) latest() funcds.Map     { return funcds.MapAt(m.st.heap, m.st.resolveForRead(m.loc)) }
func (m *Map) currentAddr() pmem.Addr { return pmem.Addr(m.cur.Load()) }
func (m *Map) adopt(a pmem.Addr)      { m.cur.Store(uint64(a)) }
func (m *Map) location() location     { return m.loc }
func (m *Map) store() *Store          { return m.st }

// Len returns the number of entries.
func (m *Map) Len() uint64 {
	g := m.st.heap.Enter()
	defer g.Exit()
	return m.latest().Len()
}

// Get returns the value bound to key in the latest committed version.
func (m *Map) Get(key []byte) ([]byte, bool) {
	g := m.st.heap.Enter()
	defer g.Exit()
	return m.latest().Get(key)
}

// Set failure-atomically binds key to val (one FASE, one fence) and
// reports whether an existing binding was replaced. Like every Basic
// mutator it commits through the two-tier optimistic path
// (optimistic.go): lock-free CAS publication, flat combining under
// contention.
func (m *Map) Set(key, val []byte) bool {
	var replaced bool
	m.st.update(m, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, r := funcds.MapAt(s.heap, cur).WithEdit(ed).Set(key, val)
		replaced = r
		return next.Addr()
	})
	return replaced
}

// Delete failure-atomically removes key, reporting whether it was present.
func (m *Map) Delete(key []byte) bool {
	var removed bool
	m.st.update(m, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, r := funcds.MapAt(s.heap, cur).WithEdit(ed).Delete(key)
		removed = r
		if !r {
			return cur // miss: nothing to publish
		}
		return next.Addr()
	})
	return removed
}

// Range iterates over the latest committed version's entries.
func (m *Map) Range(f func(key, val []byte) bool) {
	g := m.st.heap.Enter()
	defer g.Exit()
	m.latest().Range(f)
}

// Current returns the current committed version for composition.
func (m *Map) Current() MapVersion { return m.latest() }

// PureSet returns a shadow with key bound to val, without committing.
func (m *Map) PureSet(key, val []byte) (MapVersion, bool) { return m.latest().Set(key, val) }

// PureDelete returns a shadow without key, without committing.
func (m *Map) PureDelete(key []byte) (MapVersion, bool) { return m.latest().Delete(key) }

// ---------------------------------------------------------------- Set --

// Set is a recoverable hash set.
type Set struct {
	st   *Store
	name string
	loc  location
	cur  atomic.Uint64
}

// Set binds (creating on first use) a recoverable set under a named root.
func (s *Store) Set(name string) (*Set, error) {
	loc, addr, err := bindRoot(s, name, kindChamp, func() pmem.Addr { return funcds.NewSet(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Set{st: s, name: name, loc: loc}
	st.adopt(addr)
	return st, nil
}

// Set binds (creating on first use) a recoverable set under a parent field.
func (p *Parent) Set(field string) (*Set, error) {
	loc, addr, err := bindField(p, field, kindChamp, func() pmem.Addr { return funcds.NewSet(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Set{st: p.s, name: field, loc: loc}
	st.adopt(addr)
	return st, nil
}

// Name returns the bound root or field name.
func (s *Set) Name() string { return s.name }

func (s *Set) latest() funcds.Set     { return funcds.SetDSAt(s.st.heap, s.st.resolveForRead(s.loc)) }
func (s *Set) currentAddr() pmem.Addr { return pmem.Addr(s.cur.Load()) }
func (s *Set) adopt(a pmem.Addr)      { s.cur.Store(uint64(a)) }
func (s *Set) location() location     { return s.loc }
func (s *Set) store() *Store          { return s.st }

// Len returns the number of members.
func (s *Set) Len() uint64 {
	g := s.st.heap.Enter()
	defer g.Exit()
	return s.latest().Len()
}

// Contains reports membership in the latest committed version.
func (s *Set) Contains(key []byte) bool {
	g := s.st.heap.Enter()
	defer g.Exit()
	return s.latest().Contains(key)
}

// Insert failure-atomically adds key, reporting whether it already existed.
func (s *Set) Insert(key []byte) bool {
	var existed bool
	s.st.update(s, func(st *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, e := funcds.SetDSAt(st.heap, cur).WithEdit(ed).Insert(key)
		existed = e
		return next.Addr()
	})
	return existed
}

// Delete failure-atomically removes key, reporting whether it was present.
func (s *Set) Delete(key []byte) bool {
	var removed bool
	s.st.update(s, func(st *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, r := funcds.SetDSAt(st.heap, cur).WithEdit(ed).Delete(key)
		removed = r
		if !r {
			return cur
		}
		return next.Addr()
	})
	return removed
}

// Range iterates over the latest committed version's members.
func (s *Set) Range(f func(key []byte) bool) {
	g := s.st.heap.Enter()
	defer g.Exit()
	s.latest().Range(f)
}

// Current returns the current committed version for composition.
func (s *Set) Current() SetVersion { return s.latest() }

// PureInsert returns a shadow containing key, without committing.
func (s *Set) PureInsert(key []byte) (SetVersion, bool) { return s.latest().Insert(key) }

// PureDelete returns a shadow without key, without committing.
func (s *Set) PureDelete(key []byte) (SetVersion, bool) { return s.latest().Delete(key) }

// ------------------------------------------------------------- Vector --

// Vector is a recoverable vector of 8-byte elements.
type Vector struct {
	st   *Store
	name string
	loc  location
	cur  atomic.Uint64
}

// Vector binds (creating on first use) a recoverable vector under a root.
func (s *Store) Vector(name string) (*Vector, error) {
	loc, addr, err := bindRoot(s, name, kindVector, func() pmem.Addr { return funcds.NewVector(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	v := &Vector{st: s, name: name, loc: loc}
	v.adopt(addr)
	return v, nil
}

// Vector binds (creating on first use) a recoverable vector under a field.
func (p *Parent) Vector(field string) (*Vector, error) {
	loc, addr, err := bindField(p, field, kindVector, func() pmem.Addr { return funcds.NewVector(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	v := &Vector{st: p.s, name: field, loc: loc}
	v.adopt(addr)
	return v, nil
}

// Name returns the bound root or field name.
func (v *Vector) Name() string { return v.name }

func (v *Vector) latest() funcds.Vector {
	return funcds.VectorAt(v.st.heap, v.st.resolveForRead(v.loc))
}
func (v *Vector) currentAddr() pmem.Addr { return pmem.Addr(v.cur.Load()) }
func (v *Vector) adopt(a pmem.Addr)      { v.cur.Store(uint64(a)) }
func (v *Vector) location() location     { return v.loc }
func (v *Vector) store() *Store          { return v.st }

// Len returns the number of elements.
func (v *Vector) Len() uint64 {
	g := v.st.heap.Enter()
	defer g.Exit()
	return v.latest().Len()
}

// Get returns the element at index i of the latest committed version.
func (v *Vector) Get(i uint64) uint64 {
	g := v.st.heap.Enter()
	defer g.Exit()
	return v.latest().Get(i)
}

// Push failure-atomically appends val (push_back).
func (v *Vector) Push(val uint64) {
	v.st.update(v, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.VectorAt(s.heap, cur).WithEdit(ed).Push(val).Addr()
	})
}

// Update failure-atomically replaces element i with val.
func (v *Vector) Update(i uint64, val uint64) {
	v.st.update(v, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.VectorAt(s.heap, cur).WithEdit(ed).Update(i, val).Addr()
	})
}

// Swap failure-atomically exchanges elements i and j: two pure updates on
// successive shadows and one commit (Fig. 7b).
func (v *Vector) Swap(i, j uint64) {
	v.st.update(v, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		c := funcds.VectorAt(s.heap, cur).WithEdit(ed)
		a, b := c.Get(i), c.Get(j)
		s1 := c.Update(i, b)
		s2 := s1.Update(j, a) // mutates s1's owned nodes in place
		if s1.Addr() != s2.Addr() && s1.Addr() != cur {
			s.heap.Release(s1.Addr()) // intermediate shadow off the edit run
		}
		return s2.Addr()
	})
}

// Current returns the current committed version for composition.
func (v *Vector) Current() VectorVersion { return v.latest() }

// PurePush returns a shadow with val appended, without committing.
func (v *Vector) PurePush(val uint64) VectorVersion { return v.latest().Push(val) }

// PureUpdate returns a shadow with element i replaced, without committing.
func (v *Vector) PureUpdate(i uint64, val uint64) VectorVersion { return v.latest().Update(i, val) }

// -------------------------------------------------------------- Stack --

// Stack is a recoverable LIFO stack of 8-byte elements.
type Stack struct {
	st   *Store
	name string
	loc  location
	cur  atomic.Uint64
}

// Stack binds (creating on first use) a recoverable stack under a root.
func (s *Store) Stack(name string) (*Stack, error) {
	loc, addr, err := bindRoot(s, name, kindStack, func() pmem.Addr { return funcds.NewStack(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Stack{st: s, name: name, loc: loc}
	st.adopt(addr)
	return st, nil
}

// Stack binds (creating on first use) a recoverable stack under a field.
func (p *Parent) Stack(field string) (*Stack, error) {
	loc, addr, err := bindField(p, field, kindStack, func() pmem.Addr { return funcds.NewStack(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	st := &Stack{st: p.s, name: field, loc: loc}
	st.adopt(addr)
	return st, nil
}

// Name returns the bound root or field name.
func (s *Stack) Name() string { return s.name }

func (s *Stack) latest() funcds.Stack   { return funcds.StackAt(s.st.heap, s.st.resolveForRead(s.loc)) }
func (s *Stack) currentAddr() pmem.Addr { return pmem.Addr(s.cur.Load()) }
func (s *Stack) adopt(a pmem.Addr)      { s.cur.Store(uint64(a)) }
func (s *Stack) location() location     { return s.loc }
func (s *Stack) store() *Store          { return s.st }

// Len returns the number of elements.
func (s *Stack) Len() uint64 {
	g := s.st.heap.Enter()
	defer g.Exit()
	return s.latest().Len()
}

// Peek returns the top element of the latest committed version.
func (s *Stack) Peek() (uint64, bool) {
	g := s.st.heap.Enter()
	defer g.Exit()
	return s.latest().Peek()
}

// Push failure-atomically pushes val.
func (s *Stack) Push(val uint64) {
	s.st.update(s, func(st *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.StackAt(st.heap, cur).WithEdit(ed).Push(val).Addr()
	})
}

// Pop failure-atomically removes and returns the top element.
func (s *Stack) Pop() (uint64, bool) {
	var (
		val uint64
		ok  bool
	)
	s.st.update(s, func(st *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, v, o := funcds.StackAt(st.heap, cur).WithEdit(ed).Pop()
		val, ok = v, o
		if !o {
			return cur
		}
		return next.Addr()
	})
	return val, ok
}

// Current returns the current committed version for composition.
func (s *Stack) Current() StackVersion { return s.latest() }

// PurePush returns a shadow with val pushed, without committing.
func (s *Stack) PurePush(val uint64) StackVersion { return s.latest().Push(val) }

// PurePop returns a shadow without the top element, without committing.
func (s *Stack) PurePop() (StackVersion, uint64, bool) { return s.latest().Pop() }

// -------------------------------------------------------------- Queue --

// Queue is a recoverable FIFO queue of 8-byte elements.
type Queue struct {
	st   *Store
	name string
	loc  location
	cur  atomic.Uint64
}

// Queue binds (creating on first use) a recoverable queue under a root.
func (s *Store) Queue(name string) (*Queue, error) {
	loc, addr, err := bindRoot(s, name, kindQueue, func() pmem.Addr { return funcds.NewQueue(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	q := &Queue{st: s, name: name, loc: loc}
	q.adopt(addr)
	return q, nil
}

// Queue binds (creating on first use) a recoverable queue under a field.
func (p *Parent) Queue(field string) (*Queue, error) {
	loc, addr, err := bindField(p, field, kindQueue, func() pmem.Addr { return funcds.NewQueue(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	q := &Queue{st: p.s, name: field, loc: loc}
	q.adopt(addr)
	return q, nil
}

// Name returns the bound root or field name.
func (q *Queue) Name() string { return q.name }

func (q *Queue) latest() funcds.Queue   { return funcds.QueueAt(q.st.heap, q.st.resolveForRead(q.loc)) }
func (q *Queue) currentAddr() pmem.Addr { return pmem.Addr(q.cur.Load()) }
func (q *Queue) adopt(a pmem.Addr)      { q.cur.Store(uint64(a)) }
func (q *Queue) location() location     { return q.loc }
func (q *Queue) store() *Store          { return q.st }

// Len returns the number of elements.
func (q *Queue) Len() uint64 {
	g := q.st.heap.Enter()
	defer g.Exit()
	return q.latest().Len()
}

// Peek returns the head element of the latest committed version.
func (q *Queue) Peek() (uint64, bool) {
	g := q.st.heap.Enter()
	defer g.Exit()
	return q.latest().Peek()
}

// Enqueue failure-atomically appends val at the tail.
func (q *Queue) Enqueue(val uint64) {
	q.st.update(q, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		return funcds.QueueAt(s.heap, cur).WithEdit(ed).Push(val).Addr()
	})
}

// Dequeue failure-atomically removes and returns the head element.
func (q *Queue) Dequeue() (uint64, bool) {
	var (
		val uint64
		ok  bool
	)
	q.st.update(q, func(s *Store, ed *alloc.Edit, cur pmem.Addr) pmem.Addr {
		next, v, o := funcds.QueueAt(s.heap, cur).WithEdit(ed).Pop()
		val, ok = v, o
		if !o {
			return cur
		}
		return next.Addr()
	})
	return val, ok
}

// Current returns the current committed version for composition.
func (q *Queue) Current() QueueVersion { return q.latest() }

// PureEnqueue returns a shadow with val appended, without committing.
func (q *Queue) PureEnqueue(val uint64) QueueVersion { return q.latest().Push(val) }

// PureDequeue returns a shadow without the head element, without
// committing.
func (q *Queue) PureDequeue() (QueueVersion, uint64, bool) { return q.latest().Pop() }
