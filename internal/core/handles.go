package core

import (
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmem"
)

// Version aliases: the Pure* operations of the Composition interface
// return shadow versions of the underlying functional datastructures;
// further pure updates can be chained on them directly (Fig. 7b) before
// committing with CommitSingle/CommitSiblings/CommitUnrelated.
type (
	// MapVersion is one immutable version of a MOD map.
	MapVersion = funcds.Map
	// SetVersion is one immutable version of a MOD set.
	SetVersion = funcds.Set
	// VectorVersion is one immutable version of a MOD vector.
	VectorVersion = funcds.Vector
	// StackVersion is one immutable version of a MOD stack.
	StackVersion = funcds.Stack
	// QueueVersion is one immutable version of a MOD queue.
	QueueVersion = funcds.Queue
)

// bind resolves a handle's location and current address, creating the
// structure via create (which must allocate and flush a new empty header)
// when absent.
func bindRoot(s *Store, name string, create func() pmem.Addr) (location, pmem.Addr, error) {
	slot, err := s.heap.RootSlot(name)
	if err != nil {
		return location{}, pmem.Nil, err
	}
	if root := s.heap.Root(slot); root != pmem.Nil {
		return location{slot: slot}, root, nil
	}
	s.BeginFASE()
	addr := create()
	s.commitRoot(slot, pmem.Nil, addr)
	s.EndFASE()
	return location{slot: slot}, addr, nil
}

func bindField(p *Parent, field string, create func() pmem.Addr) (location, pmem.Addr, error) {
	i, err := p.fieldIndex(field)
	if err != nil {
		return location{}, pmem.Nil, err
	}
	if f := p.fieldAddr(i); f != pmem.Nil {
		return location{parent: p, slot: i}, f, nil
	}
	p.s.BeginFASE()
	addr := create()
	p.installField(i, addr)
	p.s.EndFASE()
	return location{parent: p, slot: i}, addr, nil
}

// ---------------------------------------------------------------- Map --

// Map is a recoverable hash map with STL-like failure-atomic operations
// (Basic interface) and Pure* shadow operations (Composition interface).
type Map struct {
	st   *Store
	name string
	loc  location
	cur  funcds.Map
}

// Map binds (creating on first use) a recoverable map under a named root.
func (s *Store) Map(name string) (*Map, error) {
	loc, addr, err := bindRoot(s, name, func() pmem.Addr { return funcds.NewMap(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Map{st: s, name: name, loc: loc, cur: funcds.MapAt(s.heap, addr)}, nil
}

// Map binds (creating on first use) a recoverable map under a parent field.
func (p *Parent) Map(field string) (*Map, error) {
	loc, addr, err := bindField(p, field, func() pmem.Addr { return funcds.NewMap(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Map{st: p.s, name: field, loc: loc, cur: funcds.MapAt(p.s.heap, addr)}, nil
}

// Name returns the bound root or field name.
func (m *Map) Name() string { return m.name }

func (m *Map) currentAddr() pmem.Addr { return m.cur.Addr() }
func (m *Map) adopt(a pmem.Addr)      { m.cur = funcds.MapAt(m.st.heap, a) }
func (m *Map) location() location     { return m.loc }
func (m *Map) store() *Store          { return m.st }

// Len returns the number of entries.
func (m *Map) Len() uint64 { return m.cur.Len() }

// Get returns the value bound to key.
func (m *Map) Get(key []byte) ([]byte, bool) { return m.cur.Get(key) }

// Set failure-atomically binds key to val (one FASE, one fence) and
// reports whether an existing binding was replaced.
func (m *Map) Set(key, val []byte) bool {
	m.st.BeginFASE()
	shadow, replaced := m.cur.Set(key, val)
	m.st.CommitSingle(m, shadow)
	m.st.EndFASE()
	return replaced
}

// Delete failure-atomically removes key, reporting whether it was present.
func (m *Map) Delete(key []byte) bool {
	m.st.BeginFASE()
	shadow, removed := m.cur.Delete(key)
	if removed {
		m.st.CommitSingle(m, shadow)
	}
	m.st.EndFASE()
	return removed
}

// Range iterates over the current version's entries.
func (m *Map) Range(f func(key, val []byte) bool) { m.cur.Range(f) }

// Current returns the current committed version for composition.
func (m *Map) Current() MapVersion { return m.cur }

// PureSet returns a shadow with key bound to val, without committing.
func (m *Map) PureSet(key, val []byte) (MapVersion, bool) { return m.cur.Set(key, val) }

// PureDelete returns a shadow without key, without committing.
func (m *Map) PureDelete(key []byte) (MapVersion, bool) { return m.cur.Delete(key) }

// ---------------------------------------------------------------- Set --

// Set is a recoverable hash set.
type Set struct {
	st   *Store
	name string
	loc  location
	cur  funcds.Set
}

// Set binds (creating on first use) a recoverable set under a named root.
func (s *Store) Set(name string) (*Set, error) {
	loc, addr, err := bindRoot(s, name, func() pmem.Addr { return funcds.NewSet(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Set{st: s, name: name, loc: loc, cur: funcds.SetDSAt(s.heap, addr)}, nil
}

// Set binds (creating on first use) a recoverable set under a parent field.
func (p *Parent) Set(field string) (*Set, error) {
	loc, addr, err := bindField(p, field, func() pmem.Addr { return funcds.NewSet(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Set{st: p.s, name: field, loc: loc, cur: funcds.SetDSAt(p.s.heap, addr)}, nil
}

// Name returns the bound root or field name.
func (s *Set) Name() string { return s.name }

func (s *Set) currentAddr() pmem.Addr { return s.cur.Addr() }
func (s *Set) adopt(a pmem.Addr)      { s.cur = funcds.SetDSAt(s.st.heap, a) }
func (s *Set) location() location     { return s.loc }
func (s *Set) store() *Store          { return s.st }

// Len returns the number of members.
func (s *Set) Len() uint64 { return s.cur.Len() }

// Contains reports membership.
func (s *Set) Contains(key []byte) bool { return s.cur.Contains(key) }

// Insert failure-atomically adds key, reporting whether it already existed.
func (s *Set) Insert(key []byte) bool {
	s.st.BeginFASE()
	shadow, existed := s.cur.Insert(key)
	s.st.CommitSingle(s, shadow)
	s.st.EndFASE()
	return existed
}

// Delete failure-atomically removes key, reporting whether it was present.
func (s *Set) Delete(key []byte) bool {
	s.st.BeginFASE()
	shadow, removed := s.cur.Delete(key)
	if removed {
		s.st.CommitSingle(s, shadow)
	}
	s.st.EndFASE()
	return removed
}

// Range iterates over the current version's members.
func (s *Set) Range(f func(key []byte) bool) { s.cur.Range(f) }

// Current returns the current committed version for composition.
func (s *Set) Current() SetVersion { return s.cur }

// PureInsert returns a shadow containing key, without committing.
func (s *Set) PureInsert(key []byte) (SetVersion, bool) { return s.cur.Insert(key) }

// PureDelete returns a shadow without key, without committing.
func (s *Set) PureDelete(key []byte) (SetVersion, bool) { return s.cur.Delete(key) }

// ------------------------------------------------------------- Vector --

// Vector is a recoverable vector of 8-byte elements.
type Vector struct {
	st   *Store
	name string
	loc  location
	cur  funcds.Vector
}

// Vector binds (creating on first use) a recoverable vector under a root.
func (s *Store) Vector(name string) (*Vector, error) {
	loc, addr, err := bindRoot(s, name, func() pmem.Addr { return funcds.NewVector(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Vector{st: s, name: name, loc: loc, cur: funcds.VectorAt(s.heap, addr)}, nil
}

// Vector binds (creating on first use) a recoverable vector under a field.
func (p *Parent) Vector(field string) (*Vector, error) {
	loc, addr, err := bindField(p, field, func() pmem.Addr { return funcds.NewVector(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Vector{st: p.s, name: field, loc: loc, cur: funcds.VectorAt(p.s.heap, addr)}, nil
}

// Name returns the bound root or field name.
func (v *Vector) Name() string { return v.name }

func (v *Vector) currentAddr() pmem.Addr { return v.cur.Addr() }
func (v *Vector) adopt(a pmem.Addr)      { v.cur = funcds.VectorAt(v.st.heap, a) }
func (v *Vector) location() location     { return v.loc }
func (v *Vector) store() *Store          { return v.st }

// Len returns the number of elements.
func (v *Vector) Len() uint64 { return v.cur.Len() }

// Get returns the element at index i.
func (v *Vector) Get(i uint64) uint64 { return v.cur.Get(i) }

// Push failure-atomically appends val (push_back).
func (v *Vector) Push(val uint64) {
	v.st.BeginFASE()
	shadow := v.cur.Push(val)
	v.st.CommitSingle(v, shadow)
	v.st.EndFASE()
}

// Update failure-atomically replaces element i with val.
func (v *Vector) Update(i uint64, val uint64) {
	v.st.BeginFASE()
	shadow := v.cur.Update(i, val)
	v.st.CommitSingle(v, shadow)
	v.st.EndFASE()
}

// Swap failure-atomically exchanges elements i and j: two pure updates on
// successive shadows and one commit (Fig. 7b).
func (v *Vector) Swap(i, j uint64) {
	v.st.BeginFASE()
	a, b := v.cur.Get(i), v.cur.Get(j)
	s1 := v.cur.Update(i, b)
	s2 := s1.Update(j, a)
	v.st.CommitSingle(v, s1, s2)
	v.st.EndFASE()
}

// Current returns the current committed version for composition.
func (v *Vector) Current() VectorVersion { return v.cur }

// PurePush returns a shadow with val appended, without committing.
func (v *Vector) PurePush(val uint64) VectorVersion { return v.cur.Push(val) }

// PureUpdate returns a shadow with element i replaced, without committing.
func (v *Vector) PureUpdate(i uint64, val uint64) VectorVersion { return v.cur.Update(i, val) }

// -------------------------------------------------------------- Stack --

// Stack is a recoverable LIFO stack of 8-byte elements.
type Stack struct {
	st   *Store
	name string
	loc  location
	cur  funcds.Stack
}

// Stack binds (creating on first use) a recoverable stack under a root.
func (s *Store) Stack(name string) (*Stack, error) {
	loc, addr, err := bindRoot(s, name, func() pmem.Addr { return funcds.NewStack(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Stack{st: s, name: name, loc: loc, cur: funcds.StackAt(s.heap, addr)}, nil
}

// Stack binds (creating on first use) a recoverable stack under a field.
func (p *Parent) Stack(field string) (*Stack, error) {
	loc, addr, err := bindField(p, field, func() pmem.Addr { return funcds.NewStack(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Stack{st: p.s, name: field, loc: loc, cur: funcds.StackAt(p.s.heap, addr)}, nil
}

// Name returns the bound root or field name.
func (s *Stack) Name() string { return s.name }

func (s *Stack) currentAddr() pmem.Addr { return s.cur.Addr() }
func (s *Stack) adopt(a pmem.Addr)      { s.cur = funcds.StackAt(s.st.heap, a) }
func (s *Stack) location() location     { return s.loc }
func (s *Stack) store() *Store          { return s.st }

// Len returns the number of elements.
func (s *Stack) Len() uint64 { return s.cur.Len() }

// Peek returns the top element.
func (s *Stack) Peek() (uint64, bool) { return s.cur.Peek() }

// Push failure-atomically pushes val.
func (s *Stack) Push(val uint64) {
	s.st.BeginFASE()
	shadow := s.cur.Push(val)
	s.st.CommitSingle(s, shadow)
	s.st.EndFASE()
}

// Pop failure-atomically removes and returns the top element.
func (s *Stack) Pop() (uint64, bool) {
	s.st.BeginFASE()
	shadow, val, ok := s.cur.Pop()
	if ok {
		s.st.CommitSingle(s, shadow)
	}
	s.st.EndFASE()
	return val, ok
}

// Current returns the current committed version for composition.
func (s *Stack) Current() StackVersion { return s.cur }

// PurePush returns a shadow with val pushed, without committing.
func (s *Stack) PurePush(val uint64) StackVersion { return s.cur.Push(val) }

// PurePop returns a shadow without the top element, without committing.
func (s *Stack) PurePop() (StackVersion, uint64, bool) { return s.cur.Pop() }

// -------------------------------------------------------------- Queue --

// Queue is a recoverable FIFO queue of 8-byte elements.
type Queue struct {
	st   *Store
	name string
	loc  location
	cur  funcds.Queue
}

// Queue binds (creating on first use) a recoverable queue under a root.
func (s *Store) Queue(name string) (*Queue, error) {
	loc, addr, err := bindRoot(s, name, func() pmem.Addr { return funcds.NewQueue(s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Queue{st: s, name: name, loc: loc, cur: funcds.QueueAt(s.heap, addr)}, nil
}

// Queue binds (creating on first use) a recoverable queue under a field.
func (p *Parent) Queue(field string) (*Queue, error) {
	loc, addr, err := bindField(p, field, func() pmem.Addr { return funcds.NewQueue(p.s.heap).Addr() })
	if err != nil {
		return nil, err
	}
	return &Queue{st: p.s, name: field, loc: loc, cur: funcds.QueueAt(p.s.heap, addr)}, nil
}

// Name returns the bound root or field name.
func (q *Queue) Name() string { return q.name }

func (q *Queue) currentAddr() pmem.Addr { return q.cur.Addr() }
func (q *Queue) adopt(a pmem.Addr)      { q.cur = funcds.QueueAt(q.st.heap, a) }
func (q *Queue) location() location     { return q.loc }
func (q *Queue) store() *Store          { return q.st }

// Len returns the number of elements.
func (q *Queue) Len() uint64 { return q.cur.Len() }

// Peek returns the head element.
func (q *Queue) Peek() (uint64, bool) { return q.cur.Peek() }

// Enqueue failure-atomically appends val at the tail.
func (q *Queue) Enqueue(val uint64) {
	q.st.BeginFASE()
	shadow := q.cur.Push(val)
	q.st.CommitSingle(q, shadow)
	q.st.EndFASE()
}

// Dequeue failure-atomically removes and returns the head element.
func (q *Queue) Dequeue() (uint64, bool) {
	q.st.BeginFASE()
	shadow, val, ok := q.cur.Pop()
	if ok {
		q.st.CommitSingle(q, shadow)
	}
	q.st.EndFASE()
	return val, ok
}

// Current returns the current committed version for composition.
func (q *Queue) Current() QueueVersion { return q.cur }

// PureEnqueue returns a shadow with val appended, without committing.
func (q *Queue) PureEnqueue(val uint64) QueueVersion { return q.cur.Push(val) }

// PureDequeue returns a shadow without the head element, without
// committing.
func (q *Queue) PureDequeue() (QueueVersion, uint64, bool) { return q.cur.Pop() }
