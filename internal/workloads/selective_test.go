package workloads

import "testing"

// TestSelectiveFlushGate pins the headline selective-persistence claim
// (DESIGN.md §10): at ops-per-FASE 64 the selective flavor with the DRAM
// node cache on must flush at most half as many lines per update as the
// fully persisted flavor with no cache, on both navigation-heavy
// structures — and its reopen must actually rebuild navigation from the
// record chain, while the fully persisted flavor rebuilds nothing.
func TestSelectiveFlushGate(t *testing.T) {
	for _, structure := range []string{"map", "vector"} {
		base := SelectiveConfig{
			Structure:       structure,
			OpsPerFASE:      64,
			Ops:             1500,
			PreloadKeys:     30000,
			VectorPreload:   30000,
			MeasureRecovery: true,
		}
		off := base
		on := base
		on.Selective = true
		offRes, err := RunSelective(off)
		if err != nil {
			t.Fatalf("%s persist-all: %v", structure, err)
		}
		onRes, err := RunSelective(on)
		if err != nil {
			t.Fatalf("%s selective: %v", structure, err)
		}
		ratio := offRes.FlushesPerOp / onRes.FlushesPerOp
		t.Logf("%s: flushes/op %.2f (persist-all) vs %.2f (selective), %.2fx",
			structure, offRes.FlushesPerOp, onRes.FlushesPerOp, ratio)
		if ratio < 2 {
			t.Errorf("%s: selective flushes/op only %.2fx lower than persist-all (want >= 2x)", structure, ratio)
		}
		if onRes.RebuiltNodes == 0 {
			t.Errorf("%s: selective recovery rebuilt no navigation nodes", structure)
		}
		if onRes.RecoveryNs <= 0 {
			t.Errorf("%s: selective recovery reported no simulated time", structure)
		}
		if offRes.RebuiltNodes != 0 {
			t.Errorf("%s: persist-all recovery rebuilt %d nodes (want 0)", structure, offRes.RebuiltNodes)
		}
		if structure == "map" && onRes.DRAMReads == 0 {
			t.Errorf("map: selective run served no node reads from the DRAM cache")
		}
	}
}
