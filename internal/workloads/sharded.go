package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Sharded throughput workload. A fixed budget of map updates is spread
// over W writers whose roots are placed round-robin on S shards of a
// core.ShardedStore. Because each shard is its own pmem region with its
// own fence machinery, work on different shards is genuinely parallel;
// work on one shard serializes through its root commit mutexes exactly
// as a real deployment would.
//
// # Measurement model
//
// The benchmark-gated rows run the writers sequentially in host time
// but report the *parallel-semantics* elapsed time:
//
//	elapsed = max over regions of (that region's busy simulated ns)
//
// Within a shard, Basic updates on one root hold the root mutex for the
// whole FASE, so writers sharing a shard execute serially in any real
// schedule — summing their busy time per shard is faithful. Across
// shards nothing is shared, so the slowest shard bounds the run. This
// makes the metric fully deterministic (no goroutine interleaving
// touches it), which is what lets cmd/benchdiff gate the sharded rows;
// a Parallel mode with real goroutines exists for information and for
// exercising the concurrency machinery under -race.
//
// S=1 therefore reports the single-heap serialization the sharding
// tentpole removes, and S=4 with 4 writers shows the aggregate-ops/sec
// multiplier the ROADMAP's north star asks for — while fences/op stays
// exactly 1 at batch size 1, since a Basic update on a sharded store is
// the same one-fence FASE it always was.

// ShardedConfig parameterizes one sharded-store measurement.
type ShardedConfig struct {
	// Shards is the number of independent heap shards.
	Shards int
	// Writers is the number of logical writers; writer w's root is
	// placed on shard w mod Shards.
	Writers int
	// Ops is the total update budget across all writers.
	Ops int
	// BatchSize groups each writer's updates into group commits of this
	// size (<=1 = one Basic FASE per update).
	BatchSize int
	// CrossShard commits every batch through the cross-shard manifest:
	// each writer's batch updates its own root and the next shard's.
	// Requires BatchSize > 1 to be meaningful and Shards > 1 to actually
	// cross shards.
	CrossShard bool
	// PreloadKeys preloads each writer's map so updates hit a populated
	// trie.
	PreloadKeys int
	// Parallel runs the writers as real goroutines on forked handles
	// (nondeterministic; informational).
	Parallel bool
	// Seed drives the deterministic operation stream.
	Seed uint64
	// ArenaBytes sizes each shard region (0 = automatic).
	ArenaBytes int64
}

func (c *ShardedConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Writers <= 0 {
		c.Writers = c.Shards
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.PreloadKeys <= 0 {
		c.PreloadKeys = 256
	}
	if c.Seed == 0 {
		c.Seed = 0x5aa4ded
	}
	if c.ArenaBytes == 0 {
		perShardOps := int64(c.Ops)/int64(c.Shards) + int64(c.PreloadKeys*c.Writers)
		c.ArenaBytes = perShardOps*2048 + (32 << 20)
	}
}

// ShardedResult reports one sharded measurement. Times are simulated
// nanoseconds; throughput is per simulated second of the critical path.
type ShardedResult struct {
	Shards     int
	Writers    int
	BatchSize  int
	CrossShard bool
	Parallel   bool
	Ops        int

	Fences  uint64
	Flushes uint64

	FencesPerOp  float64
	FlushesPerOp float64

	// ElapsedNs is the critical path: the busiest region's busy time.
	ElapsedNs float64
	// BusyNs is the total busy time summed over regions.
	BusyNs    float64
	OpsPerSec float64
	// ShardBusyNs breaks the run down per shard region (metadata region
	// excluded), for balance inspection.
	ShardBusyNs []float64
}

func shardedMapName(w int) string { return fmt.Sprintf("sh-w%02d", w) }

// RunSharded executes the sharded workload and returns its measurement.
func RunSharded(cfg ShardedConfig) (ShardedResult, error) {
	cfg.defaults()
	devCfg := pmem.DefaultConfig(cfg.ArenaBytes)
	db, _, err := core.Open(devCfg, core.WithShards(cfg.Shards))
	if err != nil {
		return ShardedResult{}, err
	}
	defer db.Close()
	ss := db.Sharded()

	// Writer w's map lives on shard w%S by explicit placement, so the
	// op budget spreads evenly regardless of name hashes.
	maps := make([]*core.Map, cfg.Writers)
	r := rng{state: cfg.Seed}
	for w := range maps {
		m, err := ss.Shard(w % cfg.Shards).Map(shardedMapName(w))
		if err != nil {
			return ShardedResult{}, err
		}
		for k := 0; k < cfg.PreloadKeys; k++ {
			m.Set([]byte(fmt.Sprintf("key-%06d", k)), []byte(fmt.Sprintf("val-%016x", r.next())))
		}
		maps[w] = m
	}
	ss.Sync()

	regions := ss.Regions()
	clockBase := make([]float64, regions.Len())
	for i := range clockBase {
		clockBase[i] = regions.Device(i).Clock()
	}
	statsBase := ss.Stats()

	runWriter := func(h *core.ShardedStore, w int, m, next *core.Map) error {
		r := rng{state: cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1))}
		ops := cfg.Ops / cfg.Writers
		if w == 0 {
			ops += cfg.Ops % cfg.Writers
		}
		key := func() []byte { return []byte(fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys*2)))) }
		val := func() []byte { return []byte(fmt.Sprintf("val-%016x", r.next())) }
		switch {
		case cfg.BatchSize <= 1:
			for i := 0; i < ops; i++ {
				m.Set(key(), val())
			}
		case cfg.CrossShard:
			b := h.NewBatch()
			for i := 0; i < ops; i++ {
				if i%2 == 0 {
					b.MapSet(m, key(), val())
				} else {
					b.MapSet(next, key(), val())
				}
				if b.Len() >= cfg.BatchSize {
					b.Commit()
				}
			}
			b.Commit()
		default:
			b := h.NewBatch()
			for i := 0; i < ops; i++ {
				b.MapSet(m, key(), val())
				if b.Len() >= cfg.BatchSize {
					b.Commit()
				}
			}
			b.Commit()
		}
		return nil
	}

	if cfg.Parallel {
		errs := make(chan error, cfg.Writers)
		for w := 0; w < cfg.Writers; w++ {
			go func(w int) {
				h := ss.Fork()
				m, err := h.Shard(w % cfg.Shards).Map(shardedMapName(w))
				if err != nil {
					errs <- err
					return
				}
				nw := (w + 1) % cfg.Writers
				next, err := h.Shard(nw % cfg.Shards).Map(shardedMapName(nw))
				if err != nil {
					errs <- err
					return
				}
				errs <- runWriter(h, w, m, next)
			}(w)
		}
		for w := 0; w < cfg.Writers; w++ {
			if err := <-errs; err != nil {
				return ShardedResult{}, err
			}
		}
	} else {
		for w := 0; w < cfg.Writers; w++ {
			next := maps[(w+1)%cfg.Writers]
			if err := runWriter(ss, w, maps[w], next); err != nil {
				return ShardedResult{}, err
			}
		}
	}

	res := ShardedResult{
		Shards:     cfg.Shards,
		Writers:    cfg.Writers,
		BatchSize:  cfg.BatchSize,
		CrossShard: cfg.CrossShard,
		Parallel:   cfg.Parallel,
		Ops:        cfg.Ops,
	}
	var elapsed, busy float64
	for i := 0; i < regions.Len(); i++ {
		d := regions.Device(i).Clock() - clockBase[i]
		busy += d
		if d > elapsed {
			elapsed = d
		}
		if i < cfg.Shards {
			res.ShardBusyNs = append(res.ShardBusyNs, d)
		}
	}
	ds := ss.Stats().Sub(statsBase)
	res.Fences = ds.Fences
	res.Flushes = ds.Flushes
	res.FencesPerOp = float64(ds.Fences) / float64(cfg.Ops)
	res.FlushesPerOp = float64(ds.Flushes) / float64(cfg.Ops)
	res.ElapsedNs = elapsed
	res.BusyNs = busy
	res.OpsPerSec = perSec(cfg.Ops, elapsed)
	ss.Sync()
	return res, nil
}
