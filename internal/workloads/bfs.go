package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/graph"
	"github.com/mod-ds/mod/internal/pmdkds"
)

// bfs: breadth-first search over a Flickr-scale R-MAT graph using a
// recoverable queue as the frontier (Table 2). The graph itself is
// volatile — the paper reconstructs it from the dataset on every run and
// does not store it durably — so only the queue operations touch PM.
// The op count scales the graph; a run performs roughly cfg.Ops queue
// operations (pushes + pops across the reachable component).

func bfsGraphSize(ops int) (nodes, edges int) {
	nodes = ops / 4
	if nodes < 1024 {
		nodes = 1024
	}
	if nodes > graph.FlickrNodes {
		nodes = graph.FlickrNodes
	}
	edges = nodes * 12 // Flickr's edge/node ratio (9.84M / 0.82M)
	return nodes, edges
}

func bfsArena(ops int) int64 {
	nodes, _ := bfsGraphSize(ops)
	return int64(nodes)*256 + (64 << 20)
}

func runBFS(e *env, rnd *rng, ops int, res *Result) error {
	nodes, edges := bfsGraphSize(ops)
	g := graph.RMAT(nodes, edges, rnd.next())
	src := g.MaxDegreeNode()
	visited := make([]bool, g.N)

	var push func(uint64)
	var pop func() (uint64, bool)
	if e.engine == EngineMOD {
		q, err := e.store.Queue("bfs-frontier")
		if err != nil {
			return err
		}
		push = q.Enqueue
		pop = q.Dequeue
	} else {
		q, err := pmdkds.NewQueue(e.tx, "bfs-frontier")
		if err != nil {
			return err
		}
		push = q.Enqueue
		pop = q.Dequeue
	}

	queueOps := 0
	visitedCount := 1
	visited[src] = true
	push(uint64(src))
	queueOps++
	for {
		u, ok := pop()
		if !ok {
			break
		}
		queueOps++
		for _, v := range g.Neighbors(int32(u)) {
			if !visited[v] {
				visited[v] = true
				visitedCount++
				push(uint64(v))
				queueOps++
			}
		}
	}

	// Validate against the volatile reference traversal.
	_, want := graph.BFS(g, src)
	if visitedCount != want {
		return fmt.Errorf("bfs: visited %d nodes, reference says %d", visitedCount, want)
	}
	res.Ops = queueOps // normalize per-op metrics to queue operations
	res.Extra["nodes"] = float64(g.N)
	res.Extra["edges"] = float64(g.Edges())
	res.Extra["visited"] = float64(visitedCount)
	return nil
}
