// Package workloads implements the benchmark suite of Table 2: map, set,
// stack, queue, vector, vec-swap, bfs, vacation, and memcached, each
// runnable on the MOD engine and on the PMDK-style STM baseline in v1.4
// and v1.5 modes. A run returns the simulated-time breakdown (other /
// flush / log), flush and fence counts, cache statistics, and allocator
// statistics that the harness turns into the paper's figures and tables.
package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/apps"
	"github.com/mod-ds/mod/internal/cachesim"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/graph"
	"github.com/mod-ds/mod/internal/pmdkds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Engine selects the persistence implementation under test.
type Engine int

// The three engines of Fig. 9.
const (
	EngineMOD Engine = iota
	EnginePMDK15
	EnginePMDK14
)

// String returns the engine label used in reports.
func (e Engine) String() string {
	switch e {
	case EngineMOD:
		return "mod"
	case EnginePMDK15:
		return "pmdk-v1.5"
	case EnginePMDK14:
		return "pmdk-v1.4"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Engines lists all engines in report order.
var Engines = []Engine{EnginePMDK14, EnginePMDK15, EngineMOD}

// Names lists the workloads in Table 2 order.
var Names = []string{"map", "set", "queue", "stack", "vector", "vec-swap", "bfs", "vacation", "memcached"}

// Config parameterizes a workload run.
type Config struct {
	// Ops is the number of measured iterations (Table 2 uses 1M; the
	// default harness scale is smaller — see the -full flag).
	Ops int
	// Seed drives the deterministic operation stream.
	Seed uint64
	// ArenaBytes sizes the simulated PM device (0 = automatic).
	ArenaBytes int64
}

// Result is one workload × engine measurement.
type Result struct {
	Workload string
	Engine   string
	Ops      int

	// Simulated time (ns) split by category.
	SimNs   float64
	OtherNs float64
	FlushNs float64
	LogNs   float64

	Flushes uint64
	Fences  uint64

	Cache cachesim.Stats

	// Allocator view at the end of the measured region.
	LiveBytes uint64
	CumBytes  uint64

	// Extra carries workload-specific outputs (e.g. bfs visited count).
	Extra map[string]float64
}

// FlushesPerOp returns average flushes per operation.
func (r Result) FlushesPerOp() float64 { return float64(r.Flushes) / float64(r.Ops) }

// FencesPerOp returns average fences per operation.
func (r Result) FencesPerOp() float64 { return float64(r.Fences) / float64(r.Ops) }

// FlushFrac returns the fraction of simulated time spent flushing.
func (r Result) FlushFrac() float64 { return r.FlushNs / r.SimNs }

// LogFrac returns the fraction of simulated time spent logging.
func (r Result) LogFrac() float64 { return r.LogNs / r.SimNs }

// env bundles the engine-specific machinery for one run.
type env struct {
	engine Engine
	dev    pmem.Backend
	heap   *alloc.Heap
	store  *core.Store // MOD only
	tx     *stm.TX     // PMDK only
}

// newEnv builds a fresh device and engine state.
func newEnv(engine Engine, arena int64) (*env, error) {
	cfg := pmem.DefaultConfig(arena)
	if engine == EngineMOD {
		db, _, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		store := db.Store()
		return &env{engine: engine, dev: store.Device(), heap: store.Heap(), store: store}, nil
	}
	dev := pmem.New(cfg)
	e := &env{engine: engine, dev: dev}
	e.heap = alloc.Format(dev)
	mode := stm.ModeV15
	if engine == EnginePMDK14 {
		mode = stm.ModeV14
	}
	e.tx = stm.New(dev, e.heap, mode)
	return e, nil
}

// rng is a splitmix64 stream.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n uint64) uint64 { return r.next() % n }

// runner executes a workload's setup and measured phases.
type runner struct {
	setup func(*env, *rng) error
	run   func(*env, *rng, int, *Result) error
	arena func(ops int) int64
}

func defaultArena(ops int) int64 {
	a := int64(ops)*1536 + (64 << 20)
	if a < 64<<20 {
		a = 64 << 20
	}
	return a
}

// Run executes a named workload on an engine and returns its measurement.
func Run(name string, engine Engine, cfg Config) (Result, error) {
	r, ok := registry[name]
	if !ok {
		return Result{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names)
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 10_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5eed
	}
	arena := cfg.ArenaBytes
	if arena == 0 {
		if r.arena != nil {
			arena = r.arena(cfg.Ops)
		} else {
			arena = defaultArena(cfg.Ops)
		}
	}
	e, err := newEnv(engine, arena)
	if err != nil {
		return Result{}, err
	}
	rnd := &rng{state: cfg.Seed}
	if r.setup != nil {
		if err := r.setup(e, rnd); err != nil {
			return Result{}, err
		}
	}
	res := Result{Workload: name, Engine: engine.String(), Ops: cfg.Ops, Extra: map[string]float64{}}
	before := e.dev.Stats()
	if err := r.run(e, rnd, cfg.Ops, &res); err != nil {
		return Result{}, err
	}
	delta := e.dev.Stats().Sub(before)
	res.SimNs = delta.TotalNs
	res.OtherNs = delta.CatNs[pmem.CatOther]
	res.FlushNs = delta.CatNs[pmem.CatFlush]
	res.LogNs = delta.CatNs[pmem.CatLog]
	res.Flushes = delta.Flushes
	res.Fences = delta.Fences
	res.Cache = delta.Cache
	hs := e.heap.Stats()
	res.LiveBytes = hs.LiveBytes
	res.CumBytes = hs.CumBytes
	return res, nil
}

// kv returns a map implementation for the engine (used by map, memcached).
func (e *env) kv(name string, keyspace int) (apps.KV, error) {
	if e.engine == EngineMOD {
		return e.store.Map(name)
	}
	return pmdkds.NewHashmap(e.tx, name, pow2(keyspace))
}

func pow2(n int) uint64 {
	p := uint64(1)
	for int(p) < n {
		p <<= 1
	}
	return p
}

var _ = graph.FlickrNodes // used by bfs.go
