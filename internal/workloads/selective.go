package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Selective-persistence workload (DESIGN.md §10, "Don't Persist All"). An
// updates-only hot path — map sets over a preloaded keyspace, or vector
// updates over preloaded slots — runs against either the selectively
// persisted flavor of the structure with the DRAM node cache on, or the
// normal fully persisted flavor with the cache off. Selective updates
// flush only leaf blobs plus one compact record cell per op; interior
// navigation nodes stay volatile-clean and are rebuilt from the record
// chain on recovery, which is the flushes/op reduction BENCH.json tracks.
//
// Each run optionally ends in a simulated crash + reopen so the rebuild
// cost (recovery ns, nodes rebuilt) is measured on the same images the
// hot path produced.
//
// Single-goroutine and deterministic, so cmd/benchdiff gates its rows.

// SelectiveConfig parameterizes one selective-persistence measurement.
type SelectiveConfig struct {
	// Structure selects the hot path: "map" (sets over preloaded keys)
	// or "vector" (updates over preloaded slots).
	Structure string
	// Selective picks the flavor under test: true binds the selectively
	// persisted structure and enables the DRAM node cache ("on"); false
	// binds the normal structure with no cache ("off").
	Selective bool
	// OpsPerFASE is the number of updates per edit/batch.
	OpsPerFASE int
	// Ops is the total number of committed updates.
	Ops int
	// PreloadKeys sizes the map keyspace (updates hit existing keys).
	PreloadKeys int
	// VectorPreload is the vector length (updates hit existing slots).
	VectorPreload int
	// MeasureRecovery crashes the device after the run and reopens it,
	// filling the Recovery* result fields.
	MeasureRecovery bool
	// Seed drives the deterministic operation stream.
	Seed uint64
	// ArenaBytes sizes the device (0 = automatic).
	ArenaBytes int64
}

func (c *SelectiveConfig) defaults() {
	if c.Structure == "" {
		c.Structure = "map"
	}
	if c.OpsPerFASE <= 0 {
		c.OpsPerFASE = 1
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.PreloadKeys <= 0 {
		c.PreloadKeys = 1024
	}
	if c.VectorPreload <= 0 {
		c.VectorPreload = 4096
	}
	if c.Seed == 0 {
		c.Seed = 0x5e1ec
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = int64(c.Ops)*2048 + int64(c.PreloadKeys)*512 +
			int64(c.VectorPreload)*64 + (64 << 20)
	}
}

// SelectiveResult reports one selective-persistence measurement. Times
// are simulated nanoseconds; throughput is per simulated second.
type SelectiveResult struct {
	Structure  string
	Selective  bool
	OpsPerFASE int
	Ops        int

	Fences    uint64
	Flushes   uint64
	Copies    uint64 // node allocations (path copies + headers + blobs + records)
	DRAMReads uint64 // node lines served from the volatile cache

	ElapsedNs float64
	OpsPerSec float64

	FencesPerOp  float64
	FlushesPerOp float64
	CopiesPerOp  float64

	// Filled when MeasureRecovery is set: cost of reopening the crashed
	// image, including the selective rebuild (zero nodes for the normal
	// flavor, which has nothing to rebuild).
	RecoveryNs   float64
	RebuiltNodes uint64
}

// RunSelective executes the selective-persistence workload and returns
// its measurement.
func RunSelective(cfg SelectiveConfig) (SelectiveResult, error) {
	cfg.defaults()
	if cfg.Structure != "map" && cfg.Structure != "vector" {
		return SelectiveResult{}, fmt.Errorf("workloads: unknown selective structure %q", cfg.Structure)
	}
	dcfg := pmem.DefaultConfig(cfg.ArenaBytes)
	dcfg.TrackDurable = cfg.MeasureRecovery
	db, _, err := core.Open(dcfg)
	if err != nil {
		return SelectiveResult{}, err
	}
	defer db.Close()
	store := db.Store()
	dev := store.Device()

	var m *core.Map
	var v *core.Vector
	if cfg.Selective {
		store.EnableNodeCache()
		if m, err = store.SelectiveMap("sel-map"); err == nil {
			v, err = store.SelectiveVector("sel-vec")
		}
	} else {
		if m, err = store.Map("sel-map"); err == nil {
			v, err = store.Vector("sel-vec")
		}
	}
	if err != nil {
		return SelectiveResult{}, err
	}

	r := rng{state: cfg.Seed}
	if cfg.Structure == "map" {
		for k := 0; k < cfg.PreloadKeys; k++ {
			m.Set([]byte(fmt.Sprintf("key-%06d", k)), u64le(r.next()))
		}
	} else {
		for i := 0; i < cfg.VectorPreload; i++ {
			v.Push(r.next())
		}
	}
	store.Sync()
	statsBase := dev.Stats()
	allocBase := store.Heap().Stats()
	nsBase := dev.LocalNs()

	b := store.NewBatch()
	for i := 0; i < cfg.Ops; i++ {
		if cfg.Structure == "map" {
			key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys)))
			b.MapSet(m, []byte(key), u64le(r.next()))
		} else {
			b.VectorUpdate(v, r.intn(uint64(cfg.VectorPreload)), r.next())
		}
		if b.Len() >= cfg.OpsPerFASE {
			b.Commit()
		}
	}
	b.Commit()

	elapsed := dev.LocalNs() - nsBase
	d := dev.Stats().Sub(statsBase)
	copies := store.Heap().Stats().Allocs - allocBase.Allocs
	res := SelectiveResult{
		Structure:    cfg.Structure,
		Selective:    cfg.Selective,
		OpsPerFASE:   cfg.OpsPerFASE,
		Ops:          cfg.Ops,
		Fences:       d.Fences,
		Flushes:      d.Flushes,
		Copies:       copies,
		DRAMReads:    d.DRAMReads,
		ElapsedNs:    elapsed,
		OpsPerSec:    perSec(cfg.Ops, elapsed),
		FencesPerOp:  float64(d.Fences) / float64(cfg.Ops),
		FlushesPerOp: float64(d.Flushes) / float64(cfg.Ops),
		CopiesPerOp:  float64(copies) / float64(cfg.Ops),
	}
	store.Sync()

	if cfg.MeasureRecovery {
		img := dev.CrashImage(pmem.CrashEvictRandom, cfg.Seed)
		rcfg := pmem.DefaultConfig(cfg.ArenaBytes)
		db2, _, err := core.Open(rcfg, core.WithExistingImages([][]byte{img}))
		if err != nil {
			return SelectiveResult{}, fmt.Errorf("workloads: selective reopen: %w", err)
		}
		defer db2.Close()
		store2 := db2.Store()
		rs := store2.Device().Stats()
		res.RecoveryNs = rs.RecoveryNs
		res.RebuiltNodes = rs.RebuiltNodes
		// Sanity: the recovered structure must answer reads.
		if cfg.Structure == "map" {
			m2, err := store2.Map("sel-map")
			if err != nil {
				return SelectiveResult{}, err
			}
			if m2.Len() == 0 {
				return SelectiveResult{}, fmt.Errorf("workloads: selective recovery lost the map")
			}
		} else {
			v2, err := store2.Vector("sel-vec")
			if err != nil {
				return SelectiveResult{}, err
			}
			if int(v2.Len()) != cfg.VectorPreload {
				return SelectiveResult{}, fmt.Errorf("workloads: selective recovery lost vector slots: len %d != %d",
					v2.Len(), cfg.VectorPreload)
			}
		}
	}
	return res, nil
}

// u64le encodes a uint64 as its 8 little-endian bytes — the fixed-width
// leaf value the selective hot path writes.
func u64le(x uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
	return b
}
