package workloads

import "testing"

func smallConcurrent(readers int) ConcurrentConfig {
	return ConcurrentConfig{
		Readers:     readers,
		Writers:     2,
		Shards:      4,
		ReaderOps:   600,
		WriterOps:   150,
		PreloadKeys: 64,
		Seed:        7,
	}
}

// TestRunConcurrentCompletes sanity-checks the measurement plumbing.
func TestRunConcurrentCompletes(t *testing.T) {
	res, err := RunConcurrent(smallConcurrent(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadOps != 2*600 || res.WriteOps != 2*150 {
		t.Fatalf("op counts wrong: %+v", res)
	}
	if res.ElapsedNs <= 0 || res.BusyNs < res.ElapsedNs {
		t.Fatalf("implausible times: elapsed=%v busy=%v", res.ElapsedNs, res.BusyNs)
	}
	if res.OpsPerSec <= 0 {
		t.Fatal("no throughput reported")
	}
}

// TestRunConcurrentScalesWithReaders is the reader-scaling acceptance
// check: since snapshots are lock-free and each reader's simulated time
// is its own critical path, aggregate throughput must grow when readers
// are added.
func TestRunConcurrentScalesWithReaders(t *testing.T) {
	one, err := RunConcurrent(smallConcurrent(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunConcurrent(smallConcurrent(4))
	if err != nil {
		t.Fatal(err)
	}
	if four.OpsPerSec <= one.OpsPerSec*1.5 {
		t.Fatalf("throughput did not scale with readers: 1 reader %.0f ops/s, 4 readers %.0f ops/s",
			one.OpsPerSec, four.OpsPerSec)
	}
	if four.ReadsPerSec <= one.ReadsPerSec*2 {
		t.Fatalf("read throughput did not scale: %.0f -> %.0f", one.ReadsPerSec, four.ReadsPerSec)
	}
}

// TestRunConcurrentWriterOnly: the workload degrades gracefully with no
// readers (pure commit throughput over shards).
func TestRunConcurrentWriterOnly(t *testing.T) {
	cfg := smallConcurrent(0)
	res, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadOps != 0 || res.WriteOps != 300 {
		t.Fatalf("op counts wrong: %+v", res)
	}
	if res.WritesPerSec <= 0 {
		t.Fatal("no write throughput")
	}
}
