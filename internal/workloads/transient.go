package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Transient (edit-context) workload. A fixed budget of updates — map sets
// on a preloaded trie interleaved with vector pushes — is committed
// through core.Batch at a swept ops-per-FASE. Every batch runs inside one
// edit context (DESIGN.md §8), so the first operation on a root copies
// its path and every subsequent operation mutates the edit-owned shadow
// in place: copies/op and flushes/op fall with the FASE size, which is
// the copy-elision claim BENCH.json tracks. ops-per-FASE = 1 is the
// baseline where every operation pays full shadow cost.
//
// Single-goroutine and deterministic, so cmd/benchdiff gates its rows.

// TransientConfig parameterizes one transient measurement.
type TransientConfig struct {
	// OpsPerFASE is the number of updates per edit/batch (1 = a full
	// shadow per operation, the unbatched baseline).
	OpsPerFASE int
	// Ops is the total number of committed updates.
	Ops int
	// PreloadKeys preloads the map and sizes the update keyspace (2x).
	PreloadKeys int
	// VectorPreload is the initial vector length.
	VectorPreload int
	// Seed drives the deterministic operation stream.
	Seed uint64
	// ArenaBytes sizes the device (0 = automatic).
	ArenaBytes int64
}

func (c *TransientConfig) defaults() {
	if c.OpsPerFASE <= 0 {
		c.OpsPerFASE = 1
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.PreloadKeys <= 0 {
		c.PreloadKeys = 512
	}
	if c.VectorPreload <= 0 {
		c.VectorPreload = 1024
	}
	if c.Seed == 0 {
		c.Seed = 0xed17
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = int64(c.Ops)*2048 + int64(c.PreloadKeys)*512 +
			int64(c.VectorPreload)*64 + (64 << 20)
	}
}

// TransientResult reports one transient measurement. Times are simulated
// nanoseconds; throughput is per simulated second.
type TransientResult struct {
	OpsPerFASE int
	Ops        int

	Fences       uint64
	Flushes      uint64
	FlushesSaved uint64 // clwbs avoided by flush-set deduplication
	Copies       uint64 // node allocations (path copies + headers + blobs)
	CopiesElided uint64 // in-place mutations that avoided a node copy

	ElapsedNs float64
	OpsPerSec float64

	FencesPerOp  float64
	FlushesPerOp float64
	CopiesPerOp  float64
}

// RunTransient executes the transient workload and returns its
// measurement.
func RunTransient(cfg TransientConfig) (TransientResult, error) {
	cfg.defaults()
	db, _, err := core.Open(pmem.DefaultConfig(cfg.ArenaBytes))
	if err != nil {
		return TransientResult{}, err
	}
	defer db.Close()
	store := db.Store()
	dev := store.Device()

	m, err := store.Map("transient-map")
	if err != nil {
		return TransientResult{}, err
	}
	v, err := store.Vector("transient-vec")
	if err != nil {
		return TransientResult{}, err
	}
	r := rng{state: cfg.Seed}
	for k := 0; k < cfg.PreloadKeys; k++ {
		m.Set([]byte(fmt.Sprintf("key-%06d", k)), []byte(fmt.Sprintf("val-%016x", r.next())))
	}
	for i := 0; i < cfg.VectorPreload; i++ {
		v.Push(r.next())
	}
	store.Sync()
	statsBase := dev.Stats()
	allocBase := store.Heap().Stats()
	nsBase := dev.LocalNs()

	b := store.NewBatch()
	for i := 0; i < cfg.Ops; i++ {
		if i&1 == 0 {
			key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys*2)))
			val := fmt.Sprintf("val-%016x", r.next())
			b.MapSet(m, []byte(key), []byte(val))
		} else {
			b.VectorPush(v, r.next())
		}
		if b.Len() >= cfg.OpsPerFASE {
			b.Commit()
		}
	}
	b.Commit()

	elapsed := dev.LocalNs() - nsBase
	d := dev.Stats().Sub(statsBase)
	copies := store.Heap().Stats().Allocs - allocBase.Allocs
	res := TransientResult{
		OpsPerFASE:   cfg.OpsPerFASE,
		Ops:          cfg.Ops,
		Fences:       d.Fences,
		Flushes:      d.Flushes,
		FlushesSaved: d.FlushesSaved,
		Copies:       copies,
		CopiesElided: d.CopiesElided,
		ElapsedNs:    elapsed,
		OpsPerSec:    perSec(cfg.Ops, elapsed),
		FencesPerOp:  float64(d.Fences) / float64(cfg.Ops),
		FlushesPerOp: float64(d.Flushes) / float64(cfg.Ops),
		CopiesPerOp:  float64(copies) / float64(cfg.Ops),
	}
	store.Sync()
	return res, nil
}
