package workloads

import (
	"fmt"
	"sync"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Contention workload: W writer goroutines hammer ONE shared map root.
// This is the adversarial inverse of the concurrent workload (which gives
// every writer its own shard): all scaling must come from the commit
// protocol itself. Two modes run per writer count:
//
//   - mutex: the legacy baseline — every update serializes on the root's
//     commit mutex, so adding writers adds queueing, not throughput.
//     Simulated lock-wait time is modeled by the store's serialized-
//     section watermark (core.Store SetMutexCommit docs).
//   - cas: the two-tier path — optimistic CAS publication while the race
//     is light, flat combining once it is not. Combining merges the
//     pending ops of all enrolled writers into one shadow chain published
//     under a single flush+sfence epoch, so fences/op falls as contention
//     rises instead of staying fixed at one per op.
//
// Elapsed simulated time is the maximum over writer goroutines (each
// works through a forked handle carrying its own clock); throughput is
// total committed ops over that maximum.

// ContentionConfig parameterizes one contention measurement.
type ContentionConfig struct {
	// Writers is the goroutine count, all updating the same root.
	Writers int
	// OpsPerWriter is committed updates per writer.
	OpsPerWriter int
	// Keyspace is the number of distinct keys (preloaded before the
	// measured phase so map shape stays roughly constant).
	Keyspace int
	// MutexBaseline selects the legacy per-root-mutex commit path
	// instead of the two-tier optimistic path.
	MutexBaseline bool
	// Seed drives the deterministic per-goroutine operation streams.
	Seed uint64
	// ArenaBytes sizes the device (0 = automatic).
	ArenaBytes int64
}

func (c *ContentionConfig) defaults() {
	if c.Writers <= 0 {
		c.Writers = 1
	}
	if c.OpsPerWriter <= 0 {
		c.OpsPerWriter = 1000
	}
	if c.Keyspace <= 0 {
		c.Keyspace = 512
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.ArenaBytes == 0 {
		need := int64(c.Writers)*int64(c.OpsPerWriter)*2048 +
			int64(c.Keyspace)*512 + (64 << 20)
		c.ArenaBytes = need
	}
}

// ContentionResult reports one contention measurement. Times are
// simulated nanoseconds; throughput is ops per simulated second.
type ContentionResult struct {
	Writers int
	Mode    string // "mutex" or "cas"
	Ops     int    // total committed updates across writers

	ElapsedNs float64 // max per-goroutine simulated time
	OpsPerSec float64 // Ops / ElapsedNs

	Fences      uint64  // device fences in the measured phase
	FencesPerOp float64 // Fences / Ops

	// Commit-tier counters for the measured phase (all zero except
	// LockedCommits in mutex mode).
	Commit core.CommitStats
}

func subCommitStats(a, b core.CommitStats) core.CommitStats {
	return core.CommitStats{
		FastWins:       a.FastWins - b.FastWins,
		FastAborts:     a.FastAborts - b.FastAborts,
		FastLosses:     a.FastLosses - b.FastLosses,
		Combines:       a.Combines - b.Combines,
		CombineRetries: a.CombineRetries - b.CombineRetries,
		CombinedOps:    a.CombinedOps - b.CombinedOps,
		LockedCommits:  a.LockedCommits - b.LockedCommits,
	}
}

// RunContention executes the contention workload and returns its
// measurement. MOD engine only: the baselines under comparison are the
// two commit tiers of the same engine.
func RunContention(cfg ContentionConfig) (ContentionResult, error) {
	cfg.defaults()
	pcfg := pmem.DefaultConfig(cfg.ArenaBytes)
	// One cache hierarchy is shared by every handle, so its hit pattern
	// depends on how the Go scheduler interleaves the writers in real
	// time — noise that would drown the protocol costs this sweep
	// isolates (fences, serialization, CAS retries). Flat access costs
	// keep the measurement deterministic.
	pcfg.DisableCache = true
	db, _, err := core.Open(pcfg)
	if err != nil {
		return ContentionResult{}, err
	}
	defer db.Close()
	store := db.Store()
	dev := store.Device()

	// Preload the shared root serially on the main handle, on the default
	// (optimistic) path: the mutex path's serialized-time watermark would
	// otherwise carry the preload's clock into the measured phase.
	m, err := store.Map("contended")
	if err != nil {
		return ContentionResult{}, err
	}
	preloadRng := rng{state: cfg.Seed}
	for k := 0; k < cfg.Keyspace; k++ {
		key := fmt.Sprintf("key-%06d", k)
		val := fmt.Sprintf("val-%016x", preloadRng.next())
		m.Set([]byte(key), []byte(val))
	}
	store.Sync()
	store.SetMutexCommit(cfg.MutexBaseline)
	statsBase := dev.Stats()
	commitBase := store.CommitStats()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		maxNs    float64
		firstErr error
	)
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := store.Fork()
			wm, err := st.Map("contended")
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			r := rng{state: cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1))}
			for i := 0; i < cfg.OpsPerWriter; i++ {
				key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.Keyspace)))
				val := fmt.Sprintf("val-%016x", r.next())
				wm.Set([]byte(key), []byte(val))
			}
			ns := st.Device().LocalNs()
			mu.Lock()
			if ns > maxNs {
				maxNs = ns
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return ContentionResult{}, firstErr
	}
	delta := dev.Stats().Sub(statsBase)

	mode := "cas"
	if cfg.MutexBaseline {
		mode = "mutex"
	}
	res := ContentionResult{
		Writers:   cfg.Writers,
		Mode:      mode,
		Ops:       cfg.Writers * cfg.OpsPerWriter,
		ElapsedNs: maxNs,
		Fences:    delta.Fences,
		Commit:    subCommitStats(store.CommitStats(), commitBase),
	}
	res.OpsPerSec = perSec(res.Ops, res.ElapsedNs)
	if res.Ops > 0 {
		res.FencesPerOp = float64(res.Fences) / float64(res.Ops)
	}
	store.Sync()
	return res, nil
}
