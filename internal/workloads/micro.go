package workloads

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/apps"
	"github.com/mod-ds/mod/internal/pmdkds"
)

// The microbenchmarks of Table 2. Each iteration is one operation drawn
// from the workload's mix; update operations are failure-atomic sections,
// lookups are plain reads.

func key8(i uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func val32(i uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

// registry maps workload names to their drivers. Populated across the
// files of this package.
var registry = map[string]runner{}

func init() {
	registry["map"] = runner{run: runMap}
	registry["set"] = runner{run: runSet}
	registry["stack"] = runner{run: runStack}
	registry["queue"] = runner{run: runQueue}
	registry["vector"] = runner{setup: setupVector, run: runVector}
	registry["vec-swap"] = runner{setup: setupVector, run: runVecSwap}
	registry["bfs"] = runner{run: runBFS, arena: bfsArena}
	registry["vacation"] = runner{setup: setupVacation, run: runVacation}
	registry["memcached"] = runner{setup: setupMemcached, run: runMemcached, arena: memcachedArena}
}

// map: insert/lookup random 8B keys with 32B values (Table 2).
func runMap(e *env, rnd *rng, ops int, res *Result) error {
	m, err := e.kv("bench-map", ops)
	if err != nil {
		return err
	}
	keyspace := uint64(2 * ops)
	inserts := 0
	for i := 0; i < ops; i++ {
		k := rnd.intn(keyspace)
		if rnd.next()&1 == 0 {
			m.Set(key8(k), val32(k))
			inserts++
		} else {
			m.Get(key8(k))
		}
	}
	res.Extra["inserts"] = float64(inserts)
	res.Extra["size"] = float64(m.Len())
	return nil
}

// set: insert/lookup random 8B keys (Table 2).
func runSet(e *env, rnd *rng, ops int, res *Result) error {
	keyspace := uint64(2 * ops)
	if e.engine == EngineMOD {
		s, err := e.store.Set("bench-set")
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			k := rnd.intn(keyspace)
			if rnd.next()&1 == 0 {
				s.Insert(key8(k))
			} else {
				s.Contains(key8(k))
			}
		}
		res.Extra["size"] = float64(s.Len())
		return nil
	}
	s, err := pmdkds.NewHashset(e.tx, "bench-set", pow2(ops))
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		k := rnd.intn(keyspace)
		if rnd.next()&1 == 0 {
			s.Insert(key8(k))
		} else {
			s.Contains(key8(k))
		}
	}
	res.Extra["size"] = float64(s.Len())
	return nil
}

// stack: push/pop from the top (Table 2), 2:1 push bias so the stack
// grows and pops always find elements.
func runStack(e *env, rnd *rng, ops int, res *Result) error {
	if e.engine == EngineMOD {
		s, err := e.store.Stack("bench-stack")
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			if rnd.intn(3) != 0 || s.Len() == 0 {
				s.Push(uint64(i))
			} else {
				s.Pop()
			}
		}
		res.Extra["size"] = float64(s.Len())
		return nil
	}
	s, err := pmdkds.NewStack(e.tx, "bench-stack")
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		if rnd.intn(3) != 0 || s.Len() == 0 {
			s.Push(uint64(i))
		} else {
			s.Pop()
		}
	}
	res.Extra["size"] = float64(s.Len())
	return nil
}

// queue: enqueue/dequeue (Table 2), 2:1 enqueue bias.
func runQueue(e *env, rnd *rng, ops int, res *Result) error {
	if e.engine == EngineMOD {
		q, err := e.store.Queue("bench-queue")
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			if rnd.intn(3) != 0 || q.Len() == 0 {
				q.Enqueue(uint64(i))
			} else {
				q.Dequeue()
			}
		}
		res.Extra["size"] = float64(q.Len())
		return nil
	}
	q, err := pmdkds.NewQueue(e.tx, "bench-queue")
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		if rnd.intn(3) != 0 || q.Len() == 0 {
			q.Enqueue(uint64(i))
		} else {
			q.Dequeue()
		}
	}
	res.Extra["size"] = float64(q.Len())
	return nil
}

// vector workloads operate on a preloaded vector of Ops elements.
type vectorHandles struct {
	mod  modVector
	pmdk *pmdkds.Vector
}

type modVector interface {
	Len() uint64
	Get(uint64) uint64
	Push(uint64)
	Update(uint64, uint64)
	Swap(uint64, uint64)
}

func setupVector(e *env, rnd *rng) error {
	n := vectorPreload
	if e.engine == EngineMOD {
		v, err := e.store.Vector("bench-vector")
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			v.Push(uint64(i))
		}
		return nil
	}
	v, err := pmdkds.NewVector(e.tx, "bench-vector")
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		v.Push(uint64(i))
	}
	return nil
}

// vectorPreload is set per run by the harness via Config; to keep the
// runner signature simple it defaults relative to ops inside runVector.
var vectorPreload = 10_000

// SetVectorPreload adjusts the preloaded vector size (element count) for
// the vector and vec-swap workloads.
func SetVectorPreload(n int) {
	if n > 0 {
		vectorPreload = n
	}
}

// vector: update/read random indices (Table 2).
func runVector(e *env, rnd *rng, ops int, res *Result) error {
	n := uint64(vectorPreload)
	if e.engine == EngineMOD {
		v, err := e.store.Vector("bench-vector")
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			idx := rnd.intn(n)
			if rnd.next()&1 == 0 {
				v.Update(idx, uint64(i))
			} else {
				v.Get(idx)
			}
		}
		return nil
	}
	v, err := pmdkds.NewVector(e.tx, "bench-vector")
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		idx := rnd.intn(n)
		if rnd.next()&1 == 0 {
			v.Update(idx, uint64(i))
		} else {
			v.Get(idx)
		}
	}
	return nil
}

// vec-swap: swap two random elements per iteration (the canneal kernel,
// Table 2). MOD composes two pure updates under one commit (Fig. 7b).
func runVecSwap(e *env, rnd *rng, ops int, res *Result) error {
	n := uint64(vectorPreload)
	if e.engine == EngineMOD {
		v, err := e.store.Vector("bench-vector")
		if err != nil {
			return err
		}
		for i := 0; i < ops; i++ {
			v.Swap(rnd.intn(n), rnd.intn(n))
		}
		return nil
	}
	v, err := pmdkds.NewVector(e.tx, "bench-vector")
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		v.Swap(rnd.intn(n), rnd.intn(n))
	}
	return nil
}

// memcached: 95% sets / 5% gets with 16B keys and 512B values (Table 2).
const (
	memcachedKeyLen = 16
	memcachedValLen = 512
)

func memcachedArena(ops int) int64 {
	return int64(ops)*2048 + (128 << 20)
}

func memcachedKey(rnd *rng, keyspace uint64) string {
	return fmt.Sprintf("user:%011d", rnd.intn(keyspace)) // 16 bytes
}

func setupMemcached(e *env, rnd *rng) error { return nil }

func runMemcached(e *env, rnd *rng, ops int, res *Result) error {
	kv, err := e.kv("bench-cache", ops)
	if err != nil {
		return err
	}
	cache := apps.NewCache(kv)
	keyspace := uint64(ops/2 + 1)
	val := make([]byte, memcachedValLen)
	for i := 0; i < ops; i++ {
		k := memcachedKey(rnd, keyspace)
		if rnd.intn(100) < 95 {
			binary.LittleEndian.PutUint64(val, uint64(i))
			cache.Set(k, val)
		} else {
			cache.Get(k)
		}
	}
	_, sets, hits, _ := func() (uint64, uint64, uint64, uint64) { return cache.Stats() }()
	res.Extra["sets"] = float64(sets)
	res.Extra["hits"] = float64(hits)
	res.Extra["items"] = float64(cache.Items())
	return nil
}
