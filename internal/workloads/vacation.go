package workloads

import (
	"github.com/mod-ds/mod/internal/apps"
)

// vacation: travel reservation system with four recoverable maps
// (Table 2). Each reservation or cancellation is a FASE updating two maps
// — committed with CommitSiblings on MOD (§6.2) and a single two-map
// transaction on the PMDK baseline. The mix approximates the paper's
// STAMP configuration (55% user reservations, the rest queries and
// cancellations over an 80% query range).

const (
	vacationResources = 1 << 12 // resources per kind
	vacationUnits     = 4       // units per resource
)

func setupVacation(e *env, rnd *rng) error {
	r, err := vacationSystem(e)
	if err != nil {
		return err
	}
	for kind := apps.Cars; kind <= apps.Rooms; kind++ {
		for id := uint64(0); id < vacationResources; id++ {
			r.AddResource(kind, id, vacationUnits)
		}
	}
	return nil
}

func vacationSystem(e *env) (apps.Reservations, error) {
	if e.engine == EngineMOD {
		return apps.NewMODReservations(e.store)
	}
	return apps.NewPMDKReservations(e.tx, vacationResources*4)
}

func runVacation(e *env, rnd *rng, ops int, res *Result) error {
	r, err := vacationSystem(e)
	if err != nil {
		return err
	}
	customers := uint64(ops)/2 + 1
	var reserves, cancels, queries float64
	for i := 0; i < ops; i++ {
		kind := apps.ResourceKind(rnd.intn(3))
		resID := rnd.intn(vacationResources)
		custID := rnd.intn(customers)
		switch action := rnd.intn(100); {
		case action < 55:
			if r.Reserve(kind, resID, custID) {
				reserves++
			}
		case action < 80:
			r.Query(kind, resID)
			r.Booking(custID)
			queries++
		default:
			if r.Cancel(custID) {
				cancels++
			}
		}
	}
	res.Extra["reserves"] = reserves
	res.Extra["cancels"] = cancels
	res.Extra["queries"] = queries
	return nil
}
