package workloads

import (
	"fmt"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Group-commit throughput workload. A fixed budget of map updates is
// committed through core.Batch at a swept batch size, so the cost of the
// ordering point is amortized: fences/op falls as 1/B when a batch stays
// on one root and 3/B when it spreads across shards (DESIGN.md §7). The
// sweep is the repo's main evidence that batching multiplies MOD's
// fewer-fences advantage; BENCH.json carries its fences/op and ops/sec
// so CI can hold the line.
//
// The synchronous mode is single-goroutine and fully deterministic —
// simulated time depends only on the operation stream — which is what
// lets cmd/benchdiff compare its numbers exactly across commits. The
// async mode drives the background committer from concurrent producers
// and is reported for information only.

// GroupCommitConfig parameterizes one group-commit measurement.
type GroupCommitConfig struct {
	// BatchSize is the number of updates coalesced per commit (1 = a
	// fence per operation, the unbatched baseline).
	BatchSize int
	// Ops is the total number of committed updates.
	Ops int
	// Shards is the number of map roots the updates round-robin over.
	// 1 keeps every batch on the single-root publish path; more shards
	// exercise the multi-root batch record.
	Shards int
	// PreloadKeys preloads each shard so updates hit a populated trie.
	PreloadKeys int
	// Async submits batches from Writers goroutines through the
	// background committer instead of committing inline.
	Async bool
	// Writers is the producer goroutine count in async mode (default 2).
	Writers int
	// Seed drives the deterministic operation stream.
	Seed uint64
	// ArenaBytes sizes the device (0 = automatic).
	ArenaBytes int64
}

func (c *GroupCommitConfig) defaults() {
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.PreloadKeys <= 0 {
		c.PreloadKeys = 256
	}
	if c.Writers <= 0 {
		c.Writers = 2
	}
	if c.Seed == 0 {
		c.Seed = 0x6c0de
	}
	if c.ArenaBytes == 0 {
		c.ArenaBytes = int64(c.Ops)*2048 + int64(c.Shards*c.PreloadKeys)*512 + (64 << 20)
	}
}

// GroupCommitResult reports one group-commit measurement. Times are
// simulated nanoseconds; throughput is per simulated second.
type GroupCommitResult struct {
	BatchSize int
	Shards    int
	Ops       int
	Async     bool

	Batches uint64 // group commits executed
	Fences  uint64
	Flushes uint64

	ElapsedNs float64 // committing goroutine's critical path (busy time in async mode)
	OpsPerSec float64

	FencesPerOp  float64
	FlushesPerOp float64
}

func gcShardName(i int) string { return fmt.Sprintf("gc-shard-%02d", i) }

// RunGroupCommit executes the group-commit workload and returns its
// measurement.
func RunGroupCommit(cfg GroupCommitConfig) (GroupCommitResult, error) {
	cfg.defaults()
	db, _, err := core.Open(pmem.DefaultConfig(cfg.ArenaBytes))
	if err != nil {
		return GroupCommitResult{}, err
	}
	defer db.Close()
	store := db.Store()
	dev := store.Device()

	shards := make([]*core.Map, cfg.Shards)
	r := rng{state: cfg.Seed}
	for s := range shards {
		m, err := store.Map(gcShardName(s))
		if err != nil {
			return GroupCommitResult{}, err
		}
		for k := 0; k < cfg.PreloadKeys; k++ {
			m.Set([]byte(fmt.Sprintf("key-%06d", k)), []byte(fmt.Sprintf("val-%016x", r.next())))
		}
		shards[s] = m
	}
	store.Sync()
	statsBase := dev.Stats()
	nsBase := dev.LocalNs()
	busyBase := dev.Clock()

	if cfg.Async {
		if err := runGroupCommitAsync(store, shards, cfg); err != nil {
			return GroupCommitResult{}, err
		}
	} else {
		b := store.NewBatch()
		for i := 0; i < cfg.Ops; i++ {
			m := shards[i%cfg.Shards]
			key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys*2)))
			val := fmt.Sprintf("val-%016x", r.next())
			b.MapSet(m, []byte(key), []byte(val))
			if b.Len() >= cfg.BatchSize {
				b.Commit()
			}
		}
		b.Commit()
	}

	elapsed := dev.LocalNs() - nsBase
	if cfg.Async {
		elapsed = dev.Clock() - busyBase // aggregate busy: conservative
	}
	d := dev.Stats().Sub(statsBase)
	res := GroupCommitResult{
		BatchSize:    cfg.BatchSize,
		Shards:       cfg.Shards,
		Ops:          cfg.Ops,
		Async:        cfg.Async,
		Batches:      d.Batches,
		Fences:       d.Fences,
		Flushes:      d.Flushes,
		ElapsedNs:    elapsed,
		OpsPerSec:    perSec(cfg.Ops, elapsed),
		FencesPerOp:  float64(d.Fences) / float64(cfg.Ops),
		FlushesPerOp: float64(d.Flushes) / float64(cfg.Ops),
	}
	store.Sync()
	return res, nil
}

// runGroupCommitAsync splits the op budget over producer goroutines that
// submit batches to the background committer, keeping a small pipeline
// of unresolved tickets each.
func runGroupCommitAsync(store *core.Store, shards []*core.Map, cfg GroupCommitConfig) error {
	store.StartGroupCommitter(cfg.BatchSize * cfg.Writers)
	defer store.StopGroupCommitter()
	errs := make(chan error, cfg.Writers)
	for w := 0; w < cfg.Writers; w++ {
		go func(w int) {
			h := store.Fork()
			maps := make([]*core.Map, len(shards))
			for s := range shards {
				m, err := h.Map(gcShardName(s))
				if err != nil {
					errs <- err
					return
				}
				maps[s] = m
			}
			r := rng{state: cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1))}
			ops := cfg.Ops / cfg.Writers
			if w == 0 {
				ops += cfg.Ops % cfg.Writers
			}
			const pipeline = 4
			var tickets []*core.Ticket
			b := h.NewBatch()
			for i := 0; i < ops; i++ {
				m := maps[i%len(maps)]
				key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys*2)))
				val := fmt.Sprintf("val-%016x", r.next())
				b.MapSet(m, []byte(key), []byte(val))
				if b.Len() >= cfg.BatchSize {
					tickets = append(tickets, b.CommitAsync())
					if len(tickets) > pipeline {
						tickets[0].Wait()
						tickets = tickets[1:]
					}
				}
			}
			if b.Len() > 0 {
				tickets = append(tickets, b.CommitAsync())
			}
			for _, t := range tickets {
				t.Wait()
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < cfg.Writers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}
