package workloads

import (
	"fmt"
	"sync"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// Concurrent throughput workload. N reader goroutines take lock-free
// snapshots of sharded maps and perform point lookups while M writer
// goroutines commit FASEs against their own shards. Every goroutine works
// through a forked Store handle, so its simulated time is its own
// critical path; the phase's elapsed simulated time is the maximum over
// all goroutines, and aggregate throughput is total operations divided by
// that maximum. Because snapshots never block on committing writers and
// shard commits serialize only per root, adding readers (or writers on
// distinct shards) adds throughput — the reader-scaling property the MOD
// commit protocol's immutable versions make possible.

// ConcurrentConfig parameterizes a concurrent run.
type ConcurrentConfig struct {
	// Readers and Writers are goroutine counts. Readers may be 0.
	Readers, Writers int
	// Shards is the number of independent map roots (writers round-robin
	// over their own shard subset; readers sample all shards).
	Shards int
	// ReaderOps is point lookups per reader; WriterOps is committed
	// updates (FASEs) per writer.
	ReaderOps, WriterOps int
	// GetsPerSnapshot is how many lookups a reader performs under one
	// snapshot before closing it (default 8).
	GetsPerSnapshot int
	// PreloadKeys is the number of keys preloaded into each shard.
	PreloadKeys int
	// Seed drives the deterministic per-goroutine operation streams.
	Seed uint64
	// ArenaBytes sizes the device (0 = automatic).
	ArenaBytes int64
}

func (c *ConcurrentConfig) defaults() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Readers < 0 {
		c.Readers = 0
	}
	if c.Writers <= 0 {
		c.Writers = 1
	}
	if c.ReaderOps <= 0 {
		c.ReaderOps = 4000
	}
	if c.WriterOps <= 0 {
		c.WriterOps = 1000
	}
	if c.GetsPerSnapshot <= 0 {
		c.GetsPerSnapshot = 8
	}
	if c.PreloadKeys <= 0 {
		c.PreloadKeys = 256
	}
	if c.Seed == 0 {
		c.Seed = 0x5eed
	}
	if c.ArenaBytes == 0 {
		need := int64(c.Writers)*int64(c.WriterOps)*1536 +
			int64(c.Shards)*int64(c.PreloadKeys)*512 + (64 << 20)
		c.ArenaBytes = need
	}
}

// ConcurrentResult reports one concurrent measurement. Times are
// simulated nanoseconds; throughputs are operations per simulated second.
type ConcurrentResult struct {
	Readers, Writers, Shards int

	ReadOps  int // total lookups across readers
	WriteOps int // total committed FASEs across writers

	ElapsedNs float64 // max per-goroutine simulated time (phase wall clock)
	ReaderNs  float64 // max reader critical path
	WriterNs  float64 // max writer critical path
	BusyNs    float64 // aggregate busy time across all goroutines

	ReadsPerSec  float64 // ReadOps / ElapsedNs
	WritesPerSec float64 // WriteOps / ElapsedNs
	OpsPerSec    float64 // (ReadOps + WriteOps) / ElapsedNs
}

func perSec(ops int, ns float64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(ops) / (ns / 1e9)
}

func shardName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// RunConcurrent executes the concurrent workload and returns its
// measurement. The MOD engine only: the PMDK baselines are single-
// threaded by construction (their undo/redo logs are per-heap).
func RunConcurrent(cfg ConcurrentConfig) (ConcurrentResult, error) {
	cfg.defaults()
	db, _, err := core.Open(pmem.DefaultConfig(cfg.ArenaBytes))
	if err != nil {
		return ConcurrentResult{}, err
	}
	defer db.Close()
	store := db.Store()
	dev := store.Device()

	// Preload every shard serially on the main handle.
	preloadRng := rng{state: cfg.Seed}
	for s := 0; s < cfg.Shards; s++ {
		m, err := store.Map(shardName(s))
		if err != nil {
			return ConcurrentResult{}, err
		}
		for k := 0; k < cfg.PreloadKeys; k++ {
			key := fmt.Sprintf("key-%06d", k)
			val := fmt.Sprintf("val-%016x", preloadRng.next())
			m.Set([]byte(key), []byte(val))
		}
	}
	store.Sync()
	busyBase := dev.Clock() // exclude preload from the measured phase

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		readerMax float64
		writerMax float64
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Writers: writer w owns shards w, w+Writers, w+2*Writers, ... so
	// writers never contend on a root and commits proceed in parallel.
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := store.Fork()
			var shards []*core.Map
			for s := w; s < cfg.Shards; s += cfg.Writers {
				m, err := st.Map(shardName(s))
				if err != nil {
					fail(err)
					return
				}
				shards = append(shards, m)
			}
			if len(shards) == 0 { // more writers than shards: share shard w%Shards
				m, err := st.Map(shardName(w % cfg.Shards))
				if err != nil {
					fail(err)
					return
				}
				shards = append(shards, m)
			}
			r := rng{state: cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1))}
			for i := 0; i < cfg.WriterOps; i++ {
				m := shards[int(r.intn(uint64(len(shards))))]
				key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys*2)))
				val := fmt.Sprintf("val-%016x", r.next())
				m.Set([]byte(key), []byte(val))
			}
			ns := st.Device().LocalNs()
			mu.Lock()
			if ns > writerMax {
				writerMax = ns
			}
			mu.Unlock()
		}(w)
	}

	// Readers: snapshot a shard, perform a batch of lookups, close.
	for rd := 0; rd < cfg.Readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			st := store.Fork()
			shards := make([]*core.Map, cfg.Shards)
			for s := 0; s < cfg.Shards; s++ {
				m, err := st.Map(shardName(s))
				if err != nil {
					fail(err)
					return
				}
				shards[s] = m
			}
			r := rng{state: cfg.Seed ^ (0xbf58476d1ce4e5b9 * uint64(rd+1))}
			done := 0
			for done < cfg.ReaderOps {
				m := shards[int(r.intn(uint64(cfg.Shards)))]
				snap := m.Snapshot()
				batch := cfg.GetsPerSnapshot
				if rem := cfg.ReaderOps - done; batch > rem {
					batch = rem
				}
				for g := 0; g < batch; g++ {
					key := fmt.Sprintf("key-%06d", r.intn(uint64(cfg.PreloadKeys)))
					if _, ok := snap.Get([]byte(key)); !ok {
						snap.Close()
						fail(fmt.Errorf("workloads: reader %d: preloaded key %q missing from snapshot", rd, key))
						return
					}
				}
				snap.Close()
				done += batch
			}
			ns := st.Device().LocalNs()
			mu.Lock()
			if ns > readerMax {
				readerMax = ns
			}
			mu.Unlock()
		}(rd)
	}

	wg.Wait()
	if firstErr != nil {
		return ConcurrentResult{}, firstErr
	}
	busy := dev.Clock() - busyBase // before Sync: measured phase only
	store.Sync()

	res := ConcurrentResult{
		Readers:  cfg.Readers,
		Writers:  cfg.Writers,
		Shards:   cfg.Shards,
		ReadOps:  cfg.Readers * cfg.ReaderOps,
		WriteOps: cfg.Writers * cfg.WriterOps,
		ReaderNs: readerMax,
		WriterNs: writerMax,
		BusyNs:   busy,
	}
	res.ElapsedNs = readerMax
	if writerMax > res.ElapsedNs {
		res.ElapsedNs = writerMax
	}
	res.ReadsPerSec = perSec(res.ReadOps, res.ElapsedNs)
	res.WritesPerSec = perSec(res.WriteOps, res.ElapsedNs)
	res.OpsPerSec = perSec(res.ReadOps+res.WriteOps, res.ElapsedNs)
	return res, nil
}
