package workloads

import "testing"

func TestRunShardedDeterministic(t *testing.T) {
	cfg := ShardedConfig{Shards: 2, Writers: 2, Ops: 300, PreloadKeys: 64}
	a, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ElapsedNs != b.ElapsedNs || a.Fences != b.Fences || a.Flushes != b.Flushes {
		t.Fatalf("sharded workload nondeterministic: %+v vs %+v", a, b)
	}
}

// TestRunShardedFencesPerOp pins the headline invariant: sharding does
// not change the single-shard fence economy. One Basic update = one
// fence at every shard count.
func TestRunShardedFencesPerOp(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		res, err := RunSharded(ShardedConfig{Shards: shards, Writers: 4, Ops: 400, PreloadKeys: 64})
		if err != nil {
			t.Fatal(err)
		}
		if res.FencesPerOp != 1.0 {
			t.Errorf("S=%d: fences/op = %v, want exactly 1", shards, res.FencesPerOp)
		}
	}
}

// TestRunShardedSpeedup checks the acceptance target: at 4 shards with
// 4 writers, aggregate throughput is at least 2x the single-shard run.
func TestRunShardedSpeedup(t *testing.T) {
	base, err := RunSharded(ShardedConfig{Shards: 1, Writers: 4, Ops: 1200, PreloadKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunSharded(ShardedConfig{Shards: 4, Writers: 4, Ops: 1200, PreloadKeys: 64})
	if err != nil {
		t.Fatal(err)
	}
	if speedup := wide.OpsPerSec / base.OpsPerSec; speedup < 2 {
		t.Errorf("S=4/W=4 speedup = %.2fx over S=1/W=4, want >= 2x", speedup)
	}
	// The op budget spreads over shards, so the critical path shrinks.
	if wide.ElapsedNs >= base.ElapsedNs {
		t.Errorf("elapsed did not shrink: S=1 %v ns vs S=4 %v ns", base.ElapsedNs, wide.ElapsedNs)
	}
}

// TestRunShardedCrossShard exercises the manifest path end to end and
// checks its fence premium stays bounded (2k+3 per batch).
func TestRunShardedCrossShard(t *testing.T) {
	res, err := RunSharded(ShardedConfig{
		Shards: 4, Writers: 4, Ops: 400, BatchSize: 16, CrossShard: true, PreloadKeys: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each 16-op batch spans 2 shards: 2*2+3 = 7 fences per 16 ops.
	if res.FencesPerOp > 7.0/16.0+0.1 {
		t.Errorf("cross-shard fences/op = %v, want <= ~%v", res.FencesPerOp, 7.0/16.0)
	}
	if res.Fences == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
}

// TestRunShardedParallelMode smoke-tests the real-goroutine mode.
func TestRunShardedParallelMode(t *testing.T) {
	res, err := RunSharded(ShardedConfig{Shards: 2, Writers: 4, Ops: 200, Parallel: true, PreloadKeys: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 200 || res.OpsPerSec <= 0 {
		t.Fatalf("degenerate parallel result: %+v", res)
	}
}
