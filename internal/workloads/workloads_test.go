package workloads

import (
	"testing"
)

func smallCfg() Config { return Config{Ops: 2000, Seed: 42} }

func TestAllWorkloadsAllEnginesComplete(t *testing.T) {
	SetVectorPreload(2000)
	for _, name := range Names {
		for _, engine := range Engines {
			res, err := Run(name, engine, smallCfg())
			if err != nil {
				t.Fatalf("%s/%s: %v", name, engine, err)
			}
			if res.SimNs <= 0 {
				t.Fatalf("%s/%s: no simulated time", name, engine)
			}
			if res.Fences == 0 {
				t.Fatalf("%s/%s: no fences recorded", name, engine)
			}
			if res.Workload != name || res.Engine != engine.String() {
				t.Fatalf("%s/%s: mislabeled result %+v", name, engine, res)
			}
			sum := res.OtherNs + res.FlushNs + res.LogNs
			if diff := sum - res.SimNs; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("%s/%s: categories %.1f do not sum to total %.1f", name, engine, sum, res.SimNs)
			}
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	if _, err := Run("nope", EngineMOD, smallCfg()); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, err := Run("map", EngineMOD, Config{Ops: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("map", EngineMOD, Config{Ops: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.SimNs != b.SimNs || a.Flushes != b.Flushes || a.Fences != b.Fences {
		t.Fatalf("runs not deterministic: %+v vs %+v", a, b)
	}
}

func TestMODHasOneFencePerUpdateOnMicrobenchmarks(t *testing.T) {
	// §6.4: "MOD datastructures always have only one fence per operation."
	// Mixed workloads include lookups (no fence), so fences/op < 1; the
	// pure-update vec-swap workload must be exactly 1.
	SetVectorPreload(2000)
	res, err := Run("vec-swap", EngineMOD, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FencesPerOp(); got != 1 {
		t.Fatalf("MOD vec-swap fences/op = %v, want exactly 1", got)
	}
}

func TestPMDKFencesPerOpInPaperRange(t *testing.T) {
	SetVectorPreload(2000)
	res, err := Run("vec-swap", EnginePMDK15, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FencesPerOp(); got < 3 || got > 11 {
		t.Fatalf("PMDK v1.5 vec-swap fences/op = %.1f, want 3-11 (Fig. 10)", got)
	}
}

func TestMODFasterThanPMDKOnPointerStructures(t *testing.T) {
	// Fig. 9 headline: MOD beats PMDK v1.5 on map/set/queue/stack.
	SetVectorPreload(2000)
	for _, name := range []string{"map", "set", "queue", "stack"} {
		mod, err := Run(name, EngineMOD, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		pmdk, err := Run(name, EnginePMDK15, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		if mod.SimNs >= pmdk.SimNs {
			t.Errorf("%s: MOD (%.0f ns) not faster than PMDK v1.5 (%.0f ns)", name, mod.SimNs, pmdk.SimNs)
		}
	}
}

func TestPMDKFasterThanMODOnVector(t *testing.T) {
	// Fig. 9: vector and vec-swap are the cases MOD loses.
	SetVectorPreload(2000)
	for _, name := range []string{"vector", "vec-swap"} {
		mod, err := Run(name, EngineMOD, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		pmdk, err := Run(name, EnginePMDK15, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		if mod.SimNs <= pmdk.SimNs {
			t.Errorf("%s: MOD (%.0f ns) unexpectedly beats PMDK v1.5 (%.0f ns)", name, mod.SimNs, pmdk.SimNs)
		}
	}
}

func TestV15FasterThanV14(t *testing.T) {
	// §6.3: v1.5 outperforms v1.4 by ~23% on average.
	mod15, err := Run("map", EnginePMDK15, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	mod14, err := Run("map", EnginePMDK14, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if mod15.SimNs >= mod14.SimNs {
		t.Fatalf("v1.5 (%.0f) not faster than v1.4 (%.0f)", mod15.SimNs, mod14.SimNs)
	}
}

func TestBFSVisitsValidatedComponent(t *testing.T) {
	res, err := Run("bfs", EngineMOD, Config{Ops: 4000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["visited"] < 2 {
		t.Fatalf("bfs visited %v nodes", res.Extra["visited"])
	}
	if res.Ops < int(res.Extra["visited"]) {
		t.Fatal("queue ops must be at least the visited count")
	}
}

func TestVacationPerformsReservations(t *testing.T) {
	res, err := Run("vacation", EngineMOD, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Extra["reserves"] == 0 || res.Extra["queries"] == 0 {
		t.Fatalf("vacation mix incomplete: %+v", res.Extra)
	}
}

func TestMemcachedMixRecorded(t *testing.T) {
	res, err := Run("memcached", EngineMOD, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	setsFrac := res.Extra["sets"] / float64(res.Ops)
	if setsFrac < 0.90 || setsFrac > 0.99 {
		t.Fatalf("memcached sets fraction = %.2f, want ≈0.95", setsFrac)
	}
}

func TestFlushTimeDominatesPMDK(t *testing.T) {
	// Fig. 2: PMDK v1.5 spends the majority of execution time flushing.
	res, err := Run("map", EnginePMDK15, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.FlushFrac() < 0.35 {
		t.Fatalf("PMDK flush fraction = %.2f, expected flushing to dominate", res.FlushFrac())
	}
	if res.LogFrac() <= 0 {
		t.Fatal("PMDK log fraction missing")
	}
}
