package trace

import (
	"bytes"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// script builds event traces tersely for checker tests.
type script struct{ r *Recorder }

func (s script) fase(f func())   { s.r.FASEBegin(); f(); s.r.FASEEnd() }
func (s script) commit(f func()) { s.r.CommitBegin(); f(); s.r.CommitEnd() }
func (s script) flushRange(addr pmem.Addr, size uint64) {
	first := uint64(addr) >> pmem.LineShift
	last := (uint64(addr) + size - 1) >> pmem.LineShift
	for ln := first; ln <= last; ln++ {
		s.r.Flush(ln)
	}
}

func check(t *testing.T, r *Recorder, cfg CheckerConfig) []Violation {
	t.Helper()
	return Check(r.Events(), cfg)
}

func TestCleanMODStyleFASEPasses(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		r.Alloc(1024, 128, 1)
		r.Write(1032, 64) // within the new block
		s.flushRange(1032, 64)
		s.commit(func() {
			r.Fence(2)
			r.Write(64, 8) // 8B atomic root pointer swap
			r.Flush(1)
		})
		r.Free(2048, 128)
	})
	r.Fence(1)
	if v := check(t, r, CheckerConfig{}); len(v) != 0 {
		t.Fatalf("clean trace reported violations: %v", v)
	}
}

func TestI1WriteToExistingDataFails(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		r.Write(4096, 8) // no alloc for this address in the FASE
		r.Flush(64)
	})
	r.Fence(1)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I1" {
		t.Fatalf("want one I1 violation, got %v", v)
	}
}

func TestI1ExemptRangeAllowed(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		r.Write(128, 8) // superblock bump pointer
		r.Flush(2)
	})
	r.Fence(1)
	cfg := CheckerConfig{ExemptRanges: [][2]pmem.Addr{{0, 512}}}
	if v := check(t, r, cfg); len(v) != 0 {
		t.Fatalf("exempt write flagged: %v", v)
	}
}

func TestI2UnflushedWriteBeforeFenceFails(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		r.Alloc(1024, 64, 1)
		r.Write(1024, 8)
		// no flush
	})
	r.Fence(0)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I2" {
		t.Fatalf("want one I2 violation, got %v", v)
	}
}

func TestI2WriteAfterFlushFails(t *testing.T) {
	r := NewRecorder()
	r.Alloc(1024, 64, 1)
	r.Write(1024, 8)
	r.Flush(16)
	r.Write(1024, 8) // dirty again, not re-flushed
	r.Fence(1)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I2" {
		t.Fatalf("want one I2 violation, got %v", v)
	}
}

func TestI2MultiLineWriteNeedsEveryLineFlushed(t *testing.T) {
	r := NewRecorder()
	r.Write(0, 200) // lines 0..3
	r.Flush(0)
	r.Flush(1)
	r.Flush(3)
	r.Fence(3)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I2" {
		t.Fatalf("want one I2 violation for line 2, got %v", v)
	}
}

func TestI3LargeCommitWriteFails(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		s.commit(func() {
			r.Fence(0)
			r.Write(64, 16) // too large to be atomic
			r.Flush(1)
		})
	})
	r.Fence(1)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I3" {
		t.Fatalf("want one I3 violation, got %v", v)
	}
}

func TestI3StraddlingCommitWriteFails(t *testing.T) {
	r := NewRecorder()
	s := script{r}
	s.fase(func() {
		s.commit(func() {
			r.Write(60, 8) // crosses the 64-byte... actually the 8B boundary at 64
			r.Flush(0)
			r.Flush(1)
		})
	})
	r.Fence(2)
	v := check(t, r, CheckerConfig{})
	if len(v) != 1 || v[0].Invariant != "I3" {
		t.Fatalf("want one I3 violation, got %v", v)
	}
}

func TestI4ReuseBeforeFenceFails(t *testing.T) {
	r := NewRecorder()
	r.Free(1024, 64)
	r.Alloc(1024, 64, 1) // reused before any fence
	v := check(t, r, CheckerConfig{AllowUnflushedTail: true})
	if len(v) != 1 || v[0].Invariant != "I4" {
		t.Fatalf("want one I4 violation, got %v", v)
	}
}

func TestI4ReuseAfterFenceOK(t *testing.T) {
	r := NewRecorder()
	r.Free(1024, 64)
	r.Fence(0)
	r.Alloc(1024, 64, 1)
	if v := check(t, r, CheckerConfig{AllowUnflushedTail: true}); len(v) != 0 {
		t.Fatalf("reuse after fence flagged: %v", v)
	}
}

func TestUnflushedTailPolicy(t *testing.T) {
	r := NewRecorder()
	r.Write(0, 8)
	if v := check(t, r, CheckerConfig{}); len(v) != 1 {
		t.Fatalf("strict tail: want 1 violation, got %v", v)
	}
	if v := check(t, r, CheckerConfig{AllowUnflushedTail: true}); len(v) != 0 {
		t.Fatalf("lenient tail: want 0 violations, got %v", v)
	}
}

func TestStructuralViolations(t *testing.T) {
	r := NewRecorder()
	r.FASEBegin()
	r.FASEBegin() // nested
	r.CommitEnd() // end without begin
	r.FASEEnd()
	r.FASEEnd() // end without begin
	v := check(t, r, CheckerConfig{AllowUnflushedTail: true})
	if len(v) != 3 {
		t.Fatalf("want 3 structural violations, got %d: %v", len(v), v)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Alloc(12345, 678, 9)
	r.Write(1, 8)
	r.Flush(0)
	r.Fence(1)
	r.FASEBegin()
	r.CommitBegin()
	r.CommitEnd()
	r.FASEEnd()
	r.Free(12345, 678)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadTraceTruncated(t *testing.T) {
	r := NewRecorder()
	r.Fence(1)
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("truncated trace must return an error")
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Fence(1)
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset must clear events")
	}
}
