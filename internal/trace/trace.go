// Package trace implements the automated testing framework of §5.4 of the
// MOD paper. A Recorder captures every PM allocation, write, flush, commit,
// and fence during execution; a Checker then scans the trace and verifies
// the invariants behind the paper's correctness argument (§5.2):
//
//	I1: inside a FASE, every PM write outside the commit step targets
//	    memory allocated within that same FASE (out-of-place updates only).
//	I2: every PM write is flushed before the next fence (no write left
//	    behind in the volatile cache at an ordering point).
//	I3: writes inside the commit step are at most 8 bytes and 8-byte
//	    aligned, and therefore atomic with respect to failure.
//	I4: a freed block is not reused for a new allocation before a
//	    subsequent fence (reclamation quarantine; see DESIGN.md §4).
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"github.com/mod-ds/mod/internal/pmem"
)

// Kind identifies a trace event type.
type Kind uint8

// Event kinds, in the order they were defined by the testing framework.
const (
	KindAlloc Kind = iota + 1
	KindFree
	KindWrite
	KindFlush
	KindFence
	KindFASEBegin
	KindFASEEnd
	KindCommitBegin
	KindCommitEnd
)

// String returns the event kind name.
func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	case KindWrite:
		return "write"
	case KindFlush:
		return "flush"
	case KindFence:
		return "fence"
	case KindFASEBegin:
		return "fase-begin"
	case KindFASEEnd:
		return "fase-end"
	case KindCommitBegin:
		return "commit-begin"
	case KindCommitEnd:
		return "commit-end"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded PM event. Addr/Size carry the payload for allocs,
// frees, and writes; Addr carries the line index for flushes and the
// retired-flush count for fences.
type Event struct {
	Kind Kind
	Addr pmem.Addr
	Size uint64
	Tag  uint8
}

// Recorder captures events. It implements pmem.Tracer so it can be plugged
// directly into a Device, and it receives allocator and FASE events through
// the same interface. Appends are serialized, so recording a concurrent
// run is race-free; note, however, that the checker's invariants are
// stated over single-threaded FASE streams, and interleaved FASEs from
// multiple goroutines will generally report spurious violations.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

var _ pmem.Tracer = (*Recorder)(nil)

// Alloc records a block allocation (addr is the block start including any
// allocator header; size is the full block size).
func (r *Recorder) Alloc(addr pmem.Addr, size uint64, tag uint8) {
	r.record(Event{Kind: KindAlloc, Addr: addr, Size: size, Tag: tag})
}

// Free records a block release.
func (r *Recorder) Free(addr pmem.Addr, size uint64) {
	r.record(Event{Kind: KindFree, Addr: addr, Size: size})
}

// Write records a PM store.
func (r *Recorder) Write(addr pmem.Addr, size int) {
	r.record(Event{Kind: KindWrite, Addr: addr, Size: uint64(size)})
}

// Flush records a clwb of a line index.
func (r *Recorder) Flush(line uint64) {
	r.record(Event{Kind: KindFlush, Addr: pmem.Addr(line)})
}

// Fence records an sfence retiring n flushes.
func (r *Recorder) Fence(n int) {
	r.record(Event{Kind: KindFence, Size: uint64(n)})
}

// FASEBegin marks the start of a failure-atomic section.
func (r *Recorder) FASEBegin() { r.record(Event{Kind: KindFASEBegin}) }

// FASEEnd marks the end of a failure-atomic section.
func (r *Recorder) FASEEnd() { r.record(Event{Kind: KindFASEEnd}) }

// CommitBegin marks the start of the commit step.
func (r *Recorder) CommitBegin() { r.record(Event{Kind: KindCommitBegin}) }

// CommitEnd marks the end of the commit step.
func (r *Recorder) CommitEnd() { r.record(Event{Kind: KindCommitEnd}) }

// Events returns the recorded events. The slice is owned by the recorder.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
}

// eventSize is the on-disk record size: kind(1) + tag(1) + addr(8) + size(8).
const eventSize = 18

// WriteTo encodes the trace in a compact binary format.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, eventSize)
	var n int64
	for _, e := range r.events {
		buf[0] = byte(e.Kind)
		buf[1] = e.Tag
		binary.LittleEndian.PutUint64(buf[2:], uint64(e.Addr))
		binary.LittleEndian.PutUint64(buf[10:], e.Size)
		m, err := w.Write(buf)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadTrace decodes a binary trace written by WriteTo.
func ReadTrace(rd io.Reader) ([]Event, error) {
	var events []Event
	buf := make([]byte, eventSize)
	for {
		_, err := io.ReadFull(rd, buf)
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: truncated event record: %w", err)
		}
		events = append(events, Event{
			Kind: Kind(buf[0]),
			Tag:  buf[1],
			Addr: pmem.Addr(binary.LittleEndian.Uint64(buf[2:])),
			Size: binary.LittleEndian.Uint64(buf[10:]),
		})
	}
}
