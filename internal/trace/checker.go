package trace

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
)

// Violation describes one invariant breach found in a trace.
type Violation struct {
	Invariant string // "I1".."I4"
	Index     int    // index of the offending event
	Event     Event
	Detail    string
}

// Error renders the violation for reports.
func (v Violation) Error() string {
	return fmt.Sprintf("%s at event %d (%s addr=%#x size=%d): %s",
		v.Invariant, v.Index, v.Event.Kind, uint64(v.Event.Addr), v.Event.Size, v.Detail)
}

// CheckerConfig tunes the invariant checker.
type CheckerConfig struct {
	// ExemptRanges lists [start, end) regions whose writes are exempt from
	// I1, such as the allocator superblock whose bump pointer is updated
	// in place by design (its recovery path tolerates lost updates).
	ExemptRanges [][2]pmem.Addr
	// AllowUnflushedTail permits writes after the final fence of the trace
	// to remain unflushed (a run normally ends mid-epoch).
	AllowUnflushedTail bool
}

type interval struct{ start, end pmem.Addr }

// Check scans the events and returns all invariant violations found.
func Check(events []Event, cfg CheckerConfig) []Violation {
	var violations []Violation
	report := func(inv string, i int, detail string) {
		violations = append(violations, Violation{Invariant: inv, Index: i, Event: events[i], Detail: detail})
	}

	exempt := func(addr pmem.Addr, size uint64) bool {
		for _, r := range cfg.ExemptRanges {
			if addr >= r[0] && addr+pmem.Addr(size) <= r[1] {
				return true
			}
		}
		return false
	}

	var (
		inFASE, inCommit bool
		faseAllocs       []interval         // blocks allocated in the current FASE
		pending          = map[uint64]int{} // line -> event index of unflushed write
		freedSinceFence  []interval         // blocks freed since the last fence
	)

	inFASEAlloc := func(addr pmem.Addr, size uint64) bool {
		for _, iv := range faseAllocs {
			if addr >= iv.start && addr+pmem.Addr(size) <= iv.end {
				return true
			}
		}
		return false
	}

	for i, e := range events {
		switch e.Kind {
		case KindAlloc:
			end := e.Addr + pmem.Addr(e.Size)
			for _, f := range freedSinceFence {
				if e.Addr < f.end && f.start < end {
					report("I4", i, fmt.Sprintf("allocation overlaps block [%#x,%#x) freed since the last fence", uint64(f.start), uint64(f.end)))
					break
				}
			}
			if inFASE {
				faseAllocs = append(faseAllocs, interval{e.Addr, end})
			}

		case KindFree:
			freedSinceFence = append(freedSinceFence, interval{e.Addr, e.Addr + pmem.Addr(e.Size)})

		case KindWrite:
			if inFASE {
				if inCommit {
					// Exempt regions (allocator superblock, commit
					// transaction log) have their own atomicity story.
					if !exempt(e.Addr, e.Size) {
						if e.Size > 8 {
							report("I3", i, fmt.Sprintf("commit write of %d bytes is not failure-atomic", e.Size))
						} else if uint64(e.Addr)%8+e.Size > 8 {
							report("I3", i, "commit write crosses an 8-byte boundary")
						}
					}
				} else if !inFASEAlloc(e.Addr, e.Size) && !exempt(e.Addr, e.Size) {
					report("I1", i, "write to PM not allocated within this FASE and outside commit")
				}
			}
			first := uint64(e.Addr) >> pmem.LineShift
			last := (uint64(e.Addr) + e.Size - 1) >> pmem.LineShift
			for ln := first; ln <= last; ln++ {
				pending[ln] = i
			}

		case KindFlush:
			delete(pending, uint64(e.Addr))

		case KindFence:
			for ln, wi := range pending {
				violations = append(violations, Violation{
					Invariant: "I2", Index: i, Event: e,
					Detail: fmt.Sprintf("line %#x written at event %d was not flushed before this fence", ln, wi),
				})
			}
			clear(pending)
			freedSinceFence = freedSinceFence[:0]

		case KindFASEBegin:
			if inFASE {
				report("I1", i, "nested FASE begin")
			}
			inFASE = true
			faseAllocs = faseAllocs[:0]

		case KindFASEEnd:
			if !inFASE {
				report("I1", i, "FASE end without begin")
			}
			if inCommit {
				report("I3", i, "FASE ended inside commit step")
			}
			inFASE = false

		case KindCommitBegin:
			if !inFASE {
				report("I3", i, "commit outside FASE")
			}
			inCommit = true

		case KindCommitEnd:
			if !inCommit {
				report("I3", i, "commit end without begin")
			}
			inCommit = false
		}
	}

	if !cfg.AllowUnflushedTail && len(pending) > 0 {
		for ln, wi := range pending {
			violations = append(violations, Violation{
				Invariant: "I2", Index: len(events) - 1, Event: Event{Kind: KindFence},
				Detail: fmt.Sprintf("line %#x written at event %d never flushed by end of trace", ln, wi),
			})
		}
	}
	return violations
}
