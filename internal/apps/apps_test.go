package apps

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmdkds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

func newMODStore(t testing.TB) *core.Store {
	t.Helper()
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	db, _, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db.Store()
}

func newPMDKTX(t testing.TB) *stm.TX {
	t.Helper()
	dev := pmem.New(pmem.DefaultConfig(64 << 20))
	h := alloc.Format(dev)
	return stm.New(dev, h, stm.ModeV15)
}

func reservationSystems(t *testing.T) map[string]Reservations {
	s := newMODStore(t)
	mod, err := NewMODReservations(s)
	if err != nil {
		t.Fatal(err)
	}
	pmdk, err := NewPMDKReservations(newPMDKTX(t), 1024)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Reservations{"mod": mod, "pmdk": pmdk}
}

func TestVacationReserveCancelBothEngines(t *testing.T) {
	for name, r := range reservationSystems(t) {
		t.Run(name, func(t *testing.T) {
			r.AddResource(Cars, 1, 2)
			r.AddResource(Flights, 9, 1)

			if q, ok := r.Query(Cars, 1); !ok || q != 2 {
				t.Fatalf("Query = %d,%v", q, ok)
			}
			if !r.Reserve(Cars, 1, 100) {
				t.Fatal("reserve failed with availability")
			}
			if q, _ := r.Query(Cars, 1); q != 1 {
				t.Fatalf("quantity after reserve = %d, want 1", q)
			}
			if kind, res, ok := r.Booking(100); !ok || kind != Cars || res != 1 {
				t.Fatalf("Booking = %v,%d,%v", kind, res, ok)
			}
			// Customer already booked: refuse.
			if r.Reserve(Flights, 9, 100) {
				t.Fatal("double booking allowed")
			}
			// Exhaust the resource.
			if !r.Reserve(Cars, 1, 101) {
				t.Fatal("second unit not reservable")
			}
			if r.Reserve(Cars, 1, 102) {
				t.Fatal("overbooked")
			}
			if !r.Cancel(100) {
				t.Fatal("cancel failed")
			}
			if q, _ := r.Query(Cars, 1); q != 1 {
				t.Fatalf("quantity after cancel = %d, want 1", q)
			}
			if r.Cancel(100) {
				t.Fatal("double cancel succeeded")
			}
			if _, _, ok := r.Booking(100); ok {
				t.Fatal("booking survived cancel")
			}
		})
	}
}

func TestVacationUnknownResource(t *testing.T) {
	for name, r := range reservationSystems(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok := r.Query(Rooms, 404); ok {
				t.Fatal("unknown resource found")
			}
			if r.Reserve(Rooms, 404, 1) {
				t.Fatal("reserved unknown resource")
			}
		})
	}
}

func TestMODVacationCrashAtomicity(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	db, _, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewMODReservations(db.Store())
	if err != nil {
		t.Fatal(err)
	}
	r.AddResource(Cars, 1, 5)
	if !r.Reserve(Cars, 1, 7) {
		t.Fatal("reserve failed")
	}
	db.Sync()
	imgs := db.CrashImages(pmem.CrashFencedOnly, 1)

	db2, _, err := core.Open(pmem.DefaultConfig(64<<20), core.WithExistingImages(imgs))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	r2, err := NewMODReservations(db2.Store())
	if err != nil {
		t.Fatal(err)
	}
	q, ok := r2.Query(Cars, 1)
	if !ok || q != 4 {
		t.Fatalf("recovered quantity = %d,%v, want 4", q, ok)
	}
	kind, res, ok := r2.Booking(7)
	if !ok || kind != Cars || res != 1 {
		t.Fatal("recovered booking inconsistent with resource decrement")
	}
}

func cacheBackends(t *testing.T) map[string]KV {
	s := newMODStore(t)
	modMap, err := s.Map("cache")
	if err != nil {
		t.Fatal(err)
	}
	pmdkMap, err := pmdkds.NewHashmap(newPMDKTX(t), "cache", 1024)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]KV{"mod": modMap, "pmdk": pmdkMap}
}

func TestCacheOverBothEngines(t *testing.T) {
	for name, kv := range cacheBackends(t) {
		t.Run(name, func(t *testing.T) {
			testCache(t, NewCache(kv))
		})
	}
}

func testCache(t *testing.T, c *Cache) {
	c.Set("a", []byte("1"))
	c.Set("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q,%v", v, ok)
	}
	if _, ok := c.Get("zzz"); ok {
		t.Fatal("miss reported as hit")
	}
	if !c.Delete("a") || c.Delete("a") {
		t.Fatal("delete semantics wrong")
	}
	if c.Items() != 1 {
		t.Fatalf("Items = %d, want 1", c.Items())
	}
	gets, sets, hits, dels := c.Stats()
	if gets != 2 || sets != 2 || hits != 1 || dels != 2 {
		t.Fatalf("stats = %d,%d,%d,%d", gets, sets, hits, dels)
	}
}

func TestCacheTextProtocol(t *testing.T) {
	s := newMODStore(t)
	m, _ := s.Map("cache")
	c := NewCache(m)
	in := strings.Join([]string{
		"set hello world",
		"get hello",
		"get missing",
		"delete hello",
		"delete hello",
		"stats",
		"bogus",
		"quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader(in), &out}
	if err := c.ServeConn(rw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"STORED", "VALUE world", "MISS", "DELETED", "NOT_FOUND", "STAT items 0", "ERROR unknown"} {
		if !strings.Contains(got, want) {
			t.Fatalf("protocol output missing %q:\n%s", want, got)
		}
	}
}
