// Package apps contains the two full applications of the paper's
// evaluation (Table 2): vacation, a travel reservation system with four
// recoverable maps composed under one manager object, and a
// memcached-style key-value cache backed by a single recoverable map.
// Each application runs on either the MOD engine or the PMDK-style STM
// engine so the harness can compare them directly.
package apps

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmdkds"
	"github.com/mod-ds/mod/internal/stm"
)

// ResourceKind identifies one of vacation's three resource tables.
type ResourceKind int

// The three bookable resource kinds of the vacation benchmark.
const (
	Cars ResourceKind = iota
	Flights
	Rooms
	numKinds
)

// String returns the table name for the kind.
func (k ResourceKind) String() string {
	switch k {
	case Cars:
		return "cars"
	case Flights:
		return "flights"
	case Rooms:
		return "rooms"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Reservations is the vacation application interface: a manager over
// three resource tables plus a customer table. Reserve and Cancel update
// two tables failure-atomically — the composition case that motivates
// CommitSiblings (§6.2).
type Reservations interface {
	// AddResource registers qty units of a resource (setup phase).
	AddResource(kind ResourceKind, resID uint64, qty uint32)
	// Query returns the remaining quantity of a resource.
	Query(kind ResourceKind, resID uint64) (uint32, bool)
	// Reserve books one unit for a customer, atomically decrementing the
	// resource and recording the booking. It fails if no units remain or
	// the customer already holds a booking.
	Reserve(kind ResourceKind, resID, custID uint64) bool
	// Cancel atomically releases a customer's booking.
	Cancel(custID uint64) bool
	// Booking returns a customer's current booking.
	Booking(custID uint64) (ResourceKind, uint64, bool)
}

func resKey(kind ResourceKind, resID uint64) []byte {
	b := make([]byte, 9)
	b[0] = byte(kind)
	binary.LittleEndian.PutUint64(b[1:], resID)
	return b
}

func custKey(custID uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, custID)
	return b
}

func qtyVal(q uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, q)
	return b
}

func bookingVal(kind ResourceKind, resID uint64) []byte {
	return resKey(kind, resID)
}

// MODReservations runs vacation on MOD datastructures: four maps held by
// a parent manager object, with two-map FASEs committed by CommitSiblings.
type MODReservations struct {
	store     *core.Store
	manager   *core.Parent
	resources [numKinds]*core.Map
	customers *core.Map
}

// NewMODReservations binds (creating on first use) the manager and its
// four maps.
func NewMODReservations(store *core.Store) (*MODReservations, error) {
	manager, err := store.Parent("vacation-manager", "cars", "flights", "rooms", "customers")
	if err != nil {
		return nil, err
	}
	r := &MODReservations{store: store, manager: manager}
	for kind := Cars; kind < numKinds; kind++ {
		m, err := manager.Map(kind.String())
		if err != nil {
			return nil, err
		}
		r.resources[kind] = m
	}
	if r.customers, err = manager.Map("customers"); err != nil {
		return nil, err
	}
	return r, nil
}

// AddResource registers qty units of a resource.
func (r *MODReservations) AddResource(kind ResourceKind, resID uint64, qty uint32) {
	r.resources[kind].Set(resKey(kind, resID), qtyVal(qty))
}

// Query returns the remaining quantity of a resource.
func (r *MODReservations) Query(kind ResourceKind, resID uint64) (uint32, bool) {
	v, ok := r.resources[kind].Get(resKey(kind, resID))
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(v), true
}

// Reserve books one unit atomically across the resource and customer maps.
func (r *MODReservations) Reserve(kind ResourceKind, resID, custID uint64) bool {
	qty, ok := r.Query(kind, resID)
	if !ok || qty == 0 {
		return false
	}
	if _, booked := r.customers.Get(custKey(custID)); booked {
		return false
	}
	s := r.store
	s.BeginFASE()
	resShadow, _ := r.resources[kind].PureSet(resKey(kind, resID), qtyVal(qty-1))
	custShadow, _ := r.customers.PureSet(custKey(custID), bookingVal(kind, resID))
	s.CommitSiblings(r.manager,
		core.Update{DS: r.resources[kind], Shadows: []core.Version{resShadow}},
		core.Update{DS: r.customers, Shadows: []core.Version{custShadow}},
	)
	s.EndFASE()
	return true
}

// Cancel atomically releases a customer's booking.
func (r *MODReservations) Cancel(custID uint64) bool {
	kind, resID, ok := r.Booking(custID)
	if !ok {
		return false
	}
	qty, _ := r.Query(kind, resID)
	s := r.store
	s.BeginFASE()
	resShadow, _ := r.resources[kind].PureSet(resKey(kind, resID), qtyVal(qty+1))
	custShadow, _ := r.customers.PureDelete(custKey(custID))
	s.CommitSiblings(r.manager,
		core.Update{DS: r.resources[kind], Shadows: []core.Version{resShadow}},
		core.Update{DS: r.customers, Shadows: []core.Version{custShadow}},
	)
	s.EndFASE()
	return true
}

// Booking returns a customer's current booking.
func (r *MODReservations) Booking(custID uint64) (ResourceKind, uint64, bool) {
	v, ok := r.customers.Get(custKey(custID))
	if !ok || len(v) != 9 {
		return 0, 0, false
	}
	return ResourceKind(v[0]), binary.LittleEndian.Uint64(v[1:]), true
}

// PMDKReservations runs vacation on the STM baseline: four transactional
// hashmaps, with two-map updates sharing a single transaction.
type PMDKReservations struct {
	tx        *stm.TX
	resources [numKinds]*pmdkds.Hashmap
	customers *pmdkds.Hashmap
}

// NewPMDKReservations binds (creating on first use) the four hashmaps.
func NewPMDKReservations(tx *stm.TX, buckets uint64) (*PMDKReservations, error) {
	r := &PMDKReservations{tx: tx}
	for kind := Cars; kind < numKinds; kind++ {
		m, err := pmdkds.NewHashmap(tx, "vacation-"+kind.String(), buckets)
		if err != nil {
			return nil, err
		}
		r.resources[kind] = m
	}
	var err error
	if r.customers, err = pmdkds.NewHashmap(tx, "vacation-customers", buckets); err != nil {
		return nil, err
	}
	return r, nil
}

// AddResource registers qty units of a resource.
func (r *PMDKReservations) AddResource(kind ResourceKind, resID uint64, qty uint32) {
	r.resources[kind].Set(resKey(kind, resID), qtyVal(qty))
}

// Query returns the remaining quantity of a resource.
func (r *PMDKReservations) Query(kind ResourceKind, resID uint64) (uint32, bool) {
	v, ok := r.resources[kind].Get(resKey(kind, resID))
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(v), true
}

// Reserve books one unit inside one transaction spanning both maps.
func (r *PMDKReservations) Reserve(kind ResourceKind, resID, custID uint64) bool {
	qty, ok := r.Query(kind, resID)
	if !ok || qty == 0 {
		return false
	}
	if _, booked := r.customers.Get(custKey(custID)); booked {
		return false
	}
	r.tx.Begin()
	r.resources[kind].SetInTx(resKey(kind, resID), qtyVal(qty-1))
	r.customers.SetInTx(custKey(custID), bookingVal(kind, resID))
	r.tx.Commit()
	return true
}

// Cancel releases a booking inside one transaction spanning both maps.
func (r *PMDKReservations) Cancel(custID uint64) bool {
	kind, resID, ok := r.Booking(custID)
	if !ok {
		return false
	}
	qty, _ := r.Query(kind, resID)
	r.tx.Begin()
	r.resources[kind].SetInTx(resKey(kind, resID), qtyVal(qty+1))
	r.customers.DeleteInTx(custKey(custID))
	r.tx.Commit()
	return true
}

// Booking returns a customer's current booking.
func (r *PMDKReservations) Booking(custID uint64) (ResourceKind, uint64, bool) {
	v, ok := r.customers.Get(custKey(custID))
	if !ok || len(v) != 9 {
		return 0, 0, false
	}
	return ResourceKind(v[0]), binary.LittleEndian.Uint64(v[1:]), true
}

var (
	_ Reservations = (*MODReservations)(nil)
	_ Reservations = (*PMDKReservations)(nil)
)
