package apps

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// KV is the recoverable map interface the cache runs on. Both *core.Map
// (MOD) and *pmdkds.Hashmap (PMDK baseline) satisfy it; each Set/Delete
// is one failure-atomic section, so the cache is crash-consistent for
// free (§6.2: "memcached relies on a single recoverable map to implement
// its cache and FASEs involve a single set operation").
type KV interface {
	Set(key, val []byte) bool
	Get(key []byte) ([]byte, bool)
	Delete(key []byte) bool
	Len() uint64
}

// Cache is a memcached-style recoverable key-value cache.
type Cache struct {
	kv KV

	// Stats mirror memcached's counters.
	gets, sets, hits, deletes uint64
}

// NewCache wraps a recoverable map as a cache.
func NewCache(kv KV) *Cache { return &Cache{kv: kv} }

// Set stores val under key (95% of the paper's memcached mix).
func (c *Cache) Set(key string, val []byte) {
	c.sets++
	c.kv.Set([]byte(key), val)
}

// Get returns the value stored under key.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.gets++
	v, ok := c.kv.Get([]byte(key))
	if ok {
		c.hits++
	}
	return v, ok
}

// Delete removes key.
func (c *Cache) Delete(key string) bool {
	c.deletes++
	return c.kv.Delete([]byte(key))
}

// Items returns the number of cached items.
func (c *Cache) Items() uint64 { return c.kv.Len() }

// Stats returns (gets, sets, hits, deletes).
func (c *Cache) Stats() (gets, sets, hits, deletes uint64) {
	return c.gets, c.sets, c.hits, c.deletes
}

// ServeConn speaks a memcached-flavored text protocol on rw until the
// client quits or the stream ends:
//
//	set <key> <value>\n   -> STORED
//	get <key>\n           -> VALUE <value> | MISS
//	delete <key>\n        -> DELETED | NOT_FOUND
//	stats\n               -> STAT lines
//	quit\n                -> closes the session
//
// The examples/kvcache binary serves this over TCP.
func (c *Cache) ServeConn(rw io.ReadWriter) error {
	sc := bufio.NewScanner(rw)
	w := bufio.NewWriter(rw)
	defer w.Flush()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		switch fields[0] {
		case "set":
			if len(fields) != 3 {
				fmt.Fprintln(w, "ERROR usage: set <key> <value>")
				break
			}
			c.Set(fields[1], []byte(fields[2]))
			fmt.Fprintln(w, "STORED")
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERROR usage: get <key>")
				break
			}
			if v, ok := c.Get(fields[1]); ok {
				fmt.Fprintf(w, "VALUE %s\n", v)
			} else {
				fmt.Fprintln(w, "MISS")
			}
		case "delete":
			if len(fields) != 2 {
				fmt.Fprintln(w, "ERROR usage: delete <key>")
				break
			}
			if c.Delete(fields[1]) {
				fmt.Fprintln(w, "DELETED")
			} else {
				fmt.Fprintln(w, "NOT_FOUND")
			}
		case "stats":
			gets, sets, hits, dels := c.Stats()
			fmt.Fprintf(w, "STAT items %d\nSTAT gets %d\nSTAT sets %d\nSTAT hits %d\nSTAT deletes %d\n",
				c.Items(), gets, sets, hits, dels)
		case "quit":
			return nil
		default:
			fmt.Fprintf(w, "ERROR unknown command %q\n", fields[0])
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}
