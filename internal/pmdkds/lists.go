package pmdkds

import (
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Stack is a transactional linked stack of 8-byte elements (the PMDK
// example style: in-place head updates under undo logging).
//
// Layout:
//
//	header: [head u64][count u64]
//	node:   [next u64][val u64]
type Stack struct {
	tx  *stm.TX
	hdr pmem.Addr
}

const listHdrSize = 16

// NewStack creates (or reopens) a transactional stack under a named root.
func NewStack(tx *stm.TX, name string) (*Stack, error) {
	hdr, err := bindListHeader(tx, name, listHdrSize)
	if err != nil {
		return nil, err
	}
	return &Stack{tx: tx, hdr: hdr}, nil
}

// bindListHeader finds or creates a zeroed header block under a root.
func bindListHeader(tx *stm.TX, name string, size int) (pmem.Addr, error) {
	heap := tx.Heap()
	dev := tx.Device()
	slot, err := heap.RootSlot(name)
	if err != nil {
		return pmem.Nil, err
	}
	if root := heap.Root(slot); root != pmem.Nil {
		return root, nil
	}
	hdr := heap.Alloc(size, 0)
	dev.Zero(hdr, size)
	dev.FlushRange(hdr, size)
	heap.SetRoot(slot, hdr)
	dev.Sfence()
	return hdr, nil
}

// Len returns the number of elements.
func (s *Stack) Len() uint64 { return s.tx.Device().ReadU64(s.hdr + 8) }

// Push adds val on top in one transaction.
func (s *Stack) Push(val uint64) {
	tx := s.tx
	dev := tx.Device()
	head := dev.ReadU64(s.hdr)
	n := s.Len()
	tx.Begin()
	tx.Add(s.hdr, listHdrSize) // head and count share one range
	node := tx.Alloc(16, 0)
	tx.WriteU64(node, head)
	tx.WriteU64(node+8, val)
	tx.WriteU64(s.hdr, uint64(node))
	tx.WriteU64(s.hdr+8, n+1)
	tx.Commit()
}

// Pop removes and returns the top element in one transaction.
func (s *Stack) Pop() (uint64, bool) {
	tx := s.tx
	dev := tx.Device()
	head := pmem.Addr(dev.ReadU64(s.hdr))
	if head == pmem.Nil {
		return 0, false
	}
	next := dev.ReadU64(head)
	val := dev.ReadU64(head + 8)
	tx.Begin()
	tx.Add(s.hdr, listHdrSize)
	tx.WriteU64(s.hdr, next)
	tx.WriteU64(s.hdr+8, s.Len()-1)
	tx.Free(head)
	tx.Commit()
	return val, true
}

// Peek returns the top element without modifying the stack.
func (s *Stack) Peek() (uint64, bool) {
	dev := s.tx.Device()
	head := pmem.Addr(dev.ReadU64(s.hdr))
	if head == pmem.Nil {
		return 0, false
	}
	return dev.ReadU64(head + 8), true
}

// Queue is a transactional linked FIFO queue of 8-byte elements.
//
// Layout:
//
//	header: [head u64][tail u64][count u64]
//	node:   [next u64][val u64]
type Queue struct {
	tx  *stm.TX
	hdr pmem.Addr
}

const queueHdrSize = 24

// NewQueue creates (or reopens) a transactional queue under a named root.
func NewQueue(tx *stm.TX, name string) (*Queue, error) {
	hdr, err := bindListHeader(tx, name, queueHdrSize)
	if err != nil {
		return nil, err
	}
	return &Queue{tx: tx, hdr: hdr}, nil
}

// Len returns the number of elements.
func (q *Queue) Len() uint64 { return q.tx.Device().ReadU64(q.hdr + 16) }

// Enqueue appends val at the tail in one transaction.
func (q *Queue) Enqueue(val uint64) {
	tx := q.tx
	dev := tx.Device()
	tail := pmem.Addr(dev.ReadU64(q.hdr + 8))
	n := q.Len()
	tx.Begin()
	if tail == pmem.Nil {
		tx.Add(q.hdr, queueHdrSize) // head, tail, count
	} else {
		tx.Add(tail, 8) // predecessor's next pointer
		tx.Add(q.hdr+8, 16)
	}
	node := tx.Alloc(16, 0)
	tx.WriteU64(node, 0)
	tx.WriteU64(node+8, val)
	if tail == pmem.Nil {
		tx.WriteU64(q.hdr, uint64(node))
	} else {
		tx.WriteU64(tail, uint64(node))
	}
	tx.WriteU64(q.hdr+8, uint64(node))
	tx.WriteU64(q.hdr+16, n+1)
	tx.Commit()
}

// Dequeue removes and returns the head element in one transaction.
func (q *Queue) Dequeue() (uint64, bool) {
	tx := q.tx
	dev := tx.Device()
	head := pmem.Addr(dev.ReadU64(q.hdr))
	if head == pmem.Nil {
		return 0, false
	}
	next := dev.ReadU64(head)
	val := dev.ReadU64(head + 8)
	tx.Begin()
	tx.Add(q.hdr, queueHdrSize)
	tx.WriteU64(q.hdr, next)
	if next == 0 {
		tx.WriteU64(q.hdr+8, 0) // queue became empty
	}
	tx.WriteU64(q.hdr+16, q.Len()-1)
	tx.Free(head)
	tx.Commit()
	return val, true
}

// Peek returns the head element without modifying the queue.
func (q *Queue) Peek() (uint64, bool) {
	dev := q.tx.Device()
	head := pmem.Addr(dev.ReadU64(q.hdr))
	if head == pmem.Nil {
		return 0, false
	}
	return dev.ReadU64(head + 8), true
}
