package pmdkds

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

func newTestTX(t testing.TB, mode stm.Mode) *stm.TX {
	t.Helper()
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := alloc.Format(dev)
	return stm.New(dev, h, mode)
}

func key64(i uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func TestHashmapSetGetDelete(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	m, err := NewHashmap(tx, "m", 1024)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000 // force chains (3000 keys, 1024 buckets)
	for i := uint64(0); i < n; i++ {
		if m.Set(key64(i), key64(i*7)) {
			t.Fatalf("fresh key %d reported replaced", i)
		}
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		got, ok := m.Get(key64(i))
		if !ok || binary.LittleEndian.Uint64(got) != i*7 {
			t.Fatalf("key %d wrong (ok=%v)", i, ok)
		}
	}
	if !m.Set(key64(10), key64(999)) {
		t.Fatal("replace not reported")
	}
	got, _ := m.Get(key64(10))
	if binary.LittleEndian.Uint64(got) != 999 {
		t.Fatal("replace lost")
	}
	if m.Len() != n {
		t.Fatal("replace changed count")
	}
	for i := uint64(0); i < n; i += 2 {
		if !m.Delete(key64(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if m.Len() != n/2 {
		t.Fatalf("Len after deletes = %d, want %d", m.Len(), n/2)
	}
	if m.Delete(key64(0)) {
		t.Fatal("double delete reported success")
	}
}

func TestHashmapRange(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	m, _ := NewHashmap(tx, "m", 64)
	want := map[uint64]bool{}
	for i := uint64(0); i < 100; i++ {
		m.Set(key64(i), key64(i))
		want[i] = true
	}
	count := 0
	m.Range(func(k, v []byte) bool {
		if !want[binary.LittleEndian.Uint64(k)] {
			t.Fatal("unexpected key in Range")
		}
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("Range visited %d, want 100", count)
	}
}

func TestHashmapReopen(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	dev := pmem.New(cfg)
	h := alloc.Format(dev)
	tx := stm.New(dev, h, stm.ModeV15)
	m, _ := NewHashmap(tx, "m", 256)
	m.Set([]byte("k"), []byte("v"))

	m2, err := NewHashmap(tx, "m", 256)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := m2.Get([]byte("k"))
	if !ok || string(got) != "v" {
		t.Fatal("reopened hashmap lost data")
	}
}

func TestHashmapCrashRecovery(t *testing.T) {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := alloc.Format(dev)
	tx := stm.New(dev, h, stm.ModeV15)
	m, _ := NewHashmap(tx, "m", 256)
	for i := uint64(0); i < 50; i++ {
		m.Set(key64(i), key64(i))
	}
	// Interrupt a transaction between the snapshot fence and commit.
	old, cell := m.findEntry(key64(7))
	_ = old
	tx.Begin()
	tx.Add(cell, 8)
	tx.WriteU64(cell, 0xdead) // tear the chain
	dev.FlushRange(cell, 8)
	img := dev.CrashImage(pmem.CrashAllInflight, 3)

	dev2 := pmem.NewFromImage(pmem.DefaultConfig(64<<20), img)
	if !stm.Recover(dev2, tx.LogAddr()) {
		t.Fatal("recovery did not roll back")
	}
	h2, err := alloc.Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := stm.Attach(dev2, h2, stm.ModeV15, tx.LogAddr(), stm.DefaultLogSize)
	m2, _ := NewHashmap(tx2, "m", 256)
	for i := uint64(0); i < 50; i++ {
		if _, ok := m2.Get(key64(i)); !ok {
			t.Fatalf("key %d lost after rollback", i)
		}
	}
}

func TestHashset(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	s, _ := NewHashset(tx, "s", 256)
	if s.Insert(key64(1)) {
		t.Fatal("fresh insert reported existing")
	}
	if !s.Insert(key64(1)) {
		t.Fatal("duplicate insert not reported")
	}
	if !s.Contains(key64(1)) || s.Contains(key64(2)) {
		t.Fatal("membership wrong")
	}
	if !s.Delete(key64(1)) || s.Contains(key64(1)) {
		t.Fatal("delete failed")
	}
}

func TestVectorPushUpdateSwapGrow(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	v, err := NewVector(tx, "v")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500 // crosses several growth boundaries from cap 64
	for i := uint64(0); i < n; i++ {
		v.Push(i)
	}
	if v.Len() != n {
		t.Fatalf("Len = %d, want %d", v.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v.Get(i) != i {
			t.Fatalf("Get(%d) = %d", i, v.Get(i))
		}
	}
	v.Update(123, 9999)
	if v.Get(123) != 9999 {
		t.Fatal("update lost")
	}
	v.Swap(0, 499)
	if v.Get(0) != 499 || v.Get(499) != 0 {
		t.Fatal("swap failed")
	}
}

func TestVectorOutOfRangePanics(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	v, _ := NewVector(tx, "v")
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range get should panic")
		}
	}()
	v.Get(0)
}

func TestStackOrderAndReuse(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	s, _ := NewStack(tx, "s")
	for i := uint64(1); i <= 10; i++ {
		s.Push(i)
	}
	if v, ok := s.Peek(); !ok || v != 10 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for want := uint64(10); want >= 1; want-- {
		v, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = %d,%v, want %d", v, ok, want)
		}
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("empty pop succeeded")
	}
}

func TestQueueFIFO(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	q, _ := NewQueue(tx, "q")
	for i := uint64(1); i <= 10; i++ {
		q.Enqueue(i)
	}
	if v, ok := q.Peek(); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	for want := uint64(1); want <= 10; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = %d,%v, want %d", v, ok, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("queue not empty")
	}
	// Refill after emptying exercises the tail-reset path.
	q.Enqueue(77)
	if v, ok := q.Dequeue(); !ok || v != 77 {
		t.Fatalf("post-empty Dequeue = %d,%v", v, ok)
	}
}

func TestMapFencesPerOpInPaperRange(t *testing.T) {
	// Fig. 10: PMDK v1.5 map insert uses a handful of ordering points.
	tx := newTestTX(t, stm.ModeV15)
	m, _ := NewHashmap(tx, "m", 4096)
	dev := tx.Device()
	var total uint64
	const ops = 200
	for i := uint64(0); i < ops; i++ {
		before := dev.Stats()
		m.Set(key64(i), key64(i))
		total += dev.Stats().Sub(before).Fences
	}
	avg := float64(total) / ops
	if avg < 3 || avg > 11 {
		t.Fatalf("v1.5 fences per insert = %.1f, want 3-11 (Fig. 10)", avg)
	}
}

func TestQuickHashmapAgainstModel(t *testing.T) {
	tx := newTestTX(t, stm.ModeV15)
	m, _ := NewHashmap(tx, "m", 64)
	model := map[uint64]uint64{}
	type op struct {
		Key uint8
		Val uint16
		Del bool
	}
	f := func(ops []op) bool {
		for _, o := range ops {
			k := uint64(o.Key)
			if o.Del {
				_, had := model[k]
				if m.Delete(key64(k)) != had {
					return false
				}
				delete(model, k)
			} else {
				_, had := model[k]
				if m.Set(key64(k), key64(uint64(o.Val))) != had {
					return false
				}
				model[k] = uint64(o.Val)
			}
		}
		if m.Len() != uint64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok := m.Get(key64(k))
			if !ok || binary.LittleEndian.Uint64(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
