package pmdkds

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Vector is a transactional flat-array vector of 8-byte elements — the
// dense, cache-friendly layout against which MOD's tree vector loses
// (§6.3): an in-place element update snapshots and flushes one slot, where
// MOD path-copies several 256-byte nodes.
//
// Layout:
//
//	header: [count u64][cap u64][data u64]
//	data:   cap × [elem u64], reallocated at 2× growth
type Vector struct {
	tx  *stm.TX
	hdr pmem.Addr
}

const (
	vecHdrSize    = 24
	vecInitialCap = 64
)

// NewVector creates (or reopens) a transactional vector under a named root.
func NewVector(tx *stm.TX, name string) (*Vector, error) {
	heap := tx.Heap()
	dev := tx.Device()
	slot, err := heap.RootSlot(name)
	if err != nil {
		return nil, err
	}
	if root := heap.Root(slot); root != pmem.Nil {
		return &Vector{tx: tx, hdr: root}, nil
	}
	hdr := heap.Alloc(vecHdrSize, 0)
	data := heap.Alloc(vecInitialCap*8, 0)
	dev.WriteU64(hdr, 0)
	dev.WriteU64(hdr+8, vecInitialCap)
	dev.WriteU64(hdr+16, uint64(data))
	dev.FlushRange(hdr, vecHdrSize)
	heap.SetRoot(slot, hdr)
	dev.Sfence()
	return &Vector{tx: tx, hdr: hdr}, nil
}

// Len returns the number of elements.
func (v *Vector) Len() uint64 { return v.tx.Device().ReadU64(v.hdr) }

func (v *Vector) capacity() uint64 { return v.tx.Device().ReadU64(v.hdr + 8) }

func (v *Vector) data() pmem.Addr { return pmem.Addr(v.tx.Device().ReadU64(v.hdr + 16)) }

func (v *Vector) slot(i uint64) pmem.Addr { return v.data() + pmem.Addr(i*8) }

// Get returns the element at index i.
func (v *Vector) Get(i uint64) uint64 {
	if i >= v.Len() {
		panic(fmt.Sprintf("pmdkds: vector index %d out of range (len %d)", i, v.Len()))
	}
	return v.tx.Device().ReadU64(v.slot(i))
}

// Push appends val in one transaction, growing the array 2× when full.
func (v *Vector) Push(val uint64) {
	tx := v.tx
	n, c := v.Len(), v.capacity()
	if n == c {
		v.grow(2 * c)
	}
	tx.Begin()
	tx.Add(v.hdr, 8) // count
	tx.WriteU64(v.slot(n), val)
	tx.WriteU64(v.hdr, n+1)
	tx.Commit()
}

// grow reallocates the backing array (its own transaction, like
// pmemobj_tx_realloc) and copies the elements.
func (v *Vector) grow(newCap uint64) {
	tx := v.tx
	dev := tx.Device()
	n := v.Len()
	old := v.data()
	tx.Begin()
	tx.Add(v.hdr+8, 16) // cap and data pointer
	data := tx.Alloc(int(newCap)*8, 0)
	buf := make([]byte, n*8)
	dev.Read(old, buf)
	tx.Write(data, buf)
	tx.WriteU64(v.hdr+8, newCap)
	tx.WriteU64(v.hdr+16, uint64(data))
	tx.Free(old)
	tx.Commit()
}

// Update replaces element i in one transaction: snapshot one slot, write
// it, flush it — the minimal PMDK FASE.
func (v *Vector) Update(i uint64, val uint64) {
	if i >= v.Len() {
		panic(fmt.Sprintf("pmdkds: vector update index %d out of range (len %d)", i, v.Len()))
	}
	tx := v.tx
	tx.Begin()
	tx.Add(v.slot(i), 8)
	tx.WriteU64(v.slot(i), val)
	tx.Commit()
}

// Swap exchanges elements i and j in one transaction.
func (v *Vector) Swap(i, j uint64) {
	n := v.Len()
	if i >= n || j >= n {
		panic(fmt.Sprintf("pmdkds: vector swap %d,%d out of range (len %d)", i, j, n))
	}
	tx := v.tx
	dev := tx.Device()
	a, b := dev.ReadU64(v.slot(i)), dev.ReadU64(v.slot(j))
	tx.Begin()
	tx.Add(v.slot(i), 8)
	tx.Add(v.slot(j), 8)
	tx.WriteU64(v.slot(i), b)
	tx.WriteU64(v.slot(j), a)
	tx.Commit()
}
