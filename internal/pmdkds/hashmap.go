// Package pmdkds implements the baseline datastructures the MOD paper
// compares against (§6.1): mutable, update-in-place structures made
// failure-atomic by wrapping every update in a PM-STM transaction
// (package stm), in the style of the PMDK examples — hashmap_tx, and
// linked stacks/queues and a flat array vector.
//
// The map baseline is the WHISPER hashmap the paper selects ("we compare
// against hashmap which outperformed ctree on Optane DCPMM", §6.1):
// a bucket array with chained entries, contiguous in memory and therefore
// cache-friendlier than MOD's pointer-heavy tries (Fig. 11), but paying
// 3-11 ordering points per update (Fig. 10).
package pmdkds

import (
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Hashmap is a transactional chained hash map, PMDK's hashmap_tx.
//
// Layout:
//
//	header: [nbuckets u64][count u64][buckets u64]
//	buckets: nbuckets × [entry u64]
//	entry:  [next u64][keyLen u32][valLen u32][key bytes][val bytes]
type Hashmap struct {
	tx   *stm.TX
	hdr  pmem.Addr
	nbkt uint64
	bkts pmem.Addr
}

const hmHdrSize = 24

// DefaultBuckets sizes new hashmaps; chains stay short up to ~1M entries.
const DefaultBuckets = 1 << 18

// NewHashmap creates (or reopens) a transactional hashmap under a named
// root with nbuckets buckets (0 means DefaultBuckets).
func NewHashmap(tx *stm.TX, name string, nbuckets uint64) (*Hashmap, error) {
	if nbuckets == 0 {
		nbuckets = DefaultBuckets
	}
	heap := tx.Heap()
	dev := tx.Device()
	slot, err := heap.RootSlot(name)
	if err != nil {
		return nil, err
	}
	if root := heap.Root(slot); root != pmem.Nil {
		h := &Hashmap{tx: tx, hdr: root}
		h.nbkt = dev.ReadU64(root)
		h.bkts = pmem.Addr(dev.ReadU64(root + 16))
		return h, nil
	}
	hdr := heap.Alloc(hmHdrSize, 0)
	bkts := heap.Alloc(int(nbuckets)*8, 0)
	dev.Zero(bkts, int(nbuckets)*8)
	dev.WriteU64(hdr, nbuckets)
	dev.WriteU64(hdr+8, 0)
	dev.WriteU64(hdr+16, uint64(bkts))
	dev.FlushRange(hdr, hmHdrSize)
	dev.FlushRange(bkts, int(nbuckets)*8)
	heap.SetRoot(slot, hdr)
	dev.Sfence()
	return &Hashmap{tx: tx, hdr: hdr, nbkt: nbuckets, bkts: bkts}, nil
}

// Len returns the number of entries.
func (h *Hashmap) Len() uint64 { return h.tx.Device().ReadU64(h.hdr + 8) }

func hashBytes(b []byte) uint64 {
	v := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		v ^= uint64(b[i])
		v *= 1099511628211
	}
	return v
}

func (h *Hashmap) bucketCell(key []byte) pmem.Addr {
	return h.bkts + pmem.Addr((hashBytes(key)%h.nbkt)*8)
}

// entry field accessors.
func (h *Hashmap) entryNext(e pmem.Addr) pmem.Addr {
	return pmem.Addr(h.tx.Device().ReadU64(e))
}

func (h *Hashmap) entryKey(e pmem.Addr) []byte {
	dev := h.tx.Device()
	klen := dev.ReadU32(e + 8)
	k := make([]byte, klen)
	dev.Read(e+16, k)
	return k
}

func (h *Hashmap) entryVal(e pmem.Addr) []byte {
	dev := h.tx.Device()
	klen := dev.ReadU32(e + 8)
	vlen := dev.ReadU32(e + 12)
	v := make([]byte, vlen)
	dev.Read(e+16+pmem.Addr(klen), v)
	return v
}

func (h *Hashmap) entryKeyEquals(e pmem.Addr, key []byte) bool {
	dev := h.tx.Device()
	if dev.ReadU32(e+8) != uint32(len(key)) {
		return false
	}
	got := make([]byte, len(key))
	dev.Read(e+16, got)
	for i := range key {
		if got[i] != key[i] {
			return false
		}
	}
	return true
}

// findEntry returns the entry holding key and the address of the pointer
// cell that points at it (the bucket cell or a predecessor's next field).
func (h *Hashmap) findEntry(key []byte) (entry, cell pmem.Addr) {
	cell = h.bucketCell(key)
	for e := pmem.Addr(h.tx.Device().ReadU64(cell)); e != pmem.Nil; e = h.entryNext(e) {
		if h.entryKeyEquals(e, key) {
			return e, cell
		}
		cell = e // next field is at offset 0
	}
	return pmem.Nil, cell
}

// Get returns the value stored under key.
func (h *Hashmap) Get(key []byte) ([]byte, bool) {
	e, _ := h.findEntry(key)
	if e == pmem.Nil {
		return nil, false
	}
	return h.entryVal(e), true
}

// Contains reports whether key is present.
func (h *Hashmap) Contains(key []byte) bool {
	e, _ := h.findEntry(key)
	return e != pmem.Nil
}

// writeEntry fills a fresh entry block (no snapshots needed: fresh data).
func (h *Hashmap) writeEntry(e, next pmem.Addr, key, val []byte) {
	buf := make([]byte, 16+len(key)+len(val))
	putU64(buf, uint64(next))
	putU32(buf[8:], uint32(len(key)))
	putU32(buf[12:], uint32(len(val)))
	copy(buf[16:], key)
	copy(buf[16+len(key):], val)
	h.tx.Write(e, buf)
}

// Set binds key to val in one transaction, reporting whether an existing
// binding was replaced.
func (h *Hashmap) Set(key, val []byte) bool {
	h.tx.Begin()
	replaced := h.SetInTx(key, val)
	h.tx.Commit()
	return replaced
}

// SetInTx performs the binding inside the caller's open transaction, so
// several map updates can share one failure-atomic section — the pattern
// the PMDK port of vacation uses for multi-map reservations.
func (h *Hashmap) SetInTx(key, val []byte) bool {
	tx := h.tx
	old, cell := h.findEntry(key)
	// TX_ADD annotations first (the PMDK example pattern), then writes.
	tx.Add(cell, 8)
	replaced := old != pmem.Nil
	if !replaced {
		tx.Add(h.hdr+8, 8) // count
	}
	e := tx.Alloc(16+len(key)+len(val), 0)
	next := pmem.Addr(tx.Device().ReadU64(cell))
	if replaced {
		next = h.entryNext(old) // new entry takes over the old link
	}
	h.writeEntry(e, next, key, val)
	tx.WriteU64(cell, uint64(e))
	if replaced {
		tx.Free(old)
	} else {
		tx.WriteU64(h.hdr+8, h.Len()+1)
	}
	return replaced
}

// Delete removes key in one transaction, reporting whether it was present.
func (h *Hashmap) Delete(key []byte) bool {
	if e, _ := h.findEntry(key); e == pmem.Nil {
		return false
	}
	h.tx.Begin()
	removed := h.DeleteInTx(key)
	h.tx.Commit()
	return removed
}

// DeleteInTx removes key inside the caller's open transaction.
func (h *Hashmap) DeleteInTx(key []byte) bool {
	tx := h.tx
	e, cell := h.findEntry(key)
	if e == pmem.Nil {
		return false
	}
	tx.Add(cell, 8)
	tx.Add(h.hdr+8, 8)
	tx.WriteU64(cell, uint64(h.entryNext(e)))
	tx.WriteU64(h.hdr+8, h.Len()-1)
	tx.Free(e)
	return true
}

// Range iterates over all entries (for tests and validation).
func (h *Hashmap) Range(f func(key, val []byte) bool) {
	dev := h.tx.Device()
	for b := uint64(0); b < h.nbkt; b++ {
		for e := pmem.Addr(dev.ReadU64(h.bkts + pmem.Addr(b*8))); e != pmem.Nil; e = h.entryNext(e) {
			if !f(h.entryKey(e), h.entryVal(e)) {
				return
			}
		}
	}
}

// Hashset is a transactional hash set: a Hashmap with empty values.
type Hashset struct{ m *Hashmap }

// NewHashset creates (or reopens) a transactional set under a named root.
func NewHashset(tx *stm.TX, name string, nbuckets uint64) (*Hashset, error) {
	m, err := NewHashmap(tx, name, nbuckets)
	if err != nil {
		return nil, err
	}
	return &Hashset{m: m}, nil
}

// Len returns the number of members.
func (s *Hashset) Len() uint64 { return s.m.Len() }

// Insert adds key, reporting whether it already existed.
func (s *Hashset) Insert(key []byte) bool { return s.m.Set(key, nil) }

// Contains reports membership.
func (s *Hashset) Contains(key []byte) bool { return s.m.Contains(key) }

// Delete removes key, reporting whether it was present.
func (s *Hashset) Delete(key []byte) bool { return s.m.Delete(key) }

func putU64(b []byte, v uint64) {
	_ = b[7]
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	_ = b[3]
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
