package stm

import (
	"testing"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

func newTestTX(t *testing.T, mode Mode) (*TX, *pmem.Device, *alloc.Heap) {
	t.Helper()
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := alloc.Format(dev)
	tx := New(dev, h, mode)
	return tx, dev, h
}

func TestCommitAppliesWrites(t *testing.T) {
	for _, mode := range []Mode{ModeV14, ModeV15} {
		tx, dev, h := newTestTX(t, mode)
		cell := h.Alloc(8, 0)
		dev.WriteU64(cell, 1)
		dev.FlushRange(cell, 8)
		dev.Sfence()

		tx.Begin()
		tx.Add(cell, 8)
		tx.WriteU64(cell, 2)
		tx.Commit()
		if got := dev.ReadU64(cell); got != 2 {
			t.Fatalf("%v: value = %d, want 2", mode, got)
		}
		// Committed data must be durable.
		if got := dev.DurableBytes(cell, 1)[0]; got != 2 {
			t.Fatalf("%v: durable value = %d, want 2", mode, got)
		}
	}
}

func TestAbortRollsBack(t *testing.T) {
	for _, mode := range []Mode{ModeV14, ModeV15} {
		tx, dev, h := newTestTX(t, mode)
		cell := h.Alloc(16, 0)
		dev.WriteU64(cell, 111)
		dev.WriteU64(cell+8, 222)
		dev.FlushRange(cell, 16)
		dev.Sfence()

		tx.Begin()
		tx.Add(cell, 16)
		tx.WriteU64(cell, 333)
		tx.WriteU64(cell+8, 444)
		tx.Abort()
		if a, b := dev.ReadU64(cell), dev.ReadU64(cell+8); a != 111 || b != 222 {
			t.Fatalf("%v: after abort got %d,%d want 111,222", mode, a, b)
		}
	}
}

func TestCrashMidTransactionRollsBackOnRecover(t *testing.T) {
	for _, mode := range []Mode{ModeV14, ModeV15} {
		tx, dev, h := newTestTX(t, mode)
		cell := h.Alloc(8, 0)
		dev.WriteU64(cell, 7)
		dev.FlushRange(cell, 8)
		dev.Sfence()
		logAddr := tx.LogAddr()

		tx.Begin()
		tx.Add(cell, 8)
		tx.WriteU64(cell, 8)
		// Crash before commit, with everything inflight persisted (most
		// adversarial for undo logging: the overwrite reached PM).
		dev.FlushRange(cell, 8)
		img := dev.CrashImage(pmem.CrashAllInflight, 1)

		dev2 := pmem.NewFromImage(pmem.DefaultConfig(8<<20), img)
		rolledBack := Recover(dev2, logAddr)
		if mode == ModeV14 && !rolledBack {
			t.Fatalf("%v: recovery did not detect active log", mode)
		}
		if got := dev2.ReadU64(cell); got != 7 {
			t.Fatalf("%v: after recovery value = %d, want 7", mode, got)
		}
	}
}

func TestRecoverIdleLogIsNoop(t *testing.T) {
	tx, dev, _ := newTestTX(t, ModeV15)
	if Recover(dev, tx.LogAddr()) {
		t.Fatal("recovery rolled back an idle log")
	}
}

func TestCommittedTransactionSurvivesCrash(t *testing.T) {
	tx, dev, h := newTestTX(t, ModeV15)
	cell := h.Alloc(8, 0)
	dev.WriteU64(cell, 1)
	dev.FlushRange(cell, 8)
	dev.Sfence()

	tx.Begin()
	tx.Add(cell, 8)
	tx.WriteU64(cell, 99)
	tx.Commit()
	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(8<<20), img)
	if Recover(dev2, tx.LogAddr()) {
		t.Fatal("recovery rolled back a committed transaction")
	}
	if got := dev2.ReadU64(cell); got != 99 {
		t.Fatalf("committed value lost: %d", got)
	}
}

func TestV14HasMoreFencesThanV15(t *testing.T) {
	count := func(mode Mode) uint64 {
		tx, dev, h := newTestTX(t, mode)
		cells := make([]pmem.Addr, 4)
		for i := range cells {
			cells[i] = h.Alloc(8, 0)
		}
		dev.Sfence()
		before := dev.Stats()
		tx.Begin()
		// Annotate all ranges up front, then write — the TX_ADD pattern of
		// the PMDK examples; v1.5's batched log flushes rely on it.
		for _, c := range cells {
			tx.Add(c, 8)
		}
		for _, c := range cells {
			tx.WriteU64(c, 5)
		}
		tx.Alloc(64, 0)
		tx.Commit()
		return dev.Stats().Sub(before).Fences
	}
	f14, f15 := count(ModeV14), count(ModeV15)
	if f14 <= f15 {
		t.Fatalf("v1.4 fences (%d) should exceed v1.5 fences (%d)", f14, f15)
	}
	if f15 < 3 || f15 > 11 {
		t.Fatalf("v1.5 fences per tx = %d, want within the paper's 3-11", f15)
	}
}

func TestV15FasterThanV14(t *testing.T) {
	run := func(mode Mode) float64 {
		tx, dev, h := newTestTX(t, mode)
		cells := make([]pmem.Addr, 8)
		for i := range cells {
			cells[i] = h.Alloc(8, 0)
		}
		dev.Sfence()
		start := dev.Clock()
		for iter := 0; iter < 100; iter++ {
			tx.Begin()
			for _, c := range cells[:3] {
				tx.Add(c, 8)
			}
			for _, c := range cells[:3] {
				tx.WriteU64(c, uint64(iter))
			}
			tx.Alloc(32, 0)
			tx.Commit()
		}
		return dev.Clock() - start
	}
	t14, t15 := run(ModeV14), run(ModeV15)
	if t15 >= t14 {
		t.Fatalf("v1.5 (%.0f ns) should be faster than v1.4 (%.0f ns)", t15, t14)
	}
	improvement := 1 - t15/t14
	if improvement < 0.05 || improvement > 0.60 {
		t.Fatalf("v1.5 improvement = %.0f%%, want roughly the paper's ~23%%", 100*improvement)
	}
}

func TestLogCategoryAccounted(t *testing.T) {
	tx, dev, h := newTestTX(t, ModeV15)
	cell := h.Alloc(8, 0)
	dev.Sfence()
	before := dev.Stats()
	tx.Begin()
	tx.Add(cell, 8)
	tx.WriteU64(cell, 1)
	tx.Commit()
	delta := dev.Stats().Sub(before)
	if delta.CatNs[pmem.CatLog] <= 0 {
		t.Fatal("no time attributed to logging")
	}
	if delta.CatNs[pmem.CatFlush] <= 0 {
		t.Fatal("no time attributed to flushing")
	}
}

func TestTransactionalFreeAppliesAtCommit(t *testing.T) {
	tx, _, h := newTestTX(t, ModeV15)
	a := h.Alloc(32, 0)
	tx.Begin()
	tx.Free(a)
	if h.RefCount(a) != 1 {
		t.Fatal("free applied before commit")
	}
	tx.Commit()
	if h.RefCount(a) != 0 {
		t.Fatal("free not applied at commit")
	}
}

func TestAbortFreesTransactionalAllocations(t *testing.T) {
	tx, _, h := newTestTX(t, ModeV15)
	tx.Begin()
	a := tx.Alloc(32, 0)
	tx.Abort()
	if h.RefCount(a) != 0 {
		t.Fatal("aborted allocation not released")
	}
}

func TestNestedBeginPanics(t *testing.T) {
	tx, _, _ := newTestTX(t, ModeV15)
	tx.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("nested Begin should panic")
		}
	}()
	tx.Begin()
}

func TestWriteOutsideTransactionPanics(t *testing.T) {
	tx, _, _ := newTestTX(t, ModeV15)
	defer func() {
		if recover() == nil {
			t.Fatal("Write outside transaction should panic")
		}
	}()
	tx.WriteU64(64, 1)
}

func TestLogOverflowPanics(t *testing.T) {
	tx, _, h := newTestTX(t, ModeV15)
	big := h.Alloc(DefaultLogSize, 0)
	tx.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("log overflow should panic")
		}
	}()
	tx.Add(big, DefaultLogSize)
}
