// Package stm implements a PMDK-libpmemobj-style software transactional
// memory for persistent memory, the baseline the MOD paper compares
// against (§2.2, §6.1). Updates happen in place inside transactions;
// overwritten data is snapshotted to a persistent undo log first, and
// modified ranges are flushed at commit.
//
// Two modes reproduce the two PMDK releases the paper evaluates:
//
//   - ModeV14 (undo logging): every snapshot is made durable — log write,
//     flush, fence — before its range may be overwritten; commit flushes
//     and drains each modified range separately; allocator metadata takes
//     two ordering points per allocation. Fences per transaction grow
//     with the number of ranges and allocations, the "5-50 fences"
//     behaviour of §3.
//
//   - ModeV15 (hybrid undo-redo): snapshots keep undo ordering, but the
//     commit-time data flush drains once for all ranges (v1.4 drains per
//     range), and allocator metadata moves through a redo buffer whose
//     publication is deferred to a single commit-time fence. This
//     reproduces v1.5's ~20-25% improvement over v1.4 (§6.3) and its
//     5-11 fences and 4-23 flushes per transaction (Fig. 10).
//
// The log guarantees failure atomicity: Recover rolls interrupted
// transactions back by reapplying undo images.
package stm

import (
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/pmem"
)

// Mode selects the logging strategy.
type Mode int

const (
	// ModeV14 models PMDK v1.4: pure undo logging, one fence per snapshot.
	ModeV14 Mode = iota
	// ModeV15 models PMDK v1.5: hybrid undo-redo with batched log flushes.
	ModeV15
)

// String returns the PMDK version name the mode models.
func (m Mode) String() string {
	if m == ModeV14 {
		return "pmdk-v1.4"
	}
	return "pmdk-v1.5"
}

// Log region layout:
//
//	[status u64][nbytes u64] entries...
//	entry: [addr u64][size u64][old data, padded to 8]
const (
	logStatusIdle      = 0
	logStatusActive    = 1
	logHdrSize         = 16
	logEntryHdrSize    = 16
	logCPUCostPerEntry = 30 // ns, bookkeeping cost of building a log entry
)

// TX is a persistent-memory transaction context. A TX is reused across
// transactions (Begin/Commit pairs); it is not safe for concurrent use.
type TX struct {
	dev  pmem.Backend
	heap *alloc.Heap
	mode Mode

	logAddr pmem.Addr
	logSize int
	logOff  int // bytes of entries appended this transaction

	active   bool
	modified []rng // ranges to flush at commit
	allocs   []pmem.Addr
	frees    []pmem.Addr
	hadAlloc bool

	stats Stats
}

type rng struct {
	addr pmem.Addr
	size int
}

// Stats counts transaction activity.
type Stats struct {
	Commits   uint64
	Aborts    uint64
	Snapshots uint64
	LogBytes  uint64
}

// DefaultLogSize is the log region allocated by New.
const DefaultLogSize = 1 << 16

// New allocates a log region on the heap and returns a transaction
// context. The log block is reachable via the returned TX only; callers
// that need post-crash recovery should anchor it under a named root and
// call Attach after reopening.
func New(dev pmem.Backend, heap *alloc.Heap, mode Mode) *TX {
	logAddr := heap.Alloc(DefaultLogSize, 0)
	dev.WriteU64(logAddr, logStatusIdle)
	dev.WriteU64(logAddr+8, 0)
	dev.FlushRange(logAddr, logHdrSize)
	dev.Sfence()
	return Attach(dev, heap, mode, logAddr, DefaultLogSize)
}

// Attach builds a TX around an existing log region.
func Attach(dev pmem.Backend, heap *alloc.Heap, mode Mode, logAddr pmem.Addr, logSize int) *TX {
	return &TX{dev: dev, heap: heap, mode: mode, logAddr: logAddr, logSize: logSize}
}

// LogAddr returns the log region address (for anchoring under a root).
func (tx *TX) LogAddr() pmem.Addr { return tx.logAddr }

// Mode returns the logging mode.
func (tx *TX) Mode() Mode { return tx.mode }

// Stats returns transaction counters.
func (tx *TX) Stats() Stats { return tx.stats }

// Heap returns the heap this TX allocates from.
func (tx *TX) Heap() *alloc.Heap { return tx.heap }

// Device returns the underlying device.
func (tx *TX) Device() pmem.Backend { return tx.dev }

// Begin starts a transaction.
func (tx *TX) Begin() {
	if tx.active {
		panic("stm: nested transactions are not supported")
	}
	tx.active = true
	tx.logOff = 0
	tx.modified = tx.modified[:0]
	tx.allocs = tx.allocs[:0]
	tx.frees = tx.frees[:0]
	tx.hadAlloc = false
	// Mark the log active. The status write rides with the first
	// snapshot's flush; an empty committed transaction needs no ordering.
	tx.dev.WriteU64(tx.logAddr, logStatusActive)
	tx.dev.Clwb(tx.logAddr)
}

// Add snapshots [addr, addr+size) into the undo log — the TX_ADD
// annotation of PMDK. The snapshot must be durable before the data it
// covers may be overwritten, so each snapshot carries one ordering point
// in both modes (the undo-ordering constraint of §3).
func (tx *TX) Add(addr pmem.Addr, size int) {
	if !tx.active {
		panic("stm: Add outside transaction")
	}
	tx.appendUndo(addr, size)
	tx.dev.Sfence()
	tx.stats.Snapshots++
}

// appendUndo writes one undo entry (old contents of the range) to the log
// and flushes it without ordering.
func (tx *TX) appendUndo(addr pmem.Addr, size int) {
	padded := (size + 7) &^ 7
	need := logEntryHdrSize + padded
	if logHdrSize+tx.logOff+need > tx.logSize {
		panic(fmt.Sprintf("stm: log overflow (%d bytes needed)", need))
	}
	prev := tx.dev.SetCategory(pmem.CatLog)
	entry := tx.logAddr + logHdrSize + pmem.Addr(tx.logOff)
	old := make([]byte, padded)
	tx.dev.Read(addr, old[:size])
	tx.dev.WriteU64(entry, uint64(addr))
	tx.dev.WriteU64(entry+8, uint64(size))
	tx.dev.Write(entry+logEntryHdrSize, old)
	tx.logOff += need
	tx.dev.WriteU64(tx.logAddr+8, uint64(tx.logOff))
	tx.dev.ChargeCompute(logCPUCostPerEntry)
	tx.dev.SetCategory(prev)
	// Log flushes are charged to the flush category, as in Fig. 2.
	tx.dev.FlushRange(entry, need)
	tx.dev.Clwb(tx.logAddr + 8)
	tx.stats.LogBytes += uint64(need)
}

// Write stores p at addr in place and schedules the range for the commit
// flush. The caller must have snapshotted overlapping existing data with
// Add (fresh allocations from Alloc need no snapshot).
func (tx *TX) Write(addr pmem.Addr, p []byte) {
	if !tx.active {
		panic("stm: Write outside transaction")
	}
	tx.dev.Write(addr, p)
	tx.modified = append(tx.modified, rng{addr, len(p)})
}

// WriteU64 stores a little-endian uint64 at addr through the transaction.
func (tx *TX) WriteU64(addr pmem.Addr, v uint64) {
	if !tx.active {
		panic("stm: WriteU64 outside transaction")
	}
	tx.dev.WriteU64(addr, v)
	tx.modified = append(tx.modified, rng{addr, 8})
}

// Alloc obtains persistent memory inside the transaction. In ModeV14 the
// allocator metadata update is undo-logged and fenced like any other
// snapshot; in ModeV15 it is redo-buffered and ordered once at commit, the
// chief source of v1.5's fence reduction.
func (tx *TX) Alloc(size int, tag uint8) pmem.Addr {
	if !tx.active {
		panic("stm: Alloc outside transaction")
	}
	if tx.mode == ModeV14 {
		// Snapshot the allocator's bump/freelist word it will modify.
		tx.appendUndo(8, 8) // superblock version/top area stand-in
		tx.dev.Sfence()
	} else {
		prev := tx.dev.SetCategory(pmem.CatLog)
		tx.dev.ChargeCompute(logCPUCostPerEntry)
		tx.dev.SetCategory(prev)
		tx.hadAlloc = true
	}
	a := tx.heap.Alloc(size, tag)
	tx.allocs = append(tx.allocs, a)
	return a
}

// Free releases a block at commit (a crash before commit leaves it live,
// exactly like pmemobj_tx_free).
func (tx *TX) Free(addr pmem.Addr) {
	if !tx.active {
		panic("stm: Free outside transaction")
	}
	tx.frees = append(tx.frees, addr)
}

// Commit makes all transactional writes durable and retires the log.
// ModeV15 flushes every modified range and drains once; ModeV14 flushes
// and drains range by range (the per-range persist of older PMDK). Both
// then publish allocator metadata if the transaction allocated, and
// invalidate the log with a final ordering point.
func (tx *TX) Commit() {
	if !tx.active {
		panic("stm: Commit outside transaction")
	}
	if tx.mode == ModeV14 {
		for _, r := range tx.modified {
			tx.dev.FlushRange(r.addr, r.size)
			tx.dev.Sfence()
		}
	} else {
		for _, r := range tx.modified {
			tx.dev.FlushRange(r.addr, r.size)
		}
		tx.dev.Sfence()
	}
	if tx.hadAlloc {
		// Publish allocator metadata: the redo-buffer apply (v1.5) or the
		// second half of the undo-logged update (v1.4), one fence either way.
		prev := tx.dev.SetCategory(pmem.CatLog)
		tx.dev.ChargeCompute(logCPUCostPerEntry)
		tx.dev.SetCategory(prev)
		tx.dev.Clwb(8) // superblock metadata line
		tx.dev.Sfence()
	}
	// Retire the log so recovery will not roll this transaction back.
	tx.dev.WriteU64(tx.logAddr, logStatusIdle)
	tx.dev.WriteU64(tx.logAddr+8, 0)
	tx.dev.Clwb(tx.logAddr)
	tx.dev.Sfence()
	for _, a := range tx.frees {
		tx.heap.Release(a)
	}
	tx.heap.Reclaim()
	tx.active = false
	tx.stats.Commits++
}

// Abort rolls the transaction back in place using the undo log and frees
// transactional allocations.
func (tx *TX) Abort() {
	if !tx.active {
		panic("stm: Abort outside transaction")
	}
	applyUndo(tx.dev, tx.logAddr)
	tx.dev.Sfence()
	tx.dev.WriteU64(tx.logAddr, logStatusIdle)
	tx.dev.WriteU64(tx.logAddr+8, 0)
	tx.dev.Clwb(tx.logAddr)
	tx.dev.Sfence()
	for _, a := range tx.allocs {
		tx.heap.Release(a)
	}
	tx.heap.Reclaim()
	tx.active = false
	tx.stats.Aborts++
}

// applyUndo restores all snapshotted ranges from the log, flushing the
// restored data.
func applyUndo(dev pmem.Backend, logAddr pmem.Addr) {
	n := int(dev.ReadU64(logAddr + 8))
	off := 0
	for off < n {
		entry := logAddr + logHdrSize + pmem.Addr(off)
		addr := pmem.Addr(dev.ReadU64(entry))
		size := int(dev.ReadU64(entry + 8))
		padded := (size + 7) &^ 7
		old := make([]byte, size)
		dev.Read(entry+logEntryHdrSize, old)
		dev.Write(addr, old)
		dev.FlushRange(addr, size)
		off += logEntryHdrSize + padded
	}
}

// Recover inspects the log region after a restart and, if a transaction
// was interrupted mid-flight, rolls its effects back. It returns whether a
// rollback happened.
func Recover(dev pmem.Backend, logAddr pmem.Addr) bool {
	if dev.ReadU64(logAddr) != logStatusActive {
		return false
	}
	applyUndo(dev, logAddr)
	dev.Sfence()
	dev.WriteU64(logAddr, logStatusIdle)
	dev.WriteU64(logAddr+8, 0)
	dev.FlushRange(logAddr, logHdrSize)
	dev.Sfence()
	return true
}
