package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// GroupCommitBatchSizes is the batch-size sweep of the group-commit
// experiment (1 = the unbatched one-fence-per-FASE baseline).
var GroupCommitBatchSizes = []int{1, 4, 16, 64, 256}

// GroupCommitShardCounts sweeps publication paths: 1 root exercises the
// single atomic-swap publish, 4 roots the multi-root batch record.
var GroupCommitShardCounts = []int{1, 4}

// GroupCommitBenchConfig derives a deterministic group-commit workload
// size from a Scale.
func GroupCommitBenchConfig(scale Scale, batchSize, shards int) workloads.GroupCommitConfig {
	return workloads.GroupCommitConfig{
		BatchSize:   batchSize,
		Shards:      shards,
		Ops:         scale.Ops,
		PreloadKeys: max(scale.Ops/16, 64),
		Seed:        0x6c0de,
	}
}

// GroupCommit measures fences/op and throughput as the batch size grows:
// the whole point of group commit is that one flush+sfence epoch covers
// B operations, so fences/op falls as 1/B (single root) or 3/B (batch
// record across roots) while throughput climbs. The final row repeats
// the largest batch through the async background committer with
// concurrent producers, for information.
func GroupCommit(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "groupcommit",
		Title: "group commit: fence amortization vs batch size (MOD engine)",
		Note:  "sync rows are deterministic and gated by cmd/benchdiff; async row is informational",
		Header: []string{"batch", "shards", "mode", "ops", "batches", "fences/op", "flushes/op",
			"ops/s", "speedup"},
	}
	var base float64
	for _, shards := range GroupCommitShardCounts {
		for _, bsz := range GroupCommitBatchSizes {
			res, err := workloads.RunGroupCommit(GroupCommitBenchConfig(scale, bsz, shards))
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = res.OpsPerSec
			}
			t.AddRow(
				fmt.Sprintf("%d", res.BatchSize),
				fmt.Sprintf("%d", res.Shards),
				"sync",
				fmt.Sprintf("%d", res.Ops),
				fmt.Sprintf("%d", res.Batches),
				f3(res.FencesPerOp),
				f2(res.FlushesPerOp),
				f1(res.OpsPerSec),
				fmt.Sprintf("%.2fx", res.OpsPerSec/base),
			)
		}
	}
	cfg := GroupCommitBenchConfig(scale, GroupCommitBatchSizes[len(GroupCommitBatchSizes)-1], 4)
	cfg.Async = true
	cfg.Writers = 2
	res, err := workloads.RunGroupCommit(cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow(
		fmt.Sprintf("%d", res.BatchSize), "4", "async",
		fmt.Sprintf("%d", res.Ops),
		fmt.Sprintf("%d", res.Batches),
		f3(res.FencesPerOp),
		f2(res.FlushesPerOp),
		f1(res.OpsPerSec),
		"-",
	)
	return t, nil
}
