package harness

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/mod-ds/mod/internal/workloads"
)

// benchTestScale keeps the report-path test fast while still producing
// non-degenerate metrics in every row.
func benchTestScale() Scale {
	return Scale{Ops: 200, VectorPreload: 200, Table3N: 200, PerOpSamples: 50}
}

func TestBuildBenchDocSchema(t *testing.T) {
	doc, err := BuildBenchDoc("test", benchTestScale())
	if err != nil {
		t.Fatalf("BuildBenchDoc: %v", err)
	}
	if doc.Schema != BenchSchema {
		t.Errorf("schema = %d, want %d", doc.Schema, BenchSchema)
	}
	if doc.Scale != "test" || doc.Ops != 200 {
		t.Errorf("scale/ops = %q/%d, want test/200", doc.Scale, doc.Ops)
	}
	if len(doc.Workloads) == 0 || len(doc.Concurrent) == 0 || len(doc.GroupCommit) == 0 {
		t.Fatalf("empty sections: %d workloads, %d concurrent, %d groupcommit",
			len(doc.Workloads), len(doc.Concurrent), len(doc.GroupCommit))
	}
	for _, w := range doc.Workloads {
		if w.Workload == "" || w.Engine == "" {
			t.Errorf("workload row missing identity: %+v", w)
		}
		if w.Ops <= 0 || w.SimNs <= 0 || w.OpsPerSec <= 0 || w.Fences == 0 || w.Flushes == 0 {
			t.Errorf("workload %s/%s has zero metrics: %+v", w.Workload, w.Engine, w)
		}
	}
	for _, g := range doc.GroupCommit {
		if g.BatchSize <= 0 || g.Shards <= 0 || g.Ops <= 0 || g.Batches == 0 ||
			g.Fences == 0 || g.Flushes == 0 || g.ElapsedNs <= 0 ||
			g.OpsPerSec <= 0 || g.FencesPerOp <= 0 || g.FlushesPerOp <= 0 {
			t.Errorf("groupcommit b=%d s=%d has zero metrics: %+v", g.BatchSize, g.Shards, g)
		}
	}
	if len(doc.Transient) != len(TransientOpsPerFASE) {
		t.Fatalf("transient rows = %d, want %d", len(doc.Transient), len(TransientOpsPerFASE))
	}
	for _, tr := range doc.Transient {
		if tr.OpsPerFASE <= 0 || tr.Ops <= 0 || tr.Fences == 0 || tr.Flushes == 0 ||
			tr.Copies == 0 || tr.ElapsedNs <= 0 || tr.OpsPerSec <= 0 ||
			tr.FlushesPerOp <= 0 || tr.CopiesPerOp <= 0 {
			t.Errorf("transient b=%d has zero metrics: %+v", tr.OpsPerFASE, tr)
		}
		if tr.OpsPerFASE > 1 && tr.CopiesElided == 0 {
			t.Errorf("transient b=%d elided no copies", tr.OpsPerFASE)
		}
	}
	for _, c := range doc.Concurrent {
		if c.Readers <= 0 || c.OpsPerSec <= 0 || c.ElapsedNs <= 0 {
			t.Errorf("concurrent r=%d has zero metrics: %+v", c.Readers, c)
		}
	}
	wantSharded := len(ShardedWriterCounts)*len(ShardedShardCounts) + len(ShardedCrossShardCounts)
	if len(doc.Sharded) != wantSharded {
		t.Fatalf("sharded rows = %d, want %d", len(doc.Sharded), wantSharded)
	}
	for _, s := range doc.Sharded {
		if s.Shards <= 0 || s.Writers <= 0 || s.Ops <= 0 || s.Fences == 0 ||
			s.Flushes == 0 || s.ElapsedNs <= 0 || s.OpsPerSec <= 0 {
			t.Errorf("sharded s=%d w=%d has zero metrics: %+v", s.Shards, s.Writers, s)
		}
	}
	if len(doc.Server) != len(ServerClientCounts) {
		t.Fatalf("server rows = %d, want %d", len(doc.Server), len(ServerClientCounts))
	}
	for _, s := range doc.Server {
		if s.Clients <= 0 || s.Ops <= 0 || s.OpsPerSec <= 0 || s.ElapsedNs <= 0 ||
			s.Fences == 0 || s.FencesPerOp <= 0 || s.P50Ns <= 0 || s.P99Ns <= 0 {
			t.Errorf("server c=%d has zero metrics: %+v", s.Clients, s)
		}
		if s.Errors != 0 {
			t.Errorf("server c=%d reported %d errored ops", s.Clients, s.Errors)
		}
	}
	wantSelective := len(SelectiveStructures) * 2 * len(SelectiveOpsPerFASE)
	if len(doc.Selective) != wantSelective || len(doc.Recovery) != wantSelective {
		t.Fatalf("selective/recovery rows = %d/%d, want %d each",
			len(doc.Selective), len(doc.Recovery), wantSelective)
	}
	for i, s := range doc.Selective {
		if s.Structure == "" || s.OpsPerFASE <= 0 || s.Ops <= 0 || s.Fences == 0 ||
			s.Flushes == 0 || s.ElapsedNs <= 0 || s.OpsPerSec <= 0 || s.FlushesPerOp <= 0 {
			t.Errorf("selective %s sel=%v b=%d has zero metrics: %+v", s.Structure, s.Selective, s.OpsPerFASE, s)
		}
		r := doc.Recovery[i]
		if r.Structure != s.Structure || r.Selective != s.Selective || r.OpsPerFASE != s.OpsPerFASE {
			t.Errorf("recovery row %d does not mirror its selective row: %+v vs %+v", i, r, s)
		}
		if r.RecoveryNs <= 0 {
			t.Errorf("recovery %s sel=%v b=%d reported no simulated time", r.Structure, r.Selective, r.OpsPerFASE)
		}
		if s.Selective && r.RebuiltNodes == 0 {
			t.Errorf("recovery %s sel b=%d rebuilt no nodes", r.Structure, r.OpsPerFASE)
		}
		if !s.Selective && r.RebuiltNodes != 0 {
			t.Errorf("recovery %s persist-all b=%d rebuilt %d nodes (want 0)", r.Structure, r.OpsPerFASE, r.RebuiltNodes)
		}
	}
}

// TestBenchShardedScaling pins the tentpole's two headline properties
// in the gated report: per-op fences/op is exactly 1 at every shard
// count, and aggregate ops/sec at S=4 with 4 writers is at least 2x the
// single-shard run with the same writers.
func TestBenchShardedScaling(t *testing.T) {
	doc, err := BuildBenchDoc("test", benchTestScale())
	if err != nil {
		t.Fatalf("BuildBenchDoc: %v", err)
	}
	byKey := map[string]BenchSharded{}
	for _, s := range doc.Sharded {
		if !s.CrossShard && s.FencesPerOp != 1.0 {
			t.Errorf("per-op row s=%d w=%d: fences/op = %v, want exactly 1", s.Shards, s.Writers, s.FencesPerOp)
		}
		byKey[fmt.Sprintf("s%d/w%d/cross=%v", s.Shards, s.Writers, s.CrossShard)] = s
	}
	base, ok1 := byKey["s1/w4/cross=false"]
	wide, ok4 := byKey["s4/w4/cross=false"]
	if !ok1 || !ok4 {
		t.Fatalf("sweep missing S=1/W=4 or S=4/W=4 rows: %v", byKey)
	}
	if speedup := wide.OpsPerSec / base.OpsPerSec; speedup < 2 {
		t.Errorf("S=4/W=4 speedup = %.2fx over S=1/W=4, want >= 2x", speedup)
	}
}

// TestBenchContentionScaling pins the acceptance floor of the two-tier
// commit path (DESIGN.md §12): with 8 writers hammering ONE shared map
// root, optimistic CAS publication with the flat-combining fallback
// must beat the per-root-mutex baseline by at least 2x in ops per
// simulated second, while paying no more fences per op than the
// uncontended W=1 run — scaling must come from parallel shadow builds
// and fence amortization, never from skipping ordering points.
func TestBenchContentionScaling(t *testing.T) {
	scale := benchTestScale()
	w1, err := workloads.RunContention(ContentionBenchConfig(scale, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	m8, err := workloads.RunContention(ContentionBenchConfig(scale, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	c8, err := workloads.RunContention(ContentionBenchConfig(scale, 8, false))
	if err != nil {
		t.Fatal(err)
	}
	if speedup := c8.OpsPerSec / m8.OpsPerSec; speedup < 2 {
		t.Errorf("W=8 two-tier speedup = %.2fx over mutex baseline (%.0f vs %.0f ops/s), want >= 2x",
			speedup, c8.OpsPerSec, m8.OpsPerSec)
	}
	// Small slack: a rare post-fence CAS loss pays a fence without
	// committing an op, which is legal but must stay marginal.
	if c8.FencesPerOp > w1.FencesPerOp*1.05 {
		t.Errorf("W=8 fences/op = %.3f exceeds W=1 level %.3f", c8.FencesPerOp, w1.FencesPerOp)
	}
	// Every measured op must be accounted to exactly one commit tier.
	cs := c8.Commit
	if got := cs.FastWins + cs.CombinedOps + cs.LockedCommits; got != uint64(c8.Ops) {
		t.Errorf("commit tiers account for %d ops (wins %d + combined %d + locked %d), want %d",
			got, cs.FastWins, cs.CombinedOps, cs.LockedCommits, c8.Ops)
	}
	if m8.Commit.LockedCommits != uint64(m8.Ops) {
		t.Errorf("mutex baseline committed %d of %d ops through the locked path",
			m8.Commit.LockedCommits, m8.Ops)
	}
}

// TestBenchGroupCommitFenceAmortization pins the headline property the
// regression gate protects: fences/op falls monotonically with batch
// size and is at least 2x lower at batch 64 than unbatched.
func TestBenchGroupCommitFenceAmortization(t *testing.T) {
	doc, err := BuildBenchDoc("test", benchTestScale())
	if err != nil {
		t.Fatalf("BuildBenchDoc: %v", err)
	}
	perShard := map[int][]BenchGroupCommit{}
	for _, g := range doc.GroupCommit {
		perShard[g.Shards] = append(perShard[g.Shards], g)
	}
	for shards, rows := range perShard {
		var at1, at64 float64
		for i := 1; i < len(rows); i++ {
			if rows[i].BatchSize <= rows[i-1].BatchSize {
				t.Fatalf("shards=%d: rows not in ascending batch order", shards)
			}
			if rows[i].FencesPerOp >= rows[i-1].FencesPerOp {
				t.Errorf("shards=%d: fences/op not monotonically decreasing: b=%d has %.4f, b=%d has %.4f",
					shards, rows[i-1].BatchSize, rows[i-1].FencesPerOp, rows[i].BatchSize, rows[i].FencesPerOp)
			}
		}
		for _, g := range rows {
			switch g.BatchSize {
			case 1:
				at1 = g.FencesPerOp
			case 64:
				at64 = g.FencesPerOp
			}
		}
		if at1 == 0 || at64 == 0 {
			t.Fatalf("shards=%d: sweep missing batch sizes 1 and 64", shards)
		}
		if at64 > at1/2 {
			t.Errorf("shards=%d: fences/op at batch=64 is %.4f, want <= half of batch=1's %.4f", shards, at64, at1)
		}
	}
}

// TestBenchTransientElision pins the headline property of the edit
// context: flushes/op and copies/op at 64 ops-per-FASE are at least 2x
// lower than unbatched, and both fall monotonically with FASE size.
func TestBenchTransientElision(t *testing.T) {
	doc, err := BuildBenchDoc("test", benchTestScale())
	if err != nil {
		t.Fatalf("BuildBenchDoc: %v", err)
	}
	byB := map[int]BenchTransient{}
	for i, tr := range doc.Transient {
		byB[tr.OpsPerFASE] = tr
		if i > 0 {
			prev := doc.Transient[i-1]
			if tr.OpsPerFASE <= prev.OpsPerFASE {
				t.Fatal("transient rows not in ascending ops-per-FASE order")
			}
			if tr.FlushesPerOp >= prev.FlushesPerOp {
				t.Errorf("flushes/op not falling: b=%d has %.2f, b=%d has %.2f",
					prev.OpsPerFASE, prev.FlushesPerOp, tr.OpsPerFASE, tr.FlushesPerOp)
			}
			if tr.CopiesPerOp >= prev.CopiesPerOp {
				t.Errorf("copies/op not falling: b=%d has %.2f, b=%d has %.2f",
					prev.OpsPerFASE, prev.CopiesPerOp, tr.OpsPerFASE, tr.CopiesPerOp)
			}
		}
	}
	at1, at64 := byB[1], byB[64]
	if at1.OpsPerFASE == 0 || at64.OpsPerFASE == 0 {
		t.Fatal("sweep missing ops-per-FASE 1 and 64")
	}
	if at64.FlushesPerOp > at1.FlushesPerOp/2 {
		t.Errorf("flushes/op at b=64 is %.2f, want <= half of b=1's %.2f", at64.FlushesPerOp, at1.FlushesPerOp)
	}
	if at64.CopiesPerOp > at1.CopiesPerOp/2 {
		t.Errorf("copies/op at b=64 is %.2f, want <= half of b=1's %.2f", at64.CopiesPerOp, at1.CopiesPerOp)
	}
}

// TestServerFenceAmortization pins the server sweep's headline shape
// with a deterministic margin: concurrent clients' durability tickets
// coalesce into shared committer fence epochs, so fences per acked
// write at 16 clients must be at most half the single-client cost
// (measured curves sit far below that — roughly 2.0 at C=1 and under
// 0.5 at C=16).
func TestServerFenceAmortization(t *testing.T) {
	scale := Scale{Ops: 4_000}
	one, err := RunServerBench(scale, 1)
	if err != nil {
		t.Fatalf("RunServerBench c=1: %v", err)
	}
	many, err := RunServerBench(scale, 16)
	if err != nil {
		t.Fatalf("RunServerBench c=16: %v", err)
	}
	if one.FencesPerOp <= 0 || many.FencesPerOp <= 0 {
		t.Fatalf("degenerate fence counts: c1=%v c16=%v", one.FencesPerOp, many.FencesPerOp)
	}
	if many.FencesPerOp > one.FencesPerOp/2 {
		t.Errorf("fences/op at 16 clients = %.3f, want <= half of 1 client's %.3f",
			many.FencesPerOp, one.FencesPerOp)
	}
}

func TestBenchDocRoundTripAndValidation(t *testing.T) {
	doc, err := BuildBenchDoc("test", benchTestScale())
	if err != nil {
		t.Fatalf("BuildBenchDoc: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	if err := WriteBenchDoc(doc, path); err != nil {
		t.Fatalf("WriteBenchDoc: %v", err)
	}
	got, err := ReadBenchDoc(path)
	if err != nil {
		t.Fatalf("ReadBenchDoc: %v", err)
	}
	if len(got.Workloads) != len(doc.Workloads) || len(got.GroupCommit) != len(doc.GroupCommit) {
		t.Errorf("round trip lost rows: %d/%d workloads, %d/%d groupcommit",
			len(got.Workloads), len(doc.Workloads), len(got.GroupCommit), len(doc.GroupCommit))
	}
	// The gate must reject documents that would silently diff as empty.
	bad := filepath.Join(t.TempDir(), "empty.json")
	if err := WriteBenchDoc(&BenchDoc{Schema: BenchSchema}, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchDoc(bad); err == nil {
		t.Error("ReadBenchDoc accepted a report with no workload rows")
	}
}

func TestCompareBenchDocs(t *testing.T) {
	base := &BenchDoc{
		Schema: BenchSchema, Scale: "test", Ops: 100,
		Workloads: []BenchWorkload{
			{Workload: "map", Engine: "mod", Ops: 100, SimNs: 1e6, OpsPerSec: 1e5, Fences: 100, Flushes: 1000},
			{Workload: "set", Engine: "mod", Ops: 100, SimNs: 1e6, OpsPerSec: 1e5, Fences: 100, Flushes: 1000},
		},
		GroupCommit: []BenchGroupCommit{
			{BatchSize: 64, Shards: 1, Ops: 100, Batches: 2, Fences: 2, Flushes: 1000,
				FencesPerOp: 0.02, FlushesPerOp: 10, ElapsedNs: 1e6, OpsPerSec: 1e5},
		},
		Transient: []BenchTransient{
			{OpsPerFASE: 64, Ops: 100, Fences: 5, Flushes: 300, Copies: 160,
				FencesPerOp: 0.05, FlushesPerOp: 3, CopiesPerOp: 1.6, ElapsedNs: 1e6, OpsPerSec: 1e5},
		},
		Sharded: []BenchSharded{
			{Shards: 4, Writers: 4, BatchSize: 1, Ops: 100, Fences: 100, Flushes: 1000,
				FencesPerOp: 1, FlushesPerOp: 10, ElapsedNs: 1e6, OpsPerSec: 4e5},
		},
		Selective: []BenchSelective{
			{Structure: "map", Selective: true, OpsPerFASE: 64, Ops: 100, Fences: 2, Flushes: 400,
				FencesPerOp: 0.02, FlushesPerOp: 4, CopiesPerOp: 5, ElapsedNs: 1e6, OpsPerSec: 1e5},
		},
		Recovery: []BenchRecovery{
			{Structure: "map", Selective: true, OpsPerFASE: 64, Ops: 100, RecoveryNs: 2e6, RebuiltNodes: 100},
		},
		Server: []BenchServer{
			{Clients: 16, Ops: 1000, ElapsedNs: 1e8, P50Ns: 5e4, P99Ns: 5e5, P999Ns: 1e6,
				OpsPerSec: 1e4, Fences: 100, FencesPerOp: 0.1},
		},
	}
	clone := func() *BenchDoc {
		data, _ := json.Marshal(base)
		var c BenchDoc
		json.Unmarshal(data, &c)
		return &c
	}

	if regs := CompareBenchDocs(base, clone(), 0.15); len(regs) != 0 {
		t.Errorf("identical docs flagged: %v", regs)
	}

	cur := clone()
	cur.Workloads[0].OpsPerSec *= 0.80 // -20% throughput
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("ops/sec drop not flagged exactly once: %v", regs)
	}
	if regs := CompareBenchDocs(base, cur, 0.30); len(regs) != 0 {
		t.Errorf("drop within widened tolerance flagged: %v", regs)
	}

	cur = clone()
	cur.Workloads[1].Fences = 130 // +30% fences/op
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("fences/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.GroupCommit[0].FencesPerOp = 0.08 // batched fences regressed 4x
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("groupcommit fences/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Workloads[0].Flushes = 1300 // +30% flushes/op
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("flushes/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Transient[0].CopiesPerOp = 2.4 // copy elision regressed 50%
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("transient copies/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Transient = nil
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("missing transient row not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Workloads = cur.Workloads[:1]
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("missing row not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Sharded[0].OpsPerSec *= 0.7 // sharded aggregate throughput regressed
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("sharded ops/sec drop not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Sharded[0].FencesPerOp = 1.5 // single-shard fence economy broken
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("sharded fences/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Sharded = nil
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("missing sharded row not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Selective[0].FlushesPerOp = 6 // selective flush advantage regressed 50%
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("selective flushes/op rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Recovery[0].RecoveryNs = 4e6 // recovery rebuild doubled
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("recovery_ns rise not flagged exactly once: %v", regs)
	}

	cur = clone()
	cur.Selective = nil
	cur.Recovery = nil
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 2 {
		t.Errorf("missing selective+recovery rows not flagged exactly twice: %v", regs)
	}

	// Server rows: wall-clock values are never gated, only presence.
	cur = clone()
	cur.Server[0].OpsPerSec *= 0.1
	cur.Server[0].FencesPerOp *= 100
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 0 {
		t.Errorf("nondeterministic server values gated: %v", regs)
	}
	cur = clone()
	cur.Server = nil
	if regs := CompareBenchDocs(base, cur, 0.15); len(regs) != 1 {
		t.Errorf("missing server row not flagged exactly once: %v", regs)
	}
}

func TestBenchNewRows(t *testing.T) {
	base := &BenchDoc{
		Schema: BenchSchema, Scale: "test", Ops: 100,
		Workloads: []BenchWorkload{
			{Workload: "map", Engine: "mod", Ops: 100, SimNs: 1e6, OpsPerSec: 1e5, Fences: 100, Flushes: 1000},
		},
	}
	cur := &BenchDoc{
		Schema: BenchSchema, Scale: "test", Ops: 100,
		Workloads: []BenchWorkload{
			{Workload: "map", Engine: "mod", Ops: 100, SimNs: 1e6, OpsPerSec: 1e5, Fences: 100, Flushes: 1000},
		},
		Selective: []BenchSelective{
			{Structure: "map", Selective: true, OpsPerFASE: 64, Ops: 100, Flushes: 400, FlushesPerOp: 4, OpsPerSec: 1e5},
		},
		Recovery: []BenchRecovery{
			{Structure: "map", Selective: true, OpsPerFASE: 64, Ops: 100, RecoveryNs: 2e6, RebuiltNodes: 100},
		},
		Server: []BenchServer{
			{Clients: 16, Ops: 1000, OpsPerSec: 1e4, Fences: 100, FencesPerOp: 0.1},
		},
	}
	if fresh := BenchNewRows(base, base); len(fresh) != 0 {
		t.Errorf("identical docs reported new rows: %v", fresh)
	}
	fresh := BenchNewRows(base, cur)
	want := []string{"selective/map/sel/b64", "recovery/map/sel/b64", "server/c16"}
	if len(fresh) != len(want) || fresh[0] != want[0] || fresh[1] != want[1] || fresh[2] != want[2] {
		t.Errorf("BenchNewRows = %v, want %v", fresh, want)
	}
	// Symmetric direction: rows only in base are CompareBenchDocs'
	// business, not new rows.
	if fresh := BenchNewRows(cur, base); len(fresh) != 0 {
		t.Errorf("rows missing from current flagged as new: %v", fresh)
	}
}
