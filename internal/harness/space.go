package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/funcds"
	"github.com/mod-ds/mod/internal/pmdkds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Table3 measures the growth in memory consumption when doubling each
// datastructure from N to 2N elements (paper Table 3, N = 1M).
//
// Methodology note (see DESIGN.md §3): the paper's ratios are only
// mutually consistent if the additional N inserts retain superseded
// versions — multi-versioning with structural sharing. Phase one builds N
// elements with normal reclamation (a compact single version); phase two
// inserts N more with reclamation disabled on the MOD side, so the ratio
// captures how much memory the structure's shadows cost relative to its
// compact size. Structural sharing keeps map/set/stack/queue near 2x
// while the vector's per-push path copies blow up by two orders of
// magnitude — the paper's 131x. The PMDK baselines reclaim normally in
// both phases.
func Table3(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "table3",
		Title: "Memory consumed at 2N elements relative to N (paper Table 3)",
		Note: fmt.Sprintf("N = %d (paper: 1M). Paper ratios - MOD: map 1.87x set 2.08x stack 2.25x queue 1.67x vector 131x; PMDK: 1.5-2x. "+
			"The retained regime (superseded versions kept across the doubling) is the only reading consistent with the paper's vector row; "+
			"see EXPERIMENTS.md.", scale.Table3N),
		Header: []string{"structure", "engine", "regime", "bytes@N", "bytes@2N", "ratio"},
	}
	n := scale.Table3N
	for _, structure := range []string{"map", "set", "stack", "queue", "vector"} {
		for _, retain := range []bool{false, true} {
			atN, at2N, err := modDoubling(structure, n, retain)
			if err != nil {
				return nil, err
			}
			regime := "reclaimed"
			if retain {
				regime = "retained"
			}
			t.AddRow(structure, "mod", regime, fmt.Sprintf("%d", atN), fmt.Sprintf("%d", at2N), f2(float64(at2N)/float64(atN)))
		}
		atN, at2N, err := pmdkDoubling(structure, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(structure, "pmdk", "reclaimed", fmt.Sprintf("%d", atN), fmt.Sprintf("%d", at2N), f2(float64(at2N)/float64(atN)))
	}
	return t, nil
}

// modDoubling builds N elements with reclamation, then N more — with
// reclamation still on, or retaining superseded versions — returning live
// bytes at both points.
func modDoubling(structure string, n int, retainVersions bool) (atN, at2N uint64, err error) {
	arena := int64(n)*4096 + (64 << 20)
	db, _, err := core.Open(pmem.DefaultConfig(arena))
	if err != nil {
		return 0, 0, err
	}
	store := db.Store()
	heap := store.Heap()
	base := heap.Stats().LiveBytes // store metadata (commit log), not structure
	insert, err := modInserter(store, structure)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		insert(uint64(i))
	}
	store.Sync()
	atN = heap.Stats().LiveBytes - base
	heap.DisableReclaim = retainVersions
	for i := n; i < 2*n; i++ {
		insert(uint64(i))
	}
	store.Sync()
	return atN, heap.Stats().LiveBytes - base, nil
}

func modInserter(store *core.Store, structure string) (func(uint64), error) {
	switch structure {
	case "map":
		m, err := store.Map("t3")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { m.Set(key8(i), val32(i)) }, nil
	case "set":
		s, err := store.Set("t3")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Insert(key8(i)) }, nil
	case "stack":
		s, err := store.Stack("t3")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Push(i) }, nil
	case "queue":
		q, err := store.Queue("t3")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { q.Enqueue(i) }, nil
	case "vector":
		v, err := store.Vector("t3")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { v.Push(i) }, nil
	}
	return nil, fmt.Errorf("unknown structure %q", structure)
}

// pmdkDoubling builds N then 2N elements on the STM baseline with normal
// reclamation throughout.
func pmdkDoubling(structure string, n int) (atN, at2N uint64, err error) {
	arena := int64(n)*1024 + (64 << 20)
	dev := pmem.New(pmem.DefaultConfig(arena))
	heap := alloc.Format(dev)
	tx := stm.New(dev, heap, stm.ModeV15)
	base := heap.Stats().LiveBytes // transaction log, not structure
	var insert func(uint64)
	switch structure {
	case "map":
		m, err := pmdkds.NewHashmap(tx, "t3", uint64(2*n))
		if err != nil {
			return 0, 0, err
		}
		insert = func(i uint64) { m.Set(key8(i), val32(i)) }
	case "set":
		s, err := pmdkds.NewHashset(tx, "t3", uint64(2*n))
		if err != nil {
			return 0, 0, err
		}
		insert = func(i uint64) { s.Insert(key8(i)) }
	case "stack":
		s, err := pmdkds.NewStack(tx, "t3")
		if err != nil {
			return 0, 0, err
		}
		insert = func(i uint64) { s.Push(i) }
	case "queue":
		q, err := pmdkds.NewQueue(tx, "t3")
		if err != nil {
			return 0, 0, err
		}
		insert = func(i uint64) { q.Enqueue(i) }
	case "vector":
		v, err := pmdkds.NewVector(tx, "t3")
		if err != nil {
			return 0, 0, err
		}
		insert = func(i uint64) { v.Push(i) }
	default:
		return 0, 0, fmt.Errorf("unknown structure %q", structure)
	}
	for i := 0; i < n; i++ {
		insert(uint64(i))
	}
	atN = heap.Stats().LiveBytes - base
	for i := n; i < 2*n; i++ {
		insert(uint64(i))
	}
	return atN, heap.Stats().LiveBytes - base, nil
}

// SpaceOverhead measures the extra memory one update allocates relative
// to the live structure at N elements — the §6.5 claim that a shadow
// needs 0.00002-0.00004x extra memory, far below naive shadow paging's 2x.
func SpaceOverhead(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "spaceoverhead",
		Title:  "Shadow space per update at N elements (paper §6.5)",
		Note:   fmt.Sprintf("N = %d. Paper: <0.01%% per update; naive shadow paging needs 100%%.", scale.Table3N),
		Header: []string{"structure", "live-bytes", "update-bytes", "overhead"},
	}
	n := scale.Table3N
	for _, structure := range []string{"map", "set", "stack", "queue", "vector"} {
		arena := int64(n)*2048 + (64 << 20)
		db, _, err := core.Open(pmem.DefaultConfig(arena))
		if err != nil {
			return nil, err
		}
		store := db.Store()
		heap := store.Heap()
		base := heap.Stats().LiveBytes
		insert, err := modInserter(store, structure)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			insert(uint64(i))
		}
		store.Sync()
		live := heap.Stats().LiveBytes - base
		before := heap.Stats().CumBytes
		insert(uint64(n + 1))
		grew := heap.Stats().CumBytes - before
		t.AddRow(structure, fmt.Sprintf("%d", live), fmt.Sprintf("%d", grew), pct(float64(grew)/float64(live)))
	}
	return t, nil
}

// AblationFlushConcurrency reruns MOD map inserts under decreasing flush
// concurrency caps, isolating how much of MOD's win comes from letting
// flushes overlap (§3's motivation).
func AblationFlushConcurrency(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "ablation-conc",
		Title:  "MOD map inserts vs flush concurrency cap (ablation)",
		Note:   "cap=1 forces every flush to serialize as if individually fenced.",
		Header: []string{"max-concurrency", "sim-ms", "ns/op", "slowdown-vs-32"},
	}
	n := scale.Ops
	var base float64
	for _, cap := range []int{32, 16, 8, 4, 2, 1} {
		cfg := pmem.DefaultConfig(int64(n)*1536 + (64 << 20))
		cfg.FlushMaxConcurrency = cap
		db, _, err := core.Open(cfg)
		if err != nil {
			return nil, err
		}
		store := db.Store()
		dev := store.Device()
		m, err := store.Map("abl")
		if err != nil {
			return nil, err
		}
		start := dev.Clock()
		for i := 0; i < n; i++ {
			m.Set(key8(uint64(i)), val32(uint64(i)))
		}
		elapsed := dev.Clock() - start
		if cap == 32 {
			base = elapsed
		}
		t.AddRow(fmt.Sprintf("%d", cap), ms(elapsed), f1(elapsed/float64(n)), f2(elapsed/base))
	}
	return t, nil
}

// AblationNaiveShadow compares MOD's structurally shared vector update
// against naive shadow paging (copy the whole array out of place, flush
// it, swap one pointer) — the overhead Functional Shadowing exists to
// avoid (§4.1).
func AblationNaiveShadow(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "ablation-naive",
		Title:  "Vector update: structural sharing vs naive shadow paging (ablation)",
		Note:   "Both are one fence per update; the naive shadow copies the full array each time.",
		Header: []string{"variant", "elements", "updates", "sim-ms", "bytes-allocated"},
	}
	n := uint64(4096)
	updates := 512

	// MOD trie vector with path copying.
	{
		db, _, err := core.Open(pmem.DefaultConfig(256 << 20))
		if err != nil {
			return nil, err
		}
		store := db.Store()
		dev := store.Device()
		v, err := store.Vector("abl")
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			v.Push(i)
		}
		store.Sync()
		before := store.Heap().Stats().CumBytes
		start := dev.Clock()
		for i := 0; i < updates; i++ {
			v.Update(uint64(i)%n, uint64(i))
		}
		elapsed := dev.Clock() - start
		grew := store.Heap().Stats().CumBytes - before
		t.AddRow("structural-sharing", fmt.Sprintf("%d", n), fmt.Sprintf("%d", updates), ms(elapsed), fmt.Sprintf("%d", grew))
	}

	// Naive shadow paging: whole-array copy per update.
	{
		dev := pmem.New(pmem.DefaultConfig(256 << 20))
		heap := alloc.Format(dev)
		funcds.RegisterWalkers(heap)
		slot, err := heap.RootSlot("abl")
		if err != nil {
			return nil, err
		}
		size := int(n) * 8
		cur := heap.Alloc(size, 0)
		buf := make([]byte, size)
		dev.Write(cur, buf)
		dev.FlushRange(cur, size)
		heap.SetRoot(slot, cur)
		dev.Sfence()
		before := heap.Stats().CumBytes
		start := dev.Clock()
		for i := 0; i < updates; i++ {
			shadow := heap.Alloc(size, 0)
			dev.Read(cur, buf)
			idx := (i % int(n)) * 8
			buf[idx] = byte(i)
			dev.Write(shadow, buf)
			dev.FlushRange(shadow, size)
			heap.Fence()
			heap.SetRoot(slot, shadow)
			heap.Release(cur)
			cur = shadow
		}
		elapsed := dev.Clock() - start
		grew := heap.Stats().CumBytes - before
		t.AddRow("naive-shadow", fmt.Sprintf("%d", n), fmt.Sprintf("%d", updates), ms(elapsed), fmt.Sprintf("%d", grew))
	}
	return t, nil
}
