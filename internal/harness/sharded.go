package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// ShardedShardCounts sweeps the shard counts of the sharded experiment.
// cmd/modbench -shards overrides it to a single count.
var ShardedShardCounts = []int{1, 2, 4, 8}

// ShardedWriterCounts sweeps the writer counts: 1 shows per-writer cost
// is unchanged, 4 shows the aggregate scaling the sharding buys.
var ShardedWriterCounts = []int{1, 4}

// ShardedCrossShardCounts are the shard counts of the cross-shard
// (manifest path) rows.
var ShardedCrossShardCounts = []int{2, 4}

// shardedCrossBatch is the batch size of the cross-shard rows.
const shardedCrossBatch = 16

// ShardedBenchConfig derives a deterministic sharded workload from a
// Scale.
func ShardedBenchConfig(scale Scale, shards, writers int) workloads.ShardedConfig {
	return workloads.ShardedConfig{
		Shards:      shards,
		Writers:     writers,
		Ops:         scale.Ops,
		PreloadKeys: max(scale.Ops/16, 64),
		Seed:        0x5aa4ded,
	}
}

// ShardedCrossBenchConfig derives the cross-shard (manifest) variant.
func ShardedCrossBenchConfig(scale Scale, shards, writers int) workloads.ShardedConfig {
	cfg := ShardedBenchConfig(scale, shards, writers)
	cfg.BatchSize = shardedCrossBatch
	cfg.CrossShard = true
	return cfg
}

// Sharded measures aggregate throughput and fence economy as the root
// namespace spreads over independent heap shards. The per-op rows pin
// the tentpole's two claims at once: fences/op stays exactly 1 at every
// shard count (single-shard operations keep their single ordering
// point), while aggregate ops/sec scales with shards because each shard
// is its own device region — no shared fence, no shared allocator, no
// shared commit mutex. The cross rows pay the manifest's 2k+2 fences
// per batch, the explicit price of cross-shard atomicity. A final
// parallel row reruns the widest point with real goroutines for
// information.
func Sharded(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "sharded",
		Title: "sharded store: aggregate scaling vs shard count (MOD engine)",
		Note:  "elapsed = busiest shard region (critical path); per-op and cross rows are deterministic and gated by cmd/benchdiff; parallel row is informational",
		Header: []string{"shards", "writers", "mode", "ops", "fences/op", "flushes/op",
			"ops/s", "speedup"},
	}
	bases := map[int]float64{} // writers -> S=1 ops/sec
	for _, writers := range ShardedWriterCounts {
		for _, shards := range ShardedShardCounts {
			res, err := workloads.RunSharded(ShardedBenchConfig(scale, shards, writers))
			if err != nil {
				return nil, err
			}
			if shards == 1 {
				bases[writers] = res.OpsPerSec
			}
			speedup := "-" // no S=1 base in a restricted sweep (-shards N)
			if base, ok := bases[writers]; ok {
				speedup = fmt.Sprintf("%.2fx", res.OpsPerSec/base)
			}
			t.AddRow(
				fmt.Sprintf("%d", res.Shards),
				fmt.Sprintf("%d", res.Writers),
				"per-op",
				fmt.Sprintf("%d", res.Ops),
				f3(res.FencesPerOp),
				f2(res.FlushesPerOp),
				f1(res.OpsPerSec),
				speedup,
			)
		}
	}
	for _, shards := range ShardedCrossShardCounts {
		res, err := workloads.RunSharded(ShardedCrossBenchConfig(scale, shards, shards))
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", res.Shards),
			fmt.Sprintf("%d", res.Writers),
			fmt.Sprintf("cross/b%d", res.BatchSize),
			fmt.Sprintf("%d", res.Ops),
			f3(res.FencesPerOp),
			f2(res.FlushesPerOp),
			f1(res.OpsPerSec),
			"-",
		)
	}
	widest := ShardedShardCounts[len(ShardedShardCounts)-1]
	cfg := ShardedBenchConfig(scale, widest, max(widest, 4))
	cfg.Parallel = true
	res, err := workloads.RunSharded(cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow(
		fmt.Sprintf("%d", res.Shards),
		fmt.Sprintf("%d", res.Writers),
		"parallel",
		fmt.Sprintf("%d", res.Ops),
		f3(res.FencesPerOp),
		f2(res.FlushesPerOp),
		f1(res.OpsPerSec),
		"-",
	)
	return t, nil
}
