package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// ConcurrentReaderCounts is the reader sweep of the scaling experiment.
var ConcurrentReaderCounts = []int{1, 2, 4, 8}

// ConcurrentBenchConfig derives the concurrent workload size from a
// Scale: roughly Ops/2 lookups per reader and Ops/8 commits per writer
// keeps the experiment comparable to the single-threaded workload sizes.
func ConcurrentBenchConfig(scale Scale, readers int) workloads.ConcurrentConfig {
	return workloads.ConcurrentConfig{
		Readers:     readers,
		Writers:     2,
		Shards:      4,
		ReaderOps:   scale.Ops / 2,
		WriterOps:   scale.Ops / 8,
		PreloadKeys: scale.Ops / 16,
		Seed:        0x5eed,
	}
}

// Concurrent measures aggregate throughput as reader goroutines are added
// alongside a fixed writer pool. Simulated elapsed time is the maximum
// per-goroutine clock, so scaling shows up as total operations growing
// while elapsed time stays roughly flat: snapshots are lock-free and
// never wait on committing writers. There is no paper analogue — MOD's
// evaluation is single-threaded — but the experiment demonstrates the
// concurrency its immutable committed versions enable.
func Concurrent(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "concurrent",
		Title: "reader scaling: snapshot lookups during concurrent commits (MOD engine)",
		Note:  "2 writers over 4 sharded maps; elapsed = max per-goroutine simulated time",
		Header: []string{"readers", "read-ops", "write-ops", "elapsed-ms", "reads/s", "ops/s",
			"speedup"},
	}
	var base float64
	for _, readers := range ConcurrentReaderCounts {
		res, err := workloads.RunConcurrent(ConcurrentBenchConfig(scale, readers))
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.OpsPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", readers),
			fmt.Sprintf("%d", res.ReadOps),
			fmt.Sprintf("%d", res.WriteOps),
			ms(res.ElapsedNs),
			f1(res.ReadsPerSec),
			f1(res.OpsPerSec),
			fmt.Sprintf("%.2fx", res.OpsPerSec/base),
		)
	}
	return t, nil
}
