package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/pmem/mmapdev"
)

// The mmap-backend sweep: the five recoverable structures driven
// through the identical core.Open front door, but over a file-backed
// mmapdev device instead of the simulator. These rows answer "does the
// deployable backend still move" — they run on the wall clock (real
// msync, real scheduling), so benchdiff tracks their presence and never
// gates their values, exactly like the server sweep. The fence and
// flush counts are the same fence discipline the simulator measures;
// comparing fences/op across the two backends is the honest check that
// the ordering model transfers.

// MmapWorkloads lists the structures the mmap sweep drives, in report
// order.
var MmapWorkloads = []string{"map", "set", "vector", "stack", "queue"}

// MmapBenchResult is one structure's run over the mmap backend.
type MmapBenchResult struct {
	Workload  string
	Ops       int
	ElapsedNs float64 // wall-clock
	Fences    uint64
	Flushes   uint64
}

// RunMmapBench runs ops operations of the named structure workload over
// a fresh file-backed store in dir (a temp dir when empty). It returns
// mmapdev.ErrUnsupported on platforms without the backend.
func RunMmapBench(workload string, ops int, dir string) (MmapBenchResult, error) {
	var res MmapBenchResult
	if dir == "" {
		d, err := os.MkdirTemp("", "modbench-mmap")
		if err != nil {
			return res, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	// Shadow updates allocate fresh nodes per FASE; size the arena to
	// the workload instead of modeling the allocator.
	size := int64(ops)*2048 + (32 << 20)
	dev, err := mmapdev.Create(filepath.Join(dir, workload+".pm"), size)
	if err != nil {
		return res, err
	}
	defer dev.Close()
	db, _, err := core.Open(pmem.Config{}, core.WithDevices(dev))
	if err != nil {
		return res, err
	}
	defer db.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("val-%08d", i)) }
	start := time.Now()
	before := dev.Stats()
	switch workload {
	case "map":
		m, err := db.Map("bench")
		if err != nil {
			return res, err
		}
		for i := 0; i < ops; i++ {
			m.Set(key(i), val(i))
		}
	case "set":
		s, err := db.Set("bench")
		if err != nil {
			return res, err
		}
		for i := 0; i < ops; i++ {
			s.Insert(key(i))
		}
	case "vector":
		v, err := db.Vector("bench")
		if err != nil {
			return res, err
		}
		for i := 0; i < ops; i++ {
			v.Push(uint64(i))
		}
	case "stack":
		s, err := db.Stack("bench")
		if err != nil {
			return res, err
		}
		for i := 0; i < ops; i++ {
			s.Push(uint64(i))
		}
	case "queue":
		q, err := db.Queue("bench")
		if err != nil {
			return res, err
		}
		for i := 0; i < ops; i++ {
			q.Enqueue(uint64(i))
		}
	default:
		return res, fmt.Errorf("mmap bench: unknown workload %q", workload)
	}
	db.Sync()
	after := dev.Stats()
	res = MmapBenchResult{
		Workload:  workload,
		Ops:       ops,
		ElapsedNs: float64(time.Since(start).Nanoseconds()),
		Fences:    after.Fences - before.Fences,
		Flushes:   after.Flushes - before.Flushes,
	}
	return res, nil
}
