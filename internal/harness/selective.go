package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// SelectiveStructures is the structure sweep of the selective-persistence
// experiment: the two navigation-heavy structures whose interior nodes
// dominate the flush bill.
var SelectiveStructures = []string{"map", "vector"}

// SelectiveOpsPerFASE is the ops-per-FASE sweep (1 = one commit per
// update; 64 is the batched point the acceptance gate reads).
var SelectiveOpsPerFASE = []int{1, 64}

// SelectiveBenchConfig derives a deterministic selective workload from a
// Scale. The preloads are deliberately large relative to the op budget:
// random updates over a deep trie rarely share interior nodes within a
// FASE, so the persist-all rows pay the full navigation flush bill that
// selective persistence elides. Recovery is measured on every run so the
// rebuild cost rides the same images the hot path produced.
func SelectiveBenchConfig(scale Scale, structure string, selective bool, opsPerFASE int) workloads.SelectiveConfig {
	preload := selectivePreload(scale.Ops)
	return workloads.SelectiveConfig{
		Structure:       structure,
		Selective:       selective,
		OpsPerFASE:      opsPerFASE,
		Ops:             scale.Ops,
		PreloadKeys:     preload,
		VectorPreload:   preload,
		MeasureRecovery: true,
		Seed:            0x5e1ec,
	}
}

// selectivePreload sizes the preloaded structure: about 20x the op budget
// (deep navigation, few repeated paths) capped at 32768 so bench runs
// stay fast, but never below 2x the budget so updates cannot touch a
// majority of the keyspace.
func selectivePreload(ops int) int {
	return max(ops*2, min(ops*20, 32768))
}

// Selective measures the "Don't Persist All" split (DESIGN.md §10): the
// same updates-only hot path with navigation nodes persisted (cache off)
// vs volatile-clean (selective flavor, DRAM node cache on). Selective
// rows flush only leaf blobs plus one record cell per update, so
// flushes/op drops and throughput climbs; the price is a recovery-time
// rebuild, reported in the last two columns. These are the headline
// columns the BENCH.json regression gate holds.
func Selective(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "selective",
		Title: "selective persistence: DRAM navigation over minimal PM cores (MOD engine)",
		Note:  "rows are deterministic and gated by cmd/benchdiff",
		Header: []string{"struct", "mode", "ops/FASE", "ops", "flushes/op", "copies/op",
			"fences/op", "dram-reads/op", "ops/s", "recovery-ms", "rebuilt"},
	}
	for _, structure := range SelectiveStructures {
		for _, sel := range []bool{false, true} {
			for _, b := range SelectiveOpsPerFASE {
				res, err := workloads.RunSelective(SelectiveBenchConfig(scale, structure, sel, b))
				if err != nil {
					return nil, err
				}
				mode := "persist-all"
				if sel {
					mode = "selective"
				}
				t.AddRow(
					structure,
					mode,
					fmt.Sprintf("%d", res.OpsPerFASE),
					fmt.Sprintf("%d", res.Ops),
					f2(res.FlushesPerOp),
					f2(res.CopiesPerOp),
					f3(res.FencesPerOp),
					f2(float64(res.DRAMReads)/float64(res.Ops)),
					f1(res.OpsPerSec),
					ms(res.RecoveryNs),
					fmt.Sprintf("%d", res.RebuiltNodes),
				)
			}
		}
	}
	return t, nil
}
