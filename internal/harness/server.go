package harness

import (
	"context"
	"fmt"
	"time"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/server"
	"github.com/mod-ds/mod/internal/server/loadgen"
)

// ServerClientCounts sweeps the concurrent connection count of the
// server experiment. The interesting shape is fences/op falling as
// clients rise: every write is acked only after its durability ticket
// resolves, and concurrent tickets coalesce into shared committer fence
// epochs, so the per-ack fence cost amortizes across clients
// (cross-client batch amplification).
var ServerClientCounts = []int{1, 4, 16, 64}

// ServerBenchResult is one point of the server sweep: an in-process
// modserver (PipeListener transport) under a closed-loop all-write
// load. Unlike the simulated sweeps these run on the wall clock with
// real goroutine scheduling, so latency and throughput are
// nondeterministic — benchdiff tracks row presence but does not gate
// values. Fences are still counted on the simulated device; their
// per-op ratio is the amplification curve.
type ServerBenchResult struct {
	Clients    int
	Ops        int
	Errors     int
	Elapsed    time.Duration
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Throughput float64 // acked ops per wall-clock second

	Fences      uint64
	FencesPerOp float64
}

// ServerBenchConfig derives the load from a Scale: all SETs (so
// fences/op is fences per durable ack), a few thousand ops per point,
// closed loop.
func ServerBenchConfig(scale Scale, clients int) loadgen.Config {
	ops := scale.Ops / 2
	if ops < 200 {
		ops = 200
	}
	return loadgen.Config{
		Clients:   clients,
		Ops:       ops,
		KeySpace:  4096,
		ValueSize: 64,
		ReadFrac:  0,
		Seed:      0x5eed,
	}
}

// serverLinger is the committer settle-fence collection window used by
// the sweep (matching cmd/modserver's default): long enough for
// request/response-paced arrivals to pile into shared epochs, short
// enough not to dominate single-client latency.
const serverLinger = 50 * time.Microsecond

// RunServerBench serves one sweep point: open a store with a background
// committer, serve it over an in-process listener, drive the load, and
// read the fence delta before shutting down.
func RunServerBench(scale Scale, clients int) (ServerBenchResult, error) {
	cfg := ServerBenchConfig(scale, clients)
	arena := int64(cfg.Ops)*4096 + (256 << 20)
	db, _, err := core.Open(pmem.DefaultConfig(arena),
		core.WithCommitter(0), core.WithCommitterLinger(serverLinger))
	if err != nil {
		return ServerBenchResult{}, err
	}
	srv, err := server.New(server.Config{KV: db})
	if err != nil {
		db.Close()
		return ServerBenchResult{}, err
	}
	pl := server.NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	statsBase := db.Stats()
	res, runErr := loadgen.Run(pl.Dial, cfg, nil)
	fences := db.Stats().Fences - statsBase.Fences

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return ServerBenchResult{}, fmt.Errorf("server shutdown: %w", err)
	}
	pl.Close()
	if err := <-serveErr; err != nil {
		return ServerBenchResult{}, fmt.Errorf("serve: %w", err)
	}
	if runErr != nil {
		return ServerBenchResult{}, runErr
	}
	if res.Errors > 0 {
		return ServerBenchResult{}, fmt.Errorf("server bench c=%d: %d errored ops", clients, res.Errors)
	}

	out := ServerBenchResult{
		Clients:    clients,
		Ops:        res.Ops,
		Errors:     res.Errors,
		Elapsed:    res.Elapsed,
		P50:        res.P50,
		P99:        res.P99,
		P999:       res.P999,
		Throughput: res.Throughput,
		Fences:     fences,
	}
	if res.Ops > 0 {
		out.FencesPerOp = float64(fences) / float64(res.Ops)
	}
	return out, nil
}

// ServerExperiment renders the sweep as a table (experiment "server").
func ServerExperiment(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "server",
		Title: "modserver: durability-acked writes vs concurrent clients",
		Note: "Closed-loop all-SET load over an in-process listener; every +OK waits for a durability ticket. " +
			"Wall-clock latency/throughput (nondeterministic); fences/op falls as concurrent tickets share committer epochs.",
		Header: []string{"clients", "ops", "throughput", "p50-us", "p99-us", "p999-us", "fences/op"},
	}
	for _, clients := range ServerClientCounts {
		res, err := RunServerBench(scale, clients)
		if err != nil {
			return nil, fmt.Errorf("server c=%d: %w", clients, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", res.Ops),
			f1(res.Throughput),
			f1(float64(res.P50)/1e3),
			f1(float64(res.P99)/1e3),
			f1(float64(res.P999)/1e3),
			f3(res.FencesPerOp),
		)
	}
	return t, nil
}
