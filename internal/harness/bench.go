// Machine-readable performance reporting (BENCH.json) and the regression
// comparison behind cmd/benchdiff. The schema lives here, beside the
// experiments that produce the numbers, so cmd/modbench, cmd/benchdiff,
// and the report-path unit tests all share one definition.
package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/workloads"
)

// BenchSchema is the current BENCH.json schema version. Version 2 added
// the group-commit sweep; version 3 added the transient (edit-context)
// sweep and the flushes/op and copies/op gate columns; version 4 added
// the sharded sweep (shards × writers, per-op and cross-shard rows).
const BenchSchema = 4

// BenchWorkload is one workload × engine measurement: the Table 2 suite
// run single-threaded, so every field is deterministic for a given
// binary and scale.
type BenchWorkload struct {
	Workload  string  `json:"workload"`
	Engine    string  `json:"engine"`
	Ops       int     `json:"ops"`
	SimNs     float64 `json:"sim_ns"`
	OpsPerSec float64 `json:"ops_per_sec"` // per simulated second
	Fences    uint64  `json:"fences"`
	Flushes   uint64  `json:"flushes"`
}

// FencesPerOp returns the row's average fences per operation.
func (w BenchWorkload) FencesPerOp() float64 { return float64(w.Fences) / float64(w.Ops) }

// FlushesPerOp returns the row's average flushes per operation.
func (w BenchWorkload) FlushesPerOp() float64 { return float64(w.Flushes) / float64(w.Ops) }

// BenchConcurrent is one point of the reader-scaling sweep. Goroutine
// interleaving makes these rows nondeterministic, so benchdiff treats
// them as informational.
type BenchConcurrent struct {
	Readers      int     `json:"readers"`
	Writers      int     `json:"writers"`
	ReadOps      int     `json:"read_ops"`
	WriteOps     int     `json:"write_ops"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	BusyNs       float64 `json:"busy_ns"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchGroupCommit is one point of the group-commit sweep (synchronous
// mode: single-goroutine, deterministic, gated by benchdiff).
type BenchGroupCommit struct {
	BatchSize    int     `json:"batch_size"`
	Shards       int     `json:"shards"`
	Ops          int     `json:"ops"`
	Batches      uint64  `json:"batches"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchTransient is one point of the transient (edit-context) sweep:
// single-goroutine, deterministic, gated by benchdiff on ops/sec,
// flushes/op, and copies/op.
type BenchTransient struct {
	OpsPerFASE   int     `json:"ops_per_fase"`
	Ops          int     `json:"ops"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FlushesSaved uint64  `json:"flushes_saved"`
	Copies       uint64  `json:"copies"`
	CopiesElided uint64  `json:"copies_elided"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	CopiesPerOp  float64 `json:"copies_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchSharded is one point of the sharded sweep (deterministic: the
// writers run sequentially and elapsed is the busiest shard region's
// busy time, the run's critical path — see workloads.RunSharded).
// Gated by benchdiff on ops/sec, fences/op, and flushes/op.
type BenchSharded struct {
	Shards       int     `json:"shards"`
	Writers      int     `json:"writers"`
	BatchSize    int     `json:"batch_size"`
	CrossShard   bool    `json:"cross_shard"`
	Ops          int     `json:"ops"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	BusyNs       float64 `json:"busy_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchDoc is the BENCH.json document.
type BenchDoc struct {
	Schema      int                `json:"schema"`
	Scale       string             `json:"scale"`
	Ops         int                `json:"ops"`
	Workloads   []BenchWorkload    `json:"workloads"`
	Concurrent  []BenchConcurrent  `json:"concurrent"`
	GroupCommit []BenchGroupCommit `json:"groupcommit"`
	Transient   []BenchTransient   `json:"transient"`
	Sharded     []BenchSharded     `json:"sharded,omitempty"`
}

// BuildBenchDoc runs the Table 2 workload suite on every engine, the
// concurrent reader-scaling sweep, the transient (edit-context) sweep,
// and the group-commit batch-size sweep at the given scale, and returns
// the report.
func BuildBenchDoc(scaleName string, scale Scale) (*BenchDoc, error) {
	workloads.SetVectorPreload(scale.VectorPreload)
	doc := &BenchDoc{Schema: BenchSchema, Scale: scaleName, Ops: scale.Ops}
	for _, name := range workloads.Names {
		for _, engine := range workloads.Engines {
			res, err := workloads.Run(name, engine, workloads.Config{Ops: scale.Ops})
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", name, engine, err)
			}
			doc.Workloads = append(doc.Workloads, BenchWorkload{
				Workload:  name,
				Engine:    res.Engine,
				Ops:       res.Ops,
				SimNs:     res.SimNs,
				OpsPerSec: float64(res.Ops) / (res.SimNs / 1e9),
				Fences:    res.Fences,
				Flushes:   res.Flushes,
			})
		}
	}
	for _, readers := range ConcurrentReaderCounts {
		res, err := workloads.RunConcurrent(ConcurrentBenchConfig(scale, readers))
		if err != nil {
			return nil, fmt.Errorf("bench concurrent r=%d: %w", readers, err)
		}
		doc.Concurrent = append(doc.Concurrent, BenchConcurrent{
			Readers:      res.Readers,
			Writers:      res.Writers,
			ReadOps:      res.ReadOps,
			WriteOps:     res.WriteOps,
			ElapsedNs:    res.ElapsedNs,
			BusyNs:       res.BusyNs,
			ReadsPerSec:  res.ReadsPerSec,
			WritesPerSec: res.WritesPerSec,
			OpsPerSec:    res.OpsPerSec,
		})
	}
	for _, b := range TransientOpsPerFASE {
		res, err := workloads.RunTransient(TransientBenchConfig(scale, b))
		if err != nil {
			return nil, fmt.Errorf("bench transient b=%d: %w", b, err)
		}
		doc.Transient = append(doc.Transient, BenchTransient{
			OpsPerFASE:   res.OpsPerFASE,
			Ops:          res.Ops,
			Fences:       res.Fences,
			Flushes:      res.Flushes,
			FlushesSaved: res.FlushesSaved,
			Copies:       res.Copies,
			CopiesElided: res.CopiesElided,
			FencesPerOp:  res.FencesPerOp,
			FlushesPerOp: res.FlushesPerOp,
			CopiesPerOp:  res.CopiesPerOp,
			ElapsedNs:    res.ElapsedNs,
			OpsPerSec:    res.OpsPerSec,
		})
	}
	addSharded := func(cfg workloads.ShardedConfig) error {
		res, err := workloads.RunSharded(cfg)
		if err != nil {
			return fmt.Errorf("bench sharded s=%d w=%d: %w", cfg.Shards, cfg.Writers, err)
		}
		doc.Sharded = append(doc.Sharded, BenchSharded{
			Shards:       res.Shards,
			Writers:      res.Writers,
			BatchSize:    res.BatchSize,
			CrossShard:   res.CrossShard,
			Ops:          res.Ops,
			Fences:       res.Fences,
			Flushes:      res.Flushes,
			FencesPerOp:  res.FencesPerOp,
			FlushesPerOp: res.FlushesPerOp,
			ElapsedNs:    res.ElapsedNs,
			BusyNs:       res.BusyNs,
			OpsPerSec:    res.OpsPerSec,
		})
		return nil
	}
	for _, writers := range ShardedWriterCounts {
		for _, shards := range ShardedShardCounts {
			if err := addSharded(ShardedBenchConfig(scale, shards, writers)); err != nil {
				return nil, err
			}
		}
	}
	for _, shards := range ShardedCrossShardCounts {
		if err := addSharded(ShardedCrossBenchConfig(scale, shards, shards)); err != nil {
			return nil, err
		}
	}
	for _, shards := range GroupCommitShardCounts {
		for _, bsz := range GroupCommitBatchSizes {
			res, err := workloads.RunGroupCommit(GroupCommitBenchConfig(scale, bsz, shards))
			if err != nil {
				return nil, fmt.Errorf("bench groupcommit b=%d s=%d: %w", bsz, shards, err)
			}
			doc.GroupCommit = append(doc.GroupCommit, BenchGroupCommit{
				BatchSize:    res.BatchSize,
				Shards:       res.Shards,
				Ops:          res.Ops,
				Batches:      res.Batches,
				Fences:       res.Fences,
				Flushes:      res.Flushes,
				FencesPerOp:  res.FencesPerOp,
				FlushesPerOp: res.FlushesPerOp,
				ElapsedNs:    res.ElapsedNs,
				OpsPerSec:    res.OpsPerSec,
			})
		}
	}
	return doc, nil
}

// WriteBenchDoc serializes the report to path.
func WriteBenchDoc(doc *BenchDoc, path string) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchDoc loads a report from path.
func ReadBenchDoc(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema == 0 || len(doc.Workloads) == 0 {
		return nil, fmt.Errorf("%s: not a BENCH.json report (schema=%d, %d workload rows)", path, doc.Schema, len(doc.Workloads))
	}
	return &doc, nil
}

// CompareBenchDocs checks cur against base and returns one message per
// regression, each prefixed by its row key: a deterministic row whose
// ops/sec dropped — or whose fences/op, flushes/op, or (transient rows)
// copies/op rose — by more than tol (fractional, e.g. 0.15), or a
// baseline row missing from cur. The nondeterministic concurrent sweep
// is not compared. An empty result means the gate passes.
func CompareBenchDocs(base, cur *BenchDoc, tol float64) []string {
	var regressions []string
	worse := func(kind, row string, baseV, curV float64, lowerIsBetter bool) {
		if baseV <= 0 {
			return
		}
		ratio := curV / baseV
		if lowerIsBetter && ratio > 1+tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s rose %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					row, kind, (ratio-1)*100, baseV, curV, tol*100))
		}
		if !lowerIsBetter && ratio < 1-tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s dropped %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					row, kind, (1-ratio)*100, baseV, curV, tol*100))
		}
	}

	curWorkloads := make(map[string]BenchWorkload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curWorkloads[w.Workload+"/"+w.Engine] = w
	}
	for _, b := range base.Workloads {
		key := b.Workload + "/" + b.Engine
		c, ok := curWorkloads[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp(), c.FencesPerOp(), true)
		worse("flushes/op", key, b.FlushesPerOp(), c.FlushesPerOp(), true)
	}

	curGC := make(map[string]BenchGroupCommit, len(cur.GroupCommit))
	for _, g := range cur.GroupCommit {
		curGC[fmt.Sprintf("groupcommit/b%d/s%d", g.BatchSize, g.Shards)] = g
	}
	for _, b := range base.GroupCommit {
		key := fmt.Sprintf("groupcommit/b%d/s%d", b.BatchSize, b.Shards)
		c, ok := curGC[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
	}

	shardedKey := func(s BenchSharded) string {
		mode := "perop"
		if s.CrossShard {
			mode = fmt.Sprintf("cross/b%d", s.BatchSize)
		} else if s.BatchSize > 1 {
			mode = fmt.Sprintf("batch/b%d", s.BatchSize)
		}
		return fmt.Sprintf("sharded/s%d/w%d/%s", s.Shards, s.Writers, mode)
	}
	curSh := make(map[string]BenchSharded, len(cur.Sharded))
	for _, s := range cur.Sharded {
		curSh[shardedKey(s)] = s
	}
	for _, b := range base.Sharded {
		key := shardedKey(b)
		c, ok := curSh[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
	}

	curTr := make(map[int]BenchTransient, len(cur.Transient))
	for _, t := range cur.Transient {
		curTr[t.OpsPerFASE] = t
	}
	for _, b := range base.Transient {
		key := fmt.Sprintf("transient/b%d", b.OpsPerFASE)
		c, ok := curTr[b.OpsPerFASE]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
		worse("copies/op", key, b.CopiesPerOp, c.CopiesPerOp, true)
	}
	return regressions
}
