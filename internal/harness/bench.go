// Machine-readable performance reporting (BENCH.json) and the regression
// comparison behind cmd/benchdiff. The schema lives here, beside the
// experiments that produce the numbers, so cmd/modbench, cmd/benchdiff,
// and the report-path unit tests all share one definition.
package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/mod-ds/mod/internal/workloads"
)

// BenchSchema is the current BENCH.json schema version. Version 2 added
// the group-commit sweep; version 3 added the transient (edit-context)
// sweep and the flushes/op and copies/op gate columns; version 4 added
// the sharded sweep (shards × writers, per-op and cross-shard rows);
// version 5 added the selective-persistence sweep and the recovery-time
// rows; version 6 added the server sweep (durability-acked ops over
// concurrent connections, presence-tracked but not value-gated);
// version 7 added the contention sweep (same-root writers under the
// per-root-mutex baseline vs the two-tier CAS/flat-combining path);
// version 8 added the mmap-backend sweep (wall-clock rows over a
// file-backed mmapdev store, presence-tracked like the server sweep,
// never value-gated).
const BenchSchema = 8

// BenchWorkload is one workload × engine measurement: the Table 2 suite
// run single-threaded, so every field is deterministic for a given
// binary and scale.
type BenchWorkload struct {
	Workload  string  `json:"workload"`
	Engine    string  `json:"engine"`
	Ops       int     `json:"ops"`
	SimNs     float64 `json:"sim_ns"`
	OpsPerSec float64 `json:"ops_per_sec"` // per simulated second
	Fences    uint64  `json:"fences"`
	Flushes   uint64  `json:"flushes"`
}

// FencesPerOp returns the row's average fences per operation.
func (w BenchWorkload) FencesPerOp() float64 { return float64(w.Fences) / float64(w.Ops) }

// FlushesPerOp returns the row's average flushes per operation.
func (w BenchWorkload) FlushesPerOp() float64 { return float64(w.Flushes) / float64(w.Ops) }

// BenchConcurrent is one point of the reader-scaling sweep. Goroutine
// interleaving makes these rows nondeterministic, so benchdiff treats
// them as informational.
type BenchConcurrent struct {
	Readers      int     `json:"readers"`
	Writers      int     `json:"writers"`
	ReadOps      int     `json:"read_ops"`
	WriteOps     int     `json:"write_ops"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	BusyNs       float64 `json:"busy_ns"`
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchGroupCommit is one point of the group-commit sweep (synchronous
// mode: single-goroutine, deterministic, gated by benchdiff).
type BenchGroupCommit struct {
	BatchSize    int     `json:"batch_size"`
	Shards       int     `json:"shards"`
	Ops          int     `json:"ops"`
	Batches      uint64  `json:"batches"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchTransient is one point of the transient (edit-context) sweep:
// single-goroutine, deterministic, gated by benchdiff on ops/sec,
// flushes/op, and copies/op.
type BenchTransient struct {
	OpsPerFASE   int     `json:"ops_per_fase"`
	Ops          int     `json:"ops"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FlushesSaved uint64  `json:"flushes_saved"`
	Copies       uint64  `json:"copies"`
	CopiesElided uint64  `json:"copies_elided"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	CopiesPerOp  float64 `json:"copies_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchSharded is one point of the sharded sweep (deterministic: the
// writers run sequentially and elapsed is the busiest shard region's
// busy time, the run's critical path — see workloads.RunSharded).
// Gated by benchdiff on ops/sec, fences/op, and flushes/op.
type BenchSharded struct {
	Shards       int     `json:"shards"`
	Writers      int     `json:"writers"`
	BatchSize    int     `json:"batch_size"`
	CrossShard   bool    `json:"cross_shard"`
	Ops          int     `json:"ops"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	BusyNs       float64 `json:"busy_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchSelective is one point of the selective-persistence sweep
// (DESIGN.md §10): an updates-only hot path against the selectively
// persisted flavor with the DRAM node cache on (selective=true) or the
// normal flavor with no cache (selective=false). Single-goroutine,
// deterministic, gated by benchdiff on ops/sec, flushes/op, and
// copies/op.
type BenchSelective struct {
	Structure    string  `json:"structure"`
	Selective    bool    `json:"selective"`
	OpsPerFASE   int     `json:"ops_per_fase"`
	Ops          int     `json:"ops"`
	Fences       uint64  `json:"fences"`
	Flushes      uint64  `json:"flushes"`
	Copies       uint64  `json:"copies"`
	DRAMReads    uint64  `json:"dram_reads"`
	FencesPerOp  float64 `json:"fences_per_op"`
	FlushesPerOp float64 `json:"flushes_per_op"`
	CopiesPerOp  float64 `json:"copies_per_op"`
	ElapsedNs    float64 `json:"elapsed_ns"`
	OpsPerSec    float64 `json:"ops_per_sec"`
}

// BenchRecovery is the recovery cost of reopening the crash image a
// selective-sweep run left behind: simulated reopen time (root scan,
// record replay, navigation rebuild) and the number of navigation nodes
// rebuilt. Deterministic; gated by benchdiff on recovery_ns.
type BenchRecovery struct {
	Structure    string  `json:"structure"`
	Selective    bool    `json:"selective"`
	OpsPerFASE   int     `json:"ops_per_fase"`
	Ops          int     `json:"ops"`
	RecoveryNs   float64 `json:"recovery_ns"`
	RebuiltNodes uint64  `json:"rebuilt_nodes"`
}

// BenchServer is one point of the server sweep: an in-process modserver
// under a closed-loop all-write load, every +OK gated on a durability
// ticket. These rows run on the wall clock (real goroutines, real
// scheduling), so — like the concurrent sweep — their values are
// nondeterministic: benchdiff tracks their presence but does not gate
// latency, throughput, or fences/op. The shape to read off the report
// is fences/op falling as clients rise (cross-client batch
// amplification through the group committer).
type BenchServer struct {
	Clients     int     `json:"clients"`
	Ops         int     `json:"ops"`
	Errors      int     `json:"errors"`
	ElapsedNs   float64 `json:"elapsed_ns"` // wall-clock, unlike the simulated sweeps
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
	OpsPerSec   float64 `json:"ops_per_sec"` // per wall-clock second
	Fences      uint64  `json:"fences"`
	FencesPerOp float64 `json:"fences_per_op"`
}

// BenchMmap is one structure of the mmap-backend sweep: the identical
// core.Open-built stack over a file-backed mmapdev device. Elapsed time
// is wall-clock (real msync), so — like the server sweep — benchdiff
// tracks these rows' presence but never gates their values. The fence
// and flush counts come from the same fence discipline the simulator
// measures, making fences/op the portable column to eyeball across
// backends.
type BenchMmap struct {
	Workload    string  `json:"workload"`
	Ops         int     `json:"ops"`
	ElapsedNs   float64 `json:"elapsed_ns"`  // wall-clock, unlike the simulated sweeps
	OpsPerSec   float64 `json:"ops_per_sec"` // per wall-clock second
	Fences      uint64  `json:"fences"`
	Flushes     uint64  `json:"flushes"`
	FencesPerOp float64 `json:"fences_per_op"`
}

// BenchContention is one writer count of the same-root contention sweep,
// carrying both commit modes (DESIGN.md §12). The mutex columns are
// deterministic (the baseline serializes, so real scheduling cannot
// change its simulated critical path) and benchdiff gates them against
// the baseline report. The cas columns depend on how the Go scheduler
// actually interleaves the writers — CAS losses and combining rounds
// only happen when goroutines really overlap — so benchdiff gates them
// with absolute floors instead of baseline ratios: speedup at W>=8 must
// stay at or above 2x, and cas fences/op must not exceed the W=1 level
// beyond tolerance.
type BenchContention struct {
	Writers          int     `json:"writers"`
	Ops              int     `json:"ops"`
	MutexElapsedNs   float64 `json:"mutex_elapsed_ns"`
	MutexOpsPerSec   float64 `json:"mutex_ops_per_sec"`
	MutexFencesPerOp float64 `json:"mutex_fences_per_op"`
	CasElapsedNs     float64 `json:"cas_elapsed_ns"`
	CasOpsPerSec     float64 `json:"cas_ops_per_sec"`
	CasFencesPerOp   float64 `json:"cas_fences_per_op"`
	Speedup          float64 `json:"speedup"` // cas ops/sec over mutex ops/sec
	FastWins         uint64  `json:"fast_wins"`
	FastAborts       uint64  `json:"fast_aborts"`
	FastLosses       uint64  `json:"fast_losses"`
	Combines         uint64  `json:"combines"`
	CombinedOps      uint64  `json:"combined_ops"`
}

// BenchDoc is the BENCH.json document.
type BenchDoc struct {
	Schema      int                `json:"schema"`
	Scale       string             `json:"scale"`
	Ops         int                `json:"ops"`
	Workloads   []BenchWorkload    `json:"workloads"`
	Concurrent  []BenchConcurrent  `json:"concurrent"`
	GroupCommit []BenchGroupCommit `json:"groupcommit"`
	Transient   []BenchTransient   `json:"transient"`
	Sharded     []BenchSharded     `json:"sharded,omitempty"`
	Selective   []BenchSelective   `json:"selective,omitempty"`
	Recovery    []BenchRecovery    `json:"recovery,omitempty"`
	Server      []BenchServer      `json:"server,omitempty"`
	Contention  []BenchContention  `json:"contention,omitempty"`
	Mmap        []BenchMmap        `json:"mmap,omitempty"`
}

// BenchBackend selects the extra backend sweep BuildBenchDoc appends to
// the simulator report: "sim" (none, the default) or "mmap" (the
// wall-clock mmapdev sweep; building the doc then fails on platforms
// without the backend). cmd/modbench sets it from -backend.
var BenchBackend = "sim"

// BuildBenchDoc runs the Table 2 workload suite on every engine, the
// concurrent reader-scaling sweep, the transient (edit-context) sweep,
// and the group-commit batch-size sweep at the given scale, and returns
// the report.
func BuildBenchDoc(scaleName string, scale Scale) (*BenchDoc, error) {
	workloads.SetVectorPreload(scale.VectorPreload)
	doc := &BenchDoc{Schema: BenchSchema, Scale: scaleName, Ops: scale.Ops}
	for _, name := range workloads.Names {
		for _, engine := range workloads.Engines {
			res, err := workloads.Run(name, engine, workloads.Config{Ops: scale.Ops})
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", name, engine, err)
			}
			doc.Workloads = append(doc.Workloads, BenchWorkload{
				Workload:  name,
				Engine:    res.Engine,
				Ops:       res.Ops,
				SimNs:     res.SimNs,
				OpsPerSec: float64(res.Ops) / (res.SimNs / 1e9),
				Fences:    res.Fences,
				Flushes:   res.Flushes,
			})
		}
	}
	for _, readers := range ConcurrentReaderCounts {
		res, err := workloads.RunConcurrent(ConcurrentBenchConfig(scale, readers))
		if err != nil {
			return nil, fmt.Errorf("bench concurrent r=%d: %w", readers, err)
		}
		doc.Concurrent = append(doc.Concurrent, BenchConcurrent{
			Readers:      res.Readers,
			Writers:      res.Writers,
			ReadOps:      res.ReadOps,
			WriteOps:     res.WriteOps,
			ElapsedNs:    res.ElapsedNs,
			BusyNs:       res.BusyNs,
			ReadsPerSec:  res.ReadsPerSec,
			WritesPerSec: res.WritesPerSec,
			OpsPerSec:    res.OpsPerSec,
		})
	}
	for _, b := range TransientOpsPerFASE {
		res, err := workloads.RunTransient(TransientBenchConfig(scale, b))
		if err != nil {
			return nil, fmt.Errorf("bench transient b=%d: %w", b, err)
		}
		doc.Transient = append(doc.Transient, BenchTransient{
			OpsPerFASE:   res.OpsPerFASE,
			Ops:          res.Ops,
			Fences:       res.Fences,
			Flushes:      res.Flushes,
			FlushesSaved: res.FlushesSaved,
			Copies:       res.Copies,
			CopiesElided: res.CopiesElided,
			FencesPerOp:  res.FencesPerOp,
			FlushesPerOp: res.FlushesPerOp,
			CopiesPerOp:  res.CopiesPerOp,
			ElapsedNs:    res.ElapsedNs,
			OpsPerSec:    res.OpsPerSec,
		})
	}
	for _, structure := range SelectiveStructures {
		for _, sel := range []bool{false, true} {
			for _, b := range SelectiveOpsPerFASE {
				res, err := workloads.RunSelective(SelectiveBenchConfig(scale, structure, sel, b))
				if err != nil {
					return nil, fmt.Errorf("bench selective %s sel=%v b=%d: %w", structure, sel, b, err)
				}
				doc.Selective = append(doc.Selective, BenchSelective{
					Structure:    res.Structure,
					Selective:    res.Selective,
					OpsPerFASE:   res.OpsPerFASE,
					Ops:          res.Ops,
					Fences:       res.Fences,
					Flushes:      res.Flushes,
					Copies:       res.Copies,
					DRAMReads:    res.DRAMReads,
					FencesPerOp:  res.FencesPerOp,
					FlushesPerOp: res.FlushesPerOp,
					CopiesPerOp:  res.CopiesPerOp,
					ElapsedNs:    res.ElapsedNs,
					OpsPerSec:    res.OpsPerSec,
				})
				doc.Recovery = append(doc.Recovery, BenchRecovery{
					Structure:    res.Structure,
					Selective:    res.Selective,
					OpsPerFASE:   res.OpsPerFASE,
					Ops:          res.Ops,
					RecoveryNs:   res.RecoveryNs,
					RebuiltNodes: res.RebuiltNodes,
				})
			}
		}
	}
	addSharded := func(cfg workloads.ShardedConfig) error {
		res, err := workloads.RunSharded(cfg)
		if err != nil {
			return fmt.Errorf("bench sharded s=%d w=%d: %w", cfg.Shards, cfg.Writers, err)
		}
		doc.Sharded = append(doc.Sharded, BenchSharded{
			Shards:       res.Shards,
			Writers:      res.Writers,
			BatchSize:    res.BatchSize,
			CrossShard:   res.CrossShard,
			Ops:          res.Ops,
			Fences:       res.Fences,
			Flushes:      res.Flushes,
			FencesPerOp:  res.FencesPerOp,
			FlushesPerOp: res.FlushesPerOp,
			ElapsedNs:    res.ElapsedNs,
			BusyNs:       res.BusyNs,
			OpsPerSec:    res.OpsPerSec,
		})
		return nil
	}
	for _, writers := range ShardedWriterCounts {
		for _, shards := range ShardedShardCounts {
			if err := addSharded(ShardedBenchConfig(scale, shards, writers)); err != nil {
				return nil, err
			}
		}
	}
	for _, shards := range ShardedCrossShardCounts {
		if err := addSharded(ShardedCrossBenchConfig(scale, shards, shards)); err != nil {
			return nil, err
		}
	}
	for _, clients := range ServerClientCounts {
		res, err := RunServerBench(scale, clients)
		if err != nil {
			return nil, fmt.Errorf("bench server c=%d: %w", clients, err)
		}
		doc.Server = append(doc.Server, BenchServer{
			Clients:     res.Clients,
			Ops:         res.Ops,
			Errors:      res.Errors,
			ElapsedNs:   float64(res.Elapsed),
			P50Ns:       float64(res.P50),
			P99Ns:       float64(res.P99),
			P999Ns:      float64(res.P999),
			OpsPerSec:   res.Throughput,
			Fences:      res.Fences,
			FencesPerOp: res.FencesPerOp,
		})
	}
	for _, w := range ContentionWriterCounts {
		mres, err := workloads.RunContention(ContentionBenchConfig(scale, w, true))
		if err != nil {
			return nil, fmt.Errorf("bench contention w=%d mutex: %w", w, err)
		}
		cres, err := workloads.RunContention(ContentionBenchConfig(scale, w, false))
		if err != nil {
			return nil, fmt.Errorf("bench contention w=%d cas: %w", w, err)
		}
		speedup := 0.0
		if mres.OpsPerSec > 0 {
			speedup = cres.OpsPerSec / mres.OpsPerSec
		}
		doc.Contention = append(doc.Contention, BenchContention{
			Writers:          w,
			Ops:              cres.Ops,
			MutexElapsedNs:   mres.ElapsedNs,
			MutexOpsPerSec:   mres.OpsPerSec,
			MutexFencesPerOp: mres.FencesPerOp,
			CasElapsedNs:     cres.ElapsedNs,
			CasOpsPerSec:     cres.OpsPerSec,
			CasFencesPerOp:   cres.FencesPerOp,
			Speedup:          speedup,
			FastWins:         cres.Commit.FastWins,
			FastAborts:       cres.Commit.FastAborts,
			FastLosses:       cres.Commit.FastLosses,
			Combines:         cres.Commit.Combines,
			CombinedOps:      cres.Commit.CombinedOps,
		})
	}
	if BenchBackend == "mmap" {
		for _, workload := range MmapWorkloads {
			res, err := RunMmapBench(workload, scale.Ops, "")
			if err != nil {
				return nil, fmt.Errorf("bench mmap %s: %w", workload, err)
			}
			doc.Mmap = append(doc.Mmap, BenchMmap{
				Workload:    res.Workload,
				Ops:         res.Ops,
				ElapsedNs:   res.ElapsedNs,
				OpsPerSec:   float64(res.Ops) / (res.ElapsedNs / 1e9),
				Fences:      res.Fences,
				Flushes:     res.Flushes,
				FencesPerOp: float64(res.Fences) / float64(res.Ops),
			})
		}
	}
	for _, shards := range GroupCommitShardCounts {
		for _, bsz := range GroupCommitBatchSizes {
			res, err := workloads.RunGroupCommit(GroupCommitBenchConfig(scale, bsz, shards))
			if err != nil {
				return nil, fmt.Errorf("bench groupcommit b=%d s=%d: %w", bsz, shards, err)
			}
			doc.GroupCommit = append(doc.GroupCommit, BenchGroupCommit{
				BatchSize:    res.BatchSize,
				Shards:       res.Shards,
				Ops:          res.Ops,
				Batches:      res.Batches,
				Fences:       res.Fences,
				Flushes:      res.Flushes,
				FencesPerOp:  res.FencesPerOp,
				FlushesPerOp: res.FlushesPerOp,
				ElapsedNs:    res.ElapsedNs,
				OpsPerSec:    res.OpsPerSec,
			})
		}
	}
	return doc, nil
}

// WriteBenchDoc serializes the report to path.
func WriteBenchDoc(doc *BenchDoc, path string) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchDoc loads a report from path.
func ReadBenchDoc(path string) (*BenchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc BenchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema == 0 || len(doc.Workloads) == 0 {
		return nil, fmt.Errorf("%s: not a BENCH.json report (schema=%d, %d workload rows)", path, doc.Schema, len(doc.Workloads))
	}
	return &doc, nil
}

// CompareBenchDocs checks cur against base and returns one message per
// regression, each prefixed by its row key: a deterministic row whose
// ops/sec dropped — or whose fences/op, flushes/op, or (transient rows)
// copies/op rose — by more than tol (fractional, e.g. 0.15), or a
// baseline row missing from cur. The nondeterministic concurrent sweep
// is not compared. An empty result means the gate passes.
func CompareBenchDocs(base, cur *BenchDoc, tol float64) []string {
	var regressions []string
	worse := func(kind, row string, baseV, curV float64, lowerIsBetter bool) {
		if baseV <= 0 {
			return
		}
		ratio := curV / baseV
		if lowerIsBetter && ratio > 1+tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s rose %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					row, kind, (ratio-1)*100, baseV, curV, tol*100))
		}
		if !lowerIsBetter && ratio < 1-tol {
			regressions = append(regressions,
				fmt.Sprintf("%s: %s dropped %.1f%% (%.4g -> %.4g, tolerance %.0f%%)",
					row, kind, (1-ratio)*100, baseV, curV, tol*100))
		}
	}

	curWorkloads := make(map[string]BenchWorkload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curWorkloads[w.Workload+"/"+w.Engine] = w
	}
	for _, b := range base.Workloads {
		key := b.Workload + "/" + b.Engine
		c, ok := curWorkloads[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp(), c.FencesPerOp(), true)
		worse("flushes/op", key, b.FlushesPerOp(), c.FlushesPerOp(), true)
	}

	curGC := make(map[string]BenchGroupCommit, len(cur.GroupCommit))
	for _, g := range cur.GroupCommit {
		curGC[fmt.Sprintf("groupcommit/b%d/s%d", g.BatchSize, g.Shards)] = g
	}
	for _, b := range base.GroupCommit {
		key := fmt.Sprintf("groupcommit/b%d/s%d", b.BatchSize, b.Shards)
		c, ok := curGC[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
	}

	shardedKey := func(s BenchSharded) string {
		mode := "perop"
		if s.CrossShard {
			mode = fmt.Sprintf("cross/b%d", s.BatchSize)
		} else if s.BatchSize > 1 {
			mode = fmt.Sprintf("batch/b%d", s.BatchSize)
		}
		return fmt.Sprintf("sharded/s%d/w%d/%s", s.Shards, s.Writers, mode)
	}
	curSh := make(map[string]BenchSharded, len(cur.Sharded))
	for _, s := range cur.Sharded {
		curSh[shardedKey(s)] = s
	}
	for _, b := range base.Sharded {
		key := shardedKey(b)
		c, ok := curSh[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
	}

	curTr := make(map[int]BenchTransient, len(cur.Transient))
	for _, t := range cur.Transient {
		curTr[t.OpsPerFASE] = t
	}
	for _, b := range base.Transient {
		key := fmt.Sprintf("transient/b%d", b.OpsPerFASE)
		c, ok := curTr[b.OpsPerFASE]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
		worse("copies/op", key, b.CopiesPerOp, c.CopiesPerOp, true)
	}

	curSel := make(map[string]BenchSelective, len(cur.Selective))
	for _, s := range cur.Selective {
		curSel[selectiveRowKey(s.Structure, s.Selective, s.OpsPerFASE)] = s
	}
	for _, b := range base.Selective {
		key := selectiveRowKey(b.Structure, b.Selective, b.OpsPerFASE)
		c, ok := curSel[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("ops/sec", key, b.OpsPerSec, c.OpsPerSec, false)
		worse("fences/op", key, b.FencesPerOp, c.FencesPerOp, true)
		worse("flushes/op", key, b.FlushesPerOp, c.FlushesPerOp, true)
		worse("copies/op", key, b.CopiesPerOp, c.CopiesPerOp, true)
	}

	// Server rows are wall-clock and nondeterministic: only their
	// presence is checked, never their values.
	curSrv := make(map[int]bool, len(cur.Server))
	for _, s := range cur.Server {
		curSrv[s.Clients] = true
	}
	for _, b := range base.Server {
		if !curSrv[b.Clients] {
			regressions = append(regressions,
				fmt.Sprintf("server/c%d: row missing from current report", b.Clients))
		}
	}

	// Mmap rows are wall-clock like the server sweep: presence is
	// checked, values never are.
	curMm := make(map[string]bool, len(cur.Mmap))
	for _, m := range cur.Mmap {
		curMm[m.Workload] = true
	}
	for _, b := range base.Mmap {
		if !curMm[b.Workload] {
			regressions = append(regressions,
				fmt.Sprintf("mmap/%s: row missing from current report", b.Workload))
		}
	}

	// Contention rows: the mutex baseline columns are deterministic and
	// gate against the baseline report; the cas columns depend on real
	// goroutine interleaving, so they gate against absolute floors — the
	// acceptance bar itself — rather than run-to-run ratios.
	curCt := make(map[int]BenchContention, len(cur.Contention))
	for _, c := range cur.Contention {
		curCt[c.Writers] = c
	}
	for _, b := range base.Contention {
		key := fmt.Sprintf("contention/w%d", b.Writers)
		c, ok := curCt[b.Writers]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("mutex ops/sec", key, b.MutexOpsPerSec, c.MutexOpsPerSec, false)
		worse("mutex fences/op", key, b.MutexFencesPerOp, c.MutexFencesPerOp, true)
	}
	if w1, ok := curCt[1]; ok {
		for _, c := range cur.Contention {
			key := fmt.Sprintf("contention/w%d", c.Writers)
			if c.Writers >= 8 && c.Speedup < 2 {
				regressions = append(regressions,
					fmt.Sprintf("%s: speedup %.2fx below the 2x same-root scaling floor", key, c.Speedup))
			}
			if w1.CasFencesPerOp > 0 && c.CasFencesPerOp > w1.CasFencesPerOp*(1+tol) {
				regressions = append(regressions,
					fmt.Sprintf("%s: cas fences/op %.4g above the W=1 level %.4g (tolerance %.0f%%)",
						key, c.CasFencesPerOp, w1.CasFencesPerOp, tol*100))
			}
		}
	}

	curRec := make(map[string]BenchRecovery, len(cur.Recovery))
	for _, r := range cur.Recovery {
		curRec[recoveryRowKey(r.Structure, r.Selective, r.OpsPerFASE)] = r
	}
	for _, b := range base.Recovery {
		key := recoveryRowKey(b.Structure, b.Selective, b.OpsPerFASE)
		c, ok := curRec[key]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: row missing from current report", key))
			continue
		}
		worse("recovery_ns", key, b.RecoveryNs, c.RecoveryNs, true)
	}
	return regressions
}

// CompareBenchOrdering asserts the §13 ordering-neutrality contract
// exactly: node checksums are written inside each FASE's existing
// flush+fence envelope, so the raw fence and flush counts of every
// single-threaded deterministic sweep must be bit-identical to the
// baseline — not merely within tolerance. Multi-writer and wall-clock
// sweeps (sharded with writers > 1, server, contention cas columns,
// the concurrent sweep) depend on goroutine interleaving and are
// excluded. Rows missing on either side are ignored here;
// CompareBenchDocs already reports those.
func CompareBenchOrdering(base, cur *BenchDoc) []string {
	var drift []string
	exact := func(key string, baseF, baseFl, curF, curFl uint64) {
		if baseF != curF {
			drift = append(drift, fmt.Sprintf("%s: fences %d -> %d (exact ordering gate)", key, baseF, curF))
		}
		if baseFl != curFl {
			drift = append(drift, fmt.Sprintf("%s: flushes %d -> %d (exact ordering gate)", key, baseFl, curFl))
		}
	}

	curWorkloads := make(map[string]BenchWorkload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curWorkloads[w.Workload+"/"+w.Engine] = w
	}
	for _, b := range base.Workloads {
		key := b.Workload + "/" + b.Engine
		if c, ok := curWorkloads[key]; ok {
			exact(key, b.Fences, b.Flushes, c.Fences, c.Flushes)
		}
	}

	curGC := make(map[string]BenchGroupCommit, len(cur.GroupCommit))
	for _, g := range cur.GroupCommit {
		curGC[fmt.Sprintf("groupcommit/b%d/s%d", g.BatchSize, g.Shards)] = g
	}
	for _, b := range base.GroupCommit {
		key := fmt.Sprintf("groupcommit/b%d/s%d", b.BatchSize, b.Shards)
		if c, ok := curGC[key]; ok {
			exact(key, b.Fences, b.Flushes, c.Fences, c.Flushes)
		}
	}

	curTr := make(map[int]BenchTransient, len(cur.Transient))
	for _, t := range cur.Transient {
		curTr[t.OpsPerFASE] = t
	}
	for _, b := range base.Transient {
		if c, ok := curTr[b.OpsPerFASE]; ok {
			exact(fmt.Sprintf("transient/b%d", b.OpsPerFASE), b.Fences, b.Flushes, c.Fences, c.Flushes)
		}
	}

	curSel := make(map[string]BenchSelective, len(cur.Selective))
	for _, s := range cur.Selective {
		curSel[selectiveRowKey(s.Structure, s.Selective, s.OpsPerFASE)] = s
	}
	for _, b := range base.Selective {
		key := selectiveRowKey(b.Structure, b.Selective, b.OpsPerFASE)
		if c, ok := curSel[key]; ok {
			exact(key, b.Fences, b.Flushes, c.Fences, c.Flushes)
		}
	}
	return drift
}

func selectiveRowKey(structure string, selective bool, opsPerFASE int) string {
	mode := "all"
	if selective {
		mode = "sel"
	}
	return fmt.Sprintf("selective/%s/%s/b%d", structure, mode, opsPerFASE)
}

func recoveryRowKey(structure string, selective bool, opsPerFASE int) string {
	mode := "all"
	if selective {
		mode = "sel"
	}
	return fmt.Sprintf("recovery/%s/%s/b%d", structure, mode, opsPerFASE)
}

// benchRowKeys returns the set of deterministic row keys in a report
// (the nondeterministic concurrent sweep is excluded, matching
// CompareBenchDocs).
func benchRowKeys(doc *BenchDoc) map[string]bool {
	keys := make(map[string]bool)
	for _, w := range doc.Workloads {
		keys[w.Workload+"/"+w.Engine] = true
	}
	for _, g := range doc.GroupCommit {
		keys[fmt.Sprintf("groupcommit/b%d/s%d", g.BatchSize, g.Shards)] = true
	}
	for _, s := range doc.Sharded {
		mode := "perop"
		if s.CrossShard {
			mode = fmt.Sprintf("cross/b%d", s.BatchSize)
		} else if s.BatchSize > 1 {
			mode = fmt.Sprintf("batch/b%d", s.BatchSize)
		}
		keys[fmt.Sprintf("sharded/s%d/w%d/%s", s.Shards, s.Writers, mode)] = true
	}
	for _, t := range doc.Transient {
		keys[fmt.Sprintf("transient/b%d", t.OpsPerFASE)] = true
	}
	for _, s := range doc.Selective {
		keys[selectiveRowKey(s.Structure, s.Selective, s.OpsPerFASE)] = true
	}
	for _, r := range doc.Recovery {
		keys[recoveryRowKey(r.Structure, r.Selective, r.OpsPerFASE)] = true
	}
	for _, s := range doc.Server {
		keys[fmt.Sprintf("server/c%d", s.Clients)] = true
	}
	for _, c := range doc.Contention {
		keys[fmt.Sprintf("contention/w%d", c.Writers)] = true
	}
	for _, m := range doc.Mmap {
		keys["mmap/"+m.Workload] = true
	}
	return keys
}

// BenchNewRows returns the deterministic row keys present in cur but
// absent from base, sorted by first appearance in cur. A non-empty
// result means the baseline is stale: new rows carry no gate until the
// baseline is regenerated, so cmd/benchdiff fails on them by default
// (-allow-new downgrades the failure to a warning).
func BenchNewRows(base, cur *BenchDoc) []string {
	baseKeys := benchRowKeys(base)
	var fresh []string
	seen := make(map[string]bool)
	appendKey := func(key string) {
		if !baseKeys[key] && !seen[key] {
			seen[key] = true
			fresh = append(fresh, key)
		}
	}
	for _, w := range cur.Workloads {
		appendKey(w.Workload + "/" + w.Engine)
	}
	for _, g := range cur.GroupCommit {
		appendKey(fmt.Sprintf("groupcommit/b%d/s%d", g.BatchSize, g.Shards))
	}
	for _, s := range cur.Sharded {
		mode := "perop"
		if s.CrossShard {
			mode = fmt.Sprintf("cross/b%d", s.BatchSize)
		} else if s.BatchSize > 1 {
			mode = fmt.Sprintf("batch/b%d", s.BatchSize)
		}
		appendKey(fmt.Sprintf("sharded/s%d/w%d/%s", s.Shards, s.Writers, mode))
	}
	for _, t := range cur.Transient {
		appendKey(fmt.Sprintf("transient/b%d", t.OpsPerFASE))
	}
	for _, s := range cur.Selective {
		appendKey(selectiveRowKey(s.Structure, s.Selective, s.OpsPerFASE))
	}
	for _, r := range cur.Recovery {
		appendKey(recoveryRowKey(r.Structure, r.Selective, r.OpsPerFASE))
	}
	for _, s := range cur.Server {
		appendKey(fmt.Sprintf("server/c%d", s.Clients))
	}
	for _, c := range cur.Contention {
		appendKey(fmt.Sprintf("contention/w%d", c.Writers))
	}
	for _, m := range cur.Mmap {
		appendKey("mmap/" + m.Workload)
	}
	return fresh
}
