package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// TransientOpsPerFASE is the ops-per-FASE sweep of the edit-context
// experiment (1 = full shadow cost per operation, the baseline).
var TransientOpsPerFASE = []int{1, 4, 16, 64, 256}

// TransientBenchConfig derives a deterministic transient workload size
// from a Scale.
func TransientBenchConfig(scale Scale, opsPerFASE int) workloads.TransientConfig {
	return workloads.TransientConfig{
		OpsPerFASE:    opsPerFASE,
		Ops:           scale.Ops,
		PreloadKeys:   max(scale.Ops/8, 64),
		VectorPreload: max(scale.Ops/4, 128),
		Seed:          0xed17,
	}
}

// Transient measures copy elision and flush coalescing as the FASE size
// grows: inside one edit context the first operation on a root copies
// its path and every later operation mutates the owned shadow in place,
// so copies/op and flushes/op fall with ops-per-FASE while throughput
// climbs (DESIGN.md §8). These are the headline columns the BENCH.json
// regression gate holds.
func Transient(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "transient",
		Title: "edit contexts: copy elision and flush coalescing vs ops-per-FASE (MOD engine)",
		Note:  "rows are deterministic and gated by cmd/benchdiff",
		Header: []string{"ops/FASE", "ops", "copies/op", "elided/op", "flushes/op",
			"saved/op", "fences/op", "ops/s", "speedup"},
	}
	var base float64
	for _, b := range TransientOpsPerFASE {
		res, err := workloads.RunTransient(TransientBenchConfig(scale, b))
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = res.OpsPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", res.OpsPerFASE),
			fmt.Sprintf("%d", res.Ops),
			f2(res.CopiesPerOp),
			f2(float64(res.CopiesElided)/float64(res.Ops)),
			f2(res.FlushesPerOp),
			f2(float64(res.FlushesSaved)/float64(res.Ops)),
			f3(res.FencesPerOp),
			f1(res.OpsPerSec),
			fmt.Sprintf("%.2fx", res.OpsPerSec/base),
		)
	}
	return t, nil
}
