// Package harness regenerates every table and figure of the MOD paper's
// evaluation (§6) from the simulated system: Fig. 2 (PM-STM time
// breakdown), Fig. 4 (flush latency vs concurrency with the Amdahl fit),
// Fig. 9 (execution time across engines), Fig. 10 (fences vs flushes per
// operation), Fig. 11 (L1D miss ratios), Table 1 (machine model), Table 2
// (workload registry), Table 3 (memory growth on doubling), plus the §6.5
// shadow-space measurement and two ablations (flush-concurrency cap and
// naive shadow paging without structural sharing).
//
// Numbers are simulated nanoseconds from the device clock; the paper's
// absolute Optane numbers are not reproducible, but the shapes — who
// wins, by what factor, where the crossovers fall — are the target
// (EXPERIMENTS.md records paper-vs-measured for each artifact).
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Scale sets experiment sizes. The paper runs 1M operations per workload;
// the default scale keeps full-suite runtime in seconds.
type Scale struct {
	// Ops per workload iteration count.
	Ops int
	// VectorPreload is the element count for vector/vec-swap (the paper
	// preloads 1M).
	VectorPreload int
	// Table3N is the base element count N for the 2N-vs-N memory ratio
	// (the paper uses 1M).
	Table3N int
	// PerOpSamples is the op count for the Fig. 10 per-operation counts.
	PerOpSamples int
}

// DefaultScale is sized for interactive runs (tens of seconds).
func DefaultScale() Scale {
	return Scale{Ops: 20_000, VectorPreload: 20_000, Table3N: 20_000, PerOpSamples: 2_000}
}

// FullScale approaches the paper's configuration (minutes of runtime).
func FullScale() Scale {
	return Scale{Ops: 1_000_000, VectorPreload: 1_000_000, Table3N: 1_000_000, PerOpSamples: 20_000}
}

// SmallScale is for tests and benchmarks.
func SmallScale() Scale {
	return Scale{Ops: 1_500, VectorPreload: 1_500, Table3N: 1_500, PerOpSamples: 300}
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig9"
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes an aligned text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// ms renders nanoseconds as milliseconds.
func ms(ns float64) string { return fmt.Sprintf("%.3f", ns/1e6) }

// pct renders a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// Experiment names accepted by Run and cmd/modbench.
var Experiments = []string{
	"table1", "table2", "fig2", "fig4", "fig9", "fig10", "fig11", "table3",
	"spaceoverhead", "ablation-conc", "ablation-naive", "concurrent",
	"groupcommit", "transient", "sharded", "selective", "server",
	"contention",
}

// Run executes one named experiment at the given scale.
func Run(name string, scale Scale) (*Table, error) {
	switch name {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "fig2":
		return Fig2(scale)
	case "fig4":
		return Fig4(), nil
	case "fig9":
		return Fig9(scale)
	case "fig10":
		return Fig10(scale)
	case "fig11":
		return Fig11(scale)
	case "table3":
		return Table3(scale)
	case "spaceoverhead":
		return SpaceOverhead(scale)
	case "ablation-conc":
		return AblationFlushConcurrency(scale)
	case "ablation-naive":
		return AblationNaiveShadow(scale)
	case "concurrent":
		return Concurrent(scale)
	case "groupcommit":
		return GroupCommit(scale)
	case "transient":
		return Transient(scale)
	case "sharded":
		return Sharded(scale)
	case "selective":
		return Selective(scale)
	case "server":
		return ServerExperiment(scale)
	case "contention":
		return Contention(scale)
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, Experiments)
}

// RunAll executes every experiment and renders them to w.
func RunAll(w io.Writer, scale Scale) error {
	for _, name := range Experiments {
		t, err := Run(name, scale)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		t.Render(w)
	}
	return nil
}
