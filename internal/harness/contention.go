package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/workloads"
)

// ContentionWriterCounts sweeps same-root writer counts: 1 is the
// uncontended cost, 8 is the acceptance point (two-tier path must beat
// the mutex baseline by at least 2x), 16 shows the combining regime.
var ContentionWriterCounts = []int{1, 2, 4, 8, 16}

// ContentionBenchConfig derives the contention workload size from a
// Scale. Ops are split per writer so total committed work stays roughly
// constant across the sweep.
func ContentionBenchConfig(scale Scale, writers int, mutexBaseline bool) workloads.ContentionConfig {
	per := scale.Ops / 16
	if per < 200 {
		per = 200
	}
	return workloads.ContentionConfig{
		Writers:       writers,
		OpsPerWriter:  per,
		Keyspace:      512,
		MutexBaseline: mutexBaseline,
		Seed:          0x5eed,
	}
}

// Contention measures same-root writer scaling: W goroutines updating
// one shared map root under the legacy per-root mutex versus the
// two-tier optimistic CAS / flat-combining commit path (DESIGN.md §12).
// The mutex baseline's elapsed time grows linearly with W (the root's
// serialized-section watermark makes Go mutex waits cost simulated
// time), so its aggregate ops/sec stays flat; the two-tier path builds
// shadows in parallel and publishes with an 8-byte CAS, so ops/sec
// scales with W while fences/op stays at or below the W=1 level.
func Contention(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "contention",
		Title: "same-root writer scaling: per-root mutex vs optimistic CAS + flat combining",
		Note:  "W writers on one shared map root; elapsed = max per-goroutine simulated time",
		Header: []string{"writers", "ops", "mutex-ops/s", "cas-ops/s", "speedup",
			"cas-fences/op", "wins", "aborts", "losses", "combines", "combined"},
	}
	for _, w := range ContentionWriterCounts {
		mres, err := workloads.RunContention(ContentionBenchConfig(scale, w, true))
		if err != nil {
			return nil, err
		}
		cres, err := workloads.RunContention(ContentionBenchConfig(scale, w, false))
		if err != nil {
			return nil, err
		}
		speedup := 0.0
		if mres.OpsPerSec > 0 {
			speedup = cres.OpsPerSec / mres.OpsPerSec
		}
		t.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", cres.Ops),
			f1(mres.OpsPerSec),
			f1(cres.OpsPerSec),
			fmt.Sprintf("%.2fx", speedup),
			f3(cres.FencesPerOp),
			fmt.Sprintf("%d", cres.Commit.FastWins),
			fmt.Sprintf("%d", cres.Commit.FastAborts),
			fmt.Sprintf("%d", cres.Commit.FastLosses),
			fmt.Sprintf("%d", cres.Commit.Combines),
			fmt.Sprintf("%d", cres.Commit.CombinedOps),
		)
	}
	return t, nil
}
