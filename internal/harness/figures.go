package harness

import (
	"fmt"

	"github.com/mod-ds/mod/internal/cachesim"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/workloads"
)

// Table1 prints the simulated machine model (paper Table 1 analogue).
func Table1() *Table {
	cfg := pmem.DefaultConfig(1)
	t := &Table{
		ID:     "table1",
		Title:  "Simulated machine configuration (paper Table 1)",
		Note:   "Substituted hardware: the device model uses the paper's own measured latencies and Amdahl fit.",
		Header: []string{"parameter", "value", "paper"},
	}
	t.AddRow("L1D cache", fmt.Sprintf("%d KB, %d-way, %d B lines", cachesim.SizeBytes>>10, cachesim.Ways, cachesim.LineSize), "32KB Dcache")
	t.AddRow("PM read latency (L1 miss)", fmt.Sprintf("%.0f ns", cfg.PMReadNs), "302 ns random 8B read")
	t.AddRow("clwb+sfence latency", fmt.Sprintf("%.0f ns", cfg.FlushLatencyNs), "353 ns (§3)")
	t.AddRow("flush parallel fraction", f2(cfg.FlushParallelFrac), "0.82 (Karp-Flatt fit, Fig. 4)")
	t.AddRow("flush concurrency cap", fmt.Sprintf("%d", cfg.FlushMaxConcurrency), "no gain beyond 32 (§3)")
	t.AddRow("clwb issue cost", fmt.Sprintf("%.0f ns", cfg.ClwbIssueNs), "commits instantly (Fig. 3)")
	return t
}

// Table2 prints the workload registry (paper Table 2 analogue).
func Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Benchmarks (paper Table 2)",
		Header: []string{"benchmark", "description", "configuration"},
	}
	t.AddRow("map", "insert/lookup random keys in map", "8B key, 32B value")
	t.AddRow("set", "insert/lookup random keys in set", "8B key")
	t.AddRow("stack", "push/pop elements from top of stack", "8B elements")
	t.AddRow("queue", "enqueue/dequeue elements in queue", "8B elements")
	t.AddRow("vector", "update/read random indices in vector", "8B elements")
	t.AddRow("vec-swap", "swap two random elements in vector", "8B elements (canneal kernel)")
	t.AddRow("bfs", "BFS with recoverable queue on R-MAT graph", "Flickr scale: 0.82M nodes, 9.84M edges")
	t.AddRow("vacation", "travel reservations, four recoverable maps", "55% reservations, CommitSiblings")
	t.AddRow("memcached", "KV store over one recoverable map", "95% sets, 5% gets, 16B key, 512B value")
	return t
}

// Fig2 reports the fraction of execution time spent logging and flushing
// under PMDK v1.5 for every workload (paper Fig. 2).
func Fig2(scale Scale) (*Table, error) {
	workloads.SetVectorPreload(scale.VectorPreload)
	t := &Table{
		ID:     "fig2",
		Title:  "Fraction of execution time in flushing/logging, PMDK v1.5 (paper Fig. 2)",
		Note:   "Paper: ~64% flushing, ~9% logging on average.",
		Header: []string{"workload", "other", "flush", "log", "sim-ms"},
	}
	var flushSum, logSum float64
	for _, name := range workloads.Names {
		res, err := workloads.Run(name, workloads.EnginePMDK15, workloads.Config{Ops: scale.Ops})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, pct(res.OtherNs/res.SimNs), pct(res.FlushFrac()), pct(res.LogFrac()), ms(res.SimNs))
		flushSum += res.FlushFrac()
		logSum += res.LogFrac()
	}
	n := float64(len(workloads.Names))
	t.AddRow("average", pct(1-flushSum/n-logSum/n), pct(flushSum/n), pct(logSum/n), "")
	return t, nil
}

// Fig4 reports average flush latency against flush concurrency, the
// Amdahl-model prediction, and the Karp-Flatt serial fraction implied by
// the observations (paper Fig. 4 and the §3 microbenchmark: 320 dirty
// lines, a fence every N clwbs).
func Fig4() *Table {
	t := &Table{
		ID:     "fig4",
		Title:  "Average PM flush latency vs concurrency (paper Fig. 4)",
		Note:   "Paper: 353 ns un-overlapped; 16 concurrent flushes ~75% faster; plateau past 32.",
		Header: []string{"concurrency", "observed-ns", "model-ns", "speedup", "karp-flatt-serial"},
	}
	const lines = 320
	var base float64
	for _, conc := range []int{1, 2, 4, 8, 16, 24, 32} {
		dev := pmem.New(pmem.DefaultConfig(lines*pmem.LineSize + 4096))
		for i := 0; i < lines; i++ {
			dev.WriteU64(pmem.Addr(i*pmem.LineSize), uint64(i))
		}
		start := dev.Clock()
		for i := 0; i < lines; i++ {
			dev.Clwb(pmem.Addr(i * pmem.LineSize))
			if (i+1)%conc == 0 {
				dev.Sfence()
			}
		}
		if lines%conc != 0 {
			dev.Sfence()
		}
		observed := (dev.Clock() - start) / lines
		model := dev.FenceStallNs(conc)/float64(conc) + dev.Config().ClwbIssueNs
		if conc == 1 {
			base = observed
			t.AddRow("1", f1(observed), f1(model), "1.00", "-")
			continue
		}
		speedup := base / observed
		// Karp-Flatt serial fraction: e = (1/ψ − 1/p) / (1 − 1/p).
		p := float64(conc)
		e := (1/speedup - 1/p) / (1 - 1/p)
		t.AddRow(fmt.Sprintf("%d", conc), f1(observed), f1(model), f2(speedup), f3(e))
	}
	return t
}

// Fig9 reports execution time for every workload and engine, normalized
// to PMDK v1.5, with the other/flush/log breakdown (paper Fig. 9).
func Fig9(scale Scale) (*Table, error) {
	workloads.SetVectorPreload(scale.VectorPreload)
	t := &Table{
		ID:    "fig9",
		Title: "Execution time by engine, normalized to PMDK v1.5 (paper Fig. 9)",
		Note: "Paper: MOD speeds up map/set/queue/stack by ~43%, applications by ~36%, " +
			"and slows vector/vec-swap down (tree vs flat array).",
		Header: []string{"workload", "engine", "sim-ms", "norm", "other", "flush", "log"},
	}
	var geoMicro, geoApp float64
	var nMicro, nApp int
	for _, name := range workloads.Names {
		results := map[workloads.Engine]workloads.Result{}
		for _, engine := range workloads.Engines {
			res, err := workloads.Run(name, engine, workloads.Config{Ops: scale.Ops})
			if err != nil {
				return nil, err
			}
			results[engine] = res
		}
		baseline := results[workloads.EnginePMDK15].SimNs
		for _, engine := range workloads.Engines {
			res := results[engine]
			t.AddRow(name, res.Engine, ms(res.SimNs), f2(res.SimNs/baseline),
				pct(res.OtherNs/res.SimNs), pct(res.FlushFrac()), pct(res.LogFrac()))
		}
		speed := results[workloads.EngineMOD].SimNs / baseline
		switch name {
		case "map", "set", "queue", "stack":
			geoMicro += speed
			nMicro++
		case "bfs", "vacation", "memcached":
			geoApp += speed
			nApp++
		}
	}
	if nMicro > 0 && nApp > 0 {
		t.Note += fmt.Sprintf(" Measured: MOD mean %.0f%% faster on pointer microbenchmarks, %.0f%% on applications.",
			100*(1-geoMicro/float64(nMicro)), 100*(1-geoApp/float64(nApp)))
	}
	return t, nil
}

// Fig11 reports L1D miss ratios per workload for PMDK v1.5 and MOD
// (paper Fig. 11).
func Fig11(scale Scale) (*Table, error) {
	workloads.SetVectorPreload(scale.VectorPreload)
	t := &Table{
		ID:     "fig11",
		Title:  "L1D cache miss ratios (paper Fig. 11)",
		Note:   "Paper: MOD map/set/vector show 2.8-4.6x the misses of PMDK; stack/queue/bfs comparable.",
		Header: []string{"workload", "pmdk-v1.5", "mod", "mod/pmdk"},
	}
	for _, name := range workloads.Names {
		pm, err := workloads.Run(name, workloads.EnginePMDK15, workloads.Config{Ops: scale.Ops})
		if err != nil {
			return nil, err
		}
		mod, err := workloads.Run(name, workloads.EngineMOD, workloads.Config{Ops: scale.Ops})
		if err != nil {
			return nil, err
		}
		ratio := "-"
		if pm.Cache.MissRatio() > 0 {
			ratio = f2(mod.Cache.MissRatio() / pm.Cache.MissRatio())
		}
		t.AddRow(name, pct(pm.Cache.MissRatio()), pct(mod.Cache.MissRatio()), ratio)
	}
	return t, nil
}
