package harness

import (
	"encoding/binary"
	"fmt"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmdkds"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/stm"
)

// Fig10 measures ordering (fences per operation) and flushing (flushes
// per operation) for each update operation under MOD and PMDK v1.5 —
// the scatter plot of paper Fig. 10.
func Fig10(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "fig10",
		Title: "Fences and flushes per update operation (paper Fig. 10)",
		Note: "Paper: MOD always 1 fence/op; PMDK 3-11 fences and 4-23 flushes; " +
			"MOD queue-pop occasionally reverses a list (flush burst); MOD vector flushes far more lines than PMDK.",
		Header: []string{"operation", "engine", "fences/op", "flushes/op"},
	}
	ops := []string{"map-insert", "set-insert", "queue-push", "queue-pop", "stack-push", "stack-pop", "vector-write", "vec-swap"}
	for _, op := range ops {
		for _, engine := range []string{"mod", "pmdk-v1.5"} {
			fences, flushes, err := measureOp(op, engine, scale.PerOpSamples)
			if err != nil {
				return nil, fmt.Errorf("measuring %s/%s: %w", op, engine, err)
			}
			t.AddRow(op, engine, f2(fences), f2(flushes))
		}
	}
	return t, nil
}

func key8(i uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

func val32(i uint64) []byte {
	b := make([]byte, 32)
	binary.LittleEndian.PutUint64(b, i)
	return b
}

// measureOp runs n iterations of one named operation and returns fences
// and flushes per operation, excluding setup.
func measureOp(op, engine string, n int) (fencesPerOp, flushesPerOp float64, err error) {
	arena := int64(n)*2048 + (64 << 20)

	var dev pmem.Backend
	var run func(i uint64)
	if engine == "mod" {
		db, _, err := core.Open(pmem.DefaultConfig(arena))
		if err != nil {
			return 0, 0, err
		}
		store := db.Store()
		dev = store.Device()
		run, err = modOp(store, op, n)
		if err != nil {
			return 0, 0, err
		}
	} else {
		dev = pmem.New(pmem.DefaultConfig(arena))
		heap := alloc.Format(dev)
		tx := stm.New(dev, heap, stm.ModeV15)
		run, err = pmdkOp(tx, op, n)
		if err != nil {
			return 0, 0, err
		}
	}
	before := dev.Stats()
	for i := 0; i < n; i++ {
		run(uint64(i))
	}
	delta := dev.Stats().Sub(before)
	return float64(delta.Fences) / float64(n), float64(delta.Flushes) / float64(n), nil
}

func modOp(store *core.Store, op string, n int) (func(uint64), error) {
	switch op {
	case "map-insert":
		m, err := store.Map("perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { m.Set(key8(i), val32(i)) }, nil
	case "set-insert":
		s, err := store.Set("perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Insert(key8(i)) }, nil
	case "queue-push":
		q, err := store.Queue("perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { q.Enqueue(i) }, nil
	case "queue-pop":
		q, err := store.Queue("perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			q.Enqueue(uint64(i))
		}
		return func(uint64) { q.Dequeue() }, nil
	case "stack-push":
		s, err := store.Stack("perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Push(i) }, nil
	case "stack-pop":
		s, err := store.Stack("perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s.Push(uint64(i))
		}
		return func(uint64) { s.Pop() }, nil
	case "vector-write":
		v, err := store.Vector("perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v.Push(uint64(i))
		}
		return func(i uint64) { v.Update(i%uint64(n), i) }, nil
	case "vec-swap":
		v, err := store.Vector("perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v.Push(uint64(i))
		}
		return func(i uint64) { v.Swap(i%uint64(n), (i*7)%uint64(n)) }, nil
	}
	return nil, fmt.Errorf("unknown per-op benchmark %q", op)
}

func pmdkOp(tx *stm.TX, op string, n int) (func(uint64), error) {
	switch op {
	case "map-insert":
		m, err := pmdkds.NewHashmap(tx, "perop", uint64(n))
		if err != nil {
			return nil, err
		}
		return func(i uint64) { m.Set(key8(i), val32(i)) }, nil
	case "set-insert":
		s, err := pmdkds.NewHashset(tx, "perop", uint64(n))
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Insert(key8(i)) }, nil
	case "queue-push":
		q, err := pmdkds.NewQueue(tx, "perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { q.Enqueue(i) }, nil
	case "queue-pop":
		q, err := pmdkds.NewQueue(tx, "perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			q.Enqueue(uint64(i))
		}
		return func(uint64) { q.Dequeue() }, nil
	case "stack-push":
		s, err := pmdkds.NewStack(tx, "perop")
		if err != nil {
			return nil, err
		}
		return func(i uint64) { s.Push(i) }, nil
	case "stack-pop":
		s, err := pmdkds.NewStack(tx, "perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			s.Push(uint64(i))
		}
		return func(uint64) { s.Pop() }, nil
	case "vector-write":
		v, err := pmdkds.NewVector(tx, "perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v.Push(uint64(i))
		}
		return func(i uint64) { v.Update(i%uint64(n), i) }, nil
	case "vec-swap":
		v, err := pmdkds.NewVector(tx, "perop")
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			v.Push(uint64(i))
		}
		return func(i uint64) { v.Swap(i%uint64(n), (i*7)%uint64(n)) }, nil
	}
	return nil, fmt.Errorf("unknown per-op benchmark %q", op)
}
