package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func cell(t *testing.T, tab *Table, rowMatch func([]string) bool, col int) string {
	t.Helper()
	for _, row := range tab.Rows {
		if rowMatch(row) {
			return row[col]
		}
	}
	t.Fatalf("%s: no matching row", tab.ID)
	return ""
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	tab := Fig4()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	base := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "1" }, 1))
	if base < 300 || base > 420 {
		t.Fatalf("un-overlapped flush latency = %.0f ns, paper: 353", base)
	}
	sp16 := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "16" }, 3))
	if sp16 < 3.0 {
		t.Fatalf("speedup at 16 = %.2f, paper: ~4x (75%% reduction)", sp16)
	}
	// Karp-Flatt serial fraction should recover roughly the 0.18 fit.
	e16 := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "16" }, 4))
	if e16 < 0.10 || e16 > 0.30 {
		t.Fatalf("Karp-Flatt serial fraction = %.3f, paper fit: 0.18", e16)
	}
	// Plateau: 24 -> 32 improves average latency by only a few percent.
	l24 := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "24" }, 1))
	l32 := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "32" }, 1))
	if (l24-l32)/l24 > 0.10 {
		t.Fatalf("24->32 improved %.0f%%: expected a plateau", 100*(l24-l32)/l24)
	}
}

func TestFig2FlushingDominates(t *testing.T) {
	tab, err := Fig2(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	avgFlush := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "average" }, 2))
	if avgFlush < 30 {
		t.Fatalf("average flush fraction = %.1f%%, paper: ~64%%", avgFlush)
	}
	avgLog := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "average" }, 3))
	if avgLog <= 0 || avgLog > 30 {
		t.Fatalf("average log fraction = %.1f%%, paper: ~9%%", avgLog)
	}
}

func TestFig9MODWinsAndLosesWherePaperSays(t *testing.T) {
	tab, err := Fig9(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	norm := func(workload string) float64 {
		return parseF(t, cell(t, tab, func(r []string) bool { return r[0] == workload && r[1] == "mod" }, 3))
	}
	for _, w := range []string{"map", "set", "queue", "stack"} {
		if n := norm(w); n >= 1.0 {
			t.Errorf("%s: MOD normalized time %.2f, want < 1 (Fig. 9)", w, n)
		}
	}
	for _, w := range []string{"vector", "vec-swap"} {
		if n := norm(w); n <= 1.0 {
			t.Errorf("%s: MOD normalized time %.2f, want > 1 (Fig. 9)", w, n)
		}
	}
	// v1.4 slower than v1.5 on average.
	var v14 float64
	var count int
	for _, row := range tab.Rows {
		if row[1] == "pmdk-v1.4" {
			v14 += parseF(t, row[3])
			count++
		}
	}
	if v14/float64(count) <= 1.0 {
		t.Errorf("average v1.4 normalized time %.2f, want > 1 (§6.3)", v14/float64(count))
	}
}

func TestFig10MODOneFencePMDKMany(t *testing.T) {
	tab, err := Fig10(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		fences := parseF(t, row[2])
		if row[1] == "mod" && fences != 1.0 {
			t.Errorf("%s mod fences/op = %v, want exactly 1 (§6.4)", row[0], fences)
		}
		if row[1] == "pmdk-v1.5" && (fences < 3 || fences > 11) {
			t.Errorf("%s pmdk fences/op = %v, want 3-11 (Fig. 10)", row[0], fences)
		}
	}
	// MOD vector writes flush far more than PMDK's single-slot update.
	modVec := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "vector-write" && r[1] == "mod" }, 3))
	pmdkVec := parseF(t, cell(t, tab, func(r []string) bool { return r[0] == "vector-write" && r[1] == "pmdk-v1.5" }, 3))
	if modVec < 2*pmdkVec {
		t.Errorf("vector-write flushes: mod %.1f vs pmdk %.1f, expected mod >> pmdk (§6.4)", modVec, pmdkVec)
	}
}

func TestFig11RendersAllWorkloads(t *testing.T) {
	tab, err := Fig11(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("Fig11 rows = %d, want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		parseF(t, row[1])
		parseF(t, row[2])
	}
}

func TestTable3VectorBlowsUp(t *testing.T) {
	tab, err := Table3(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(structure, engine, regime string) float64 {
		return parseF(t, cell(t, tab, func(r []string) bool {
			return r[0] == structure && r[1] == engine && r[2] == regime
		}, 5))
	}
	for _, s := range []string{"map", "set", "stack", "queue", "vector"} {
		if r := ratio(s, "mod", "reclaimed"); r < 1.3 || r > 2.6 {
			t.Errorf("mod %s reclaimed doubling ratio %.2f, want ~2x", s, r)
		}
		if r := ratio(s, "pmdk", "reclaimed"); r < 1.2 || r > 4.5 {
			t.Errorf("pmdk %s doubling ratio %.2f, want ~1.5-2x", s, r)
		}
	}
	// The tail buffer caps a retained push at one leaf copy plus a header
	// instead of the whole spine, so the blowup is smaller than the
	// paper's tail-less 131x — but the vector must still dwarf the map.
	vecRetained := ratio("vector", "mod", "retained")
	if vecRetained < 20 {
		t.Errorf("mod vector retained ratio %.1f, want two orders of magnitude (paper 131x)", vecRetained)
	}
	mapRetained := ratio("map", "mod", "retained")
	if vecRetained < 2.5*mapRetained {
		t.Errorf("vector retained ratio %.1f should dwarf map's %.1f (paper: 131x vs 1.87x)", vecRetained, mapRetained)
	}
}

func TestSpaceOverheadTiny(t *testing.T) {
	tab, err := SpaceOverhead(Scale{Table3N: 30000})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if overhead := parseF(t, row[3]); overhead > 0.5 {
			t.Errorf("%s shadow overhead %.3f%%, paper: <0.01%% at 1M (scale-adjusted bound 0.5%%)", row[0], overhead)
		}
	}
}

func TestAblations(t *testing.T) {
	conc, err := AblationFlushConcurrency(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	slow1 := parseF(t, cell(t, conc, func(r []string) bool { return r[0] == "1" }, 3))
	if slow1 <= 1.1 {
		t.Errorf("cap=1 slowdown %.2f, expected serialized flushes to hurt", slow1)
	}
	naive, err := AblationNaiveShadow(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	shared := parseF(t, cell(t, naive, func(r []string) bool { return r[0] == "structural-sharing" }, 3))
	whole := parseF(t, cell(t, naive, func(r []string) bool { return r[0] == "naive-shadow" }, 3))
	if whole < 5*shared {
		t.Errorf("naive shadow %.3fms vs shared %.3fms: expected >5x gap", whole, shared)
	}
}

func TestRunAllAndRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, SmallScale()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range Experiments {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
	// CSV rendering.
	tab := Table1()
	var csv bytes.Buffer
	tab.CSV(&csv)
	if !strings.Contains(csv.String(), "parameter,value,paper") {
		t.Error("CSV header missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", DefaultScale()); err == nil {
		t.Fatal("unknown experiment must error")
	}
}
