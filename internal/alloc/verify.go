package alloc

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
)

// Verification (DESIGN.md §13). Power-loss recovery trusts the durable
// image: every fence-covered byte is assumed to read back as written.
// Media faults break that assumption, so this file adds the two read-back
// checks the corruption-resilient open builds on:
//
//   - VerifyRoot walks one root's reachable nodes eagerly, checking every
//     node's header and checksum BEFORE descending through its pointers —
//     a corrupt node's garbage children are never dereferenced, so damage
//     is contained to an accurate report instead of a wild read.
//   - ArmLazyVerify taints every checksummed block after recovery;
//     VerifyOnRead then checks a tainted block the first time a
//     structure read touches it, and raises a typed CorruptionPanic that
//     the serving layer converts to an error reply.
//
// Both paths read through the raw arena view (pmem.Device.Bytes): the
// checks model scrub machinery reading around the poisoned-line ECC, so
// they classify dead lines via RangeDead instead of crashing on them.

// DataBounds returns the heap's block area [lo, hi): the first header
// address above the superblock and root directory, and the current bump
// top. This is exactly the range node checksums protect; fault-injection
// sweeps target it.
func (h *Heap) DataBounds() (lo, hi pmem.Addr) { return heapBase, h.sh.top }

// BlockError describes one damaged block found by verification.
type BlockError struct {
	Addr   pmem.Addr // payload address of the damaged block
	Tag    uint8     // block tag as read (possibly itself damaged)
	Reason string
}

func (e *BlockError) Error() string {
	return fmt.Sprintf("alloc: corrupt block %#x (tag %d): %s", uint64(e.Addr), e.Tag, e.Reason)
}

// CorruptionPanic is the typed panic value raised by a lazy on-read
// verification failure deep inside a structure read path that has no
// error return. The serving layer recovers it and answers with a
// corruption error instead of crashing.
type CorruptionPanic struct {
	Block BlockError
}

func (p *CorruptionPanic) Error() string { return p.Block.Error() }

// verifyNode checks the block at payload without descending: bounds, a
// readable and well-formed header, and — when the checksum word is
// present — a matching CRC over the covered payload. It returns the
// parsed stride/tag/volatile state for the caller's walk. A nil error
// with vol=true means the node is volatile navigation state whose
// payload recovery zeroes and rebuilds: there is nothing to checksum and
// its children must not be walked.
func (h *Heap) verifyNode(payload pmem.Addr) (stride uint32, tag uint8, vol bool, err *BlockError) {
	defer h.dev.BeginRecovery()()
	hdr := payload - headerSize
	if payload < heapBase+headerSize || hdr >= h.sh.top {
		return 0, 0, false, &BlockError{Addr: payload, Reason: "pointer outside heap"}
	}
	if line, dead := h.dev.RangeDead(hdr, headerSize); dead {
		return 0, 0, false, &BlockError{Addr: payload, Reason: fmt.Sprintf("unreadable header line %#x", uint64(line))}
	}
	raw := h.dev.Bytes(hdr, headerSize)
	w0 := leU64(raw[:8])
	stride, tag, allocated, ok := unpackHeader(w0)
	switch {
	case !ok:
		return 0, 0, false, &BlockError{Addr: payload, Reason: fmt.Sprintf("bad header word %#x", w0)}
	case !allocated:
		return 0, 0, false, &BlockError{Addr: payload, Tag: tag, Reason: "pointer into free block"}
	case stride < headerSize+8 || hdr+pmem.Addr(stride) > h.sh.top:
		return 0, 0, false, &BlockError{Addr: payload, Tag: tag, Reason: fmt.Sprintf("implausible stride %d", stride)}
	}
	vol = w0&hdrVolatileBit != 0
	if vol {
		return stride, tag, true, nil
	}
	n, crc, has := unpackCheck(leU64(raw[8:]))
	if !has {
		// Legacy allocation path (no checksum): the header parse above is
		// the only structural check available.
		return stride, tag, false, nil
	}
	if n < 0 || n > int(stride)-headerSize {
		return 0, 0, false, &BlockError{Addr: payload, Tag: tag, Reason: fmt.Sprintf("checksum covers %d bytes of a %d-byte block", n, stride)}
	}
	if line, dead := h.dev.RangeDead(hdr, headerSize+n); dead {
		return 0, 0, false, &BlockError{Addr: payload, Tag: tag, Reason: fmt.Sprintf("unreadable line %#x", uint64(line))}
	}
	if got := h.nodeCRC(hdr, n); got != crc {
		return 0, 0, false, &BlockError{Addr: payload, Tag: tag, Reason: fmt.Sprintf("checksum mismatch (stored %#x, computed %#x)", crc, got)}
	}
	return stride, tag, false, nil
}

// VerifyBlock checks the single block at payload — bounds, readable
// well-formed header, checksum when present — without descending through
// its pointers. It never panics: poisoned lines classify as errors.
func (h *Heap) VerifyBlock(payload pmem.Addr) error {
	if _, _, _, berr := h.verifyNode(payload); berr != nil {
		return berr
	}
	return nil
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// VerifyRoot eagerly verifies every durable node reachable from the root
// in slot, verify-before-descend. It returns nil for an empty or fully
// healthy root and a *BlockError (wrapped walker panics included) for a
// damaged one. Dead lines under the root cell itself are reported too.
func (h *Heap) VerifyRoot(slot int) (err error) {
	if line, dead := h.dev.RangeDead(rootEntryAddr(slot), rootEntrySize); dead {
		return &BlockError{Addr: rootEntryAddr(slot), Reason: fmt.Sprintf("unreadable root cell line %#x", uint64(line))}
	}
	endScan := h.dev.BeginRecovery()
	root := pmem.Addr(leU64(h.dev.Bytes(h.RootCellAddr(slot), 8)))
	endScan()
	if root == pmem.Nil {
		return nil
	}
	// Walkers read through the normal device path; a media fault or torn
	// header there panics, which this wrapper converts into the same
	// error shape as a direct check failure.
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *pmem.MediaError:
				err = &BlockError{Addr: v.Addr, Reason: "media error during walk"}
			case *CorruptionPanic:
				err = &v.Block
			default:
				err = &BlockError{Addr: root, Reason: fmt.Sprintf("walk failed: %v", r)}
			}
		}
	}()
	visited := make(map[pmem.Addr]struct{})
	stack := []pmem.Addr{root}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := visited[a]; seen {
			continue
		}
		visited[a] = struct{}{}
		_, tag, vol, berr := h.verifyNode(a)
		if berr != nil {
			return berr
		}
		if vol {
			// Volatile navigation state: zeroed and rebuilt by recovery,
			// never descended (its children were swept).
			continue
		}
		// Tags without a registered walker are opaque leaf blocks (raw
		// blobs, the store's anchor records): recovery's mark pass treats
		// them the same way. verifyNode above already checked their
		// header and checksum; there is nothing to descend into.
		w := h.sh.walkers[tag]
		if w == nil {
			continue
		}
		w(h, a, func(child pmem.Addr) {
			if child != pmem.Nil {
				stack = append(stack, child)
			}
		})
	}
	return nil
}

// VerifyRoots verifies every claimed root slot and returns the damaged
// ones as slot -> error (empty map: fully healthy heap).
func (h *Heap) VerifyRoots() map[int]error {
	damaged := make(map[int]error)
	endScan := h.dev.BeginRecovery()
	defer endScan()
	for slot := 0; slot < RootSlots; slot++ {
		if leU64(h.dev.Bytes(rootEntryAddr(slot), 8)) == 0 {
			continue
		}
		if err := h.VerifyRoot(slot); err != nil {
			damaged[slot] = err
		}
	}
	return damaged
}

// ArmLazyVerify taints every checksummed allocated block in the heap so
// the first post-recovery read of each one re-verifies it (VerifyOnRead).
// The scan is a linear chain walk — no pointer chasing, so it is safe to
// run on a heap that was recovered without eager verification. Call once
// after Recover, before the heap serves reads.
func (h *Heap) ArmLazyVerify() {
	defer h.dev.BeginRecovery()()
	sh := h.sh
	taint := make(map[pmem.Addr]struct{})
	addr := pmem.Addr(heapBase)
	for addr+headerSize <= sh.top {
		raw := h.dev.Bytes(addr, headerSize)
		stride, _, allocated, ok := unpackHeader(leU64(raw[:8]))
		if !ok || stride < headerSize+8 || addr+pmem.Addr(stride) > sh.top {
			break // recovery already normalized the chain; stop at damage
		}
		if allocated && leU64(raw[8:])&hdrHasCRC != 0 {
			taint[addr+headerSize] = struct{}{}
		}
		addr += pmem.Addr(stride)
	}
	sh.taintMu.Lock()
	sh.taint = taint
	sh.taintMu.Unlock()
	sh.taintCount.Store(int64(len(taint)))
}

// VerifyOnRead checks the block at payload if it is tainted (recovered
// but not yet re-verified), clearing the taint on success and panicking
// with a *CorruptionPanic on mismatch. The fast path — no tainted blocks
// remain, the steady state — is one atomic load. Hooked into the shared
// node-read and blob-read funnels.
func (h *Heap) VerifyOnRead(payload pmem.Addr) {
	sh := h.sh
	if sh.taintCount.Load() == 0 {
		return
	}
	sh.taintMu.Lock()
	_, tainted := sh.taint[payload]
	if tainted {
		delete(sh.taint, payload)
	}
	sh.taintMu.Unlock()
	if !tainted {
		return
	}
	sh.taintCount.Add(-1)
	if _, _, _, berr := h.verifyNode(payload); berr != nil {
		panic(&CorruptionPanic{Block: *berr})
	}
}
