// Package alloc implements a persistent-memory allocator playing the role
// nvm_malloc plays in the MOD paper (§4.2 step 1): it carves datastructure
// nodes out of a pmem arena, names recoverable roots so applications can
// find their data across process lifetimes, and reclaims memory — by
// volatile reference counting during normal operation (§5.3) and by a
// reachability scan during recovery after a crash.
//
// Layout. The arena begins with a superblock holding a magic number, the
// persistent bump pointer, and a table of named roots. Blocks follow, each
// a 16-byte header — one word of (magic, type tag, stride) and one
// checksum word carrying a CRC32-C over the node's initialized payload
// (DESIGN.md §13) — and a payload. Block headers are flushed without
// fences; recovery walks the header chain and discards anything
// unreachable from the roots, which is exactly the paper's treatment of
// allocations from interrupted FASEs.
//
// Reclamation. Reference counts live in volatile memory and are rebuilt on
// recovery, as §5.3 prescribes; they are atomic, so concurrent writers can
// retain and release shared subtrees without locks. A block whose count
// reaches zero is retired rather than freed, and becomes reusable only
// once two conditions hold (see epoch.go):
//
//  1. a device fence has executed after the retirement, so the root swap
//     that orphaned the block is durable and the durable image cannot
//     still need it (MOD's one-fence-per-FASE quarantine, DESIGN.md §4);
//  2. the epoch-based-reclamation grace period has passed, so no reader
//     that pinned an epoch before the block was unlinked can still hold a
//     pointer into it.
//
// Concurrency. A Heap value is a handle onto shared allocator state, in
// the same way a pmem.Device is a handle onto shared device state. Fork
// derives a handle with its own device clock for a worker goroutine; all
// handles share the free lists, reference counts, root table, and epoch
// machinery.
package alloc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/pmem"
)

// Superblock layout (all offsets in bytes from arena start).
const (
	offMagic   = 0
	offVersion = 8
	offBumpTop = 16
	offRoots   = 64 // root table: RootSlots entries of {nameHash, addr}

	// RootSlots is the number of named recoverable roots per heap.
	RootSlots = 62

	rootEntrySize = 16

	// offRuns is the open-run table: EditRunSlots entries of {start, end}
	// recording bump runs claimed by in-flight edit contexts whose block
	// headers are deferred-flushed (edit.go). Recovery consults it when
	// the header chain tears inside a run (recover.go).
	offRuns = offRoots + RootSlots*rootEntrySize

	// EditRunSlots bounds how many edits can hold unsealed bump runs at
	// once; further edits fall back to eagerly flushed allocations.
	EditRunSlots = 8

	runEntrySize   = 16
	superblockSize = offRuns + EditRunSlots*runEntrySize // 1184 -> padded
	heapBase       = (superblockSize + pmem.LineSize - 1) &^ (pmem.LineSize - 1)

	magic   = 0x4d4f442d48454150 // "MOD-HEAP"
	version = 4                  // 2: open-run table; 3: volatile-node bit; 4: 16-byte header with checksum word

	// minVersion is the oldest heap layout Open still accepts. Version 4
	// widened the block header from 8 to 16 bytes, which moves every
	// payload; older images cannot be read under this layout.
	minVersion = 4

	headerSize = 16
	headerMark = 0x4d4f // "MO", stored in the top 16 bits of a header's first word

	// HeaderSize is the block header width, exported for callers that
	// compute header addresses from payload addresses (package core's
	// trace-checker configuration).
	HeaderSize = headerSize
)

// strides are the size classes (full block size including header).
var strides = []uint32{24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096}

// Walker enumerates the child pointers of a node so the heap can trace
// reachability and cascade reference-count releases. It receives the
// payload address and must invoke visit for every non-nil child payload
// address stored in the node.
type Walker func(h *Heap, addr pmem.Addr, visit func(child pmem.Addr))

// Stats reports allocator activity.
type Stats struct {
	Allocs     uint64
	Frees      uint64
	LiveBytes  uint64 // bytes in allocated blocks (including headers)
	CumBytes   uint64 // bytes ever allocated (never decreases)
	HighWater  uint64 // max LiveBytes observed
	HeapUsed   uint64 // bytes between heap base and bump top
	Quarantine int    // retired blocks awaiting fence + epoch grace
}

// RecoveryStats reports what a post-crash Recover pass found.
type RecoveryStats struct {
	LiveBlocks   int
	LiveBytes    uint64
	LeakedBlocks int    // unreachable blocks reclaimed
	LeakedBytes  uint64 // bytes reclaimed from interrupted FASEs
	Roots        int    // non-nil roots found
	// VolatileBlocks counts root-referenced navigation blocks whose
	// volatile-node bit was set: their payloads were zeroed rather than
	// trusted, and the selective rebuild pass reconstructs their state
	// from recovery records (DESIGN.md §10).
	VolatileBlocks int
}

// heapShared is the allocator state common to all handles. The mutex
// guards the bump pointer, free lists, and counter stats; reference
// counts are atomic; retirement and epochs have their own lock (epoch.go).
type heapShared struct {
	mu   sync.Mutex
	top  pmem.Addr // volatile mirror of the persistent bump pointer
	end  pmem.Addr
	free map[uint32][]pmem.Addr // stride -> header addrs

	refs    *sync.Map // payload addr -> *atomic.Int32
	walkers [256]Walker

	// runSlots mirrors the open-run table. A sealed slot's persistent
	// entry is NOT cleared at seal time — clearing is a plain clwb'd
	// write, and under partial-eviction crash policies the clear could
	// become durable while the run's deferred headers are still torn,
	// exposing the heap to truncation at the tear. Instead the entry
	// stays in place and the slot is reused (overwritten) only once a
	// fence has covered the seal sweep, at which point the old run's
	// headers are durable and can never tear (edit.go).
	runSlots [EditRunSlots]runSlotState

	// reserves holds sealed edit-run tails awaiting reuse as later
	// edits' runs (edit.go).
	reserves []reserveRegion

	// cache is the DRAM node cache fronting funcds interior-node reads
	// (cache.go); nil until EnableNodeCache.
	cache atomic.Pointer[nodeCache]

	// taint is the set of recovered-but-unverified checksummed blocks
	// consumed by lazy on-read verification (verify.go); taintCount gives
	// readers a one-atomic fast path once it drains.
	taintMu    sync.Mutex
	taint      map[pmem.Addr]struct{}
	taintCount atomic.Int64

	stats Stats // Quarantine filled from ebr on read

	ebr ebrState
}

// Heap is a handle onto a persistent allocator over a pmem.Device. Derive
// one handle per goroutine with Fork; handles share all allocator state
// but carry their own device clock.
type Heap struct {
	dev pmem.Backend
	sh  *heapShared

	// DisableReclaim makes Release a no-op so every version is retained;
	// used by the Table 3 experiment to measure multi-version growth.
	// Set it before any concurrent use; the flag is per-handle.
	DisableReclaim bool
}

// Format initializes a fresh heap on dev, overwriting any prior content,
// and returns it. The superblock is made durable before Format returns.
func Format(dev pmem.Backend) *Heap {
	h := newHeap(dev)
	dev.WriteU64(offMagic, magic)
	dev.WriteU64(offVersion, version)
	dev.WriteU64(offBumpTop, uint64(heapBase))
	dev.Zero(offRoots, superblockSize-offRoots) // root table + run table
	dev.FlushRange(0, heapBase)
	dev.Sfence()
	h.sh.top = heapBase
	return h
}

// Open attaches to a previously formatted heap without scanning it. Most
// callers want Recover, which also rebuilds reachability state.
func Open(dev pmem.Backend) (*Heap, error) {
	if dev.Size() < int64(heapBase)+64 {
		return nil, fmt.Errorf("alloc: device too small (%d bytes)", dev.Size())
	}
	if dev.ReadU64(offMagic) != magic {
		return nil, fmt.Errorf("alloc: bad heap magic %#x", dev.ReadU64(offMagic))
	}
	if v := dev.ReadU64(offVersion); v < minVersion || v > version {
		return nil, fmt.Errorf("alloc: unsupported heap version %d", v)
	}
	h := newHeap(dev)
	h.sh.top = pmem.Addr(dev.ReadU64(offBumpTop))
	if h.sh.top < heapBase || h.sh.top > h.sh.end {
		return nil, fmt.Errorf("alloc: corrupt bump pointer %#x", uint64(h.sh.top))
	}
	return h, nil
}

func newHeap(dev pmem.Backend) *Heap {
	sh := &heapShared{
		end:  pmem.Addr(dev.Size()),
		free: make(map[uint32][]pmem.Addr),
		refs: &sync.Map{},
	}
	return &Heap{dev: dev, sh: sh}
}

// Fork returns a new handle onto the same heap whose device handle has a
// fresh per-goroutine clock (see pmem.Device.Fork).
func (h *Heap) Fork() *Heap {
	return &Heap{dev: h.dev.Fork(), sh: h.sh, DisableReclaim: h.DisableReclaim}
}

// Device returns this handle's underlying device handle.
func (h *Heap) Device() pmem.Backend { return h.dev }

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats {
	sh := h.sh
	sh.mu.Lock()
	s := sh.stats
	s.HeapUsed = uint64(sh.top) - heapBase
	sh.mu.Unlock()
	s.Quarantine = sh.ebr.pendingCount()
	return s
}

// SuperblockRange returns the in-place-updated allocator metadata region,
// which trace checking exempts from the out-of-place invariant I1.
func SuperblockRange() [2]pmem.Addr { return [2]pmem.Addr{0, heapBase} }

// RegisterWalker associates a child-enumeration function with a node type
// tag. Datastructure packages register their node layouts at init time,
// before any concurrent use of the heap.
func (h *Heap) RegisterWalker(tag uint8, w Walker) { h.sh.walkers[tag] = w }

// strideFor returns the smallest size class holding payload bytes.
func strideFor(payload int) uint32 {
	need := uint32(payload + headerSize)
	for _, s := range strides {
		if s >= need {
			return s
		}
	}
	return (need + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
}

// hdrVolatileBit marks a block whose payload is intentionally NOT flushed
// on the hot path (selective persistence, DESIGN.md §10): the header is
// durable so recovery can still walk the block chain, but the payload is
// navigation-only state that recovery must zero and rebuild, never trust.
const hdrVolatileBit = uint64(1) << 41

func packHeader(stride uint32, tag uint8, allocated bool) uint64 {
	v := uint64(headerMark)<<48 | uint64(tag)<<32 | uint64(stride)
	if allocated {
		v |= 1 << 40
	}
	return v
}

func unpackHeader(v uint64) (stride uint32, tag uint8, allocated, ok bool) {
	if v>>48 != headerMark {
		return 0, 0, false, false
	}
	return uint32(v), uint8(v >> 32), v>>40&1 == 1, true
}

// Checksum word (header word 1, DESIGN.md §13). A sealed node stores
//
//	bit 63     hasCRC flag
//	bits 32-62 covered length n (initialized payload bytes)
//	bits 0-31  CRC32-C over (header word 0 || n || payload[0:n])
//
// Covering the first header word and the length means a flipped tag,
// stride, or length is caught by the same check as flipped payload bytes;
// only a flip of the hasCRC bit itself can silence a node's check (the
// residual risk §13 documents). The word is written before the node's
// combined header+payload flush, so verification costs no extra ordering:
// the FASE's single fence covers payload, header, and checksum together.
// A zero word means "no checksum" — legacy allocation paths (Alloc) and
// volatile navigation nodes durably zero it so recovery never mistakes a
// recycled block's stale checksum for a live one.
const hdrHasCRC = uint64(1) << 63

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func packCheck(n int, crc uint32) uint64 {
	return hdrHasCRC | uint64(n)<<32&^hdrHasCRC | uint64(crc)
}

func unpackCheck(v uint64) (n int, crc uint32, has bool) {
	return int(v << 1 >> 33), uint32(v), v&hdrHasCRC != 0
}

// nodeCRC computes the checksum of the block at hdr covering n payload
// bytes. It reads through the raw arena view: checksum arithmetic models
// a CRC pipelined with the stores themselves (no extra simulated-time
// charge), and raw reads bypass poisoned-line faults so verification can
// classify damage instead of crashing on it. It IS the verify machinery,
// so it opens its own recovery bracket around the raw view.
func (h *Heap) nodeCRC(hdr pmem.Addr, n int) uint32 {
	defer h.dev.BeginRecovery()()
	var pre [12]byte
	raw := h.dev.Bytes(hdr, headerSize+n)
	copy(pre[:8], raw[:8])
	binary.LittleEndian.PutUint32(pre[8:], uint32(n))
	crc := crc32.Update(0, crcTable, pre[:])
	return crc32.Update(crc, crcTable, raw[headerSize:])
}

// Alloc returns the payload address of a new block of at least size bytes,
// typed by tag, with reference count 1. The payload is not zeroed (callers
// fully initialize their nodes). The header is written and flushed without
// a fence; recovery discards blocks whose owning FASE never committed.
func (h *Heap) Alloc(size int, tag uint8) pmem.Addr {
	return h.alloc(size, tag, false, true)
}

// AllocVolatile allocates like Alloc but marks the block's header with the
// volatile-node bit: the header is still flushed (recovery must be able to
// walk the block chain), but the caller will not flush the payload — it is
// DRAM-resident navigation state that recovery zeroes and rebuilds from
// recovery records instead of trusting (DESIGN.md §10).
func (h *Heap) AllocVolatile(size int, tag uint8) pmem.Addr {
	return h.alloc(size, tag, true, true)
}

// AllocNode allocates like Alloc but defers the header flush: the caller
// must finish initializing the payload and then SealNode, whose combined
// header+payload flush covers both. Checksummed node constructors use
// this pairing — it never issues more flushes than Alloc+FlushRange, and
// saves one when header and payload share a cacheline.
func (h *Heap) AllocNode(size int, tag uint8) pmem.Addr {
	return h.alloc(size, tag, false, false)
}

func (h *Heap) alloc(size int, tag uint8, volatile, flushHdr bool) pmem.Addr {
	if size < 0 {
		panic("alloc: negative size")
	}
	stride := strideFor(size)
	sh := h.sh
	sh.mu.Lock()
	var hdr pmem.Addr
	if list := sh.free[stride]; len(list) > 0 {
		hdr = list[len(list)-1]
		sh.free[stride] = list[:len(list)-1]
		sh.mu.Unlock()
	} else {
		hdr = h.bumpLocked(stride)
		sh.mu.Unlock()
	}
	// Announce the allocation before touching the block so trace checking
	// sees the header write as part of the new block.
	if t := h.dev.Tracer(); t != nil {
		t.Alloc(hdr, uint64(stride), tag)
	}
	v := packHeader(stride, tag, true)
	if volatile {
		v |= hdrVolatileBit
	}
	h.dev.WriteU64(hdr, v)
	// Zero the checksum word: a recycled block's stale checksum must never
	// survive into a reachable header, or verification would flag a
	// perfectly healthy node. SealNode overwrites it on checksummed paths.
	h.dev.WriteU64(hdr+8, 0)
	if flushHdr {
		h.dev.FlushRange(hdr, headerSize)
	}
	return h.registerBlock(hdr, stride)
}

// registerBlock creates the volatile tracking state for a freshly
// allocated block — reference count 1 and counter updates — and returns
// its payload address.
func (h *Heap) registerBlock(hdr pmem.Addr, stride uint32) pmem.Addr {
	sh := h.sh
	payload := hdr + headerSize
	cnt := &atomic.Int32{}
	cnt.Store(1)
	sh.refs.Store(payload, cnt)
	sh.mu.Lock()
	sh.stats.Allocs++
	sh.stats.LiveBytes += uint64(stride)
	sh.stats.CumBytes += uint64(stride)
	if sh.stats.LiveBytes > sh.stats.HighWater {
		sh.stats.HighWater = sh.stats.LiveBytes
	}
	sh.mu.Unlock()
	return payload
}

// bumpLocked claims stride bytes at the top of the heap and persists the
// new bump pointer. Caller holds sh.mu: the persistent top write must
// stay inside the critical section, or two racing bumps could persist
// their tops out of order and a crash would recover a regressed bump
// pointer below committed allocations.
func (h *Heap) bumpLocked(stride uint32) pmem.Addr {
	sh := h.sh
	if sh.top+pmem.Addr(stride) > sh.end {
		panic(fmt.Sprintf("alloc: out of persistent memory (top=%#x, need %d, end=%#x)", uint64(sh.top), stride, uint64(sh.end)))
	}
	hdr := sh.top
	sh.top += pmem.Addr(stride)
	h.dev.WriteU64(offBumpTop, uint64(sh.top))
	h.dev.Clwb(offBumpTop)
	return hdr
}

// header returns the parsed header of the block owning payload addr.
func (h *Heap) header(payload pmem.Addr) (stride uint32, tag uint8) {
	raw := h.dev.ReadU64(payload - headerSize)
	stride, tag, _, ok := unpackHeader(raw)
	if !ok {
		panic(fmt.Sprintf("alloc: corrupt header for payload %#x: %#x", uint64(payload), raw))
	}
	return stride, tag
}

// PayloadSize returns the usable bytes of the block at payload addr.
func (h *Heap) PayloadSize(payload pmem.Addr) int {
	stride, _ := h.header(payload)
	return int(stride) - headerSize
}

// IsVolatile reports whether the block at payload addr carries the
// volatile-node bit (its payload is not flushed on the hot path).
func (h *Heap) IsVolatile(payload pmem.Addr) bool {
	return h.dev.ReadU64(payload-headerSize)&hdrVolatileBit != 0
}

// ClearVolatile rewrites the block's header without the volatile-node bit
// and issues a clwb, leaving the write inflight for the caller's fence.
// It is the checkpoint step of selective persistence: the caller must
// have made the payload durable (flushed and fenced) BEFORE clearing, and
// must run inside a commit bracket — the 8-byte aligned header rewrite is
// the only in-place mutation of an already-published block the trace
// invariants permit there (DESIGN.md §10).
func (h *Heap) ClearVolatile(payload pmem.Addr) {
	hdr := payload - headerSize
	h.dev.WriteU64(hdr, h.dev.ReadU64(hdr)&^hdrVolatileBit)
	h.dev.Clwb(hdr)
}

// SealNode computes the checksum of the node at payload over its first n
// initialized bytes, writes the checksum word, and flushes header and
// payload as one range. It pairs with AllocNode: the pairing issues at
// most as many clwbs as the eager Alloc + FlushRange(payload, n) it
// replaces (one fewer when header and payload share a line), so
// steady-state flushes/op is unchanged by checksumming. n must cover
// every byte the caller wrote: in-place mutations after publication are
// only legal on edit-owned nodes (resealed by Edit.Seal) or via
// ResealNode.
func (h *Heap) SealNode(payload pmem.Addr, n int) {
	hdr := payload - headerSize
	h.dev.WriteU64(hdr+8, packCheck(n, h.nodeCRC(hdr, n)))
	h.dev.FlushRange(hdr, headerSize+n)
}

// ResealNode recomputes the checksum of an already-sealed node after an
// in-place rewrite of its payload (the checkpoint path's selective-header
// ext rewrite, DESIGN.md §10) and flushes the checksum word's line. The
// caller flushes the rewritten payload range itself and orders both under
// its own fence.
func (h *Heap) ResealNode(payload pmem.Addr) {
	hdr := payload - headerSize
	n, _, has := unpackCheck(h.dev.ReadU64(hdr + 8))
	if !has {
		return
	}
	h.dev.WriteU64(hdr+8, packCheck(n, h.nodeCRC(hdr, n)))
	h.dev.Clwb(hdr + 8)
}

// SetChecksum writes the checksum word for the node at payload covering n
// bytes, without flushing: the caller owns the flush (Edit.Seal folds the
// word into the edit's deduplicated flush sweep).
func (h *Heap) SetChecksum(payload pmem.Addr, n int) {
	hdr := payload - headerSize
	h.dev.WriteU64(hdr+8, packCheck(n, h.nodeCRC(hdr, n)))
}

// Checksum reports the node's checksum word state: whether one is
// present, the covered length, and whether recomputation matches.
func (h *Heap) Checksum(payload pmem.Addr) (n int, ok, has bool) {
	hdr := payload - headerSize
	n, crc, has := unpackCheck(h.dev.ReadU64(hdr + 8))
	if !has {
		return 0, true, false
	}
	if n < 0 || n > int(h.strideOf(payload))-headerSize {
		return n, false, true
	}
	return n, h.nodeCRC(hdr, n) == crc, true
}

// strideOf returns the stride of the block at payload (panics on a
// corrupt header; verification paths parse headers through raw reads
// instead).
func (h *Heap) strideOf(payload pmem.Addr) uint32 {
	stride, _ := h.header(payload)
	return stride
}

// Tag returns the type tag of the block at payload addr.
func (h *Heap) Tag(payload pmem.Addr) uint8 {
	_, tag := h.header(payload)
	return tag
}

// refCounter returns the atomic reference counter for payload, or nil.
func (h *Heap) refCounter(payload pmem.Addr) *atomic.Int32 {
	if c, ok := h.sh.refs.Load(payload); ok {
		return c.(*atomic.Int32)
	}
	return nil
}

// RefCount returns the current reference count of the block (0 if unknown).
func (h *Heap) RefCount(payload pmem.Addr) int32 {
	if c := h.refCounter(payload); c != nil {
		return c.Load()
	}
	return 0
}

// Retain increments the reference count of the block at payload addr.
// Reference counts are volatile (§5.3): they cost no flushes and are
// rebuilt from reachability during recovery.
func (h *Heap) Retain(payload pmem.Addr) {
	if payload == pmem.Nil {
		return
	}
	c := h.refCounter(payload)
	if c == nil {
		panic(fmt.Sprintf("alloc: retain of untracked block %#x", uint64(payload)))
	}
	c.Add(1)
}

// Release decrements the reference count; at zero the block and every
// block reachable only through it are retired until both a fence and the
// epoch grace period have passed (epoch.go). Release(Nil) is a no-op.
//
// The cascade happens eagerly, at retirement: once a version's root drops
// to zero references the whole dead subtree is unreachable from any root,
// and a reader that pinned an epoch before the unlink is protected by the
// same grace period for the children as for the root. Eager cascading
// keeps reclamation wait-free for other writers (no walker runs inside
// the reclaim pass) and keeps the trace-event order of invariant I4:
// every Free precedes the fence after which the block may be reused.
func (h *Heap) Release(payload pmem.Addr) {
	if payload == pmem.Nil || h.DisableReclaim {
		return
	}
	if h.decRef(payload) {
		h.retireCascade(payload)
	}
}

// decRef drops one reference and reports whether the count hit zero.
func (h *Heap) decRef(payload pmem.Addr) bool {
	c := h.refCounter(payload)
	if c == nil {
		panic(fmt.Sprintf("alloc: release of untracked block %#x", uint64(payload)))
	}
	n := c.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("alloc: release of dead block %#x", uint64(payload)))
	}
	return n == 0
}

// ReleaseBatch releases every address in one pass, collecting all
// resulting retire cascades into a single batch tagged with one fence
// snapshot and published under one epoch-list lock acquisition. A group
// commit retires a whole fence epoch's worth of superseded versions and
// intermediate shadows this way: they were all orphaned by the same
// batch fence, so one fence covers them all (DESIGN.md §7).
func (h *Heap) ReleaseBatch(addrs []pmem.Addr) {
	if h.DisableReclaim {
		return
	}
	fence := h.dev.FenceSeq()
	var dead []pmem.Addr
	for _, payload := range addrs {
		if payload == pmem.Nil {
			continue
		}
		if h.decRef(payload) {
			dead = h.collectCascade(payload, dead)
		}
	}
	if len(dead) > 0 {
		h.sh.ebr.retireBatch(dead, fence)
	}
}

// ReleaseDeferred schedules a release of the block at payload addr to
// run only after the EBR epoch grace period has passed, instead of
// decrementing eagerly. Commit paths use it for the root version a
// publication just replaced: an optimistic writer that pinned the epoch
// and snapshotted that version lock-free may still be Retaining children
// out of it, and an eager retire-time cascade could drop a shared child
// to zero an instant before such a Retain resurrects it (a double
// retire). Because the deferred decrement waits out the same grace
// period that protects readers, no builder based on the old version can
// still be pinned when the cascade finally runs. The cascade stamps its
// blocks with the fence sequence at cascade time (see processDeferred),
// so with no pinned readers the chain is cascaded by one Fence and freed
// by the next — Drain fences as needed to finish the job in one call.
// ReleaseDeferred(Nil) is a no-op.
func (h *Heap) ReleaseDeferred(payload pmem.Addr) {
	if payload == pmem.Nil || h.DisableReclaim {
		return
	}
	h.sh.ebr.deferRelease(payload)
}

// retireCascade retires a zero-reference block and walks its subtree,
// dropping child counts and retiring those that reach zero. All retired
// blocks are tagged with the current epoch and fence sequence: they were
// orphaned by the same commit, so one fence covers them all.
//
// The cascade is collected locally and published to the retired list only
// after every walk has finished. Publishing earlier would race: a
// concurrent fence on another handle could reclaim and recycle a block
// this cascade is still reading child pointers from.
func (h *Heap) retireCascade(payload pmem.Addr) {
	h.sh.ebr.retireBatch(h.collectCascade(payload, nil), h.dev.FenceSeq())
}

// collectCascade appends payload and every block reachable only through
// it to dead, dropping child reference counts along the way.
func (h *Heap) collectCascade(payload pmem.Addr, dead []pmem.Addr) []pmem.Addr {
	sh := h.sh
	stack := []pmem.Addr{payload}
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stride, tag := h.header(a)
		if t := h.dev.Tracer(); t != nil {
			t.Free(a-headerSize, uint64(stride))
		}
		dead = append(dead, a)
		if w := sh.walkers[tag]; w != nil {
			w(h, a, func(child pmem.Addr) {
				if child == pmem.Nil {
					return
				}
				c := h.refCounter(child)
				if c == nil {
					panic(fmt.Sprintf("alloc: cascade release of untracked block %#x", uint64(child)))
				}
				n := c.Add(-1)
				if n < 0 {
					panic(fmt.Sprintf("alloc: cascade release of dead block %#x", uint64(child)))
				}
				if n == 0 {
					stack = append(stack, child)
				}
			})
		}
	}
	return dead
}

// freeBlock returns a retired block to the free lists. Reference counts
// were already cascaded at retirement, so this is pure bookkeeping.
// Called with the ebr lock held; takes sh.mu for the free lists.
func (h *Heap) freeBlock(r retiredBlock) {
	sh := h.sh
	stride, _ := h.header(r.addr)
	if c := sh.cache.Load(); c != nil {
		c.invalidate(r.addr)
	}
	sh.refs.Delete(r.addr)
	sh.mu.Lock()
	sh.free[stride] = append(sh.free[stride], r.addr-headerSize)
	sh.stats.Frees++
	sh.stats.LiveBytes -= uint64(stride)
	sh.mu.Unlock()
}

// fenceDeferBudget bounds how many deferred releases one Fence cascades.
// Steady-state production is about one deferred entry per commit (the
// superseded root version), so the budget drains any backlog left by a
// stretch of pinned epochs within a few dozen fences instead of lumping
// the whole backlog's cascade cost onto one caller.
const fenceDeferBudget = 64

// Reclaim runs one exhaustive reclamation pass — every retired block
// already fence-covered and past its epoch grace period is freed, and
// every eligible deferred release is cascaded, with no incremental
// budget — but issues no fences of its own: blocks whose stamp is not
// yet covered stay quarantined for a later pass. Use it to tidy
// opportunistically on a path whose fence count is meaningful; Drain
// below also completes the job with its own fences.
func (h *Heap) Reclaim() { h.sh.ebr.reclaim(h, int(^uint(0)>>1)) }

// Drain reclaims every retired block whose orphaning commit is durable
// (a fence has executed since its retirement) and whose epoch grace
// period has passed, cascading releases to children — including every
// queued deferred release whose grace period allows it, with no
// incremental budget. Deferred cascades are stamped with the fence
// sequence at cascade time, so fully emptying the quarantine can take a
// further fence; Drain issues its own and loops until it stops making
// progress (blocks held by a still-pinned reader stay quarantined, as
// they must). Call it at a quiescent point — Sync and Close use it;
// per-FASE fences run the budget-bounded reclaim instead.
func (h *Heap) Drain() {
	prev := -1
	for {
		h.Reclaim()
		n := h.sh.ebr.pendingCount()
		if n == 0 || n == prev {
			return
		}
		prev = n
		h.dev.Sfence()
	}
}

// Fence orders all outstanding flushes (the single ordering point a MOD
// FASE executes, §5.1) and then reclaims retired blocks now covered by
// it. Freeing after the sfence is safe — frees are volatile — and means a
// block orphaned by a commit earlier in this interval becomes reusable
// immediately, preserving the one-fence-per-FASE property. Deferred
// releases are cascaded incrementally (fenceDeferBudget per call) so no
// single fence absorbs an entire backlog's reclamation cost.
func (h *Heap) Fence() {
	h.dev.Sfence()
	h.sh.ebr.reclaim(h, fenceDeferBudget)
}
