// Package alloc implements a persistent-memory allocator playing the role
// nvm_malloc plays in the MOD paper (§4.2 step 1): it carves datastructure
// nodes out of a pmem arena, names recoverable roots so applications can
// find their data across process lifetimes, and reclaims memory — by
// volatile reference counting during normal operation (§5.3) and by a
// reachability scan during recovery after a crash.
//
// Layout. The arena begins with a superblock holding a magic number, the
// persistent bump pointer, and a table of named roots. Blocks follow, each
// an 8-byte header (magic, type tag, stride) and a payload. Block headers
// are flushed without fences; recovery walks the header chain and discards
// anything unreachable from the roots, which is exactly the paper's
// treatment of allocations from interrupted FASEs.
//
// Reclamation. Reference counts live in volatile memory and are rebuilt on
// recovery, as §5.3 prescribes. A block whose count reaches zero is
// quarantined rather than freed: it becomes reusable only after the next
// fence, by which time the root swap that orphaned it is durable. This
// preserves MOD's one-fence-per-FASE property without risking reuse of
// memory the durable image still references (DESIGN.md §4).
package alloc

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
)

// Superblock layout (all offsets in bytes from arena start).
const (
	offMagic   = 0
	offVersion = 8
	offBumpTop = 16
	offRoots   = 64 // root table: RootSlots entries of {nameHash, addr}

	// RootSlots is the number of named recoverable roots per heap.
	RootSlots = 62

	rootEntrySize  = 16
	superblockSize = offRoots + RootSlots*rootEntrySize // 1056 -> padded
	heapBase       = (superblockSize + pmem.LineSize - 1) &^ (pmem.LineSize - 1)

	magic   = 0x4d4f442d48454150 // "MOD-HEAP"
	version = 1

	headerSize = 8
	headerMark = 0x4d4f // "MO", stored in the top 16 bits of a header
)

// strides are the size classes (full block size including header).
var strides = []uint32{24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 2048, 4096}

// Walker enumerates the child pointers of a node so the heap can trace
// reachability and cascade reference-count releases. It receives the
// payload address and must invoke visit for every non-nil child payload
// address stored in the node.
type Walker func(h *Heap, addr pmem.Addr, visit func(child pmem.Addr))

// Stats reports allocator activity.
type Stats struct {
	Allocs     uint64
	Frees      uint64
	LiveBytes  uint64 // bytes in allocated blocks (including headers)
	CumBytes   uint64 // bytes ever allocated (never decreases)
	HighWater  uint64 // max LiveBytes observed
	HeapUsed   uint64 // bytes between heap base and bump top
	Quarantine int    // blocks awaiting the next fence
}

// RecoveryStats reports what a post-crash Recover pass found.
type RecoveryStats struct {
	LiveBlocks   int
	LiveBytes    uint64
	LeakedBlocks int    // unreachable blocks reclaimed
	LeakedBytes  uint64 // bytes reclaimed from interrupted FASEs
	Roots        int    // non-nil roots found
}

// Heap is a persistent allocator over a pmem.Device. It is not safe for
// concurrent use.
type Heap struct {
	dev *pmem.Device

	top  pmem.Addr // volatile mirror of the persistent bump pointer
	end  pmem.Addr
	free map[uint32][]pmem.Addr // stride -> header addrs

	refs       map[pmem.Addr]int32 // payload addr -> reference count
	quarantine []pmem.Addr         // payload addrs, drained at fence
	walkers    [256]Walker

	// DisableReclaim makes Release a no-op so every version is retained;
	// used by the Table 3 experiment to measure multi-version growth.
	DisableReclaim bool

	stats Stats
}

// Format initializes a fresh heap on dev, overwriting any prior content,
// and returns it. The superblock is made durable before Format returns.
func Format(dev *pmem.Device) *Heap {
	h := newHeap(dev)
	dev.WriteU64(offMagic, magic)
	dev.WriteU64(offVersion, version)
	dev.WriteU64(offBumpTop, uint64(heapBase))
	dev.Zero(offRoots, RootSlots*rootEntrySize)
	dev.FlushRange(0, heapBase)
	dev.Sfence()
	h.top = heapBase
	return h
}

// Open attaches to a previously formatted heap without scanning it. Most
// callers want Recover, which also rebuilds reachability state.
func Open(dev *pmem.Device) (*Heap, error) {
	if dev.Size() < int64(heapBase)+64 {
		return nil, fmt.Errorf("alloc: device too small (%d bytes)", dev.Size())
	}
	if dev.ReadU64(offMagic) != magic {
		return nil, fmt.Errorf("alloc: bad heap magic %#x", dev.ReadU64(offMagic))
	}
	if v := dev.ReadU64(offVersion); v != version {
		return nil, fmt.Errorf("alloc: unsupported heap version %d", v)
	}
	h := newHeap(dev)
	h.top = pmem.Addr(dev.ReadU64(offBumpTop))
	if h.top < heapBase || h.top > h.end {
		return nil, fmt.Errorf("alloc: corrupt bump pointer %#x", uint64(h.top))
	}
	return h, nil
}

func newHeap(dev *pmem.Device) *Heap {
	return &Heap{
		dev:  dev,
		end:  pmem.Addr(dev.Size()),
		free: make(map[uint32][]pmem.Addr),
		refs: make(map[pmem.Addr]int32),
	}
}

// Device returns the underlying device.
func (h *Heap) Device() *pmem.Device { return h.dev }

// Stats returns a snapshot of allocator counters.
func (h *Heap) Stats() Stats {
	s := h.stats
	s.HeapUsed = uint64(h.top) - heapBase
	s.Quarantine = len(h.quarantine)
	return s
}

// SuperblockRange returns the in-place-updated allocator metadata region,
// which trace checking exempts from the out-of-place invariant I1.
func SuperblockRange() [2]pmem.Addr { return [2]pmem.Addr{0, heapBase} }

// RegisterWalker associates a child-enumeration function with a node type
// tag. Datastructure packages register their node layouts at init time.
func (h *Heap) RegisterWalker(tag uint8, w Walker) { h.walkers[tag] = w }

// strideFor returns the smallest size class holding payload bytes.
func strideFor(payload int) uint32 {
	need := uint32(payload + headerSize)
	for _, s := range strides {
		if s >= need {
			return s
		}
	}
	return (need + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
}

func packHeader(stride uint32, tag uint8, allocated bool) uint64 {
	v := uint64(headerMark)<<48 | uint64(tag)<<32 | uint64(stride)
	if allocated {
		v |= 1 << 40
	}
	return v
}

func unpackHeader(v uint64) (stride uint32, tag uint8, allocated, ok bool) {
	if v>>48 != headerMark {
		return 0, 0, false, false
	}
	return uint32(v), uint8(v >> 32), v>>40&1 == 1, true
}

// Alloc returns the payload address of a new block of at least size bytes,
// typed by tag, with reference count 1. The payload is not zeroed (callers
// fully initialize their nodes). The header is written and flushed without
// a fence; recovery discards blocks whose owning FASE never committed.
func (h *Heap) Alloc(size int, tag uint8) pmem.Addr {
	if size < 0 {
		panic("alloc: negative size")
	}
	stride := strideFor(size)
	var hdr pmem.Addr
	if list := h.free[stride]; len(list) > 0 {
		hdr = list[len(list)-1]
		h.free[stride] = list[:len(list)-1]
	} else {
		hdr = h.bump(stride)
	}
	// Announce the allocation before touching the block so trace checking
	// sees the header write as part of the new block.
	if t := h.dev.Tracer(); t != nil {
		t.Alloc(hdr, uint64(stride), tag)
	}
	h.dev.WriteU64(hdr, packHeader(stride, tag, true))
	h.dev.Clwb(hdr)
	payload := hdr + headerSize
	h.refs[payload] = 1
	h.stats.Allocs++
	h.stats.LiveBytes += uint64(stride)
	h.stats.CumBytes += uint64(stride)
	if h.stats.LiveBytes > h.stats.HighWater {
		h.stats.HighWater = h.stats.LiveBytes
	}
	return payload
}

func (h *Heap) bump(stride uint32) pmem.Addr {
	if h.top+pmem.Addr(stride) > h.end {
		panic(fmt.Sprintf("alloc: out of persistent memory (top=%#x, need %d, end=%#x)", uint64(h.top), stride, uint64(h.end)))
	}
	hdr := h.top
	h.top += pmem.Addr(stride)
	h.dev.WriteU64(offBumpTop, uint64(h.top))
	h.dev.Clwb(offBumpTop)
	return hdr
}

// header returns the parsed header of the block owning payload addr.
func (h *Heap) header(payload pmem.Addr) (stride uint32, tag uint8) {
	raw := h.dev.ReadU64(payload - headerSize)
	stride, tag, _, ok := unpackHeader(raw)
	if !ok {
		panic(fmt.Sprintf("alloc: corrupt header for payload %#x: %#x", uint64(payload), raw))
	}
	return stride, tag
}

// PayloadSize returns the usable bytes of the block at payload addr.
func (h *Heap) PayloadSize(payload pmem.Addr) int {
	stride, _ := h.header(payload)
	return int(stride) - headerSize
}

// Tag returns the type tag of the block at payload addr.
func (h *Heap) Tag(payload pmem.Addr) uint8 {
	_, tag := h.header(payload)
	return tag
}

// RefCount returns the current reference count of the block (0 if unknown).
func (h *Heap) RefCount(payload pmem.Addr) int32 { return h.refs[payload] }

// Retain increments the reference count of the block at payload addr.
// Reference counts are volatile (§5.3): they cost no flushes and are
// rebuilt from reachability during recovery.
func (h *Heap) Retain(payload pmem.Addr) {
	if payload == pmem.Nil {
		return
	}
	if _, ok := h.refs[payload]; !ok {
		panic(fmt.Sprintf("alloc: retain of untracked block %#x", uint64(payload)))
	}
	h.refs[payload]++
}

// Release decrements the reference count; at zero the block is quarantined
// until the next Drain. Release(Nil) is a no-op.
func (h *Heap) Release(payload pmem.Addr) {
	if payload == pmem.Nil || h.DisableReclaim {
		return
	}
	c, ok := h.refs[payload]
	if !ok {
		panic(fmt.Sprintf("alloc: release of untracked block %#x", uint64(payload)))
	}
	if c <= 0 {
		panic(fmt.Sprintf("alloc: release of dead block %#x", uint64(payload)))
	}
	c--
	h.refs[payload] = c
	if c == 0 {
		h.quarantine = append(h.quarantine, payload)
		if t := h.dev.Tracer(); t != nil {
			stride, _ := h.header(payload)
			t.Free(payload-headerSize, uint64(stride))
		}
	}
}

// Drain moves quarantined blocks to the free lists, cascading releases to
// their children. Call it immediately after a fence: at that point the
// commit that orphaned these blocks is durable, so reuse is safe.
func (h *Heap) Drain() {
	for i := 0; i < len(h.quarantine); i++ { // quarantine may grow while iterating
		payload := h.quarantine[i]
		stride, tag := h.header(payload)
		if w := h.walkers[tag]; w != nil {
			w(h, payload, func(child pmem.Addr) { h.Release(child) })
		}
		delete(h.refs, payload)
		h.free[stride] = append(h.free[stride], payload-headerSize)
		h.stats.Frees++
		h.stats.LiveBytes -= uint64(stride)
	}
	h.quarantine = h.quarantine[:0]
}

// Fence drains the reclamation quarantine and then orders all outstanding
// flushes (one ordering point). This is the single fence a MOD FASE
// executes (§5.1). Draining first is safe — nothing can write a reused
// block between the drain and the sfence — and it keeps every free
// ordered before the fence that makes the orphaning commit durable.
func (h *Heap) Fence() {
	h.Drain()
	h.dev.Sfence()
}
