package alloc

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
)

// Edit contexts ("transients", DESIGN.md §8). A MOD FASE that performs N
// operations pays for each one as if it were alone: every path node is
// re-copied and re-flushed per operation even though the intermediate
// shadows are garbage the moment the next operation runs. The paper's own
// observation (§4.2) is that nodes created *within* the current update are
// unpublished — no committed version, no concurrent reader, and no
// recovery path can see them — so they may be mutated in place with no
// extra ordering.
//
// An Edit is the per-FASE capability that makes this safe:
//
//   - Alloc hands out blocks the edit owns. Ownership is decided by
//     address: bump allocations come from contiguous edit-scoped runs
//     (claimed 4 KB at a time, so the check is a range test and the bump
//     pointer is persisted once per run instead of once per block), and
//     free-list reuse is tracked in a per-edit set.
//   - Owns answers "was this node allocated inside the current FASE?",
//     the precondition for mutating it in place instead of path-copying.
//   - Record defers a dirty range into the edit's pmem.FlushSet, which
//     dedupes by cacheline; nodes rewritten many times flush once.
//   - Seal issues the coalesced flush sweep. It must run before the
//     FASE's commit fence: after the sweep every line the edit dirtied is
//     inflight, the fence makes them durable, and the root swap that
//     publishes the edit's final version is ordered after both.
//
// # Crash consistency
//
// Deferring block-header flushes breaks the invariant recovery's chain
// walk relies on (headers durable in allocation-order prefix), so every
// claimed run is recorded in a persistent open-run table in the
// superblock before any header in it is written. The entry's clwb is
// covered by every subsequent fence, which gives the invariant recovery
// needs with no extra ordering: if any block after the run is committed,
// a fence ran after the claim, so the entry is durable. When a crash
// leaves torn headers inside a recorded run, recovery skips the dead
// remainder of the run instead of truncating the heap (recover.go); torn
// headers imply the edit's seal sweep was never fence-covered, which
// implies nothing in or after the run is committed.
//
// Seal deliberately leaves the entry in place — a clwb'd clear could
// become durable (cache eviction) while the headers it protects are
// still torn. The slot is reused, overwriting the entry, only once a
// fence has covered the seal sweep; from then on the old run's headers
// are durable and can never tear, so losing its entry is harmless.
// Recovery consumes and clears the whole table. Stale entries over
// sealed fence-covered runs are inert: the walk consults an entry only
// at a torn header, and no block ever straddles a recorded boundary.
//
// A sealed run's unused tail is returned to the bump allocator when the
// run is still the top of the heap (the persistent entry is shrunk in
// step so later blocks cannot straddle it); otherwise it is capped with
// one spanning free-block header and kept as a reserve that a later
// edit claims as its run. Tails too small to reserve join the free
// lists under their raw stride — reusable only by an exact-size
// request, a small bounded leak in the worst case.
//
// An Edit is single-goroutine state, like the FASE it serves.

// editRunBytes is the default bump-run claim; larger single allocations
// claim a dedicated run of their own size.
const editRunBytes = 4096

// editRun is one contiguous bump region claimed by an edit. Sub-allocation
// state is volatile; [start, end) is mirrored in the open-run table.
type editRun struct {
	start, end pmem.Addr
	cur        pmem.Addr // sub-allocation watermark
	lastHdr    pmem.Addr // most recent sub-block header (for tail absorption)
	slot       int       // open-run table slot
}

// runSlotState is the volatile view of one open-run table slot.
type runSlotState struct {
	busy        bool
	sealed      bool
	sealedFence uint64 // device FenceSeq observed after the seal sweep
}

// reusable reports whether the slot can be claimed (and its persistent
// entry overwritten): never used, or sealed with the sweep fence-covered.
func (st runSlotState) reusable(fenceNow uint64) bool {
	return !st.busy || (st.sealed && fenceNow > st.sealedFence)
}

// Edit is a per-FASE edit context. Obtain with Heap.BeginEdit, thread
// through the funcds operations building the FASE's shadow, and Seal
// before the commit fence. Not safe for concurrent use.
type Edit struct {
	h      *Heap
	fs     *pmem.FlushSet
	runs   []editRun
	extra  map[pmem.Addr]struct{} // owned blocks outside runs (free-list reuse, table-full fallback)
	nodes  map[pmem.Addr]int      // payload -> initialized bytes, for the Seal checksum pass
	order  []pmem.Addr            // nodes in registration order (deterministic PM-write order)
	elided uint64
	sealed bool
}

func runEntryAddr(slot int) pmem.Addr {
	return pmem.Addr(offRuns + slot*runEntrySize)
}

// BeginEdit opens an edit context for one FASE on this handle.
func (h *Heap) BeginEdit() *Edit {
	return &Edit{
		h: h, fs: pmem.NewFlushSet(h.dev),
		extra: make(map[pmem.Addr]struct{}),
		nodes: make(map[pmem.Addr]int),
	}
}

// Heap returns the heap this edit allocates from.
func (e *Edit) Heap() *Heap { return e.h }

// Alloc returns the payload address of a new edit-owned block of at least
// size bytes, typed by tag, with reference count 1. The header write and
// the caller's payload writes are deferred into the edit's flush set; the
// block is not durable until Seal plus the commit fence.
func (e *Edit) Alloc(size int, tag uint8) pmem.Addr {
	return e.alloc(size, tag, false)
}

// AllocVolatile allocates an edit-owned block carrying the volatile-node
// bit (see Heap.AllocVolatile): the header still enters the flush set,
// but the payload is DRAM-resident navigation state the caller will not
// flush.
func (e *Edit) AllocVolatile(size int, tag uint8) pmem.Addr {
	return e.alloc(size, tag, true)
}

func (e *Edit) alloc(size int, tag uint8, volatile bool) pmem.Addr {
	if e.sealed {
		panic("alloc: Alloc on a sealed edit")
	}
	if size < 0 {
		panic("alloc: negative size")
	}
	stride := strideFor(size)
	h, sh := e.h, e.h.sh

	sh.mu.Lock()
	// Free-list reuse is safe under deferred header flushes: the recycled
	// block's durable header already carries the same stride, so the
	// recovery chain walk steps correctly over it even if the rewrite
	// never persists (stale tag/alloc bits only matter for reachable
	// blocks, and reachable implies sealed implies the rewrite is durable).
	if list := sh.free[stride]; len(list) > 0 {
		hdr := list[len(list)-1]
		sh.free[stride] = list[:len(list)-1]
		sh.mu.Unlock()
		e.extra[hdr+headerSize] = struct{}{}
		return e.finishAlloc(hdr, stride, tag, volatile)
	}
	// Bump path: sub-allocate from this edit's current run, claiming a
	// fresh one (recorded in the open-run table) when needed.
	for i := range e.runs {
		r := &e.runs[i]
		if r.cur+pmem.Addr(stride) <= r.end {
			hdr := r.cur
			r.cur += pmem.Addr(stride)
			r.lastHdr = hdr
			sh.mu.Unlock()
			return e.finishAlloc(hdr, stride, tag, volatile)
		}
	}
	slot := -1
	fenceNow := h.dev.FenceSeq()
	for i := range sh.runSlots {
		if sh.runSlots[i].reusable(fenceNow) {
			slot = i
			break
		}
	}
	if slot < 0 {
		// Open-run table full: fall back to an eagerly flushed allocation,
		// still owned by the edit (tracked in the extra set). The header
		// must flush eagerly — it is outside every recorded run, so a torn
		// header there would truncate the recovery chain walk.
		sh.mu.Unlock()
		payload := h.alloc(size, tag, volatile, true)
		e.extra[payload] = struct{}{}
		return payload
	}
	// A free block large enough to host several allocations can serve as
	// the run instead of bumping: sealed-run tail caps recirculate this
	// way, so steady-state edits stop growing the heap even when the
	// rewind path (run still at top) is unavailable.
	start, runSize := sh.takeReserveLocked(stride)
	if start == pmem.Nil {
		runSize = uint32(editRunBytes)
		if stride > runSize {
			runSize = stride
		}
		start = h.bumpLocked(runSize)
	}
	sh.runSlots[slot] = runSlotState{busy: true}
	entry := runEntryAddr(slot)
	h.dev.WriteU64(entry, uint64(start))
	h.dev.WriteU64(entry+8, uint64(start)+uint64(runSize))
	h.dev.Clwb(entry)
	e.runs = append(e.runs, editRun{
		start: start, end: start + pmem.Addr(runSize),
		cur: start + pmem.Addr(stride), lastHdr: start, slot: slot,
	})
	sh.mu.Unlock()
	return e.finishAlloc(start, stride, tag, volatile)
}

// Reserve tails. When an edit seals while other allocations sit above
// its run (so the bump pointer cannot rewind), the run's unused tail is
// kept as a reserve: a later edit claims it as its run instead of
// bumping a fresh 4 KB, so concurrent-writer workloads reach an arena
// steady state too. Only run tails recirculate this way — never ordinary
// freed data blocks — so every recorded run boundary is an original
// bump-run end, and every subsequent tiling of the region ends exactly
// there. That keeps recovery's run-skip and boundary-crossing checks
// sound: no durable block can ever straddle a recorded (even stale)
// entry end.

// reserveMin is the smallest tail worth keeping as a reserve;
// reserveCap bounds the volatile reserve list.
const (
	reserveMin = 512
	reserveCap = 16
)

type reserveRegion struct{ start, end pmem.Addr }

// takeReserveLocked pops the first reserve able to hold minStride.
// Caller holds mu. Returns Nil when none fits.
func (sh *heapShared) takeReserveLocked(minStride uint32) (pmem.Addr, uint32) {
	for i, r := range sh.reserves {
		if uint32(r.end-r.start) >= minStride {
			sh.reserves = append(sh.reserves[:i], sh.reserves[i+1:]...)
			return r.start, uint32(r.end - r.start)
		}
	}
	return pmem.Nil, 0
}

// finishAlloc announces, writes (deferred-flush), and registers a block.
func (e *Edit) finishAlloc(hdr pmem.Addr, stride uint32, tag uint8, volatile bool) pmem.Addr {
	h := e.h
	if t := h.dev.Tracer(); t != nil {
		t.Alloc(hdr, uint64(stride), tag)
	}
	v := packHeader(stride, tag, true)
	if volatile {
		v |= hdrVolatileBit
	}
	h.dev.WriteU64(hdr, v)
	// Zero a recycled block's stale checksum word; the Seal checksum pass
	// rewrites it for every durable node registered via RecordNode.
	h.dev.WriteU64(hdr+8, 0)
	e.fs.Add(hdr, headerSize)
	return h.registerBlock(hdr, stride)
}

// Owns reports whether the block at payload was allocated inside this
// edit — the precondition for mutating it in place. Addresses from the
// committed base version, or from any other FASE, are never owned.
func (e *Edit) Owns(payload pmem.Addr) bool {
	if e == nil || payload == pmem.Nil {
		return false
	}
	hdr := payload - headerSize
	for i := range e.runs {
		if hdr >= e.runs[i].start && hdr < e.runs[i].cur {
			return true
		}
	}
	_, ok := e.extra[payload]
	return ok
}

// Record defers a flush of every line overlapping [addr, addr+n) to the
// Seal sweep, deduplicating against everything recorded so far.
func (e *Edit) Record(addr pmem.Addr, n int) {
	if e.sealed {
		panic("alloc: Record on a sealed edit")
	}
	e.fs.Add(addr, n)
}

// RecordNode is Record for a whole freshly initialized node: addr is the
// node's payload address and n its initialized length. Besides deferring
// the flush it registers the node for the Seal checksum pass, which
// stamps every registered node's checksum word before the sweep. Later
// in-place mutations within [addr, addr+n) need only Record; they are
// re-covered because the checksum is computed at Seal time.
func (e *Edit) RecordNode(addr pmem.Addr, n int) {
	if e.sealed {
		panic("alloc: RecordNode on a sealed edit")
	}
	e.fs.Add(addr, n)
	if old, ok := e.nodes[addr]; !ok {
		e.nodes[addr] = n
		e.order = append(e.order, addr)
	} else if n > old {
		e.nodes[addr] = n
	}
}

// NoteCopyElided counts one node copy avoided by in-place mutation; the
// total is published to the device stats at Seal.
func (e *Edit) NoteCopyElided() { e.elided++ }

// CopiesElided returns the number of copies elided so far.
func (e *Edit) CopiesElided() uint64 { return e.elided }

// Seal closes the edit: returns or caps each run's unused tail, issues
// the coalesced flush sweep, and marks the run-table slots sealed (their
// persistent entries remain until a fence-covered reuse or recovery —
// see the package comment). It must be called before the FASE's commit
// fence; the edit is dead afterwards. Seal is idempotent.
func (e *Edit) Seal() {
	if e.sealed {
		return
	}
	h, sh := e.h, e.h.sh

	// Give back or cap each run's unused tail. A run still at the top of
	// the heap is simply un-bumped: the persistent entry's end shrinks to
	// the watermark first, so a block a later FASE allocates in the
	// reclaimed space can never straddle the recorded boundary.
	sh.mu.Lock()
	for i := range e.runs {
		r := &e.runs[i]
		if r.cur < r.end && sh.top == r.end {
			h.dev.WriteU64(runEntryAddr(r.slot)+8, uint64(r.cur))
			h.dev.Clwb(runEntryAddr(r.slot))
			sh.top = r.cur
			h.dev.WriteU64(offBumpTop, uint64(sh.top))
			h.dev.Clwb(offBumpTop)
			r.end = r.cur
		}
	}
	sh.mu.Unlock()
	for i := range e.runs {
		e.capRun(&e.runs[i])
	}

	// Checksum pass: stamp every durable node the edit initialized, in
	// registration order (map iteration would make PM-write order — and
	// with it crash-injection indices — nondeterministic). This runs after
	// capRun so an absorbed tail's widened stride is what the checksum
	// covers, and before the sweep so every checksum word is flushed by
	// it. Run and free-list nodes' header lines are already in the flush
	// set; fallback nodes' checksum line is added here.
	for _, a := range e.order {
		h.SetChecksum(a, e.nodes[a])
		e.fs.Add(a-headerSize+8, 8)
	}

	e.fs.Flush()
	fence := h.dev.FenceSeq()
	sh.mu.Lock()
	for i := range e.runs {
		sh.runSlots[e.runs[i].slot] = runSlotState{busy: true, sealed: true, sealedFence: fence}
	}
	sh.mu.Unlock()
	h.dev.NoteCopiesElided(e.elided)
	e.runs = nil
	e.extra = nil
	e.nodes = nil
	e.order = nil
	e.sealed = true
}

// capRun covers a sealed run's unused tail [cur, end) with one spanning
// free-block header so the recovery chain walk steps over it, and keeps
// the region as a reserve for a later edit's run when it is big enough
// (smaller tails join the free lists; sub-header slack is absorbed into
// the preceding block).
func (e *Edit) capRun(r *editRun) {
	if r.cur >= r.end {
		return
	}
	h, sh := e.h, e.h.sh
	rem := uint32(r.end - r.cur)
	if rem <= headerSize {
		// Too small to carry a header: absorb into the preceding block
		// (strides are multiples of 8, so rem is 8 or 16).
		raw := h.dev.ReadU64(r.lastHdr)
		stride, tag, allocated, ok := unpackHeader(raw)
		if !ok {
			panic(fmt.Sprintf("alloc: corrupt edit-run header at %#x", uint64(r.lastHdr)))
		}
		h.dev.WriteU64(r.lastHdr, packHeader(stride+rem, tag, allocated)|(raw&hdrVolatileBit))
		e.fs.Add(r.lastHdr, headerSize)
		sh.mu.Lock()
		sh.stats.LiveBytes += uint64(rem)
		sh.stats.CumBytes += uint64(rem)
		sh.mu.Unlock()
		return
	}
	// The carve is announced so trace checking attributes the header
	// write to a block of this FASE.
	if t := h.dev.Tracer(); t != nil {
		t.Alloc(r.cur, uint64(rem), 0)
	}
	h.dev.WriteU64(r.cur, packHeader(rem, 0, false))
	e.fs.Add(r.cur, headerSize)
	sh.mu.Lock()
	if rem >= reserveMin && len(sh.reserves) < reserveCap {
		sh.reserves = append(sh.reserves, reserveRegion{start: r.cur, end: r.end})
	} else {
		sh.free[rem] = append(sh.free[rem], r.cur)
	}
	sh.mu.Unlock()
}
