package alloc

import (
	"fmt"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func TestEditOwnershipAndRuns(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(8 << 20))
	h := Format(dev)

	outside := h.Alloc(64, 1)
	ed := h.BeginEdit()
	if ed.Owns(outside) {
		t.Error("edit owns a block allocated outside it")
	}
	var mine []pmem.Addr
	for i := 0; i < 40; i++ { // spans multiple 4KB runs at stride 128
		mine = append(mine, ed.Alloc(100, 2))
	}
	for _, a := range mine {
		if !ed.Owns(a) {
			t.Fatalf("edit does not own its own block %#x", uint64(a))
		}
	}
	if ed.Owns(pmem.Nil) {
		t.Error("edit owns Nil")
	}
	var nilEd *Edit
	if nilEd.Owns(mine[0]) {
		t.Error("nil edit owns a block")
	}
	// A second edit must not own the first edit's blocks.
	ed2 := h.BeginEdit()
	if ed2.Owns(mine[0]) {
		t.Error("second edit owns first edit's block")
	}
	ed2.Seal()
	ed.Seal()
	ed.Seal() // idempotent
}

func TestEditLargeAllocationDedicatedRun(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(8 << 20))
	h := Format(dev)
	ed := h.BeginEdit()
	big := ed.Alloc(8000, 3) // stride > editRunBytes
	if !ed.Owns(big) {
		t.Error("edit does not own its large block")
	}
	if got := h.PayloadSize(big); got < 8000 {
		t.Errorf("PayloadSize = %d, want >= 8000", got)
	}
	ed.Seal()
}

func TestEditRunTableFullFallsBack(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(16 << 20))
	h := Format(dev)
	var edits []*Edit
	var addrs []pmem.Addr
	for i := 0; i < EditRunSlots+3; i++ {
		ed := h.BeginEdit()
		addrs = append(addrs, ed.Alloc(64, 1))
		edits = append(edits, ed)
	}
	for i, ed := range edits {
		if !ed.Owns(addrs[i]) {
			t.Errorf("edit %d does not own its block (fallback path)", i)
		}
		for j, other := range addrs {
			if j != i && ed.Owns(other) {
				t.Errorf("edit %d owns edit %d's block", i, j)
			}
		}
	}
	for _, ed := range edits {
		ed.Seal()
	}
	// Slots are reusable after sealing.
	ed := h.BeginEdit()
	ed.Alloc(64, 1)
	ed.Seal()
}

func TestEditFreeListReuseIsOwned(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(8 << 20))
	h := Format(dev)
	a := h.Alloc(64, 1)
	h.Release(a)
	h.Fence() // reclaim: the block returns to the free lists
	h.Fence()

	ed := h.BeginEdit()
	b := ed.Alloc(64, 1)
	if b != a {
		t.Fatalf("free-list block not reused: got %#x, want %#x", uint64(b), uint64(a))
	}
	if !ed.Owns(b) {
		t.Error("edit does not own a free-list-reused block")
	}
	ed.Seal()
}

// TestEditSealedHeapRecovers proves the sealed-run remainder header keeps
// the chain walkable: after edits seal and a fence runs, a re-opened heap
// recovers with no error and sees exactly the reachable state.
func TestEditSealedHeapRecovers(t *testing.T) {
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)
	h.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})

	slot, err := h.RootSlot("r")
	if err != nil {
		t.Fatal(err)
	}
	ed := h.BeginEdit()
	keep := ed.Alloc(40, 1)
	dev.WriteU64(keep, 0x11)
	ed.Record(keep, 8)
	for i := 0; i < 5; i++ {
		ed.Alloc(200, 1) // leaked: never rooted
	}
	ed.Seal()
	dev.Sfence()
	h.SetRoot(slot, keep)
	dev.Clwb(h.RootCellAddr(slot))
	dev.Sfence()

	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(cfg, img)
	h2, err := Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	h2.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})
	rs, err := h2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.LiveBlocks != 1 || rs.Roots != 1 {
		t.Errorf("recovered %d live blocks / %d roots, want 1/1", rs.LiveBlocks, rs.Roots)
	}
	if got := dev2.ReadU64(h2.Root(slot)); got != 0x11 {
		t.Errorf("recovered root payload = %#x, want 0x11", got)
	}
	if rs.LeakedBlocks == 0 {
		t.Error("unsealed-root leaks not detected")
	}
}

// TestEditCrashMidEditSkipsRun is the torn-header case: a crash while an
// edit's deferred headers are still volatile must not truncate committed
// blocks allocated after the edit's run — recovery skips the dead run via
// the open-run table.
func TestEditCrashMidEditSkipsRun(t *testing.T) {
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)
	h.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})

	slot, err := h.RootSlot("committed")
	if err != nil {
		t.Fatal(err)
	}

	// An edit claims a run and writes headers that never flush...
	ed := h.BeginEdit()
	inRun := ed.Alloc(100, 1)

	// ...while another allocation AFTER the run commits durably.
	after := h.Alloc(48, 1)
	dev.WriteU64(after, 0x22)
	dev.FlushRange(after, 8)
	dev.Sfence()
	h.SetRoot(slot, after)
	dev.Clwb(h.RootCellAddr(slot))
	dev.Sfence()
	if after < inRun {
		t.Fatalf("test setup: committed block %#x not after run block %#x", uint64(after), uint64(inRun))
	}

	// Crash with the edit unsealed: its headers are dirty, not durable.
	img := dev.CrashImage(pmem.CrashFencedOnly, 7)
	dev2 := pmem.NewFromImage(cfg, img)
	h2, err := Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	h2.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})
	rs, err := h2.Recover()
	if err != nil {
		t.Fatalf("Recover after mid-edit crash: %v", err)
	}
	if rs.LiveBlocks != 1 {
		t.Errorf("recovered %d live blocks, want 1 (the committed one)", rs.LiveBlocks)
	}
	if got := dev2.ReadU64(h2.Root(slot)); got != 0x22 {
		t.Errorf("committed payload = %#x, want 0x22 — run skip failed", got)
	}
	// The run table is consumed during recovery.
	for s := 0; s < EditRunSlots; s++ {
		if dev2.ReadU64(runEntryAddr(s)) != 0 {
			t.Errorf("run entry %d not cleared by recovery", s)
		}
	}
	// Recovered heap must keep working, including new edits.
	ed2 := h2.BeginEdit()
	p := ed2.Alloc(64, 1)
	if !ed2.Owns(p) {
		t.Error("post-recovery edit broken")
	}
	ed2.Seal()
}

// TestEditStatsAccounting checks allocator counters cover edit blocks and
// that CopiesElided reaches the device stats at Seal.
func TestEditStatsAccounting(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(8 << 20))
	h := Format(dev)
	before := h.Stats()
	ed := h.BeginEdit()
	for i := 0; i < 10; i++ {
		ed.Alloc(64, 1)
	}
	ed.NoteCopyElided()
	ed.NoteCopyElided()
	if got := ed.CopiesElided(); got != 2 {
		t.Errorf("CopiesElided = %d, want 2", got)
	}
	ed.Seal()
	after := h.Stats()
	if after.Allocs-before.Allocs != 10 {
		t.Errorf("Allocs delta = %d, want 10", after.Allocs-before.Allocs)
	}
	if dev.Stats().CopiesElided != 2 {
		t.Errorf("device CopiesElided = %d, want 2", dev.Stats().CopiesElided)
	}
}

func TestEditManySizesPackRuns(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(16 << 20))
	h := Format(dev)
	ed := h.BeginEdit()
	sizes := []int{16, 24, 40, 88, 120, 250, 376, 500, 1000, 2040, 4088, 16, 100}
	var got []pmem.Addr
	for _, sz := range sizes {
		a := ed.Alloc(sz, 2)
		if h.PayloadSize(a) < sz {
			t.Fatalf("payload %d < requested %d", h.PayloadSize(a), sz)
		}
		got = append(got, a)
	}
	ed.Seal()
	for i, a := range got {
		if h.Tag(a) != 2 {
			t.Errorf("block %d (%s): tag %d, want 2", i, fmt.Sprint(sizes[i]), h.Tag(a))
		}
	}
}

// TestEditCrashAfterSealBeforeFence covers the window between the seal
// sweep and the commit fence: the run entry must still protect the run
// (Seal must NOT have cleared it), because the sweep's clwbs are merely
// inflight and a crash can drop them while later committed blocks above
// the run survive.
func TestEditCrashAfterSealBeforeFence(t *testing.T) {
	cfg := pmem.DefaultConfig(8 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)
	h.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})

	slot, err := h.RootSlot("committed")
	if err != nil {
		t.Fatal(err)
	}
	ed := h.BeginEdit()
	inRun := ed.Alloc(100, 1)

	// A block after the run commits durably while the edit is open.
	after := h.Alloc(48, 1)
	dev.WriteU64(after, 0x33)
	dev.FlushRange(after, 8)
	dev.Sfence()
	h.SetRoot(slot, after)
	dev.Clwb(h.RootCellAddr(slot))
	dev.Sfence()
	if after < inRun {
		t.Fatalf("test setup: %#x not after run block %#x", uint64(after), uint64(inRun))
	}

	// Seal issues the sweep's clwbs but no fence runs afterwards: under
	// the fenced-only policy every deferred header is lost.
	ed.Seal()
	img := dev.CrashImage(pmem.CrashFencedOnly, 3)
	dev2 := pmem.NewFromImage(cfg, img)
	h2, err := Open(dev2)
	if err != nil {
		t.Fatal(err)
	}
	h2.RegisterWalker(1, func(*Heap, pmem.Addr, func(pmem.Addr)) {})
	rs, err := h2.Recover()
	if err != nil {
		t.Fatalf("Recover after seal-but-unfenced crash: %v", err)
	}
	if got := dev2.ReadU64(h2.Root(slot)); got != 0x33 {
		t.Errorf("committed payload = %#x, want 0x33 — entry cleared too early?", got)
	}
	if rs.LiveBlocks != 1 {
		t.Errorf("recovered %d live blocks, want 1", rs.LiveBlocks)
	}
}

// TestEditRunSlotReuseWaitsForFence pins the reuse rule directly: a
// sealed slot must not be reclaimed (its entry overwritten) until a
// fence covers the seal sweep.
func TestEditRunSlotReuseWaitsForFence(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(16 << 20))
	h := Format(dev)

	// Occupy every slot with sealed-but-unfenced runs.
	for i := 0; i < EditRunSlots; i++ {
		ed := h.BeginEdit()
		ed.Alloc(64, 1)
		ed.Seal()
	}
	var entries [EditRunSlots][2]uint64
	for i := 0; i < EditRunSlots; i++ {
		entries[i] = [2]uint64{dev.ReadU64(runEntryAddr(i)), dev.ReadU64(runEntryAddr(i) + 8)}
		if entries[i][0] == 0 {
			t.Fatalf("slot %d entry empty right after seal", i)
		}
	}
	// With no fence, a new edit must fall back (entries untouched).
	ed := h.BeginEdit()
	a := ed.Alloc(64, 1)
	if !ed.Owns(a) {
		t.Error("fallback block not owned")
	}
	for i := 0; i < EditRunSlots; i++ {
		if got := dev.ReadU64(runEntryAddr(i)); got != entries[i][0] {
			t.Errorf("slot %d entry overwritten before a covering fence", i)
		}
	}
	ed.Seal()
	dev.Sfence()
	// After a fence the slots are reusable.
	ed2 := h.BeginEdit()
	b := ed2.Alloc(64, 1)
	if !ed2.Owns(b) {
		t.Error("post-fence edit block not owned")
	}
	changed := false
	for i := 0; i < EditRunSlots; i++ {
		if dev.ReadU64(runEntryAddr(i)) != entries[i][0] {
			changed = true
		}
	}
	if !changed {
		t.Error("no slot reused after the covering fence")
	}
	ed2.Seal()
}

// TestEditArenaReuseAcrossFASEs guards against run-tail stranding: many
// sequential single-allocation edits (each claiming a 4 KB run) must not
// consume arena proportional to the run size — the sealed run's tail is
// un-bumped while the run is the heap top, and capped into reusable
// size-class blocks otherwise.
func TestEditArenaReuseAcrossFASEs(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(16 << 20))
	h := Format(dev)

	base := h.Stats().HeapUsed
	const rounds = 500
	for i := 0; i < rounds; i++ {
		ed := h.BeginEdit()
		ed.Alloc(64, 1) // stride 96
		ed.Seal()
		dev.Sfence()
	}
	used := h.Stats().HeapUsed - base
	if used > rounds*256 {
		t.Errorf("HeapUsed grew %d bytes over %d single-alloc edits (%d/edit) — run tails stranded",
			used, rounds, used/rounds)
	}

	// Interleave a non-edit allocation after each run claim so the run is
	// no longer the heap top at seal: tails must return via the free
	// lists instead of being stranded under non-class strides.
	base = h.Stats().HeapUsed
	freeBase := h.Stats().Frees
	for i := 0; i < 50; i++ {
		ed := h.BeginEdit()
		ed.Alloc(200, 1) // claims a run when none fits
		h.Alloc(48, 1)   // lands above the run: blocks rewinding
		ed.Seal()
		dev.Sfence()
	}
	_ = freeBase
	grown := h.Stats().HeapUsed - base
	// Each round: ~256B edit block + 64B eager block; caps must make the
	// tails reusable so later rounds' eager/free-list allocations recycle
	// them rather than bumping 4KB each time.
	if grown > 50*4096/2 {
		t.Errorf("HeapUsed grew %d bytes over 50 interleaved rounds — capped tails not reusable", grown)
	}
}
