package alloc

import (
	"sync"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// TestEpochGuardDefersReclaim: a pinned reader keeps a retired block
// alive across fences; unpinning releases it at the next reclaim.
func TestEpochGuardDefersReclaim(t *testing.T) {
	h := newTestHeap(t)
	a := h.Alloc(16, 1)

	g := h.Enter()
	h.Release(a)
	h.Fence()
	if q := h.Stats().Quarantine; q != 1 {
		t.Fatalf("Quarantine = %d with a pinned reader, want 1", q)
	}
	b := h.Alloc(16, 1)
	if b == a {
		t.Fatal("block reused while a reader epoch was pinned")
	}
	g.Exit()
	h.Fence()
	if q := h.Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after unpin + fence, want 0", q)
	}
	c := h.Alloc(16, 1)
	if c != a {
		t.Fatalf("freed block not reused after unpin: got %#x, want %#x", uint64(c), uint64(a))
	}
}

// TestEpochGuardPinsOnlyOlderRetirements: a reader pinned after a
// retirement does not block it once the grace period passes, and blocks
// retired while the reader is pinned wait for it.
func TestEpochGuardPinsNewRetirements(t *testing.T) {
	h := newTestHeap(t)
	a := h.Alloc(16, 1)
	b := h.Alloc(16, 1)

	h.Release(a)
	g := h.Enter() // pins the current epoch; a was retired in it too
	h.Release(b)
	h.Fence()
	if q := h.Stats().Quarantine; q != 2 {
		t.Fatalf("Quarantine = %d, want 2 (reader pinned)", q)
	}
	g.Exit()
	h.Fence()
	if q := h.Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after unpin, want 0", q)
	}
}

// TestEpochGuardExitIdempotent: double Exit must not corrupt the pool —
// in particular, a second Exit after the slot was recycled by another
// reader must not unpin that reader.
func TestEpochGuardExitIdempotent(t *testing.T) {
	h := newTestHeap(t)
	g := h.Enter()
	g.Exit()
	g2 := h.Enter() // recycles g's pin slot
	g.Exit()        // stale double-Exit: must be a no-op

	a := h.Alloc(16, 1)
	h.Release(a)
	h.Fence()
	if q := h.Stats().Quarantine; q != 1 {
		t.Fatalf("Quarantine = %d: stale Exit unpinned an active reader", q)
	}
	g2.Exit()
	h.Fence()
	if q := h.Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after real Exit, want 0", q)
	}
}

// TestEpochConcurrentReadersStress hammers Enter/Exit from many
// goroutines while the main goroutine releases blocks and fences;
// run with -race to check the pin/advance protocol.
func TestEpochConcurrentReadersStress(t *testing.T) {
	h := newTestHeap(t)
	const (
		readers = 8
		rounds  = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := h.Enter()
				g.Exit()
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		a := h.Alloc(64, 1)
		h.Release(a)
		h.Fence()
	}
	close(stop)
	wg.Wait()
	h.Fence()
	h.Fence()
	if q := h.Stats().Quarantine; q != 0 {
		t.Fatalf("Quarantine = %d after all readers exited, want 0", q)
	}
}

// TestForkSharesHeapState: handles forked for worker goroutines see one
// allocator — an address allocated through one is released through
// another and reused by the first.
func TestForkSharesHeapState(t *testing.T) {
	h := newTestHeap(t)
	h2 := h.Fork()
	a := h.Alloc(16, 1)
	if h2.RefCount(a) != 1 {
		t.Fatal("forked handle does not see allocation")
	}
	h2.Release(a)
	h2.Fence()
	b := h.Alloc(16, 1)
	if b != a {
		t.Fatalf("block freed via fork not reused: got %#x want %#x", uint64(b), uint64(a))
	}
}

// TestConcurrentAllocRelease checks allocator integrity under parallel
// alloc/release traffic from forked handles (run with -race).
func TestConcurrentAllocRelease(t *testing.T) {
	cfg := pmem.DefaultConfig(32 << 20)
	dev := pmem.New(cfg)
	h := Format(dev)
	const (
		workers = 4
		rounds  = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			hw := h.Fork()
			var live []pmem.Addr
			for i := 0; i < rounds; i++ {
				a := hw.Alloc(16+(i%5)*24, 1)
				live = append(live, a)
				if len(live) > 8 {
					hw.Release(live[0])
					live = live[1:]
				}
				if i%16 == 0 {
					hw.Fence()
				}
			}
			for _, a := range live {
				hw.Release(a)
			}
			hw.Fence()
		}(w)
	}
	wg.Wait()
	h.Fence()
	st := h.Stats()
	if st.Frees != st.Allocs {
		t.Fatalf("Frees = %d, Allocs = %d: leaked blocks after full release", st.Frees, st.Allocs)
	}
	if st.Quarantine != 0 {
		t.Fatalf("Quarantine = %d, want 0", st.Quarantine)
	}
}
