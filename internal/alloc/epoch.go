package alloc

import (
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/pmem"
)

// Epoch-based reclamation. MOD's commit step makes every committed
// version immutable, so readers can traverse a version without locks —
// provided the allocator does not recycle its nodes mid-traversal. The
// fence-drained quarantine of the single-threaded design guaranteed
// durability ordering but not reader safety; this file adds the classic
// three-epoch EBR scheme (Fraser; as in crossbeam and the lock-free
// durable sets of Zuriel et al.) on top of it.
//
// Protocol. A global epoch E advances only when every pinned reader has
// observed the current value. Readers pin the epoch (Heap.Enter) before
// loading any root pointer and unpin when done (EpochGuard.Exit). A block
// whose reference count reaches zero is retired, tagged with the current
// epoch and the device fence sequence. It is freed only when
//
//	retire.epoch + 2 <= E    (no reader pinned before the unlink remains)
//	retire.fence < fenceSeq  (a fence made the orphaning root swap durable)
//
// The two-epoch grace period is the standard argument: a reader holding a
// pointer into the block pinned an epoch <= retire.epoch + 1, and E cannot
// advance past retire.epoch + 2 while any such reader is still pinned.
//
// With no readers pinned — every single-threaded workload — reclaim
// advances E freely and the scheme degenerates to the original quarantine:
// Release then Fence frees the block immediately.

// retiredBlock is one zero-reference block awaiting reclamation.
type retiredBlock struct {
	addr  pmem.Addr
	epoch uint64 // global epoch at retirement
	fence uint64 // device FenceSeq at retirement
}

// pinSlot is a registered reader announcement cell. Slots live for the
// heap's lifetime and are recycled through an explicit free list, so the
// slot set — which tryAdvanceLocked scans on every reclaim — stays
// bounded by peak Enter concurrency, not by how many guards were ever
// taken. (A sync.Pool is the obvious alternative, but it sheds entries
// under memory pressure and deliberately under the race detector, and
// every shed entry would grow the scan set for the heap's lifetime.)
// An idle slot (pin 0) never blocks epoch advancement.
type pinSlot struct {
	pin atomic.Uint64 // epoch + 1; 0 = inactive
}

// EpochGuard pins the reclamation epoch for one reader. Obtain with
// Heap.Enter, release with Exit. While pinned, no block unlinked after
// the pin can be recycled, so pointers loaded from committed versions
// stay valid.
//
// A guard is one-shot: Exit releases the underlying slot back to the
// free list and further Exits are no-ops, so double-Close of a snapshot
// (or of copies of one snapshot) is harmless and cannot unpin another
// reader that has since reused the slot.
type EpochGuard struct {
	slot *pinSlot
	eb   *ebrState
	done atomic.Bool
}

// Exit unpins the guard. Exit is idempotent; using the guard's snapshot
// after Exit is a bug.
func (g *EpochGuard) Exit() {
	if g == nil || g.done.Swap(true) {
		return
	}
	g.slot.pin.Store(0)
	g.eb.slotsMu.Lock()
	g.eb.freeSlots = append(g.eb.freeSlots, g.slot)
	g.eb.slotsMu.Unlock()
}

// ebrState is the shared epoch machinery of a heap.
type ebrState struct {
	epoch atomic.Uint64

	slotsMu   sync.Mutex
	slots     []*pinSlot // all slots ever created; pinned or idle
	freeSlots []*pinSlot // idle slots ready for reuse (LIFO)

	mu       sync.Mutex
	retired  []retiredBlock
	deferred []retiredBlock // releases postponed until their epoch grace passes
}

// Enter pins the current epoch and returns the guard. The pin is
// re-validated against the global epoch so a concurrent advance cannot
// leave the guard announcing a stale epoch unobserved by writers.
func (h *Heap) Enter() *EpochGuard {
	eb := &h.sh.ebr
	eb.slotsMu.Lock()
	var slot *pinSlot
	if n := len(eb.freeSlots); n > 0 {
		slot = eb.freeSlots[n-1]
		eb.freeSlots = eb.freeSlots[:n-1]
	} else {
		slot = &pinSlot{}
		eb.slots = append(eb.slots, slot)
	}
	eb.slotsMu.Unlock()
	for {
		e := eb.epoch.Load()
		slot.pin.Store(e + 1)
		if eb.epoch.Load() == e {
			return &EpochGuard{slot: slot, eb: eb}
		}
	}
}

// retireBatch queues zero-reference blocks for reclamation. A cascade is
// published in one batch, after all its walks completed (see
// Heap.retireCascade).
func (eb *ebrState) retireBatch(addrs []pmem.Addr, fence uint64) {
	e := eb.epoch.Load()
	eb.mu.Lock()
	for _, addr := range addrs {
		eb.retired = append(eb.retired, retiredBlock{addr: addr, epoch: e, fence: fence})
	}
	eb.mu.Unlock()
}

// deferRelease enqueues a publication-side release (a superseded root
// version replaced by a CAS or lock commit) to be decremented and
// cascaded only after the epoch grace period. Deferring the *decrement*
// — not just the free — is what protects lock-free builders: a writer
// that pinned the epoch and based its shadow on this version may still
// Retain children out of it, and an eager cascade could retire a child
// an instant before that Retain resurrects it. No fence stamp is kept:
// the eventual cascade stamps its blocks with the fence sequence at
// cascade time, which is at or past the enqueue-time sequence and so
// already covers the orphaning commit's durability point.
func (eb *ebrState) deferRelease(addr pmem.Addr) {
	e := eb.epoch.Load()
	eb.mu.Lock()
	eb.deferred = append(eb.deferred, retiredBlock{addr: addr, epoch: e})
	eb.mu.Unlock()
}

// processDeferred cascades deferred releases whose epoch grace period
// has passed — at most budget of them — feeding the resulting dead
// blocks into the retired list stamped with the fence sequence observed
// at cascade time. Stamping now rather than at enqueue is deliberate:
// the enqueue-time stamp is long past by the time the grace period ends,
// so the same reclaim round that ran the cascade would free the blocks
// and allow reuse before any further fence — durably safe (the orphaning
// commit's covering fence has executed), but it would break the
// free→fence→alloc ordering the trace checker's I4 invariant audits,
// because cascade-time Free events land after the round's fence event.
// The cascade-time stamp defers the free to the next fence, keeping
// reuse auditable at the cost of one extra fence of quarantine. The
// budget keeps reclamation incremental: cascades cost simulated PM reads
// charged to the calling handle, and after a stretch of pinned epochs
// the queue can hold thousands of entries — cascading them all inside
// one caller's fence would lump the whole backlog's cost onto one
// goroutine's critical path. Entries beyond the budget stay queued for
// later fences (or an exhaustive Drain). Returns the number of entries
// cascaded and whether entries remain that are waiting only on further
// epoch advancement (budget-kept ready entries do not count: advancing
// the epoch would not help them).
func (eb *ebrState) processDeferred(h *Heap, budget int) (used int, epochWaiting bool) {
	e := eb.epoch.Load()
	eb.mu.Lock()
	var ready []retiredBlock
	kept := eb.deferred[:0]
	for _, d := range eb.deferred {
		if d.epoch+2 <= e && len(ready) < budget {
			ready = append(ready, d)
		} else {
			kept = append(kept, d)
			if d.epoch+2 > e {
				epochWaiting = true
			}
		}
	}
	eb.deferred = kept
	eb.mu.Unlock()
	fence := h.dev.FenceSeq()
	for _, d := range ready {
		if !h.decRef(d.addr) {
			continue
		}
		dead := h.collectCascade(d.addr, nil)
		ep := eb.epoch.Load()
		eb.mu.Lock()
		for _, a := range dead {
			eb.retired = append(eb.retired, retiredBlock{addr: a, epoch: ep, fence: fence})
		}
		eb.mu.Unlock()
	}
	return len(ready), epochWaiting
}

// pendingCount returns the number of retired-but-not-freed blocks,
// including deferred releases not yet cascaded.
func (eb *ebrState) pendingCount() int {
	eb.mu.Lock()
	defer eb.mu.Unlock()
	return len(eb.retired) + len(eb.deferred)
}

// tryAdvanceLocked bumps the global epoch if every pinned reader has
// observed the current one. Caller holds eb.mu.
func (eb *ebrState) tryAdvanceLocked() bool {
	e := eb.epoch.Load()
	eb.slotsMu.Lock()
	for _, s := range eb.slots {
		if p := s.pin.Load(); p != 0 && p != e+1 {
			eb.slotsMu.Unlock()
			return false
		}
	}
	eb.slotsMu.Unlock()
	eb.epoch.Store(e + 1)
	return true
}

// reclaim frees every retired block that is both fence-covered and past
// its epoch grace period, advancing the epoch as far as pinned readers
// allow (with no pinned readers the loop advances freely, degenerating to
// the original quarantine-at-fence behavior). deferBudget bounds how many
// deferred releases this call may cascade (see processDeferred); the free
// pass itself is never bounded — eager cascades were already walked and
// charged at Release time, so freeing is cheap bookkeeping.
func (eb *ebrState) reclaim(h *Heap, deferBudget int) {
	fenceNow := h.dev.FenceSeq()
	for {
		// Deferred releases first: a cascade run this round lands its
		// blocks on the retired list in time for this round's free pass
		// or — with no pinned readers — an epoch advance and the next.
		used, epochBlocked := eb.processDeferred(h, deferBudget)
		deferBudget -= used
		eb.mu.Lock()
		e := eb.epoch.Load()
		kept := eb.retired[:0]
		for _, r := range eb.retired {
			if r.fence < fenceNow && r.epoch+2 <= e {
				h.freeBlock(r)
				continue
			}
			if r.fence < fenceNow {
				epochBlocked = true // waiting only on the epoch grace period
			}
			kept = append(kept, r)
		}
		eb.retired = kept
		advanced := epochBlocked && eb.tryAdvanceLocked()
		eb.mu.Unlock()
		if !advanced || deferBudget <= 0 {
			return
		}
	}
}
