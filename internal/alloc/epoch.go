package alloc

import (
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/pmem"
)

// Epoch-based reclamation. MOD's commit step makes every committed
// version immutable, so readers can traverse a version without locks —
// provided the allocator does not recycle its nodes mid-traversal. The
// fence-drained quarantine of the single-threaded design guaranteed
// durability ordering but not reader safety; this file adds the classic
// three-epoch EBR scheme (Fraser; as in crossbeam and the lock-free
// durable sets of Zuriel et al.) on top of it.
//
// Protocol. A global epoch E advances only when every pinned reader has
// observed the current value. Readers pin the epoch (Heap.Enter) before
// loading any root pointer and unpin when done (EpochGuard.Exit). A block
// whose reference count reaches zero is retired, tagged with the current
// epoch and the device fence sequence. It is freed only when
//
//	retire.epoch + 2 <= E    (no reader pinned before the unlink remains)
//	retire.fence < fenceSeq  (a fence made the orphaning root swap durable)
//
// The two-epoch grace period is the standard argument: a reader holding a
// pointer into the block pinned an epoch <= retire.epoch + 1, and E cannot
// advance past retire.epoch + 2 while any such reader is still pinned.
//
// With no readers pinned — every single-threaded workload — reclaim
// advances E freely and the scheme degenerates to the original quarantine:
// Release then Fence frees the block immediately.

// retiredBlock is one zero-reference block awaiting reclamation.
type retiredBlock struct {
	addr  pmem.Addr
	epoch uint64 // global epoch at retirement
	fence uint64 // device FenceSeq at retirement
}

// pinSlot is a registered reader announcement cell. Slots are pooled and
// live for the heap's lifetime; an idle slot (pin 0) never blocks epoch
// advancement.
type pinSlot struct {
	pin atomic.Uint64 // epoch + 1; 0 = inactive
}

// EpochGuard pins the reclamation epoch for one reader. Obtain with
// Heap.Enter, release with Exit. While pinned, no block unlinked after
// the pin can be recycled, so pointers loaded from committed versions
// stay valid.
//
// A guard is one-shot: Exit releases the underlying slot back to the
// pool and further Exits are no-ops, so double-Close of a snapshot (or
// of copies of one snapshot) is harmless and cannot unpin another
// reader that has since reused the slot.
type EpochGuard struct {
	slot *pinSlot
	eb   *ebrState
	done atomic.Bool
}

// Exit unpins the guard. Exit is idempotent; using the guard's snapshot
// after Exit is a bug.
func (g *EpochGuard) Exit() {
	if g == nil || g.done.Swap(true) {
		return
	}
	g.slot.pin.Store(0)
	g.eb.pool.Put(g.slot)
}

// ebrState is the shared epoch machinery of a heap.
type ebrState struct {
	epoch atomic.Uint64

	slotsMu sync.Mutex
	slots   []*pinSlot // all slots ever created; pinned or idle
	pool    sync.Pool

	mu      sync.Mutex
	retired []retiredBlock
}

func (eb *ebrState) init() {
	eb.pool.New = func() any {
		s := &pinSlot{}
		eb.slotsMu.Lock()
		eb.slots = append(eb.slots, s)
		eb.slotsMu.Unlock()
		return s
	}
}

// Enter pins the current epoch and returns the guard. The pin is
// re-validated against the global epoch so a concurrent advance cannot
// leave the guard announcing a stale epoch unobserved by writers.
func (h *Heap) Enter() *EpochGuard {
	eb := &h.sh.ebr
	slot := eb.pool.Get().(*pinSlot)
	for {
		e := eb.epoch.Load()
		slot.pin.Store(e + 1)
		if eb.epoch.Load() == e {
			return &EpochGuard{slot: slot, eb: eb}
		}
	}
}

// retireBatch queues zero-reference blocks for reclamation. A cascade is
// published in one batch, after all its walks completed (see
// Heap.retireCascade).
func (eb *ebrState) retireBatch(addrs []pmem.Addr, fence uint64) {
	e := eb.epoch.Load()
	eb.mu.Lock()
	for _, addr := range addrs {
		eb.retired = append(eb.retired, retiredBlock{addr: addr, epoch: e, fence: fence})
	}
	eb.mu.Unlock()
}

// pendingCount returns the number of retired-but-not-freed blocks.
func (eb *ebrState) pendingCount() int {
	eb.mu.Lock()
	defer eb.mu.Unlock()
	return len(eb.retired)
}

// tryAdvanceLocked bumps the global epoch if every pinned reader has
// observed the current one. Caller holds eb.mu.
func (eb *ebrState) tryAdvanceLocked() bool {
	e := eb.epoch.Load()
	eb.slotsMu.Lock()
	for _, s := range eb.slots {
		if p := s.pin.Load(); p != 0 && p != e+1 {
			eb.slotsMu.Unlock()
			return false
		}
	}
	eb.slotsMu.Unlock()
	eb.epoch.Store(e + 1)
	return true
}

// reclaim frees every retired block that is both fence-covered and past
// its epoch grace period, advancing the epoch as far as pinned readers
// allow (with no pinned readers the loop advances freely, degenerating to
// the original quarantine-at-fence behavior).
func (eb *ebrState) reclaim(h *Heap) {
	fenceNow := h.dev.FenceSeq()
	eb.mu.Lock()
	defer eb.mu.Unlock()
	for {
		e := eb.epoch.Load()
		epochBlocked := false
		kept := eb.retired[:0]
		for _, r := range eb.retired {
			if r.fence < fenceNow && r.epoch+2 <= e {
				h.freeBlock(r)
				continue
			}
			if r.fence < fenceNow {
				epochBlocked = true // waiting only on the epoch grace period
			}
			kept = append(kept, r)
		}
		eb.retired = kept
		if !epochBlocked || !eb.tryAdvanceLocked() {
			return
		}
	}
}
