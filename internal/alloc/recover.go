package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/mod-ds/mod/internal/pmem"
)

// Recovery (§5.3). After a crash the heap contains (a) datastructure
// versions reachable from the root table — exactly the committed state —
// and (b) orphaned blocks from interrupted FASEs and from reclamations
// whose metadata never became durable. Recover performs the paper's
// reachability analysis: it marks everything reachable from the roots via
// the registered walkers, rebuilds the volatile reference counts as the
// number of reachable parents, sweeps everything else onto the free lists,
// and repairs the bump pointer if its last update was lost.
//
// Recovery time is charged to the simulated clock; the paper's reported
// results include garbage collection time, and so do ours.

// Recover rebuilds volatile allocator state from the durable heap image.
// It must run before the heap is shared across goroutines.
func (h *Heap) Recover() (RecoveryStats, error) {
	var rs RecoveryStats

	sh := h.sh
	h.resetCache()
	sh.refs = &sync.Map{}
	sh.free = make(map[uint32][]pmem.Addr)
	sh.ebr.mu.Lock()
	sh.ebr.retired = sh.ebr.retired[:0]
	sh.ebr.mu.Unlock()
	sh.stats.LiveBytes = 0

	// Pass 1: validate the block chain, repairing a stale bump pointer.
	// The open-run table lists bump runs claimed by edits that never
	// sealed: their headers were deferred-flushed, so the chain may tear
	// inside a recorded run without implying anything about blocks beyond
	// it. A torn header inside a recorded run kills only the remainder of
	// that run (an unsealed edit is unreachable from every durable root by
	// the fence ordering in edit.go); a torn header anywhere else
	// truncates the heap as before.
	type openRun struct{ start, end pmem.Addr }
	var openRuns []openRun
	for slot := 0; slot < EditRunSlots; slot++ {
		start := pmem.Addr(h.dev.ReadU64(runEntryAddr(slot)))
		end := pmem.Addr(h.dev.ReadU64(runEntryAddr(slot) + 8))
		if start >= heapBase && start < end && end <= sh.top {
			openRuns = append(openRuns, openRun{start: start, end: end})
		}
	}
	runOver := func(a pmem.Addr) (openRun, bool) {
		for _, r := range openRuns {
			if a >= r.start && a < r.end {
				return r, true
			}
		}
		return openRun{}, false
	}

	type blockInfo struct {
		hdr    pmem.Addr
		stride uint32
		tag    uint8
		marked bool
		wasAll bool
		vol    bool
	}
	var blocks []blockInfo
	index := make(map[pmem.Addr]int) // payload -> blocks index
	addr := pmem.Addr(heapBase)
	for addr+headerSize <= sh.top {
		raw := h.dev.ReadU64(addr)
		stride, tag, allocated, ok := unpackHeader(raw)
		if ok && (addr+pmem.Addr(stride) > sh.end || stride < headerSize+1) {
			ok = false
		}
		run, inRun := runOver(addr)
		if ok && inRun && addr+pmem.Addr(stride) > run.end {
			// A genuine block never crosses out of its run; this is
			// payload garbage that happens to parse as a header.
			ok = false
		}
		if !ok {
			if inRun {
				// Dead remainder of an interrupted edit's run: make it
				// permanently walkable (a second crash may find the run
				// entry reused) and resume at the run boundary.
				rem := uint32(run.end - addr)
				if rem > headerSize {
					h.dev.WriteU64(addr, packHeader(rem, 0, false))
					h.dev.Clwb(addr)
					blocks = append(blocks, blockInfo{hdr: addr, stride: rem})
				} else if n := len(blocks); n > 0 && blocks[n-1].hdr+pmem.Addr(blocks[n-1].stride) == addr {
					// Too small for a header: absorb into the preceding
					// block (at most 8 bytes; strides are multiples of 8).
					blocks[n-1].stride += rem
					hv := packHeader(blocks[n-1].stride, blocks[n-1].tag, blocks[n-1].wasAll)
					if blocks[n-1].vol {
						hv |= hdrVolatileBit
					}
					h.dev.WriteU64(blocks[n-1].hdr, hv)
					h.dev.Clwb(blocks[n-1].hdr)
				}
				addr = run.end
				continue
			}
			// Torn or never-written header: everything at and beyond this
			// point was allocated after the last durable commit and is
			// unreachable. Truncate the heap here.
			sh.top = addr
			h.dev.WriteU64(offBumpTop, uint64(sh.top))
			h.dev.Clwb(offBumpTop)
			h.dev.Sfence()
			break
		}
		index[addr+headerSize] = len(blocks)
		blocks = append(blocks, blockInfo{hdr: addr, stride: stride, tag: tag, wasAll: allocated, vol: raw&hdrVolatileBit != 0})
		addr += pmem.Addr(stride)
	}
	// The table is consumed: no edit survives a crash. Synthesized headers
	// are fenced before the entries clear so a second crash still finds a
	// walkable chain.
	if len(openRuns) > 0 {
		h.dev.Sfence()
		for slot := 0; slot < EditRunSlots; slot++ {
			h.dev.WriteU64(runEntryAddr(slot), 0)
			h.dev.WriteU64(runEntryAddr(slot)+8, 0)
			h.dev.Clwb(runEntryAddr(slot))
		}
		h.dev.Sfence()
	}

	// Pass 2: mark from roots, rebuilding reference counts as the number
	// of reachable parents (plus one per root-table reference).
	//
	// Blocks carrying the volatile-node bit are navigation state whose
	// payload was never flushed: recovery must not trust (or recurse
	// into) their contents. They are kept live — the committed structure
	// header still references them until the selective rebuild replaces
	// it — but their payloads are zeroed so every later walker sees an
	// empty node, and their children are left unmarked for the sweep
	// (DESIGN.md §10).
	var stack []pmem.Addr
	visit := func(payload pmem.Addr) error {
		if payload == pmem.Nil {
			return nil
		}
		bi, ok := index[payload]
		if !ok {
			return fmt.Errorf("alloc: recovery found pointer to non-block address %#x", uint64(payload))
		}
		cnt, _ := sh.refs.LoadOrStore(payload, &atomic.Int32{})
		cnt.(*atomic.Int32).Add(1)
		if !blocks[bi].marked {
			blocks[bi].marked = true
			if blocks[bi].vol {
				rs.VolatileBlocks++
				h.dev.Zero(payload, int(blocks[bi].stride)-headerSize)
			} else {
				stack = append(stack, payload)
			}
		}
		return nil
	}
	var walkErr error
	for slot := 0; slot < RootSlots; slot++ {
		if h.dev.ReadU64(rootEntryAddr(slot)) == 0 {
			continue
		}
		root := h.Root(slot)
		if root == pmem.Nil {
			continue
		}
		rs.Roots++
		if err := visit(root); err != nil {
			return rs, err
		}
	}
	for len(stack) > 0 {
		payload := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		tag := blocks[index[payload]].tag
		if w := sh.walkers[tag]; w != nil {
			w(h, payload, func(child pmem.Addr) {
				if walkErr == nil {
					walkErr = visit(child)
				}
			})
			if walkErr != nil {
				return rs, walkErr
			}
		}
	}

	// Pass 3: sweep. Unmarked blocks — whether leaked by an interrupted
	// FASE or freed before the crash — return to the free lists.
	for _, b := range blocks {
		if b.marked {
			rs.LiveBlocks++
			rs.LiveBytes += uint64(b.stride)
			sh.stats.LiveBytes += uint64(b.stride)
			continue
		}
		sh.free[b.stride] = append(sh.free[b.stride], b.hdr)
		if b.wasAll {
			rs.LeakedBlocks++
			rs.LeakedBytes += uint64(b.stride)
		}
	}
	return rs, nil
}

// OpenAndRecover attaches to the heap on dev and runs recovery.
func OpenAndRecover(dev pmem.Backend) (*Heap, RecoveryStats, error) {
	h, err := Open(dev)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	rs, err := h.Recover()
	if err != nil {
		return nil, rs, err
	}
	return h, rs, nil
}
