package alloc

import (
	"fmt"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

// TestRecoverAllParallelMatchesSequential builds several independent
// heaps with live chains and leaked blocks, crashes them, and checks the
// parallel multi-heap recovery reports exactly what per-heap sequential
// recovery would: live state intact, leaks swept, on every shard.
func TestRecoverAllParallelMatchesSequential(t *testing.T) {
	const shards = 4
	cfg := pmem.DefaultConfig(1 << 20)
	cfg.TrackDurable = true

	var imgs [][]byte
	var wantLive []uint64
	for s := 0; s < shards; s++ {
		dev := pmem.New(cfg)
		h := Format(dev)
		registerPairWalker(h)
		slot, err := h.RootSlot(fmt.Sprintf("root-%d", s))
		if err != nil {
			t.Fatal(err)
		}
		// A committed two-node chain per shard, plus s+1 leaked blocks
		// from an interrupted FASE.
		child := h.Alloc(16, tagPair)
		dev.WriteU64(child, 0)
		dev.WriteU64(child+8, 0)
		parent := h.Alloc(16, tagPair)
		dev.WriteAddr(parent, child)
		dev.WriteU64(parent+8, 0)
		dev.FlushRange(child, 16)
		dev.FlushRange(parent, 16)
		dev.Sfence()
		h.SetRoot(slot, parent)
		dev.Sfence()
		wantLive = append(wantLive, uint64(parent), uint64(child))
		for i := 0; i <= s; i++ {
			h.Alloc(16, tagPair) // never committed: a leak
		}
		dev.Sfence() // headers durable, so recovery sees (and sweeps) the leaks
		imgs = append(imgs, dev.CrashImage(pmem.CrashFencedOnly, uint64(s)+1))
	}

	devs := make([]pmem.Backend, shards)
	for s := range devs {
		devs[s] = pmem.NewFromImage(cfg, imgs[s])
	}
	heaps, err := OpenAll(devs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range heaps {
		registerPairWalker(h)
	}
	stats, err := RecoverAll(heaps)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != shards {
		t.Fatalf("got %d stats, want %d", len(stats), shards)
	}
	for s, rs := range stats {
		if rs.LiveBlocks != 2 {
			t.Errorf("shard %d: live blocks = %d, want 2", s, rs.LiveBlocks)
		}
		if rs.LeakedBlocks != s+1 {
			t.Errorf("shard %d: leaked blocks = %d, want %d", s, rs.LeakedBlocks, s+1)
		}
		if rs.Roots != 1 {
			t.Errorf("shard %d: roots = %d, want 1", s, rs.Roots)
		}
		slot, err := heaps[s].RootSlot(fmt.Sprintf("root-%d", s))
		if err != nil {
			t.Fatal(err)
		}
		parent := heaps[s].Root(slot)
		if uint64(parent) != wantLive[2*s] {
			t.Errorf("shard %d: root = %#x, want %#x", s, uint64(parent), wantLive[2*s])
		}
		child := devs[s].ReadAddr(parent)
		if heaps[s].RefCount(child) != 1 {
			t.Errorf("shard %d: child refcount = %d, want 1", s, heaps[s].RefCount(child))
		}
	}
}

// TestFormatAllIndependentHeaps checks FormatAll yields heaps whose
// allocations and roots never alias across devices.
func TestFormatAllIndependentHeaps(t *testing.T) {
	devs := []pmem.Backend{
		pmem.New(pmem.DefaultConfig(1 << 20)),
		pmem.New(pmem.DefaultConfig(1 << 20)),
	}
	heaps := FormatAll(devs)
	a := heaps[0].Alloc(32, 1)
	b := heaps[1].Alloc(32, 1)
	if a != b {
		t.Fatalf("same bump position expected on fresh heaps: %#x vs %#x", uint64(a), uint64(b))
	}
	if devs[0].Stats().Writes == 0 || devs[1].Stats().Writes == 0 {
		t.Fatal("both devices should have seen writes")
	}
	// Writing one heap's block must not appear in the other region.
	devs[0].WriteU64(a, 0xdead)
	if devs[1].ReadU64(b) == 0xdead {
		t.Fatal("regions alias")
	}
}
