package alloc

import (
	"strings"
	"testing"

	"github.com/mod-ds/mod/internal/pmem"
)

func verifyHeapFor(t *testing.T) (*Heap, *pmem.Device) {
	t.Helper()
	dev := pmem.New(pmem.DefaultConfig(1 << 20))
	return Format(dev), dev
}

// rawArena opens a recovery bracket and returns a mutable raw view —
// the test-side stand-in for silent media damage landing on the arena.
func rawArena(dev *pmem.Device, addr pmem.Addr, n int) []byte {
	defer dev.BeginRecovery()()
	return dev.Bytes(addr, n)
}

func TestSealNodeChecksumRoundtrip(t *testing.T) {
	h, dev := verifyHeapFor(t)
	a := h.AllocNode(64, 7)
	for i := 0; i < 64; i += 8 {
		dev.WriteU64(a+pmem.Addr(i), uint64(i)*0x9E3779B97F4A7C15)
	}
	if _, _, has := h.Checksum(a); has {
		t.Fatal("unsealed node claims a checksum")
	}
	h.SealNode(a, 64)
	n, ok, has := h.Checksum(a)
	if !has || !ok || n != 64 {
		t.Fatalf("Checksum after seal: n=%d ok=%v has=%v", n, ok, has)
	}
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("sealed node fails verification: %v", err)
	}

	// Any covered-byte flip must break the checksum.
	raw := rawArena(dev, a+17, 1)
	raw[0] ^= 0x10
	if _, ok, _ := h.Checksum(a); ok {
		t.Fatal("flipped covered byte left checksum valid")
	}
	err := h.VerifyBlock(a)
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("VerifyBlock after flip: %v", err)
	}
	raw[0] ^= 0x10
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("restored node fails verification: %v", err)
	}

	// ResealNode recomputes over the same covered length.
	dev.WriteU64(a, 0xFEED)
	h.ResealNode(a)
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("resealed node fails verification: %v", err)
	}
}

func TestChecksumCoversOnlyInitializedPrefix(t *testing.T) {
	h, dev := verifyHeapFor(t)
	a := h.AllocNode(128, 3)
	dev.WriteU64(a, 42)
	h.SealNode(a, 16) // only the first 16 bytes are initialized

	// Scribbling on the uncovered tail must not trip verification: the
	// tail was never flushed, so its content carries no promises.
	dev.WriteU64(a+64, 0xBADBADBAD)
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("uncovered tail write broke verification: %v", err)
	}
	// But the covered prefix is protected.
	rawArena(dev, a+8, 1)[0] ^= 1
	if err := h.VerifyBlock(a); err == nil {
		t.Fatal("covered prefix flip went undetected")
	}
}

func TestLegacyAllocHasNoChecksum(t *testing.T) {
	h, dev := verifyHeapFor(t)
	a := h.Alloc(32, 0)
	dev.WriteU64(a, 7)
	if _, _, has := h.Checksum(a); has {
		t.Fatal("legacy Alloc block claims a checksum")
	}
	// Without a checksum only structural header checks apply.
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("legacy block fails structural verification: %v", err)
	}
}

func TestVerifyBlockStructural(t *testing.T) {
	h, dev := verifyHeapFor(t)
	a := h.AllocNode(32, 3)
	dev.WriteU64(a, 1)
	h.SealNode(a, 32)

	if err := h.VerifyBlock(pmem.Addr(4)); err == nil {
		t.Fatal("pointer below heap base verified")
	}
	if err := h.VerifyBlock(a + 1<<30); err == nil {
		t.Fatal("pointer beyond bump top verified")
	}
	// A dead header line is structural damage, reported without panicking.
	dev.MarkLineDead(a - HeaderSize)
	err := h.VerifyBlock(a)
	if err == nil || !strings.Contains(err.Error(), "unreadable") {
		t.Fatalf("dead header line: %v", err)
	}
	dev.ClearDeadLines()
	if err := h.VerifyBlock(a); err != nil {
		t.Fatalf("cleared line still failing: %v", err)
	}
}

// chainTag builds a two-node parent->child chain under a root slot using
// a registered walker, for the walk-based verifier tests.
const chainTag = 41

func buildChain(t *testing.T, h *Heap, dev *pmem.Device) (root, child pmem.Addr, slot int) {
	t.Helper()
	h.RegisterWalker(chainTag, func(h *Heap, a pmem.Addr, visit func(pmem.Addr)) {
		visit(pmem.Addr(h.Device().ReadU64(a)))
	})
	child = h.AllocNode(24, chainTag)
	dev.WriteU64(child, uint64(pmem.Nil))
	h.SealNode(child, 8)
	root = h.AllocNode(24, chainTag)
	dev.WriteU64(root, uint64(child))
	h.SealNode(root, 8)
	slot, err := h.RootSlot("chain")
	if err != nil {
		t.Fatal(err)
	}
	h.Fence()
	h.SetRoot(slot, root)
	h.Fence()
	return root, child, slot
}

func TestVerifyRootWalksChildren(t *testing.T) {
	h, dev := verifyHeapFor(t)
	_, child, slot := buildChain(t, h, dev)
	if err := h.VerifyRoot(slot); err != nil {
		t.Fatalf("healthy chain: %v", err)
	}
	// Damage the child only: the walk must find it.
	rawArena(dev, child, 1)[0] ^= 4
	if err := h.VerifyRoot(slot); err == nil {
		t.Fatal("damaged child went undetected")
	}
	if dmg := h.VerifyRoots(); dmg[slot] == nil {
		t.Fatalf("VerifyRoots missed slot %d: %v", slot, dmg)
	}
}

func TestVerifyRootBeforeDescend(t *testing.T) {
	h, dev := verifyHeapFor(t)
	root, _, slot := buildChain(t, h, dev)
	// Corrupt the root's child pointer to a wild address AND its
	// checksum evidence: verify-before-descend must report the root
	// without ever dereferencing the wild pointer.
	dev.WriteU64(root, 0x7FFF8)
	if err := h.VerifyRoot(slot); err == nil {
		t.Fatal("corrupt root pointer went undetected")
	}
}

func TestVerifyRootDeadRootCell(t *testing.T) {
	h, dev := verifyHeapFor(t)
	_, _, slot := buildChain(t, h, dev)
	dev.MarkLineDead(rootEntryAddr(slot))
	err := h.VerifyRoot(slot)
	if err == nil || !strings.Contains(err.Error(), "root cell") {
		t.Fatalf("dead root cell: %v", err)
	}
}

func TestLazyVerifyOnRead(t *testing.T) {
	h, dev := verifyHeapFor(t)
	a := h.AllocNode(32, 3)
	dev.WriteU64(a, 99)
	h.SealNode(a, 32)
	b := h.AllocNode(32, 3)
	dev.WriteU64(b, 100)
	h.SealNode(b, 32)

	rawArena(dev, a, 1)[0] ^= 2 // silent damage before "recovery"
	h.ArmLazyVerify()

	// First read of the healthy block verifies and clears its taint.
	h.VerifyOnRead(b)
	// Second read is the steady-state fast path (no way to observe
	// directly here beyond not panicking).
	h.VerifyOnRead(b)

	func() {
		defer func() {
			cp, ok := recover().(*CorruptionPanic)
			if !ok {
				t.Fatal("read of damaged block did not raise *CorruptionPanic")
			}
			if cp.Block.Addr != a {
				t.Fatalf("CorruptionPanic block %#x, want %#x", uint64(cp.Block.Addr), uint64(a))
			}
		}()
		h.VerifyOnRead(a)
	}()
}

func TestDataBounds(t *testing.T) {
	h, _ := verifyHeapFor(t)
	lo, hi := h.DataBounds()
	if lo != pmem.Addr(heapBase) {
		t.Fatalf("lo = %#x, want heap base %#x", uint64(lo), uint64(heapBase))
	}
	if hi < lo {
		t.Fatalf("hi %#x below lo %#x", uint64(hi), uint64(lo))
	}
	before := hi
	h.AllocNode(64, 1)
	if _, hi2 := h.DataBounds(); hi2 <= before {
		t.Fatal("DataBounds hi did not advance with the bump pointer")
	}
}
