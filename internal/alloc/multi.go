package alloc

import (
	"errors"
	"fmt"
	"sync"

	"github.com/mod-ds/mod/internal/pmem"
)

// Multi-heap entry points for sharded stores. A region-split store keeps
// one independent Heap per shard region; formatting and — much more
// importantly — post-crash recovery then parallelize trivially, because
// no allocator state is shared between heaps. Recovery is the expensive
// phase (a full reachability scan over each heap), so RecoverAll runs
// one goroutine per heap: recovery time becomes the slowest shard's scan
// instead of the sum of all of them.

// FormatAll initializes one fresh heap per device.
func FormatAll(devs []pmem.Backend) []*Heap {
	heaps := make([]*Heap, len(devs))
	for i, dev := range devs {
		heaps[i] = Format(dev)
	}
	return heaps
}

// OpenAll attaches to one previously formatted heap per device, without
// scanning. Most callers follow with RecoverAll.
func OpenAll(devs []pmem.Backend) ([]*Heap, error) {
	heaps := make([]*Heap, len(devs))
	for i, dev := range devs {
		h, err := Open(dev)
		if err != nil {
			return nil, fmt.Errorf("heap %d: %w", i, err)
		}
		heaps[i] = h
	}
	return heaps, nil
}

// RecoverAll runs Recover on every heap concurrently, one goroutine per
// heap, and returns the per-heap recovery stats in heap order. Each
// heap's recovery touches only its own device region, so the scans are
// fully independent; simulated recovery time accrues on each region's
// own clock, modeling parallel shard recovery. Any per-heap errors are
// joined. Like Recover, it must complete before the heaps are shared.
func RecoverAll(heaps []*Heap) ([]RecoveryStats, error) {
	stats := make([]RecoveryStats, len(heaps))
	errs := make([]error, len(heaps))
	var wg sync.WaitGroup
	for i, h := range heaps {
		wg.Add(1)
		go func(i int, h *Heap) {
			defer wg.Done()
			rs, err := h.Recover()
			stats[i] = rs
			if err != nil {
				errs[i] = fmt.Errorf("heap %d: %w", i, err)
			}
		}(i, h)
	}
	wg.Wait()
	return stats, errors.Join(errs...)
}
