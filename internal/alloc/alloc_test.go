package alloc

import (
	"testing"
	"testing/quick"

	"github.com/mod-ds/mod/internal/pmem"
)

func newTestHeap(t *testing.T) *Heap {
	t.Helper()
	cfg := pmem.DefaultConfig(1 << 20)
	cfg.TrackDurable = true
	return Format(pmem.New(cfg))
}

// tagPair is a test node holding two child pointers at offsets 0 and 8.
const tagPair = 7

func registerPairWalker(h *Heap) {
	h.RegisterWalker(tagPair, func(h *Heap, addr pmem.Addr, visit func(pmem.Addr)) {
		visit(pmem.Addr(h.Device().ReadU64(addr)))
		visit(pmem.Addr(h.Device().ReadU64(addr + 8)))
	})
}

func TestFormatOpenRoundTrip(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	dev := pmem.New(cfg)
	Format(dev)
	h, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats().HeapUsed != 0 {
		t.Fatalf("fresh heap used %d bytes", h.Stats().HeapUsed)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(1 << 20))
	if _, err := Open(dev); err == nil {
		t.Fatal("Open of unformatted device must fail")
	}
}

func TestAllocDistinctAlignedTagged(t *testing.T) {
	h := newTestHeap(t)
	seen := map[pmem.Addr]bool{}
	for i := 0; i < 100; i++ {
		a := h.Alloc(40, 3)
		if a == pmem.Nil {
			t.Fatal("nil allocation")
		}
		if uint64(a)%8 != 0 {
			t.Fatalf("payload %#x not 8-byte aligned", uint64(a))
		}
		if seen[a] {
			t.Fatalf("address %#x returned twice", uint64(a))
		}
		seen[a] = true
		if got := h.Tag(a); got != 3 {
			t.Fatalf("Tag = %d, want 3", got)
		}
		if got := h.PayloadSize(a); got < 40 {
			t.Fatalf("PayloadSize = %d, want >= 40", got)
		}
	}
}

func TestStrideForClasses(t *testing.T) {
	cases := []struct {
		payload int
		stride  uint32
	}{
		{0, 24}, {8, 24}, {16, 32}, {24, 48}, {56, 96}, {100, 128},
		{4080, 4096}, {4088, 4160}, {5000, 5056},
	}
	for _, c := range cases {
		if got := strideFor(c.payload); got != c.stride {
			t.Errorf("strideFor(%d) = %d, want %d", c.payload, got, c.stride)
		}
	}
}

func TestReleaseQuarantinesUntilFence(t *testing.T) {
	h := newTestHeap(t)
	a := h.Alloc(16, 1)
	h.Release(a)
	if h.Stats().Quarantine != 1 {
		t.Fatalf("Quarantine = %d, want 1", h.Stats().Quarantine)
	}
	b := h.Alloc(16, 1)
	if b == a {
		t.Fatal("quarantined block reused before fence")
	}
	h.Fence()
	c := h.Alloc(16, 1)
	if c != a {
		t.Fatalf("freed block not reused after fence: got %#x, want %#x", uint64(c), uint64(a))
	}
}

func TestRetainReleaseCounts(t *testing.T) {
	h := newTestHeap(t)
	a := h.Alloc(16, 1)
	h.Retain(a)
	h.Retain(a)
	if got := h.RefCount(a); got != 3 {
		t.Fatalf("RefCount = %d, want 3", got)
	}
	h.Release(a)
	h.Release(a)
	if h.Stats().Quarantine != 0 {
		t.Fatal("block quarantined while references remain")
	}
	h.Release(a)
	if h.Stats().Quarantine != 1 {
		t.Fatal("block not quarantined at zero references")
	}
}

func TestDrainCascadesThroughWalker(t *testing.T) {
	h := newTestHeap(t)
	registerPairWalker(h)
	leaf1 := h.Alloc(16, 0)
	leaf2 := h.Alloc(16, 0)
	parent := h.Alloc(16, tagPair)
	h.Device().WriteU64(parent, uint64(leaf1))
	h.Device().WriteU64(parent+8, uint64(leaf2))

	h.Release(parent)
	h.Fence()
	if h.RefCount(leaf1) != 0 || h.RefCount(leaf2) != 0 {
		t.Fatal("children not released when parent freed")
	}
	if got := h.Stats().Frees; got != 3 {
		t.Fatalf("Frees = %d, want 3", got)
	}
}

func TestSharedChildSurvivesSiblingFree(t *testing.T) {
	h := newTestHeap(t)
	registerPairWalker(h)
	shared := h.Alloc(16, 0)
	p1 := h.Alloc(16, tagPair)
	p2 := h.Alloc(16, tagPair)
	h.Device().WriteU64(p1, uint64(shared))
	h.Device().WriteU64(p1+8, 0)
	h.Device().WriteU64(p2, uint64(shared))
	h.Device().WriteU64(p2+8, 0)
	h.Retain(shared) // second parent

	h.Release(p1)
	h.Fence()
	if h.RefCount(shared) != 1 {
		t.Fatalf("shared child RefCount = %d, want 1", h.RefCount(shared))
	}
	h.Release(p2)
	h.Fence()
	if h.RefCount(shared) != 0 {
		t.Fatal("shared child leaked after both parents freed")
	}
}

func TestDisableReclaim(t *testing.T) {
	h := newTestHeap(t)
	h.DisableReclaim = true
	a := h.Alloc(16, 1)
	h.Release(a)
	h.Fence()
	if h.Stats().Frees != 0 {
		t.Fatal("DisableReclaim must suppress frees")
	}
}

func TestReleaseUntrackedPanics(t *testing.T) {
	h := newTestHeap(t)
	defer func() {
		if recover() == nil {
			t.Fatal("release of untracked block should panic")
		}
	}()
	h.Release(12345)
}

func TestRootSlots(t *testing.T) {
	h := newTestHeap(t)
	s1, err := h.RootSlot("alpha")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.RootSlot("beta")
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("distinct names share a slot")
	}
	again, err := h.RootSlot("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if again != s1 {
		t.Fatalf("RootSlot(alpha) = %d on reopen, want %d", again, s1)
	}
	if !h.HasRoot("alpha") || h.HasRoot("gamma") {
		t.Fatal("HasRoot mismatch")
	}
	a := h.Alloc(16, 1)
	h.SetRoot(s1, a)
	if got := h.Root(s1); got != a {
		t.Fatalf("Root = %#x, want %#x", uint64(got), uint64(a))
	}
}

func TestRootTableFull(t *testing.T) {
	h := newTestHeap(t)
	for i := 0; i < RootSlots; i++ {
		if _, err := h.RootSlot(string(rune('a'+i%26)) + string(rune('A'+i/26))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.RootSlot("overflow"); err == nil {
		t.Fatal("full root table must return an error")
	}
}

// buildCrashableHeap commits a two-node list under root "r", then starts an
// uncommitted allocation, and returns the crash image.
func buildCrashableHeap(t *testing.T) ([]byte, pmem.Addr, pmem.Addr) {
	t.Helper()
	cfg := pmem.DefaultConfig(1 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)
	registerPairWalker(h)

	leaf := h.Alloc(16, 0)
	dev.WriteU64(leaf, 0xfeed)
	dev.FlushRange(leaf, 16)
	parent := h.Alloc(16, tagPair)
	dev.WriteU64(parent, uint64(leaf))
	dev.WriteU64(parent+8, 0)
	dev.FlushRange(parent, 16)
	slot, err := h.RootSlot("r")
	if err != nil {
		t.Fatal(err)
	}
	dev.Sfence()
	h.SetRoot(slot, parent)
	dev.Sfence() // make the root swap itself durable

	// Interrupted FASE: allocate and write, flush, but never commit.
	orphan := h.Alloc(64, 0)
	dev.WriteU64(orphan, 0xdead)
	dev.FlushRange(orphan, 64)
	dev.Sfence()

	return dev.CrashImage(pmem.CrashFencedOnly, 1), parent, leaf
}

func TestRecoverMarksLiveSweepsLeaks(t *testing.T) {
	img, parent, leaf := buildCrashableHeap(t)
	dev := pmem.NewFromImage(pmem.DefaultConfig(1<<20), img)
	h, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	registerPairWalker(h)
	rs, err := h.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Roots != 1 {
		t.Fatalf("Roots = %d, want 1", rs.Roots)
	}
	if rs.LiveBlocks != 2 {
		t.Fatalf("LiveBlocks = %d, want 2 (parent+leaf)", rs.LiveBlocks)
	}
	if rs.LeakedBlocks != 1 {
		t.Fatalf("LeakedBlocks = %d, want 1 (the orphan)", rs.LeakedBlocks)
	}
	if h.RefCount(parent) != 1 || h.RefCount(leaf) != 1 {
		t.Fatalf("refcounts parent=%d leaf=%d, want 1/1", h.RefCount(parent), h.RefCount(leaf))
	}
	if got := dev.ReadU64(leaf); got != 0xfeed {
		t.Fatalf("leaf data corrupted: %#x", got)
	}
	// The swept orphan's space must be reusable.
	slot, _ := h.RootSlot("r")
	_ = slot
	re := h.Alloc(56, 0)
	if re == pmem.Nil {
		t.Fatal("allocation after recovery failed")
	}
}

func TestRecoverRebuildsSharedRefcounts(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)
	registerPairWalker(h)

	shared := h.Alloc(16, 0)
	dev.WriteU64(shared, 1)
	p1 := h.Alloc(16, tagPair)
	p2 := h.Alloc(16, tagPair)
	dev.WriteU64(p1, uint64(shared))
	dev.WriteU64(p1+8, 0)
	dev.WriteU64(p2, uint64(shared))
	dev.WriteU64(p2+8, 0)
	h.Retain(shared)
	dev.FlushRange(shared, 16)
	dev.FlushRange(p1, 16)
	dev.FlushRange(p2, 16)
	s1, _ := h.RootSlot("a")
	s2, _ := h.RootSlot("b")
	dev.Sfence()
	h.SetRoot(s1, p1)
	h.SetRoot(s2, p2)
	dev.Sfence()

	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(1<<20), img)
	h2, _, err := OpenAndRecover(dev2)
	if err != nil {
		t.Fatal(err)
	}
	registerPairWalker(h2)
	if _, err := h2.Recover(); err != nil { // walkers registered now
		t.Fatal(err)
	}
	if got := h2.RefCount(shared); got != 2 {
		t.Fatalf("shared RefCount after recovery = %d, want 2", got)
	}
}

func TestRecoverTruncatesTornBumpPointer(t *testing.T) {
	cfg := pmem.DefaultConfig(1 << 20)
	cfg.TrackDurable = true
	dev := pmem.New(cfg)
	h := Format(dev)

	// Allocate a block whose header write never becomes durable, but force
	// the bump pointer update to become durable (adversarial eviction of
	// the superblock line only).
	a := h.Alloc(16, 1)
	_ = a
	dev.Clwb(offBumpTop)
	dev.Sfence() // bump pointer durable; header flush was issued at alloc
	// Note: Alloc flushed the header too, so to simulate the torn case we
	// instead corrupt the header region in the image.
	img := dev.CrashImage(pmem.CrashFencedOnly, 1)
	for i := 0; i < 8; i++ {
		img[heapBase+i] = 0 // tear the first block header
	}
	dev2 := pmem.NewFromImage(pmem.DefaultConfig(1<<20), img)
	h2, rs, err := OpenAndRecover(dev2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.LiveBlocks != 0 || rs.LeakedBlocks != 0 {
		t.Fatalf("recovery stats %+v, want empty heap", rs)
	}
	b := h2.Alloc(16, 1)
	if uint64(b) != heapBase+headerSize {
		t.Fatalf("post-truncation alloc at %#x, want heap base %#x", uint64(b), heapBase+headerSize)
	}
}

func TestQuickAllocAccounting(t *testing.T) {
	h := newTestHeap(t)
	f := func(sizes []uint16) bool {
		var addrs []pmem.Addr
		before := h.Stats()
		var want uint64
		for _, s := range sizes {
			sz := int(s % 3000)
			a := h.Alloc(sz, 1)
			addrs = append(addrs, a)
			want += uint64(strideFor(sz))
		}
		mid := h.Stats()
		if mid.LiveBytes-before.LiveBytes != want {
			return false
		}
		for _, a := range addrs {
			h.Release(a)
		}
		h.Fence()
		return h.Stats().LiveBytes == before.LiveBytes
	}
	cfgQ := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfgQ); err != nil {
		t.Fatal(err)
	}
}
