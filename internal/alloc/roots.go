package alloc

import (
	"fmt"

	"github.com/mod-ds/mod/internal/pmem"
)

// Named roots. Each persistent heap exposes a small table of named root
// pointers so applications can locate their recoverable datastructures
// across process lifetimes (§5.1: "Such root pointers allow PM
// applications to locate recoverable datastructures in persistent heaps").
// A root's address cell is the target of the 8-byte atomic pointer write
// performed by CommitSingle.

func rootEntryAddr(slot int) pmem.Addr {
	return pmem.Addr(offRoots + slot*rootEntrySize)
}

// fnv1a hashes a root name.
func fnv1a(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 { // 0 marks an empty slot
		h = 1
	}
	return h
}

// RootSlot returns the slot index for name, claiming an empty slot on
// first use. The claim is flushed without a fence: it becomes durable with
// the first commit that publishes data under it. Claims are serialized so
// concurrent binds of the same name resolve to one slot.
func (h *Heap) RootSlot(name string) (int, error) {
	h.sh.mu.Lock()
	defer h.sh.mu.Unlock()
	want := fnv1a(name)
	firstEmpty := -1
	for slot := 0; slot < RootSlots; slot++ {
		got := h.dev.ReadU64(rootEntryAddr(slot))
		if got == want {
			return slot, nil
		}
		if got == 0 && firstEmpty < 0 {
			firstEmpty = slot
		}
	}
	if firstEmpty < 0 {
		return 0, fmt.Errorf("alloc: root table full (%d slots)", RootSlots)
	}
	h.dev.WriteU64(rootEntryAddr(firstEmpty), want)
	h.dev.Clwb(rootEntryAddr(firstEmpty))
	return firstEmpty, nil
}

// HasRoot reports whether a root with this name exists (without claiming).
func (h *Heap) HasRoot(name string) bool {
	want := fnv1a(name)
	for slot := 0; slot < RootSlots; slot++ {
		if h.dev.ReadU64(rootEntryAddr(slot)) == want {
			return true
		}
	}
	return false
}

// RootCellAddr returns the PM address of the slot's pointer cell — the
// location CommitSingle overwrites with its atomic pointer write.
func (h *Heap) RootCellAddr(slot int) pmem.Addr {
	if slot < 0 || slot >= RootSlots {
		panic(fmt.Sprintf("alloc: root slot %d out of range", slot))
	}
	return rootEntryAddr(slot) + 8
}

// Root returns the payload address stored in the slot (Nil if unset).
func (h *Heap) Root(slot int) pmem.Addr {
	return pmem.Addr(h.dev.ReadU64(h.RootCellAddr(slot)))
}

// SetRoot atomically points the slot at payload addr v and flushes the
// cell (no fence; see DESIGN.md §4 on commit durability ordering).
func (h *Heap) SetRoot(slot int, v pmem.Addr) {
	cell := h.RootCellAddr(slot)
	h.dev.WriteAddr(cell, v)
	h.dev.Clwb(cell)
}

// CasRoot atomically points the slot at v only if it still holds old,
// flushing the cell on success. This is the optimistic commit path's
// publication step: the compare and the 8-byte pointer store are one
// indivisible device operation, so a writer that lost the race observes
// failure without having disturbed the committed root.
func (h *Heap) CasRoot(slot int, old, v pmem.Addr) bool {
	cell := h.RootCellAddr(slot)
	if !h.dev.CasAddr(cell, old, v) {
		return false
	}
	h.dev.Clwb(cell)
	return true
}
