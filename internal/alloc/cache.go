package alloc

import (
	"sync"

	"github.com/mod-ds/mod/internal/pmem"
)

// DRAM node cache (DESIGN.md §10). Selective persistence keeps funcds
// navigation nodes volatile-clean in PM; this cache fronts their reads so
// lookups and structural copies walk DRAM instead of re-reading the
// simulated PM media. Entries are immutable byte snapshots keyed by
// payload address: a cached node is a committed (or edit-sealed) node,
// and the only way its bytes change is through free-and-reallocate, which
// invalidates the entry (freeBlock) — in-flight edit-owned nodes bypass
// the cache entirely (ReadCached's edit argument).
//
// The cache is a correctness-neutral performance layer: simulated PM
// reads always see the latest bytes, so a miss or a disabled cache only
// costs the cache-hierarchy/PM latency, never staleness.
type nodeCache struct {
	mu sync.RWMutex
	m  map[pmem.Addr][]byte
}

func (c *nodeCache) get(a pmem.Addr) ([]byte, bool) {
	c.mu.RLock()
	b, ok := c.m[a]
	c.mu.RUnlock()
	return b, ok
}

func (c *nodeCache) put(a pmem.Addr, b []byte) {
	c.mu.Lock()
	c.m[a] = b
	c.mu.Unlock()
}

func (c *nodeCache) invalidate(a pmem.Addr) {
	c.mu.Lock()
	delete(c.m, a)
	c.mu.Unlock()
}

func (c *nodeCache) reset() {
	c.mu.Lock()
	c.m = make(map[pmem.Addr][]byte)
	c.mu.Unlock()
}

// EnableNodeCache switches on the DRAM node cache for every handle of
// this heap. Idempotent; safe to call at any point, though callers
// normally enable it right after Format/Open.
func (h *Heap) EnableNodeCache() {
	c := &nodeCache{m: make(map[pmem.Addr][]byte)}
	h.sh.cache.CompareAndSwap(nil, c)
}

// NodeCacheEnabled reports whether the DRAM node cache is on.
func (h *Heap) NodeCacheEnabled() bool { return h.sh.cache.Load() != nil }

// ReadCached reads n payload bytes of the node at payload addr a through
// the DRAM node cache. A hit is timed as a DRAM-backed hierarchy walk
// (pmem.Device.ReadDRAM): hot lines still hit L1, and a full miss costs
// DRAM latency instead of the PM media read a device access would risk.
// A miss reads the device and populates the cache. Nodes owned by ed
// (still being mutated in place this FASE) bypass the cache, as does
// everything when the cache is disabled. The returned slice is shared
// and must not be mutated.
func (h *Heap) ReadCached(a pmem.Addr, n int, ed *Edit) []byte {
	h.VerifyOnRead(a)
	c := h.sh.cache.Load()
	if c == nil || (ed != nil && ed.Owns(a)) {
		buf := make([]byte, n)
		h.dev.Read(a, buf)
		return buf
	}
	if b, ok := c.get(a); ok && len(b) >= n {
		h.dev.ReadDRAM(a, n)
		return b[:n]
	}
	buf := make([]byte, n)
	h.dev.Read(a, buf)
	c.put(a, buf)
	return buf
}

// invalidateCached drops the cache entry for payload addr a, if any.
func (h *Heap) invalidateCached(a pmem.Addr) {
	if c := h.sh.cache.Load(); c != nil {
		c.invalidate(a)
	}
}

// resetCache empties the node cache (recovery start).
func (h *Heap) resetCache() {
	if c := h.sh.cache.Load(); c != nil {
		c.reset()
	}
}
