package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
)

// DefaultRoots is the number of map roots keys are spread across when
// Config.Roots is zero. Spreading matters twice: root-level writer
// locks stop being a single hot point, and on a sharded store the
// roots land on different shards, so MULTI batches exercise the
// cross-shard manifest.
const DefaultRoots = 8

// RootName returns the reserved-for-the-server root name of key root i.
func RootName(i int) string { return fmt.Sprintf("kv:%d", i) }

// RootIndex routes a key to one of roots map roots (FNV-1a, the same
// hash regardless of store shape). Exported so crash tests and tools
// can find a key's root without a server.
func RootIndex(key []byte, roots int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(roots))
}

// Config configures a Server.
type Config struct {
	// KV is the store to serve; any core.KV (Store, ShardedStore, DB).
	KV core.KV
	// Roots is the number of map roots to spread keys across
	// (DefaultRoots when zero).
	Roots int
	// Middleware wraps the command handler, first element outermost.
	Middleware []Middleware
	// ConnMiddleware wraps per-connection service, first outermost
	// (e.g. LimitConns).
	ConnMiddleware []ConnMiddleware
	// Logf, when set, receives server lifecycle and connection-error
	// lines.
	Logf func(format string, args ...any)
}

// Server serves the RESP subset over any net.Listener. One goroutine
// per connection; writes reply only after their durability ticket
// resolves.
type Server struct {
	cfg     Config
	handler Handler
	serve   ConnHandler

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	connWG    sync.WaitGroup
	draining  atomic.Bool
	doneCh    chan struct{} // closed when shutdown completes
	shutOnce  sync.Once
}

// New builds a Server from cfg, composing the middleware chains.
func New(cfg Config) (*Server, error) {
	if cfg.KV == nil {
		return nil, errors.New("server: Config.KV is required")
	}
	if cfg.Roots <= 0 {
		cfg.Roots = DefaultRoots
	}
	s := &Server{
		cfg:       cfg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		doneCh:    make(chan struct{}),
	}
	s.handler = s.dispatch
	for i := len(cfg.Middleware) - 1; i >= 0; i-- {
		s.handler = cfg.Middleware[i](s.handler)
	}
	s.serve = s.serveConn
	for i := len(cfg.ConnMiddleware) - 1; i >= 0; i-- {
		s.serve = cfg.ConnMiddleware[i](s.serve)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections on l until the listener is closed (usually
// by Shutdown). It returns nil on a shutdown-initiated close.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		l.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		c, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.connWG.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, c)
				s.mu.Unlock()
				c.Close()
			}()
			s.serve(c)
		}()
	}
}

// ListenAndServe listens on the TCP address addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("listening on %s", l.Addr())
	return s.Serve(l)
}

// Shutdown gracefully stops the server: new connections are refused,
// blocked readers are kicked loose while in-flight commands finish and
// get their durable replies, then the store is drained (Sync) and
// closed. Safe to call more than once; every call waits for completion
// or ctx expiry, whichever first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		// Kick connections blocked in Read; a handler mid-command is
		// untouched and still writes its (durable) reply before its
		// next read fails.
		past := time.Unix(1, 0)
		for c := range s.conns {
			c.SetReadDeadline(past)
		}
		s.mu.Unlock()
		go func() {
			s.connWG.Wait()
			s.cfg.KV.Sync()
			if err := s.cfg.KV.Close(); err != nil {
				s.logf("close store: %v", err)
			}
			close(s.doneCh)
			s.logf("shutdown complete")
		}()
	})
	select {
	case <-s.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Done is closed once Shutdown has fully drained and closed the store.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// Conn is the per-connection state handlers run against: a forked KV
// handle (own simulated clock), this connection's root bindings, and
// the MULTI queue.
type Conn struct {
	srv   *Server
	kv    core.KV
	roots []*core.Map

	inMulti bool
	queued  []Command
}

// rootFor lazily binds the map root a key routes to.
func (c *Conn) rootFor(key []byte) (*core.Map, error) {
	i := RootIndex(key, len(c.roots))
	if c.roots[i] == nil {
		m, err := c.kv.Map(RootName(i))
		if err != nil {
			return nil, err
		}
		c.roots[i] = m
	}
	return c.roots[i], nil
}

// serveConn runs the read → handle → reply loop for one connection.
func (s *Server) serveConn(nc net.Conn) {
	c := &Conn{
		srv:   s,
		kv:    s.cfg.KV.ForkKV(),
		roots: make([]*core.Map, s.cfg.Roots),
	}
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	for {
		cmd, err := ReadCommand(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) && !isTimeout(err) {
				if errors.Is(err, errProtocol) {
					// Tell the peer what went wrong before hanging up.
					ErrorReply("ERR", err.Error()).writeTo(bw)
					bw.Flush()
				}
				s.logf("read: %v", err)
			}
			return
		}
		rp := s.handle(c, cmd)
		if err := rp.writeTo(bw); err != nil {
			s.logf("write: %v", err)
			return
		}
		if err := bw.Flush(); err != nil {
			s.logf("flush: %v", err)
			return
		}
	}
}

// handle runs the middleware-wrapped handler, converting the typed
// corruption panics the store's lazy on-read verification raises deep
// inside read paths (which have no error returns) into -CORRUPT
// replies: one damaged node degrades one command, not the connection —
// let alone the server. Anything else keeps panicking into the
// connection goroutine (or the Recover middleware, when installed).
func (s *Server) handle(c *Conn, cmd Command) (rp Reply) {
	defer func() {
		switch r := recover().(type) {
		case nil:
		case *alloc.CorruptionPanic:
			rp = ErrorReply("CORRUPT", r.Error())
		case *pmem.MediaError:
			rp = ErrorReply("CORRUPT", r.Error())
		default:
			panic(r)
		}
	}()
	return s.handler(c, cmd)
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// errReply maps store errors onto RESP error classes for read paths:
// a quarantined or corrupt root answers -CORRUPT so clients can tell
// media damage from transient failures.
func errReply(err error) Reply {
	switch {
	case errors.Is(err, core.ErrWrongRootKind):
		return ErrorReply("WRONGTYPE", err.Error())
	case errors.Is(err, core.ErrStoreClosed):
		return ErrorReply("SHUTDOWN", err.Error())
	case errors.Is(err, core.ErrCorrupted):
		return ErrorReply("CORRUPT", err.Error())
	default:
		return ErrorReply("ERR", err.Error())
	}
}

// writeErrReply maps store errors onto RESP error classes for write
// paths: a write against a quarantined root answers -READONLY — the
// root is degraded to read-only-at-best until repaired, and the Redis
// convention tells well-behaved clients to stop writing here.
func writeErrReply(err error) Reply {
	if errors.Is(err, core.ErrCorrupted) {
		return ErrorReply("READONLY", err.Error())
	}
	return errReply(err)
}

// transientCommitErr reports whether a CommitAsync ticket failure is
// worth retrying: permanent conditions (shutdown, quarantined or
// mistyped roots) are not.
func transientCommitErr(err error) bool {
	return !errors.Is(err, core.ErrStoreClosed) &&
		!errors.Is(err, core.ErrCorrupted) &&
		!errors.Is(err, core.ErrWrongRootKind) &&
		!errors.Is(err, core.ErrReservedRootName)
}

// commitRetries and commitBackoff bound the write paths' retry loop:
// a failed durability ticket is retried at most commitRetries extra
// times, sleeping commitBackoff, 2×commitBackoff, ... between attempts.
const commitRetries = 2

var commitBackoff = time.Millisecond

// commitDurable builds a batch via build, submits it, and waits for
// durability, retrying transient ticket failures with bounded
// exponential backoff. Each retry rebuilds the batch (submission
// consumes it); the queued operations are idempotent map sets/deletes,
// so a retry after an ambiguous failure is safe.
func commitDurable(kv core.KV, build func(b core.Batcher)) error {
	backoff := commitBackoff
	for attempt := 0; ; attempt++ {
		b := kv.Batch()
		build(b)
		t := b.CommitAsync()
		t.Wait() // reply only after the write is fenced durable
		err := t.Err()
		if err == nil || attempt >= commitRetries || !transientCommitErr(err) {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// dispatch is the innermost handler: verb switch, MULTI bookkeeping,
// and the durability wait on every write path.
func (s *Server) dispatch(c *Conn, cmd Command) Reply {
	name := strings.ToUpper(cmd.Name)
	if c.inMulti {
		switch name {
		case "SET", "DEL":
			if rp, ok := checkArity(name, cmd); !ok {
				return rp
			}
			c.queued = append(c.queued, Command{Name: name, Args: cmd.Args})
			return SimpleReply("QUEUED")
		case "EXEC":
			return s.execMulti(c)
		case "DISCARD":
			c.inMulti = false
			c.queued = nil
			return SimpleReply("OK")
		case "MULTI":
			return ErrorReply("ERR", "MULTI calls can not be nested")
		default:
			// Anything else aborts the transaction, Redis-style.
			c.inMulti = false
			c.queued = nil
			return ErrorReply("ERR", "command not allowed in MULTI: "+name)
		}
	}
	switch name {
	case "PING":
		return SimpleReply("PONG")
	case "GET":
		if rp, ok := checkArity(name, cmd); !ok {
			return rp
		}
		m, err := c.rootFor(cmd.Args[0])
		if err != nil {
			return errReply(err)
		}
		v, ok := m.Get(cmd.Args[0])
		if !ok {
			return BulkReply(nil)
		}
		return BulkReply(v)
	case "MGET":
		if len(cmd.Args) == 0 {
			return ErrorReply("ERR", "wrong number of arguments for 'MGET'")
		}
		elems := make([]Reply, len(cmd.Args))
		for i, k := range cmd.Args {
			m, err := c.rootFor(k)
			if err != nil {
				return errReply(err)
			}
			if v, ok := m.Get(k); ok {
				elems[i] = BulkReply(v)
			} else {
				elems[i] = BulkReply(nil)
			}
		}
		return ArrayReply(elems...)
	case "SET":
		if rp, ok := checkArity(name, cmd); !ok {
			return rp
		}
		m, err := c.rootFor(cmd.Args[0])
		if err != nil {
			return writeErrReply(err)
		}
		if err := commitDurable(c.kv, func(b core.Batcher) {
			b.MapSet(m, cmd.Args[0], cmd.Args[1])
		}); err != nil {
			return writeErrReply(err)
		}
		return SimpleReply("OK")
	case "DEL":
		if rp, ok := checkArity(name, cmd); !ok {
			return rp
		}
		m, err := c.rootFor(cmd.Args[0])
		if err != nil {
			return writeErrReply(err)
		}
		if _, ok := m.Get(cmd.Args[0]); !ok {
			return IntReply(0)
		}
		if err := commitDurable(c.kv, func(b core.Batcher) {
			b.MapDelete(m, cmd.Args[0])
		}); err != nil {
			return writeErrReply(err)
		}
		return IntReply(1)
	case "LEN":
		var n uint64
		for i := range c.roots {
			if c.roots[i] == nil {
				m, err := c.kv.Map(RootName(i))
				if err != nil {
					return errReply(err)
				}
				c.roots[i] = m
			}
			n += c.roots[i].Len()
		}
		return IntReply(int64(n))
	case "MULTI":
		c.inMulti = true
		c.queued = nil
		return SimpleReply("OK")
	case "EXEC":
		return ErrorReply("ERR", "EXEC without MULTI")
	case "DISCARD":
		return ErrorReply("ERR", "DISCARD without MULTI")
	case "SHUTDOWN":
		// Acknowledge first; the drain kicks this connection loose
		// after the reply is flushed.
		go s.Shutdown(context.Background())
		return SimpleReply("OK")
	default:
		return ErrorReply("ERR", "unknown command '"+cmd.Name+"'")
	}
}

// execMulti commits the queued transaction as one batch: all its
// updates ride a single group-commit submission, so they become durable
// atomically (one root swap per touched root under one fence epoch, or
// a redo batch record / cross-shard manifest when several roots are
// touched — either way all-or-nothing after a crash).
func (s *Server) execMulti(c *Conn) Reply {
	queued := c.queued
	c.inMulti = false
	c.queued = nil
	if len(queued) == 0 {
		return ArrayReply()
	}
	roots := make([]*core.Map, len(queued))
	for i, q := range queued {
		m, err := c.rootFor(q.Args[0])
		if err != nil {
			return writeErrReply(err)
		}
		roots[i] = m
	}
	elems := make([]Reply, len(queued))
	if err := commitDurable(c.kv, func(b core.Batcher) {
		for i, q := range queued {
			switch q.Name {
			case "SET":
				b.MapSet(roots[i], q.Args[0], q.Args[1])
				elems[i] = SimpleReply("OK")
			case "DEL":
				b.MapDelete(roots[i], q.Args[0])
				elems[i] = IntReply(1)
			}
		}
	}); err != nil {
		return writeErrReply(err)
	}
	return ArrayReply(elems...)
}

// checkArity validates fixed-arity verbs; returns (errorReply, false)
// on mismatch.
func checkArity(name string, cmd Command) (Reply, bool) {
	want := map[string]int{"GET": 1, "SET": 2, "DEL": 1}[name]
	if len(cmd.Args) != want {
		return ErrorReply("ERR", "wrong number of arguments for '"+name+"'"), false
	}
	return Reply{}, true
}
