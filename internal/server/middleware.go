package server

import (
	"fmt"
	"net"
	"time"
)

// Handler processes one parsed command against a connection's state and
// returns the reply to write. The innermost handler is the server's
// dispatch; middleware wrap it.
type Handler func(c *Conn, cmd Command) Reply

// Middleware composes over Handler functionally: New folds
// Config.Middleware right-to-left, so the first element observes
// commands first and replies last.
type Middleware func(Handler) Handler

// ConnHandler services one accepted connection until it closes.
type ConnHandler func(nc net.Conn)

// ConnMiddleware composes over connection service, for concerns that
// live at accept granularity rather than command granularity.
type ConnMiddleware func(ConnHandler) ConnHandler

// Logging returns middleware that logs each command verb, outcome
// class, and latency through logf.
func Logging(logf func(format string, args ...any)) Middleware {
	return func(next Handler) Handler {
		return func(c *Conn, cmd Command) Reply {
			start := time.Now()
			rp := next(c, cmd)
			outcome := "ok"
			if rp.IsError() {
				outcome = "err"
			}
			logf("cmd=%s args=%d outcome=%s dur=%s", cmd.Name, len(cmd.Args), outcome, time.Since(start))
			return rp
		}
	}
}

// Recover returns middleware that converts a handler panic into an -ERR
// reply instead of tearing down the connection goroutine (and with it
// the server).
func Recover() Middleware {
	return func(next Handler) Handler {
		return func(c *Conn, cmd Command) (rp Reply) {
			defer func() {
				if r := recover(); r != nil {
					rp = ErrorReply("ERR", fmt.Sprintf("internal error: %v", r))
				}
			}()
			return next(c, cmd)
		}
	}
}

// Timeout returns middleware that bounds one command's handling at d.
// On expiry the client gets an -ERR immediately; the handler keeps
// running to completion in the background (its durability ticket still
// resolves — the store is never left with an abandoned in-flight
// commit), but its reply is discarded. Commands after a timeout on the
// same connection are rejected until the stray handler finishes, since
// Conn state is single-threaded.
func Timeout(d time.Duration) Middleware {
	return func(next Handler) Handler {
		var stray chan Reply // set while a timed-out handler still runs
		return func(c *Conn, cmd Command) Reply {
			if stray != nil {
				select {
				case <-stray:
					stray = nil
				default:
					return ErrorReply("ERR", "previous command still running")
				}
			}
			done := make(chan Reply, 1)
			go func() { done <- next(c, cmd) }()
			select {
			case rp := <-done:
				return rp
			case <-time.After(d):
				stray = done
				return ErrorReply("ERR", fmt.Sprintf("operation timed out after %s", d))
			}
		}
	}
}

// LimitConns returns connection middleware admitting at most n
// concurrent connections; excess connections are served a -ERR and
// closed rather than queued, keeping the accept loop responsive.
func LimitConns(n int) ConnMiddleware {
	sem := make(chan struct{}, n)
	return func(next ConnHandler) ConnHandler {
		return func(nc net.Conn) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
				next(nc)
			default:
				nc.Write(ErrorReply("ERR", "max connections reached").buf)
			}
		}
	}
}
