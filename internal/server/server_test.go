package server

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/server/loadgen"
)

func testConfig() pmem.Config {
	cfg := pmem.DefaultConfig(64 << 20)
	cfg.TrackDurable = true
	return cfg
}

// startServer opens a store with the given options and serves it on an
// in-process pipe listener. Cleanup shuts the server down.
func startServer(t *testing.T, mw []Middleware, cmw []ConnMiddleware, opts ...core.Option) (*core.DB, *Server, *PipeListener) {
	t.Helper()
	db, _, err := core.Open(testConfig(), opts...)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	srv, err := New(Config{KV: db, Middleware: mw, ConnMiddleware: cmw})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	pl := NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		pl.Close()
		if err := <-serveErr; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return db, srv, pl
}

func dialClient(t *testing.T, pl *PipeListener) *loadgen.Client {
	t.Helper()
	c, err := pl.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return loadgen.NewClient(c)
}

// TestProtocolRoundtrip covers parse/serialize for every verb shape.
func TestProtocolRoundtrip(t *testing.T) {
	_, _, pl := startServer(t, nil, nil, core.WithCommitter(0))
	cl := dialClient(t, pl)
	defer cl.Close()

	if r, err := cl.Do([]byte("PING")); err != nil || r.Str != "PONG" {
		t.Fatalf("PING: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("set"), []byte("k"), []byte("v")); err != nil || r.Str != "OK" {
		t.Fatalf("SET (lowercase verb): %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("GET"), []byte("k")); err != nil || string(r.Bulk) != "v" {
		t.Fatalf("GET: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("GET"), []byte("missing")); err != nil || !r.Nil {
		t.Fatalf("GET missing: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("MGET"), []byte("k"), []byte("missing")); err != nil ||
		len(r.Elems) != 2 || string(r.Elems[0].Bulk) != "v" || !r.Elems[1].Nil {
		t.Fatalf("MGET: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("LEN")); err != nil || r.Int != 1 {
		t.Fatalf("LEN: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("DEL"), []byte("k")); err != nil || r.Int != 1 {
		t.Fatalf("DEL: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("DEL"), []byte("k")); err != nil || r.Int != 0 {
		t.Fatalf("DEL absent: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("SET"), []byte("k")); err != nil || r.Kind != loadgen.RespError {
		t.Fatalf("SET arity: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("NOPE")); err != nil || r.Kind != loadgen.RespError {
		t.Fatalf("unknown verb: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("EXEC")); err != nil || r.Kind != loadgen.RespError {
		t.Fatalf("EXEC without MULTI: %+v %v", r, err)
	}
	// Binary-unsafe bytes in keys and values survive intact.
	key := []byte("bin\r\n\x00key")
	val := bytes.Repeat([]byte{0, 1, 2, '\r', '\n'}, 100)
	if r, err := cl.Do([]byte("SET"), key, val); err != nil || r.Str != "OK" {
		t.Fatalf("binary SET: %+v %v", r, err)
	}
	if r, err := cl.Do([]byte("GET"), key); err != nil || !bytes.Equal(r.Bulk, val) {
		t.Fatalf("binary GET mismatch")
	}
}

// TestDurabilityBeforeReply is the contract test: the instant a write
// is acknowledged, a fenced-only crash image must already contain it —
// across per-op, MULTI, and sharded configurations.
func TestDurabilityBeforeReply(t *testing.T) {
	cases := []struct {
		name string
		opts []core.Option
	}{
		{"single", []core.Option{core.WithCommitter(0)}},
		{"single-linger", []core.Option{core.WithCommitter(0), core.WithCommitterLinger(20 * time.Microsecond)}},
		{"sharded", []core.Option{core.WithShards(4), core.WithCommitter(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, _, pl := startServer(t, nil, nil, tc.opts...)
			cl := dialClient(t, pl)
			defer cl.Close()

			for i := 0; i < 20; i++ {
				k := []byte(fmt.Sprintf("key-%d", i))
				v := []byte(fmt.Sprintf("val-%d", i))
				if r, err := cl.Do([]byte("SET"), k, v); err != nil || r.Str != "OK" {
					t.Fatalf("SET %d: %+v %v", i, r, err)
				}
				imgs := db.CrashImages(pmem.CrashFencedOnly, uint64(i))
				db2, _, err := core.Open(testConfig(), core.WithExistingImages(imgs))
				if err != nil {
					t.Fatalf("reopen after SET %d: %v", i, err)
				}
				m, err := db2.Map(RootName(RootIndex(k, DefaultRoots)))
				if err != nil {
					t.Fatalf("bind root: %v", err)
				}
				if got, ok := m.Get(k); !ok || !bytes.Equal(got, v) {
					t.Fatalf("acked SET %d not durable at crash: %q %v", i, got, ok)
				}
				db2.Close()
			}

			// A MULTI spanning several roots (and shards) must be
			// atomically durable once EXEC is acknowledged.
			sets := make([][2][]byte, 6)
			for i := range sets {
				sets[i] = [2][]byte{
					[]byte(fmt.Sprintf("txn-key-%d", i)),
					[]byte("txn-val"),
				}
			}
			if r, err := cl.Multi(sets); err != nil || r.Kind != loadgen.RespArray || len(r.Elems) != 6 {
				t.Fatalf("MULTI/EXEC: %+v %v", r, err)
			}
			imgs := db.CrashImages(pmem.CrashFencedOnly, 99)
			db2, _, err := core.Open(testConfig(), core.WithExistingImages(imgs))
			if err != nil {
				t.Fatalf("reopen after EXEC: %v", err)
			}
			defer db2.Close()
			for _, kv := range sets {
				m, err := db2.Map(RootName(RootIndex(kv[0], DefaultRoots)))
				if err != nil {
					t.Fatalf("bind root: %v", err)
				}
				if got, ok := m.Get(kv[0]); !ok || !bytes.Equal(got, kv[1]) {
					t.Fatalf("acked MULTI key %q not durable", kv[0])
				}
			}
		})
	}
}

// TestMultiSemantics covers the transaction state machine edges.
func TestMultiSemantics(t *testing.T) {
	_, _, pl := startServer(t, nil, nil, core.WithCommitter(0))
	cl := dialClient(t, pl)
	defer cl.Close()

	if r, _ := cl.Do([]byte("MULTI")); r.Str != "OK" {
		t.Fatalf("MULTI: %+v", r)
	}
	if r, _ := cl.Do([]byte("MULTI")); r.Kind != loadgen.RespError {
		t.Fatalf("nested MULTI: %+v", r)
	}
	// The nested-MULTI error does not abort; queue and discard.
	if r, _ := cl.Do([]byte("SET"), []byte("a"), []byte("1")); r.Str != "QUEUED" {
		t.Fatalf("queued SET: %+v", r)
	}
	if r, _ := cl.Do([]byte("DISCARD")); r.Str != "OK" {
		t.Fatalf("DISCARD: %+v", r)
	}
	if r, _ := cl.Do([]byte("GET"), []byte("a")); !r.Nil {
		t.Fatalf("discarded write applied: %+v", r)
	}
	// A read inside MULTI aborts the transaction.
	cl.Do([]byte("MULTI"))
	cl.Do([]byte("SET"), []byte("b"), []byte("1"))
	if r, _ := cl.Do([]byte("GET"), []byte("b")); r.Kind != loadgen.RespError {
		t.Fatalf("GET in MULTI should abort: %+v", r)
	}
	if r, _ := cl.Do([]byte("EXEC")); r.Kind != loadgen.RespError {
		t.Fatalf("EXEC after abort: %+v", r)
	}
	if r, _ := cl.Do([]byte("GET"), []byte("b")); !r.Nil {
		t.Fatalf("aborted write applied: %+v", r)
	}
}

// TestMiddleware exercises the composable middleware stack.
func TestMiddleware(t *testing.T) {
	t.Run("recover", func(t *testing.T) {
		boom := func(next Handler) Handler {
			return func(c *Conn, cmd Command) Reply {
				if strings.EqualFold(cmd.Name, "BOOM") {
					panic("kaboom")
				}
				return next(c, cmd)
			}
		}
		_, _, pl := startServer(t, []Middleware{Recover(), boom}, nil, core.WithCommitter(0))
		cl := dialClient(t, pl)
		defer cl.Close()
		if r, err := cl.Do([]byte("BOOM")); err != nil || r.Kind != loadgen.RespError || !strings.Contains(r.Str, "kaboom") {
			t.Fatalf("panic not converted: %+v %v", r, err)
		}
		// Connection and server survive the panic.
		if r, err := cl.Do([]byte("PING")); err != nil || r.Str != "PONG" {
			t.Fatalf("PING after panic: %+v %v", r, err)
		}
	})

	t.Run("logging", func(t *testing.T) {
		var mu sync.Mutex
		var lines []string
		logf := func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
		_, _, pl := startServer(t, []Middleware{Logging(logf)}, nil, core.WithCommitter(0))
		cl := dialClient(t, pl)
		defer cl.Close()
		cl.Do([]byte("PING"))
		cl.Do([]byte("NOPE"))
		mu.Lock()
		defer mu.Unlock()
		if len(lines) != 2 || !strings.Contains(lines[0], "cmd=PING") || !strings.Contains(lines[1], "outcome=err") {
			t.Fatalf("log lines: %q", lines)
		}
	})

	t.Run("timeout", func(t *testing.T) {
		slow := func(next Handler) Handler {
			return func(c *Conn, cmd Command) Reply {
				if strings.EqualFold(cmd.Name, "SLOW") {
					time.Sleep(200 * time.Millisecond)
					return SimpleReply("SLOWOK")
				}
				return next(c, cmd)
			}
		}
		_, _, pl := startServer(t, []Middleware{Timeout(20 * time.Millisecond), slow}, nil, core.WithCommitter(0))
		cl := dialClient(t, pl)
		defer cl.Close()
		if r, err := cl.Do([]byte("SLOW")); err != nil || r.Kind != loadgen.RespError || !strings.Contains(r.Str, "timed out") {
			t.Fatalf("timeout: %+v %v", r, err)
		}
		// Fast commands pass through untouched.
		if r, err := cl.Do([]byte("PING")); err != nil || r.Str != "PONG" {
			// The stray SLOW handler may still be draining; one retry
			// after it finishes must succeed.
			time.Sleep(250 * time.Millisecond)
			if r, err = cl.Do([]byte("PING")); err != nil || r.Str != "PONG" {
				t.Fatalf("PING after timeout: %+v %v", r, err)
			}
		}
	})

	t.Run("limitconns", func(t *testing.T) {
		_, _, pl := startServer(t, nil, []ConnMiddleware{LimitConns(1)}, core.WithCommitter(0))
		cl1 := dialClient(t, pl)
		defer cl1.Close()
		if r, err := cl1.Do([]byte("PING")); err != nil || r.Str != "PONG" {
			t.Fatalf("first conn: %+v %v", r, err)
		}
		c2, err := pl.Dial()
		if err != nil {
			t.Fatalf("dial second: %v", err)
		}
		defer c2.Close()
		line, err := bufio.NewReader(c2).ReadString('\n')
		if err != nil || !strings.HasPrefix(line, "-ERR max connections") {
			t.Fatalf("second conn not refused: %q %v", line, err)
		}
	})
}

// TestGracefulShutdownUnderLoad drives concurrent clients while the
// server shuts down via the SHUTDOWN verb: the drain must complete, the
// store must end up closed, and every write acknowledged before the
// shutdown began must be durable in the closed store.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	db, _, err := core.Open(testConfig(), core.WithShards(2), core.WithCommitter(0),
		core.WithCommitterLinger(20*time.Microsecond))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv, err := New(Config{KV: db})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	pl := NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	stop := make(chan struct{})
	resCh := make(chan loadgen.Result, 1)
	go func() {
		res, err := loadgen.Run(pl.Dial, loadgen.Config{
			Clients:      8,
			Duration:     30 * time.Second, // stop channel ends it sooner
			RecordWrites: true,
			MultiEvery:   7,
			MultiSize:    3,
			Seed:         42,
		}, stop)
		if err != nil {
			t.Errorf("loadgen: %v", err)
		}
		resCh <- res
	}()

	time.Sleep(300 * time.Millisecond)
	// SHUTDOWN arrives over the wire like any other command.
	sc := dialClient(t, pl)
	if r, err := sc.Do([]byte("SHUTDOWN")); err != nil || r.Str != "OK" {
		t.Fatalf("SHUTDOWN: %+v %v", r, err)
	}
	sc.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	close(stop)
	pl.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	res := <-resCh

	if db.Store() != nil && !db.Store().Closed() {
		t.Fatal("store not closed after shutdown")
	}
	if db.Sharded() != nil && !db.Sharded().Closed() {
		t.Fatal("sharded store not closed after shutdown")
	}
	if res.Ops == 0 {
		t.Fatal("no load reached the server")
	}
	// Acked writes must be readable in the final state: Close only
	// stops mutation, not reads through bound handles.
	check, _, err := core.Open(testConfig(),
		core.WithExistingImages(db.CrashImages(pmem.CrashFencedOnly, 7)))
	if err != nil {
		t.Fatalf("reopen closed store image: %v", err)
	}
	defer check.Close()
	acked := 0
	for _, w := range res.Writes {
		if !w.Acked {
			continue
		}
		acked++
		for i, k := range w.Keys {
			m, err := check.Map(RootName(RootIndex(k, DefaultRoots)))
			if err != nil {
				t.Fatalf("bind root: %v", err)
			}
			if got, ok := m.Get(k); !ok || !bytes.Equal(got, w.Vals[i]) {
				t.Fatalf("acked write %q lost across shutdown", k)
			}
		}
	}
	if acked == 0 {
		t.Fatal("no acked writes recorded")
	}
}

// TestServerCrashRecovery is the e2e crash test: concurrent clients
// (including MULTI traffic) load the server, a crash image is snapped
// mid-load, and after reopening every write acknowledged before the
// snapshot must be present while no MULTI may be partially applied.
func TestServerCrashRecovery(t *testing.T) {
	cases := []struct {
		name string
		opts []core.Option
	}{
		{"single", []core.Option{core.WithCommitter(0), core.WithCommitterLinger(20 * time.Microsecond)}},
		{"sharded", []core.Option{core.WithShards(4), core.WithCommitter(0), core.WithCommitterLinger(20 * time.Microsecond)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, _, err := core.Open(testConfig(), tc.opts...)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			srv, err := New(Config{KV: db})
			if err != nil {
				t.Fatalf("new server: %v", err)
			}
			pl := NewPipeListener()
			serveErr := make(chan error, 1)
			go func() { serveErr <- srv.Serve(pl) }()

			stop := make(chan struct{})
			resCh := make(chan loadgen.Result, 1)
			go func() {
				res, err := loadgen.Run(pl.Dial, loadgen.Config{
					Clients:      8,
					Duration:     30 * time.Second,
					RecordWrites: true,
					MultiEvery:   5,
					MultiSize:    3,
					Seed:         7,
				}, stop)
				if err != nil {
					t.Errorf("loadgen: %v", err)
				}
				resCh <- res
			}()

			// Snap the crash image mid-load: the device mutex makes the
			// snapshot atomic while handlers keep writing around it.
			time.Sleep(250 * time.Millisecond)
			tCrash := time.Now()
			imgs := db.CrashImages(pmem.CrashFencedOnly, 1234)

			close(stop)
			res := <-resCh
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			pl.Close()
			<-serveErr

			re, info, err := core.Open(testConfig(), core.WithExistingImages(imgs))
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer re.Close()
			if !info.Recovered {
				t.Fatal("reopen did not report recovery")
			}
			roots := make(map[int]*core.Map)
			lookup := func(k []byte) ([]byte, bool) {
				i := RootIndex(k, DefaultRoots)
				if roots[i] == nil {
					m, err := re.Map(RootName(i))
					if err != nil {
						t.Fatalf("bind root %d: %v", i, err)
					}
					roots[i] = m
				}
				return roots[i].Get(k)
			}

			ackedBefore, multis := 0, 0
			for _, w := range res.Writes {
				// Writes acknowledged before the snapshot began must be
				// fenced durable, hence present in a fenced-only image.
				if w.Acked && w.AckTime.Before(tCrash) {
					ackedBefore++
					for i, k := range w.Keys {
						if got, ok := lookup(k); !ok || !bytes.Equal(got, w.Vals[i]) {
							t.Fatalf("write %q acked before crash but missing after recovery", k)
						}
					}
				}
				// Every MULTI — acked or in flight at the crash — must be
				// all-or-nothing. Keys are unique per txn, so presence
				// counts are unambiguous.
				if w.Multi {
					multis++
					present := 0
					for _, k := range w.Keys {
						if _, ok := lookup(k); ok {
							present++
						}
					}
					if present != 0 && present != len(w.Keys) {
						t.Fatalf("MULTI partially applied after crash: %d of %d keys", present, len(w.Keys))
					}
				}
			}
			if ackedBefore == 0 {
				t.Fatal("no writes acked before the crash point; test too short")
			}
			if multis == 0 {
				t.Fatal("no MULTI traffic generated")
			}
		})
	}
}
