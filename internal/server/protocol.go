// Package server exposes a MOD store over TCP as a small RESP-subset
// key-value server (cmd/modserver). Its load-bearing property is the
// durability contract: a client sees +OK for a write only after the
// write's group-commit ticket has resolved, i.e. after the root swap it
// rode is fenced (DESIGN.md §11). Because every connection funnels its
// writes through the store's background committer via CommitAsync,
// concurrent clients share fence epochs: fences per operation fall as
// client concurrency rises, which is the server-shaped restatement of
// the paper's one-fence-per-FASE claim.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits, sized for a KV workload rather than general RESP.
const (
	// MaxArgs bounds the element count of a request array.
	MaxArgs = 1 << 16
	// MaxBulkLen bounds one bulk string (key or value).
	MaxBulkLen = 8 << 20
)

// errProtocol wraps malformed-input failures so the connection loop can
// distinguish them from I/O errors.
var errProtocol = errors.New("protocol error")

// Command is one parsed client request: a verb and its arguments.
type Command struct {
	// Name is the verb exactly as sent (case preserved; dispatch is
	// case-insensitive).
	Name string
	// Args holds the remaining bulk strings.
	Args [][]byte
}

// readLine reads one CRLF-terminated line, rejecting bare LF.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return nil, fmt.Errorf("%w: line not CRLF-terminated", errProtocol)
	}
	return line[:len(line)-2], nil
}

// ReadCommand parses one RESP request: an array of bulk strings
// (*N\r\n followed by N of $len\r\n<bytes>\r\n). It returns io.EOF
// cleanly when the peer closed between commands.
func ReadCommand(r *bufio.Reader) (Command, error) {
	line, err := readLine(r)
	if err != nil {
		return Command{}, err
	}
	if len(line) == 0 || line[0] != '*' {
		return Command{}, fmt.Errorf("%w: expected array, got %q", errProtocol, line)
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 1 || n > MaxArgs {
		return Command{}, fmt.Errorf("%w: bad array length %q", errProtocol, line[1:])
	}
	var cmd Command
	for i := 0; i < n; i++ {
		arg, err := readBulk(r)
		if err != nil {
			return Command{}, err
		}
		if i == 0 {
			cmd.Name = string(arg)
		} else {
			cmd.Args = append(cmd.Args, arg)
		}
	}
	return cmd, nil
}

// readBulk parses one $len\r\n<bytes>\r\n bulk string.
func readBulk(r *bufio.Reader) ([]byte, error) {
	line, err := readLine(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if len(line) == 0 || line[0] != '$' {
		return nil, fmt.Errorf("%w: expected bulk string, got %q", errProtocol, line)
	}
	n, err := strconv.Atoi(string(line[1:]))
	if err != nil || n < 0 || n > MaxBulkLen {
		return nil, fmt.Errorf("%w: bad bulk length %q", errProtocol, line[1:])
	}
	buf := make([]byte, n+2)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if buf[n] != '\r' || buf[n+1] != '\n' {
		return nil, fmt.Errorf("%w: bulk string not CRLF-terminated", errProtocol)
	}
	return buf[:n], nil
}

// Reply is one serialized RESP response. Replies are built complete and
// written in one call so middleware can substitute them wholesale.
type Reply struct {
	buf []byte
}

// writeTo flushes the reply onto the connection's buffered writer.
func (rp Reply) writeTo(w *bufio.Writer) error {
	_, err := w.Write(rp.buf)
	return err
}

// SimpleReply builds a +status reply (e.g. OK, PONG, QUEUED).
func SimpleReply(s string) Reply { return Reply{buf: []byte("+" + s + "\r\n")} }

// ErrorReply builds a -error reply; code is the conventional leading
// token (ERR, WRONGTYPE, ...).
func ErrorReply(code, msg string) Reply {
	return Reply{buf: []byte("-" + code + " " + msg + "\r\n")}
}

// IntReply builds a :n integer reply.
func IntReply(n int64) Reply {
	return Reply{buf: []byte(":" + strconv.FormatInt(n, 10) + "\r\n")}
}

// BulkReply builds a $len bulk-string reply; a nil value serializes as
// the RESP null bulk ($-1).
func BulkReply(v []byte) Reply {
	if v == nil {
		return Reply{buf: []byte("$-1\r\n")}
	}
	buf := make([]byte, 0, len(v)+16)
	buf = append(buf, '$')
	buf = strconv.AppendInt(buf, int64(len(v)), 10)
	buf = append(buf, '\r', '\n')
	buf = append(buf, v...)
	buf = append(buf, '\r', '\n')
	return Reply{buf: buf}
}

// ArrayReply concatenates element replies under a *N header.
func ArrayReply(elems ...Reply) Reply {
	buf := make([]byte, 0, 16)
	buf = append(buf, '*')
	buf = strconv.AppendInt(buf, int64(len(elems)), 10)
	buf = append(buf, '\r', '\n')
	for _, e := range elems {
		buf = append(buf, e.buf...)
	}
	return Reply{buf: buf}
}

// IsError reports whether the reply is a RESP error.
func (rp Reply) IsError() bool { return len(rp.buf) > 0 && rp.buf[0] == '-' }

// String renders the raw serialized form (for logging middleware).
func (rp Reply) String() string { return string(rp.buf) }
