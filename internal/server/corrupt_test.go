package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/mod-ds/mod/internal/alloc"
	"github.com/mod-ds/mod/internal/core"
	"github.com/mod-ds/mod/internal/pmem"
	"github.com/mod-ds/mod/internal/server/loadgen"
)

// TestServerDegradedReplies: a store with one quarantined key root
// serves -CORRUPT for reads and -READONLY for writes routed to it,
// while keys on healthy roots keep full service.
func TestServerDegradedReplies(t *testing.T) {
	cfg := testConfig()
	db, _, err := core.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed one key per server root so every root exists durably.
	keyFor := func(i int) []byte {
		for n := 0; ; n++ {
			k := []byte(fmt.Sprintf("key-%d", n))
			if RootIndex(k, DefaultRoots) == i {
				return k
			}
		}
	}
	for i := 0; i < DefaultRoots; i++ {
		m, err := db.Map(RootName(i))
		if err != nil {
			t.Fatal(err)
		}
		m.Set(keyFor(i), []byte("v"))
	}
	db.Sync()
	s := db.Store()
	img := s.Device().Snapshot()

	// Damage the root the probe key routes to: flip a bit of its header
	// block's stored checksum.
	badIdx := RootIndex([]byte("probe"), DefaultRoots)
	slot, err := s.Heap().RootSlot(RootName(badIdx))
	if err != nil {
		t.Fatal(err)
	}
	root := s.Heap().Root(slot)
	img[root-alloc.HeaderSize+8] ^= 0x04

	_, _, pl := startServer(t, nil, nil,
		core.WithExistingImages([][]byte{img}), core.WithVerify())
	cl := dialClient(t, pl)
	defer cl.Close()

	// Writes to the quarantined root: -READONLY.
	if r, err := cl.Do([]byte("SET"), []byte("probe"), []byte("x")); err != nil ||
		r.Kind != loadgen.RespError || !strings.HasPrefix(r.Str, "READONLY") {
		t.Fatalf("SET on quarantined root: %+v %v", r, err)
	}
	// Reads from it: -CORRUPT.
	if r, err := cl.Do([]byte("GET"), keyFor(badIdx)); err != nil ||
		r.Kind != loadgen.RespError || !strings.HasPrefix(r.Str, "CORRUPT") {
		t.Fatalf("GET on quarantined root: %+v %v", r, err)
	}
	// Keys on healthy roots keep full service on the same connection.
	for i := 0; i < DefaultRoots; i++ {
		if i == badIdx {
			continue
		}
		k := keyFor(i)
		if r, err := cl.Do([]byte("GET"), k); err != nil || string(r.Bulk) != "v" {
			t.Fatalf("healthy GET %q: %+v %v", k, r, err)
		}
		if r, err := cl.Do([]byte("SET"), k, []byte("w")); err != nil || r.Str != "OK" {
			t.Fatalf("healthy SET %q: %+v %v", k, r, err)
		}
	}
}

// TestServerHandleRecoversCorruptionPanics: the typed panics raised by
// lazy on-read verification deep inside read paths become -CORRUPT
// replies, and the connection survives to serve the next command.
func TestServerHandleRecoversCorruptionPanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		panic any
	}{
		{"corruption", &alloc.CorruptionPanic{Block: alloc.BlockError{Addr: 0x40, Reason: "checksum mismatch"}}},
		{"media", &pmem.MediaError{Addr: 0x1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mw := Middleware(func(next Handler) Handler {
				return func(c *Conn, cmd Command) Reply {
					if strings.EqualFold(cmd.Name, "GET") {
						panic(tc.panic)
					}
					return next(c, cmd)
				}
			})
			_, _, pl := startServer(t, []Middleware{mw}, nil, core.WithCommitter(0))
			cl := dialClient(t, pl)
			defer cl.Close()
			r, err := cl.Do([]byte("GET"), []byte("k"))
			if err != nil || r.Kind != loadgen.RespError || !strings.HasPrefix(r.Str, "CORRUPT") {
				t.Fatalf("panicking GET: %+v %v", r, err)
			}
			// The connection is still alive and serving.
			if r, err := cl.Do([]byte("PING")); err != nil || r.Str != "PONG" {
				t.Fatalf("PING after recovered panic: %+v %v", r, err)
			}
		})
	}
}

// flakyKV wraps a real KV, failing the first n CommitAsync submissions
// with err before letting the real commit through.
type flakyKV struct {
	core.KV
	fail atomic.Int32
	err  error
	// commits counts CommitAsync submissions (including failed ones).
	commits atomic.Int32
}

func (f *flakyKV) Batch() core.Batcher { return &flakyBatch{Batcher: f.KV.Batch(), f: f} }
func (f *flakyKV) ForkKV() core.KV     { return f }

type flakyBatch struct {
	core.Batcher
	f *flakyKV
}

func (b *flakyBatch) CommitAsync() *core.Ticket {
	b.f.commits.Add(1)
	if b.f.fail.Add(-1) >= 0 {
		return core.FailedTicket(b.f.err)
	}
	return b.Batcher.CommitAsync()
}

// TestCommitDurableRetriesTransientFailures: a transiently failing
// durability ticket is retried with backoff and the write lands; a
// permanent failure (quarantined root) is not retried.
func TestCommitDurableRetriesTransientFailures(t *testing.T) {
	db, _, err := core.Open(testConfig(), core.WithCommitter(0))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	m, err := db.Map(RootName(0))
	if err != nil {
		t.Fatal(err)
	}

	flaky := &flakyKV{KV: db, err: errors.New("transient commit glitch")}
	flaky.fail.Store(int32(commitRetries)) // every retry consumed, last attempt succeeds
	builds := 0
	err = commitDurable(flaky, func(b core.Batcher) {
		builds++
		b.MapSet(m, []byte("k"), []byte("v"))
	})
	if err != nil {
		t.Fatalf("commitDurable with %d transient failures: %v", commitRetries, err)
	}
	if got := int(flaky.commits.Load()); got != commitRetries+1 {
		t.Fatalf("submissions = %d, want %d", got, commitRetries+1)
	}
	if builds != commitRetries+1 {
		t.Fatalf("batch rebuilt %d times, want %d (each submission consumes its batch)", builds, commitRetries+1)
	}
	if v, ok := m.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("retried write lost: %q %v", v, ok)
	}

	// One failure more than the retry budget: the error surfaces.
	flaky2 := &flakyKV{KV: db, err: errors.New("transient commit glitch")}
	flaky2.fail.Store(int32(commitRetries) + 1)
	if err := commitDurable(flaky2, func(b core.Batcher) { b.MapSet(m, []byte("k2"), []byte("v")) }); err == nil {
		t.Fatal("exhausted retries reported success")
	}

	// Permanent failures are not retried at all.
	perm := &flakyKV{KV: db, err: fmt.Errorf("root gone: %w", core.ErrCorrupted)}
	perm.fail.Store(100)
	if err := commitDurable(perm, func(b core.Batcher) { b.MapSet(m, []byte("k3"), []byte("v")) }); !errors.Is(err, core.ErrCorrupted) {
		t.Fatalf("permanent failure: %v", err)
	}
	if got := int(perm.commits.Load()); got != 1 {
		t.Fatalf("permanent failure submitted %d times, want 1", got)
	}
}

// TestTimeoutDiscardsLateReply covers the Timeout middleware's stray-
// handler path: after a timeout, the late reply is consumed and
// discarded — it must never be delivered as the answer to a later
// command — and the connection serves fresh commands again.
func TestTimeoutDiscardsLateReply(t *testing.T) {
	release := make(chan struct{})
	inner := Handler(func(c *Conn, cmd Command) Reply {
		if strings.EqualFold(cmd.Name, "SLOW") {
			<-release
			return SimpleReply("LATE")
		}
		return SimpleReply("FAST-" + cmd.Name)
	})
	h := Timeout(20 * time.Millisecond)(inner)
	c := &Conn{}

	// 1. The slow command times out.
	rp := h(c, Command{Name: "SLOW"})
	if !rp.IsError() {
		t.Fatalf("slow command did not time out: %v", rp)
	}
	// 2. While the stray handler runs, new commands are rejected.
	rp = h(c, Command{Name: "PING"})
	if !rp.IsError() {
		t.Fatalf("command during stray handler not rejected: %v", rp)
	}
	// 3. Release the stray handler and let its late reply land in the
	// stray channel.
	close(release)
	time.Sleep(10 * time.Millisecond)
	// 4. The next command must get ITS OWN reply — the stray "LATE"
	// reply is drained and discarded, not delivered.
	rp = h(c, Command{Name: "PING"})
	if rp.IsError() {
		t.Fatalf("command after stray completion rejected: %v", rp)
	}
	if got := string(rp.buf); !strings.Contains(got, "FAST-PING") || strings.Contains(got, "LATE") {
		t.Fatalf("late reply leaked into a later command: %q", got)
	}
}

// TestServerCrashRecoveryBitFlips is the e2e crash test's fault-
// injection phase: concurrent audited clients load the server, a crash
// image is snapped mid-load, random bit flips are injected into it, and
// the verify+salvage reopen is audited — every write acked before the
// snapshot must read back byte-exact or be excused by typed detection
// (open failure or a quarantined root), and MULTIs stay all-or-nothing.
func TestServerCrashRecoveryBitFlips(t *testing.T) {
	db, _, err := core.Open(testConfig(), core.WithCommitter(0),
		core.WithCommitterLinger(20*time.Microsecond))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	srv, err := New(Config{KV: db})
	if err != nil {
		t.Fatalf("new server: %v", err)
	}
	pl := NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()

	stop := make(chan struct{})
	resCh := make(chan loadgen.Result, 1)
	go func() {
		res, err := loadgen.Run(pl.Dial, loadgen.Config{
			Clients:      4,
			Duration:     30 * time.Second, // stop channel ends it sooner
			RecordWrites: true,
			MultiEvery:   5,
			MultiSize:    3,
			Seed:         11,
		}, stop)
		if err != nil {
			t.Errorf("loadgen: %v", err)
		}
		resCh <- res
	}()

	time.Sleep(250 * time.Millisecond)
	tCrash := time.Now()
	imgs := db.CrashImages(pmem.CrashFencedOnly, 4321)

	close(stop)
	res := <-resCh
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	pl.Close()
	<-serveErr
	if len(res.Writes) == 0 {
		t.Fatal("no audited writes recorded")
	}

	// Learn the live block bounds from an undamaged reopen so the flips
	// aim at real data instead of empty arena.
	probe, _, err := core.Open(testConfig(), core.WithExistingImages(imgs))
	if err != nil {
		t.Fatalf("undamaged reopen: %v", err)
	}
	lo, hi := probe.Store().Heap().DataBounds()
	probe.Close()

	detectedOpens, audited := 0, 0
	for seed := 0; seed < 4; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)*9176 + 5))
		var plan pmem.FaultPlan
		for i := 0; i < 3; i++ {
			plan.FlipBit(lo+pmem.Addr(rng.Int63n(int64(hi-lo))), uint8(rng.Intn(8)))
		}
		dmg := [][]byte{append([]byte(nil), imgs[0]...)}
		plan.ApplyToImage(dmg[0], nil)

		re, _, err := core.Open(testConfig(), core.WithExistingImages(dmg),
			core.WithVerify(), core.WithSalvage())
		if err != nil {
			if !errors.Is(err, core.ErrCorrupted) {
				t.Fatalf("seed %d: damaged reopen failed untyped: %v", seed, err)
			}
			detectedOpens++
			continue
		}
		roots := make(map[int]*core.Map)
		lookup := func(k []byte) ([]byte, bool, error) {
			i := RootIndex(k, DefaultRoots)
			if roots[i] == nil {
				m, err := re.Map(RootName(i))
				if errors.Is(err, core.ErrCorrupted) {
					return nil, false, err
				}
				if err != nil {
					t.Fatalf("seed %d: bind root %d failed untyped: %v", seed, i, err)
				}
				roots[i] = m
			}
			v, ok := roots[i].Get(k)
			return v, ok, nil
		}
		rep, aerr := loadgen.AuditWrites(res.Writes, tCrash, lookup)
		re.Close()
		if aerr != nil {
			t.Fatalf("seed %d: %v", seed, aerr)
		}
		if rep.Verified+rep.Quarantined > 0 {
			audited++
		}
	}
	if detectedOpens == 4 {
		t.Skip("all flip seeds failed the open outright; audit phase not reached")
	}
	if audited == 0 {
		t.Fatal("no reopen audited any acked-before writes; test too short")
	}
}
